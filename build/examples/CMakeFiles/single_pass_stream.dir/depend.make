# Empty dependencies file for single_pass_stream.
# This may be replaced when dependencies are built.
