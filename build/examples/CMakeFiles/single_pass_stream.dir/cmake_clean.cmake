file(REMOVE_RECURSE
  "CMakeFiles/single_pass_stream.dir/single_pass_stream.cpp.o"
  "CMakeFiles/single_pass_stream.dir/single_pass_stream.cpp.o.d"
  "single_pass_stream"
  "single_pass_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_pass_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
