file(REMOVE_RECURSE
  "CMakeFiles/geospatial_survey.dir/geospatial_survey.cpp.o"
  "CMakeFiles/geospatial_survey.dir/geospatial_survey.cpp.o.d"
  "geospatial_survey"
  "geospatial_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geospatial_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
