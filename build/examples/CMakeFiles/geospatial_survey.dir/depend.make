# Empty dependencies file for geospatial_survey.
# This may be replaced when dependencies are built.
