file(REMOVE_RECURSE
  "CMakeFiles/outlier_hunt.dir/outlier_hunt.cpp.o"
  "CMakeFiles/outlier_hunt.dir/outlier_hunt.cpp.o.d"
  "outlier_hunt"
  "outlier_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
