# Empty compiler generated dependencies file for outlier_hunt.
# This may be replaced when dependencies are built.
