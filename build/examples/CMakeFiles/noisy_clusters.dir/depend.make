# Empty dependencies file for noisy_clusters.
# This may be replaced when dependencies are built.
