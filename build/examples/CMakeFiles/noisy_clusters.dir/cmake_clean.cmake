file(REMOVE_RECURSE
  "CMakeFiles/noisy_clusters.dir/noisy_clusters.cpp.o"
  "CMakeFiles/noisy_clusters.dir/noisy_clusters.cpp.o.d"
  "noisy_clusters"
  "noisy_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
