file(REMOVE_RECURSE
  "libdbs_data.a"
)
