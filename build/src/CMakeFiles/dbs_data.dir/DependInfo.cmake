
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/bounds.cc" "src/CMakeFiles/dbs_data.dir/data/bounds.cc.o" "gcc" "src/CMakeFiles/dbs_data.dir/data/bounds.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/dbs_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/dbs_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/dbs_data.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/dbs_data.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/kd_tree.cc" "src/CMakeFiles/dbs_data.dir/data/kd_tree.cc.o" "gcc" "src/CMakeFiles/dbs_data.dir/data/kd_tree.cc.o.d"
  "/root/repo/src/data/point_set.cc" "src/CMakeFiles/dbs_data.dir/data/point_set.cc.o" "gcc" "src/CMakeFiles/dbs_data.dir/data/point_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
