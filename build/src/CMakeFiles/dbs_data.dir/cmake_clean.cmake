file(REMOVE_RECURSE
  "CMakeFiles/dbs_data.dir/data/bounds.cc.o"
  "CMakeFiles/dbs_data.dir/data/bounds.cc.o.d"
  "CMakeFiles/dbs_data.dir/data/dataset.cc.o"
  "CMakeFiles/dbs_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/dbs_data.dir/data/dataset_io.cc.o"
  "CMakeFiles/dbs_data.dir/data/dataset_io.cc.o.d"
  "CMakeFiles/dbs_data.dir/data/kd_tree.cc.o"
  "CMakeFiles/dbs_data.dir/data/kd_tree.cc.o.d"
  "CMakeFiles/dbs_data.dir/data/point_set.cc.o"
  "CMakeFiles/dbs_data.dir/data/point_set.cc.o.d"
  "libdbs_data.a"
  "libdbs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
