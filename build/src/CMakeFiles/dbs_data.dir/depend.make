# Empty dependencies file for dbs_data.
# This may be replaced when dependencies are built.
