file(REMOVE_RECURSE
  "CMakeFiles/dbs_cluster.dir/cluster/birch.cc.o"
  "CMakeFiles/dbs_cluster.dir/cluster/birch.cc.o.d"
  "CMakeFiles/dbs_cluster.dir/cluster/cf_tree.cc.o"
  "CMakeFiles/dbs_cluster.dir/cluster/cf_tree.cc.o.d"
  "CMakeFiles/dbs_cluster.dir/cluster/clustering.cc.o"
  "CMakeFiles/dbs_cluster.dir/cluster/clustering.cc.o.d"
  "CMakeFiles/dbs_cluster.dir/cluster/dbscan.cc.o"
  "CMakeFiles/dbs_cluster.dir/cluster/dbscan.cc.o.d"
  "CMakeFiles/dbs_cluster.dir/cluster/hierarchical.cc.o"
  "CMakeFiles/dbs_cluster.dir/cluster/hierarchical.cc.o.d"
  "CMakeFiles/dbs_cluster.dir/cluster/kmeans.cc.o"
  "CMakeFiles/dbs_cluster.dir/cluster/kmeans.cc.o.d"
  "CMakeFiles/dbs_cluster.dir/cluster/kmedoids.cc.o"
  "CMakeFiles/dbs_cluster.dir/cluster/kmedoids.cc.o.d"
  "libdbs_cluster.a"
  "libdbs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
