
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/birch.cc" "src/CMakeFiles/dbs_cluster.dir/cluster/birch.cc.o" "gcc" "src/CMakeFiles/dbs_cluster.dir/cluster/birch.cc.o.d"
  "/root/repo/src/cluster/cf_tree.cc" "src/CMakeFiles/dbs_cluster.dir/cluster/cf_tree.cc.o" "gcc" "src/CMakeFiles/dbs_cluster.dir/cluster/cf_tree.cc.o.d"
  "/root/repo/src/cluster/clustering.cc" "src/CMakeFiles/dbs_cluster.dir/cluster/clustering.cc.o" "gcc" "src/CMakeFiles/dbs_cluster.dir/cluster/clustering.cc.o.d"
  "/root/repo/src/cluster/dbscan.cc" "src/CMakeFiles/dbs_cluster.dir/cluster/dbscan.cc.o" "gcc" "src/CMakeFiles/dbs_cluster.dir/cluster/dbscan.cc.o.d"
  "/root/repo/src/cluster/hierarchical.cc" "src/CMakeFiles/dbs_cluster.dir/cluster/hierarchical.cc.o" "gcc" "src/CMakeFiles/dbs_cluster.dir/cluster/hierarchical.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/dbs_cluster.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/dbs_cluster.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/kmedoids.cc" "src/CMakeFiles/dbs_cluster.dir/cluster/kmedoids.cc.o" "gcc" "src/CMakeFiles/dbs_cluster.dir/cluster/kmedoids.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_density.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
