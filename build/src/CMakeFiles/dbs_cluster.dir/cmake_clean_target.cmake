file(REMOVE_RECURSE
  "libdbs_cluster.a"
)
