# Empty compiler generated dependencies file for dbs_cluster.
# This may be replaced when dependencies are built.
