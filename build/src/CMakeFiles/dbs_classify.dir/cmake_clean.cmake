file(REMOVE_RECURSE
  "CMakeFiles/dbs_classify.dir/classify/decision_tree.cc.o"
  "CMakeFiles/dbs_classify.dir/classify/decision_tree.cc.o.d"
  "libdbs_classify.a"
  "libdbs_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
