file(REMOVE_RECURSE
  "libdbs_classify.a"
)
