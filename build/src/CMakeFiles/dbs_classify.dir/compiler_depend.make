# Empty compiler generated dependencies file for dbs_classify.
# This may be replaced when dependencies are built.
