
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/cluster_match.cc" "src/CMakeFiles/dbs_eval.dir/eval/cluster_match.cc.o" "gcc" "src/CMakeFiles/dbs_eval.dir/eval/cluster_match.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/dbs_eval.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/dbs_eval.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/dbs_eval.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/dbs_eval.dir/eval/report.cc.o.d"
  "/root/repo/src/eval/sample_quality.cc" "src/CMakeFiles/dbs_eval.dir/eval/sample_quality.cc.o" "gcc" "src/CMakeFiles/dbs_eval.dir/eval/sample_quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_outlier.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_density.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
