# Empty dependencies file for dbs_eval.
# This may be replaced when dependencies are built.
