file(REMOVE_RECURSE
  "CMakeFiles/dbs_eval.dir/eval/cluster_match.cc.o"
  "CMakeFiles/dbs_eval.dir/eval/cluster_match.cc.o.d"
  "CMakeFiles/dbs_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/dbs_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/dbs_eval.dir/eval/report.cc.o"
  "CMakeFiles/dbs_eval.dir/eval/report.cc.o.d"
  "CMakeFiles/dbs_eval.dir/eval/sample_quality.cc.o"
  "CMakeFiles/dbs_eval.dir/eval/sample_quality.cc.o.d"
  "libdbs_eval.a"
  "libdbs_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
