file(REMOVE_RECURSE
  "libdbs_eval.a"
)
