file(REMOVE_RECURSE
  "CMakeFiles/dbs_util.dir/util/math.cc.o"
  "CMakeFiles/dbs_util.dir/util/math.cc.o.d"
  "CMakeFiles/dbs_util.dir/util/rng.cc.o"
  "CMakeFiles/dbs_util.dir/util/rng.cc.o.d"
  "CMakeFiles/dbs_util.dir/util/stats.cc.o"
  "CMakeFiles/dbs_util.dir/util/stats.cc.o.d"
  "libdbs_util.a"
  "libdbs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
