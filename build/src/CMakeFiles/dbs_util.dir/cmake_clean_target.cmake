file(REMOVE_RECURSE
  "libdbs_util.a"
)
