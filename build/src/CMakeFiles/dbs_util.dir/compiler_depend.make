# Empty compiler generated dependencies file for dbs_util.
# This may be replaced when dependencies are built.
