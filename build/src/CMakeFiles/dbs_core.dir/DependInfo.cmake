
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/biased_sampler.cc" "src/CMakeFiles/dbs_core.dir/core/biased_sampler.cc.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/biased_sampler.cc.o.d"
  "/root/repo/src/core/grid_biased_sampler.cc" "src/CMakeFiles/dbs_core.dir/core/grid_biased_sampler.cc.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/grid_biased_sampler.cc.o.d"
  "/root/repo/src/core/guarantees.cc" "src/CMakeFiles/dbs_core.dir/core/guarantees.cc.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/guarantees.cc.o.d"
  "/root/repo/src/core/sample.cc" "src/CMakeFiles/dbs_core.dir/core/sample.cc.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/sample.cc.o.d"
  "/root/repo/src/core/streaming_sampler.cc" "src/CMakeFiles/dbs_core.dir/core/streaming_sampler.cc.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/streaming_sampler.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/CMakeFiles/dbs_core.dir/core/tuning.cc.o" "gcc" "src/CMakeFiles/dbs_core.dir/core/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_density.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
