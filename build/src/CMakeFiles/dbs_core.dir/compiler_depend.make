# Empty compiler generated dependencies file for dbs_core.
# This may be replaced when dependencies are built.
