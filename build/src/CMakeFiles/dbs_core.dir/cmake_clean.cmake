file(REMOVE_RECURSE
  "CMakeFiles/dbs_core.dir/core/biased_sampler.cc.o"
  "CMakeFiles/dbs_core.dir/core/biased_sampler.cc.o.d"
  "CMakeFiles/dbs_core.dir/core/grid_biased_sampler.cc.o"
  "CMakeFiles/dbs_core.dir/core/grid_biased_sampler.cc.o.d"
  "CMakeFiles/dbs_core.dir/core/guarantees.cc.o"
  "CMakeFiles/dbs_core.dir/core/guarantees.cc.o.d"
  "CMakeFiles/dbs_core.dir/core/sample.cc.o"
  "CMakeFiles/dbs_core.dir/core/sample.cc.o.d"
  "CMakeFiles/dbs_core.dir/core/streaming_sampler.cc.o"
  "CMakeFiles/dbs_core.dir/core/streaming_sampler.cc.o.d"
  "CMakeFiles/dbs_core.dir/core/tuning.cc.o"
  "CMakeFiles/dbs_core.dir/core/tuning.cc.o.d"
  "libdbs_core.a"
  "libdbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
