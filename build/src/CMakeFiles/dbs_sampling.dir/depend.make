# Empty dependencies file for dbs_sampling.
# This may be replaced when dependencies are built.
