file(REMOVE_RECURSE
  "libdbs_sampling.a"
)
