file(REMOVE_RECURSE
  "CMakeFiles/dbs_sampling.dir/sampling/reservoir_sampler.cc.o"
  "CMakeFiles/dbs_sampling.dir/sampling/reservoir_sampler.cc.o.d"
  "CMakeFiles/dbs_sampling.dir/sampling/uniform_sampler.cc.o"
  "CMakeFiles/dbs_sampling.dir/sampling/uniform_sampler.cc.o.d"
  "libdbs_sampling.a"
  "libdbs_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
