
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/cluster_spec.cc" "src/CMakeFiles/dbs_synth.dir/synth/cluster_spec.cc.o" "gcc" "src/CMakeFiles/dbs_synth.dir/synth/cluster_spec.cc.o.d"
  "/root/repo/src/synth/cure_dataset.cc" "src/CMakeFiles/dbs_synth.dir/synth/cure_dataset.cc.o" "gcc" "src/CMakeFiles/dbs_synth.dir/synth/cure_dataset.cc.o.d"
  "/root/repo/src/synth/generator.cc" "src/CMakeFiles/dbs_synth.dir/synth/generator.cc.o" "gcc" "src/CMakeFiles/dbs_synth.dir/synth/generator.cc.o.d"
  "/root/repo/src/synth/geo.cc" "src/CMakeFiles/dbs_synth.dir/synth/geo.cc.o" "gcc" "src/CMakeFiles/dbs_synth.dir/synth/geo.cc.o.d"
  "/root/repo/src/synth/outlier_planting.cc" "src/CMakeFiles/dbs_synth.dir/synth/outlier_planting.cc.o" "gcc" "src/CMakeFiles/dbs_synth.dir/synth/outlier_planting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
