file(REMOVE_RECURSE
  "CMakeFiles/dbs_synth.dir/synth/cluster_spec.cc.o"
  "CMakeFiles/dbs_synth.dir/synth/cluster_spec.cc.o.d"
  "CMakeFiles/dbs_synth.dir/synth/cure_dataset.cc.o"
  "CMakeFiles/dbs_synth.dir/synth/cure_dataset.cc.o.d"
  "CMakeFiles/dbs_synth.dir/synth/generator.cc.o"
  "CMakeFiles/dbs_synth.dir/synth/generator.cc.o.d"
  "CMakeFiles/dbs_synth.dir/synth/geo.cc.o"
  "CMakeFiles/dbs_synth.dir/synth/geo.cc.o.d"
  "CMakeFiles/dbs_synth.dir/synth/outlier_planting.cc.o"
  "CMakeFiles/dbs_synth.dir/synth/outlier_planting.cc.o.d"
  "libdbs_synth.a"
  "libdbs_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
