# Empty compiler generated dependencies file for dbs_synth.
# This may be replaced when dependencies are built.
