file(REMOVE_RECURSE
  "libdbs_synth.a"
)
