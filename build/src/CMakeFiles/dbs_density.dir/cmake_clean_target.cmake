file(REMOVE_RECURSE
  "libdbs_density.a"
)
