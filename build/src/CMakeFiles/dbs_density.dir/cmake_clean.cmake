file(REMOVE_RECURSE
  "CMakeFiles/dbs_density.dir/density/bandwidth.cc.o"
  "CMakeFiles/dbs_density.dir/density/bandwidth.cc.o.d"
  "CMakeFiles/dbs_density.dir/density/grid_density.cc.o"
  "CMakeFiles/dbs_density.dir/density/grid_density.cc.o.d"
  "CMakeFiles/dbs_density.dir/density/histogram_density.cc.o"
  "CMakeFiles/dbs_density.dir/density/histogram_density.cc.o.d"
  "CMakeFiles/dbs_density.dir/density/kde.cc.o"
  "CMakeFiles/dbs_density.dir/density/kde.cc.o.d"
  "CMakeFiles/dbs_density.dir/density/kde_io.cc.o"
  "CMakeFiles/dbs_density.dir/density/kde_io.cc.o.d"
  "CMakeFiles/dbs_density.dir/density/kernel.cc.o"
  "CMakeFiles/dbs_density.dir/density/kernel.cc.o.d"
  "libdbs_density.a"
  "libdbs_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
