# Empty dependencies file for dbs_density.
# This may be replaced when dependencies are built.
