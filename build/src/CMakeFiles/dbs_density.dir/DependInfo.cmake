
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/density/bandwidth.cc" "src/CMakeFiles/dbs_density.dir/density/bandwidth.cc.o" "gcc" "src/CMakeFiles/dbs_density.dir/density/bandwidth.cc.o.d"
  "/root/repo/src/density/grid_density.cc" "src/CMakeFiles/dbs_density.dir/density/grid_density.cc.o" "gcc" "src/CMakeFiles/dbs_density.dir/density/grid_density.cc.o.d"
  "/root/repo/src/density/histogram_density.cc" "src/CMakeFiles/dbs_density.dir/density/histogram_density.cc.o" "gcc" "src/CMakeFiles/dbs_density.dir/density/histogram_density.cc.o.d"
  "/root/repo/src/density/kde.cc" "src/CMakeFiles/dbs_density.dir/density/kde.cc.o" "gcc" "src/CMakeFiles/dbs_density.dir/density/kde.cc.o.d"
  "/root/repo/src/density/kde_io.cc" "src/CMakeFiles/dbs_density.dir/density/kde_io.cc.o" "gcc" "src/CMakeFiles/dbs_density.dir/density/kde_io.cc.o.d"
  "/root/repo/src/density/kernel.cc" "src/CMakeFiles/dbs_density.dir/density/kernel.cc.o" "gcc" "src/CMakeFiles/dbs_density.dir/density/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
