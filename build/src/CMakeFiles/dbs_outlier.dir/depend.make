# Empty dependencies file for dbs_outlier.
# This may be replaced when dependencies are built.
