file(REMOVE_RECURSE
  "CMakeFiles/dbs_outlier.dir/outlier/ball_integration.cc.o"
  "CMakeFiles/dbs_outlier.dir/outlier/ball_integration.cc.o.d"
  "CMakeFiles/dbs_outlier.dir/outlier/exact_detector.cc.o"
  "CMakeFiles/dbs_outlier.dir/outlier/exact_detector.cc.o.d"
  "CMakeFiles/dbs_outlier.dir/outlier/kde_detector.cc.o"
  "CMakeFiles/dbs_outlier.dir/outlier/kde_detector.cc.o.d"
  "libdbs_outlier.a"
  "libdbs_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
