file(REMOVE_RECURSE
  "libdbs_outlier.a"
)
