# Empty dependencies file for scaling_runtime.
# This may be replaced when dependencies are built.
