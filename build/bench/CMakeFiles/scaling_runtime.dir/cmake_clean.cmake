file(REMOVE_RECURSE
  "CMakeFiles/scaling_runtime.dir/scaling_runtime.cc.o"
  "CMakeFiles/scaling_runtime.dir/scaling_runtime.cc.o.d"
  "scaling_runtime"
  "scaling_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
