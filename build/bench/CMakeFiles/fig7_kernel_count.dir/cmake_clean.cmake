file(REMOVE_RECURSE
  "CMakeFiles/fig7_kernel_count.dir/fig7_kernel_count.cc.o"
  "CMakeFiles/fig7_kernel_count.dir/fig7_kernel_count.cc.o.d"
  "fig7_kernel_count"
  "fig7_kernel_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_kernel_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
