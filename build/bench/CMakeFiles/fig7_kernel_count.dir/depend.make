# Empty dependencies file for fig7_kernel_count.
# This may be replaced when dependencies are built.
