# Empty dependencies file for classification_extension.
# This may be replaced when dependencies are built.
