
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/classification_extension.cc" "bench/CMakeFiles/classification_extension.dir/classification_extension.cc.o" "gcc" "bench/CMakeFiles/classification_extension.dir/classification_extension.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbs_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_outlier.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_density.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
