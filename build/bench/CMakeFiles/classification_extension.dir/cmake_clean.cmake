file(REMOVE_RECURSE
  "CMakeFiles/classification_extension.dir/classification_extension.cc.o"
  "CMakeFiles/classification_extension.dir/classification_extension.cc.o.d"
  "classification_extension"
  "classification_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
