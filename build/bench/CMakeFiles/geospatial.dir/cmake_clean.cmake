file(REMOVE_RECURSE
  "CMakeFiles/geospatial.dir/geospatial.cc.o"
  "CMakeFiles/geospatial.dir/geospatial.cc.o.d"
  "geospatial"
  "geospatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geospatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
