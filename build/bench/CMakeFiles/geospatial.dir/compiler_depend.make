# Empty compiler generated dependencies file for geospatial.
# This may be replaced when dependencies are built.
