# Empty compiler generated dependencies file for fig2_runtime.
# This may be replaced when dependencies are built.
