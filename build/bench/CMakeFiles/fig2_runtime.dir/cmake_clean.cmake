file(REMOVE_RECURSE
  "CMakeFiles/fig2_runtime.dir/fig2_runtime.cc.o"
  "CMakeFiles/fig2_runtime.dir/fig2_runtime.cc.o.d"
  "fig2_runtime"
  "fig2_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
