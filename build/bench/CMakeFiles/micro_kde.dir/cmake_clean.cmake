file(REMOVE_RECURSE
  "CMakeFiles/micro_kde.dir/micro_kde.cc.o"
  "CMakeFiles/micro_kde.dir/micro_kde.cc.o.d"
  "micro_kde"
  "micro_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
