# Empty dependencies file for fig5_variable_density.
# This may be replaced when dependencies are built.
