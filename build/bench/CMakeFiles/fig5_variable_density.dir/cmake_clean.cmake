file(REMOVE_RECURSE
  "CMakeFiles/fig5_variable_density.dir/fig5_variable_density.cc.o"
  "CMakeFiles/fig5_variable_density.dir/fig5_variable_density.cc.o.d"
  "fig5_variable_density"
  "fig5_variable_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_variable_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
