file(REMOVE_RECURSE
  "CMakeFiles/fig3_cure_dataset.dir/fig3_cure_dataset.cc.o"
  "CMakeFiles/fig3_cure_dataset.dir/fig3_cure_dataset.cc.o.d"
  "fig3_cure_dataset"
  "fig3_cure_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cure_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
