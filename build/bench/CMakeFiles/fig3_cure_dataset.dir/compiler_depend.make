# Empty compiler generated dependencies file for fig3_cure_dataset.
# This may be replaced when dependencies are built.
