# Empty dependencies file for fig4_noise_sweep.
# This may be replaced when dependencies are built.
