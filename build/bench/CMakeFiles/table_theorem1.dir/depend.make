# Empty dependencies file for table_theorem1.
# This may be replaced when dependencies are built.
