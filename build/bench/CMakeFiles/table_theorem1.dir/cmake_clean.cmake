file(REMOVE_RECURSE
  "CMakeFiles/table_theorem1.dir/table_theorem1.cc.o"
  "CMakeFiles/table_theorem1.dir/table_theorem1.cc.o.d"
  "table_theorem1"
  "table_theorem1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_theorem1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
