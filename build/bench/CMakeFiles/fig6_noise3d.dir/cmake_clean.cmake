file(REMOVE_RECURSE
  "CMakeFiles/fig6_noise3d.dir/fig6_noise3d.cc.o"
  "CMakeFiles/fig6_noise3d.dir/fig6_noise3d.cc.o.d"
  "fig6_noise3d"
  "fig6_noise3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_noise3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
