# Empty compiler generated dependencies file for fig6_noise3d.
# This may be replaced when dependencies are built.
