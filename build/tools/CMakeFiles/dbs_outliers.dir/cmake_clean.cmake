file(REMOVE_RECURSE
  "CMakeFiles/dbs_outliers.dir/dbs_outliers.cc.o"
  "CMakeFiles/dbs_outliers.dir/dbs_outliers.cc.o.d"
  "dbs_outliers"
  "dbs_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
