# Empty dependencies file for dbs_outliers.
# This may be replaced when dependencies are built.
