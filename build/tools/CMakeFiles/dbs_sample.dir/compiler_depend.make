# Empty compiler generated dependencies file for dbs_sample.
# This may be replaced when dependencies are built.
