file(REMOVE_RECURSE
  "CMakeFiles/dbs_sample.dir/dbs_sample.cc.o"
  "CMakeFiles/dbs_sample.dir/dbs_sample.cc.o.d"
  "dbs_sample"
  "dbs_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
