file(REMOVE_RECURSE
  "CMakeFiles/dbs_gen.dir/dbs_gen.cc.o"
  "CMakeFiles/dbs_gen.dir/dbs_gen.cc.o.d"
  "dbs_gen"
  "dbs_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
