# Empty compiler generated dependencies file for dbs_gen.
# This may be replaced when dependencies are built.
