file(REMOVE_RECURSE
  "CMakeFiles/synth_options_test.dir/synth_options_test.cc.o"
  "CMakeFiles/synth_options_test.dir/synth_options_test.cc.o.d"
  "synth_options_test"
  "synth_options_test.pdb"
  "synth_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
