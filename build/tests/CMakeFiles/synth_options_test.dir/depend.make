# Empty dependencies file for synth_options_test.
# This may be replaced when dependencies are built.
