file(REMOVE_RECURSE
  "CMakeFiles/data_bounds_test.dir/data_bounds_test.cc.o"
  "CMakeFiles/data_bounds_test.dir/data_bounds_test.cc.o.d"
  "data_bounds_test"
  "data_bounds_test.pdb"
  "data_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
