# Empty compiler generated dependencies file for data_bounds_test.
# This may be replaced when dependencies are built.
