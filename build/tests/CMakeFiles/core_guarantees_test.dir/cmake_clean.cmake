file(REMOVE_RECURSE
  "CMakeFiles/core_guarantees_test.dir/core_guarantees_test.cc.o"
  "CMakeFiles/core_guarantees_test.dir/core_guarantees_test.cc.o.d"
  "core_guarantees_test"
  "core_guarantees_test.pdb"
  "core_guarantees_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_guarantees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
