# Empty dependencies file for core_guarantees_test.
# This may be replaced when dependencies are built.
