# Empty dependencies file for core_scan_equivalence_test.
# This may be replaced when dependencies are built.
