file(REMOVE_RECURSE
  "CMakeFiles/core_scan_equivalence_test.dir/core_scan_equivalence_test.cc.o"
  "CMakeFiles/core_scan_equivalence_test.dir/core_scan_equivalence_test.cc.o.d"
  "core_scan_equivalence_test"
  "core_scan_equivalence_test.pdb"
  "core_scan_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scan_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
