# Empty dependencies file for density_kde_io_test.
# This may be replaced when dependencies are built.
