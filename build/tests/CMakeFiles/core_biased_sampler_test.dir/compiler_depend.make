# Empty compiler generated dependencies file for core_biased_sampler_test.
# This may be replaced when dependencies are built.
