file(REMOVE_RECURSE
  "CMakeFiles/density_grid_test.dir/density_grid_test.cc.o"
  "CMakeFiles/density_grid_test.dir/density_grid_test.cc.o.d"
  "density_grid_test"
  "density_grid_test.pdb"
  "density_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
