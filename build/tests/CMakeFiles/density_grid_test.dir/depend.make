# Empty dependencies file for density_grid_test.
# This may be replaced when dependencies are built.
