file(REMOVE_RECURSE
  "CMakeFiles/data_kd_tree_test.dir/data_kd_tree_test.cc.o"
  "CMakeFiles/data_kd_tree_test.dir/data_kd_tree_test.cc.o.d"
  "data_kd_tree_test"
  "data_kd_tree_test.pdb"
  "data_kd_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_kd_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
