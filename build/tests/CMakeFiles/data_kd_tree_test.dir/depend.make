# Empty dependencies file for data_kd_tree_test.
# This may be replaced when dependencies are built.
