file(REMOVE_RECURSE
  "CMakeFiles/outlier_metric_test.dir/outlier_metric_test.cc.o"
  "CMakeFiles/outlier_metric_test.dir/outlier_metric_test.cc.o.d"
  "outlier_metric_test"
  "outlier_metric_test.pdb"
  "outlier_metric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
