# Empty compiler generated dependencies file for outlier_metric_test.
# This may be replaced when dependencies are built.
