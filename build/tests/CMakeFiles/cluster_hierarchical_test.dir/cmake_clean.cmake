file(REMOVE_RECURSE
  "CMakeFiles/cluster_hierarchical_test.dir/cluster_hierarchical_test.cc.o"
  "CMakeFiles/cluster_hierarchical_test.dir/cluster_hierarchical_test.cc.o.d"
  "cluster_hierarchical_test"
  "cluster_hierarchical_test.pdb"
  "cluster_hierarchical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_hierarchical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
