# Empty compiler generated dependencies file for cluster_hierarchical_test.
# This may be replaced when dependencies are built.
