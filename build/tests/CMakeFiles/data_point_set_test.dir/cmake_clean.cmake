file(REMOVE_RECURSE
  "CMakeFiles/data_point_set_test.dir/data_point_set_test.cc.o"
  "CMakeFiles/data_point_set_test.dir/data_point_set_test.cc.o.d"
  "data_point_set_test"
  "data_point_set_test.pdb"
  "data_point_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_point_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
