file(REMOVE_RECURSE
  "CMakeFiles/cluster_kmedoids_test.dir/cluster_kmedoids_test.cc.o"
  "CMakeFiles/cluster_kmedoids_test.dir/cluster_kmedoids_test.cc.o.d"
  "cluster_kmedoids_test"
  "cluster_kmedoids_test.pdb"
  "cluster_kmedoids_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_kmedoids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
