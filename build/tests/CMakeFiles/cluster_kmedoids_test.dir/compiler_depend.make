# Empty compiler generated dependencies file for cluster_kmedoids_test.
# This may be replaced when dependencies are built.
