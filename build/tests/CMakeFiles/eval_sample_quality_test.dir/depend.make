# Empty dependencies file for eval_sample_quality_test.
# This may be replaced when dependencies are built.
