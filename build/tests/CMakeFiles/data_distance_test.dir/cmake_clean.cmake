file(REMOVE_RECURSE
  "CMakeFiles/data_distance_test.dir/data_distance_test.cc.o"
  "CMakeFiles/data_distance_test.dir/data_distance_test.cc.o.d"
  "data_distance_test"
  "data_distance_test.pdb"
  "data_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
