# Empty dependencies file for data_distance_test.
# This may be replaced when dependencies are built.
