# Empty dependencies file for density_property_test.
# This may be replaced when dependencies are built.
