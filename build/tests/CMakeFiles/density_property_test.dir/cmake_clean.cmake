file(REMOVE_RECURSE
  "CMakeFiles/density_property_test.dir/density_property_test.cc.o"
  "CMakeFiles/density_property_test.dir/density_property_test.cc.o.d"
  "density_property_test"
  "density_property_test.pdb"
  "density_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
