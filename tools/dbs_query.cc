// dbs_query — client for the dbsd model-serving daemon.
//
//   dbs_query op=register name=est model=est.dbsk [port=7070]
//   dbs_query op=density  name=est in=points.dbsf [out=densities.csv]
//   dbs_query op=sample   name=est in=points.dbsf out=sample.dbsf
//                         [a=1.0] [size=1000] [seed=1] [floor=1e-3]
//   dbs_query op=outliers name=est in=points.dbsf [k=0.1] [p=10]
//                         [metric=l2|l1|linf] [out=scores.csv]
//   dbs_query op=stats    [port=7070]
//   dbs_query op=evict    name=est
//   dbs_query op=shutdown
//
// Every op also takes [transport=tcp|shm] [pipeline=N]. transport=shm
// attaches a shared-memory ring pair to a colocated daemon (falling back
// to TCP, with a note on stderr, when the daemon declines); answers are
// bitwise identical either way. pipeline=N splits op=density input into N
// chunks kept in flight concurrently on the one connection.
//
// The client fits nothing and never reads the model: it ships points to
// the daemon and prints/persists what comes back.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset_io.h"
#include "serve/client.h"
#include "tools/flags.h"

namespace {

int Fail(const dbs::Status& status, const char* what) {
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  return 1;
}

[[nodiscard]] dbs::Result<dbs::data::PointSet> LoadPoints(const std::string& path) {
  if (path.empty()) {
    return dbs::Status::InvalidArgument("in= is required for this op");
  }
  return dbs::data::ReadDatasetFile(path);
}

bool WriteCsv(const std::string& path, const std::vector<double>& values,
              const char* header) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%s\n", header);
  for (size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f, "%zu,%.17g\n", i, values[i]);
  }
  return std::fclose(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  std::string op = flags.GetString("op", "");
  std::string name = flags.GetString("name", "");
  std::string model = flags.GetString("model", "");
  std::string in = flags.GetString("in", "");
  std::string out = flags.GetString("out", "");
  std::string metric_name = flags.GetString("metric", "l2");
  double a = flags.GetDouble("a", 1.0);
  int64_t size = flags.GetInt("size", 1000);
  double floor = flags.GetDouble("floor", 1e-3);
  double k = flags.GetDouble("k", 0.1);
  int64_t p = flags.GetInt("p", 10);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int64_t port = flags.GetInt("port", 7070);
  std::string host = flags.GetString("host", "127.0.0.1");
  std::string transport = flags.GetString("transport", "tcp");
  int64_t pipeline = flags.GetInt("pipeline", 1);
  if (!flags.AllKnown()) return 2;
  if (op.empty()) {
    std::fprintf(stderr,
                 "usage: dbs_query op=register|evict|density|sample|"
                 "outliers|stats|shutdown [name=] [model=] [in=] [out=] "
                 "[a=] [size=] [seed=] [floor=] [k=] [p=] [metric=] "
                 "[port=] [host=] [transport=tcp|shm] [pipeline=N]\n");
    return 2;
  }
  if (transport != "tcp" && transport != "shm") {
    std::fprintf(stderr, "transport must be tcp or shm\n");
    return 2;
  }
  if (pipeline < 1) {
    std::fprintf(stderr, "pipeline must be at least 1\n");
    return 2;
  }

  dbs::serve::ClientOptions client_opts;
  client_opts.host = host;
  client_opts.transport = transport == "shm"
                              ? dbs::serve::TransportKind::kShm
                              : dbs::serve::TransportKind::kTcp;
  auto client = dbs::serve::Client::Connect(static_cast<uint16_t>(port),
                                            client_opts);
  if (!client.ok()) return Fail(client.status(), "connect");
  if (client_opts.transport == dbs::serve::TransportKind::kShm &&
      client->transport() == dbs::serve::TransportKind::kTcp) {
    std::fprintf(stderr, "note: shm unavailable, using tcp (%s)\n",
                 client->shm_status().ToString().c_str());
  }

  if (op == "register") {
    dbs::Status status = client->RegisterModel(name, model);
    if (!status.ok()) return Fail(status, "register");
    std::printf("registered '%s' <- %s\n", name.c_str(), model.c_str());
    return 0;
  }
  if (op == "evict") {
    dbs::Status status = client->EvictModel(name);
    if (!status.ok()) return Fail(status, "evict");
    std::printf("evicted '%s'\n", name.c_str());
    return 0;
  }
  if (op == "shutdown") {
    dbs::Status status = client->RequestShutdown();
    if (!status.ok()) return Fail(status, "shutdown");
    std::printf("daemon shutting down\n");
    return 0;
  }
  if (op == "stats") {
    auto stats = client->Stats();
    if (!stats.ok()) return Fail(stats.status(), "stats");
    std::printf("%-15s %10s %7s %12s %10s %10s %10s\n", "request", "count",
                "errors", "points", "mean_us", "p50_us", "p99_us");
    for (const auto& row : stats->per_type) {
      double mean =
          row.count > 0 ? row.latency_sum_us / static_cast<double>(row.count)
                        : 0.0;
      std::printf("%-15s %10llu %7llu %12llu %10.1f %10.1f %10.1f\n",
                  dbs::serve::RequestTypeName(row.type),
                  static_cast<unsigned long long>(row.count),
                  static_cast<unsigned long long>(row.errors),
                  static_cast<unsigned long long>(row.points), mean,
                  row.latency_p50_us, row.latency_p99_us);
    }
    std::printf("models:");
    for (const std::string& m : stats->models) std::printf(" %s", m.c_str());
    std::printf("\n");
    return 0;
  }

  if (op == "density") {
    auto points = LoadPoints(in);
    if (!points.ok()) return Fail(points.status(), "load points");

    // pipeline=N splits the batch into N contiguous chunks kept in flight
    // concurrently on the one connection; concatenated in order, the
    // densities are identical to the single-request answer.
    const int64_t total = points->size();
    int64_t chunks = std::min<int64_t>(pipeline, std::max<int64_t>(total, 1));
    std::vector<dbs::serve::DensityBatchRequest> requests;
    requests.reserve(static_cast<size_t>(chunks));
    if (chunks == 1) {
      dbs::serve::DensityBatchRequest request;
      request.model = name;
      request.points = std::move(points).value();
      requests.push_back(std::move(request));
    } else {
      for (int64_t c = 0; c < chunks; ++c) {
        const int64_t begin = c * total / chunks;
        const int64_t end = (c + 1) * total / chunks;
        dbs::serve::DensityBatchRequest request;
        request.model = name;
        request.points = dbs::data::PointSet(points->dim());
        request.points.Reserve(end - begin);
        for (int64_t i = begin; i < end; ++i) {
          request.points.Append((*points)[i]);
        }
        requests.push_back(std::move(request));
      }
    }
    auto responses =
        client->DensityPipelined(requests, static_cast<int>(chunks));
    if (!responses.ok()) return Fail(responses.status(), "density");
    std::vector<double> densities;
    densities.reserve(static_cast<size_t>(total));
    for (const auto& response : *responses) {
      densities.insert(densities.end(), response.densities.begin(),
                       response.densities.end());
    }
    double sum = 0;
    for (double d : densities) sum += d;
    std::printf("density: %zu points, mean f = %.6g\n", densities.size(),
                densities.empty()
                    ? 0.0
                    : sum / static_cast<double>(densities.size()));
    if (!out.empty() && !WriteCsv(out, densities, "index,density")) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    return 0;
  }

  if (op == "sample") {
    auto points = LoadPoints(in);
    if (!points.ok()) return Fail(points.status(), "load points");
    if (out.empty()) {
      std::fprintf(stderr, "out= is required for op=sample\n");
      return 2;
    }
    dbs::serve::SampleRequest request;
    request.model = name;
    request.a = a;
    request.target_size = size;
    request.density_floor_fraction = floor;
    request.seed = seed;
    request.points = std::move(points).value();
    auto response = client->Sample(request);
    if (!response.ok()) return Fail(response.status(), "sample");
    dbs::Status written = dbs::data::WriteDatasetFile(out, response->points);
    if (!written.ok()) return Fail(written, "write sample");
    std::printf(
        "sample: %lld points -> %s (a=%.3g normalizer=%.6g clamped=%lld)\n",
        static_cast<long long>(response->points.size()), out.c_str(), a,
        response->normalizer,
        static_cast<long long>(response->clamped_count));
    return 0;
  }

  if (op == "outliers") {
    auto points = LoadPoints(in);
    if (!points.ok()) return Fail(points.status(), "load points");
    dbs::serve::OutlierScoreBatchRequest request;
    request.model = name;
    request.radius = k;
    request.max_neighbors = p;
    if (metric_name == "l1") {
      request.metric = dbs::data::Metric::kL1;
    } else if (metric_name == "linf") {
      request.metric = dbs::data::Metric::kLinf;
    } else if (metric_name != "l2") {
      std::fprintf(stderr, "unknown metric '%s'\n", metric_name.c_str());
      return 2;
    }
    request.points = std::move(points).value();
    auto response = client->OutlierScores(request);
    if (!response.ok()) return Fail(response.status(), "outlier scores");
    int64_t likely = 0;
    for (uint8_t flag : response->likely_outlier) likely += flag;
    std::printf("outlier scores: %zu points, %lld likely DB(p=%lld, k=%.3g) "
                "outliers\n",
                response->expected_neighbors.size(),
                static_cast<long long>(likely), static_cast<long long>(p),
                k);
    if (!out.empty() && !WriteCsv(out, response->expected_neighbors,
                                  "index,expected_neighbors")) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    return 0;
  }

  std::fprintf(stderr, "unknown op '%s'\n", op.c_str());
  return 2;
}
