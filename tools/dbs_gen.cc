// dbs_gen — generate a synthetic clustered dataset as a .dbsf file.
//
//   dbs_gen out=data.dbsf [kind=clusters|cure|northeast|california]
//           [dim=2] [clusters=10] [points=100000] [noise=0.2]
//           [size_ratio=1] [shuffle=1] [seed=1]
//
// Prints the ground-truth summary (region count, noise points) so scripts
// can sanity-check what they produced.

#include <cstdio>
#include <string>

#include "data/dataset_io.h"
#include "synth/cure_dataset.h"
#include "synth/generator.h"
#include "synth/geo.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  std::string out = flags.GetString("out", "");
  std::string kind = flags.GetString("kind", "clusters");
  int64_t points = flags.GetInt("points", 100000);
  int dim = static_cast<int>(flags.GetInt("dim", 2));
  int clusters = static_cast<int>(flags.GetInt("clusters", 10));
  double noise = flags.GetDouble("noise", 0.2);
  double size_ratio = flags.GetDouble("size_ratio", 1.0);
  bool shuffle = flags.GetInt("shuffle", 1) != 0;
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  if (!flags.AllKnown()) return 2;
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: dbs_gen out=data.dbsf [kind=clusters|cure|"
                 "northeast|california] [dim=] [clusters=] [points=] "
                 "[noise=] [size_ratio=] [shuffle=] [seed=]\n");
    return 2;
  }

  dbs::Result<dbs::synth::ClusteredDataset> dataset =
      dbs::Status::InvalidArgument("unset");
  if (kind == "clusters") {
    dbs::synth::ClusteredDatasetOptions opts;
    opts.dim = dim;
    opts.num_clusters = clusters;
    opts.num_cluster_points = points;
    opts.noise_multiplier = noise;
    opts.size_ratio = size_ratio;
    opts.shuffle = shuffle;
    opts.seed = seed;
    dataset = dbs::synth::MakeClusteredDataset(opts);
  } else if (kind == "cure") {
    dbs::synth::CureDatasetOptions opts;
    opts.num_points = points;
    opts.noise_multiplier = noise;
    opts.seed = seed;
    dataset = dbs::synth::MakeCureDataset1(opts);
  } else if (kind == "northeast") {
    dbs::synth::GeoDatasetOptions opts;
    opts.num_points = points;
    opts.seed = seed;
    dataset = dbs::synth::MakeNorthEastLike(opts);
  } else if (kind == "california") {
    dbs::synth::GeoDatasetOptions opts;
    opts.num_points = points;
    opts.seed = seed;
    dataset = dbs::synth::MakeCaliforniaLike(opts);
  } else {
    std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
    return 2;
  }
  if (!dataset.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  dbs::Status status = dbs::data::WriteDatasetFile(out, dataset->points);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s: %lld points, dim %d, %d true clusters, %lld noise\n",
              out.c_str(), static_cast<long long>(dataset->points.size()),
              dataset->points.dim(), dataset->truth.num_true_clusters(),
              static_cast<long long>(dataset->truth.num_noise()));
  return 0;
}
