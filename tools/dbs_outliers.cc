// dbs_outliers — DB(p,k)-outlier detection over a .dbsf file.
//
//   dbs_outliers in=data.dbsf [k=0.05] [p=5] [metric=l2|l1|linf]
//                [mode=approx|exact|estimate] [exact_algo=kd|cell|nested]
//                [kernels=1000] [bandwidth_scale=0.25] [slack=5] [seed=1]
//                [shards=1] [workers=0]
//
// approx:   the paper's two-pass detector (+ one estimator pass).
// exact:    exact baseline (loads the file into memory); exact_algo picks
//           the kd-tree (default), cell-list or nested-loop detector, all
//           byte-identical. workers=W shards the counting pass. The
//           cell-list run appends prune-statistic lines after the report.
// estimate: one-pass outlier-count estimate only (for exploring p and k).
//
// shards=N runs the estimator fit and the approx detector through the
// sharded build pipeline (DESIGN.md §12), workers=W fans the shard builds
// over a thread pool. shards=1 (the default) is bitwise identical to the
// unsharded pipeline.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "data/dataset_io.h"
#include "density/kde.h"
#include "outlier/cell_list.h"
#include "outlier/exact_detector.h"
#include "outlier/kde_detector.h"
#include "parallel/batch_executor.h"
#include "shard/coordinator.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  std::string in = flags.GetString("in", "");
  double k = flags.GetDouble("k", 0.05);
  int64_t p = flags.GetInt("p", 5);
  std::string metric_name = flags.GetString("metric", "l2");
  std::string mode = flags.GetString("mode", "approx");
  // Empty default doubles as "not set": exact_algo is only meaningful with
  // mode=exact, and an explicit value must be validated even there.
  std::string exact_algo = flags.GetString("exact_algo", "");
  int64_t kernels = flags.GetInt("kernels", 1000);
  double bandwidth_scale = flags.GetDouble("bandwidth_scale", 0.25);
  double slack = flags.GetDouble("slack", 5.0);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int64_t shards = flags.GetInt("shards", 1);
  int64_t workers = flags.GetInt("workers", 0);
  if (!flags.AllKnown()) return 2;
  if (in.empty()) {
    std::fprintf(stderr,
                 "usage: dbs_outliers in=data.dbsf [k=] [p=] "
                 "[metric=l2|l1|linf] [mode=approx|exact|estimate] "
                 "[exact_algo=kd|cell|nested] "
                 "[kernels=] [bandwidth_scale=] [slack=] [seed=] "
                 "[shards=1] [workers=0]\n");
    return 2;
  }
  if (shards < 1) {
    std::fprintf(stderr, "shards must be >= 1\n");
    return 2;
  }
  if (shards > 1 && mode == "exact") {
    std::fprintf(stderr, "mode 'exact' does not support shards > 1\n");
    return 2;
  }
  if (!exact_algo.empty() && mode != "exact") {
    std::fprintf(stderr,
                 "invalid argument: exact_algo requires mode=exact "
                 "(got mode '%s')\n",
                 mode.c_str());
    return 2;
  }
  if (!exact_algo.empty() && exact_algo != "kd" && exact_algo != "cell" &&
      exact_algo != "nested") {
    std::fprintf(stderr,
                 "invalid argument: unknown exact_algo '%s' "
                 "(expected kd, cell or nested)\n",
                 exact_algo.c_str());
    return 2;
  }
  if (workers < 0) {
    std::fprintf(stderr, "invalid argument: workers cannot be negative\n");
    return 2;
  }

  dbs::outlier::DbOutlierParams params;
  params.radius = k;
  params.max_neighbors = p;
  if (metric_name == "l2") {
    params.metric = dbs::data::Metric::kL2;
  } else if (metric_name == "l1") {
    params.metric = dbs::data::Metric::kL1;
  } else if (metric_name == "linf") {
    params.metric = dbs::data::Metric::kLinf;
  } else {
    std::fprintf(stderr, "unknown metric '%s'\n", metric_name.c_str());
    return 2;
  }

  if (mode == "exact") {
    auto points = dbs::data::ReadDatasetFile(in);
    if (!points.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   points.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<dbs::parallel::BatchExecutor> pool;
    if (workers > 0) {
      dbs::parallel::BatchExecutorOptions pool_opts;
      pool_opts.num_workers = static_cast<int>(workers);
      pool = std::make_unique<dbs::parallel::BatchExecutor>(pool_opts);
    }
    dbs::outlier::CellListStats stats;
    dbs::Result<dbs::outlier::OutlierReport> report =
        dbs::Status::InvalidArgument("unreachable");
    if (exact_algo == "cell") {
      dbs::outlier::CellListDetectorOptions cell_opts;
      cell_opts.executor = pool.get();
      cell_opts.stats = &stats;
      report = dbs::outlier::DetectOutliersCellList(*points, params,
                                                    cell_opts);
    } else if (exact_algo == "nested") {
      dbs::outlier::ExactDetectorOptions exact_opts;
      exact_opts.executor = pool.get();
      report = dbs::outlier::DetectOutliersNestedLoop(*points, params,
                                                      exact_opts);
    } else {  // kd (the default when exact_algo is unset)
      dbs::outlier::ExactDetectorOptions exact_opts;
      exact_opts.executor = pool.get();
      report = dbs::outlier::DetectOutliersExact(*points, params, exact_opts);
    }
    if (!report.ok()) {
      std::fprintf(stderr, "detection failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("exact: %zu DB(%lld, %.4g)-outliers in %lld points\n",
                report->outlier_indices.size(), static_cast<long long>(p),
                k, static_cast<long long>(points->size()));
    for (size_t i = 0; i < report->outlier_indices.size(); ++i) {
      std::printf("  row %lld  neighbors %lld\n",
                  static_cast<long long>(report->outlier_indices[i]),
                  static_cast<long long>(report->neighbor_counts[i]));
    }
    // Prune statistics go AFTER the rows so every pre-existing line of the
    // exact-mode output is byte-unchanged.
    if (exact_algo == "cell") {
      if (stats.used_fallback) {
        std::printf("  cell-list: kd-tree fallback\n");
      } else {
        std::printf(
            "  cell-list: cells %lld occupied %lld dense_pruned %lld "
            "sparse_pruned %lld pairwise %lld\n",
            static_cast<long long>(stats.grid_cells),
            static_cast<long long>(stats.occupied_cells),
            static_cast<long long>(stats.cells_dense_pruned),
            static_cast<long long>(stats.cells_sparse_pruned),
            static_cast<long long>(stats.pairwise_evaluated));
      }
    }
    return 0;
  }

  auto scan_result = dbs::data::FileScan::Open(in, /*batch_rows=*/8192);
  if (!scan_result.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 scan_result.status().ToString().c_str());
    return 1;
  }
  dbs::data::FileScan& scan = **scan_result;

  // Fit and (for approx) detection run through the shard coordinator; each
  // shard streams its own slice from a fresh scan. shards=1 is the
  // unsharded pipeline, bitwise.
  std::unique_ptr<dbs::parallel::BatchExecutor> executor;
  if (workers > 0) {
    dbs::parallel::BatchExecutorOptions pool_opts;
    pool_opts.num_workers = static_cast<int>(workers);
    executor = std::make_unique<dbs::parallel::BatchExecutor>(pool_opts);
  }
  dbs::shard::ShardCoordinatorOptions coord_opts;
  coord_opts.shards = shards;
  coord_opts.executor = executor.get();
  dbs::shard::ShardCoordinator coordinator(
      [&in]() -> dbs::Result<std::unique_ptr<dbs::data::DataScan>> {
        auto opened = dbs::data::FileScan::Open(in, /*batch_rows=*/8192);
        if (!opened.ok()) return opened.status();
        return std::unique_ptr<dbs::data::DataScan>(std::move(*opened));
      },
      coord_opts);

  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = kernels;
  kde_opts.bandwidth_scale = bandwidth_scale;
  kde_opts.seed = seed;
  auto kde = coordinator.BuildKde(kde_opts);
  if (!kde.ok()) {
    std::fprintf(stderr, "kde failed: %s\n",
                 kde.status().ToString().c_str());
    return 1;
  }

  dbs::outlier::KdeDetectorOptions options;
  options.candidate_slack = slack;
  if (mode == "estimate") {
    auto estimate =
        dbs::outlier::EstimateOutlierCount(scan, *kde, params, options);
    if (!estimate.ok()) {
      std::fprintf(stderr, "estimation failed: %s\n",
                   estimate.status().ToString().c_str());
      return 1;
    }
    // The sharded fit runs on its own scans; +1 accounts for its logical
    // dataset pass, matching what scan.passes() reported when the fit
    // shared this scan.
    std::printf("estimated DB(%lld, %.4g)-outliers: %lld  (passes: %d)\n",
                static_cast<long long>(p), k,
                static_cast<long long>(*estimate), 1 + scan.passes());
    return 0;
  }
  if (mode != "approx") {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }

  auto report = coordinator.DetectOutliers(*kde, params, options);
  if (!report.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "approx: %zu verified DB(%lld, %.4g)-outliers; candidates %lld, "
      "total passes %d (incl. estimator)\n",
      report->outlier_indices.size(), static_cast<long long>(p), k,
      static_cast<long long>(report->candidates_checked),
      1 + report->passes);
  for (size_t i = 0; i < report->outlier_indices.size(); ++i) {
    std::printf("  row %lld  neighbors %lld\n",
                static_cast<long long>(report->outlier_indices[i]),
                static_cast<long long>(report->neighbor_counts[i]));
  }
  return 0;
}
