#include "tools/lint/include_graph.h"

#include <algorithm>
#include <sstream>

namespace dbs::lint {
namespace {

// Collapses "a/b/../c" and "a/./c" segments so resolved paths compare
// equal to the scanned repo-relative paths.
std::string NormalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::istringstream in(path);
  std::string seg;
  while (std::getline(in, seg, '/')) {
    if (seg.empty() || seg == ".") continue;
    if (seg == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
      continue;
    }
    parts.push_back(seg);
  }
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back('/');
    out += parts[i];
  }
  return out;
}

std::string DirName(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

}  // namespace

bool ParseLayerMatrix(const std::string& text, LayerMatrix* matrix,
                      std::string* error) {
  *matrix = LayerMatrix{};
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;  // blank
    std::string name;
    if (!(fields >> name) || name.empty() || name.back() != ':') {
      *error = "layers.txt:" + std::to_string(line_no) +
               ": expected `module NAME:` or `frozen PATH:`";
      return false;
    }
    name.pop_back();
    std::set<std::string> deps;
    std::string dep;
    while (fields >> dep) deps.insert(dep);
    if (kind == "module") {
      if (!matrix->allowed.emplace(name, std::move(deps)).second) {
        *error = "layers.txt:" + std::to_string(line_no) +
                 ": duplicate module " + name;
        return false;
      }
    } else if (kind == "frozen") {
      if (!matrix->frozen.emplace(name, std::move(deps)).second) {
        *error = "layers.txt:" + std::to_string(line_no) +
                 ": duplicate frozen entry " + name;
        return false;
      }
    } else {
      *error = "layers.txt:" + std::to_string(line_no) +
               ": unknown entry kind `" + kind + "`";
      return false;
    }
  }
  return true;
}

IncludeScan ScanIncludes(const std::vector<Token>& tokens) {
  IncludeScan scan;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!(tokens[i].kind == TokKind::kPunct && tokens[i].text == "#" &&
          tokens[i].in_directive)) {
      continue;
    }
    const Token& name = tokens[i + 1];
    if (name.kind != TokKind::kIdent ||
        (name.text != "include" && name.text != "include_next")) {
      continue;
    }
    if (i + 2 >= tokens.size() || tokens[i + 2].line != tokens[i].line) {
      scan.skipped.push_back({tokens[i].line, "#include with no operand"});
      continue;
    }
    const Token& operand = tokens[i + 2];
    if (operand.kind == TokKind::kString && operand.text.size() >= 2) {
      scan.includes.push_back(
          {operand.text.substr(1, operand.text.size() - 2), operand.line});
    } else if (operand.kind == TokKind::kHeaderName) {
      scan.includes.push_back({operand.text, operand.line});
    } else {
      scan.skipped.push_back(
          {operand.line,
           "#include with computed/macro operand `" + operand.text +
               "` cannot be resolved statically; skipped"});
    }
  }
  return scan;
}

std::string ModuleOf(const std::string& path) {
  std::istringstream in(path);
  std::string first;
  std::getline(in, first, '/');
  if (first != "src") return first;
  std::string second;
  std::getline(in, second, '/');
  return second;
}

std::string ResolveInclude(const std::string& from, const std::string& operand,
                           const std::set<std::string>& known_files) {
  if (!operand.empty() && operand.front() == '<') return "";  // system header
  const std::string dir = DirName(from);
  for (const std::string& candidate :
       {dir.empty() ? operand : dir + "/" + operand, "src/" + operand,
        operand}) {
    const std::string normalized = NormalizePath(candidate);
    if (known_files.count(normalized) != 0) return normalized;
  }
  return "";
}

std::vector<Finding> CheckIncludeGraph(
    const std::map<std::string, IncludeScan>& scans,
    const LayerMatrix& matrix) {
  std::vector<Finding> findings;
  std::set<std::string> known;
  for (const auto& [path, scan] : scans) known.insert(path);

  // Resolved project-internal edges, per file, in include order.
  std::map<std::string, std::vector<std::pair<std::string, int>>> edges;
  for (const auto& [path, scan] : scans) {
    auto& out = edges[path];
    for (const IncludeRef& ref : scan.includes) {
      const std::string target = ResolveInclude(path, ref.operand, known);
      if (!target.empty()) out.push_back({target, ref.line});
    }
  }

  // Layering: every resolved edge must be module-allowed.
  for (const auto& [path, out] : edges) {
    const std::string from = ModuleOf(path);
    const auto allowed_it = matrix.allowed.find(from);
    for (const auto& [target, line] : out) {
      const std::string to = ModuleOf(target);
      if (to == from) continue;
      Finding f;
      f.rule = "layer-violation";
      f.file = path;
      f.line = line;
      f.code = "#include \"" + target + "\"";
      if (allowed_it == matrix.allowed.end()) {
        f.message = "module `" + from +
                    "` is not in the layering matrix; add a `module " + from +
                    ":` entry to tools/lint/layers.txt";
      } else if (allowed_it->second.count("*") != 0 ||
                 allowed_it->second.count(to) != 0) {
        continue;
      } else {
        f.message = "module `" + from + "` may not include module `" + to +
                    "` (allowed-layers matrix, tools/lint/layers.txt); " +
                    "invert the dependency or amend the matrix with a " +
                    "reviewed `module " + from + ": ... " + to + "` entry";
      }
      findings.push_back(std::move(f));
    }
  }

  // Frozen oracle files: the exact operand list is pinned, system headers
  // included — a frozen file gaining any dependency is a finding.
  for (const auto& [path, pinned] : matrix.frozen) {
    const auto it = scans.find(path);
    if (it == scans.end()) continue;
    for (const IncludeRef& ref : it->second.includes) {
      if (pinned.count(ref.operand) != 0) continue;
      Finding f;
      f.rule = "frozen-include";
      f.file = path;
      f.line = ref.line;
      f.code = "#include " + (ref.operand.front() == '<'
                                  ? ref.operand
                                  : "\"" + ref.operand + "\"");
      f.message = "frozen oracle file gained include `" + ref.operand +
                  "`; oracles must not grow dependencies (pinned list in "
                  "tools/lint/layers.txt)";
      findings.push_back(std::move(f));
    }
  }

  // Cycle detection: iterative DFS with colors; each cycle is reported
  // once, anchored on its lexicographically smallest member (file order
  // and edge order are already deterministic).
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::set<std::string> reported;
  // Recursive lambda via explicit stack of (node, next edge index).
  for (const auto& [start, unused] : edges) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, size_t>> dfs;
    dfs.push_back({start, 0});
    color[start] = 1;
    stack.push_back(start);
    while (!dfs.empty()) {
      auto& [node, next] = dfs.back();
      const auto& out = edges[node];
      if (next >= out.size()) {
        color[node] = 2;
        stack.pop_back();
        dfs.pop_back();
        continue;
      }
      const auto [target, line] = out[next++];
      if (color[target] == 1) {
        // Found a cycle: stack suffix from `target` to `node`.
        const auto begin =
            std::find(stack.begin(), stack.end(), target);
        std::vector<std::string> cycle(begin, stack.end());
        const auto smallest =
            std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), smallest, cycle.end());
        std::string key;
        for (const std::string& p : cycle) key += p + " -> ";
        if (!reported.insert(key).second) continue;
        Finding f;
        f.rule = "include-cycle";
        f.file = cycle.front();
        f.line = line;
        f.code = "#include \"" + target + "\"";
        f.message = "include cycle: " + key + cycle.front();
        findings.push_back(std::move(f));
      } else if (color[target] == 0) {
        color[target] = 1;
        stack.push_back(target);
        dfs.push_back({target, 0});
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace dbs::lint
