#include "tools/lint/decl_rules.h"

#include <algorithm>
#include <optional>

namespace dbs::lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// Scope classification for each brace the tracker meets.
enum class Scope { kNamespace, kClass, kEnum, kFunction, kInit };

const std::set<std::string>& DeclSpecifiers() {
  static const std::set<std::string> kSpecs = {
      "static",   "virtual",   "inline", "constexpr", "consteval",
      "constinit", "explicit", "friend", "extern",    "mutable",
  };
  return kSpecs;
}

const std::set<std::string>& StatementKeywords() {
  static const std::set<std::string> kWords = {
      "return", "if",    "else",     "do",       "while",     "for",
      "switch", "case",  "goto",     "break",    "continue",  "delete",
      "throw",  "new",   "using",    "typedef",  "co_await",  "co_return",
      "co_yield", "static_assert", "sizeof", "default",
  };
  return kWords;
}

// Skips a balanced <...> starting at `k` (which must be '<'); ">>" closes
// two levels. Returns the index just past the closing '>', or `end` if
// unbalanced.
size_t SkipAngles(const std::vector<Token>& toks, size_t k, size_t end) {
  int depth = 0;
  for (; k < end; ++k) {
    if (IsPunct(toks[k], "<")) {
      ++depth;
    } else if (IsPunct(toks[k], ">")) {
      if (--depth == 0) return k + 1;
    } else if (IsPunct(toks[k], ">>")) {
      depth -= 2;
      if (depth <= 0) return k + 1;
    } else if (IsPunct(toks[k], ";") || IsPunct(toks[k], "{")) {
      break;  // clearly not template arguments
    }
  }
  return end;
}

// A function declarator parsed out of one declaration-scope statement.
// Only the return types the rules care about are recognized: Status,
// Result<...> (the nodiscard contract) and void (to disambiguate name
// collisions like Server::RequestShutdown/void vs
// Client::RequestShutdown/Status in the unchecked-status name set).
struct StatusFnDecl {
  std::string name;      // unqualified function name
  bool returns_void = false;
  bool qualified = false;  // out-of-line definition (Foo::Bar)
  bool has_nodiscard = false;
  int line = 0;
};

// Tries to parse `toks[begin, end)` as a declaration of a function whose
// return type is Status, Result<...> or void (optionally qualified).
std::optional<StatusFnDecl> ParseStatusFnDecl(const std::vector<Token>& toks,
                                              size_t begin, size_t end) {
  size_t k = begin;
  bool has_nodiscard = false;
  // Leading attributes, specifiers and template introducers.
  while (k < end) {
    if (k + 1 < end && IsPunct(toks[k], "[") && IsPunct(toks[k + 1], "[")) {
      k += 2;
      while (k < end && !(k + 1 < end && IsPunct(toks[k], "]") &&
                          IsPunct(toks[k + 1], "]"))) {
        if (IsIdent(toks[k], "nodiscard")) has_nodiscard = true;
        ++k;
      }
      k = std::min(end, k + 2);
      continue;
    }
    if (toks[k].kind == TokKind::kIdent &&
        DeclSpecifiers().count(toks[k].text) != 0) {
      ++k;
      continue;
    }
    if (k + 1 < end && IsIdent(toks[k], "template") &&
        IsPunct(toks[k + 1], "<")) {
      k = SkipAngles(toks, k + 1, end);
      continue;
    }
    break;
  }
  // Return type: (:: )?(ident ::)* ident, ending in Status or Result<...>.
  if (k < end && IsPunct(toks[k], "::")) ++k;
  std::string type_name;
  while (k < end && toks[k].kind == TokKind::kIdent) {
    type_name = toks[k].text;
    if (k + 1 < end && IsPunct(toks[k + 1], "::")) {
      k += 2;
      continue;
    }
    ++k;
    break;
  }
  if (type_name == "Result") {
    if (k >= end || !IsPunct(toks[k], "<")) return std::nullopt;
    k = SkipAngles(toks, k, end);
  } else if (type_name != "Status" && type_name != "void") {
    return std::nullopt;
  }
  // Returning Status*/Status& is not a discardable-error signature.
  if (k < end && (IsPunct(toks[k], "*") || IsPunct(toks[k], "&") ||
                  IsPunct(toks[k], "&&"))) {
    return std::nullopt;
  }
  // Declarator name: (ident ::)* ident directly followed by '('.
  StatusFnDecl decl;
  decl.returns_void = type_name == "void";
  decl.has_nodiscard = has_nodiscard;
  decl.line = toks[begin].line;
  while (k < end && toks[k].kind == TokKind::kIdent) {
    if (toks[k].text == "operator") return std::nullopt;
    decl.name = toks[k].text;
    if (k + 2 < end && IsPunct(toks[k + 1], "::")) {
      decl.qualified = true;
      k += 2;
      continue;
    }
    ++k;
    break;
  }
  if (decl.name.empty() || k >= end || !IsPunct(toks[k], "(")) {
    return std::nullopt;
  }
  return decl;
}

// The scope tracker: walks the comment-free token stream classifying every
// brace, and hands each completed declaration/statement span to `on_decl`
// (namespace/class scope) or `on_stmt` (function scope). Spans are indices
// into `code`, which itself indexes into the full token stream.
template <typename DeclFn, typename StmtFn, typename ClassMemberFn>
void WalkScopes(const std::vector<Token>& all,
                const std::vector<size_t>& code, DeclFn on_decl,
                StmtFn on_stmt, ClassMemberFn on_class_member) {
  struct Frame {
    Scope scope;
    int saved_paren_depth;
  };
  std::vector<Frame> frames{{Scope::kNamespace, 0}};
  int paren_depth = 0;
  size_t stmt_start = 0;  // index into `code`
  bool seen_question = false;

  auto tok = [&](size_t j) -> const Token& { return all[code[j]]; };
  const size_t m = code.size();

  for (size_t j = 0; j < m; ++j) {
    const Token& t = tok(j);
    const Scope scope = frames.back().scope;
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[") {
        ++paren_depth;
        continue;
      }
      if (t.text == ")" || t.text == "]") {
        if (paren_depth > 0) --paren_depth;
        continue;
      }
      if (t.text == "?") {
        seen_question = true;
        continue;
      }
      if (t.text == "{") {
        Scope entered = Scope::kInit;
        if (paren_depth > 0) {
          entered = Scope::kFunction;  // lambda body in an argument list
        } else if (scope == Scope::kFunction) {
          entered = Scope::kFunction;  // nested block
        } else if (scope == Scope::kInit || scope == Scope::kEnum) {
          entered = Scope::kInit;
        } else {
          // Namespace or class scope: classify from the statement prefix.
          bool is_function = false;
          for (size_t b = j; b > stmt_start;) {
            --b;
            const Token& p = tok(b);
            if (p.kind == TokKind::kIdent) continue;
            if (p.kind == TokKind::kPunct &&
                (p.text == "::" || p.text == "<" || p.text == ">" ||
                 p.text == ">>" || p.text == "&" || p.text == "&&" ||
                 p.text == "*" || p.text == "->" || p.text == "...")) {
              continue;
            }
            is_function = p.kind == TokKind::kPunct && p.text == ")";
            break;
          }
          bool has_class = false, has_namespace = false, has_enum = false,
               prev_eq = false, extern_lang = false;
          for (size_t b = stmt_start; b < j; ++b) {
            const Token& p = tok(b);
            if (IsIdent(p, "class") || IsIdent(p, "struct") ||
                IsIdent(p, "union")) {
              has_class = true;
            } else if (IsIdent(p, "namespace")) {
              has_namespace = true;
            } else if (IsIdent(p, "enum")) {
              has_enum = true;
            }
          }
          if (j > stmt_start) {
            prev_eq = IsPunct(tok(j - 1), "=");
            extern_lang = tok(j - 1).kind == TokKind::kString &&
                          j >= 2 && IsIdent(tok(j - 2), "extern");
          }
          if (has_namespace || extern_lang) {
            entered = Scope::kNamespace;
          } else if (is_function) {
            // A function definition is also a declaration — surface it
            // before entering the body.
            on_decl(scope, stmt_start, j);
            entered = Scope::kFunction;
          } else if (prev_eq) {
            entered = Scope::kInit;
          } else if (has_enum) {
            entered = Scope::kEnum;
          } else if (has_class) {
            entered = Scope::kClass;
          } else {
            entered = Scope::kFunction;
          }
        }
        frames.push_back({entered, paren_depth});
        paren_depth = 0;
        stmt_start = j + 1;
        seen_question = false;
        continue;
      }
      if (t.text == "}") {
        if (frames.size() > 1) {
          paren_depth = frames.back().saved_paren_depth;
          frames.pop_back();
        }
        stmt_start = j + 1;
        seen_question = false;
        continue;
      }
      if (t.text == ";" && paren_depth == 0) {
        if (scope == Scope::kNamespace || scope == Scope::kClass) {
          on_decl(scope, stmt_start, j);
          if (scope == Scope::kClass) on_class_member(stmt_start, j);
        } else if (scope == Scope::kFunction) {
          on_stmt(stmt_start, j);
        }
        stmt_start = j + 1;
        seen_question = false;
        continue;
      }
      if (t.text == ":" && paren_depth == 0 && !seen_question) {
        // Access specifiers and labels start a fresh statement; ctor
        // initializer lists do not reach here (their ':' follows ')').
        const bool access =
            j == stmt_start + 1 &&
            (IsIdent(tok(stmt_start), "public") ||
             IsIdent(tok(stmt_start), "private") ||
             IsIdent(tok(stmt_start), "protected"));
        const bool label =
            scope == Scope::kFunction && j == stmt_start + 1 &&
            tok(stmt_start).kind == TokKind::kIdent;
        if (access || label) stmt_start = j + 1;
        continue;
      }
    }
  }
}

// Indices of non-comment, non-directive tokens. Directive tokens are
// excluded so braces inside macro bodies cannot corrupt the scope stack.
std::vector<size_t> CodeTokens(const std::vector<Token>& all) {
  std::vector<size_t> code;
  code.reserve(all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].kind != TokKind::kComment && !all[i].in_directive) {
      code.push_back(i);
    }
  }
  return code;
}

}  // namespace

StatusFunctionSets CollectStatusFunctions(const std::vector<Token>& tokens) {
  StatusFunctionSets sets;
  const std::vector<size_t> code = CodeTokens(tokens);
  std::vector<Token> view;
  view.reserve(code.size());
  for (size_t i : code) view.push_back(tokens[i]);
  WalkScopes(
      tokens, code,
      [&](Scope, size_t begin, size_t end) {
        if (auto decl = ParseStatusFnDecl(view, begin, end)) {
          (decl->returns_void ? sets.void_returning : sets.status_returning)
              .insert(decl->name);
        }
      },
      [](size_t, size_t) {}, [](size_t, size_t) {});
  return sets;
}

std::vector<Finding> CheckDeclRules(const std::string& path,
                                    const std::vector<Token>& tokens,
                                    const DeclRuleOptions& options) {
  std::vector<Finding> findings;
  auto add = [&](const std::string& rule, int line, std::string message) {
    Finding f;
    f.rule = rule;
    f.file = path;
    f.line = line;
    f.message = std::move(message);
    findings.push_back(std::move(f));
  };

  const std::vector<size_t> code = CodeTokens(tokens);
  std::vector<Token> view;  // the code tokens themselves, for span parsing
  view.reserve(code.size());
  for (size_t i : code) view.push_back(tokens[i]);

  const bool in_src = StartsWith(path, "src/");
  const bool fp_scope = StartsWith(path, "src/density/") ||
                        StartsWith(path, "src/core/") ||
                        StartsWith(path, "src/shard/");

  // --- declaration / statement rules via the scope tracker ------------------
  auto on_decl = [&](Scope, size_t begin, size_t end) {
    auto decl = ParseStatusFnDecl(view, begin, end);
    if (!decl || decl->returns_void || decl->has_nodiscard ||
        decl->qualified) {
      return;
    }
    add("nodiscard-status", decl->line,
        "function returning Status/Result must be [[nodiscard]]; a "
        "silently dropped error Status is how a failed build turns into "
        "a wrong answer downstream");
  };

  auto on_stmt = [&](size_t begin, size_t end) {
    if (options.status_functions == nullptr || begin >= end) return;
    if (view[begin].kind != TokKind::kIdent ||
        StatementKeywords().count(view[begin].text) != 0) {
      return;
    }
    // The statement must be a pure postfix call chain: identifiers,
    // scope/member accessors and call groups only, ending in ');'.
    int depth = 0;
    bool pure = true;
    bool prev_ident = false;
    size_t final_open = end;  // '(' whose match is the last token
    for (size_t k = begin; k < end && pure; ++k) {
      const Token& t = view[k];
      if (IsPunct(t, "(") || IsPunct(t, "[")) {
        if (depth == 0 && t.text == "(") final_open = k;
        ++depth;
        prev_ident = false;
      } else if (IsPunct(t, ")") || IsPunct(t, "]")) {
        --depth;
        prev_ident = false;
      } else if (depth > 0) {
        // Arguments may contain anything.
      } else if (t.kind == TokKind::kIdent) {
        if (prev_ident || StatementKeywords().count(t.text) != 0) {
          pure = false;  // two adjacent identifiers = a declaration
        }
        prev_ident = true;
      } else if (IsPunct(t, "::") || IsPunct(t, ".") || IsPunct(t, "->")) {
        prev_ident = false;
      } else {
        pure = false;  // assignment, comparison, stream op, ternary, ...
      }
    }
    if (!pure || depth != 0 || final_open == end || final_open == begin ||
        !IsPunct(view[end - 1], ")")) {
      return;
    }
    const Token& callee = view[final_open - 1];
    if (callee.kind != TokKind::kIdent ||
        options.status_functions->count(callee.text) == 0) {
      return;
    }
    add("unchecked-status", view[begin].line,
        "expression-statement call to Status/Result-returning `" +
            callee.text +
            "` discards the error; assign it, DBS_RETURN_IF_ERROR it, or "
            "allow-annotate why it cannot fail");
  };

  auto on_class_member = [&](size_t begin, size_t end) {
    static const std::set<std::string> kMutexTypes = {
        "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
        "shared_timed_mutex"};
    size_t hit = end;
    for (size_t k = begin; k < end; ++k) {
      if (IsPunct(view[k], "(")) return;  // parameter list, not a member
      if (view[k].kind == TokKind::kIdent &&
          kMutexTypes.count(view[k].text) != 0) {
        hit = k;
        break;
      }
    }
    if (hit == end) return;
    // Adjacent comment: one ending on the line above the declaration, or
    // trailing on the declaration's own line.
    const int first_line = view[begin].line;
    const int last_line = view[end - 1].line;
    const size_t first_all = code[begin];
    bool commented = false;
    if (first_all > 0 && tokens[first_all - 1].kind == TokKind::kComment &&
        tokens[first_all - 1].end_line + 1 >= first_line) {
      commented = true;
    }
    for (size_t i = code[end - 1] + 1;
         !commented && i < tokens.size() && tokens[i].line <= last_line; ++i) {
      if (tokens[i].kind == TokKind::kComment) commented = true;
    }
    if (!commented) {
      add("mutex-comment", first_line,
          "mutex member needs an adjacent comment stating what it guards "
          "and its place in the lock order");
    }
  };

  WalkScopes(tokens, code, on_decl, on_stmt, on_class_member);

  // --- token-pattern rules ---------------------------------------------------
  const size_t m = view.size();
  for (size_t k = 0; k < m; ++k) {
    const Token& t = view[k];
    if (t.kind != TokKind::kIdent) continue;

    // fp-accum: order-unspecified accumulation in the library.
    if (in_src && t.text == "reduce" && k >= 2 && IsPunct(view[k - 1], "::") &&
        IsIdent(view[k - 2], "std")) {
      add("fp-accum", t.line,
          "std::reduce may reassociate the sum; the bitwise pins assume "
          "left-to-right scalar accumulation (std::accumulate or a plain "
          "loop)");
    }
    if (in_src && t.text == "accumulate" && k + 1 < m &&
        IsPunct(view[k + 1], "(")) {
      int depth = 0;
      for (size_t j = k + 1; j < m; ++j) {
        if (IsPunct(view[j], "(")) ++depth;
        if (IsPunct(view[j], ")") && --depth == 0) break;
        if (IsIdent(view[j], "execution")) {
          add("fp-accum", t.line,
              "std::accumulate with an execution policy may reorder the "
              "sum; bitwise determinism requires the sequential overload");
          break;
        }
      }
    }
    if (fp_scope && t.text == "for" && k + 1 < m && IsPunct(view[k + 1], "(")) {
      int depth = 0;
      bool ranged = false, unordered = false;
      for (size_t j = k + 1; j < m; ++j) {
        if (IsPunct(view[j], "(")) ++depth;
        if (IsPunct(view[j], ")") && --depth == 0) break;
        if (depth == 1 && IsPunct(view[j], ":")) ranged = true;
        if (view[j].kind == TokKind::kIdent &&
            StartsWith(view[j].text, "unordered_")) {
          unordered = true;
        }
      }
      if (ranged && unordered) {
        add("fp-accum", t.line,
            "range-for over an unordered_* container iterates in hash "
            "order; accumulating through it breaks bitwise "
            "reproducibility");
      }
    }

    // clock-now: wall-clock reads outside bench/ and the audited timers.
    if ((in_src || StartsWith(path, "tools/")) &&
        path != "src/eval/experiment.h" && path != "src/serve/shm_transport.cc") {
      if (EndsWith(t.text, "_clock") && k + 2 < m &&
          IsPunct(view[k + 1], "::") && IsIdent(view[k + 2], "now")) {
        add("clock-now", t.line,
            "wall-clock reads outside bench/ and the audited timing code "
            "(eval/experiment.h Timer, shm_transport deadlines) make runs "
            "time-dependent");
      }
      if (t.text == "clock" && k + 1 < m && IsPunct(view[k + 1], "(") &&
          !(k >= 1 && (IsPunct(view[k - 1], "::") || IsPunct(view[k - 1], ".") ||
                       IsPunct(view[k - 1], "->")))) {
        add("clock-now", t.line,
            "clock() makes runs time-dependent; timing belongs in bench/ "
            "or eval/experiment.h Timer");
      }
    }

    // relaxed-atomic: relaxed ordering only in the audited lock-free files.
    if ((t.text == "memory_order_relaxed" ||
         (t.text == "relaxed" && k >= 2 && IsPunct(view[k - 1], "::") &&
          IsIdent(view[k - 2], "memory_order"))) &&
        path != "src/serve/shm_ring.h" &&
        path != "src/serve/shm_transport.cc") {
      add("relaxed-atomic", t.line,
          "memory_order_relaxed outside the audited lock-free files "
          "(shm_ring.h, shm_transport.cc); relaxed ordering needs a "
          "written happens-before argument — add the file to the audited "
          "list only with one");
    }

    // detached-thread: every thread in this codebase joins.
    if (t.text == "detach" && k >= 1 &&
        (IsPunct(view[k - 1], ".") || IsPunct(view[k - 1], "->")) &&
        k + 1 < m && IsPunct(view[k + 1], "(")) {
      add("detached-thread", t.line,
          "detached threads outlive shutdown ordering and escape TSan; "
          "own the thread and join it (see FileScan::prefetch_thread_)");
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return findings;
}

}  // namespace dbs::lint
