// A small C++ lexer for the dbs_lint semantic passes.
//
// PR 3's rule engine works line by line on comment-stripped text, which is
// enough for token-presence rules but cannot see declaration structure,
// statement boundaries or the include graph. This lexer produces the token
// stream those passes need:
//
//   - phase-2 translation first: backslash-newline splices are removed
//     before tokenization (so a line continuation inside a `//` comment
//     extends the comment, exactly as the compiler sees it), while every
//     token keeps the PHYSICAL line it started on for findings;
//   - raw string literals with arbitrary delimiters (including bodies
//     containing `)"`), ordinary string/char literals with escapes, and
//     encoding prefixes (u8R"...", L'x', ...) are each one token;
//   - comments are tokens, not discarded — rules like mutex-comment need
//     to know whether a declaration has an adjacent comment;
//   - preprocessor directives are first-class: a `#` that starts a logical
//     line opens directive mode until the (spliced) end of line, tokens
//     inside carry `in_directive`, and the `<...>` operand of `#include`
//     is lexed as one kHeaderName token.
//
// The lexer never fails: malformed input (unterminated literal, stray
// byte) produces a best-effort token plus a LexNote so callers can report
// "skipped with a note" instead of silently mis-lexing.

#ifndef DBS_TOOLS_LINT_LEXER_H_
#define DBS_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace dbs::lint {

enum class TokKind {
  kIdent,       // identifiers and keywords
  kNumber,      // pp-number (covers all numeric literal spellings)
  kString,      // string literal, raw or not, including encoding prefix
  kChar,        // character literal including encoding prefix
  kPunct,       // one operator or punctuator, maximal munch
  kComment,     // one entire // or /* */ comment, newlines included
  kHeaderName,  // <...> operand of #include, angle brackets included
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;          // exact spelling (post-splice)
  int line = 0;              // physical 1-based line of the first character
  int end_line = 0;          // physical line of the last character
  bool starts_line = false;  // first token on its physical line
  bool in_directive = false; // part of a preprocessor directive
};

struct LexNote {
  int line = 0;
  std::string message;
};

// Tokenizes `content`. Notes (if `notes` is non-null) describe places the
// lexer had to guess; the token stream itself is always usable.
std::vector<Token> Lex(const std::string& content,
                       std::vector<LexNote>* notes = nullptr);

}  // namespace dbs::lint

#endif  // DBS_TOOLS_LINT_LEXER_H_
