// Declaration- and statement-level rules over the token stream.
//
// These rules need structure the line scanner in lint.cc cannot see:
// where declarations start, where statements end, and which scope (class
// body, namespace, function body) a token lives in. A lightweight scope
// tracker over the lexer's token stream provides that — it is not a
// parser, but it classifies every brace as namespace / class / enum /
// function-body / initializer, which is exactly enough for:
//
//   nodiscard-status   a function declared to return Status or Result<T>
//                      at namespace or class scope must carry
//                      [[nodiscard]]. Dropping a Status on the floor is
//                      how a failed Build() turns into a bitwise
//                      mismatch three layers later. Out-of-line member
//                      definitions are exempt (the attribute belongs on
//                      the in-class declaration).
//   unchecked-status   an expression statement that is exactly a call to
//                      a known Status/Result-returning function discards
//                      the error. Assign it, return it, wrap it in
//                      DBS_RETURN_IF_ERROR, or allow-annotate with the
//                      reason it cannot fail.
//   fp-accum           accumulation idioms whose evaluation order the
//                      standard leaves open: std::reduce anywhere in the
//                      library, std::accumulate with an execution
//                      policy, and range-for over an unordered_*
//                      container inside src/density|core|shard. The
//                      bitwise pins assume left-to-right scalar sums.
//   clock-now          `..._clock::now()` / `clock()` outside bench/ and
//                      the audited timing files; wall-clock reads feed
//                      timeouts and timings only, never results.
//   relaxed-atomic     std::memory_order_relaxed outside the audited
//                      lock-free files (shm_ring.h and its transport).
//                      Relaxed ordering is correct there because the
//                      ring's acquire/release pairs carry the data; a
//                      new relaxed load elsewhere needs the same audit.
//   detached-thread    std::thread::detach() — a detached thread
//                      outlives scope tracking, sanitizers and shutdown
//                      ordering; every thread in this codebase joins.
//   mutex-comment      a mutex member without an adjacent comment. The
//                      comment must say what the mutex guards and where
//                      it sits in the lock order; unannotated mutexes
//                      are how lock-order inversions get written.

#ifndef DBS_TOOLS_LINT_DECL_RULES_H_
#define DBS_TOOLS_LINT_DECL_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"
#include "tools/lint/lint.h"

namespace dbs::lint {

// Names of functions declared (anywhere in `tokens`) with a Status or
// Result<...> return type, including out-of-line member definitions —
// plus the names declared returning void, so the caller can subtract
// collisions (a name declared void somewhere cannot be flagged reliably
// from a token stream without overload resolution).
struct StatusFunctionSets {
  std::set<std::string> status_returning;
  std::set<std::string> void_returning;
};
StatusFunctionSets CollectStatusFunctions(const std::vector<Token>& tokens);

struct DeclRuleOptions {
  // Enables unchecked-status when non-null (the tree-wide name set).
  const std::set<std::string>* status_functions = nullptr;
};

// Runs every decl/statement rule applicable to `path` over `tokens`.
// Findings are NOT yet filtered through `dbs-lint: allow(...)` markers;
// the caller owns suppression (see LintTree).
std::vector<Finding> CheckDeclRules(const std::string& path,
                                    const std::vector<Token>& tokens,
                                    const DeclRuleOptions& options);

}  // namespace dbs::lint

#endif  // DBS_TOOLS_LINT_DECL_RULES_H_
