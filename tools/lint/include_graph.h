// Include-graph layering pass.
//
// The library's module structure is a DAG the ROADMAP has kept implicit:
// util at the bottom, data above it, density/sampling above data, the
// core/outlier algorithm layers above those, and the application layers
// (cluster, shard, serve, eval) on top. Nothing enforced it — a stray
// `#include "serve/..."` from src/density would compile fine and quietly
// invert the architecture. This pass makes the matrix explicit and
// checked in:
//
//   layer-violation   file in module A includes a file in module B and the
//                     matrix has no `module A: ... B ...` entry. `serve`
//                     appears in no library module's list, so the serving
//                     stack can never be pulled into the library.
//   include-cycle     the quoted-include graph has a cycle (reported once
//                     per cycle, on its lexicographically first file).
//   frozen-include    a frozen oracle file (e.g. the do-not-improve
//                     reference agglomeration) gained an include that is
//                     not in its pinned list. Oracles must not grow new
//                     dependencies — their value is that they stay still.
//
// The matrix lives in tools/lint/layers.txt. Module of a file: second path
// component under src/ ("src/density/kde.cc" → density), first component
// otherwise ("tools", "tests", "bench", "examples"). Quoted operands are
// resolved the way the build resolves them: relative to the including
// file's directory, then against src/, then against the repo root;
// operands that resolve to no scanned file are external and exempt from
// layering (but still pinned for frozen files, system headers included).
// `#include` with a computed/macro operand cannot be resolved statically
// and is skipped with a note.

#ifndef DBS_TOOLS_LINT_INCLUDE_GRAPH_H_
#define DBS_TOOLS_LINT_INCLUDE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"
#include "tools/lint/lint.h"

namespace dbs::lint {

struct LayerMatrix {
  // module -> modules it may include (self is always allowed). A single
  // "*" entry means "anything" (the tool/test/bench/example leaves).
  std::map<std::string, std::set<std::string>> allowed;
  // frozen file -> exact allowed include operands, as written in the
  // source (quoted operands bare, system operands in <angle brackets>).
  std::map<std::string, std::set<std::string>> frozen;
};

// Parses the layers.txt format:
//   module NAME: dep dep ...        (or `module NAME: *`)
//   frozen PATH: operand operand ...
//   # comment / blank lines ignored
// Returns false and sets `error` on malformed input.
bool ParseLayerMatrix(const std::string& text, LayerMatrix* matrix,
                      std::string* error);

// One #include found in a file's token stream.
struct IncludeRef {
  std::string operand;  // "data/kd_tree.h" or "<vector>" for system headers
  int line = 0;
};

struct IncludeScan {
  std::vector<IncludeRef> includes;
  std::vector<LexNote> skipped;  // computed/macro operands, with position
};

// Extracts every #include from a lexed file.
IncludeScan ScanIncludes(const std::vector<Token>& tokens);

// Module a repo-relative path belongs to.
std::string ModuleOf(const std::string& path);

// Resolves a quoted operand from `from` against the scanned file set;
// returns "" when the target is external to the repo.
std::string ResolveInclude(const std::string& from, const std::string& operand,
                           const std::set<std::string>& known_files);

// Runs the layering, cycle and frozen-file checks over the whole tree.
// `scans` maps each repo-relative path to its extracted includes.
std::vector<Finding> CheckIncludeGraph(
    const std::map<std::string, IncludeScan>& scans,
    const LayerMatrix& matrix);

}  // namespace dbs::lint

#endif  // DBS_TOOLS_LINT_INCLUDE_GRAPH_H_
