#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "tools/lint/decl_rules.h"
#include "tools/lint/include_graph.h"
#include "tools/lint/lexer.h"

namespace dbs::lint {
namespace {

bool IsIdent(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when code[pos, pos+token.size()) equals `token` with identifier
// boundaries on both sides.
bool TokenAt(const std::string& code, size_t pos, const std::string& token) {
  if (code.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdent(code[pos - 1])) return false;
  const size_t after = pos + token.size();
  if (after < code.size() && IsIdent(code[after])) return false;
  return true;
}

// Positions of token-bounded occurrences of `token` in `code`.
std::vector<size_t> FindToken(const std::string& code,
                              const std::string& token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    if (TokenAt(code, pos, token)) hits.push_back(pos);
    pos += 1;
  }
  return hits;
}

// First non-space character at or after `pos`, or '\0'.
char NextNonSpace(const std::string& s, size_t pos) {
  while (pos < s.size()) {
    if (!std::isspace(static_cast<unsigned char>(s[pos]))) return s[pos];
    ++pos;
  }
  return '\0';
}

// Last non-space character strictly before `pos`, or '\0'.
char PrevNonSpace(const std::string& s, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(s[pos]))) return s[pos];
  }
  return '\0';
}

// The identifier token ending immediately before the non-space run that
// precedes `pos` ("operator" in "operator delete"), or "".
std::string PrevToken(const std::string& s, size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(s[pos - 1]))) {
    --pos;
  }
  size_t end = pos;
  while (pos > 0 && IsIdent(s[pos - 1])) --pos;
  return s.substr(pos, end - pos);
}

std::string Normalize(const std::string& line) {
  std::string out;
  bool in_space = true;  // leading whitespace is dropped
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsBlank(const std::string& s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Parses every `dbs-lint: allow(a, b)` marker in `raw` into rule names.
std::vector<std::string> ParseAllowMarker(const std::string& raw) {
  std::vector<std::string> rules;
  const std::string marker = "dbs-lint: allow(";
  size_t pos = 0;
  while ((pos = raw.find(marker, pos)) != std::string::npos) {
    size_t cursor = pos + marker.size();
    const size_t close = raw.find(')', cursor);
    if (close == std::string::npos) break;
    std::string inside = raw.substr(cursor, close - cursor);
    std::string rule;
    std::istringstream list(inside);
    while (std::getline(list, rule, ',')) {
      rule = Normalize(rule);
      if (!rule.empty()) rules.push_back(rule);
    }
    pos = close;
  }
  return rules;
}

struct RuleContext {
  const std::string& path;
  const std::vector<CodeLine>& lines;
  std::vector<Finding>* findings;

  void Add(const std::string& rule, int line, const std::string& message) {
    Finding f;
    f.rule = rule;
    f.file = path;
    f.line = line;
    f.code = Normalize(lines[static_cast<size_t>(line - 1)].code);
    f.message = message;
    findings->push_back(std::move(f));
  }
};

// --- nondet-seed ------------------------------------------------------------

void CheckNondetSeed(RuleContext& ctx) {
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const int line = static_cast<int>(i) + 1;
    if (!FindToken(code, "random_device").empty()) {
      ctx.Add("nondet-seed", line,
              "std::random_device is nondeterministic; seed util/rng.h "
              "Rng explicitly");
      continue;
    }
    for (const char* fn : {"rand", "srand", "drand48", "random"}) {
      bool hit = false;
      for (size_t pos : FindToken(code, fn)) {
        if (NextNonSpace(code, pos + std::string(fn).size()) == '(') {
          ctx.Add("nondet-seed", line,
                  std::string(fn) +
                      "() draws from hidden global state; use util/rng.h "
                      "Rng with an explicit seed");
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    for (size_t pos : FindToken(code, "time")) {
      if (NextNonSpace(code, pos + 4) == '(') {
        ctx.Add("nondet-seed", line,
                "time() makes runs time-dependent; determinism requires "
                "explicit seeds");
        break;
      }
    }
  }
}

// --- library-print ----------------------------------------------------------

void CheckLibraryPrint(RuleContext& ctx) {
  if (!StartsWith(ctx.path, "src/")) return;
  if (ctx.path == "src/util/check.h") return;
  if (StartsWith(ctx.path, "src/eval/report.")) return;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const int line = static_cast<int>(i) + 1;
    for (const char* name : {"cout", "cerr", "printf", "fprintf", "puts",
                             "fputs", "putchar"}) {
      if (!FindToken(code, name).empty()) {
        ctx.Add("library-print", line,
                "the library must not print; report errors through Status "
                "and leave output to src/eval/report and the tools");
        break;
      }
    }
  }
}

// --- raw-alloc --------------------------------------------------------------

void CheckRawAlloc(RuleContext& ctx) {
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const int line = static_cast<int>(i) + 1;
    bool flagged = false;
    for (size_t pos : FindToken(code, "new")) {
      if (PrevToken(code, pos) == "operator") continue;
      ctx.Add("raw-alloc", line,
              "raw new; express ownership with containers or "
              "std::make_unique");
      flagged = true;
      break;
    }
    if (flagged) continue;
    for (size_t pos : FindToken(code, "delete")) {
      if (PrevNonSpace(code, pos) == '=') continue;  // `= delete` declaration
      if (PrevToken(code, pos) == "operator") continue;
      ctx.Add("raw-alloc", line,
              "raw delete; express ownership with containers or smart "
              "pointers");
      flagged = true;
      break;
    }
    if (flagged) continue;
    for (const char* fn : {"malloc", "calloc", "realloc", "free"}) {
      bool hit = false;
      for (size_t pos : FindToken(code, fn)) {
        if (NextNonSpace(code, pos + std::string(fn).size()) == '(') {
          ctx.Add("raw-alloc", line,
                  std::string(fn) + "() bypasses RAII; use containers or "
                                    "smart pointers");
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
  }
}

// --- unordered-container ----------------------------------------------------

void CheckUnorderedContainer(RuleContext& ctx) {
  // The shm transport files join the scope: their frame paths feed the
  // bitwise transport-equivalence contract, so no hash-order iteration
  // there either. (The rest of src/serve/ stays exempt — the model
  // registry legitimately keys models by hash.) src/outlier/ is in scope
  // because the exact detectors promise byte-identical reports across
  // algorithms and worker counts — the cell-list grid in particular must
  // keep cells and residents in deterministic order.
  if (!StartsWith(ctx.path, "src/density/") &&
      !StartsWith(ctx.path, "src/core/") &&
      !StartsWith(ctx.path, "src/shard/") &&
      !StartsWith(ctx.path, "src/outlier/") &&
      !StartsWith(ctx.path, "src/serve/shm_")) {
    return;
  }
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const int line = static_cast<int>(i) + 1;
    for (const char* name : {"unordered_map", "unordered_set",
                             "unordered_multimap", "unordered_multiset"}) {
      if (!FindToken(code, name).empty()) {
        ctx.Add("unordered-container", line,
                "hash-order iteration breaks the bitwise-reproducibility "
                "contract in the numeric core and the shard merge paths; "
                "use a sorted structure (see Kde::BuildIndex)");
        break;
      }
    }
  }
}

// --- serve-throw ------------------------------------------------------------

void CheckServeThrow(RuleContext& ctx) {
  if (!StartsWith(ctx.path, "src/serve/")) return;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const int line = static_cast<int>(i) + 1;
    if (!FindToken(code, "throw").empty()) {
      ctx.Add("serve-throw", line,
              "the serving stack's error contract is Status codes on the "
              "wire; exceptions cannot cross it");
    }
  }
}

// --- header rules -----------------------------------------------------------

void CheckHeaderRules(RuleContext& ctx) {
  if (!EndsWith(ctx.path, ".h")) return;
  int first_code_line = 0;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    if (!IsBlank(ctx.lines[i].code)) {
      first_code_line = static_cast<int>(i) + 1;
      break;
    }
  }
  if (first_code_line > 0) {
    std::string first =
        Normalize(ctx.lines[static_cast<size_t>(first_code_line - 1)].code);
    if (!StartsWith(first, "#ifndef") && !StartsWith(first, "#pragma once")) {
      ctx.Add("header-guard", first_code_line,
              "headers must open with an include guard (#ifndef or "
              "#pragma once)");
    }
  }
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    if (ctx.lines[i].code.find("using namespace") != std::string::npos) {
      ctx.Add("using-namespace-header", static_cast<int>(i) + 1,
              "`using namespace` in a header leaks into every includer");
    }
  }
}

}  // namespace

std::vector<CodeLine> StripComments(const std::string& content) {
  std::vector<CodeLine> lines;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string code;
  std::string raw;
  std::string raw_delim;  // `)delim"` terminator for raw string literals
  const size_t n = content.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = content[i];
    if (c == '\n') {
      lines.push_back({code, raw});
      code.clear();
      raw.clear();
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    raw.push_back(c);
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          state = State::kLineComment;
          raw.push_back('/');
          ++i;
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::kBlockComment;
          raw.push_back('*');
          ++i;
          code.append("  ");
        } else if (c == '"' &&
                   (i == 0 || content[i - 1] != 'R' ||
                    (i >= 2 && IsIdent(content[i - 2])))) {
          state = State::kString;
          code.push_back('"');
        } else if (c == '"') {  // R"delim( raw string opener
          size_t close = content.find('(', i + 1);
          if (close == std::string::npos) {
            code.push_back('"');
            state = State::kString;
          } else {
            raw_delim = ")";
            raw_delim.append(content, i + 1, close - i - 1);
            raw_delim.push_back('"');
            state = State::kRawString;
            code.push_back('"');
            for (size_t k = i + 1; k <= close; ++k) raw.push_back(content[k]);
            i = close;
          }
        } else if (c == '\'') {
          state = State::kChar;
          code.push_back('\'');
        } else {
          code.push_back(c);
        }
        break;
      }
      case State::kLineComment:
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          state = State::kCode;
          raw.push_back('/');
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n && content[i + 1] != '\n') {
          raw.push_back(content[i + 1]);
          code.append("  ");
          ++i;
        } else if (c == '"') {
          code.push_back('"');
          state = State::kCode;
        } else {
          code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n && content[i + 1] != '\n') {
          raw.push_back(content[i + 1]);
          code.append("  ");
          ++i;
        } else if (c == '\'') {
          code.push_back('\'');
          state = State::kCode;
        } else {
          code.push_back(' ');
        }
        break;
      case State::kRawString:
        if (c == ')' &&
            content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = i + 1; k < i + raw_delim.size(); ++k) {
            raw.push_back(content[k]);
          }
          i += raw_delim.size() - 1;
          code.push_back('"');
          state = State::kCode;
        } else {
          code.push_back(' ');
        }
        break;
    }
  }
  if (!raw.empty() || !code.empty()) lines.push_back({code, raw});
  return lines;
}

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content) {
  const std::vector<CodeLine> lines = StripComments(content);
  std::vector<Finding> findings;
  RuleContext ctx{path, lines, &findings};
  CheckNondetSeed(ctx);
  CheckLibraryPrint(ctx);
  CheckRawAlloc(ctx);
  CheckUnorderedContainer(ctx);
  CheckServeThrow(ctx);
  CheckHeaderRules(ctx);

  std::vector<Finding> kept = ApplyAllowMarkers(lines, findings);
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return kept;
}

std::vector<Finding> ApplyAllowMarkers(const std::vector<CodeLine>& lines,
                                       const std::vector<Finding>& findings) {
  // Suppressions: a marker on the offending line, or alone on the line
  // above it (a comment-only line applies downward).
  std::vector<Finding> kept;
  for (const Finding& f : findings) {
    const size_t idx = static_cast<size_t>(f.line - 1);
    if (idx >= lines.size()) {
      kept.push_back(f);
      continue;
    }
    std::vector<std::string> allowed = ParseAllowMarker(lines[idx].raw);
    if (idx > 0 && IsBlank(lines[idx - 1].code)) {
      std::vector<std::string> above = ParseAllowMarker(lines[idx - 1].raw);
      allowed.insert(allowed.end(), above.begin(), above.end());
    }
    if (std::find(allowed.begin(), allowed.end(), f.rule) != allowed.end()) {
      continue;
    }
    kept.push_back(f);
  }
  return kept;
}

TreeResult LintTree(const std::vector<SourceFile>& files,
                    const TreeOptions& options) {
  TreeResult result;

  // Lex every file once; the decl pass and the include pass share the
  // token streams, and the stripped lines serve marker suppression and
  // the normalized `code` field of token-pass findings.
  struct Prepared {
    std::vector<Token> tokens;
    std::vector<CodeLine> lines;
  };
  std::map<std::string, Prepared> prepared;
  std::set<std::string> status_functions;
  std::set<std::string> void_functions;
  for (const SourceFile& file : files) {
    Prepared p;
    std::vector<LexNote> notes;
    p.tokens = Lex(file.content, &notes);
    p.lines = StripComments(file.content);
    for (const LexNote& n : notes) {
      result.notes.push_back(file.path + ":" + std::to_string(n.line) + ": " +
                             n.message);
    }
    const StatusFunctionSets local = CollectStatusFunctions(p.tokens);
    status_functions.insert(local.status_returning.begin(),
                            local.status_returning.end());
    void_functions.insert(local.void_returning.begin(),
                          local.void_returning.end());
    prepared.emplace(file.path, std::move(p));
  }
  // A name also declared void anywhere is ambiguous without overload
  // resolution; drop it rather than flag the wrong overload.
  for (const std::string& name : void_functions) {
    status_functions.erase(name);
  }

  auto fill_code_and_suppress = [](const Prepared& p,
                                   std::vector<Finding> raw) {
    for (Finding& f : raw) {
      const size_t idx = static_cast<size_t>(f.line - 1);
      if (f.code.empty() && idx < p.lines.size()) {
        f.code = Normalize(p.lines[idx].code);
      }
    }
    return ApplyAllowMarkers(p.lines, raw);
  };

  std::map<std::string, IncludeScan> scans;
  for (const SourceFile& file : files) {
    const Prepared& p = prepared.at(file.path);

    std::vector<Finding> file_findings = LintSource(file.path, file.content);

    DeclRuleOptions decl_options;
    decl_options.status_functions = &status_functions;
    std::vector<Finding> decl = fill_code_and_suppress(
        p, CheckDeclRules(file.path, p.tokens, decl_options));
    file_findings.insert(file_findings.end(), decl.begin(), decl.end());

    std::stable_sort(file_findings.begin(), file_findings.end(),
                     [](const Finding& a, const Finding& b) {
                       if (a.line != b.line) return a.line < b.line;
                       return a.rule < b.rule;
                     });
    result.findings.insert(result.findings.end(), file_findings.begin(),
                           file_findings.end());

    IncludeScan scan = ScanIncludes(p.tokens);
    for (const LexNote& n : scan.skipped) {
      result.notes.push_back(file.path + ":" + std::to_string(n.line) + ": " +
                             n.message);
    }
    scans.emplace(file.path, std::move(scan));
  }

  if (options.layers != nullptr) {
    for (Finding& f : CheckIncludeGraph(scans, *options.layers)) {
      const auto it = prepared.find(f.file);
      std::vector<Finding> one =
          it == prepared.end()
              ? std::vector<Finding>{f}
              : ApplyAllowMarkers(it->second.lines, {f});
      result.findings.insert(result.findings.end(), one.begin(), one.end());
    }
  }

  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return result;
}

namespace {

struct RuleDoc {
  const char* name;
  const char* rationale;
};

constexpr RuleDoc kRuleDocs[] = {
    {"nondet-seed",
     "All randomness flows through util/rng.h with an explicit seed. "
     "std::random_device, rand()/srand(), drand48() and time()-derived "
     "seeds make runs irreproducible, which breaks the byte-identity "
     "pins every optimized path is proven against."},
    {"library-print",
     "The library reports through Status, never stdio; printing belongs "
     "to src/eval/report and the tools. A library that prints cannot be "
     "embedded in the serving stack without corrupting its protocol."},
    {"raw-alloc",
     "Ownership is expressed with containers and smart pointers; raw "
     "new/delete/malloc bypass RAII and leak on early Status returns."},
    {"unordered-container",
     "Hash-order iteration is what broke bitwise reproducibility before "
     "the flat sorted KDE table. std::unordered_* stays out of "
     "src/density, src/core, src/shard, src/outlier and the shm "
     "transport files, whose merge/frame/report paths must be "
     "order-invariant."},
    {"serve-throw",
     "The serving stack's error contract is Status codes on the wire; "
     "an exception cannot cross a socket or an shm ring."},
    {"header-guard",
     "Every header opens with #ifndef or #pragma once."},
    {"using-namespace-header",
     "`using namespace` at header scope leaks into every includer."},
    {"nodiscard-status",
     "Every function returning Status or Result<T> is declared "
     "[[nodiscard]] (the types themselves are nodiscard too, so the "
     "compiler backs the rule). An ignorable error return is how a "
     "failed Build() turns into a bitwise mismatch three layers later."},
    {"unchecked-status",
     "An expression statement that is exactly a call to a "
     "Status/Result-returning function drops the error on the floor. "
     "Assign it, return it, wrap it in DBS_RETURN_IF_ERROR, or "
     "allow-annotate the call with the reason it cannot fail."},
    {"fp-accum",
     "The bitwise pins (batched KDE, sharded merge, QMC tiling) assume "
     "left-to-right scalar accumulation. std::reduce, execution-policy "
     "std::accumulate and range-for accumulation over unordered_* "
     "containers all let the implementation reorder floating-point sums, "
     "which is exactly the nondeterminism the paper's equivalence "
     "contract forbids."},
    {"clock-now",
     "Wall-clock reads (std::chrono::*_clock::now, clock()) outside "
     "bench/ and the audited timing code (eval/experiment.h Timer, "
     "shm_transport deadlines) make library behavior time-dependent."},
    {"relaxed-atomic",
     "memory_order_relaxed is correct only where a written "
     "happens-before argument exists; shm_ring.h and shm_transport.cc "
     "carry that audit (DESIGN.md §13). Anywhere else, start from "
     "seq_cst and argue down."},
    {"detached-thread",
     "Detached threads outlive shutdown ordering and escape TSan's "
     "leak-at-exit checks; every thread in this codebase is owned and "
     "joined (see FileScan and BatchExecutor)."},
    {"mutex-comment",
     "A mutex member must carry an adjacent comment naming what it "
     "guards and its place in the lock order; unannotated mutexes are "
     "how lock-order inversions get written."},
    {"layer-violation",
     "Include edges must respect the allowed-layers matrix in "
     "tools/lint/layers.txt: util → data → {density, sampling} "
     "→ {core, outlier} → {cluster, shard, serve, eval}. serve "
     "appears in no library module's allow list, so the serving stack "
     "can never be pulled under the library. Amend the matrix only with "
     "a reviewed edge, never by inverting a layer."},
    {"include-cycle",
     "The include graph must stay a DAG; a cycle means two headers each "
     "need the other and the layering has already been lost."},
    {"frozen-include",
     "Frozen oracle files (the do-not-improve reference implementations "
     "every optimized path is pinned against) may include nothing new; "
     "their include lists are pinned in tools/lint/layers.txt. An oracle "
     "that gains dependencies stops being an oracle."},
};

}  // namespace

const char* ExplainRule(const std::string& rule) {
  for (const RuleDoc& doc : kRuleDocs) {
    if (rule == doc.name) return doc.rationale;
  }
  return nullptr;
}

std::vector<std::string> AllRules() {
  std::vector<std::string> names;
  for (const RuleDoc& doc : kRuleDocs) names.push_back(doc.name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> ParseBaseline(const std::string& text) {
  std::vector<std::string> entries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (IsBlank(line) || line[0] == '#') continue;
    entries.push_back(line);
  }
  return entries;
}

namespace {

std::string BaselineKey(const Finding& f) {
  return f.rule + "|" + f.file + "|" + f.code;
}

}  // namespace

std::vector<Finding> ApplyBaseline(const std::vector<Finding>& findings,
                                   const std::vector<std::string>& baseline) {
  std::map<std::string, int> budget;
  for (const std::string& entry : baseline) ++budget[entry];
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    auto it = budget.find(BaselineKey(f));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(f);
  }
  return fresh;
}

std::string FormatBaseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(BaselineKey(f));
  std::sort(keys.begin(), keys.end());
  std::string out =
      "# dbs_lint baseline: pre-existing findings grandfathered in.\n"
      "# Regenerate with: dbs_lint update_baseline=1\n"
      "# Format: rule|path|normalized code (duplicates = multiplicity)\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n    " + f.code + "\n";
  }
  out += std::to_string(findings.size()) + " finding(s)\n";
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatJson(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"rule\": \"" + JsonEscape(f.rule) + "\", \"file\": \"" +
           JsonEscape(f.file) + "\", \"line\": " + std::to_string(f.line) +
           ", \"code\": \"" + JsonEscape(f.code) + "\", \"message\": \"" +
           JsonEscape(f.message) + "\"}";
    out += (i + 1 < findings.size()) ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

std::string FormatGithub(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += "::error file=" + f.file + ",line=" + std::to_string(f.line) +
           ",title=dbs_lint " + f.rule + "::" + f.message + "\n";
  }
  return out;
}

}  // namespace dbs::lint
