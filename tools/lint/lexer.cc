#include "tools/lint/lexer.h"

#include <cctype>

namespace dbs::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Encoding prefixes that may precede a string or char literal.
bool IsStringPrefix(const std::string& id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

bool IsRawStringPrefix(const std::string& id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

// Multi-character punctuators, longest first so maximal munch is a linear
// scan. ">>" stays one token; angle balancing in the passes splits it.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "->*", "...", "<=>", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  "##",  ".*",
};

}  // namespace

std::vector<Token> Lex(const std::string& content,
                       std::vector<LexNote>* notes) {
  // Phase 2 translation: delete backslash-newline splices, remembering the
  // physical line of every surviving character.
  std::string text;
  std::vector<int> line_of;
  text.reserve(content.size());
  line_of.reserve(content.size());
  {
    int line = 1;
    const size_t n = content.size();
    for (size_t i = 0; i < n; ++i) {
      if (content[i] == '\\') {
        size_t j = i + 1;
        if (j < n && content[j] == '\r') ++j;
        if (j < n && content[j] == '\n') {
          i = j;
          ++line;
          continue;
        }
      }
      text.push_back(content[i]);
      line_of.push_back(line);
      if (content[i] == '\n') ++line;
    }
  }

  auto note = [notes](int line, std::string message) {
    if (notes != nullptr) notes->push_back({line, std::move(message)});
  };

  std::vector<Token> tokens;
  const size_t n = text.size();
  size_t i = 0;
  bool at_line_start = true;   // only whitespace seen since the last newline
  bool in_directive = false;   // between a line-leading '#' and end of line
  std::string directive_name;  // first identifier after '#'
  bool expect_header = false;  // next '<' opens an include header-name

  auto push = [&](TokKind kind, size_t begin, size_t end) {
    Token t;
    t.kind = kind;
    t.text = text.substr(begin, end - begin);
    t.line = line_of[begin];
    t.end_line = line_of[end - 1];
    t.starts_line = at_line_start;
    t.in_directive = in_directive;
    at_line_start = false;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      at_line_start = true;
      in_directive = false;
      directive_name.clear();
      expect_header = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Comments (one token each, possibly spanning lines).
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      push(TokKind::kComment, i, end);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) {
        note(line_of[i], "unterminated block comment");
        end = n;
      } else {
        end += 2;
      }
      push(TokKind::kComment, i, end);
      i = end;
      continue;
    }

    // Identifiers, keywords and literal prefixes.
    if (IsIdentStart(c)) {
      size_t end = i;
      while (end < n && IsIdentChar(text[end])) ++end;
      const std::string id = text.substr(i, end - i);
      // Raw string: R"delim( ... )delim"
      if (end < n && text[end] == '"' && IsRawStringPrefix(id)) {
        size_t open = text.find('(', end + 1);
        // A raw-string delimiter is at most 16 chars and contains no
        // parens, quotes or whitespace; anything else means this was not
        // actually a raw string opener.
        bool valid = open != std::string::npos && open - end - 1 <= 16;
        for (size_t k = end + 1; valid && k < open; ++k) {
          const char d = text[k];
          if (d == ')' || d == '"' ||
              std::isspace(static_cast<unsigned char>(d)) != 0) {
            valid = false;
          }
        }
        if (valid) {
          std::string closer = ")";
          closer.append(text, end + 1, open - end - 1);
          closer.push_back('"');
          size_t close = text.find(closer, open + 1);
          size_t lit_end;
          if (close == std::string::npos) {
            note(line_of[i], "unterminated raw string literal");
            lit_end = n;
          } else {
            lit_end = close + closer.size();
          }
          push(TokKind::kString, i, lit_end);
          i = lit_end;
          continue;
        }
        // Ill-formed opener (no '(', or a delimiter with parens/quotes/
        // whitespace or over 16 chars): recover as an ordinary literal
        // below, but tell the caller the lexing here is a guess.
        note(line_of[i],
             "invalid raw string delimiter; lexed as an ordinary literal");
      }
      // Ordinary prefixed literal: u8"...", L'x'.
      if (end < n && (text[end] == '"' || text[end] == '\'') &&
          (IsStringPrefix(id) || IsRawStringPrefix(id))) {
        const char quote = text[end];
        size_t k = end + 1;
        while (k < n && text[k] != quote && text[k] != '\n') {
          if (text[k] == '\\' && k + 1 < n) ++k;
          ++k;
        }
        if (k >= n || text[k] == '\n') {
          note(line_of[i], "unterminated literal");
        } else {
          ++k;  // closing quote
        }
        push(quote == '"' ? TokKind::kString : TokKind::kChar, i, k);
        i = k;
        continue;
      }
      push(TokKind::kIdent, i, end);
      if (in_directive && directive_name.empty()) {
        directive_name = id;
        expect_header =
            (directive_name == "include" || directive_name == "include_next");
      }
      i = end;
      continue;
    }

    // Numbers (pp-number: digits, idents, dots, digit separators, and
    // sign characters after an exponent letter).
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(text[i + 1]))) {
      size_t end = i;
      while (end < n) {
        const char d = text[end];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++end;
        } else if ((d == '+' || d == '-') && end > i &&
                   (text[end - 1] == 'e' || text[end - 1] == 'E' ||
                    text[end - 1] == 'p' || text[end - 1] == 'P')) {
          ++end;
        } else {
          break;
        }
      }
      push(TokKind::kNumber, i, end);
      i = end;
      continue;
    }

    // String and char literals without a prefix.
    if (c == '"' || c == '\'') {
      size_t k = i + 1;
      while (k < n && text[k] != c && text[k] != '\n') {
        if (text[k] == '\\' && k + 1 < n) ++k;
        ++k;
      }
      if (k >= n || text[k] == '\n') {
        note(line_of[i], "unterminated literal");
      } else {
        ++k;
      }
      push(c == '"' ? TokKind::kString : TokKind::kChar, i, k);
      i = k;
      continue;
    }

    // The <...> operand of #include, one token.
    if (c == '<' && expect_header) {
      size_t end = i + 1;
      while (end < n && text[end] != '>' && text[end] != '\n') ++end;
      if (end >= n || text[end] == '\n') {
        note(line_of[i], "unterminated include header name");
      } else {
        ++end;
      }
      push(TokKind::kHeaderName, i, end);
      expect_header = false;
      i = end;
      continue;
    }

    // '#' opening a directive. Mark the '#' itself as directive content so
    // downstream passes (ScanIncludes, CodeTokens) see one coherent span.
    if (c == '#' && at_line_start) {
      in_directive = true;
      push(TokKind::kPunct, i, i + 1);
      directive_name.clear();
      ++i;
      continue;
    }

    // Punctuators, maximal munch.
    {
      size_t len = 1;
      for (const char* p : kPuncts) {
        const size_t plen = std::char_traits<char>::length(p);
        if (text.compare(i, plen, p) == 0) {
          len = plen;
          break;
        }
      }
      push(TokKind::kPunct, i, i + len);
      // A quoted #include operand is an ordinary kString; only '<' needs
      // the special case, so any other punct cancels the expectation...
      if (expect_header && text[i] != '<') expect_header = false;
      i += len;
    }
  }
  return tokens;
}

}  // namespace dbs::lint
