// dbs_lint: project-invariant checks that generic linters cannot express.
//
// The repo's headline guarantees are determinism guarantees — bitwise
// identical densities at any worker count, byte-identical samples for a
// fixed seed. Those rest on coding invariants (deterministic seeding, no
// unordered-container iteration feeding results, Status-based error
// handling, a silent library) that nothing in the type system enforces.
// This library is a single-pass line/token scanner over the tree that
// makes each invariant mechanical:
//
//   nondet-seed        no std::random_device / rand / srand / time(...)
//                      seeding anywhere; all randomness flows through
//                      util/rng.h with an explicit seed.
//   library-print      no std::cout / std::cerr / printf-family in src/
//                      outside src/util/check.h and src/eval/report.* —
//                      the library reports through Status, not stdio.
//   raw-alloc          no raw new / delete / malloc-family; ownership is
//                      expressed with containers and smart pointers.
//                      (`= delete` declarations are not allocations and
//                      are ignored.)
//   unordered-container no std::unordered_map / std::unordered_set in
//                      src/density/, src/core/, src/shard/ and the
//                      src/serve/shm_* transport files — hash-order
//                      iteration is what broke bitwise reproducibility
//                      before the flat sorted table; keep it out of the
//                      numeric core and the shard merge/fan-out paths,
//                      whose tree-reduce must be invariant to merge order.
//   serve-throw        no `throw` in src/serve/ — the serving stack's
//                      error contract is Status codes on the wire.
//   header-guard       every header opens with #ifndef or #pragma once.
//   using-namespace-header  no `using namespace` at header scope.
//
// Comments and string/char literals are stripped before matching, so prose
// about `new` or "printf" never trips a rule. Two suppression channels:
//
//   // dbs-lint: allow(rule-a, rule-b)   on the offending line, or alone
//                                        on the line above it.
//   a baseline file                      pre-existing findings listed as
//                                        `rule|path|normalized code` fail
//                                        the run only when newly introduced.
//
// The scanner is deliberately textual: it runs in milliseconds with no
// compile database, and every rule is a token pattern a reviewer can grep
// for by hand to double-check a finding.
//
// Since PR 8 the line scanner is the first of three passes. A real lexer
// (tools/lint/lexer.h) feeds two semantic passes that line scanning
// cannot express: the include-graph layering pass (include_graph.h:
// layer-violation, include-cycle, frozen-include) and the declaration/
// statement pass (decl_rules.h: nodiscard-status, unchecked-status,
// fp-accum, clock-now, relaxed-atomic, detached-thread, mutex-comment).
// LintTree below runs all three over a whole file set; LintSource keeps
// its original meaning — the per-file line rules — so existing callers
// and the baseline format are unchanged. `ExplainRule` documents every
// rule for the CLI's explain= flag.

#ifndef DBS_TOOLS_LINT_LINT_H_
#define DBS_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace dbs::lint {

struct LayerMatrix;  // include_graph.h

struct Finding {
  std::string rule;
  std::string file;   // path as supplied, '/'-separated, repo-relative
  int line = 0;       // 1-based
  std::string code;   // offending code line, whitespace-normalized
  std::string message;
};

// One source line after comment/literal stripping.
struct CodeLine {
  std::string code;  // comments and literal contents blanked out
  std::string raw;   // original text (where allow() markers live)
};

// Splits `content` into lines with comments and string/char literal bodies
// replaced by spaces. Handles //, /* */, and raw string literals; line
// numbering is preserved (a multi-line /* */ blanks every covered line).
std::vector<CodeLine> StripComments(const std::string& content);

// Runs every line rule applicable to `path` over `content`. `path` must be
// repo-relative with '/' separators (rules dispatch on its prefix).
// Findings suppressed by a `dbs-lint: allow(...)` marker are dropped here.
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content);

// Drops findings whose line carries a `dbs-lint: allow(rule)` marker (on
// the finding's line, or alone on the line above). Exposed so the token
// passes share the line rules' suppression semantics.
std::vector<Finding> ApplyAllowMarkers(const std::vector<CodeLine>& lines,
                                       const std::vector<Finding>& findings);

// One file handed to the tree-level passes.
struct SourceFile {
  std::string path;     // repo-relative, '/'-separated
  std::string content;
};

struct TreeOptions {
  // Layering matrix for the include-graph pass; the pass is skipped when
  // null (unit tests drive it directly, the CLI always supplies one).
  const LayerMatrix* layers = nullptr;
};

struct TreeResult {
  std::vector<Finding> findings;  // sorted by (file, line, rule)
  std::vector<std::string> notes; // informational: skipped includes, etc.
};

// Runs all three passes — line rules, decl/statement rules (with the
// tree-wide Status-function set), and the include-graph pass — over the
// whole file set. Allow-marker suppression applies to every pass.
TreeResult LintTree(const std::vector<SourceFile>& files,
                    const TreeOptions& options);

// One-paragraph rationale for a rule name (the CLI's explain= flag), or
// nullptr for unknown rules.
const char* ExplainRule(const std::string& rule);

// Every rule name the analyzer can emit, sorted.
std::vector<std::string> AllRules();

// Baseline entries are `rule|path|normalized code` lines; duplicates mean
// multiplicity. '#' lines and blank lines are ignored.
std::vector<std::string> ParseBaseline(const std::string& text);

// Removes findings matched by baseline entries (each entry consumes one
// occurrence). Returns the findings that remain — the newly introduced ones.
std::vector<Finding> ApplyBaseline(const std::vector<Finding>& findings,
                                   const std::vector<std::string>& baseline);

// Renders findings in the baseline file format, one line each, sorted.
std::string FormatBaseline(const std::vector<Finding>& findings);

// Human-readable `path:line: [rule] message` lines plus a summary line.
std::string FormatText(const std::vector<Finding>& findings);

// JSON array of {rule, file, line, code, message} objects.
std::string FormatJson(const std::vector<Finding>& findings);

// GitHub workflow annotations: `::error file=...,line=...::message` — CI
// emits these so findings appear inline on pull requests.
std::string FormatGithub(const std::vector<Finding>& findings);

}  // namespace dbs::lint

#endif  // DBS_TOOLS_LINT_LINT_H_
