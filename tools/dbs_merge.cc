// dbs_merge — sharded KDE build collector (DESIGN.md §12).
//
//   dbs_merge in=data.dbsf out=model.dbsk [ports=7071,7072,...]
//             [shards=1] [workers=0] [kernels=1000] [bandwidth_scale=1.0]
//             [seed=1] [check=0|1]
//
// Multi-process mode (ports= given): each listed dbsd daemon fits ONE shard
// of the dataset at `in` — a path every daemon must be able to read — via
// the partial_fit RPC, all daemons fitting concurrently (one collector
// thread each). The serialized partial states are tree-reduced here
// and finalized into a model saved at `out`. Because a shard's partial
// build is a pure function of (path, options, shard identity), the merged
// model is bitwise identical to an in-process build with the same shard
// count; check=1 verifies exactly that and fails the run on any mismatch.
//
// In-process mode (no ports=): the same build fanned over shards=N local
// shard tasks (workers=W threads), the single-machine path of the same
// pipeline. shards=1 reproduces Kde::Fit bitwise.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/dataset_io.h"
#include "density/kde.h"
#include "density/kde_io.h"
#include "density/kde_partial.h"
#include "parallel/batch_executor.h"
#include "serve/client.h"
#include "shard/coordinator.h"
#include "tools/flags.h"

namespace {

// Splits "7071,7072" into port numbers; returns false on any bad token.
bool ParsePorts(const std::string& spec, std::vector<uint16_t>* ports) {
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(begin, end - begin);
    if (token.empty()) return false;
    int value = 0;
    for (char c : token) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + (c - '0');
      if (value > 65535) return false;
    }
    if (value == 0) return false;
    ports->push_back(static_cast<uint16_t>(value));
    if (end == spec.size()) break;
    begin = end + 1;
  }
  return !ports->empty();
}

// Pairwise tree reduction of the collected shard states; the merge is a
// sorted disjoint union, so the pairing cannot affect the result — the tree
// shape only bounds the reduction depth.
[[nodiscard]] dbs::Result<dbs::density::PartialKde> TreeReduce(
    std::vector<dbs::density::PartialKde> parts) {
  while (parts.size() > 1) {
    std::vector<dbs::density::PartialKde> next;
    next.reserve((parts.size() + 1) / 2);
    for (size_t i = 0; i + 1 < parts.size(); i += 2) {
      auto merged = dbs::density::MergePartialKde(std::move(parts[i]),
                                                  std::move(parts[i + 1]));
      if (!merged.ok()) return merged.status();
      next.push_back(std::move(*merged));
    }
    if (parts.size() % 2 == 1) next.push_back(std::move(parts.back()));
    parts = std::move(next);
  }
  return std::move(parts.front());
}

// Bitwise model equality via the serialization snapshot.
bool SameModel(const dbs::density::Kde& a, const dbs::density::Kde& b) {
  dbs::density::Kde::State sa = a.ExportState();
  dbs::density::Kde::State sb = b.ExportState();
  return sa.n == sb.n && sa.kernel == sb.kernel &&
         sa.centers.flat() == sb.centers.flat() &&
         sa.centers.dim() == sb.centers.dim() &&
         sa.bandwidths == sb.bandwidths &&
         sa.bounds.lo() == sb.bounds.lo() && sa.bounds.hi() == sb.bounds.hi();
}

}  // namespace

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  std::string in = flags.GetString("in", "");
  std::string out = flags.GetString("out", "");
  std::string ports_spec = flags.GetString("ports", "");
  int64_t shards = flags.GetInt("shards", 1);
  int64_t workers = flags.GetInt("workers", 0);
  int64_t kernels = flags.GetInt("kernels", 1000);
  double bandwidth_scale = flags.GetDouble("bandwidth_scale", 1.0);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  bool check = flags.GetInt("check", 0) != 0;
  if (!flags.AllKnown()) return 2;
  if (in.empty() || out.empty()) {
    std::fprintf(stderr,
                 "usage: dbs_merge in=data.dbsf out=model.dbsk "
                 "[ports=7071,7072,...] [shards=1] [workers=0] [kernels=] "
                 "[bandwidth_scale=] [seed=] [check=0|1]\n");
    return 2;
  }
  if (shards < 1) {
    std::fprintf(stderr, "shards must be >= 1\n");
    return 2;
  }

  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = kernels;
  kde_opts.bandwidth_scale = bandwidth_scale;
  kde_opts.seed = seed;

  // In-process shard coordinator: the whole build in the no-ports mode, the
  // reference build for check=1 in the distributed mode.
  auto run_local = [&](int64_t num_shards)
      -> dbs::Result<dbs::density::Kde> {
    std::unique_ptr<dbs::parallel::BatchExecutor> executor;
    if (workers > 0) {
      dbs::parallel::BatchExecutorOptions pool_opts;
      pool_opts.num_workers = static_cast<int>(workers);
      executor = std::make_unique<dbs::parallel::BatchExecutor>(pool_opts);
    }
    dbs::shard::ShardCoordinatorOptions coord_opts;
    coord_opts.shards = num_shards;
    coord_opts.executor = executor.get();
    dbs::shard::ShardCoordinator coordinator(
        [&in]() -> dbs::Result<std::unique_ptr<dbs::data::DataScan>> {
          auto opened = dbs::data::FileScan::Open(in, /*batch_rows=*/8192);
          if (!opened.ok()) return opened.status();
          return std::unique_ptr<dbs::data::DataScan>(std::move(*opened));
        },
        coord_opts);
    return coordinator.BuildKde(kde_opts);
  };

  dbs::Result<dbs::density::Kde> kde = dbs::Status::InvalidArgument("unset");
  if (ports_spec.empty()) {
    kde = run_local(shards);
    if (!kde.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   kde.status().ToString().c_str());
      return 1;
    }
    std::printf("built: in-process, %lld shard(s)\n",
                static_cast<long long>(shards));
  } else {
    std::vector<uint16_t> ports;
    if (!ParsePorts(ports_spec, &ports)) {
      std::fprintf(stderr, "bad ports list '%s'\n", ports_spec.c_str());
      return 2;
    }
    const int64_t num_shards = static_cast<int64_t>(ports.size());

    // One PartialFit RPC per daemon; daemon i owns shard i. The gathers run
    // on one thread per daemon so the fits proceed concurrently — each
    // thread fills its own slot, so the collected order (and therefore the
    // tree reduction) is identical to the sequential gather.
    std::vector<dbs::density::PartialKde> parts(ports.size());
    std::vector<dbs::Status> statuses(ports.size(), dbs::Status::Ok());
    {
      std::vector<std::thread> gatherers;
      gatherers.reserve(ports.size());
      for (size_t i = 0; i < ports.size(); ++i) {
        gatherers.emplace_back([&, i] {
          auto client = dbs::serve::Client::Connect(ports[i]);
          if (!client.ok()) {
            statuses[i] = client.status();
            return;
          }
          dbs::serve::PartialFitRequest request;
          request.path = in;
          request.shard = static_cast<int64_t>(i);
          request.num_shards = num_shards;
          request.num_kernels = kernels;
          request.bandwidth_scale = bandwidth_scale;
          request.seed = seed;
          auto partial = client->PartialFit(request);
          if (!partial.ok()) {
            statuses[i] = partial.status();
            return;
          }
          parts[i] = std::move(*partial);
        });
      }
      for (std::thread& t : gatherers) t.join();
    }
    // Report the first failure in port order, matching the sequential
    // gather's behavior.
    for (size_t i = 0; i < ports.size(); ++i) {
      if (!statuses[i].ok()) {
        std::fprintf(stderr, "partial fit on port %u failed: %s\n",
                     static_cast<unsigned>(ports[i]),
                     statuses[i].ToString().c_str());
        return 1;
      }
    }

    auto merged = TreeReduce(std::move(parts));
    if (!merged.ok()) {
      std::fprintf(stderr, "merge failed: %s\n",
                   merged.status().ToString().c_str());
      return 1;
    }
    kde = dbs::density::FinalizeKde(std::move(*merged), kde_opts);
    if (!kde.ok()) {
      std::fprintf(stderr, "finalize failed: %s\n",
                   kde.status().ToString().c_str());
      return 1;
    }
    std::printf("built: %lld daemon shard(s)\n",
                static_cast<long long>(num_shards));

    if (check) {
      auto reference = run_local(num_shards);
      if (!reference.ok()) {
        std::fprintf(stderr, "check build failed: %s\n",
                     reference.status().ToString().c_str());
        return 1;
      }
      if (!SameModel(*kde, *reference)) {
        std::fprintf(stderr,
                     "FAIL: merged model differs from the in-process "
                     "sharded build\n");
        return 1;
      }
      std::printf("check: merged model matches the in-process build\n");
    }
  }

  dbs::Status saved = dbs::density::SaveKde(*kde, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "model save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("out: %s (%lld kernels, dim %d, n=%lld)\n", out.c_str(),
              static_cast<long long>(kde->num_kernels()), kde->dim(),
              static_cast<long long>(kde->total_mass()));
  return 0;
}
