// Minimal key=value flag parsing shared by the CLI tools.
//
// Usage: dbs_sample in=data.dbsf out=sample.dbsf a=1.0 size=2000
// Unknown keys are rejected so typos fail loudly.

#ifndef DBS_TOOLS_FLAGS_H_
#define DBS_TOOLS_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace dbs::tools {

class Flags {
 public:
  // Parses argv entries of the form key=value. Returns false (after
  // printing the offending argument) on anything else.
  bool Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      size_t eq = arg.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "expected key=value, got '%s'\n", arg.c_str());
        return false;
      }
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
    return true;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) {
    consumed_.insert({key, true});
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) {
    consumed_.insert({key, true});
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  int64_t GetInt(const std::string& key, int64_t fallback) {
    consumed_.insert({key, true});
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  // True when every provided key was consumed by a Get*; prints strays.
  bool AllKnown() const {
    bool ok = true;
    for (const auto& [key, value] : values_) {
      if (!consumed_.count(key)) {
        std::fprintf(stderr, "unknown flag '%s'\n", key.c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
};

}  // namespace dbs::tools

#endif  // DBS_TOOLS_FLAGS_H_
