// dbs_sample — density-biased (or uniform) sampling of a .dbsf file.
//
//   dbs_sample in=data.dbsf out=sample.dbsf [a=1.0] [size=2000]
//              [kernels=1000] [bandwidth_scale=1.0] [mode=twopass|onepass|
//              stream|uniform] [seed=1] [double_buffer=1] [shards=1]
//              [workers=0]
//
// Streams the input (never materializes it), writes the sampled points to
// `out`, and prints the sample statistics: size, normalizer, clamped count
// and the Horvitz-Thompson estimate of the input size.
//
// The twopass/onepass modes run through the sharded build pipeline
// (DESIGN.md §12): shards=N splits every pass into N disjoint row ranges
// whose partial states are merged, and workers=W fans the shard builds over
// a thread pool. shards=1 (the default) is bitwise identical to the
// unsharded pipeline, and any worker count leaves the output unchanged.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "core/biased_sampler.h"
#include "core/streaming_sampler.h"
#include "data/dataset_io.h"
#include "density/kde.h"
#include "density/kde_io.h"
#include "parallel/batch_executor.h"
#include "sampling/uniform_sampler.h"
#include "shard/coordinator.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  std::string in = flags.GetString("in", "");
  std::string out = flags.GetString("out", "");
  double a = flags.GetDouble("a", 1.0);
  int64_t size = flags.GetInt("size", 2000);
  int64_t kernels = flags.GetInt("kernels", 1000);
  double bandwidth_scale = flags.GetDouble("bandwidth_scale", 1.0);
  std::string mode = flags.GetString("mode", "twopass");
  // Reuse a saved estimator instead of fitting (mode twopass/onepass), or
  // persist the fitted one for later runs.
  std::string model_in = flags.GetString("model", "");
  std::string model_out = flags.GetString("save_model", "");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  // Overlap file reads with compute (on by default; double_buffer=0 forces
  // the synchronous scan). Batches are delivered in the same order either
  // way, so the sample bytes are identical.
  bool double_buffer = flags.GetInt("double_buffer", 1) != 0;
  int64_t shards = flags.GetInt("shards", 1);
  int64_t workers = flags.GetInt("workers", 0);
  if (!flags.AllKnown()) return 2;
  if (in.empty() || out.empty()) {
    std::fprintf(stderr,
                 "usage: dbs_sample in=data.dbsf out=sample.dbsf [a=] "
                 "[size=] [kernels=] [bandwidth_scale=] "
                 "[mode=twopass|onepass|stream|uniform] "
                 "[model=est.dbsk] [save_model=est.dbsk] [seed=] "
                 "[double_buffer=0|1] [shards=1] [workers=0]\n");
    return 2;
  }
  if (shards < 1) {
    std::fprintf(stderr, "shards must be >= 1\n");
    return 2;
  }
  if (shards > 1 && mode != "twopass" && mode != "onepass") {
    std::fprintf(stderr, "mode '%s' does not support shards > 1\n",
                 mode.c_str());
    return 2;
  }

  auto scan_result =
      dbs::data::FileScan::Open(in, /*batch_rows=*/8192, double_buffer);
  if (!scan_result.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 scan_result.status().ToString().c_str());
    return 1;
  }
  dbs::data::FileScan& scan = **scan_result;
  std::printf("in: %s (%lld points, dim %d)\n", in.c_str(),
              static_cast<long long>(scan.size()), scan.dim());

  dbs::data::PointSet sampled_points(scan.dim());
  double normalizer = 0;
  int64_t clamped = 0;
  double estimated_n = 0;
  int scan_passes = 0;

  if (mode == "uniform") {
    dbs::sampling::BernoulliSampleOptions opts;
    opts.target_size = size;
    opts.seed = seed;
    auto sample = dbs::sampling::BernoulliSample(scan, opts);
    if (!sample.ok()) {
      std::fprintf(stderr, "sampling failed: %s\n",
                   sample.status().ToString().c_str());
      return 1;
    }
    sampled_points = std::move(sample).value();
    estimated_n = static_cast<double>(scan.size());
    scan_passes = scan.passes();
  } else if (mode == "stream") {
    dbs::core::StreamingSamplerOptions opts;
    opts.a = a;
    opts.target_size = size;
    opts.num_kernels = kernels;
    opts.bandwidth_scale = bandwidth_scale;
    opts.seed = seed;
    auto sample = dbs::core::StreamingBiasedSample(scan, opts);
    if (!sample.ok()) {
      std::fprintf(stderr, "sampling failed: %s\n",
                   sample.status().ToString().c_str());
      return 1;
    }
    normalizer = sample->normalizer;
    clamped = sample->clamped_count;
    estimated_n = sample->EstimatedDatasetSize();
    sampled_points = std::move(sample->points);
    scan_passes = scan.passes();
  } else if (mode == "twopass" || mode == "onepass") {
    // Every pass (fit, normalizer, sampling) runs through the shard
    // coordinator; each shard streams its own slice from a fresh scan.
    // shards=1 is the unsharded pipeline, bitwise.
    std::unique_ptr<dbs::parallel::BatchExecutor> executor;
    if (workers > 0) {
      dbs::parallel::BatchExecutorOptions pool_opts;
      pool_opts.num_workers = static_cast<int>(workers);
      executor =
          std::make_unique<dbs::parallel::BatchExecutor>(pool_opts);
    }
    dbs::shard::ShardCoordinatorOptions coord_opts;
    coord_opts.shards = shards;
    coord_opts.executor = executor.get();
    dbs::shard::ShardCoordinator coordinator(
        [&in, double_buffer]()
            -> dbs::Result<std::unique_ptr<dbs::data::DataScan>> {
          auto opened =
              dbs::data::FileScan::Open(in, /*batch_rows=*/8192,
                                        double_buffer);
          if (!opened.ok()) return opened.status();
          return std::unique_ptr<dbs::data::DataScan>(std::move(*opened));
        },
        coord_opts);

    dbs::Result<dbs::density::Kde> kde =
        dbs::Status::InvalidArgument("unset");
    if (!model_in.empty()) {
      kde = dbs::density::LoadKde(model_in);
    } else {
      dbs::density::KdeOptions kde_opts;
      kde_opts.num_kernels = kernels;
      kde_opts.bandwidth_scale = bandwidth_scale;
      kde_opts.seed = seed;
      kde = coordinator.BuildKde(kde_opts);
    }
    if (!kde.ok()) {
      std::fprintf(stderr, "kde failed: %s\n",
                   kde.status().ToString().c_str());
      return 1;
    }
    if (!model_out.empty()) {
      dbs::Status saved = dbs::density::SaveKde(*kde, model_out);
      if (!saved.ok()) {
        std::fprintf(stderr, "model save failed: %s\n",
                     saved.ToString().c_str());
        return 1;
      }
      std::printf("model: saved estimator to %s\n", model_out.c_str());
    }
    dbs::core::BiasedSamplerOptions opts;
    opts.a = a;
    opts.target_size = size;
    opts.seed = seed;
    auto sample = mode == "twopass"
                      ? coordinator.SampleTwoPass(*kde, opts)
                      : coordinator.SampleOnePass(*kde, opts);
    if (!sample.ok()) {
      std::fprintf(stderr, "sampling failed: %s\n",
                   sample.status().ToString().c_str());
      return 1;
    }
    normalizer = sample->normalizer;
    clamped = sample->clamped_count;
    estimated_n = sample->EstimatedDatasetSize();
    sampled_points = std::move(sample->points);
    // The coordinator's shards open their own scans, so logical dataset
    // passes are accounted here: one for a fresh fit, two for the
    // normalizer+sampling sweeps (one when onepass skips the normalizer).
    // Matches what scan.passes() reported when the passes all ran on the
    // scan above.
    scan_passes = (model_in.empty() ? 1 : 0) + (mode == "twopass" ? 2 : 1);
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }

  dbs::Status status = dbs::data::WriteDatasetFile(out, sampled_points);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "out: %s (%lld points) mode=%s a=%.3g passes=%d\n"
      "normalizer=%.6g clamped=%lld estimated-input-size=%.0f\n",
      out.c_str(), static_cast<long long>(sampled_points.size()),
      mode.c_str(), a, scan_passes, normalizer,
      static_cast<long long>(clamped) * 1LL, estimated_n);
  return 0;
}
