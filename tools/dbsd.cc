// dbsd — the model-serving daemon.
//
//   dbsd [port=7070] [workers=4] [queue=256] [transport=shm|tcp]
//        [backend=grid|dualtree] [rel_error=0] [model=name:est.dbsk]...
//
// Serves the dbs wire protocol on loopback TCP: clients register saved
// .dbsk estimators by name and then issue density-batch, biased-sample and
// outlier-score requests against them (see tools/dbs_query.cc). port=0
// picks an ephemeral port; the bound port is printed either way, so
// scripts can parse it. The daemon runs until a client sends a shutdown
// request (dbs_query op=shutdown).
//
// transport=shm (the default) additionally accepts shared-memory ring
// upgrades from colocated clients (dbs_query transport=shm); transport=tcp
// declines them, forcing every client onto plain TCP.
//
// `model=` flags preload models at startup; repeatable as model, model2,
// model3, ... since the flag parser keeps one value per key.
//
// backend=dualtree serves preloaded models through the dual-tree evaluator
// (density/dual_tree_kde.h) instead of the flat grid index — identical
// responses when rel_error=0 (the default), certified-approximate within
// the given relative error budget otherwise. rel_error requires
// backend=dualtree.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "serve/batch_executor.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  int64_t port = flags.GetInt("port", 7070);
  int64_t workers = flags.GetInt("workers", 4);
  int64_t queue = flags.GetInt("queue", 256);
  std::string transport = flags.GetString("transport", "shm");
  std::string backend = flags.GetString("backend", "grid");
  double rel_error = flags.GetDouble("rel_error", 0.0);

  // Preload flags: model=, model2=, model3=, ... each "name:path".
  std::vector<std::pair<std::string, std::string>> preload;
  for (int i = 1; i <= 16; ++i) {
    std::string key = i == 1 ? "model" : "model" + std::to_string(i);
    std::string value = flags.GetString(key, "");
    if (value.empty()) continue;
    size_t colon = value.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == value.size()) {
      std::fprintf(stderr, "expected %s=name:path, got '%s'\n", key.c_str(),
                   value.c_str());
      return 2;
    }
    preload.emplace_back(value.substr(0, colon), value.substr(colon + 1));
  }
  if (!flags.AllKnown()) return 2;
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "port must be in [0, 65535]\n");
    return 2;
  }
  if (transport != "shm" && transport != "tcp") {
    std::fprintf(stderr, "transport must be shm or tcp\n");
    return 2;
  }
  if (backend != "grid" && backend != "dualtree") {
    std::fprintf(stderr, "backend must be grid or dualtree\n");
    return 2;
  }
  if (rel_error != 0.0 && backend != "dualtree") {
    std::fprintf(stderr, "rel_error requires backend=dualtree\n");
    return 2;
  }

  dbs::serve::ModelRegistry registry;
  for (const auto& [name, path] : preload) {
    dbs::Status status =
        backend == "dualtree"
            ? registry.LoadKdeFileDualTree(name, path, rel_error)
            : registry.LoadKdeFile(name, path);
    if (!status.ok()) {
      std::fprintf(stderr, "preload of '%s' failed: %s\n", name.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("model: %s <- %s (%s)\n", name.c_str(), path.c_str(),
                backend.c_str());
  }

  dbs::serve::BatchExecutorOptions executor_opts;
  executor_opts.num_workers = static_cast<int>(workers);
  executor_opts.queue_capacity = queue;
  dbs::serve::BatchExecutor executor(executor_opts);
  dbs::serve::ModelService service(&registry, &executor);

  dbs::serve::ServerOptions server_opts;
  server_opts.port = static_cast<uint16_t>(port);
  server_opts.enable_shm = transport == "shm";
  auto server = dbs::serve::Server::Start(&service, server_opts);
  if (!server.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "dbsd: listening on 127.0.0.1:%u (%d workers, queue %lld, "
      "transport %s)\n",
      (*server)->port(), executor.num_workers(),
      static_cast<long long>(queue),
      server_opts.enable_shm ? "tcp+shm" : "tcp");
  std::fflush(stdout);

  (*server)->WaitForShutdown();
  std::printf("dbsd: shutdown requested, draining\n");
  (*server)->Stop();
  executor.Shutdown();
  return 0;
}
