// dbs_lint: enforce the project invariants behind the determinism
// guarantees (see tools/lint/lint.h for the rule catalog).
//
// Usage:
//   dbs_lint [root=.] [paths=src,tools,bench,tests,examples]
//            [baseline=tools/dbs_lint_baseline.txt]
//            [layers=tools/lint/layers.txt]
//            [format=text|json|github] [update_baseline=0] [out=]
//            [disable=rule-a,rule-b] [notes=1]
//   dbs_lint explain=<rule>|all
//
// Exits 0 when no findings survive the baseline, 1 on findings, 2 on
// usage or I/O errors. `format=github` emits workflow annotations so CI
// findings appear inline on pull requests. `update_baseline=1` rewrites
// the baseline to grandfather the current findings instead of failing.
// `explain=<rule>` prints the rule's rationale and exits; `disable=`
// drops named rules from this run (the CI gate runs with none disabled).
// `layers=` points at the allowed-layers matrix; `layers=` (empty) skips
// the include-graph pass. Informational notes — lexer guesses and
// #include operands that cannot be resolved statically — go to stderr
// unless notes=0.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/flags.h"
#include "tools/lint/include_graph.h"
#include "tools/lint/lint.h"

namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> parts;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

int Explain(const std::string& rule) {
  std::vector<std::string> rules =
      rule == "all" ? dbs::lint::AllRules() : std::vector<std::string>{rule};
  for (const std::string& r : rules) {
    const char* doc = dbs::lint::ExplainRule(r);
    if (doc == nullptr) {
      std::fprintf(stderr, "unknown rule '%s'; known rules:\n", r.c_str());
      for (const std::string& known : dbs::lint::AllRules()) {
        std::fprintf(stderr, "  %s\n", known.c_str());
      }
      return 2;
    }
    std::printf("%s\n  %s\n", r.c_str(), doc);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  const std::string root = flags.GetString("root", ".");
  const std::string paths =
      flags.GetString("paths", "src,tools,bench,tests,examples");
  const std::string baseline_rel =
      flags.GetString("baseline", "tools/dbs_lint_baseline.txt");
  const std::string layers_rel =
      flags.GetString("layers", "tools/lint/layers.txt");
  const std::string format = flags.GetString("format", "text");
  const bool update_baseline = flags.GetInt("update_baseline", 0) != 0;
  const std::string out_path = flags.GetString("out", "");
  const std::string explain = flags.GetString("explain", "");
  const std::string disable = flags.GetString("disable", "");
  const bool show_notes = flags.GetInt("notes", 1) != 0;
  if (!flags.AllKnown()) return 2;
  if (!explain.empty()) return Explain(explain);
  if (format != "text" && format != "json" && format != "github") {
    std::fprintf(stderr, "format must be text, json or github\n");
    return 2;
  }
  std::set<std::string> disabled;
  for (const std::string& rule : SplitList(disable)) {
    if (dbs::lint::ExplainRule(rule) == nullptr) {
      std::fprintf(stderr, "disable= names unknown rule '%s'\n", rule.c_str());
      return 2;
    }
    disabled.insert(rule);
  }

  // Deterministic file order: collect, then sort by repo-relative path.
  std::vector<std::string> files;
  for (const std::string& dir : SplitList(paths)) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) {
      std::fprintf(stderr, "no such directory under root: %s\n", dir.c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      files.push_back(
          fs::path(entry.path()).lexically_relative(root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<dbs::lint::SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& rel : files) {
    std::string content;
    if (!ReadFile(fs::path(root) / rel, &content)) {
      std::fprintf(stderr, "cannot read %s\n", rel.c_str());
      return 2;
    }
    sources.push_back({rel, std::move(content)});
  }

  dbs::lint::LayerMatrix matrix;
  dbs::lint::TreeOptions options;
  if (!layers_rel.empty()) {
    std::string text;
    if (!ReadFile(fs::path(root) / layers_rel, &text)) {
      std::fprintf(stderr, "cannot read layer matrix %s\n",
                   layers_rel.c_str());
      return 2;
    }
    std::string error;
    if (!dbs::lint::ParseLayerMatrix(text, &matrix, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    options.layers = &matrix;
  }

  dbs::lint::TreeResult tree = dbs::lint::LintTree(sources, options);
  std::vector<dbs::lint::Finding> findings;
  for (dbs::lint::Finding& f : tree.findings) {
    if (disabled.count(f.rule) == 0) findings.push_back(std::move(f));
  }
  if (show_notes) {
    for (const std::string& note : tree.notes) {
      std::fprintf(stderr, "note: %s\n", note.c_str());
    }
  }

  const fs::path baseline_path = fs::path(root) / baseline_rel;
  if (update_baseline) {
    std::ofstream out(baseline_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", baseline_rel.c_str());
      return 2;
    }
    out << dbs::lint::FormatBaseline(findings);
    std::printf("baseline updated: %zu finding(s) grandfathered\n",
                findings.size());
    return 0;
  }

  std::vector<std::string> baseline;
  {
    std::string text;
    if (ReadFile(baseline_path, &text)) {
      baseline = dbs::lint::ParseBaseline(text);
    }
  }
  const std::vector<dbs::lint::Finding> fresh =
      dbs::lint::ApplyBaseline(findings, baseline);

  std::string rendered;
  if (format == "json") {
    rendered = dbs::lint::FormatJson(fresh);
  } else if (format == "github") {
    rendered = dbs::lint::FormatGithub(fresh);
  } else {
    rendered = dbs::lint::FormatText(fresh);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << rendered;
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  if (format != "text") {
    std::fprintf(stderr, "%zu new finding(s), %zu scanned file(s)\n",
                 fresh.size(), files.size());
  }
  return fresh.empty() ? 0 : 1;
}
