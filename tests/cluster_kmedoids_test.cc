#include "cluster/kmedoids.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::cluster {
namespace {

using data::Metric;
using data::PointSet;

PointSet Blobs(const std::vector<std::pair<double, double>>& centers,
               int64_t per_blob, double sigma, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(2);
  for (auto [cx, cy] : centers) {
    for (int64_t i = 0; i < per_blob; ++i) {
      ps.Append(std::vector<double>{rng.NextGaussian(cx, sigma),
                                    rng.NextGaussian(cy, sigma)});
    }
  }
  return ps;
}

TEST(KMedoidsTest, RejectsBadArguments) {
  PointSet ps(2, {0.0, 0.0, 1.0, 1.0});
  KMedoidsOptions bad;
  bad.num_clusters = 0;
  EXPECT_FALSE(KMedoidsCluster(ps, {}, bad).ok());
  KMedoidsOptions opts;
  EXPECT_FALSE(KMedoidsCluster(PointSet(2), {}, opts).ok());
  EXPECT_FALSE(KMedoidsCluster(ps, {1.0}, opts).ok());
  EXPECT_FALSE(KMedoidsCluster(ps, {1.0, 0.0}, opts).ok());
}

TEST(KMedoidsTest, MedoidsAreDataPoints) {
  PointSet ps = Blobs({{0.2, 0.2}, {0.8, 0.8}}, 100, 0.05, 1);
  KMedoidsOptions opts;
  opts.num_clusters = 2;
  auto result = KMedoidsCluster(ps, {}, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->medoid_indices.size(), 2u);
  for (size_t c = 0; c < 2; ++c) {
    int64_t idx = result->medoid_indices[c];
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, ps.size());
    // The reported centroid is the medoid point itself.
    EXPECT_EQ(result->clustering.clusters[c].centroid,
              ps[idx].ToVector());
  }
}

TEST(KMedoidsTest, RecoversSeparatedBlobs) {
  PointSet ps = Blobs({{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}}, 150, 0.04, 2);
  KMedoidsOptions opts;
  opts.num_clusters = 3;
  auto result = KMedoidsCluster(ps, {}, opts);
  ASSERT_TRUE(result.ok());
  for (const Cluster& c : result->clustering.clusters) {
    EXPECT_EQ(c.members.size(), 150u);
  }
  // Medoids land near the blob centers.
  for (auto [ex, ey] : {std::pair{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}}) {
    double best = 1e9;
    for (int64_t idx : result->medoid_indices) {
      double dx = ps[idx][0] - ex;
      double dy = ps[idx][1] - ey;
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
    EXPECT_LT(best, 0.03);
  }
}

TEST(KMedoidsTest, ScatteredOutliersDoNotClaimAMedoid) {
  // Three isolated points in DIFFERENT directions: no single medoid can
  // serve more than one, so dedicating a medoid to any of them saves less
  // than it costs to merge the two 200-point blobs. Both medoids must stay
  // in the blobs (k-means, by contrast, drags its centers outward).
  PointSet ps = Blobs({{0.2, 0.5}, {0.8, 0.5}}, 200, 0.03, 3);
  ps.Append(std::vector<double>{5.0, 0.5});
  ps.Append(std::vector<double>{-4.0, 0.5});
  ps.Append(std::vector<double>{0.5, 6.0});
  KMedoidsOptions opts;
  opts.num_clusters = 2;
  opts.seed = 5;
  auto result = KMedoidsCluster(ps, {}, opts);
  ASSERT_TRUE(result.ok());
  for (int64_t idx : result->medoid_indices) {
    EXPECT_GT(ps[idx][0], -0.5);
    EXPECT_LT(ps[idx][0], 1.5);
    EXPECT_NEAR(ps[idx][1], 0.5, 0.3);
  }
}

TEST(KMedoidsTest, WeightsPullTheMedoid) {
  // Five collinear points; a dominant weight on one end must make it the
  // 1-medoid.
  PointSet ps(1, {0.0, 1.0, 2.0, 3.0, 4.0});
  KMedoidsOptions opts;
  opts.num_clusters = 1;
  auto plain = KMedoidsCluster(ps, {}, opts);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->medoid_indices[0], 2);  // the median

  auto weighted = KMedoidsCluster(ps, {100.0, 1.0, 1.0, 1.0, 1.0}, opts);
  ASSERT_TRUE(weighted.ok());
  EXPECT_EQ(weighted->medoid_indices[0], 0);
}

TEST(KMedoidsTest, MetricChangesTheObjective) {
  // L2 vs Linf pick different medoids for an L-shaped configuration.
  PointSet ps(2, {0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.9, 0.9});
  KMedoidsOptions l2;
  l2.num_clusters = 1;
  l2.metric = Metric::kL2;
  KMedoidsOptions linf = l2;
  linf.metric = Metric::kLinf;
  auto a = KMedoidsCluster(ps, {}, l2);
  auto b = KMedoidsCluster(ps, {}, linf);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both give a valid single cluster with all members.
  EXPECT_EQ(a->clustering.clusters[0].members.size(), 4u);
  EXPECT_EQ(b->clustering.clusters[0].members.size(), 4u);
  // Costs are metric-consistent: recompute and compare.
  auto recompute = [&](const KMedoidsResult& r, Metric m) {
    double sum = 0;
    for (int64_t i = 0; i < ps.size(); ++i) {
      sum += data::Distance(ps[i], ps[r.medoid_indices[0]], m);
    }
    return sum;
  };
  EXPECT_NEAR(a->cost, recompute(*a, Metric::kL2), 1e-9);
  EXPECT_NEAR(b->cost, recompute(*b, Metric::kLinf), 1e-9);
}

TEST(KMedoidsTest, CostNeverBelowZeroAndConverges) {
  PointSet ps = Blobs({{0.3, 0.3}, {0.7, 0.7}}, 300, 0.1, 7);
  KMedoidsOptions opts;
  opts.num_clusters = 2;
  opts.max_iterations = 50;
  auto result = KMedoidsCluster(ps, {}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->cost, 0.0);
  EXPECT_LT(result->iterations, 50);
}

TEST(KMedoidsTest, KLargerThanN) {
  PointSet ps(2, {0.0, 0.0, 1.0, 1.0});
  KMedoidsOptions opts;
  opts.num_clusters = 5;
  auto result = KMedoidsCluster(ps, {}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters(), 2);
  EXPECT_NEAR(result->cost, 0.0, 1e-12);
}

TEST(KMedoidsTest, DeterministicPerSeed) {
  PointSet ps = Blobs({{0.25, 0.5}, {0.75, 0.5}}, 120, 0.06, 9);
  KMedoidsOptions opts;
  opts.num_clusters = 2;
  opts.seed = 13;
  auto a = KMedoidsCluster(ps, {}, opts);
  auto b = KMedoidsCluster(ps, {}, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->medoid_indices, b->medoid_indices);
  EXPECT_EQ(a->clustering.labels, b->clustering.labels);
}

}  // namespace
}  // namespace dbs::cluster
