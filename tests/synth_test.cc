#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/distance.h"
#include "synth/cluster_spec.h"
#include "synth/cure_dataset.h"
#include "synth/generator.h"
#include "synth/geo.h"
#include "synth/outlier_planting.h"
#include "util/rng.h"

namespace dbs::synth {
namespace {

using data::PointSet;
using data::PointView;

TEST(RegionTest, BoxContainment) {
  Region box = Region::Box({0.0, 0.0}, {1.0, 2.0});
  PointSet ps(2, {0.5, 1.0, 0.05, 1.0, 1.2, 1.0});
  EXPECT_TRUE(box.ContainsInterior(ps[0]));
  EXPECT_TRUE(box.ContainsInterior(ps[1]));
  EXPECT_FALSE(box.ContainsInterior(ps[2]));
  // 10% margin excludes points within 0.1 of the x faces.
  EXPECT_TRUE(box.ContainsInterior(ps[0], 0.1));
  EXPECT_FALSE(box.ContainsInterior(ps[1], 0.1));
  EXPECT_DOUBLE_EQ(box.Volume(), 2.0);
  EXPECT_EQ(box.Center(), (std::vector<double>{0.5, 1.0}));
}

TEST(RegionTest, BallContainment) {
  Region ball = Region::Ball({0.5, 0.5}, 0.2);
  PointSet ps(2, {0.5, 0.5, 0.65, 0.5, 0.71, 0.5});
  EXPECT_TRUE(ball.ContainsInterior(ps[0]));
  EXPECT_TRUE(ball.ContainsInterior(ps[1]));
  EXPECT_FALSE(ball.ContainsInterior(ps[2]));
  // Margin shrinks the radius: 0.15 from center fails at 30% margin.
  EXPECT_FALSE(ball.ContainsInterior(ps[1], 0.3));
  EXPECT_NEAR(ball.Volume(), M_PI * 0.04, 1e-12);
}

TEST(RegionTest, EllipsoidContainment) {
  Region e = Region::Ellipsoid({0.5, 0.5}, {0.2, 0.05});
  PointSet ps(2, {0.65, 0.5, 0.5, 0.54, 0.65, 0.54});
  EXPECT_TRUE(e.ContainsInterior(ps[0]));
  EXPECT_TRUE(e.ContainsInterior(ps[1]));
  EXPECT_FALSE(e.ContainsInterior(ps[2]));
  EXPECT_NEAR(e.Volume(), M_PI * 0.2 * 0.05, 1e-12);
}

TEST(ClusterPointCountsTest, EqualSizes) {
  auto counts = ClusterPointCounts(4, 1000, 1.0);
  ASSERT_EQ(counts.size(), 4u);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, 1000);
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 250.0, 1.0);
  }
}

TEST(ClusterPointCountsTest, SizeRatioIsRespected) {
  auto counts = ClusterPointCounts(10, 100000, 10.0);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, 100000);
  // Largest / smallest ~ 10.
  EXPECT_NEAR(static_cast<double>(counts.front()) /
                  static_cast<double>(counts.back()),
              10.0, 1.5);
  EXPECT_TRUE(std::is_sorted(counts.rbegin(), counts.rend()));
}

TEST(GeneratorTest, RejectsBadOptions) {
  ClusteredDatasetOptions bad;
  bad.num_clusters = 0;
  EXPECT_FALSE(MakeClusteredDataset(bad).ok());
  ClusteredDatasetOptions bad_extent;
  bad_extent.min_extent = 0.5;
  bad_extent.max_extent = 0.1;
  EXPECT_FALSE(MakeClusteredDataset(bad_extent).ok());
  ClusteredDatasetOptions bad_noise;
  bad_noise.noise_multiplier = -1;
  EXPECT_FALSE(MakeClusteredDataset(bad_noise).ok());
}

TEST(GeneratorTest, PointsMatchLabelsAndRegions) {
  ClusteredDatasetOptions opts;
  opts.num_clusters = 8;
  opts.num_cluster_points = 20000;
  opts.noise_multiplier = 0.3;
  opts.seed = 3;
  auto ds = MakeClusteredDataset(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->truth.regions.size(), 8u);
  EXPECT_EQ(ds->points.size(), 20000 + 6000);
  ASSERT_EQ(ds->truth.labels.size(), static_cast<size_t>(ds->points.size()));
  EXPECT_EQ(ds->truth.num_noise(), 6000);
  // Every labeled point lies inside its region.
  for (int64_t i = 0; i < ds->points.size(); ++i) {
    int32_t label = ds->truth.labels[i];
    if (label < 0) continue;
    EXPECT_TRUE(ds->truth.regions[label].ContainsInterior(ds->points[i]))
        << "point " << i;
  }
}

TEST(GeneratorTest, ClustersDoNotOverlap) {
  ClusteredDatasetOptions opts;
  opts.num_clusters = 10;
  opts.num_cluster_points = 1000;
  opts.seed = 4;
  auto ds = MakeClusteredDataset(opts);
  ASSERT_TRUE(ds.ok());
  // No region center lies inside another region.
  for (size_t a = 0; a < ds->truth.regions.size(); ++a) {
    std::vector<double> center = ds->truth.regions[a].Center();
    PointView c(center.data(), 2);
    for (size_t b = 0; b < ds->truth.regions.size(); ++b) {
      if (a == b) continue;
      EXPECT_FALSE(ds->truth.regions[b].ContainsInterior(c));
    }
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  ClusteredDatasetOptions opts;
  opts.num_cluster_points = 5000;
  opts.seed = 5;
  auto a = MakeClusteredDataset(opts);
  auto b = MakeClusteredDataset(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->points.size(), b->points.size());
  for (int64_t i = 0; i < a->points.size(); ++i) {
    EXPECT_EQ(a->points[i][0], b->points[i][0]);
  }
}

TEST(GeneratorTest, HighDimensionalGeneration) {
  ClusteredDatasetOptions opts;
  opts.dim = 5;
  opts.num_clusters = 10;
  opts.num_cluster_points = 5000;
  opts.seed = 6;
  auto ds = MakeClusteredDataset(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->points.dim(), 5);
  EXPECT_EQ(ds->truth.regions.size(), 10u);
}

TEST(CureDatasetTest, FiveClustersWithBigDominating) {
  CureDatasetOptions opts;
  opts.num_points = 50000;
  auto ds = MakeCureDataset1(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->truth.regions.size(), 5u);
  // Count per label; the big circle (label 0) holds about half the data.
  std::vector<int64_t> counts(5, 0);
  for (int32_t l : ds->truth.labels) {
    ASSERT_GE(l, 0);
    ++counts[l];
  }
  EXPECT_GT(counts[0], 2 * counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  // Every point lies inside its labeled region.
  for (int64_t i = 0; i < ds->points.size(); ++i) {
    EXPECT_TRUE(ds->truth.regions[ds->truth.labels[i]].ContainsInterior(
        ds->points[i]));
  }
}

TEST(CureDatasetTest, NoiseOption) {
  CureDatasetOptions opts;
  opts.num_points = 10000;
  opts.noise_multiplier = 0.5;
  auto ds = MakeCureDataset1(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->truth.num_noise(), 5000);
}

TEST(GeoTest, NorthEastHasThreeDenseMetros) {
  GeoDatasetOptions opts;
  opts.num_points = 40000;
  auto ds = MakeNorthEastLike(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->truth.regions.size(), 3u);
  EXPECT_EQ(ds->points.size(), 40000);  // shares sum to 1.0 of n
  // Metro points form a large minority; plenty of noise.
  int64_t noise = ds->truth.num_noise();
  EXPECT_GT(noise, ds->points.size() / 3);
  EXPECT_LT(noise, ds->points.size() * 2 / 3);
  // Metro regions are dense: each holds >= 10% of the points within ~3% of
  // the domain area.
  for (size_t r = 0; r < 3; ++r) {
    int64_t inside = 0;
    for (int64_t i = 0; i < ds->points.size(); ++i) {
      if (ds->truth.regions[r].ContainsInterior(ds->points[i])) ++inside;
    }
    EXPECT_GT(inside, ds->points.size() / 10) << "metro " << r;
  }
}

TEST(GeoTest, CaliforniaDefaultsToPaperSize) {
  GeoDatasetOptions opts;  // default 130000 -> substituted to 62553
  auto ds = MakeCaliforniaLike(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->truth.regions.size(), 2u);
  EXPECT_GT(ds->points.size(), 60000);
  EXPECT_LE(ds->points.size(), 62553);
}

TEST(PlantOutliersTest, PlantedPointsAreIsolated) {
  dbs::Rng rng(7);
  PointSet ps(2);
  for (int i = 0; i < 5000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.3, 0.7),
                                  rng.NextDouble(0.3, 0.7)});
  }
  OutlierPlantingOptions opts;
  opts.count = 12;
  opts.min_distance = 0.05;
  opts.domain_lo = {-1.0, -1.0};
  opts.domain_hi = {2.0, 2.0};
  auto planted = PlantOutliers(ps, opts);
  ASSERT_TRUE(planted.ok());
  ASSERT_EQ(planted->size(), 12u);
  EXPECT_EQ(ps.size(), 5012);
  // Verify isolation by brute force.
  for (int64_t idx : *planted) {
    for (int64_t j = 0; j < ps.size(); ++j) {
      if (j == idx) continue;
      EXPECT_GE(data::Distance(ps[idx], ps[j]), opts.min_distance * 0.999);
    }
  }
}

TEST(PlantOutliersTest, FailsWhenDomainTooTight) {
  PointSet ps(2);
  dbs::Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  OutlierPlantingOptions opts;
  opts.count = 5;
  opts.min_distance = 0.5;  // impossible inside [0,1]^2 packed with points
  opts.max_attempts = 2000;
  auto planted = PlantOutliers(ps, opts);
  EXPECT_FALSE(planted.ok());
  EXPECT_EQ(planted.status().code(), dbs::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dbs::synth
