#include "cluster/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/distance.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::cluster {
namespace {

using data::PointSet;
using data::PointView;

// Options with CURE's outlier elimination off: these tests exercise the
// pure agglomeration on noise-free data, where every point must end up in
// a cluster. Elimination behavior has its own tests below.
HierarchicalOptions NoElimination() {
  HierarchicalOptions opts;
  opts.eliminate_outliers = false;
  return opts;
}

// `k` Gaussian blobs on a circle of radius 0.4 around (0.5, 0.5).
PointSet BlobsOnCircle(int k, int64_t per_blob, double sigma, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(2);
  for (int c = 0; c < k; ++c) {
    double angle = 2.0 * M_PI * c / k;
    double cx = 0.5 + 0.4 * std::cos(angle);
    double cy = 0.5 + 0.4 * std::sin(angle);
    for (int64_t i = 0; i < per_blob; ++i) {
      ps.Append(std::vector<double>{rng.NextGaussian(cx, sigma),
                                    rng.NextGaussian(cy, sigma)});
    }
  }
  return ps;
}

TEST(HierarchicalTest, RejectsBadOptions) {
  PointSet ps(2, {0.0, 0.0, 1.0, 1.0});
  HierarchicalOptions bad;
  bad.num_clusters = 0;
  EXPECT_FALSE(HierarchicalCluster(ps, bad).ok());
  HierarchicalOptions bad_reps;
  bad_reps.num_representatives = 0;
  EXPECT_FALSE(HierarchicalCluster(ps, bad_reps).ok());
  HierarchicalOptions bad_shrink;
  bad_shrink.shrink_factor = 1.5;
  EXPECT_FALSE(HierarchicalCluster(ps, bad_shrink).ok());
  PointSet empty(2);
  EXPECT_FALSE(HierarchicalCluster(empty, HierarchicalOptions{}).ok());
}

TEST(HierarchicalTest, FewerPointsThanClusters) {
  PointSet ps(2, {0.0, 0.0, 1.0, 1.0, 2.0, 2.0});
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 10;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters(), 3);
}

TEST(HierarchicalTest, RecoversWellSeparatedBlobs) {
  for (int k : {2, 3, 5, 8}) {
    PointSet ps = BlobsOnCircle(k, 100, 0.015, 100 + k);
    HierarchicalOptions opts = NoElimination();
    opts.num_clusters = k;
    auto result = HierarchicalCluster(ps, opts);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->num_clusters(), k);
    // Every cluster must contain exactly the 100 points of one blob.
    std::multiset<size_t> sizes;
    for (const Cluster& c : result->clusters) sizes.insert(c.members.size());
    for (size_t s : sizes) EXPECT_EQ(s, 100u) << "k=" << k;
    // Points of the same blob share a label.
    for (int c = 0; c < k; ++c) {
      int32_t label = result->labels[c * 100];
      for (int64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(result->labels[c * 100 + i], label);
      }
    }
  }
}

TEST(HierarchicalTest, LabelsAreConsistentWithMembers) {
  PointSet ps = BlobsOnCircle(4, 60, 0.02, 7);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 4;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  int64_t total = 0;
  for (size_t c = 0; c < result->clusters.size(); ++c) {
    for (int64_t m : result->clusters[c].members) {
      EXPECT_EQ(result->labels[m], static_cast<int32_t>(c));
      ++total;
    }
  }
  EXPECT_EQ(total, ps.size());
}

TEST(HierarchicalTest, RepresentativeCountIsCapped) {
  PointSet ps = BlobsOnCircle(3, 200, 0.02, 8);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 3;
  opts.num_representatives = 10;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  for (const Cluster& c : result->clusters) {
    EXPECT_LE(c.representatives.size(), 10);
    EXPECT_GE(c.representatives.size(), 1);
  }
}

TEST(HierarchicalTest, RepresentativesLieNearTheirCluster) {
  PointSet ps = BlobsOnCircle(3, 150, 0.02, 9);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 3;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  for (const Cluster& c : result->clusters) {
    PointView centroid(c.centroid.data(), 2);
    for (int64_t r = 0; r < c.representatives.size(); ++r) {
      // Blob sigma is 0.02; shrunk representatives stay within a few sigma.
      EXPECT_LT(data::Distance(c.representatives[r], centroid), 0.15);
    }
  }
}

TEST(HierarchicalTest, ShrinkFactorOneCollapsesRepsToCentroid) {
  PointSet ps = BlobsOnCircle(2, 80, 0.02, 10);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 2;
  opts.shrink_factor = 1.0;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  for (const Cluster& c : result->clusters) {
    PointView centroid(c.centroid.data(), 2);
    for (int64_t r = 0; r < c.representatives.size(); ++r) {
      EXPECT_NEAR(data::Distance(c.representatives[r], centroid), 0.0, 1e-9);
    }
  }
}

TEST(HierarchicalTest, ZeroShrinkKeepsScatteredPointsInData) {
  PointSet ps = BlobsOnCircle(2, 80, 0.02, 11);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 2;
  opts.shrink_factor = 0.0;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  // With no shrinking, every representative is an actual data point.
  for (const Cluster& c : result->clusters) {
    for (int64_t r = 0; r < c.representatives.size(); ++r) {
      bool found = false;
      for (int64_t i = 0; i < ps.size() && !found; ++i) {
        if (data::SquaredL2(c.representatives[r], ps[i]) == 0.0) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(HierarchicalTest, DiscoversNonSphericalClusters) {
  // Two parallel elongated strips: K-means would cut them crosswise, the
  // representative-based hierarchical algorithm must keep each strip whole.
  dbs::Rng rng(12);
  PointSet ps(2);
  for (int i = 0; i < 300; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.0, 1.0),
                                  rng.NextGaussian(0.2, 0.01)});
  }
  for (int i = 0; i < 300; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.0, 1.0),
                                  rng.NextGaussian(0.8, 0.01)});
  }
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 2;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 2);
  EXPECT_EQ(result->clusters[0].members.size(), 300u);
  EXPECT_EQ(result->clusters[1].members.size(), 300u);
  // Strips separated by label.
  int32_t first = result->labels[0];
  for (int i = 0; i < 300; ++i) EXPECT_EQ(result->labels[i], first);
  for (int i = 300; i < 600; ++i) EXPECT_NE(result->labels[i], first);
}

TEST(HierarchicalTest, SinglePoint) {
  PointSet ps(2, {0.5, 0.5});
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 1;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters(), 1);
  EXPECT_EQ(result->clusters[0].members.size(), 1u);
}

TEST(HierarchicalTest, DuplicatePoints) {
  PointSet ps(2);
  for (int i = 0; i < 20; ++i) ps.Append(std::vector<double>{0.1, 0.1});
  for (int i = 0; i < 20; ++i) ps.Append(std::vector<double>{0.9, 0.9});
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 2;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 2);
  EXPECT_EQ(result->clusters[0].members.size(), 20u);
  EXPECT_EQ(result->clusters[1].members.size(), 20u);
}

TEST(HierarchicalTest, DeterministicOutput) {
  PointSet ps = BlobsOnCircle(4, 50, 0.03, 13);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 4;
  auto a = HierarchicalCluster(ps, opts);
  auto b = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(HierarchicalEliminationTest, NoisePointsGetDropped) {
  // Three tight blobs plus scattered noise; with elimination on, the noise
  // is labeled -1 and the blobs come out clean.
  dbs::Rng rng(20);
  PointSet ps = BlobsOnCircle(3, 150, 0.015, 21);
  const int64_t blob_points = ps.size();
  for (int i = 0; i < 60; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  HierarchicalOptions opts;  // elimination on by default
  opts.num_clusters = 3;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 3);
  // Blob points keep their labels; a healthy share of noise is dropped.
  int64_t unlabeled_noise = 0;
  for (int64_t i = blob_points; i < ps.size(); ++i) {
    if (result->labels[i] < 0) ++unlabeled_noise;
  }
  EXPECT_GT(unlabeled_noise, 30);
  // Each blob survives as one cluster; the early (1/3) trigger sheds blob-
  // fringe singletons, so sizes land below 150 but stay substantial.
  for (const Cluster& c : result->clusters) {
    EXPECT_GE(c.members.size(), 100u);
    EXPECT_LE(c.members.size(), 175u);
  }
}

TEST(HierarchicalEliminationTest, NoiseChainingIsPrevented) {
  // Two blobs connected by a sparse bridge of noise points. Without
  // elimination, min-distance merging chains them through the bridge;
  // with elimination the blobs stay separate.
  dbs::Rng rng(22);
  PointSet ps(2);
  for (int i = 0; i < 200; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.15, 0.02),
                                  rng.NextGaussian(0.5, 0.02)});
  }
  for (int i = 0; i < 200; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.85, 0.02),
                                  rng.NextGaussian(0.5, 0.02)});
  }
  for (int i = 0; i < 12; ++i) {  // the bridge
    ps.Append(std::vector<double>{0.25 + 0.05 * i,
                                  rng.NextGaussian(0.5, 0.005)});
  }
  HierarchicalOptions opts;
  opts.num_clusters = 2;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 2);
  // Blobs end up in different clusters, and each keeps the bulk of its
  // points (fringe singletons may be eliminated along with the bridge).
  EXPECT_NE(result->labels[0], result->labels[200]);
  for (const Cluster& c : result->clusters) {
    EXPECT_GE(c.members.size(), 120u);
  }
}

TEST(HierarchicalEliminationTest, CleanDataKeepsClusterStructure) {
  // With no noise, the early trigger sheds some blob-fringe singletons but
  // every blob still comes out as one cluster holding most of its points.
  PointSet ps = BlobsOnCircle(4, 80, 0.015, 23);
  HierarchicalOptions with;
  with.num_clusters = 4;
  auto a = HierarchicalCluster(ps, with);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->num_clusters(), 4);
  int64_t dropped = 0;
  for (int32_t label : a->labels) {
    if (label < 0) ++dropped;
  }
  EXPECT_LE(dropped, ps.size() / 3);
  for (const Cluster& c : a->clusters) {
    EXPECT_GE(c.members.size(), 50u);
    // Kept points of one blob share one label.
  }
  for (int blob = 0; blob < 4; ++blob) {
    int32_t label = -1;
    for (int i = 0; i < 80; ++i) {
      int32_t l = a->labels[blob * 80 + i];
      if (l < 0) continue;
      if (label < 0) label = l;
      EXPECT_EQ(l, label);
    }
  }
}

TEST(HierarchicalTest, NearestClusterByCentroidHelper) {
  PointSet ps = BlobsOnCircle(3, 50, 0.02, 14);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 3;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  // Each point's nearest centroid matches its label for tight blobs.
  int agree = 0;
  for (int64_t i = 0; i < ps.size(); ++i) {
    if (NearestClusterByCentroid(*result, ps[i]) == result->labels[i]) {
      ++agree;
    }
  }
  EXPECT_GT(agree, ps.size() * 95 / 100);
}

}  // namespace
}  // namespace dbs::cluster
