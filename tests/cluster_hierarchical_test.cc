#include "cluster/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/distance.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::cluster {
namespace {

using data::PointSet;
using data::PointView;

// Options with CURE's outlier elimination off: these tests exercise the
// pure agglomeration on noise-free data, where every point must end up in
// a cluster. Elimination behavior has its own tests below.
HierarchicalOptions NoElimination() {
  HierarchicalOptions opts;
  opts.eliminate_outliers = false;
  return opts;
}

// `k` Gaussian blobs on a circle of radius 0.4 around (0.5, 0.5).
PointSet BlobsOnCircle(int k, int64_t per_blob, double sigma, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(2);
  for (int c = 0; c < k; ++c) {
    double angle = 2.0 * M_PI * c / k;
    double cx = 0.5 + 0.4 * std::cos(angle);
    double cy = 0.5 + 0.4 * std::sin(angle);
    for (int64_t i = 0; i < per_blob; ++i) {
      ps.Append(std::vector<double>{rng.NextGaussian(cx, sigma),
                                    rng.NextGaussian(cy, sigma)});
    }
  }
  return ps;
}

TEST(HierarchicalTest, RejectsBadOptions) {
  PointSet ps(2, {0.0, 0.0, 1.0, 1.0});
  HierarchicalOptions bad;
  bad.num_clusters = 0;
  EXPECT_FALSE(HierarchicalCluster(ps, bad).ok());
  HierarchicalOptions bad_reps;
  bad_reps.num_representatives = 0;
  EXPECT_FALSE(HierarchicalCluster(ps, bad_reps).ok());
  HierarchicalOptions bad_shrink;
  bad_shrink.shrink_factor = 1.5;
  EXPECT_FALSE(HierarchicalCluster(ps, bad_shrink).ok());
  PointSet empty(2);
  EXPECT_FALSE(HierarchicalCluster(empty, HierarchicalOptions{}).ok());
}

TEST(HierarchicalTest, FewerPointsThanClusters) {
  PointSet ps(2, {0.0, 0.0, 1.0, 1.0, 2.0, 2.0});
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 10;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters(), 3);
}

TEST(HierarchicalTest, RecoversWellSeparatedBlobs) {
  for (int k : {2, 3, 5, 8}) {
    PointSet ps = BlobsOnCircle(k, 100, 0.015, 100 + k);
    HierarchicalOptions opts = NoElimination();
    opts.num_clusters = k;
    auto result = HierarchicalCluster(ps, opts);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->num_clusters(), k);
    // Every cluster must contain exactly the 100 points of one blob.
    std::multiset<size_t> sizes;
    for (const Cluster& c : result->clusters) sizes.insert(c.members.size());
    for (size_t s : sizes) EXPECT_EQ(s, 100u) << "k=" << k;
    // Points of the same blob share a label.
    for (int c = 0; c < k; ++c) {
      int32_t label = result->labels[c * 100];
      for (int64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(result->labels[c * 100 + i], label);
      }
    }
  }
}

TEST(HierarchicalTest, LabelsAreConsistentWithMembers) {
  PointSet ps = BlobsOnCircle(4, 60, 0.02, 7);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 4;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  int64_t total = 0;
  for (size_t c = 0; c < result->clusters.size(); ++c) {
    for (int64_t m : result->clusters[c].members) {
      EXPECT_EQ(result->labels[m], static_cast<int32_t>(c));
      ++total;
    }
  }
  EXPECT_EQ(total, ps.size());
}

TEST(HierarchicalTest, RepresentativeCountIsCapped) {
  PointSet ps = BlobsOnCircle(3, 200, 0.02, 8);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 3;
  opts.num_representatives = 10;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  for (const Cluster& c : result->clusters) {
    EXPECT_LE(c.representatives.size(), 10);
    EXPECT_GE(c.representatives.size(), 1);
  }
}

TEST(HierarchicalTest, RepresentativesLieNearTheirCluster) {
  PointSet ps = BlobsOnCircle(3, 150, 0.02, 9);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 3;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  for (const Cluster& c : result->clusters) {
    PointView centroid(c.centroid.data(), 2);
    for (int64_t r = 0; r < c.representatives.size(); ++r) {
      // Blob sigma is 0.02; shrunk representatives stay within a few sigma.
      EXPECT_LT(data::Distance(c.representatives[r], centroid), 0.15);
    }
  }
}

TEST(HierarchicalTest, ShrinkFactorOneCollapsesRepsToCentroid) {
  PointSet ps = BlobsOnCircle(2, 80, 0.02, 10);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 2;
  opts.shrink_factor = 1.0;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  for (const Cluster& c : result->clusters) {
    PointView centroid(c.centroid.data(), 2);
    for (int64_t r = 0; r < c.representatives.size(); ++r) {
      EXPECT_NEAR(data::Distance(c.representatives[r], centroid), 0.0, 1e-9);
    }
  }
}

TEST(HierarchicalTest, ZeroShrinkKeepsScatteredPointsInData) {
  PointSet ps = BlobsOnCircle(2, 80, 0.02, 11);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 2;
  opts.shrink_factor = 0.0;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  // With no shrinking, every representative is an actual data point.
  for (const Cluster& c : result->clusters) {
    for (int64_t r = 0; r < c.representatives.size(); ++r) {
      bool found = false;
      for (int64_t i = 0; i < ps.size() && !found; ++i) {
        if (data::SquaredL2(c.representatives[r], ps[i]) == 0.0) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(HierarchicalTest, DiscoversNonSphericalClusters) {
  // Two parallel elongated strips: K-means would cut them crosswise, the
  // representative-based hierarchical algorithm must keep each strip whole.
  dbs::Rng rng(12);
  PointSet ps(2);
  for (int i = 0; i < 300; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.0, 1.0),
                                  rng.NextGaussian(0.2, 0.01)});
  }
  for (int i = 0; i < 300; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.0, 1.0),
                                  rng.NextGaussian(0.8, 0.01)});
  }
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 2;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 2);
  EXPECT_EQ(result->clusters[0].members.size(), 300u);
  EXPECT_EQ(result->clusters[1].members.size(), 300u);
  // Strips separated by label.
  int32_t first = result->labels[0];
  for (int i = 0; i < 300; ++i) EXPECT_EQ(result->labels[i], first);
  for (int i = 300; i < 600; ++i) EXPECT_NE(result->labels[i], first);
}

TEST(HierarchicalTest, SinglePoint) {
  PointSet ps(2, {0.5, 0.5});
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 1;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters(), 1);
  EXPECT_EQ(result->clusters[0].members.size(), 1u);
}

TEST(HierarchicalTest, DuplicatePoints) {
  PointSet ps(2);
  for (int i = 0; i < 20; ++i) ps.Append(std::vector<double>{0.1, 0.1});
  for (int i = 0; i < 20; ++i) ps.Append(std::vector<double>{0.9, 0.9});
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 2;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 2);
  EXPECT_EQ(result->clusters[0].members.size(), 20u);
  EXPECT_EQ(result->clusters[1].members.size(), 20u);
}

TEST(HierarchicalTest, DeterministicOutput) {
  PointSet ps = BlobsOnCircle(4, 50, 0.03, 13);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 4;
  auto a = HierarchicalCluster(ps, opts);
  auto b = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

TEST(HierarchicalEliminationTest, NoisePointsGetDropped) {
  // Three tight blobs plus scattered noise; with elimination on, the noise
  // is labeled -1 and the blobs come out clean.
  dbs::Rng rng(20);
  PointSet ps = BlobsOnCircle(3, 150, 0.015, 21);
  const int64_t blob_points = ps.size();
  for (int i = 0; i < 60; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  HierarchicalOptions opts;  // elimination on by default
  opts.num_clusters = 3;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 3);
  // Blob points keep their labels; a healthy share of noise is dropped.
  int64_t unlabeled_noise = 0;
  for (int64_t i = blob_points; i < ps.size(); ++i) {
    if (result->labels[i] < 0) ++unlabeled_noise;
  }
  EXPECT_GT(unlabeled_noise, 30);
  // Each blob survives as one cluster; the early (1/3) trigger sheds blob-
  // fringe singletons, so sizes land below 150 but stay substantial.
  for (const Cluster& c : result->clusters) {
    EXPECT_GE(c.members.size(), 100u);
    EXPECT_LE(c.members.size(), 175u);
  }
}

TEST(HierarchicalEliminationTest, NoiseChainingIsPrevented) {
  // Two blobs connected by a sparse bridge of noise points. Without
  // elimination, min-distance merging chains them through the bridge;
  // with elimination the blobs stay separate.
  dbs::Rng rng(22);
  PointSet ps(2);
  for (int i = 0; i < 200; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.15, 0.02),
                                  rng.NextGaussian(0.5, 0.02)});
  }
  for (int i = 0; i < 200; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.85, 0.02),
                                  rng.NextGaussian(0.5, 0.02)});
  }
  for (int i = 0; i < 12; ++i) {  // the bridge
    ps.Append(std::vector<double>{0.25 + 0.05 * i,
                                  rng.NextGaussian(0.5, 0.005)});
  }
  HierarchicalOptions opts;
  opts.num_clusters = 2;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 2);
  // Blobs end up in different clusters, and each keeps the bulk of its
  // points (fringe singletons may be eliminated along with the bridge).
  EXPECT_NE(result->labels[0], result->labels[200]);
  for (const Cluster& c : result->clusters) {
    EXPECT_GE(c.members.size(), 120u);
  }
}

TEST(HierarchicalEliminationTest, CleanDataKeepsClusterStructure) {
  // With no noise, the early trigger sheds some blob-fringe singletons but
  // every blob still comes out as one cluster holding most of its points.
  PointSet ps = BlobsOnCircle(4, 80, 0.015, 23);
  HierarchicalOptions with;
  with.num_clusters = 4;
  auto a = HierarchicalCluster(ps, with);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->num_clusters(), 4);
  int64_t dropped = 0;
  for (int32_t label : a->labels) {
    if (label < 0) ++dropped;
  }
  EXPECT_LE(dropped, ps.size() / 3);
  for (const Cluster& c : a->clusters) {
    EXPECT_GE(c.members.size(), 50u);
    // Kept points of one blob share one label.
  }
  for (int blob = 0; blob < 4; ++blob) {
    int32_t label = -1;
    for (int i = 0; i < 80; ++i) {
      int32_t l = a->labels[blob * 80 + i];
      if (l < 0) continue;
      if (label < 0) label = l;
      EXPECT_EQ(l, label);
    }
  }
}

TEST(HierarchicalEliminationTest, CapTruncationDropsSmallestClusterFirst) {
  // Three widely separated tight groups of sizes 3, 1 and 2, laid out so
  // the size-3 group owns the LOWEST node index. Phase 2 fires when the
  // three groups are fully merged (live == 3); all of them qualify as
  // victims (size <= phase2_max_size) but the live > target cap allows
  // exactly one kill. Victims die smallest-first, so the singleton is the
  // one eliminated — not the size-3 group that index order would pick.
  PointSet ps(2, {
                     // group A (size 3) around (0.1, 0.1): indices 0-2
                     0.10, 0.10, 0.11, 0.10, 0.10, 0.11,
                     // group B (size 1) at (0.9, 0.1): index 3
                     0.90, 0.10,
                     // group C (size 2) around (0.5, 0.9): indices 4-5
                     0.50, 0.90, 0.51, 0.90,
                 });
  HierarchicalOptions opts;
  opts.num_clusters = 2;
  opts.eliminate_outliers = true;
  opts.phase1_trigger_fraction = 0.0;  // phase 1 never fires
  opts.phase1_max_size = 0;
  opts.phase2_trigger_multiple = 1.5;  // fires at live <= 3
  opts.phase2_max_size = 5;            // every group qualifies
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 2);
  // The singleton (index 3) is eliminated; both real groups survive whole.
  EXPECT_EQ(result->labels[3], -1);
  EXPECT_EQ(result->labels[0], result->labels[1]);
  EXPECT_EQ(result->labels[1], result->labels[2]);
  EXPECT_EQ(result->labels[4], result->labels[5]);
  EXPECT_NE(result->labels[0], result->labels[4]);
  std::multiset<size_t> sizes;
  for (const Cluster& c : result->clusters) sizes.insert(c.members.size());
  EXPECT_EQ(sizes, (std::multiset<size_t>{2, 3}));
}

// --- Frozen-golden equivalence suite ---------------------------------------
//
// These cases pin the FULL agglomeration output — labels, member order,
// centroid bytes and representative bytes — as one FNV-1a hash per case,
// captured from the pre-refactor implementation. Any change to the merge
// sequence, tie-breaking (lowest index wins), elimination order or the
// representative arithmetic flips the hash. The accelerated agglomeration
// core must keep every one of these bitwise intact; they are the contract
// bench/micro_cluster re-checks at larger sizes.

uint64_t Fnv1a(const void* data, size_t len, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Hashes labels, then per cluster (in label order): member count, members,
// centroid bytes, representative bytes.
uint64_t HashClustering(const ClusteringResult& result) {
  uint64_t h = 1469598103934665603ull;
  h = Fnv1a(result.labels.data(),
            result.labels.size() * sizeof(int32_t), h);
  for (const Cluster& c : result.clusters) {
    int64_t count = static_cast<int64_t>(c.members.size());
    h = Fnv1a(&count, sizeof(count), h);
    h = Fnv1a(c.members.data(), c.members.size() * sizeof(int64_t), h);
    h = Fnv1a(c.centroid.data(), c.centroid.size() * sizeof(double), h);
    h = Fnv1a(c.representatives.flat().data(),
              c.representatives.flat().size() * sizeof(double), h);
  }
  return h;
}

// `k` Gaussian blobs in d dimensions plus uniform noise (noise exercises
// the elimination phases in the `elim` variants).
PointSet GoldenBlobs(int dim, int k, int64_t per_blob, int64_t noise,
                     double sigma, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> p(static_cast<size_t>(dim));
  for (int c = 0; c < k; ++c) {
    std::vector<double> center(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) center[j] = rng.NextDouble(0.1, 0.9);
    for (int64_t i = 0; i < per_blob; ++i) {
      for (int j = 0; j < dim; ++j) {
        p[j] = rng.NextGaussian(center[j], sigma);
      }
      ps.Append(p);
    }
  }
  for (int64_t i = 0; i < noise; ++i) {
    for (int j = 0; j < dim; ++j) p[j] = rng.NextDouble();
    ps.Append(p);
  }
  return ps;
}

// Exact-duplicate points on an integer lattice: inter-point distances
// collide constantly, so every tie-breaking rule in the merge loop and in
// the nearest-cluster bookkeeping is load-bearing here.
PointSet GoldenTies() {
  PointSet ps(2);
  for (int rep = 0; rep < 2; ++rep) {
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 6; ++x) {
        ps.Append(std::vector<double>{static_cast<double>(x) * 0.1,
                                      static_cast<double>(y) * 0.1});
      }
    }
  }
  return ps;
}

struct GoldenCase {
  const char* name;
  int dim;
  bool eliminate;
  bool ties;
  uint64_t want;
};

TEST(HierarchicalGoldenTest, FrozenAgglomerationHashes) {
  const GoldenCase kCases[] = {
      {"dim1_plain", 1, false, false, 14054575646642538525ull},
      {"dim1_elim", 1, true, false, 14838618909650839011ull},
      {"dim2_plain", 2, false, false, 17238667635333364281ull},
      {"dim2_elim", 2, true, false, 13222001480870681610ull},
      {"dim5_plain", 5, false, false, 1486783096846529445ull},
      {"dim5_elim", 5, true, false, 3489065195720459547ull},
      {"ties_plain", 2, false, true, 8427816399235224162ull},
      {"ties_elim", 2, true, true, 12718755901037939380ull},
  };
  for (const GoldenCase& c : kCases) {
    PointSet ps = c.ties ? GoldenTies()
                         : GoldenBlobs(c.dim, 4, 60, 24, 0.02,
                                       1000 + static_cast<uint64_t>(c.dim));
    HierarchicalOptions opts;
    opts.num_clusters = 4;
    opts.eliminate_outliers = c.eliminate;
    auto result = HierarchicalCluster(ps, opts);
    ASSERT_TRUE(result.ok()) << c.name;
    EXPECT_EQ(HashClustering(*result), c.want) << c.name;
  }
}

TEST(HierarchicalTest, NearestClusterByCentroidHelper) {
  PointSet ps = BlobsOnCircle(3, 50, 0.02, 14);
  HierarchicalOptions opts = NoElimination();
  opts.num_clusters = 3;
  auto result = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  // Each point's nearest centroid matches its label for tight blobs.
  int agree = 0;
  for (int64_t i = 0; i < ps.size(); ++i) {
    if (NearestClusterByCentroid(*result, ps[i]) == result->labels[i]) {
      ++agree;
    }
  }
  EXPECT_GT(agree, ps.size() * 95 / 100);
}

}  // namespace
}  // namespace dbs::cluster
