#include "core/guarantees.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dbs::core {
namespace {

TEST(GuhaBoundTest, PaperWorkedExample) {
  // §1.1: xi = 0.2, |u| = 1000, delta = 0.1 -> ~25% of the dataset must be
  // sampled under uniform sampling (the dominant term is independent of n
  // for large n; check at n = 1e6).
  const int64_t n = 1000000;
  double s = GuhaUniformSampleSize(n, 1000, 0.2, 0.1);
  EXPECT_NEAR(s / static_cast<double>(n), 0.25, 0.03);
}

TEST(GuhaBoundTest, MonotoneInConfidence) {
  double loose = GuhaUniformSampleSize(100000, 500, 0.2, 0.5);
  double tight = GuhaUniformSampleSize(100000, 500, 0.2, 0.01);
  EXPECT_GT(tight, loose);
}

TEST(GuhaBoundTest, MonotoneInFraction) {
  double small = GuhaUniformSampleSize(100000, 500, 0.1, 0.1);
  double large = GuhaUniformSampleSize(100000, 500, 0.5, 0.1);
  EXPECT_GT(large, small);
}

TEST(GuhaBoundTest, LargerClustersNeedSmallerSamples) {
  double tiny_cluster = GuhaUniformSampleSize(100000, 100, 0.2, 0.1);
  double big_cluster = GuhaUniformSampleSize(100000, 10000, 0.2, 0.1);
  EXPECT_GT(tiny_cluster, big_cluster);
}

TEST(BinomialTailTest, ExactSmallCases) {
  // P[Bin(2, 0.5) >= 1] = 0.75; P[Bin(2, 0.5) >= 2] = 0.25.
  EXPECT_NEAR(BinomialTailGE(1, 2, 0.5), 0.75, 1e-12);
  EXPECT_NEAR(BinomialTailGE(2, 2, 0.5), 0.25, 1e-12);
  // P[Bin(3, 0.2) >= 1] = 1 - 0.8^3.
  EXPECT_NEAR(BinomialTailGE(1, 3, 0.2), 1.0 - 0.512, 1e-12);
}

TEST(BinomialTailTest, EdgeCases) {
  EXPECT_EQ(BinomialTailGE(0, 10, 0.5), 1.0);
  EXPECT_EQ(BinomialTailGE(-3, 10, 0.5), 1.0);
  EXPECT_EQ(BinomialTailGE(11, 10, 0.5), 0.0);
  EXPECT_EQ(BinomialTailGE(5, 10, 0.0), 0.0);
  EXPECT_EQ(BinomialTailGE(5, 10, 1.0), 1.0);
}

TEST(BinomialTailTest, MatchesMonteCarlo) {
  dbs::Rng rng(3);
  const int64_t trials = 100;
  const double p = 0.3;
  const int64_t k_min = 35;
  const int sims = 200000;
  int hits = 0;
  for (int s = 0; s < sims; ++s) {
    int count = 0;
    for (int64_t t = 0; t < trials; ++t) {
      if (rng.NextBernoulli(p)) ++count;
    }
    if (count >= k_min) ++hits;
  }
  double mc = static_cast<double>(hits) / sims;
  EXPECT_NEAR(BinomialTailGE(k_min, trials, p), mc, 0.01);
}

TEST(BinomialTailTest, MonotoneInP) {
  double prev = 0.0;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    double tail = BinomialTailGE(40, 100, p);
    EXPECT_GE(tail, prev - 1e-12);
    prev = tail;
  }
}

TEST(CaptureProbabilityTest, UniformCaptureGrowsWithSampleSize) {
  double small = UniformCaptureProbability(100000, 1000, 0.2, 5000);
  double large = UniformCaptureProbability(100000, 1000, 0.2, 50000);
  EXPECT_LT(small, large);
  EXPECT_GT(large, 0.99);
}

TEST(CaptureProbabilityTest, GuhaBoundIsConservative) {
  // The closed-form bound must never be smaller than the exact requirement.
  for (int64_t u : {200, 1000, 5000}) {
    for (double xi : {0.1, 0.2, 0.4}) {
      const int64_t n = 100000;
      double exact = MinUniformSampleSize(n, u, xi, 0.1);
      double bound = GuhaUniformSampleSize(n, u, xi, 0.1);
      EXPECT_GE(bound, exact * 0.999) << "u=" << u << " xi=" << xi;
    }
  }
}

TEST(CaptureProbabilityTest, MinUniformSampleSizeAchievesGuarantee) {
  const int64_t n = 50000;
  const int64_t u = 800;
  const double xi = 0.25;
  const double delta = 0.1;
  double s = MinUniformSampleSize(n, u, xi, delta);
  EXPECT_GE(UniformCaptureProbability(n, u, xi, s * 1.001), 1.0 - delta);
  EXPECT_LT(UniformCaptureProbability(n, u, xi, s * 0.9), 1.0 - delta);
}

TEST(BiasedRuleTest, Theorem1SavingsComeFromTheOutOfClusterRate) {
  // The cluster-capture guarantee is a Binomial(|u|, rate) tail in both
  // schemes, so the minimal in-cluster rate is identical; the biased
  // scheme's entire saving is that it keeps OUT-of-cluster points at a
  // lower rate than uniform sampling's single global rate.
  const int64_t n = 1000000;
  const int64_t u = 1000;
  const double xi = 0.2;
  const double delta = 0.1;

  double uniform_size = MinUniformSampleSize(n, u, xi, delta);
  double uniform_rate = uniform_size / static_cast<double>(n);
  double p_min = MinBiasedInclusionProbability(u, xi, delta);
  // Identical binomial => identical minimal in-cluster rate.
  EXPECT_NEAR(p_min, uniform_rate, 1e-6);
  EXPECT_GT(p_min, static_cast<double>(u) / static_cast<double>(n));
  EXPECT_GE(BiasedCaptureProbability(u, xi, p_min * 1.001), 1.0 - delta);

  // A density-biased sampler keeping noise at a tenth of the uniform rate
  // meets the same guarantee with ~10x less data.
  double biased_size =
      BiasedRuleExpectedSampleSize(n, u, p_min, uniform_rate / 10.0);
  EXPECT_LT(biased_size, 0.2 * uniform_size);
  // And the guarantee itself is untouched by the out-rate: it only depends
  // on the in-cluster probability.
  EXPECT_GE(BiasedCaptureProbability(u, xi, p_min * 1.001), 1.0 - delta);
}

TEST(BiasedRuleTest, LiteralRuleRCrossover) {
  // Under the literal rule (out-rate = 1 - p), the expected size undercuts
  // a target s only for p above the crossover; verify the closed form.
  const int64_t n = 1000000;
  const int64_t u = 1000;
  double s = 216000.0;
  double p_star = RuleRCrossoverP(n, u, s);
  EXPECT_GT(p_star, 0.0);
  EXPECT_LT(p_star, 1.0);
  double at_star = BiasedRuleExpectedSampleSize(n, u, p_star, 1.0 - p_star);
  EXPECT_NEAR(at_star, s, 1.0);
  double above = BiasedRuleExpectedSampleSize(n, u, p_star + 0.05,
                                              1.0 - (p_star + 0.05));
  EXPECT_LT(above, s);
  // Small datasets (n <= 2u) can never undercut: crossover saturates at 1.
  EXPECT_EQ(RuleRCrossoverP(1500, 1000, 100.0), 1.0);
}

TEST(BiasedRuleTest, MinBiasedPAchievesGuarantee) {
  const int64_t u = 500;
  const double xi = 0.3;
  const double delta = 0.05;
  double p = MinBiasedInclusionProbability(u, xi, delta);
  EXPECT_GE(BiasedCaptureProbability(u, xi, p * 1.001), 1.0 - delta);
  EXPECT_LT(BiasedCaptureProbability(u, xi, p * 0.9), 1.0 - delta);
}

TEST(BiasedRuleTest, ExpectedSampleSizeBookkeeping) {
  EXPECT_DOUBLE_EQ(BiasedRuleExpectedSampleSize(1000, 100, 0.5, 0.1),
                   0.5 * 100 + 0.1 * 900);
}

TEST(BiasedRuleTest, MonteCarloConfirmsCaptureProbability) {
  // Simulate rule R end to end: keep each of |u|=200 cluster points with
  // p = 0.3, ask for xi = 0.25.
  dbs::Rng rng(9);
  const int64_t u = 200;
  const double p = 0.3;
  const double xi = 0.25;
  const int sims = 100000;
  const int64_t need = static_cast<int64_t>(std::ceil(xi * u));
  int captured = 0;
  for (int s = 0; s < sims; ++s) {
    int kept = 0;
    for (int64_t i = 0; i < u; ++i) {
      if (rng.NextBernoulli(p)) ++kept;
    }
    if (kept >= need) ++captured;
  }
  double mc = static_cast<double>(captured) / sims;
  EXPECT_NEAR(BiasedCaptureProbability(u, xi, p), mc, 0.01);
}

}  // namespace
}  // namespace dbs::core
