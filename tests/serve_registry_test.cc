// ModelRegistry: named immutable models with ref-counted lookup, eviction
// and hot-swap. The concurrency property under test: a reader that got a
// model keeps a usable, unchanging model no matter how often the name is
// swapped or evicted underneath it (run under TSan via the `serve` ctest
// label).

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "density/kde.h"
#include "density/kde_io.h"
#include "serve/model_registry.h"
#include "util/rng.h"

namespace dbs {
namespace {

data::PointSet MakePoints(uint64_t seed, int64_t n = 300) {
  Rng rng(seed);
  data::PointSet points(2);
  for (int64_t i = 0; i < n; ++i) {
    points.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  return points;
}

std::shared_ptr<const density::Kde> FitModel(uint64_t seed) {
  density::KdeOptions options;
  options.num_kernels = 50;
  options.seed = seed;
  auto kde = density::Kde::Fit(MakePoints(seed), options);
  DBS_CHECK(kde.ok());
  return std::make_shared<const density::Kde>(std::move(kde).value());
}

TEST(ModelRegistryTest, PutGetEvict) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0);
  EXPECT_FALSE(registry.Get("m").ok());
  EXPECT_EQ(registry.Get("m").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(registry.Put("m", FitModel(1), "kde").ok());
  EXPECT_EQ(registry.size(), 1);
  auto model = registry.Get("m");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->dim(), 2);

  ASSERT_TRUE(registry.Evict("m").ok());
  EXPECT_EQ(registry.size(), 0);
  EXPECT_EQ(registry.Evict("m").code(), StatusCode::kNotFound);

  // The evicted model stays alive through the reader's reference.
  double probe[2] = {0.5, 0.5};
  EXPECT_GT((*model)->Evaluate(data::PointView(probe, 2)), 0.0);
}

TEST(ModelRegistryTest, RejectsBadArguments) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.Put("", FitModel(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Put("m", nullptr).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.LoadKdeFile("m", "/no/such/file.dbsk").code(),
            StatusCode::kIoError);
}

TEST(ModelRegistryTest, ListReportsGenerations) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Put("a", FitModel(1)).ok());
  ASSERT_TRUE(registry.Put("b", FitModel(2)).ok());
  ASSERT_TRUE(registry.Put("a", FitModel(3)).ok());  // hot-swap
  auto entries = registry.List();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[0].generation, 2u);
  EXPECT_EQ(entries[1].name, "b");
  EXPECT_EQ(entries[1].generation, 1u);
}

TEST(ModelRegistryTest, LoadKdeFileRoundTrips) {
  std::string path = std::string(::testing::TempDir()) + "/registry.dbsk";
  auto fitted = FitModel(7);
  ASSERT_TRUE(density::SaveKde(*fitted, path).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.LoadKdeFile("m", path).ok());
  auto loaded = registry.Get("m");
  ASSERT_TRUE(loaded.ok());
  double probe[2] = {0.25, 0.75};
  data::PointView view(probe, 2);
  EXPECT_EQ((*loaded)->Evaluate(view), fitted->Evaluate(view));
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, HotSwapUnderConcurrentReaders) {
  serve::ModelRegistry registry;
  auto model_a = FitModel(11);
  auto model_b = FitModel(22);
  double probe[2] = {0.4, 0.6};
  data::PointView view(probe, 2);
  const double value_a = model_a->Evaluate(view);
  const double value_b = model_b->Evaluate(view);
  ASSERT_NE(value_a, value_b);

  ASSERT_TRUE(registry.Put("m", model_a).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      // dbs-lint: allow(relaxed-atomic): stop flag, no data published through it
      while (!stop.load(std::memory_order_relaxed)) {
        auto model = registry.Get("m");
        if (!model.ok()) continue;  // mid-evict window
        double value = (*model)->Evaluate(view);
        if (value != value_a && value != value_b) {
          mismatches.fetch_add(1);
        }
        // dbs-lint: allow(relaxed-atomic): pure counter, read after join
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Swap, evict and re-register while the readers hammer Get. Keep
  // swapping until the readers have observably overlapped the churn (on a
  // single-core machine a fixed iteration count can finish before any
  // reader is ever scheduled).
  for (int i = 0; i < 500 || reads.load() < 200; ++i) {
    ASSERT_TRUE(registry.Put("m", i % 2 == 0 ? model_b : model_a).ok());
    if (i % 50 == 0) {
      (void)registry.Evict("m");
      ASSERT_TRUE(registry.Put("m", model_a).ok());
    }
    if (i % 10 == 0) std::this_thread::yield();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace dbs
