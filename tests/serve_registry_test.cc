// ModelRegistry: named immutable models with ref-counted lookup, eviction
// and hot-swap. The concurrency property under test: a reader that got a
// model keeps a usable, unchanging model no matter how often the name is
// swapped or evicted underneath it (run under TSan via the `serve` ctest
// label).

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "density/kde.h"
#include "density/kde_io.h"
#include "serve/model_registry.h"
#include "util/rng.h"

namespace dbs {
namespace {

data::PointSet MakePoints(uint64_t seed, int64_t n = 300) {
  Rng rng(seed);
  data::PointSet points(2);
  for (int64_t i = 0; i < n; ++i) {
    points.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  return points;
}

std::shared_ptr<const density::Kde> FitModel(uint64_t seed) {
  density::KdeOptions options;
  options.num_kernels = 50;
  options.seed = seed;
  auto kde = density::Kde::Fit(MakePoints(seed), options);
  DBS_CHECK(kde.ok());
  return std::make_shared<const density::Kde>(std::move(kde).value());
}

TEST(ModelRegistryTest, PutGetEvict) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.size(), 0);
  EXPECT_FALSE(registry.Get("m").ok());
  EXPECT_EQ(registry.Get("m").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(registry.Put("m", FitModel(1), "kde").ok());
  EXPECT_EQ(registry.size(), 1);
  auto model = registry.Get("m");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->dim(), 2);

  ASSERT_TRUE(registry.Evict("m").ok());
  EXPECT_EQ(registry.size(), 0);
  EXPECT_EQ(registry.Evict("m").code(), StatusCode::kNotFound);

  // The evicted model stays alive through the reader's reference.
  double probe[2] = {0.5, 0.5};
  EXPECT_GT((*model)->Evaluate(data::PointView(probe, 2)), 0.0);
}

TEST(ModelRegistryTest, RejectsBadArguments) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.Put("", FitModel(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Put("m", nullptr).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.LoadKdeFile("m", "/no/such/file.dbsk").code(),
            StatusCode::kIoError);
}

TEST(ModelRegistryTest, ListReportsGenerations) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Put("a", FitModel(1)).ok());
  ASSERT_TRUE(registry.Put("b", FitModel(2)).ok());
  ASSERT_TRUE(registry.Put("a", FitModel(3)).ok());  // hot-swap
  auto entries = registry.List();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[0].generation, 2u);
  EXPECT_EQ(entries[1].name, "b");
  EXPECT_EQ(entries[1].generation, 1u);
}

TEST(ModelRegistryTest, LoadKdeFileRoundTrips) {
  std::string path = std::string(::testing::TempDir()) + "/registry.dbsk";
  auto fitted = FitModel(7);
  ASSERT_TRUE(density::SaveKde(*fitted, path).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.LoadKdeFile("m", path).ok());
  auto loaded = registry.Get("m");
  ASSERT_TRUE(loaded.ok());
  double probe[2] = {0.25, 0.75};
  data::PointView view(probe, 2);
  EXPECT_EQ((*loaded)->Evaluate(view), fitted->Evaluate(view));
  std::remove(path.c_str());
}

// The dual-tree registration path serves the same model bytes through the
// tree evaluator: exact mode answers every query bitwise identically to
// the brute ascending-center path, approximate mode registers under the
// same dispatch surface with its own kind tag.
TEST(ModelRegistryTest, LoadKdeFileDualTreeServesExactAndApprox) {
  std::string path = std::string(::testing::TempDir()) + "/registry_dt.dbsk";
  auto fitted = FitModel(7);
  ASSERT_TRUE(density::SaveKde(*fitted, path).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.LoadKdeFileDualTree("exact", path).ok());
  ASSERT_TRUE(registry.LoadKdeFileDualTree("approx", path, 0.05).ok());
  EXPECT_EQ(registry.LoadKdeFileDualTree("bad", path, -1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.LoadKdeFileDualTree("m", "/no/such/file.dbsk").code(),
            StatusCode::kIoError);

  auto entries = registry.List();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "approx");
  EXPECT_EQ(entries[0].kind, "kde-dualtree");
  EXPECT_EQ(entries[1].kind, "kde-dualtree");

  auto exact = registry.Get("exact");
  ASSERT_TRUE(exact.ok());
  auto approx = registry.Get("approx");
  ASSERT_TRUE(approx.ok());
  // The dual tree promises bitwise identity to the ascending-center brute
  // sum — compare against EvaluateBrute on the original model, and bound
  // the approximate backend by its budget.
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    double probe[2] = {rng.NextDouble(-0.2, 1.2), rng.NextDouble(-0.2, 1.2)};
    data::PointView view(probe, 2);
    const double want = fitted->EvaluateBrute(view);
    EXPECT_EQ((*exact)->Evaluate(view), want) << i;
    EXPECT_LE(std::fabs((*approx)->Evaluate(view) - want), 0.05 * want) << i;
  }
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, HotSwapUnderConcurrentReaders) {
  serve::ModelRegistry registry;
  auto model_a = FitModel(11);
  auto model_b = FitModel(22);
  double probe[2] = {0.4, 0.6};
  data::PointView view(probe, 2);
  const double value_a = model_a->Evaluate(view);
  const double value_b = model_b->Evaluate(view);
  ASSERT_NE(value_a, value_b);

  ASSERT_TRUE(registry.Put("m", model_a).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      // dbs-lint: allow(relaxed-atomic): stop flag, no data published through it
      while (!stop.load(std::memory_order_relaxed)) {
        auto model = registry.Get("m");
        if (!model.ok()) continue;  // mid-evict window
        double value = (*model)->Evaluate(view);
        if (value != value_a && value != value_b) {
          mismatches.fetch_add(1);
        }
        // dbs-lint: allow(relaxed-atomic): pure counter, read after join
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Swap, evict and re-register while the readers hammer Get. Keep
  // swapping until the readers have observably overlapped the churn (on a
  // single-core machine a fixed iteration count can finish before any
  // reader is ever scheduled).
  for (int i = 0; i < 500 || reads.load() < 200; ++i) {
    ASSERT_TRUE(registry.Put("m", i % 2 == 0 ? model_b : model_a).ok());
    if (i % 50 == 0) {
      (void)registry.Evict("m");
      ASSERT_TRUE(registry.Put("m", model_a).ok());
    }
    if (i % 10 == 0) std::this_thread::yield();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace dbs
