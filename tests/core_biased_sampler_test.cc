#include "core/biased_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuning.h"
#include "data/point_set.h"
#include "density/histogram_density.h"
#include "density/kde.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dbs::core {
namespace {

using data::PointSet;
using data::PointView;

// A dense blob (0.2, 0.2), a sparse blob (0.8, 0.8), uniform noise.
struct Workload {
  PointSet points{2};
  int64_t n_dense = 0;
  int64_t n_sparse = 0;
  int64_t n_noise = 0;
};

Workload MakeWorkload(int64_t n_dense, int64_t n_sparse, int64_t n_noise,
                      uint64_t seed) {
  dbs::Rng rng(seed);
  Workload w;
  w.n_dense = n_dense;
  w.n_sparse = n_sparse;
  w.n_noise = n_noise;
  for (int64_t i = 0; i < n_dense; ++i) {
    w.points.Append(std::vector<double>{rng.NextGaussian(0.2, 0.015),
                                        rng.NextGaussian(0.2, 0.015)});
  }
  for (int64_t i = 0; i < n_sparse; ++i) {
    w.points.Append(std::vector<double>{rng.NextGaussian(0.8, 0.05),
                                        rng.NextGaussian(0.8, 0.05)});
  }
  for (int64_t i = 0; i < n_noise; ++i) {
    w.points.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  return w;
}

bool InBlob(PointView p, double cx, double r) {
  double dx = p[0] - cx;
  double dy = p[1] - cx;
  return dx * dx + dy * dy < r * r;
}

density::Kde FitKde(const PointSet& ps, uint64_t seed = 1) {
  density::KdeOptions opts;
  opts.num_kernels = 500;
  opts.seed = seed;
  auto kde = density::Kde::Fit(ps, opts);
  DBS_CHECK(kde.ok());
  return std::move(kde).value();
}

TEST(BiasedSamplerTest, RejectsBadArguments) {
  Workload w = MakeWorkload(1000, 0, 0, 1);
  density::Kde kde = FitKde(w.points);

  BiasedSamplerOptions bad;
  bad.target_size = 0;
  EXPECT_FALSE(BiasedSampler(bad).Run(w.points, kde).ok());

  PointSet empty(2);
  BiasedSamplerOptions opts;
  EXPECT_FALSE(BiasedSampler(opts).Run(empty, kde).ok());

  PointSet wrong_dim(3, {0.0, 0.0, 0.0});
  EXPECT_FALSE(BiasedSampler(opts).Run(wrong_dim, kde).ok());
}

// Property 2: expected sample size is b — sweep a over the regimes.
class SampleSizeTest : public ::testing::TestWithParam<double> {};

TEST_P(SampleSizeTest, ExpectedSizeIsTarget) {
  double a = GetParam();
  Workload w = MakeWorkload(6000, 2000, 2000, 2);
  density::Kde kde = FitKde(w.points);
  dbs::OnlineMoments sizes;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    BiasedSamplerOptions opts;
    opts.a = a;
    opts.target_size = 800;
    opts.seed = seed;
    auto s = BiasedSampler(opts).Run(w.points, kde);
    ASSERT_TRUE(s.ok());
    sizes.Add(static_cast<double>(s->size()));
  }
  // Bernoulli noise: sd <= sqrt(b); allow clamping slack for extreme a.
  EXPECT_NEAR(sizes.mean(), 800.0, 80.0) << "a=" << a;
}

INSTANTIATE_TEST_SUITE_P(Exponents, SampleSizeTest,
                         ::testing::Values(-1.0, -0.5, -0.25, 0.0, 0.5, 1.0));

TEST(BiasedSamplerTest, ZeroExponentMatchesUniformProbabilities) {
  Workload w = MakeWorkload(3000, 1000, 1000, 3);
  density::Kde kde = FitKde(w.points);
  BiasedSamplerOptions opts;
  opts.a = 0.0;
  opts.target_size = 500;
  auto s = BiasedSampler(opts).Run(w.points, kde);
  ASSERT_TRUE(s.ok());
  // With a = 0, k_0 = n and every inclusion probability is b/n.
  double expected = 500.0 / 5000.0;
  EXPECT_NEAR(s->normalizer, 5000.0, 1e-6);
  for (double p : s->inclusion_probs) {
    EXPECT_NEAR(p, expected, 1e-12);
  }
}

TEST(BiasedSamplerTest, PositiveExponentOversamplesDenseRegions) {
  // 8000 points in one tight cluster vs 2000 uniform noise: with a = 1 the
  // cluster must claim well beyond its 80% share of the sample.
  Workload w = MakeWorkload(8000, 0, 2000, 4);
  density::Kde kde = FitKde(w.points);
  BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 1000;
  auto s = BiasedSampler(opts).Run(w.points, kde);
  ASSERT_TRUE(s.ok());
  int64_t dense = 0;
  for (int64_t i = 0; i < s->size(); ++i) {
    if (InBlob(s->points[i], 0.2, 0.1)) ++dense;
  }
  double dense_frac =
      static_cast<double>(dense) / static_cast<double>(s->size());
  EXPECT_GT(dense_frac, 0.93);
}

TEST(BiasedSamplerTest, BandwidthScaleResolvesEqualMassBlobs) {
  // Equal-mass blobs of very different spreads defeat the raw Scott rule
  // (the kernel support exceeds both blobs, so their peaks look alike); a
  // sharpened bandwidth recovers the density contrast that a = 1 needs.
  Workload w = MakeWorkload(5000, 5000, 0, 14);
  density::KdeOptions kopts;
  kopts.num_kernels = 500;
  kopts.bandwidth_scale = 0.2;
  auto kde = density::Kde::Fit(w.points, kopts);
  ASSERT_TRUE(kde.ok());
  BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 1000;
  auto s = BiasedSampler(opts).Run(w.points, *kde);
  ASSERT_TRUE(s.ok());
  int64_t dense = 0;
  int64_t sparse = 0;
  for (int64_t i = 0; i < s->size(); ++i) {
    if (InBlob(s->points[i], 0.2, 0.1)) ++dense;
    if (InBlob(s->points[i], 0.8, 0.2)) ++sparse;
  }
  EXPECT_GT(dense, 2 * sparse);
}

TEST(BiasedSamplerTest, NegativeExponentOversamplesSparseRegions) {
  Workload w = MakeWorkload(9000, 1000, 0, 5);
  density::Kde kde = FitKde(w.points);
  BiasedSamplerOptions opts;
  opts.a = -0.5;
  opts.target_size = 1000;
  auto s = BiasedSampler(opts).Run(w.points, kde);
  ASSERT_TRUE(s.ok());
  int64_t sparse = 0;
  for (int64_t i = 0; i < s->size(); ++i) {
    if (InBlob(s->points[i], 0.8, 0.2)) ++sparse;
  }
  // The sparse blob is 10% of the data; a = -0.5 must boost it well above
  // its uniform share of the sample.
  double sparse_frac = static_cast<double>(sparse) /
                       static_cast<double>(s->size());
  EXPECT_GT(sparse_frac, 0.2);
}

TEST(BiasedSamplerTest, Lemma1RelativeDensitiesPreservedForAGreaterMinusOne) {
  // Region A (dense blob) has higher density than region B (sparse blob).
  // For a > -1 the sampled counts must preserve that ordering w.h.p.
  Workload w = MakeWorkload(8000, 2000, 0, 6);
  density::Kde kde = FitKde(w.points);
  for (double a : {-0.5, -0.25, 0.5, 1.0}) {
    BiasedSamplerOptions opts;
    opts.a = a;
    opts.target_size = 1500;
    opts.seed = 11;
    auto s = BiasedSampler(opts).Run(w.points, kde);
    ASSERT_TRUE(s.ok());
    int64_t in_a = 0;
    int64_t in_b = 0;
    for (int64_t i = 0; i < s->size(); ++i) {
      if (InBlob(s->points[i], 0.2, 0.06)) ++in_a;
      if (InBlob(s->points[i], 0.8, 0.06)) ++in_b;
    }
    // Same-size regions: the denser one keeps more sampled points.
    EXPECT_GT(in_a, in_b) << "a=" << a;
  }
}

TEST(BiasedSamplerTest, FlattenExponentEqualizesRegionMass) {
  // a = -1: same expected number of sample points in any two regions of the
  // same volume (case 4 in §2.2).
  Workload w = MakeWorkload(9000, 1000, 0, 7);
  density::Kde kde = FitKde(w.points);
  BiasedSamplerOptions opts;
  opts.a = -1.0;
  opts.target_size = 1000;
  opts.seed = 3;
  auto s = BiasedSampler(opts).Run(w.points, kde);
  ASSERT_TRUE(s.ok());
  int64_t in_a = 0;
  int64_t in_b = 0;
  for (int64_t i = 0; i < s->size(); ++i) {
    if (InBlob(s->points[i], 0.2, 0.06)) ++in_a;
    if (InBlob(s->points[i], 0.8, 0.06)) ++in_b;
  }
  // 9x density imbalance in the data; flattened counts agree within noise.
  double ratio = static_cast<double>(in_a + 1) / static_cast<double>(in_b + 1);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST(BiasedSamplerTest, WeightsEstimateDatasetSize) {
  Workload w = MakeWorkload(4000, 3000, 3000, 8);
  density::Kde kde = FitKde(w.points);
  for (double a : {-0.5, 0.0, 1.0}) {
    dbs::OnlineMoments est;
    for (uint64_t seed = 0; seed < 6; ++seed) {
      BiasedSamplerOptions opts;
      opts.a = a;
      opts.target_size = 1000;
      opts.seed = seed;
      auto s = BiasedSampler(opts).Run(w.points, kde);
      ASSERT_TRUE(s.ok());
      est.Add(s->EstimatedDatasetSize());
    }
    // Horvitz–Thompson unbiasedness: mean estimate ~ n = 10000.
    EXPECT_NEAR(est.mean(), 10000.0, 1000.0) << "a=" << a;
  }
}

TEST(BiasedSamplerTest, OnePassApproximatesTwoPass) {
  Workload w = MakeWorkload(6000, 2000, 2000, 9);
  density::Kde kde = FitKde(w.points);
  BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 1000;
  BiasedSampler sampler(opts);
  auto two_pass = sampler.Run(w.points, kde);
  auto one_pass = sampler.RunOnePass(w.points, kde);
  ASSERT_TRUE(two_pass.ok());
  ASSERT_TRUE(one_pass.ok());
  // Normalizers agree within sampling error of the kernel-center estimate.
  EXPECT_NEAR(one_pass->normalizer / two_pass->normalizer, 1.0, 0.25);
  // And the one-pass sample size is still in the right ballpark.
  EXPECT_NEAR(static_cast<double>(one_pass->size()), 1000.0, 250.0);
}

TEST(BiasedSamplerTest, PassCountsMatchTheContract) {
  Workload w = MakeWorkload(3000, 1000, 0, 10);
  density::Kde kde = FitKde(w.points);

  data::InMemoryScan scan(&w.points);
  BiasedSamplerOptions opts;
  opts.target_size = 300;
  auto s = BiasedSampler(opts).Run(scan, kde);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(scan.passes(), 2);  // normalize + sample

  data::InMemoryScan scan2(&w.points);
  auto s2 = BiasedSampler(opts).RunOnePass(scan2, kde);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(scan2.passes(), 1);  // sample only
}

TEST(BiasedSamplerTest, WorksWithHistogramEstimator) {
  // The framework is estimator-agnostic (§2.1); swap in the histogram.
  Workload w = MakeWorkload(5000, 5000, 0, 11);
  density::HistogramDensityOptions hopts;
  hopts.cells_per_dim = 24;
  auto hd = density::HistogramDensity::Fit(w.points, hopts);
  ASSERT_TRUE(hd.ok());
  BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 800;
  auto s = BiasedSampler(opts).Run(w.points, *hd);
  ASSERT_TRUE(s.ok());
  int64_t dense = 0;
  int64_t sparse = 0;
  for (int64_t i = 0; i < s->size(); ++i) {
    if (InBlob(s->points[i], 0.2, 0.1)) ++dense;
    if (InBlob(s->points[i], 0.8, 0.2)) ++sparse;
  }
  EXPECT_GT(dense, 2 * sparse);
}

TEST(BiasedSamplerTest, DeterministicPerSeed) {
  Workload w = MakeWorkload(2000, 1000, 1000, 12);
  density::Kde kde = FitKde(w.points);
  BiasedSamplerOptions opts;
  opts.a = 0.5;
  opts.target_size = 400;
  opts.seed = 77;
  auto a = BiasedSampler(opts).Run(w.points, kde);
  auto b = BiasedSampler(opts).Run(w.points, kde);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (int64_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->points[i][0], b->points[i][0]);
  }
}

TEST(BiasedSamplerTest, ClampingIsReported) {
  // Tiny dataset + huge target forces probabilities to clamp at 1.
  Workload w = MakeWorkload(200, 0, 0, 13);
  density::Kde kde = FitKde(w.points);
  BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 500;
  auto s = BiasedSampler(opts).Run(w.points, kde);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->clamped_count, 0);
  EXPECT_LE(s->size(), 200);
}

TEST(BiasedSamplerTest, InclusionProbabilityHelper) {
  BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 100;
  BiasedSampler sampler(opts);
  EXPECT_DOUBLE_EQ(sampler.InclusionProbability(2.0, 1000.0), 0.2);
  EXPECT_DOUBLE_EQ(sampler.InclusionProbability(50.0, 1000.0), 1.0);
  EXPECT_EQ(sampler.InclusionProbability(1.0, 0.0), 0.0);
}

TEST(TuningTest, RecommendedExponents) {
  EXPECT_EQ(RecommendedExponent(SamplingGoal::kDenseClustersUnderNoise), 1.0);
  EXPECT_EQ(RecommendedExponent(SamplingGoal::kDenseClustersLightNoise), 0.5);
  EXPECT_EQ(RecommendedExponent(SamplingGoal::kSmallSparseClusters), -0.5);
  EXPECT_EQ(RecommendedExponent(SamplingGoal::kMixedDensityClusters), -0.25);
  EXPECT_EQ(RecommendedExponent(SamplingGoal::kFlattenDensity), -1.0);
  EXPECT_EQ(RecommendedExponent(SamplingGoal::kUniform), 0.0);
}

TEST(TuningTest, RecommendedOptionsScaleWithDataset) {
  auto opts =
      RecommendedOptions(SamplingGoal::kDenseClustersUnderNoise, 1000000, 1);
  EXPECT_EQ(opts.target_size, 10000);
  EXPECT_EQ(opts.a, 1.0);
  // Tiny dataset: floor applies.
  auto small = RecommendedOptions(SamplingGoal::kUniform, 1000, 1);
  EXPECT_EQ(small.target_size, 500);
  EXPECT_EQ(RecommendedNumKernels(), 1000);
  EXPECT_DOUBLE_EQ(RecommendedSampleFraction(), 0.01);
}

}  // namespace
}  // namespace dbs::core
