#include "data/distance.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::data {
namespace {

TEST(DistanceTest, KnownValues) {
  PointSet ps(2, {0.0, 0.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(Distance(ps[0], ps[1], Metric::kL2), 5.0);
  EXPECT_DOUBLE_EQ(Distance(ps[0], ps[1], Metric::kL1), 7.0);
  EXPECT_DOUBLE_EQ(Distance(ps[0], ps[1], Metric::kLinf), 4.0);
  EXPECT_DOUBLE_EQ(SquaredL2(ps[0], ps[1]), 25.0);
}

TEST(DistanceTest, DefaultMetricIsL2) {
  PointSet ps(2, {0.0, 0.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(Distance(ps[0], ps[1]), 5.0);
}

class MetricPropertyTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricPropertyTest, IdentityAndSymmetry) {
  Metric m = GetParam();
  Rng rng(1);
  PointSet ps(4);
  for (int i = 0; i < 50; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(-5, 5), rng.NextDouble(-5, 5),
                                  rng.NextDouble(-5, 5),
                                  rng.NextDouble(-5, 5)});
  }
  for (int64_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(Distance(ps[i], ps[i], m), 0.0);
    for (int64_t j = i + 1; j < ps.size(); ++j) {
      EXPECT_DOUBLE_EQ(Distance(ps[i], ps[j], m), Distance(ps[j], ps[i], m));
      EXPECT_GT(Distance(ps[i], ps[j], m), 0.0);
    }
  }
}

TEST_P(MetricPropertyTest, TriangleInequality) {
  Metric m = GetParam();
  Rng rng(2);
  PointSet ps(3);
  for (int i = 0; i < 30; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble(),
                                  rng.NextDouble()});
  }
  for (int64_t a = 0; a < ps.size(); ++a) {
    for (int64_t b = 0; b < ps.size(); ++b) {
      for (int64_t c = 0; c < ps.size(); ++c) {
        EXPECT_LE(Distance(ps[a], ps[c], m),
                  Distance(ps[a], ps[b], m) + Distance(ps[b], ps[c], m) +
                      1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricPropertyTest,
                         ::testing::Values(Metric::kL2, Metric::kL1,
                                           Metric::kLinf));

TEST(DistanceTest, NormOrderingHolds) {
  // Linf <= L2 <= L1 for every pair.
  Rng rng(3);
  PointSet ps(5);
  for (int i = 0; i < 40; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble(),
                                  rng.NextDouble(), rng.NextDouble(),
                                  rng.NextDouble()});
  }
  for (int64_t i = 0; i < ps.size(); ++i) {
    for (int64_t j = i + 1; j < ps.size(); ++j) {
      double l1 = Distance(ps[i], ps[j], Metric::kL1);
      double l2 = Distance(ps[i], ps[j], Metric::kL2);
      double linf = Distance(ps[i], ps[j], Metric::kLinf);
      EXPECT_LE(linf, l2 + 1e-12);
      EXPECT_LE(l2, l1 + 1e-12);
      // Dimension-factor bounds: L1 <= d * Linf, L2 <= sqrt(d) * Linf.
      EXPECT_LE(l1, 5 * linf + 1e-12);
      EXPECT_LE(l2, std::sqrt(5.0) * linf + 1e-12);
    }
  }
}

TEST(DistanceTest, OneDimensionalMetricsCoincide) {
  PointSet ps(1, {2.5, -1.5});
  for (Metric m : {Metric::kL2, Metric::kL1, Metric::kLinf}) {
    EXPECT_DOUBLE_EQ(Distance(ps[0], ps[1], m), 4.0);
  }
}

}  // namespace
}  // namespace dbs::data
