// Unit tests for the include-graph layering pass: matrix parsing, include
// extraction (quoted / angle / computed operands), build-alike resolution,
// the layering check, cycle detection, and frozen oracle files.

#include "tools/lint/include_graph.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/lexer.h"

namespace dbs::lint {
namespace {

LayerMatrix Matrix(const std::string& text) {
  LayerMatrix matrix;
  std::string error;
  EXPECT_TRUE(ParseLayerMatrix(text, &matrix, &error)) << error;
  return matrix;
}

IncludeScan Scan(const std::string& source) {
  return ScanIncludes(Lex(source));
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

TEST(LayerMatrixTest, ParsesModulesAndFrozenEntries) {
  const LayerMatrix m = Matrix(
      "# comment\n"
      "module util:\n"
      "module data: util\n"
      "module tools: *\n"
      "frozen src/cluster/ref.cc: <vector> data/scan.h\n");
  ASSERT_EQ(m.allowed.size(), 3u);
  EXPECT_TRUE(m.allowed.at("util").empty());
  EXPECT_EQ(m.allowed.at("data").count("util"), 1u);
  EXPECT_EQ(m.allowed.at("tools").count("*"), 1u);
  ASSERT_EQ(m.frozen.size(), 1u);
  EXPECT_EQ(m.frozen.at("src/cluster/ref.cc").count("<vector>"), 1u);
}

TEST(LayerMatrixTest, RejectsMalformedLines) {
  LayerMatrix m;
  std::string error;
  EXPECT_FALSE(ParseLayerMatrix("module util\n", &m, &error));  // no colon
  EXPECT_FALSE(ParseLayerMatrix("layer util:\n", &m, &error));  // bad kind
  EXPECT_FALSE(
      ParseLayerMatrix("module a:\nmodule a:\n", &m, &error));  // duplicate
}

TEST(ModuleOfTest, SecondComponentUnderSrcFirstOtherwise) {
  EXPECT_EQ(ModuleOf("src/density/kde.cc"), "density");
  EXPECT_EQ(ModuleOf("src/util/status.h"), "util");
  EXPECT_EQ(ModuleOf("tools/dbs_lint.cc"), "tools");
  EXPECT_EQ(ModuleOf("tests/lint_lexer_test.cc"), "tests");
  EXPECT_EQ(ModuleOf("bench/bench_main.cc"), "bench");
}

TEST(ScanIncludesTest, QuotedAndAngleOperands) {
  const IncludeScan scan = Scan(
      "#include \"data/scan.h\"\n"
      "#include <vector>\n"
      "int x;\n");
  ASSERT_EQ(scan.includes.size(), 2u);
  EXPECT_EQ(scan.includes[0].operand, "data/scan.h");
  EXPECT_EQ(scan.includes[0].line, 1);
  EXPECT_EQ(scan.includes[1].operand, "<vector>");
  EXPECT_TRUE(scan.skipped.empty());
}

// `#include MACRO` cannot be resolved without running the preprocessor;
// the scan must skip it with a note instead of guessing or crashing.
TEST(ScanIncludesTest, ComputedOperandSkippedWithNote) {
  const IncludeScan scan = Scan(
      "#define HDR \"data/scan.h\"\n"
      "#include HDR\n");
  EXPECT_TRUE(scan.includes.empty());
  ASSERT_EQ(scan.skipped.size(), 1u);
  EXPECT_EQ(scan.skipped[0].line, 2);
  EXPECT_NE(scan.skipped[0].message.find("skipped"), std::string::npos);
}

TEST(ScanIncludesTest, IncludeInsideCommentIgnored) {
  const IncludeScan scan = Scan("// #include \"data/scan.h\"\nint x;\n");
  EXPECT_TRUE(scan.includes.empty());
}

TEST(ResolveIncludeTest, BuildLikeResolutionOrder) {
  const std::set<std::string> known = {"src/data/scan.h", "src/data/sub/x.h",
                                       "tools/lint/lint.h"};
  // Repo-root-style operand (how src/ files include each other).
  EXPECT_EQ(ResolveInclude("src/core/walk.cc", "data/scan.h", known),
            "src/data/scan.h");
  // Relative to the including file's directory.
  EXPECT_EQ(ResolveInclude("src/data/scan.cc", "sub/x.h", known),
            "src/data/sub/x.h");
  // Repo-relative (how tools/tests include tool headers).
  EXPECT_EQ(ResolveInclude("tests/t.cc", "tools/lint/lint.h", known),
            "tools/lint/lint.h");
  // System headers and unknown files are external.
  EXPECT_EQ(ResolveInclude("src/data/scan.cc", "<vector>", known), "");
  EXPECT_EQ(ResolveInclude("src/data/scan.cc", "not/here.h", known), "");
}

std::map<std::string, IncludeScan> Tree(
    const std::map<std::string, std::string>& files) {
  std::map<std::string, IncludeScan> scans;
  for (const auto& [path, source] : files) scans[path] = Scan(source);
  return scans;
}

const char* kMatrixText =
    "module util:\n"
    "module data: util\n"
    "module density: data util\n"
    "module serve: data density util\n"
    "module tools: *\n";

TEST(IncludeGraphTest, AllowedEdgesProduceNoFindings) {
  const auto findings = CheckIncludeGraph(
      Tree({{"src/data/scan.h", "#include \"util/status.h\"\n"},
            {"src/util/status.h", "#include <string>\n"},
            {"src/density/kde.h", "#include \"data/scan.h\"\n"}}),
      Matrix(kMatrixText));
  EXPECT_TRUE(findings.empty());
}

// The architectural invariant the pass exists for: the serving stack may
// never be pulled into the library layers.
TEST(IncludeGraphTest, ServeFromDensityIsALayerViolation) {
  const auto findings = CheckIncludeGraph(
      Tree({{"src/density/kde.h", "int x;\n#include \"serve/wire.h\"\n"},
            {"src/serve/wire.h", "int y;\n"}}),
      Matrix(kMatrixText));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-violation");
  EXPECT_EQ(findings[0].file, "src/density/kde.h");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("serve"), std::string::npos);
}

TEST(IncludeGraphTest, WildcardModuleMayIncludeAnything) {
  const auto findings = CheckIncludeGraph(
      Tree({{"tools/dbs_serve.cc", "#include \"serve/wire.h\"\n"},
            {"src/serve/wire.h", "int y;\n"}}),
      Matrix(kMatrixText));
  EXPECT_TRUE(findings.empty());
}

TEST(IncludeGraphTest, UnknownModuleIsReported) {
  const auto findings = CheckIncludeGraph(
      Tree({{"src/mystery/new.h", "#include \"util/status.h\"\n"},
            {"src/util/status.h", "int x;\n"}}),
      Matrix(kMatrixText));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-violation");
  EXPECT_NE(findings[0].message.find("not in the layering matrix"),
            std::string::npos);
}

TEST(IncludeGraphTest, DetectsSeededCycle) {
  const auto findings = CheckIncludeGraph(
      Tree({{"src/data/a.h", "#include \"data/b.h\"\n"},
            {"src/data/b.h", "#include \"data/c.h\"\n"},
            {"src/data/c.h", "#include \"data/a.h\"\n"}}),
      Matrix(kMatrixText));
  const auto rules = Rules(findings);
  ASSERT_EQ(rules, std::vector<std::string>{"include-cycle"});
  // Reported once, anchored on the lexicographically first member.
  EXPECT_EQ(findings[0].file, "src/data/a.h");
  EXPECT_NE(findings[0].message.find("src/data/b.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/data/c.h"), std::string::npos);
}

TEST(IncludeGraphTest, SelfIncludeIsACycle) {
  const auto findings = CheckIncludeGraph(
      Tree({{"src/data/a.h", "#include \"data/a.h\"\n"}}),
      Matrix(kMatrixText));
  EXPECT_EQ(Rules(findings), std::vector<std::string>{"include-cycle"});
}

TEST(IncludeGraphTest, AcyclicDiamondIsClean) {
  const auto findings = CheckIncludeGraph(
      Tree({{"src/data/a.h",
             "#include \"data/b.h\"\n#include \"data/c.h\"\n"},
            {"src/data/b.h", "#include \"data/d.h\"\n"},
            {"src/data/c.h", "#include \"data/d.h\"\n"},
            {"src/data/d.h", "int x;\n"}}),
      Matrix(kMatrixText));
  EXPECT_TRUE(findings.empty());
}

TEST(IncludeGraphTest, FrozenFileWithPinnedIncludesIsClean) {
  const LayerMatrix m = Matrix(
      "module data:\n"
      "frozen src/data/oracle.cc: <vector> data/scan.h\n");
  const auto findings = CheckIncludeGraph(
      Tree({{"src/data/oracle.cc",
             "#include <vector>\n#include \"data/scan.h\"\n"},
            {"src/data/scan.h", "int x;\n"}}),
      m);
  EXPECT_TRUE(findings.empty());
}

// A frozen oracle gaining ANY new include — system headers included — is a
// finding; its value is that it stays still.
TEST(IncludeGraphTest, FrozenFileGainingIncludeIsReported) {
  const LayerMatrix m = Matrix(
      "module data:\n"
      "frozen src/data/oracle.cc: <vector>\n");
  const auto findings = CheckIncludeGraph(
      Tree({{"src/data/oracle.cc", "#include <vector>\n#include <cmath>\n"}}),
      m);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "frozen-include");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("<cmath>"), std::string::npos);
}

// The include pass shares the line rules' suppression channel: an allow
// marker above the offending #include drops the finding.
TEST(IncludeGraphTest, AllowMarkerSuppressesLayerViolation) {
  LayerMatrix matrix = Matrix(kMatrixText);
  TreeOptions options;
  options.layers = &matrix;
  const std::vector<SourceFile> files = {
      {"src/density/kde.cc",
       "// dbs-lint: allow(layer-violation): transitional, being inverted\n"
       "#include \"serve/wire.h\"\n"},
      {"src/serve/wire.h", "#ifndef WIRE_H\n#define WIRE_H\n#endif\n"}};
  EXPECT_TRUE(LintTree(files, options).findings.empty());
  // Without the marker the same tree fails.
  const std::vector<SourceFile> bare = {
      {"src/density/kde.cc", "#include \"serve/wire.h\"\n"},
      files[1]};
  EXPECT_EQ(Rules(LintTree(bare, options).findings),
            std::vector<std::string>{"layer-violation"});
}

// LintTree surfaces computed/macro include operands as notes, so a clean
// run still tells the reviewer what the analyzer could not see.
TEST(IncludeGraphTest, LintTreeReportsSkippedIncludesAsNotes) {
  LayerMatrix matrix = Matrix(kMatrixText);
  TreeOptions options;
  options.layers = &matrix;
  const std::vector<SourceFile> files = {
      {"src/data/gen.cc",
       "#define HDR \"data/scan.h\"\n"
       "#include HDR\n"}};
  const TreeResult result = LintTree(files, options);
  EXPECT_TRUE(result.findings.empty());
  ASSERT_FALSE(result.notes.empty());
  EXPECT_NE(result.notes[0].find("skipped"), std::string::npos);
}

TEST(IncludeGraphTest, FindingsAreSortedAndDeterministic) {
  const auto scans =
      Tree({{"src/density/z.h", "#include \"serve/wire.h\"\n"},
            {"src/density/a.h", "#include \"serve/wire.h\"\n"},
            {"src/serve/wire.h", "int y;\n"}});
  const auto first = CheckIncludeGraph(scans, Matrix(kMatrixText));
  const auto second = CheckIncludeGraph(scans, Matrix(kMatrixText));
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].file, "src/density/a.h");
  EXPECT_EQ(first[1].file, "src/density/z.h");
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].file, second[i].file);
    EXPECT_EQ(first[i].message, second[i].message);
  }
}

}  // namespace
}  // namespace dbs::lint
