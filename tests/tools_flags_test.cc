#include "tools/flags.h"

#include <gtest/gtest.h>

namespace dbs::tools {
namespace {

char** MakeArgv(std::vector<std::string>& storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (std::string& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(FlagsTest, ParsesKeyValuePairs) {
  std::vector<std::string> args{"prog", "in=a.dbsf", "size=200", "a=-0.5"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(4, MakeArgv(args)));
  EXPECT_EQ(flags.GetString("in", ""), "a.dbsf");
  EXPECT_EQ(flags.GetInt("size", 0), 200);
  EXPECT_DOUBLE_EQ(flags.GetDouble("a", 0), -0.5);
  EXPECT_TRUE(flags.AllKnown());
}

TEST(FlagsTest, FallbacksApply) {
  std::vector<std::string> args{"prog"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(1, MakeArgv(args)));
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(flags.GetInt("missing2", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing3", 2.5), 2.5);
}

TEST(FlagsTest, RejectsMalformedArguments) {
  std::vector<std::string> bare{"prog", "novalue"};
  Flags a;
  EXPECT_FALSE(a.Parse(2, MakeArgv(bare)));

  std::vector<std::string> empty_key{"prog", "=value"};
  Flags b;
  EXPECT_FALSE(b.Parse(2, MakeArgv(empty_key)));
}

TEST(FlagsTest, DetectsUnknownFlags) {
  std::vector<std::string> args{"prog", "in=x", "typo=1"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(3, MakeArgv(args)));
  EXPECT_EQ(flags.GetString("in", ""), "x");
  EXPECT_FALSE(flags.AllKnown());  // "typo" never consumed
}

TEST(FlagsTest, ValueMayContainEquals) {
  std::vector<std::string> args{"prog", "expr=a=b"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(2, MakeArgv(args)));
  EXPECT_EQ(flags.GetString("expr", ""), "a=b");
}

}  // namespace
}  // namespace dbs::tools
