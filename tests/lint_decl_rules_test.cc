// Unit tests for the declaration/statement pass: each rule gets a positive
// case, a negative case, and an allow-marker suppression case, plus the
// scope-tracker and name-collision machinery they rest on.
//
// Banned idioms appear here only inside fixture string literals.

#include "tools/lint/decl_rules.h"

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/lexer.h"
#include "tools/lint/lint.h"

namespace dbs::lint {
namespace {

std::vector<Finding> RunRules(const std::string& path, const std::string& content,
                         const std::set<std::string>* fns = nullptr) {
  DeclRuleOptions options;
  options.status_functions = fns;
  const std::vector<Finding> findings =
      CheckDeclRules(path, Lex(content), options);
  return ApplyAllowMarkers(StripComments(content), findings);
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

// ---------------------------------------------------------------- nodiscard

TEST(NodiscardStatusTest, BareStatusDeclarationFlagged) {
  const auto findings = RunRules("src/data/x.h", "Status Build();\n");
  ASSERT_EQ(Rules(findings), std::vector<std::string>{"nodiscard-status"});
  EXPECT_EQ(findings[0].line, 1);
}

TEST(NodiscardStatusTest, AnnotatedDeclarationPasses) {
  EXPECT_TRUE(RunRules("src/data/x.h", "[[nodiscard]] Status Build();\n").empty());
}

TEST(NodiscardStatusTest, ResultAndQualifiedReturnTypesFlagged) {
  EXPECT_EQ(Rules(RunRules("src/data/x.h", "Result<int> Parse();\n")),
            std::vector<std::string>{"nodiscard-status"});
  EXPECT_EQ(Rules(RunRules("src/data/x.h", "dbs::Status Open();\n")),
            std::vector<std::string>{"nodiscard-status"});
}

TEST(NodiscardStatusTest, ClassScopeAndSpecifiersFlagged) {
  const auto findings = RunRules("src/data/x.h",
                            "class Foo {\n"
                            " public:\n"
                            "  static Status Init();\n"
                            "};\n");
  ASSERT_EQ(Rules(findings), std::vector<std::string>{"nodiscard-status"});
  EXPECT_EQ(findings[0].line, 3);
}

TEST(NodiscardStatusTest, TemplateDeclarationFlagged) {
  EXPECT_EQ(Rules(RunRules("src/data/x.h",
                      "template <typename T>\nResult<T> Make();\n")),
            std::vector<std::string>{"nodiscard-status"});
}

TEST(NodiscardStatusTest, ExemptShapesPass) {
  // Out-of-line member definitions: the attribute belongs in-class.
  EXPECT_TRUE(
      RunRules("src/data/x.cc", "Status Foo::Build() { return Status(); }\n")
          .empty());
  // void, pointers and references are not discardable-error signatures.
  EXPECT_TRUE(RunRules("src/data/x.h", "void RunRules();\n").empty());
  EXPECT_TRUE(RunRules("src/data/x.h", "Status* Borrow();\n").empty());
  EXPECT_TRUE(RunRules("src/data/x.h", "const Status& Peek();\n").empty());
  // Variables of type Status are not function declarations.
  EXPECT_TRUE(RunRules("src/data/x.cc", "Status g_last;\n").empty());
}

TEST(NodiscardStatusTest, AllowMarkerSuppresses) {
  EXPECT_TRUE(RunRules("src/data/x.h",
                  "// dbs-lint: allow(nodiscard-status): C ABI shim\n"
                  "Status Build();\n")
                  .empty());
}

// ---------------------------------------------------------- unchecked-status

TEST(UncheckedStatusTest, BareCallStatementFlagged) {
  const std::set<std::string> fns = {"Build"};
  const auto findings = RunRules("src/data/x.cc",
                            "void F() {\n"
                            "  Build();\n"
                            "}\n",
                            &fns);
  ASSERT_EQ(Rules(findings), std::vector<std::string>{"unchecked-status"});
  EXPECT_EQ(findings[0].line, 2);
}

TEST(UncheckedStatusTest, MemberAndQualifiedCallsFlagged) {
  const std::set<std::string> fns = {"Build"};
  EXPECT_EQ(Rules(RunRules("src/data/x.cc", "void F() { obj.Build(); }\n", &fns)),
            std::vector<std::string>{"unchecked-status"});
  EXPECT_EQ(
      Rules(RunRules("src/data/x.cc", "void F() { foo::Bar::Build(1, 2); }\n",
                &fns)),
      std::vector<std::string>{"unchecked-status"});
}

TEST(UncheckedStatusTest, ConsumedCallsPass) {
  const std::set<std::string> fns = {"Build"};
  EXPECT_TRUE(
      RunRules("src/data/x.cc", "void F() { Status s = Build(); (void)s; }\n", &fns)
          .empty());
  EXPECT_TRUE(RunRules("src/data/x.cc",
                  "[[nodiscard]] Status F() { return Build(); }\n", &fns)
                  .empty());
  EXPECT_TRUE(RunRules("src/data/x.cc",
                  "[[nodiscard]] Status F() { "
                  "DBS_RETURN_IF_ERROR(Build()); return {}; }\n",
                  &fns)
                  .empty());
  EXPECT_TRUE(
      RunRules("src/data/x.cc", "void F() { if (!Build().ok()) {} }\n", &fns)
          .empty());
  // Calls to functions outside the Status set are not this rule's business.
  EXPECT_TRUE(RunRules("src/data/x.cc", "void F() { Log(); }\n", &fns).empty());
}

TEST(UncheckedStatusTest, AllowMarkerSuppresses) {
  const std::set<std::string> fns = {"Build"};
  EXPECT_TRUE(
      RunRules("src/data/x.cc",
          "void F() {\n"
          "  Build();  // dbs-lint: allow(unchecked-status): best-effort\n"
          "}\n",
          &fns)
          .empty());
}

TEST(CollectStatusFunctionsTest, SeparatesStatusAndVoidNames) {
  const auto sets = CollectStatusFunctions(
      Lex("Status Make();\n"
          "void Make();\n"
          "Result<int> Parse();\n"
          "Status Foo::Bind() { return Status(); }\n"));
  EXPECT_EQ(sets.status_returning,
            (std::set<std::string>{"Make", "Parse", "Bind"}));
  EXPECT_EQ(sets.void_returning, (std::set<std::string>{"Make"}));
}

// A name declared void anywhere in the tree cannot be flagged reliably
// without overload resolution, so LintTree subtracts it — the shape of the
// Server::RequestShutdown/void vs Client::RequestShutdown/Status collision.
TEST(LintTreeTest, VoidCollisionSubtractedFromStatusSet) {
  const std::vector<SourceFile> files = {
      {"src/data/a.cc",
       "[[nodiscard]] Status Ping();\n"
       "void Ping();\n"
       "void Caller() {\n"
       "  Ping();\n"
       "}\n"}};
  const TreeResult result = LintTree(files, TreeOptions{});
  EXPECT_TRUE(result.findings.empty());
}

TEST(LintTreeTest, StatusFunctionSetCrossesFiles) {
  const std::vector<SourceFile> files = {
      {"src/data/a.h", "#ifndef A_H\n[[nodiscard]] Status Ping();\n#endif\n"},
      {"src/data/b.cc", "void Caller() {\n  Ping();\n}\n"}};
  const TreeResult result = LintTree(files, TreeOptions{});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "unchecked-status");
  EXPECT_EQ(result.findings[0].file, "src/data/b.cc");
  EXPECT_EQ(result.findings[0].line, 2);
}

// ------------------------------------------------------------------ fp-accum

TEST(FpAccumTest, StdReduceInLibraryFlagged) {
  EXPECT_EQ(
      Rules(RunRules("src/data/x.cc",
                "double F(const std::vector<double>& v) {\n"
                "  return std::reduce(v.begin(), v.end());\n"
                "}\n")),
      std::vector<std::string>{"fp-accum"});
  // Outside src/ the idiom is fine (tests may exercise it on purpose).
  EXPECT_TRUE(RunRules("tests/x.cc",
                  "double F(const std::vector<double>& v) {\n"
                  "  return std::reduce(v.begin(), v.end());\n"
                  "}\n")
                  .empty());
}

TEST(FpAccumTest, ExecutionPolicyAccumulateFlagged) {
  EXPECT_EQ(Rules(RunRules("src/data/x.cc",
                      "double F(std::vector<double>& v) {\n"
                      "  return std::accumulate(std::execution::par, "
                      "v.begin(), v.end(), 0.0);\n"
                      "}\n")),
            std::vector<std::string>{"fp-accum"});
  // The sequential overload is the blessed idiom.
  EXPECT_TRUE(RunRules("src/data/x.cc",
                  "double F(const std::vector<double>& v) {\n"
                  "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
                  "}\n")
                  .empty());
}

TEST(FpAccumTest, RangeForOverUnorderedInPinnedDirsFlagged) {
  const std::string body =
      "void F() {\n"
      "  for (const auto& kv : unordered_counts) {\n"
      "    Use(kv);\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(Rules(RunRules("src/density/x.cc", body)),
            std::vector<std::string>{"fp-accum"});
  EXPECT_EQ(Rules(RunRules("src/shard/x.cc", body)),
            std::vector<std::string>{"fp-accum"});
  // Outside the bitwise-pinned directories the idiom is allowed.
  EXPECT_TRUE(RunRules("src/sampling/x.cc", body).empty());
  // Ordered containers iterate deterministically.
  EXPECT_TRUE(RunRules("src/density/x.cc",
                  "void F() {\n"
                  "  for (const auto& kv : sorted_counts) {\n"
                  "    Use(kv);\n"
                  "  }\n"
                  "}\n")
                  .empty());
}

TEST(FpAccumTest, AllowMarkerSuppresses) {
  EXPECT_TRUE(RunRules("src/data/x.cc",
                  "double F(const std::vector<double>& v) {\n"
                  "  // dbs-lint: allow(fp-accum): integer sum, associative\n"
                  "  return std::reduce(v.begin(), v.end());\n"
                  "}\n")
                  .empty());
}

// ----------------------------------------------------------------- clock-now

TEST(ClockNowTest, WallClockReadInLibraryFlagged) {
  const std::string body =
      "void F() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "}\n";
  EXPECT_EQ(Rules(RunRules("src/data/x.cc", body)),
            std::vector<std::string>{"clock-now"});
  EXPECT_EQ(Rules(RunRules("tools/dbs_x.cc", body)),
            std::vector<std::string>{"clock-now"});
  // bench/ exists to measure time; the audited timing files are exempt.
  EXPECT_TRUE(RunRules("bench/x.cc", body).empty());
  EXPECT_TRUE(RunRules("src/eval/experiment.h", body).empty());
  EXPECT_TRUE(RunRules("src/serve/shm_transport.cc", body).empty());
}

TEST(ClockNowTest, BareClockCallFlaggedButMembersAreNot) {
  EXPECT_EQ(Rules(RunRules("src/data/x.cc", "void F() { long t = clock(); }\n")),
            std::vector<std::string>{"clock-now"});
  // A member or namespaced `clock()` is someone else's clock.
  EXPECT_TRUE(
      RunRules("src/data/x.cc", "void F() { long t = timer.clock(); }\n").empty());
}

TEST(ClockNowTest, AllowMarkerSuppresses) {
  EXPECT_TRUE(RunRules("src/data/x.cc",
                  "void F() {\n"
                  "  // dbs-lint: allow(clock-now): log timestamp only\n"
                  "  auto t = std::chrono::steady_clock::now();\n"
                  "}\n")
                  .empty());
}

// ------------------------------------------------------------- relaxed-atomic

TEST(RelaxedAtomicTest, RelaxedOrderOutsideAuditedFilesFlagged) {
  const std::string body =
      "void F() {\n"
      "  auto v = flag.load(std::memory_order_relaxed);\n"
      "}\n";
  EXPECT_EQ(Rules(RunRules("src/data/x.cc", body)),
            std::vector<std::string>{"relaxed-atomic"});
  // The C++20 nested spelling counts too.
  EXPECT_EQ(Rules(RunRules("src/data/x.cc",
                      "void F() {\n"
                      "  auto v = flag.load(std::memory_order::relaxed);\n"
                      "}\n")),
            std::vector<std::string>{"relaxed-atomic"});
  // The audited lock-free files carry the happens-before argument.
  EXPECT_TRUE(RunRules("src/serve/shm_ring.h", body).empty());
  EXPECT_TRUE(RunRules("src/serve/shm_transport.cc", body).empty());
  // Stronger orderings are always fine.
  EXPECT_TRUE(RunRules("src/data/x.cc",
                  "void F() {\n"
                  "  auto v = flag.load(std::memory_order_acquire);\n"
                  "}\n")
                  .empty());
}

TEST(RelaxedAtomicTest, AllowMarkerSuppresses) {
  EXPECT_TRUE(RunRules("src/data/x.cc",
                  "void F() {\n"
                  "  // dbs-lint: allow(relaxed-atomic): pure counter\n"
                  "  count.fetch_add(1, std::memory_order_relaxed);\n"
                  "}\n")
                  .empty());
}

// ------------------------------------------------------------ detached-thread

TEST(DetachedThreadTest, DetachFlaggedJoinPasses) {
  EXPECT_EQ(Rules(RunRules("src/data/x.cc", "void F() { worker.detach(); }\n")),
            std::vector<std::string>{"detached-thread"});
  EXPECT_EQ(Rules(RunRules("src/data/x.cc", "void F() { worker->detach(); }\n")),
            std::vector<std::string>{"detached-thread"});
  EXPECT_TRUE(RunRules("src/data/x.cc", "void F() { worker.join(); }\n").empty());
  // `detach` as a plain identifier (a local, a parameter) is not a call.
  EXPECT_TRUE(
      RunRules("src/data/x.cc", "void F(bool detach) { Use(detach); }\n").empty());
}

TEST(DetachedThreadTest, AllowMarkerSuppresses) {
  EXPECT_TRUE(
      RunRules("src/data/x.cc",
          "void F() {\n"
          "  worker.detach();  // dbs-lint: allow(detached-thread): daemon\n"
          "}\n")
          .empty());
}

// -------------------------------------------------------------- mutex-comment

TEST(MutexCommentTest, UncommentedMutexMemberFlagged) {
  const auto findings = RunRules("src/data/x.h",
                            "class Foo {\n"
                            " private:\n"
                            "  std::mutex mu_;\n"
                            "};\n");
  ASSERT_EQ(Rules(findings), std::vector<std::string>{"mutex-comment"});
  EXPECT_EQ(findings[0].line, 3);
}

TEST(MutexCommentTest, CommentAboveOrTrailingPasses) {
  EXPECT_TRUE(RunRules("src/data/x.h",
                  "class Foo {\n"
                  " private:\n"
                  "  // Guards counts_. Leaf lock.\n"
                  "  std::mutex mu_;\n"
                  "};\n")
                  .empty());
  EXPECT_TRUE(RunRules("src/data/x.h",
                  "class Foo {\n"
                  " private:\n"
                  "  std::mutex mu_;  // Guards counts_. Leaf lock.\n"
                  "};\n")
                  .empty());
}

TEST(MutexCommentTest, OtherMutexTypesCoveredAndLocalsExempt) {
  EXPECT_EQ(Rules(RunRules("src/data/x.h",
                      "class Foo {\n"
                      "  std::shared_mutex table_mu_;\n"
                      "};\n")),
            std::vector<std::string>{"mutex-comment"});
  // A mutex parameter or local inside a function body is not a member.
  EXPECT_TRUE(
      RunRules("src/data/x.cc", "void F() { std::mutex local; Use(local); }\n")
          .empty());
}

TEST(MutexCommentTest, AllowMarkerSuppresses) {
  EXPECT_TRUE(
      RunRules("src/data/x.h",
          "class Foo {\n"
          "  std::mutex mu_;  // dbs-lint: allow(mutex-comment): fixture\n"
          "};\n")
          .empty());
}

// The scope tracker must not let macro-body braces corrupt the stack: a
// declaration after an unbalanced-looking #define is still namespace scope.
TEST(ScopeTrackerTest, DirectiveBracesDoNotCorruptScopes) {
  const auto findings = RunRules("src/data/x.h",
                            "#define OPEN {\n"
                            "Status Build();\n");
  EXPECT_EQ(Rules(findings), std::vector<std::string>{"nodiscard-status"});
}

TEST(ScopeTrackerTest, LambdaBodyIsFunctionScope) {
  const std::set<std::string> fns = {"Build"};
  const auto findings = RunRules("src/data/x.cc",
                            "void F() {\n"
                            "  RunRules([&] {\n"
                            "    Build();\n"
                            "  });\n"
                            "}\n",
                            &fns);
  ASSERT_EQ(Rules(findings), std::vector<std::string>{"unchecked-status"});
  EXPECT_EQ(findings[0].line, 3);
}

}  // namespace
}  // namespace dbs::lint
