// SPSC ring primitive: wrap-around at the capacity boundary, non-blocking
// backpressure on a full ring, torn-frame rejection, and a two-thread
// producer/consumer stress run. The stress test deliberately uses ONE heap
// buffer shared by both threads (not two mappings of an shm region) so
// TSan sees both sides touch the same addresses and actually verifies the
// acquire/release protocol.

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/shm_ring.h"

namespace dbs {
namespace {

using serve::ShmRing;

// A 64-byte data area: small enough that every test wraps constantly.
constexpr size_t kSmallRing = 64;

struct AlignedRegion {
  explicit AlignedRegion(size_t data_bytes)
      : bytes(ShmRing::RegionBytes(data_bytes) + 64) {}
  void* get() {
    void* p = bytes.data();
    size_t space = bytes.size();
    return std::align(64, bytes.size() - 64, p, space);
  }
  std::vector<uint8_t> bytes;
};

std::vector<uint8_t> PatternRecord(size_t size, uint8_t seed) {
  std::vector<uint8_t> record(size);
  for (size_t i = 0; i < size; ++i) {
    record[i] = static_cast<uint8_t>(seed + 31 * i);
  }
  return record;
}

TEST(ShmRingTest, PushPopRoundTrip) {
  AlignedRegion region(kSmallRing);
  ShmRing ring = ShmRing::Create(region.get(), kSmallRing);
  EXPECT_TRUE(ring.valid());
  EXPECT_EQ(ring.data_bytes(), kSmallRing);
  EXPECT_EQ(ring.max_record_bytes(), kSmallRing - ShmRing::kLengthBytes);

  std::vector<uint8_t> record = PatternRecord(13, 7);
  ASSERT_TRUE(ring.TryPush(record.data(), record.size()));
  std::vector<uint8_t> out;
  auto popped = ring.TryPop(&out);
  ASSERT_TRUE(popped.ok());
  ASSERT_TRUE(*popped);
  EXPECT_EQ(out, record);

  // Empty again: pop reports false, not an error.
  popped = ring.TryPop(&out);
  ASSERT_TRUE(popped.ok());
  EXPECT_FALSE(*popped);
}

TEST(ShmRingTest, RecordsSurviveWrapAroundAtEveryOffset) {
  AlignedRegion region(kSmallRing);
  ShmRing ring = ShmRing::Create(region.get(), kSmallRing);
  // Pushing 56 records of 13+8 bytes through a 64-byte ring walks the
  // cursors across every offset mod 64, so records split at the boundary
  // in every possible way (including a split inside the length prefix).
  std::vector<uint8_t> out;
  for (int i = 0; i < 56; ++i) {
    std::vector<uint8_t> record =
        PatternRecord(13, static_cast<uint8_t>(i));
    ASSERT_TRUE(ring.TryPush(record.data(), record.size())) << i;
    auto popped = ring.TryPop(&out);
    ASSERT_TRUE(popped.ok()) << i;
    ASSERT_TRUE(*popped) << i;
    EXPECT_EQ(out, record) << i;
  }
}

TEST(ShmRingTest, MaxSizeRecordUsesTheWholeRing) {
  AlignedRegion region(kSmallRing);
  ShmRing ring = ShmRing::Create(region.get(), kSmallRing);
  std::vector<uint8_t> record = PatternRecord(ring.max_record_bytes(), 3);
  ASSERT_TRUE(ring.TryPush(record.data(), record.size()));
  // Exactly full now: nothing else fits.
  uint8_t byte = 1;
  EXPECT_FALSE(ring.TryPush(&byte, 1));
  std::vector<uint8_t> out;
  auto popped = ring.TryPop(&out);
  ASSERT_TRUE(popped.ok());
  ASSERT_TRUE(*popped);
  EXPECT_EQ(out, record);
}

TEST(ShmRingTest, FullRingFailsPushImmediatelyAndRecoversAfterPop) {
  AlignedRegion region(kSmallRing);
  ShmRing ring = ShmRing::Create(region.get(), kSmallRing);
  // Each 8-byte record occupies 16 bytes with its prefix; four fill the
  // 64-byte ring exactly.
  std::vector<uint8_t> record = PatternRecord(8, 9);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPush(record.data(), record.size())) << i;
  }
  // Backpressure is a plain `false`, returned immediately — the caller owns
  // the waiting policy, so a full ring can never livelock inside the ring.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(ring.TryPush(record.data(), record.size()));
  }
  std::vector<uint8_t> out;
  auto popped = ring.TryPop(&out);
  ASSERT_TRUE(popped.ok());
  ASSERT_TRUE(*popped);
  EXPECT_TRUE(ring.TryPush(record.data(), record.size()));
}

TEST(ShmRingTest, ImpossibleRecordLengthIsRejectedNotDelivered) {
  AlignedRegion region(kSmallRing);
  ShmRing ring = ShmRing::Create(region.get(), kSmallRing);
  std::vector<uint8_t> record = PatternRecord(8, 5);
  ASSERT_TRUE(ring.TryPush(record.data(), record.size()));

  // Corrupt the length prefix in place (the data area starts right after
  // the control block) to something no producer could have written.
  uint8_t* data =
      static_cast<uint8_t*>(region.get()) + ShmRing::kControlBytes;
  const uint64_t absurd = 1ull << 40;
  std::memcpy(data, &absurd, sizeof(absurd));
  std::vector<uint8_t> out;
  auto popped = ring.TryPop(&out);
  ASSERT_FALSE(popped.ok());
  EXPECT_EQ(popped.status().code(), StatusCode::kInternal);

  // Zero length is equally impossible (pushes assert size > 0).
  const uint64_t zero = 0;
  std::memcpy(data, &zero, sizeof(zero));
  popped = ring.TryPop(&out);
  ASSERT_FALSE(popped.ok());
  EXPECT_EQ(popped.status().code(), StatusCode::kInternal);
}

TEST(ShmRingTest, TornLengthPrefixIsRejected) {
  AlignedRegion region(kSmallRing);
  ShmRing ring = ShmRing::Create(region.get(), kSmallRing);
  // Simulate a torn publish: fewer published bytes than a length prefix.
  // The cursors live at the head of the region (head at 0, tail at 64).
  auto* head = reinterpret_cast<std::atomic<uint64_t>*>(region.get());
  head->store(4, std::memory_order_release);
  std::vector<uint8_t> out;
  auto popped = ring.TryPop(&out);
  ASSERT_FALSE(popped.ok());
  EXPECT_EQ(popped.status().code(), StatusCode::kInternal);

  // A record whose declared length extends past the published head is a
  // torn frame too.
  head->store(16, std::memory_order_release);
  uint8_t* data =
      static_cast<uint8_t*>(region.get()) + ShmRing::kControlBytes;
  const uint64_t overlong = 32;
  std::memcpy(data, &overlong, sizeof(overlong));
  popped = ring.TryPop(&out);
  ASSERT_FALSE(popped.ok());
  EXPECT_EQ(popped.status().code(), StatusCode::kInternal);
}

TEST(ShmRingTest, TwoThreadStressKeepsOrderAndContent) {
  // One shared heap buffer (single mapping!) so TSan watches producer and
  // consumer race on the very same addresses; varying record sizes force
  // every wrap pattern under sustained backpressure on a 256-byte ring.
  constexpr size_t kStressRing = 256;
  constexpr int kRecords = 20000;
  AlignedRegion region(kStressRing);
  ShmRing producer_ring = ShmRing::Create(region.get(), kStressRing);
  ShmRing consumer_ring = ShmRing::Attach(region.get(), kStressRing);

  auto record_for = [&](int i) {
    const size_t size = 1 + static_cast<size_t>((i * 37) % 200);
    return PatternRecord(size, static_cast<uint8_t>(i * 11));
  };

  std::thread producer([&] {
    for (int i = 0; i < kRecords; ++i) {
      std::vector<uint8_t> record = record_for(i);
      while (!producer_ring.TryPush(record.data(), record.size())) {
        std::this_thread::yield();
      }
    }
  });

  int mismatches = 0;
  std::vector<uint8_t> out;
  for (int i = 0; i < kRecords; ++i) {
    for (;;) {
      auto popped = consumer_ring.TryPop(&out);
      ASSERT_TRUE(popped.ok()) << "record " << i;
      if (*popped) break;
      std::this_thread::yield();
    }
    if (out != record_for(i)) ++mismatches;
  }
  producer.join();
  EXPECT_EQ(mismatches, 0);

  // Fully drained afterwards.
  auto empty = consumer_ring.TryPop(&out);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(*empty);
}

}  // namespace
}  // namespace dbs
