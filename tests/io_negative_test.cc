// Negative-path parser tests: hand-built truncated and garbage inputs for
// the .dbsf dataset loader and the DBSQ wire codec. io_robustness_test
// mutates valid files; this file starts from INVALID bytes — empty files,
// wrong magics, lying length fields, truncated payloads for every message
// type — so the ASan/UBSan CI job walks the error paths of every parser,
// not just the happy paths. Every case must fail with a Status (or decode
// to something structurally valid), never crash, hang or over-allocate.

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "serve/wire.h"
#include "util/rng.h"

namespace dbs {
namespace {

using namespace dbs::serve;  // NOLINT: test-local brevity

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteBytes(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DBS_CHECK(f != nullptr);
  if (!bytes.empty()) {
    DBS_CHECK(std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size());
  }
  std::fclose(f);
}

// A syntactically valid 32-byte .dbsf header with the given fields.
std::vector<unsigned char> DbsfHeader(uint32_t magic, uint32_t version,
                                      uint32_t dim, int64_t rows) {
  std::vector<unsigned char> bytes(32, 0);
  std::memcpy(bytes.data() + 0, &magic, 4);
  std::memcpy(bytes.data() + 4, &version, 4);
  std::memcpy(bytes.data() + 8, &dim, 4);
  std::memcpy(bytes.data() + 16, &rows, 8);
  return bytes;
}

TEST(DatasetNegativeTest, EmptyAndTinyFilesAreRejected) {
  const std::string path = TempPath("neg_empty.dbsf");
  for (size_t size : {0u, 1u, 8u, 31u}) {
    WriteBytes(path, std::vector<unsigned char>(size, 0x5a));
    EXPECT_FALSE(data::ReadDatasetFile(path).ok()) << "size=" << size;
  }
  std::remove(path.c_str());
}

TEST(DatasetNegativeTest, GarbageBytesAreRejected) {
  const std::string path = TempPath("neg_garbage.dbsf");
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<unsigned char> bytes(
        32 + static_cast<size_t>(rng.NextBounded(256)));
    for (auto& b : bytes) {
      b = static_cast<unsigned char>(rng.NextBounded(256));
    }
    WriteBytes(path, bytes);
    // Random bytes essentially never spell the magic; decoding must fail
    // cleanly (and must never abort on a garbage dim/row count).
    auto result = data::ReadDatasetFile(path);
    if (result.ok()) {
      EXPECT_GT(result->dim(), 0);
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetNegativeTest, HeaderFieldBoundsAreEnforced) {
  const std::string path = TempPath("neg_header.dbsf");
  struct Case {
    const char* what;
    uint32_t magic;
    uint32_t version;
    uint32_t dim;
    int64_t rows;
  };
  const Case cases[] = {
      {"wrong magic", data::kDatasetMagic ^ 1, data::kDatasetVersion, 2, 1},
      {"wrong version", data::kDatasetMagic, data::kDatasetVersion + 9, 2, 1},
      {"zero dim", data::kDatasetMagic, data::kDatasetVersion, 0, 1},
      {"huge dim", data::kDatasetMagic, data::kDatasetVersion, 1u << 20, 1},
      {"negative rows", data::kDatasetMagic, data::kDatasetVersion, 2, -7},
      // A row count whose payload cannot possibly be present must be
      // rejected up front instead of provoking a giant allocation.
      {"lying rows", data::kDatasetMagic, data::kDatasetVersion, 2,
       int64_t{1} << 60},
  };
  for (const Case& c : cases) {
    WriteBytes(path, DbsfHeader(c.magic, c.version, c.dim, c.rows));
    EXPECT_FALSE(data::ReadDatasetFile(path).ok()) << c.what;
  }
  std::remove(path.c_str());
}

TEST(DatasetNegativeTest, PayloadShorterThanPromisedIsRejected) {
  const std::string path = TempPath("neg_short.dbsf");
  // Header promises 4 rows of dim 2 (64 payload bytes); provide 0..63.
  for (size_t payload : {0u, 1u, 15u, 16u, 63u}) {
    std::vector<unsigned char> bytes =
        DbsfHeader(data::kDatasetMagic, data::kDatasetVersion, 2, 4);
    bytes.resize(32 + payload, 0);
    WriteBytes(path, bytes);
    EXPECT_FALSE(data::ReadDatasetFile(path).ok()) << "payload=" << payload;
  }
  std::remove(path.c_str());
}

// ---- DBSQ wire codec -------------------------------------------------------

// Every payload decoder, driven by the same byte buffer; none may crash.
void DecodeAllPayloads(const std::vector<uint8_t>& payload) {
  (void)DecodeRegisterRequest(payload);
  (void)DecodeEvictRequest(payload);
  (void)DecodeDensityRequest(payload);
  (void)DecodeDensityResponse(payload);
  (void)DecodeSampleRequest(payload);
  (void)DecodeSampleResponse(payload);
  (void)DecodeOutlierRequest(payload);
  (void)DecodeOutlierResponse(payload);
  (void)DecodeStatsResponse(payload);
  (void)DecodeErrorResponse(payload);
}

TEST(WireNegativeTest, EmptyPayloadIsRejectedByEveryDecoder) {
  const std::vector<uint8_t> empty;
  EXPECT_FALSE(DecodeRegisterRequest(empty).ok());
  EXPECT_FALSE(DecodeEvictRequest(empty).ok());
  EXPECT_FALSE(DecodeDensityRequest(empty).ok());
  EXPECT_FALSE(DecodeDensityResponse(empty).ok());
  EXPECT_FALSE(DecodeSampleRequest(empty).ok());
  EXPECT_FALSE(DecodeSampleResponse(empty).ok());
  EXPECT_FALSE(DecodeOutlierRequest(empty).ok());
  EXPECT_FALSE(DecodeOutlierResponse(empty).ok());
  EXPECT_FALSE(DecodeStatsResponse(empty).ok());
}

TEST(WireNegativeTest, GarbagePayloadsNeverCrashAnyDecoder) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> payload(
        static_cast<size_t>(rng.NextBounded(512)));
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.NextBounded(256));
    }
    DecodeAllPayloads(payload);
  }
}

TEST(WireNegativeTest, TruncatedPayloadsAreRejectedForEveryMessageType) {
  data::PointSet points(3);
  points.Append(std::vector<double>{1.0, 2.0, 3.0});
  points.Append(std::vector<double>{4.0, 5.0, 6.0});

  DensityBatchRequest density;
  density.model = "model";
  density.points = points;
  SampleRequest sample;
  sample.model = "model";
  sample.points = points;
  OutlierScoreBatchRequest outliers;
  outliers.model = "model";
  outliers.points = points;
  SampleResponse sample_response;
  sample_response.points = points;
  sample_response.inclusion_probs = {0.5, 0.5};
  sample_response.densities = {1.0, 2.0};
  DensityBatchResponse density_response;
  density_response.densities = {1.0, 2.0, 3.0};

  // Each message is truncated at every prefix length and fed to ITS OWN
  // decoder (a prefix of one message can legitimately decode as a shorter
  // message type — e.g. RegisterRequest's first field is a valid
  // EvictRequest — so cross-decoding is exercised for crash-safety only).
  struct Case {
    const char* what;
    std::vector<uint8_t> payload;
    std::function<bool(const std::vector<uint8_t>&)> decodes;
  };
  const std::vector<Case> cases = {
      {"register", EncodeRegisterRequest({"name", "path"}),
       [](const std::vector<uint8_t>& p) {
         return DecodeRegisterRequest(p).ok();
       }},
      {"evict", EncodeEvictRequest({"name"}),
       [](const std::vector<uint8_t>& p) {
         return DecodeEvictRequest(p).ok();
       }},
      {"density request", EncodeDensityRequest(density),
       [](const std::vector<uint8_t>& p) {
         return DecodeDensityRequest(p).ok();
       }},
      {"density response", EncodeDensityResponse(density_response),
       [](const std::vector<uint8_t>& p) {
         return DecodeDensityResponse(p).ok();
       }},
      {"sample request", EncodeSampleRequest(sample),
       [](const std::vector<uint8_t>& p) {
         return DecodeSampleRequest(p).ok();
       }},
      {"sample response", EncodeSampleResponse(sample_response),
       [](const std::vector<uint8_t>& p) {
         return DecodeSampleResponse(p).ok();
       }},
      {"outlier request", EncodeOutlierRequest(outliers),
       [](const std::vector<uint8_t>& p) {
         return DecodeOutlierRequest(p).ok();
       }},
  };
  for (const Case& c : cases) {
    for (size_t keep = 0; keep < c.payload.size(); ++keep) {
      const std::vector<uint8_t> cut(c.payload.begin(),
                                     c.payload.begin() + keep);
      DecodeAllPayloads(cut);  // crash-safety across every decoder
      // A strict prefix can never satisfy the decoder's AtEnd() check.
      EXPECT_FALSE(c.decodes(cut)) << c.what << " keep=" << keep;
    }
  }
}

TEST(WireNegativeTest, LyingLengthFieldsDoNotAllocate) {
  // A string whose u32 length claims 4 GiB with 4 bytes behind it.
  {
    WireWriter w;
    w.PutU32(0xffffffffu);
    w.PutU32(0x41414141u);
    const std::vector<uint8_t> payload = w.Take();
    EXPECT_FALSE(DecodeRegisterRequest(payload).ok());
    EXPECT_FALSE(DecodeEvictRequest(payload).ok());
  }
  // A point batch claiming 2^60 rows of dim 1024.
  {
    WireWriter w;
    w.PutString("model");
    w.PutU32(1024);              // dim at the ceiling
    w.PutU64(1ull << 60);        // rows: absurd
    w.PutDouble(1.0);            // one lonely coordinate
    const std::vector<uint8_t> payload = w.Take();
    EXPECT_FALSE(DecodeDensityRequest(payload).ok());
  }
  // A double array announcing 2^40 entries.
  {
    WireWriter w;
    w.PutU64(1ull << 40);
    const std::vector<uint8_t> payload = w.Take();
    EXPECT_FALSE(DecodeDensityResponse(payload).ok());
  }
}

TEST(WireNegativeTest, FrameHeaderWithAbsurdPayloadLengthIsRejected) {
  // Hand-build a frame header declaring a payload beyond kMaxPayloadBytes;
  // DecodeFrame must reject it instead of waiting for a gigabyte.
  std::vector<uint8_t> valid =
      EncodeFrame(MessageType::kStatsRequest, {});
  ASSERT_GE(valid.size(), 16u);
  std::vector<uint8_t> bloated = valid;
  const uint64_t absurd = kMaxPayloadBytes + 1;
  std::memcpy(bloated.data() + 12, &absurd, 4);  // low 32 bits of length
  size_t consumed = 0;
  EXPECT_FALSE(
      DecodeFrame(bloated.data(), bloated.size(), &consumed).ok());
}

TEST(WireNegativeTest, GarbageFrameBytesNeverCrash) {
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes(
        static_cast<size_t>(rng.NextBounded(128)));
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.NextBounded(256));
    }
    size_t consumed = 0;
    auto frame = DecodeFrame(bytes.data(), bytes.size(), &consumed);
    if (frame.ok()) {
      EXPECT_LE(consumed, bytes.size());
    }
  }
}

}  // namespace
}  // namespace dbs
