// Property sweeps for the KDE across kernel types, bandwidth rules, and
// dimensionalities, plus the leave-one-out evaluation contract shared by
// all three estimator backends.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "density/dual_tree_kde.h"
#include "density/grid_density.h"
#include "density/histogram_density.h"
#include "density/kde.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dbs::density {
namespace {

using data::PointSet;
using data::PointView;

PointSet UniformCube(int64_t n, int dim, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextDouble();
    ps.Append(buf);
  }
  return ps;
}

class KdeSweepTest
    : public ::testing::TestWithParam<
          std::tuple<KernelType, BandwidthRule, int>> {};

TEST_P(KdeSweepTest, DensityIsNonNegativeEverywhere) {
  auto [kernel, rule, dim] = GetParam();
  PointSet ps = UniformCube(3000, dim, 7);
  KdeOptions opts;
  opts.kernel = kernel;
  opts.bandwidth_rule = rule;
  opts.num_kernels = 200;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  Rng rng(11);
  std::vector<double> q(dim);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < dim; ++j) q[j] = rng.NextDouble(-0.5, 1.5);
    EXPECT_GE(kde->Evaluate(PointView(q.data(), dim)), 0.0);
  }
}

TEST_P(KdeSweepTest, InteriorDensityApproximatesN) {
  auto [kernel, rule, dim] = GetParam();
  const int64_t n = 20000;
  PointSet ps = UniformCube(n, dim, 13);
  KdeOptions opts;
  opts.kernel = kernel;
  opts.bandwidth_rule = rule;
  opts.num_kernels = 500;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  // Mean density over interior probes ~ n (the uniform cube's density).
  Rng rng(17);
  std::vector<double> q(dim);
  double sum = 0;
  const int probes = 500;
  for (int i = 0; i < probes; ++i) {
    for (int j = 0; j < dim; ++j) q[j] = rng.NextDouble(0.3, 0.7);
    sum += kde->Evaluate(PointView(q.data(), dim));
  }
  EXPECT_NEAR(sum / probes, static_cast<double>(n), 0.25 * n);
}

TEST_P(KdeSweepTest, IndexMatchesBrute) {
  auto [kernel, rule, dim] = GetParam();
  PointSet ps = UniformCube(2000, dim, 19);
  KdeOptions opts;
  opts.kernel = kernel;
  opts.bandwidth_rule = rule;
  opts.num_kernels = 150;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  Rng rng(23);
  std::vector<double> q(dim);
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < dim; ++j) q[j] = rng.NextDouble();
    PointView p(q.data(), dim);
    double a = kde->Evaluate(p);
    double b = kde->EvaluateBrute(p);
    EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(b)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdeSweepTest,
    ::testing::Combine(
        ::testing::Values(KernelType::kEpanechnikov, KernelType::kQuartic,
                          KernelType::kTriangular, KernelType::kUniform,
                          KernelType::kGaussian),
        ::testing::Values(BandwidthRule::kScott, BandwidthRule::kSilverman),
        ::testing::Values(1, 2, 4)),
    [](const auto& param_info) {
      std::string name = KernelTypeName(std::get<0>(param_info.param));
      name += std::get<1>(param_info.param) == BandwidthRule::kScott
                  ? "_scott_"
                  : "_silverman_";
      name += std::to_string(std::get<2>(param_info.param)) + "d";
      return name;
    });

TEST(LeaveOneOutTest, KdeExcludesCoincidentCenterOnly) {
  // Build a KDE where every point is a center; evaluating at a data point
  // with itself excluded must drop exactly that center's contribution.
  PointSet ps(1, {0.0, 0.5, 1.0, 0.5001});
  KdeOptions opts;
  opts.num_kernels = 10;  // all 4 points become centers
  opts.bandwidth_rule = BandwidthRule::kFixed;
  opts.fixed_bandwidth = 0.05;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  double at_half = kde->Evaluate(ps[1]);
  double excl = kde->EvaluateExcluding(ps[1], ps[1]);
  // The self-kernel peak: (n/m) * K(0)/h = 1 * 0.75/0.05 = 15.
  EXPECT_NEAR(at_half - excl, 15.0, 1e-9);
  // Excluding a far-away point changes nothing.
  EXPECT_DOUBLE_EQ(kde->EvaluateExcluding(ps[1], ps[0]), at_half);
  // The near-duplicate at 0.5001 still contributes to both.
  EXPECT_GT(excl, 0.0);
}

TEST(LeaveOneOutTest, DefaultEstimatorInterfaceIsANoop) {
  // A backend without an override must return Evaluate unchanged.
  class Flat final : public DensityEstimator {
   public:
    int dim() const override { return 1; }
    double Evaluate(data::PointView) const override { return 42.0; }
    int64_t total_mass() const override { return 1; }
  };
  Flat flat;
  PointSet ps(1, {0.3});
  EXPECT_EQ(flat.EvaluateExcluding(ps[0], ps[0]), 42.0);
}

TEST(LeaveOneOutTest, HistogramDropsOneCount) {
  PointSet ps(1, {0.15, 0.16, 0.85});
  HistogramDensityOptions opts;
  opts.cells_per_dim = 10;
  opts.bounds = data::BoundingBox({0.0}, {1.0});
  auto hd = HistogramDensity::Fit(ps, opts);
  ASSERT_TRUE(hd.ok());
  // Cell of 0.15 holds two points; excluding self leaves one.
  EXPECT_DOUBLE_EQ(hd->Evaluate(ps[0]), 20.0);
  EXPECT_DOUBLE_EQ(hd->EvaluateExcluding(ps[0], ps[0]), 10.0);
  // Excluding a point from another cell changes nothing.
  EXPECT_DOUBLE_EQ(hd->EvaluateExcluding(ps[0], ps[2]), 20.0);
  // Cell with one point drops to zero.
  EXPECT_DOUBLE_EQ(hd->EvaluateExcluding(ps[2], ps[2]), 0.0);
}

TEST(LeaveOneOutTest, GridDropsOneCount) {
  PointSet ps = UniformCube(2000, 2, 29);
  GridDensityOptions opts;
  opts.cells_per_dim = 16;
  auto gd = GridDensity::Fit(ps, opts);
  ASSERT_TRUE(gd.ok());
  for (int64_t i = 0; i < 50; ++i) {
    double with = gd->Evaluate(ps[i]);
    double without = gd->EvaluateExcluding(ps[i], ps[i]);
    EXPECT_NEAR(with - without, 1.0 / gd->cell_volume(), 1e-9);
  }
}

TEST(KdeSeedSweepTest, CenterSamplingIsUnbiasedAcrossSeeds) {
  // Mean density at a fixed interior probe, averaged over center-sampling
  // seeds, converges to the true density of uniform data (~n).
  const int64_t n = 20000;
  PointSet ps = UniformCube(n, 2, 31);
  double q[2] = {0.5, 0.5};
  OnlineMoments means;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    KdeOptions opts;
    opts.num_kernels = 150;
    opts.seed = seed;
    auto kde = Kde::Fit(ps, opts);
    ASSERT_TRUE(kde.ok());
    means.Add(kde->Evaluate(PointView(q, 2)));
  }
  EXPECT_NEAR(means.mean(), static_cast<double>(n), 0.1 * n);
}

// Structural invariants of the dual-tree evaluator's kd-tree, checked via
// the test-only introspection hooks (DualTreeKde::NodeView): the leaf-item
// array is a permutation of [0, m), leaves partition it into disjoint
// ascending runs, every interior node's children exactly partition its
// range, and every node's box contains all the centers in its subtree.
TEST(DualTreeStructureTest, TreeInvariantsHoldAcrossShapes) {
  struct Shape {
    int dim;
    int64_t kernels;
    int leaf_size;
  };
  const Shape kShapes[] = {{1, 37, 4}, {2, 200, 1}, {3, 500, 32},
                           {4, 64, 64}, {2, 1, 8}};
  for (const Shape& shape : kShapes) {
    PointSet ps = UniformCube(std::max<int64_t>(shape.kernels * 3, 200),
                              shape.dim, 17 + shape.dim);
    KdeOptions opts;
    opts.num_kernels = shape.kernels;
    opts.use_grid_index = false;
    opts.seed = 23;
    auto kde = Kde::Fit(ps, opts);
    ASSERT_TRUE(kde.ok());
    DualTreeKdeOptions tree_opts;
    tree_opts.leaf_size = shape.leaf_size;
    auto tree = DualTreeKde::Build(*kde, tree_opts);
    ASSERT_TRUE(tree.ok());

    const int64_t m = tree->num_kernels();
    const std::vector<int32_t>& items = tree->leaf_items();
    ASSERT_EQ(static_cast<int64_t>(items.size()), m);

    // The item array is a permutation: every kernel appears exactly once.
    std::vector<int> seen(static_cast<size_t>(m), 0);
    for (int32_t item : items) {
      ASSERT_GE(item, 0);
      ASSERT_LT(item, m);
      ++seen[static_cast<size_t>(item)];
    }
    for (int64_t i = 0; i < m; ++i) ASSERT_EQ(seen[static_cast<size_t>(i)], 1);

    const int32_t root = tree->root();
    ASSERT_GE(root, 0);
    {
      DualTreeKde::NodeView root_view = tree->node(root);
      ASSERT_EQ(root_view.begin, 0);
      ASSERT_EQ(static_cast<int64_t>(root_view.end), m);
    }

    // Walk the whole tree: child ranges partition the parent, leaf runs
    // are ascending and at most leaf_size long (unless degenerate), and
    // each node's box contains its members.
    int64_t leaf_members = 0;
    std::vector<int32_t> stack = {root};
    while (!stack.empty()) {
      const int32_t id = stack.back();
      stack.pop_back();
      DualTreeKde::NodeView node = tree->node(id);
      ASSERT_LT(node.begin, node.end);
      for (int32_t t = node.begin; t < node.end; ++t) {
        data::PointView c = tree->centers()[items[static_cast<size_t>(t)]];
        for (int j = 0; j < shape.dim; ++j) {
          ASSERT_GE(c[j], node.lo[j]) << "node " << id;
          ASSERT_LE(c[j], node.hi[j]) << "node " << id;
        }
      }
      if (node.is_leaf) {
        ASSERT_LE(node.end - node.begin, shape.leaf_size);
        for (int32_t t = node.begin + 1; t < node.end; ++t) {
          ASSERT_LT(items[static_cast<size_t>(t - 1)],
                    items[static_cast<size_t>(t)]);
        }
        leaf_members += node.end - node.begin;
        continue;
      }
      DualTreeKde::NodeView left = tree->node(node.left);
      DualTreeKde::NodeView right = tree->node(node.right);
      ASSERT_EQ(left.begin, node.begin);
      ASSERT_EQ(left.end, right.begin);
      ASSERT_EQ(right.end, node.end);
      // Child boxes nest inside the parent box.
      for (int j = 0; j < shape.dim; ++j) {
        ASSERT_GE(left.lo[j], node.lo[j]);
        ASSERT_LE(left.hi[j], node.hi[j]);
        ASSERT_GE(right.lo[j], node.lo[j]);
        ASSERT_LE(right.hi[j], node.hi[j]);
      }
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
    // The leaves together cover every kernel exactly once.
    ASSERT_EQ(leaf_members, m);
  }
}

}  // namespace
}  // namespace dbs::density
