// Property sweeps for the KDE across kernel types, bandwidth rules, and
// dimensionalities, plus the leave-one-out evaluation contract shared by
// all three estimator backends.

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "density/grid_density.h"
#include "density/histogram_density.h"
#include "density/kde.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dbs::density {
namespace {

using data::PointSet;
using data::PointView;

PointSet UniformCube(int64_t n, int dim, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextDouble();
    ps.Append(buf);
  }
  return ps;
}

class KdeSweepTest
    : public ::testing::TestWithParam<
          std::tuple<KernelType, BandwidthRule, int>> {};

TEST_P(KdeSweepTest, DensityIsNonNegativeEverywhere) {
  auto [kernel, rule, dim] = GetParam();
  PointSet ps = UniformCube(3000, dim, 7);
  KdeOptions opts;
  opts.kernel = kernel;
  opts.bandwidth_rule = rule;
  opts.num_kernels = 200;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  Rng rng(11);
  std::vector<double> q(dim);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < dim; ++j) q[j] = rng.NextDouble(-0.5, 1.5);
    EXPECT_GE(kde->Evaluate(PointView(q.data(), dim)), 0.0);
  }
}

TEST_P(KdeSweepTest, InteriorDensityApproximatesN) {
  auto [kernel, rule, dim] = GetParam();
  const int64_t n = 20000;
  PointSet ps = UniformCube(n, dim, 13);
  KdeOptions opts;
  opts.kernel = kernel;
  opts.bandwidth_rule = rule;
  opts.num_kernels = 500;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  // Mean density over interior probes ~ n (the uniform cube's density).
  Rng rng(17);
  std::vector<double> q(dim);
  double sum = 0;
  const int probes = 500;
  for (int i = 0; i < probes; ++i) {
    for (int j = 0; j < dim; ++j) q[j] = rng.NextDouble(0.3, 0.7);
    sum += kde->Evaluate(PointView(q.data(), dim));
  }
  EXPECT_NEAR(sum / probes, static_cast<double>(n), 0.25 * n);
}

TEST_P(KdeSweepTest, IndexMatchesBrute) {
  auto [kernel, rule, dim] = GetParam();
  PointSet ps = UniformCube(2000, dim, 19);
  KdeOptions opts;
  opts.kernel = kernel;
  opts.bandwidth_rule = rule;
  opts.num_kernels = 150;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  Rng rng(23);
  std::vector<double> q(dim);
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < dim; ++j) q[j] = rng.NextDouble();
    PointView p(q.data(), dim);
    double a = kde->Evaluate(p);
    double b = kde->EvaluateBrute(p);
    EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(b)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdeSweepTest,
    ::testing::Combine(
        ::testing::Values(KernelType::kEpanechnikov, KernelType::kQuartic,
                          KernelType::kTriangular, KernelType::kUniform,
                          KernelType::kGaussian),
        ::testing::Values(BandwidthRule::kScott, BandwidthRule::kSilverman),
        ::testing::Values(1, 2, 4)),
    [](const auto& param_info) {
      std::string name = KernelTypeName(std::get<0>(param_info.param));
      name += std::get<1>(param_info.param) == BandwidthRule::kScott
                  ? "_scott_"
                  : "_silverman_";
      name += std::to_string(std::get<2>(param_info.param)) + "d";
      return name;
    });

TEST(LeaveOneOutTest, KdeExcludesCoincidentCenterOnly) {
  // Build a KDE where every point is a center; evaluating at a data point
  // with itself excluded must drop exactly that center's contribution.
  PointSet ps(1, {0.0, 0.5, 1.0, 0.5001});
  KdeOptions opts;
  opts.num_kernels = 10;  // all 4 points become centers
  opts.bandwidth_rule = BandwidthRule::kFixed;
  opts.fixed_bandwidth = 0.05;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  double at_half = kde->Evaluate(ps[1]);
  double excl = kde->EvaluateExcluding(ps[1], ps[1]);
  // The self-kernel peak: (n/m) * K(0)/h = 1 * 0.75/0.05 = 15.
  EXPECT_NEAR(at_half - excl, 15.0, 1e-9);
  // Excluding a far-away point changes nothing.
  EXPECT_DOUBLE_EQ(kde->EvaluateExcluding(ps[1], ps[0]), at_half);
  // The near-duplicate at 0.5001 still contributes to both.
  EXPECT_GT(excl, 0.0);
}

TEST(LeaveOneOutTest, DefaultEstimatorInterfaceIsANoop) {
  // A backend without an override must return Evaluate unchanged.
  class Flat final : public DensityEstimator {
   public:
    int dim() const override { return 1; }
    double Evaluate(data::PointView) const override { return 42.0; }
    int64_t total_mass() const override { return 1; }
  };
  Flat flat;
  PointSet ps(1, {0.3});
  EXPECT_EQ(flat.EvaluateExcluding(ps[0], ps[0]), 42.0);
}

TEST(LeaveOneOutTest, HistogramDropsOneCount) {
  PointSet ps(1, {0.15, 0.16, 0.85});
  HistogramDensityOptions opts;
  opts.cells_per_dim = 10;
  opts.bounds = data::BoundingBox({0.0}, {1.0});
  auto hd = HistogramDensity::Fit(ps, opts);
  ASSERT_TRUE(hd.ok());
  // Cell of 0.15 holds two points; excluding self leaves one.
  EXPECT_DOUBLE_EQ(hd->Evaluate(ps[0]), 20.0);
  EXPECT_DOUBLE_EQ(hd->EvaluateExcluding(ps[0], ps[0]), 10.0);
  // Excluding a point from another cell changes nothing.
  EXPECT_DOUBLE_EQ(hd->EvaluateExcluding(ps[0], ps[2]), 20.0);
  // Cell with one point drops to zero.
  EXPECT_DOUBLE_EQ(hd->EvaluateExcluding(ps[2], ps[2]), 0.0);
}

TEST(LeaveOneOutTest, GridDropsOneCount) {
  PointSet ps = UniformCube(2000, 2, 29);
  GridDensityOptions opts;
  opts.cells_per_dim = 16;
  auto gd = GridDensity::Fit(ps, opts);
  ASSERT_TRUE(gd.ok());
  for (int64_t i = 0; i < 50; ++i) {
    double with = gd->Evaluate(ps[i]);
    double without = gd->EvaluateExcluding(ps[i], ps[i]);
    EXPECT_NEAR(with - without, 1.0 / gd->cell_volume(), 1e-9);
  }
}

TEST(KdeSeedSweepTest, CenterSamplingIsUnbiasedAcrossSeeds) {
  // Mean density at a fixed interior probe, averaged over center-sampling
  // seeds, converges to the true density of uniform data (~n).
  const int64_t n = 20000;
  PointSet ps = UniformCube(n, 2, 31);
  double q[2] = {0.5, 0.5};
  OnlineMoments means;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    KdeOptions opts;
    opts.num_kernels = 150;
    opts.seed = seed;
    auto kde = Kde::Fit(ps, opts);
    ASSERT_TRUE(kde.ok());
    means.Add(kde->Evaluate(PointView(q, 2)));
  }
  EXPECT_NEAR(means.mean(), static_cast<double>(n), 0.1 * n);
}

}  // namespace
}  // namespace dbs::density
