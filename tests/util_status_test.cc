#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace dbs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad a");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad a");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad a");

  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

[[nodiscard]] Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

[[nodiscard]] Status Chained(int x) {
  DBS_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

[[nodiscard]] Result<int> MakeValue(bool fail) {
  if (fail) return Status::Internal("boom");
  return 10;
}

[[nodiscard]] Result<int> UsesAssignOrReturn(bool fail) {
  DBS_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  return v + 1;
}

TEST(StatusMacrosTest, AssignOrReturn) {
  Result<int> ok = UsesAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);

  Result<int> err = UsesAssignOrReturn(true);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace dbs
