#include "classify/decision_tree.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::classify {
namespace {

using data::PointSet;
using data::PointView;

TEST(DecisionTreeTest, RejectsBadArguments) {
  PointSet ps(1, {0.0, 1.0});
  std::vector<int32_t> labels{0, 1};
  DecisionTreeOptions opts;
  EXPECT_FALSE(DecisionTree::Train(PointSet(1), {}, {}, opts).ok());
  EXPECT_FALSE(DecisionTree::Train(ps, {0}, {}, opts).ok());
  EXPECT_FALSE(DecisionTree::Train(ps, {0, -1}, {}, opts).ok());
  EXPECT_FALSE(DecisionTree::Train(ps, labels, {1.0}, opts).ok());
  EXPECT_FALSE(DecisionTree::Train(ps, labels, {1.0, 0.0}, opts).ok());
  DecisionTreeOptions bad_depth;
  bad_depth.max_depth = 0;
  EXPECT_FALSE(DecisionTree::Train(ps, labels, {}, bad_depth).ok());
}

TEST(DecisionTreeTest, SingleClassIsOneLeaf) {
  PointSet ps(2, {0.1, 0.1, 0.5, 0.5, 0.9, 0.9});
  std::vector<int32_t> labels{2, 2, 2};
  auto tree = DecisionTree::Train(ps, labels, {}, DecisionTreeOptions{});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1);
  EXPECT_EQ(tree->num_classes(), 3);
  double q[2] = {0.7, 0.2};
  EXPECT_EQ(tree->Predict(PointView(q, 2)), 2);
}

TEST(DecisionTreeTest, LearnsAxisAlignedBoundary) {
  // Class = x > 0.5; the tree finds the threshold exactly.
  Rng rng(1);
  PointSet ps(1);
  std::vector<int32_t> labels;
  for (int i = 0; i < 400; ++i) {
    double x = rng.NextDouble();
    ps.Append(&x);
    labels.push_back(x > 0.5 ? 1 : 0);
  }
  auto tree = DecisionTree::Train(ps, labels, {}, DecisionTreeOptions{});
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(tree->Accuracy(ps, labels), 1.0);
  // Shallow: one split suffices.
  EXPECT_LE(tree->depth(), 2);
}

TEST(DecisionTreeTest, LearnsXorWithDepthTwo) {
  // XOR of two thresholds needs depth >= 2 and is impossible at depth 1.
  Rng rng(2);
  PointSet ps(2);
  std::vector<int32_t> labels;
  for (int i = 0; i < 800; ++i) {
    double x = rng.NextDouble();
    double y = rng.NextDouble();
    ps.Append(std::vector<double>{x, y});
    labels.push_back((x > 0.5) != (y > 0.5) ? 1 : 0);
  }
  DecisionTreeOptions shallow;
  shallow.max_depth = 1;
  auto stump = DecisionTree::Train(ps, labels, {}, shallow);
  ASSERT_TRUE(stump.ok());
  EXPECT_LT(stump->Accuracy(ps, labels), 0.7);

  DecisionTreeOptions deep;
  deep.max_depth = 4;
  auto tree = DecisionTree::Train(ps, labels, {}, deep);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree->Accuracy(ps, labels), 0.98);
}

TEST(DecisionTreeTest, GeneralizesToHeldOutData) {
  Rng rng(3);
  auto make = [&](int64_t n, PointSet& ps, std::vector<int32_t>& labels) {
    for (int64_t i = 0; i < n; ++i) {
      double x = rng.NextDouble();
      double y = rng.NextDouble();
      ps.Append(std::vector<double>{x, y});
      labels.push_back(y > 0.3 + 0.4 * x ? 1 : 0);
    }
  };
  PointSet train(2);
  std::vector<int32_t> train_labels;
  make(2000, train, train_labels);
  PointSet test(2);
  std::vector<int32_t> test_labels;
  make(1000, test, test_labels);
  auto tree = DecisionTree::Train(train, train_labels, {},
                                  DecisionTreeOptions{});
  ASSERT_TRUE(tree.ok());
  // A diagonal boundary needs a staircase of axis splits; still > 95%.
  EXPECT_GT(tree->Accuracy(test, test_labels), 0.95);
}

TEST(DecisionTreeTest, WeightsShiftTheMajority) {
  // Two overlapping labels on the same region; weights decide the leaf.
  PointSet ps(1, {0.4, 0.6});
  std::vector<int32_t> labels{0, 1};
  DecisionTreeOptions opts;
  opts.max_depth = 1;
  opts.min_leaf_weight = 100.0;  // force a single leaf
  auto heavy_zero = DecisionTree::Train(ps, labels, {10.0, 1.0}, opts);
  ASSERT_TRUE(heavy_zero.ok());
  double q = 0.5;
  EXPECT_EQ(heavy_zero->Predict(PointView(&q, 1)), 0);
  auto heavy_one = DecisionTree::Train(ps, labels, {1.0, 10.0}, opts);
  ASSERT_TRUE(heavy_one.ok());
  EXPECT_EQ(heavy_one->Predict(PointView(&q, 1)), 1);
}

TEST(DecisionTreeTest, MinLeafWeightPrunesSplits) {
  // 80 negatives on a left grid, 20 positives clustered far right. A leaf
  // minimum of 30 forbids the clean 80/20 cut; the best LEGAL split is
  // 70/30, whose right leaf mixes 10 negatives under the positive
  // majority and cannot split further (30 < 2 * 30). The tree is then
  // exactly one split with accuracy 90%.
  PointSet ps(1);
  std::vector<int32_t> labels;
  for (int i = 0; i < 80; ++i) {
    double x = 0.005 * i;  // [0, 0.4)
    ps.Append(&x);
    labels.push_back(0);
  }
  for (int i = 0; i < 20; ++i) {
    double x = 0.9 + 0.004 * i;
    ps.Append(&x);
    labels.push_back(1);
  }
  DecisionTreeOptions strict;
  strict.min_leaf_weight = 30.0;
  auto tree = DecisionTree::Train(ps, labels, {}, strict);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 3);
  EXPECT_DOUBLE_EQ(tree->Accuracy(ps, labels), 0.9);
  // The default minimum isolates the positives perfectly.
  auto loose = DecisionTree::Train(ps, labels, {}, DecisionTreeOptions{});
  ASSERT_TRUE(loose.ok());
  double q = 0.95;
  EXPECT_EQ(loose->Predict(PointView(&q, 1)), 1);
  EXPECT_DOUBLE_EQ(loose->Accuracy(ps, labels), 1.0);
}

TEST(DecisionTreeTest, PerClassRecallSeparatesMajorityAndMinority) {
  Rng rng(7);
  PointSet ps(2);
  std::vector<int32_t> labels;
  // Majority class covers the domain; minority in a small corner.
  for (int i = 0; i < 900; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
    labels.push_back(0);
  }
  for (int i = 0; i < 100; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.9, 1.0),
                                  rng.NextDouble(0.9, 1.0)});
    labels.push_back(1);
  }
  auto tree = DecisionTree::Train(ps, labels, {}, DecisionTreeOptions{});
  ASSERT_TRUE(tree.ok());
  std::vector<double> recall = tree->PerClassRecall(ps, labels, 2);
  ASSERT_EQ(recall.size(), 2u);
  EXPECT_GT(recall[0], 0.95);
  EXPECT_GT(recall[1], 0.8);
}

TEST(DecisionTreeTest, DuplicateFeatureValuesNeverSplitBetweenThem) {
  // All x identical: no valid split, single leaf with majority label.
  PointSet ps(1, {0.5, 0.5, 0.5, 0.5});
  std::vector<int32_t> labels{0, 1, 1, 1};
  auto tree = DecisionTree::Train(ps, labels, {}, DecisionTreeOptions{});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1);
  double q = 0.5;
  EXPECT_EQ(tree->Predict(PointView(&q, 1)), 1);
}

}  // namespace
}  // namespace dbs::classify
