// Equivalence and degenerate-input coverage for DetectOutliersCellList.
//
// The cell-list detector's contract is byte-identity with the kd-tree
// detector (and through it the nested loop) for every metric, dimension and
// worker count — including inputs decided wholesale by the dense/sparse
// cell rules and inputs that take the kd-tree fallback. Tests compare full
// reports, never just outlier sets.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "outlier/cell_list.h"
#include "outlier/exact_detector.h"
#include "parallel/batch_executor.h"
#include "util/rng.h"

namespace dbs::outlier {
namespace {

using data::Metric;
using data::PointSet;

constexpr Metric kMetrics[] = {Metric::kL2, Metric::kL1, Metric::kLinf};

// A tight cloud (exercises the dense rule), a uniform background and a few
// isolated far points (exercise the sparse rule), in any dimension.
PointSet MixedWorkload(int dim, int64_t n_cloud, int64_t n_background,
                       int n_far, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int64_t i = 0; i < n_cloud; ++i) {
    for (int j = 0; j < dim; ++j) x[static_cast<size_t>(j)] = rng.NextDouble(0.45, 0.55);
    ps.Append(x);
  }
  for (int64_t i = 0; i < n_background; ++i) {
    for (int j = 0; j < dim; ++j) x[static_cast<size_t>(j)] = rng.NextDouble(0.0, 1.0);
    ps.Append(x);
  }
  for (int i = 0; i < n_far; ++i) {
    for (int j = 0; j < dim; ++j) x[static_cast<size_t>(j)] = 0.5;
    // Spread the far points along alternating axes so they are isolated
    // from the unit cube and from each other, while keeping the bounding
    // box small enough that even the 5-D grid stays under the cell cap.
    x[static_cast<size_t>(i % dim)] = (i % 2 == 0 ? 2.2 : -1.4) + 0.05 * i;
    ps.Append(x);
  }
  return ps;
}

void ExpectSameReport(const OutlierReport& got, const OutlierReport& want) {
  EXPECT_EQ(got.outlier_indices, want.outlier_indices);
  EXPECT_EQ(got.neighbor_counts, want.neighbor_counts);
  EXPECT_EQ(got.candidates_checked, want.candidates_checked);
  EXPECT_EQ(got.passes, want.passes);
}

TEST(CellListTest, EquivalenceMatrixAcrossMetricsDimsAndWorkers) {
  for (int dim : {1, 2, 3, 5}) {
    PointSet ps = MixedWorkload(dim, 400, 300, 6, 17u + static_cast<uint64_t>(dim));
    for (Metric metric : kMetrics) {
      DbOutlierParams params;
      params.radius = 0.15;
      params.max_neighbors = 5;
      params.metric = metric;
      auto kd = DetectOutliersExact(ps, params);
      auto nested = DetectOutliersNestedLoop(ps, params);
      ASSERT_TRUE(kd.ok());
      ASSERT_TRUE(nested.ok());
      ExpectSameReport(*nested, *kd);
      for (int workers : {0, 1, 4}) {
        SCOPED_TRACE(testing::Message() << "dim=" << dim << " metric="
                                        << static_cast<int>(metric)
                                        << " workers=" << workers);
        CellListDetectorOptions options;
        CellListStats stats;
        options.stats = &stats;
        parallel::BatchExecutorOptions pool_opts;
        pool_opts.num_workers = workers;
        pool_opts.min_shard = 8;  // force real sharding over occupied cells
        parallel::BatchExecutor pool(pool_opts);
        if (workers > 0) options.executor = &pool;
        auto cell = DetectOutliersCellList(ps, params, options);
        ASSERT_TRUE(cell.ok());
        ExpectSameReport(*cell, *kd);
        EXPECT_FALSE(stats.used_fallback);
        EXPECT_GT(stats.occupied_cells, 0);
      }
    }
  }
}

TEST(CellListTest, PruneStatsAreWorkerCountInvariant) {
  PointSet ps = MixedWorkload(2, 3000, 500, 8, 23);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  CellListStats sequential;
  CellListDetectorOptions options;
  options.stats = &sequential;
  ASSERT_TRUE(DetectOutliersCellList(ps, params, options).ok());
  // The tight cloud packs whole cells past p+2 and the far points sit in
  // near-empty neighborhoods, so both rules fire on this workload.
  EXPECT_GT(sequential.cells_dense_pruned, 0);
  EXPECT_GT(sequential.cells_sparse_pruned, 0);
  EXPECT_GT(sequential.pairwise_evaluated, 0);
  for (int workers : {1, 4}) {
    SCOPED_TRACE(workers);
    parallel::BatchExecutorOptions pool_opts;
    pool_opts.num_workers = workers;
    pool_opts.min_shard = 8;
    parallel::BatchExecutor pool(pool_opts);
    CellListStats stats;
    CellListDetectorOptions sharded;
    sharded.executor = &pool;
    sharded.stats = &stats;
    ASSERT_TRUE(DetectOutliersCellList(ps, params, sharded).ok());
    EXPECT_EQ(stats.grid_cells, sequential.grid_cells);
    EXPECT_EQ(stats.occupied_cells, sequential.occupied_cells);
    EXPECT_EQ(stats.cells_dense_pruned, sequential.cells_dense_pruned);
    EXPECT_EQ(stats.cells_sparse_pruned, sequential.cells_sparse_pruned);
    EXPECT_EQ(stats.pairwise_evaluated, sequential.pairwise_evaluated);
  }
}

TEST(CellListTest, BoundaryDistancesOnPowerOfTwoLattice) {
  // Lattice spacing equal to the radius, both powers of two: axis-neighbor
  // distances are EXACTLY the radius in floating point under all three
  // metrics, so any divergence in comparison expressions between the
  // detectors would flip these boundary pairs.
  PointSet ps(2);
  for (int a = 0; a < 12; ++a) {
    for (int b = 0; b < 12; ++b) {
      ps.Append(std::vector<double>{a * 0.125, b * 0.125});
    }
  }
  for (Metric metric : kMetrics) {
    SCOPED_TRACE(static_cast<int>(metric));
    DbOutlierParams params;
    params.radius = 0.125;
    params.max_neighbors = 3;  // interior points have 4 axis neighbors (L2)
    params.metric = metric;
    auto kd = DetectOutliersExact(ps, params);
    auto nested = DetectOutliersNestedLoop(ps, params);
    auto cell = DetectOutliersCellList(ps, params);
    ASSERT_TRUE(kd.ok());
    ASSERT_TRUE(nested.ok());
    ASSERT_TRUE(cell.ok());
    ExpectSameReport(*cell, *kd);
    ExpectSameReport(*nested, *kd);
  }
}

TEST(CellListTest, RadiusZeroTakesKdTreeFallback) {
  PointSet ps(2, {0.0, 0.0, 0.0, 0.0, 1.0, 1.0});
  DbOutlierParams params;
  params.radius = 0.0;
  params.max_neighbors = 0;
  CellListStats stats;
  CellListDetectorOptions options;
  options.stats = &stats;
  auto cell = DetectOutliersCellList(ps, params, options);
  auto kd = DetectOutliersExact(ps, params);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(kd.ok());
  ExpectSameReport(*cell, *kd);
  EXPECT_TRUE(stats.used_fallback);
  // The two coincident points neighbor each other at distance 0.
  EXPECT_EQ(cell->outlier_indices, (std::vector<int64_t>{2}));
}

TEST(CellListTest, AllIdenticalPointsDensePruneWholesale) {
  PointSet ps(3);
  for (int i = 0; i < 50; ++i) {
    ps.Append(std::vector<double>{0.3, 0.3, 0.3});
  }
  for (Metric metric : kMetrics) {
    SCOPED_TRACE(static_cast<int>(metric));
    DbOutlierParams params;
    params.radius = 0.05;
    params.max_neighbors = 5;
    params.metric = metric;
    CellListStats stats;
    CellListDetectorOptions options;
    options.stats = &stats;
    auto cell = DetectOutliersCellList(ps, params, options);
    auto kd = DetectOutliersExact(ps, params);
    ASSERT_TRUE(cell.ok());
    ASSERT_TRUE(kd.ok());
    ExpectSameReport(*cell, *kd);
    EXPECT_TRUE(cell->outlier_indices.empty());
    // One occupied zero-extent cell with 50 >= p+2 residents: the dense
    // rule decides everything without a single distance evaluation.
    EXPECT_EQ(stats.occupied_cells, 1);
    EXPECT_EQ(stats.cells_dense_pruned, 1);
    EXPECT_EQ(stats.pairwise_evaluated, 0);
  }
}

TEST(CellListTest, AllIdenticalPointsSparseRuleStillReportsExactCounts) {
  PointSet ps(2);
  for (int i = 0; i < 50; ++i) {
    ps.Append(std::vector<double>{0.3, 0.3});
  }
  DbOutlierParams params;
  params.radius = 0.05;
  params.max_neighbors = 60;  // everyone is an outlier (49 <= 60 neighbors)
  CellListStats stats;
  CellListDetectorOptions options;
  options.stats = &stats;
  auto cell = DetectOutliersCellList(ps, params, options);
  auto kd = DetectOutliersExact(ps, params);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(kd.ok());
  ExpectSameReport(*cell, *kd);
  ASSERT_EQ(cell->outlier_indices.size(), 50u);
  for (int64_t count : cell->neighbor_counts) EXPECT_EQ(count, 49);
  EXPECT_EQ(stats.cells_sparse_pruned, 1);
  EXPECT_EQ(stats.cells_dense_pruned, 0);
}

TEST(CellListTest, SinglePoint) {
  PointSet ps(2, {0.7, -0.2});
  DbOutlierParams params;
  params.radius = 1.0;
  params.max_neighbors = 0;
  auto cell = DetectOutliersCellList(ps, params);
  auto kd = DetectOutliersExact(ps, params);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(kd.ok());
  ExpectSameReport(*cell, *kd);
  EXPECT_EQ(cell->outlier_indices, (std::vector<int64_t>{0}));
  EXPECT_EQ(cell->neighbor_counts, (std::vector<int64_t>{0}));
}

TEST(CellListTest, ExtremeAspectRatioBox) {
  // 2000:1 aspect ratio: many cells along x, one along y. The grid stays
  // small enough to build, and the report still matches the kd-tree's.
  dbs::Rng rng(31);
  PointSet ps(2);
  for (int i = 0; i < 800; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.0, 1000.0),
                                  rng.NextDouble(0.0, 0.5)});
  }
  DbOutlierParams params;
  params.radius = 2.0;
  params.max_neighbors = 3;
  CellListStats stats;
  CellListDetectorOptions options;
  options.stats = &stats;
  auto cell = DetectOutliersCellList(ps, params, options);
  auto kd = DetectOutliersExact(ps, params);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(kd.ok());
  ExpectSameReport(*cell, *kd);
  EXPECT_FALSE(stats.used_fallback);
  EXPECT_GT(stats.grid_cells, 400);
}

TEST(CellListTest, RadiusLargerThanBoundingBoxDensePrunes) {
  dbs::Rng rng(37);
  PointSet ps(2);
  for (int i = 0; i < 30; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.0, 0.1),
                                  rng.NextDouble(0.0, 0.1)});
  }
  for (Metric metric : kMetrics) {
    SCOPED_TRACE(static_cast<int>(metric));
    DbOutlierParams params;
    params.radius = 10.0;  // the whole dataset fits in one bin
    params.max_neighbors = 5;
    params.metric = metric;
    CellListStats stats;
    CellListDetectorOptions options;
    options.stats = &stats;
    auto cell = DetectOutliersCellList(ps, params, options);
    auto kd = DetectOutliersExact(ps, params);
    ASSERT_TRUE(cell.ok());
    ASSERT_TRUE(kd.ok());
    ExpectSameReport(*cell, *kd);
    EXPECT_TRUE(cell->outlier_indices.empty());
    EXPECT_EQ(stats.grid_cells, 1);
    EXPECT_EQ(stats.cells_dense_pruned, 1);
    EXPECT_EQ(stats.pairwise_evaluated, 0);
  }
}

TEST(CellListTest, HighDimensionTakesKdTreeFallback) {
  dbs::Rng rng(41);
  PointSet ps(7);  // above the default max_grid_dim of 6
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x(7);
    for (auto& v : x) v = rng.NextDouble();
    ps.Append(x);
  }
  DbOutlierParams params;
  params.radius = 0.5;
  params.max_neighbors = 5;
  CellListStats stats;
  CellListDetectorOptions options;
  options.stats = &stats;
  auto cell = DetectOutliersCellList(ps, params, options);
  auto kd = DetectOutliersExact(ps, params);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(kd.ok());
  ExpectSameReport(*cell, *kd);
  EXPECT_TRUE(stats.used_fallback);

  // Lowering the cap forces the same fallback in low dimension.
  PointSet ps3 = MixedWorkload(3, 100, 100, 2, 43);
  CellListStats stats3;
  CellListDetectorOptions low_cap;
  low_cap.max_grid_dim = 2;
  low_cap.stats = &stats3;
  auto cell3 = DetectOutliersCellList(ps3, params, low_cap);
  auto kd3 = DetectOutliersExact(ps3, params);
  ASSERT_TRUE(cell3.ok());
  ASSERT_TRUE(kd3.ok());
  ExpectSameReport(*cell3, *kd3);
  EXPECT_TRUE(stats3.used_fallback);
}

TEST(CellListTest, GridCellCapTakesKdTreeFallback) {
  dbs::Rng rng(47);
  PointSet ps(2);
  for (int i = 0; i < 500; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  DbOutlierParams params;
  params.radius = 0.01;  // would need a ~100x100 grid
  params.max_neighbors = 2;
  CellListStats stats;
  CellListDetectorOptions options;
  options.max_grid_cells = 64;
  options.stats = &stats;
  auto cell = DetectOutliersCellList(ps, params, options);
  auto kd = DetectOutliersExact(ps, params);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(kd.ok());
  ExpectSameReport(*cell, *kd);
  EXPECT_TRUE(stats.used_fallback);
}

TEST(CellListTest, RejectsBadArgsWithSameMessagesAsKdTree) {
  PointSet ps(2, {0.0, 0.0});
  DbOutlierParams bad_radius;
  bad_radius.radius = -1;
  auto cell = DetectOutliersCellList(ps, bad_radius);
  auto kd = DetectOutliersExact(ps, bad_radius);
  ASSERT_FALSE(cell.ok());
  ASSERT_FALSE(kd.ok());
  EXPECT_EQ(cell.status().ToString(), kd.status().ToString());

  DbOutlierParams bad_fraction;
  bad_fraction.max_neighbor_fraction = 1.5;
  EXPECT_FALSE(DetectOutliersCellList(ps, bad_fraction).ok());
  EXPECT_FALSE(DetectOutliersCellList(PointSet(2), DbOutlierParams{}).ok());

  DbOutlierParams params;
  CellListDetectorOptions bad_dim;
  bad_dim.max_grid_dim = 0;
  EXPECT_FALSE(DetectOutliersCellList(ps, params, bad_dim).ok());
  CellListDetectorOptions bad_cells;
  bad_cells.max_grid_cells = 0;
  EXPECT_FALSE(DetectOutliersCellList(ps, params, bad_cells).ok());
}

TEST(CellListTest, ShardedCountingPropagatesBackpressure) {
  PointSet ps = MixedWorkload(2, 2000, 200, 4, 53);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  parallel::BatchExecutorOptions pool_opts;
  pool_opts.num_workers = 1;
  pool_opts.min_shard = 1;
  parallel::BatchExecutor pool(pool_opts);
  pool.Shutdown();  // every submit now fails
  CellListDetectorOptions options;
  options.executor = &pool;
  auto report = DetectOutliersCellList(ps, params, options);
  EXPECT_FALSE(report.ok());
}

TEST(CellListTest, FractionalNeighborBound) {
  PointSet ps(1, {0.0, 0.01, 0.02, 0.03, 5.0});
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbor_fraction = 0.2;  // 20% of 5 points = 1 neighbor
  auto cell = DetectOutliersCellList(ps, params);
  auto kd = DetectOutliersExact(ps, params);
  ASSERT_TRUE(cell.ok());
  ASSERT_TRUE(kd.ok());
  ExpectSameReport(*cell, *kd);
  EXPECT_EQ(cell->outlier_indices, (std::vector<int64_t>{4}));
}

}  // namespace
}  // namespace dbs::outlier
