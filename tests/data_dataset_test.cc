#include "data/dataset.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::data {
namespace {

PointSet MakeRandomPoints(int64_t n, int dim, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(dim);
  ps.Reserve(n);
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextDouble(-10, 10);
    ps.Append(buf);
  }
  return ps;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(InMemoryScanTest, YieldsAllRowsAcrossBatches) {
  PointSet ps = MakeRandomPoints(1000, 3, 1);
  InMemoryScan scan(&ps, /*batch_rows=*/128);
  scan.Reset();
  ScanBatch batch;
  int64_t seen = 0;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      PointView p = batch.point(i, 3);
      for (int j = 0; j < 3; ++j) EXPECT_EQ(p[j], ps[seen][j]);
      ++seen;
    }
  }
  EXPECT_EQ(seen, 1000);
  EXPECT_EQ(scan.size(), 1000);
  EXPECT_EQ(scan.dim(), 3);
}

TEST(InMemoryScanTest, CountsPasses) {
  PointSet ps = MakeRandomPoints(10, 2, 2);
  InMemoryScan scan(&ps);
  EXPECT_EQ(scan.passes(), 0);
  ScanBatch batch;
  for (int pass = 1; pass <= 3; ++pass) {
    scan.Reset();
    EXPECT_EQ(scan.passes(), pass);
    int64_t rows = 0;
    while (scan.NextBatch(&batch)) rows += batch.count;
    EXPECT_EQ(rows, 10);
  }
}

TEST(InMemoryScanTest, EmptyDataset) {
  PointSet ps(2);
  InMemoryScan scan(&ps);
  scan.Reset();
  ScanBatch batch;
  EXPECT_FALSE(scan.NextBatch(&batch));
}

TEST(InMemoryScanTest, BatchLargerThanData) {
  PointSet ps = MakeRandomPoints(5, 2, 3);
  InMemoryScan scan(&ps, 1000);
  scan.Reset();
  ScanBatch batch;
  ASSERT_TRUE(scan.NextBatch(&batch));
  EXPECT_EQ(batch.count, 5);
  EXPECT_FALSE(scan.NextBatch(&batch));
}

TEST(ReadAllTest, RoundTrips) {
  PointSet ps = MakeRandomPoints(321, 4, 4);
  InMemoryScan scan(&ps, 64);
  auto result = ReadAll(scan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), ps.size());
  for (int64_t i = 0; i < ps.size(); ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ((*result)[i][j], ps[i][j]);
  }
}

TEST(DatasetIoTest, WriteReadRoundTrip) {
  PointSet ps = MakeRandomPoints(500, 3, 5);
  std::string path = TempPath("roundtrip.dbsf");
  ASSERT_TRUE(WriteDatasetFile(path, ps).ok());
  auto loaded = ReadDatasetFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 500);
  ASSERT_EQ(loaded->dim(), 3);
  for (int64_t i = 0; i < 500; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ((*loaded)[i][j], ps[i][j]);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyPointSetRoundTrips) {
  PointSet ps(2);
  std::string path = TempPath("empty.dbsf");
  ASSERT_TRUE(WriteDatasetFile(path, ps).ok());
  auto loaded = ReadDatasetFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0);
  EXPECT_EQ(loaded->dim(), 2);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsIoError) {
  auto result = ReadDatasetFile(TempPath("does_not_exist.dbsf"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbs::StatusCode::kIoError);
}

TEST(DatasetIoTest, GarbageFileIsRejected) {
  std::string path = TempPath("garbage.dbsf");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "this is definitely not a dbsf file, not even close";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto result = ReadDatasetFile(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(FileScanTest, StreamsInBatchesAndCountsPasses) {
  PointSet ps = MakeRandomPoints(1000, 2, 6);
  std::string path = TempPath("scan.dbsf");
  ASSERT_TRUE(WriteDatasetFile(path, ps).ok());
  auto scan_result = FileScan::Open(path, /*batch_rows=*/100);
  ASSERT_TRUE(scan_result.ok());
  FileScan& scan = **scan_result;
  EXPECT_EQ(scan.size(), 1000);
  EXPECT_EQ(scan.dim(), 2);

  for (int pass = 1; pass <= 2; ++pass) {
    scan.Reset();
    EXPECT_EQ(scan.passes(), pass);
    ScanBatch batch;
    int64_t seen = 0;
    while (scan.NextBatch(&batch)) {
      for (int64_t i = 0; i < batch.count; ++i) {
        PointView p = batch.point(i, 2);
        EXPECT_EQ(p[0], ps[seen][0]);
        EXPECT_EQ(p[1], ps[seen][1]);
        ++seen;
      }
    }
    EXPECT_EQ(seen, 1000);
  }
  std::remove(path.c_str());
}

TEST(FileScanTest, RejectsNonPositiveBatchRows) {
  auto result = FileScan::Open(TempPath("whatever.dbsf"), 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbs::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dbs::data
