// Wire codec: exact round-trips for every message, and loader-grade
// robustness against corrupted bytes (io_robustness_test pattern): any
// flipped or truncated input is either decoded into a structurally valid
// message or rejected with an error Status — never a crash, hang or
// unbounded allocation.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/wire.h"
#include "util/rng.h"

namespace dbs {
namespace {

using namespace dbs::serve;  // NOLINT: test-local brevity

data::PointSet MakePoints(uint64_t seed, int dim, int64_t n) {
  Rng rng(seed);
  data::PointSet points(dim);
  std::vector<double> row(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) row[j] = rng.NextGaussian();
    points.Append(row);
  }
  return points;
}

TEST(ServeWireTest, RegisterRequestRoundTrip) {
  RegisterRequest request{"metro-kde", "/models/metro.dbsk"};
  auto decoded = DecodeRegisterRequest(EncodeRegisterRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, request.name);
  EXPECT_EQ(decoded->path, request.path);
}

TEST(ServeWireTest, EvictRequestRoundTrip) {
  auto decoded = DecodeEvictRequest(EncodeEvictRequest({"gone"}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, "gone");
}

TEST(ServeWireTest, DensityRequestRoundTripIsBitwise) {
  DensityBatchRequest request;
  request.model = "m";
  request.points = MakePoints(3, 5, 211);
  auto decoded = DecodeDensityRequest(EncodeDensityRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->model, "m");
  EXPECT_EQ(decoded->points.dim(), 5);
  EXPECT_EQ(decoded->points.flat(), request.points.flat());
}

TEST(ServeWireTest, DensityResponseRoundTrip) {
  DensityBatchResponse response;
  response.densities = {0.0, 1.5, -3.25, 1e300, 5e-324};
  auto decoded = DecodeDensityResponse(EncodeDensityResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->densities, response.densities);
}

TEST(ServeWireTest, SampleRequestRoundTrip) {
  SampleRequest request;
  request.model = "m";
  request.a = -0.5;
  request.target_size = 1234;
  request.density_floor_fraction = 1e-4;
  request.seed = 0xdeadbeefULL;
  request.points = MakePoints(4, 2, 97);
  auto decoded = DecodeSampleRequest(EncodeSampleRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->model, "m");
  EXPECT_EQ(decoded->a, request.a);
  EXPECT_EQ(decoded->target_size, request.target_size);
  EXPECT_EQ(decoded->density_floor_fraction,
            request.density_floor_fraction);
  EXPECT_EQ(decoded->seed, request.seed);
  EXPECT_EQ(decoded->points.flat(), request.points.flat());
}

TEST(ServeWireTest, SampleResponseRoundTripAndLengthCheck) {
  SampleResponse response;
  response.points = MakePoints(5, 3, 17);
  response.inclusion_probs.assign(17, 0.25);
  response.densities.assign(17, 2.0);
  response.normalizer = 123.456;
  response.clamped_count = 3;
  auto decoded = DecodeSampleResponse(EncodeSampleResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->points.flat(), response.points.flat());
  EXPECT_EQ(decoded->inclusion_probs, response.inclusion_probs);
  EXPECT_EQ(decoded->normalizer, response.normalizer);
  EXPECT_EQ(decoded->clamped_count, 3);

  // Parallel arrays of disagreeing lengths must be rejected.
  response.densities.pop_back();
  EXPECT_FALSE(
      DecodeSampleResponse(EncodeSampleResponse(response)).ok());
}

TEST(ServeWireTest, OutlierRequestRoundTripAndEnumValidation) {
  OutlierScoreBatchRequest request;
  request.model = "m";
  request.radius = 0.05;
  request.metric = data::Metric::kLinf;
  request.max_neighbors = 42;
  request.integration = outlier::BallIntegration::kQuasiMonteCarlo;
  request.qmc_samples = 128;
  request.points = MakePoints(6, 3, 31);
  auto decoded = DecodeOutlierRequest(EncodeOutlierRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->metric, request.metric);
  EXPECT_EQ(decoded->integration, request.integration);
  EXPECT_EQ(decoded->qmc_samples, request.qmc_samples);
  EXPECT_EQ(decoded->max_neighbors, 42);
  EXPECT_EQ(decoded->points.flat(), request.points.flat());

  // An out-of-range metric enum must be rejected, not reinterpreted.
  std::vector<uint8_t> payload = EncodeOutlierRequest(request);
  // metric is the u32 right after the name (u32 len + 1 byte) and radius.
  size_t metric_offset = 4 + 1 + 8;
  payload[metric_offset] = 0x7f;
  EXPECT_FALSE(DecodeOutlierRequest(payload).ok());
}

TEST(ServeWireTest, OutlierResponseRoundTrip) {
  OutlierScoreBatchResponse response;
  response.expected_neighbors = {0.5, 10.0, 3.25};
  response.likely_outlier = {1, 0, 1};
  auto decoded = DecodeOutlierResponse(EncodeOutlierResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->expected_neighbors, response.expected_neighbors);
  EXPECT_EQ(decoded->likely_outlier, response.likely_outlier);
}

TEST(ServeWireTest, StatsResponseRoundTrip) {
  StatsResponse response;
  RequestStats row;
  row.type = RequestType::kDensityBatch;
  row.count = 10;
  row.errors = 1;
  row.points = 12345;
  row.latency_sum_us = 42.5;
  row.latency_min_us = 1.0;
  row.latency_max_us = 20.25;
  row.latency_p50_us = 4.0;
  row.latency_p99_us = 19.0;
  response.per_type.push_back(row);
  response.models = {"a", "b"};
  auto decoded = DecodeStatsResponse(EncodeStatsResponse(response));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->per_type.size(), 1u);
  EXPECT_EQ(decoded->per_type[0].type, RequestType::kDensityBatch);
  EXPECT_EQ(decoded->per_type[0].count, 10u);
  EXPECT_EQ(decoded->per_type[0].latency_p99_us, 19.0);
  EXPECT_EQ(decoded->models, response.models);
}

TEST(ServeWireTest, ErrorResponseRoundTrip) {
  Status original = Status::Unavailable("queue full");
  Status decoded = DecodeErrorResponse(EncodeErrorResponse(original));
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded.message(), "queue full");
}

TEST(ServeWireTest, FrameRoundTripAndHeaderValidation) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> frame =
      EncodeFrame(MessageType::kDensityRequest, payload);
  size_t consumed = 0;
  auto decoded = DecodeFrame(frame.data(), frame.size(), &consumed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded->type, MessageType::kDensityRequest);
  EXPECT_EQ(decoded->payload, payload);

  // Bad magic.
  std::vector<uint8_t> bad = frame;
  bad[0] ^= 0xff;
  EXPECT_FALSE(DecodeFrame(bad.data(), bad.size(), &consumed).ok());
  // Bad version.
  bad = frame;
  bad[4] ^= 0xff;
  EXPECT_FALSE(DecodeFrame(bad.data(), bad.size(), &consumed).ok());
  // Unknown type.
  bad = frame;
  bad[8] = 0xfe;
  EXPECT_FALSE(DecodeFrame(bad.data(), bad.size(), &consumed).ok());
  // Truncations at every prefix length.
  for (size_t keep = 0; keep < frame.size(); ++keep) {
    EXPECT_FALSE(DecodeFrame(frame.data(), keep, &consumed).ok())
        << "keep=" << keep;
  }
}

TEST(ServeWireTest, TrailingGarbageIsRejected) {
  DensityBatchRequest request;
  request.model = "m";
  request.points = MakePoints(9, 2, 5);
  std::vector<uint8_t> payload = EncodeDensityRequest(request);
  payload.push_back(0x00);
  EXPECT_FALSE(DecodeDensityRequest(payload).ok());
}

TEST(ServeWireTest, DecodersSurviveByteFlips) {
  DensityBatchRequest density;
  density.model = "model-under-test";
  density.points = MakePoints(10, 3, 64);
  SampleRequest sample;
  sample.model = "model-under-test";
  sample.points = MakePoints(11, 3, 64);
  OutlierScoreBatchRequest outliers;
  outliers.model = "model-under-test";
  outliers.points = MakePoints(12, 3, 64);

  const std::vector<std::vector<uint8_t>> clean_payloads = {
      EncodeDensityRequest(density),
      EncodeSampleRequest(sample),
      EncodeOutlierRequest(outliers),
  };

  Rng rng(13);
  for (const auto& clean : clean_payloads) {
    for (int trial = 0; trial < 300; ++trial) {
      std::vector<uint8_t> bytes = clean;
      int flips = 1 + static_cast<int>(rng.NextBounded(4));
      for (int f = 0; f < flips; ++f) {
        size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
        bytes[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
      }
      // The property is "no crash, no hang, no wild allocation"; both
      // outcomes (error or structurally valid decode) are acceptable.
      auto d1 = DecodeDensityRequest(bytes);
      if (d1.ok()) {
        EXPECT_GE(d1->points.size(), 0);
      }
      auto d2 = DecodeSampleRequest(bytes);
      if (d2.ok()) {
        EXPECT_GE(d2->points.size(), 0);
      }
      auto d3 = DecodeOutlierRequest(bytes);
      if (d3.ok()) {
        EXPECT_GE(d3->points.size(), 0);
      }
    }
  }
}

TEST(ServeWireTest, FrameDecoderSurvivesByteFlips) {
  DensityBatchRequest request;
  request.model = "m";
  request.points = MakePoints(14, 2, 32);
  std::vector<uint8_t> clean =
      EncodeFrame(MessageType::kDensityRequest, EncodeDensityRequest(request));
  Rng rng(15);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> bytes = clean;
    int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
      bytes[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    size_t consumed = 0;
    auto frame = DecodeFrame(bytes.data(), bytes.size(), &consumed);
    if (frame.ok()) {
      EXPECT_LE(consumed, bytes.size());
      (void)DecodeDensityRequest(frame->payload);
    }
  }
}

}  // namespace
}  // namespace dbs
