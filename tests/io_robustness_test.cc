// Robustness of the binary readers against corrupted input: flipping
// arbitrary bytes of a valid file must never crash or hang the loaders —
// every corruption either surfaces as an error Status or yields a
// structurally valid object (when the flipped byte was immaterial, e.g. a
// coordinate). This is a bounded, deterministic stand-in for a fuzzer.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "density/kde.h"
#include "density/kde_io.h"
#include "util/rng.h"

namespace dbs {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  DBS_CHECK(f != nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<unsigned char> bytes(static_cast<size_t>(size));
  DBS_CHECK(std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DBS_CHECK(f != nullptr);
  // data() of an empty vector may be null, and passing null to fwrite is
  // undefined behavior even with a zero count (UBSan: nonnull attribute).
  if (!bytes.empty()) {
    DBS_CHECK(std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size());
  }
  std::fclose(f);
}

data::PointSet SmallDataset() {
  Rng rng(1);
  data::PointSet ps(2);
  for (int i = 0; i < 200; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  return ps;
}

TEST(IoRobustnessTest, DatasetFileSurvivesByteFlips) {
  data::PointSet ps = SmallDataset();
  std::string clean = TempPath("clean.dbsf");
  ASSERT_TRUE(data::WriteDatasetFile(clean, ps).ok());
  std::vector<unsigned char> original = ReadFileBytes(clean);

  Rng rng(7);
  std::string corrupt = TempPath("corrupt.dbsf");
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<unsigned char> bytes = original;
    // Flip 1-4 bytes anywhere in the file.
    int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
      bytes[pos] ^= static_cast<unsigned char>(1 + rng.NextBounded(255));
    }
    WriteFileBytes(corrupt, bytes);
    auto result = data::ReadDatasetFile(corrupt);
    if (result.ok()) {
      // Structurally valid: dims positive, size coherent.
      EXPECT_GT(result->dim(), 0);
      EXPECT_GE(result->size(), 0);
    }
    // Not ok is equally fine; the property is "no crash, no hang".
  }
  std::remove(clean.c_str());
  std::remove(corrupt.c_str());
}

TEST(IoRobustnessTest, DatasetFileSurvivesTruncations) {
  data::PointSet ps = SmallDataset();
  std::string clean = TempPath("clean2.dbsf");
  ASSERT_TRUE(data::WriteDatasetFile(clean, ps).ok());
  std::vector<unsigned char> original = ReadFileBytes(clean);
  std::string corrupt = TempPath("trunc.dbsf");
  for (size_t keep : {0UL, 1UL, 16UL, 31UL, 32UL, 33UL, 100UL,
                      original.size() - 1}) {
    std::vector<unsigned char> bytes(original.begin(),
                                     original.begin() + keep);
    WriteFileBytes(corrupt, bytes);
    // Truncation is user-level data corruption: FileScan::Open validates
    // the promised payload against the real file size, so every prefix
    // shorter than the full file must fail cleanly (no DBS_CHECK abort).
    auto result = data::ReadDatasetFile(corrupt);
    EXPECT_FALSE(result.ok()) << "keep=" << keep;
  }
  std::remove(clean.c_str());
  std::remove(corrupt.c_str());
}

TEST(IoRobustnessTest, KdeModelSurvivesByteFlips) {
  data::PointSet ps = SmallDataset();
  density::KdeOptions opts;
  opts.num_kernels = 50;
  auto kde = density::Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  std::string clean = TempPath("clean.dbsk");
  ASSERT_TRUE(density::SaveKde(*kde, clean).ok());
  std::vector<unsigned char> original = ReadFileBytes(clean);

  Rng rng(11);
  std::string corrupt = TempPath("corrupt.dbsk");
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<unsigned char> bytes = original;
    int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = static_cast<size_t>(rng.NextBounded(bytes.size()));
      bytes[pos] ^= static_cast<unsigned char>(1 + rng.NextBounded(255));
    }
    WriteFileBytes(corrupt, bytes);
    auto result = density::LoadKde(corrupt);
    if (result.ok()) {
      EXPECT_GT(result->num_kernels(), 0);
      // Evaluation on a probe must not crash either.
      double q[2] = {0.5, 0.5};
      (void)result->Evaluate(data::PointView(q, 2));
    }
  }
  std::remove(clean.c_str());
  std::remove(corrupt.c_str());
}

}  // namespace
}  // namespace dbs
