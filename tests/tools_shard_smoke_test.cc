// End-to-end smoke test for the shards=N flag on tools/dbs_sample and
// tools/dbs_outliers (binaries injected by CMake as DBS_SAMPLE_BIN /
// DBS_OUTLIERS_BIN).
//
// The acceptance property (DESIGN.md §12): shards=1 — the default — is
// byte-identical to the pre-sharding pipeline, for both the written sample
// file and the printed report; higher shard counts run successfully and
// stay worker-count invariant.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "dbs_shard_smoke_" + name;
}

void WriteInput(const std::string& path, int64_t n, int dim,
                uint64_t seed) {
  Rng rng(seed);
  data::PointSet ps(dim);
  std::vector<double> p(static_cast<size_t>(dim));
  for (int64_t i = 0; i < n; ++i) {
    // A dense blob plus occasional far-out rows, so outliers exist.
    const bool sparse = (i % 83) == 0;
    for (int j = 0; j < dim; ++j) {
      p[static_cast<size_t>(j)] = sparse ? rng.NextDouble(-6.0, 6.0)
                                         : rng.NextGaussian(0.0, 0.5);
    }
    ps.Append(p);
  }
  ASSERT_TRUE(data::WriteDatasetFile(path, ps).ok());
}

// Runs `bin args > stdout_path 2>/dev/null`; returns the exit status.
int RunTool(const std::string& bin, const std::string& args,
            const std::string& stdout_path) {
  std::string cmd = bin + " " + args + " > " + stdout_path + " 2>/dev/null";
  return std::system(cmd.c_str());
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The tools print the output path in their report; mask it so reports for
// different output files can be compared literally otherwise.
std::string MaskPath(std::string text, const std::string& path) {
  for (size_t pos = text.find(path); pos != std::string::npos;
       pos = text.find(path, pos)) {
    text.replace(pos, path.size(), "<out>");
  }
  return text;
}

class ToolsShardSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    input_ = TempPath("in.dbsf");
    WriteInput(input_, /*n=*/12000, /*dim=*/3, /*seed=*/0xbeefULL);
  }

  std::string input_;
};

TEST_F(ToolsShardSmokeTest, SampleShardsOneIsByteIdenticalToDefault) {
  for (const std::string mode : {"twopass", "onepass"}) {
    const std::string common = "in=" + input_ + " mode=" + mode +
                               " size=400 kernels=64 seed=9 out=";
    const std::string out_default = TempPath("sample_default_" + mode);
    const std::string out_sharded = TempPath("sample_shards1_" + mode);
    ASSERT_EQ(RunTool(DBS_SAMPLE_BIN, common + out_default + ".dbsf",
                      out_default + ".txt"),
              0);
    ASSERT_EQ(RunTool(DBS_SAMPLE_BIN,
                      common + out_sharded + ".dbsf shards=1 workers=2",
                      out_sharded + ".txt"),
              0);
    const std::string want = ReadBytes(out_default + ".dbsf");
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(ReadBytes(out_sharded + ".dbsf"), want) << mode;
    // The printed report (sample size, k_a, passes) must not change either.
    EXPECT_EQ(MaskPath(ReadBytes(out_sharded + ".txt"),
                       out_sharded + ".dbsf"),
              MaskPath(ReadBytes(out_default + ".txt"),
                       out_default + ".dbsf"))
        << mode;
  }
}

TEST_F(ToolsShardSmokeTest, SampleHigherShardCountsAreWorkerInvariant) {
  const std::string common =
      "in=" + input_ + " mode=twopass size=400 kernels=64 seed=9 out=";
  const std::string serial = TempPath("sample_s3_w0");
  const std::string pooled = TempPath("sample_s3_w4");
  ASSERT_EQ(RunTool(DBS_SAMPLE_BIN, common + serial + ".dbsf shards=3",
                    serial + ".txt"),
            0);
  ASSERT_EQ(RunTool(DBS_SAMPLE_BIN,
                    common + pooled + ".dbsf shards=3 workers=4",
                    pooled + ".txt"),
            0);
  const std::string want = ReadBytes(serial + ".dbsf");
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(ReadBytes(pooled + ".dbsf"), want);
  EXPECT_EQ(MaskPath(ReadBytes(pooled + ".txt"), pooled + ".dbsf"),
            MaskPath(ReadBytes(serial + ".txt"), serial + ".dbsf"));
}

TEST_F(ToolsShardSmokeTest, SampleRejectsShardsOnUnsupportedModes) {
  const std::string sink = TempPath("sample_reject");
  EXPECT_NE(RunTool(DBS_SAMPLE_BIN,
                    "in=" + input_ + " mode=stream out=" + sink +
                        ".dbsf shards=2",
                    sink + ".txt"),
            0);
  EXPECT_NE(RunTool(DBS_SAMPLE_BIN,
                    "in=" + input_ + " mode=twopass out=" + sink +
                        ".dbsf shards=0",
                    sink + ".txt"),
            0);
}

TEST_F(ToolsShardSmokeTest, OutliersShardsOneIsByteIdenticalToDefault) {
  for (const std::string mode : {"approx", "estimate"}) {
    const std::string common = "in=" + input_ + " mode=" + mode +
                               " k=0.4 p=4 kernels=64 seed=9";
    const std::string out_default = TempPath("outl_default_" + mode);
    const std::string out_sharded = TempPath("outl_shards1_" + mode);
    ASSERT_EQ(RunTool(DBS_OUTLIERS_BIN, common, out_default + ".txt"), 0);
    ASSERT_EQ(RunTool(DBS_OUTLIERS_BIN, common + " shards=1 workers=2",
                      out_sharded + ".txt"),
              0);
    const std::string want = ReadBytes(out_default + ".txt");
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(ReadBytes(out_sharded + ".txt"), want) << mode;
  }
}

TEST_F(ToolsShardSmokeTest, OutliersHigherShardCountsAreWorkerInvariant) {
  const std::string common =
      "in=" + input_ + " mode=approx k=0.4 p=4 kernels=64 seed=9 shards=3";
  const std::string serial = TempPath("outl_s3_w0");
  const std::string pooled = TempPath("outl_s3_w4");
  ASSERT_EQ(RunTool(DBS_OUTLIERS_BIN, common, serial + ".txt"), 0);
  ASSERT_EQ(RunTool(DBS_OUTLIERS_BIN, common + " workers=4",
                    pooled + ".txt"),
            0);
  const std::string want = ReadBytes(serial + ".txt");
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(ReadBytes(pooled + ".txt"), want);
}

TEST_F(ToolsShardSmokeTest, OutliersRejectsShardsOnExactMode) {
  const std::string sink = TempPath("outl_reject");
  EXPECT_NE(
      RunTool(DBS_OUTLIERS_BIN,
              "in=" + input_ + " mode=exact shards=2", sink + ".txt"),
      0);
}

}  // namespace
}  // namespace dbs
