#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/birch.h"
#include "cluster/clustering.h"
#include "eval/cluster_match.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "synth/cluster_spec.h"

namespace dbs::eval {
namespace {

using cluster::Cluster;
using cluster::ClusteringResult;
using data::PointSet;
using synth::GroundTruth;
using synth::Region;

GroundTruth TwoBoxTruth() {
  GroundTruth truth;
  truth.regions.push_back(Region::Box({0.0, 0.0}, {0.4, 0.4}));
  truth.regions.push_back(Region::Box({0.6, 0.6}, {1.0, 1.0}));
  return truth;
}

Cluster ClusterWithReps(std::vector<double> flat) {
  Cluster c;
  c.representatives = PointSet(2);
  for (size_t i = 0; i + 1 < flat.size(); i += 2) {
    c.representatives.Append(std::vector<double>{flat[i], flat[i + 1]});
  }
  return c;
}

TEST(MatchClustersTest, AllRepsInsideCountsAsFound) {
  GroundTruth truth = TwoBoxTruth();
  ClusteringResult result;
  result.clusters.push_back(
      ClusterWithReps({0.1, 0.1, 0.2, 0.2, 0.3, 0.3}));
  MatchResult match = MatchClusters(result, truth);
  EXPECT_EQ(match.num_found(), 1);
  EXPECT_TRUE(match.found[0]);
  EXPECT_FALSE(match.found[1]);
}

TEST(MatchClustersTest, NinetyPercentRuleExactBoundary) {
  GroundTruth truth = TwoBoxTruth();
  // 9 of 10 reps inside region 0 -> found (>= 0.9); 8 of 10 -> not found.
  std::vector<double> nine_in;
  for (int i = 0; i < 9; ++i) {
    nine_in.push_back(0.2);
    nine_in.push_back(0.2);
  }
  nine_in.push_back(0.5);  // outside both regions
  nine_in.push_back(0.5);
  ClusteringResult ok_result;
  ok_result.clusters.push_back(ClusterWithReps(nine_in));
  EXPECT_EQ(MatchClusters(ok_result, truth).num_found(), 1);

  std::vector<double> eight_in;
  for (int i = 0; i < 8; ++i) {
    eight_in.push_back(0.2);
    eight_in.push_back(0.2);
  }
  for (int i = 0; i < 2; ++i) {
    eight_in.push_back(0.5);
    eight_in.push_back(0.5);
  }
  ClusteringResult bad_result;
  bad_result.clusters.push_back(ClusterWithReps(eight_in));
  EXPECT_EQ(MatchClusters(bad_result, truth).num_found(), 0);
}

TEST(MatchClustersTest, SplitClustersStillCountOnce) {
  // Two found clusters both matching region 0: region counted once.
  GroundTruth truth = TwoBoxTruth();
  ClusteringResult result;
  result.clusters.push_back(ClusterWithReps({0.1, 0.1, 0.15, 0.15}));
  result.clusters.push_back(ClusterWithReps({0.3, 0.3, 0.35, 0.35}));
  MatchResult match = MatchClusters(result, truth);
  EXPECT_EQ(match.num_found(), 1);
}

TEST(MatchClustersTest, MergedClusterMatchesNothing) {
  // Reps spread over both regions: neither reaches 90%.
  GroundTruth truth = TwoBoxTruth();
  ClusteringResult result;
  result.clusters.push_back(
      ClusterWithReps({0.1, 0.1, 0.2, 0.2, 0.8, 0.8, 0.9, 0.9}));
  MatchResult match = MatchClusters(result, truth);
  EXPECT_EQ(match.num_found(), 0);
}

TEST(MatchClustersTest, EmptyRepresentativesIgnored) {
  GroundTruth truth = TwoBoxTruth();
  ClusteringResult result;
  result.clusters.emplace_back();  // no reps
  EXPECT_EQ(MatchClusters(result, truth).num_found(), 0);
}

TEST(MatchClustersTest, InteriorMarginApplies) {
  GroundTruth truth = TwoBoxTruth();
  ClusteringResult result;
  // Reps hug the region-0 boundary.
  result.clusters.push_back(ClusterWithReps({0.01, 0.01, 0.02, 0.02}));
  MatchOptions strict;
  strict.interior_margin = 0.1;
  EXPECT_EQ(MatchClusters(result, truth, strict).num_found(), 0);
  EXPECT_EQ(MatchClusters(result, truth).num_found(), 1);
}

TEST(MatchBirchTest, CenterInsideRegionCounts) {
  GroundTruth truth = TwoBoxTruth();
  cluster::BirchResult result;
  cluster::BirchCluster a;
  a.center = {0.2, 0.2};
  cluster::BirchCluster b;
  b.center = {0.5, 0.5};  // between the regions
  cluster::BirchCluster c;
  c.center = {0.8, 0.8};
  result.clusters = {a, b, c};
  MatchResult match = MatchBirchClusters(result, truth);
  EXPECT_EQ(match.num_found(), 2);
  EXPECT_TRUE(match.found[0]);
  EXPECT_TRUE(match.found[1]);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  double secs = timer.ElapsedSeconds();
  EXPECT_GT(secs, 0.0);
  // Milliseconds are the same clock scaled by 1000 (allow for the time
  // between the two reads).
  EXPECT_GE(timer.ElapsedMillis(), secs * 1000.0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), secs + 1.0);
}

TEST(RunTrialsTest, AggregatesSeeds) {
  OnlineMoments m = RunTrials(5, [](uint64_t seed) {
    return static_cast<double>(seed);
  });
  EXPECT_EQ(m.count(), 5);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
}

TEST(TableTest, AlignedOutput) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"bb", "23456"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| bb    | 23456 |"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Int(-42), "-42");
}

}  // namespace
}  // namespace dbs::eval
