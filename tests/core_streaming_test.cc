#include "core/streaming_sampler.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/biased_sampler.h"
#include "data/point_set.h"
#include "density/kde.h"
#include "eval/sample_quality.h"
#include "parallel/batch_executor.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dbs::core {
namespace {

using data::PointSet;
using data::PointView;

PointSet DenseSparseNoise(int64_t n_dense, int64_t n_sparse, int64_t n_noise,
                          uint64_t seed) {
  Rng rng(seed);
  PointSet ps(2);
  for (int64_t i = 0; i < n_dense; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.25, 0.03),
                                  rng.NextGaussian(0.25, 0.03)});
  }
  for (int64_t i = 0; i < n_sparse; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.75, 0.08),
                                  rng.NextGaussian(0.75, 0.08)});
  }
  for (int64_t i = 0; i < n_noise; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  // Streams arrive in arbitrary order; shuffle so the warmup prefix is
  // representative rather than all-dense.
  std::vector<int64_t> order(ps.size());
  for (int64_t i = 0; i < ps.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  return ps.Gather(order);
}

TEST(StreamingSamplerTest, RejectsBadOptions) {
  PointSet ps = DenseSparseNoise(500, 100, 0, 1);
  StreamingSamplerOptions bad;
  bad.target_size = 0;
  EXPECT_FALSE(StreamingBiasedSample(ps, bad).ok());
  StreamingSamplerOptions warm;
  warm.warmup_fraction = 1.0;
  EXPECT_FALSE(StreamingBiasedSample(ps, warm).ok());
  StreamingSamplerOptions kernels;
  kernels.num_kernels = 0;
  EXPECT_FALSE(StreamingBiasedSample(ps, kernels).ok());
  StreamingSamplerOptions cadence;
  cadence.rebuild_cadence = 0;
  EXPECT_FALSE(StreamingBiasedSample(ps, cadence).ok());
  cadence.rebuild_cadence = -3;
  EXPECT_FALSE(StreamingBiasedSample(ps, cadence).ok());
  EXPECT_FALSE(StreamingBiasedSample(PointSet(2), StreamingSamplerOptions{})
                   .ok());
}

TEST(StreamingSamplerTest, SingleScanPass) {
  PointSet ps = DenseSparseNoise(5000, 2000, 1000, 2);
  data::InMemoryScan scan(&ps);
  StreamingSamplerOptions opts;
  opts.target_size = 500;
  opts.num_kernels = 300;
  auto sample = StreamingBiasedSample(scan, opts);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(scan.passes(), 1);
}

TEST(StreamingSamplerTest, SampleSizeApproximatesTarget) {
  PointSet ps = DenseSparseNoise(20000, 6000, 4000, 3);
  OnlineMoments sizes;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    StreamingSamplerOptions opts;
    opts.a = 1.0;
    opts.target_size = 1000;
    opts.num_kernels = 300;
    opts.seed = seed;
    auto sample = StreamingBiasedSample(ps, opts);
    ASSERT_TRUE(sample.ok());
    sizes.Add(static_cast<double>(sample->size()));
  }
  // One-pass normalization drifts; the paper's claim is "approximation".
  EXPECT_NEAR(sizes.mean(), 1000.0, 250.0);
}

TEST(StreamingSamplerTest, BiasesTowardDenseRegionsForPositiveA) {
  PointSet ps = DenseSparseNoise(15000, 15000, 0, 4);
  StreamingSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 1500;
  opts.num_kernels = 400;
  opts.bandwidth_scale = 0.3;
  auto sample = StreamingBiasedSample(ps, opts);
  ASSERT_TRUE(sample.ok());
  int64_t dense = 0;
  int64_t sparse = 0;
  for (int64_t i = 0; i < sample->size(); ++i) {
    PointView p = sample->points[i];
    double dx = p[0] - 0.25;
    double dy = p[1] - 0.25;
    if (dx * dx + dy * dy < 0.15 * 0.15) ++dense;
    dx = p[0] - 0.75;
    dy = p[1] - 0.75;
    if (dx * dx + dy * dy < 0.25 * 0.25) ++sparse;
  }
  // Equal counts in the stream, dense blob ~7x denser: with a=1 the dense
  // blob must dominate well past the uniform 50/50 (warmup dilutes a bit).
  EXPECT_GT(dense, sparse * 3 / 2);
}

TEST(StreamingSamplerTest, HorvitzThompsonStaysValid) {
  // Weights are inverses of the probabilities actually used, so the
  // dataset-size estimate stays unbiased despite the drifting normalizer.
  PointSet ps = DenseSparseNoise(12000, 5000, 3000, 5);
  OnlineMoments estimates;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    StreamingSamplerOptions opts;
    opts.a = 1.0;
    opts.target_size = 1200;
    opts.num_kernels = 300;
    opts.seed = seed;
    auto sample = StreamingBiasedSample(ps, opts);
    ASSERT_TRUE(sample.ok());
    estimates.Add(sample->EstimatedDatasetSize());
  }
  EXPECT_NEAR(estimates.mean(), 20000.0, 2500.0);
}

TEST(StreamingSamplerTest, ApproximatesOfflineSamplerComposition) {
  // Region shares of the one-pass streaming sample track the offline
  // two-pass sampler's within a modest tolerance.
  PointSet ps = DenseSparseNoise(20000, 8000, 2000, 6);

  StreamingSamplerOptions stream_opts;
  stream_opts.a = 1.0;
  stream_opts.target_size = 1500;
  stream_opts.num_kernels = 400;
  stream_opts.bandwidth_scale = 0.3;
  auto streaming = StreamingBiasedSample(ps, stream_opts);
  ASSERT_TRUE(streaming.ok());

  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 400;
  kde_opts.bandwidth_scale = 0.3;
  auto kde = density::Kde::Fit(ps, kde_opts);
  ASSERT_TRUE(kde.ok());
  BiasedSamplerOptions offline_opts;
  offline_opts.a = 1.0;
  offline_opts.target_size = 1500;
  auto offline = BiasedSampler(offline_opts).Run(ps, *kde);
  ASSERT_TRUE(offline.ok());

  auto dense_fraction = [](const BiasedSample& s) {
    int64_t dense = 0;
    for (int64_t i = 0; i < s.size(); ++i) {
      double dx = s.points[i][0] - 0.25;
      double dy = s.points[i][1] - 0.25;
      if (dx * dx + dy * dy < 0.15 * 0.15) ++dense;
    }
    return static_cast<double>(dense) / static_cast<double>(s.size());
  };
  EXPECT_NEAR(dense_fraction(*streaming), dense_fraction(*offline), 0.15);
}

TEST(StreamingSamplerTest, DeterministicPerSeed) {
  PointSet ps = DenseSparseNoise(5000, 2000, 1000, 7);
  StreamingSamplerOptions opts;
  opts.target_size = 400;
  opts.num_kernels = 200;
  opts.seed = 11;
  auto a = StreamingBiasedSample(ps, opts);
  auto b = StreamingBiasedSample(ps, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  EXPECT_EQ(a->inclusion_probs, b->inclusion_probs);
}

TEST(StreamingSamplerTest, OrderedStreamsDeflateTheSample) {
  // Documented limitation: on a stream SORTED by cluster, each point is
  // scored while its own region is under-represented in the prefix
  // estimator, so scores lag the running normalizer and the sample comes
  // out well under target. (The shuffled version of the same data hits the
  // target — see SampleSizeApproximatesTarget.)
  Rng rng(9);
  PointSet ordered(2);
  for (int c = 0; c < 6; ++c) {
    double cx = 0.1 + 0.16 * c;
    for (int i = 0; i < 5000; ++i) {
      ordered.Append(std::vector<double>{rng.NextGaussian(cx, 0.02),
                                         rng.NextGaussian(0.5, 0.02)});
    }
  }
  StreamingSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 1000;
  opts.num_kernels = 300;
  opts.bandwidth_scale = 0.3;
  auto sample = StreamingBiasedSample(ordered, opts);
  ASSERT_TRUE(sample.ok());
  EXPECT_LT(sample->size(), 900);
}

TEST(StreamingSamplerTest, WarmupPointsSampledUniformly) {
  PointSet ps = DenseSparseNoise(10000, 0, 0, 8);
  StreamingSamplerOptions opts;
  opts.target_size = 1000;
  opts.num_kernels = 500;
  opts.warmup_fraction = 0.5;  // half the stream is warmup
  auto sample = StreamingBiasedSample(ps, opts);
  ASSERT_TRUE(sample.ok());
  // Warmup points carry the uniform probability b/n = 0.1.
  int64_t uniform_probs = 0;
  for (double p : sample->inclusion_probs) {
    if (std::abs(p - 0.1) < 1e-12) ++uniform_probs;
  }
  EXPECT_GT(uniform_probs, sample->size() / 4);
}

// ---------------------------------------------------------------------------
// Frozen golden sample, captured from the PRE-BATCHING streaming sampler.
//
// The batch wiring (window scored through EvaluateBatch against the
// estimator frozen at window start, Observes deferred to the end of the
// window) must reproduce the old per-point path byte-for-byte at the
// default rebuild_cadence of 1: same sample size, same normalizer bits,
// same point bytes, same inclusion-probability bytes. The hashes below were
// printed by the pre-batching tree, so a refactor that drifts the sampler
// arithmetic — even in a way that keeps the sample statistically sound —
// cannot slip past this test.

uint64_t Fnv1a(const double* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n * sizeof(double); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Bits(double x) {
  uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

PointSet GoldenStream() {
  Rng rng(101);
  PointSet ps(2);
  for (int64_t i = 0; i < 4000; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.3, 0.05),
                                  rng.NextGaussian(0.3, 0.05)});
  }
  for (int64_t i = 0; i < 2000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  std::vector<int64_t> order(ps.size());
  for (int64_t i = 0; i < ps.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  return ps.Gather(order);
}

StreamingSamplerOptions GoldenStreamOptions() {
  StreamingSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 500;
  opts.num_kernels = 200;
  opts.bandwidth_scale = 0.5;
  opts.warmup_fraction = 0.05;
  opts.seed = 31;
  return opts;
}

constexpr int64_t kGoldenSize = 502;
constexpr int64_t kGoldenClamped = 0;
constexpr uint64_t kGoldenNormalizerBits = 0x40f0941c1cd7d294ULL;
constexpr uint64_t kGoldenPointsHash = 0x4e336732139e24c3ULL;
constexpr uint64_t kGoldenProbsHash = 0x84be77e6042343a4ULL;
// Warmup points carry the uniform probability b/n = 500/6000 exactly.
constexpr uint64_t kGoldenWarmupProbBits = 0x3fb5555555555555ULL;

void ExpectMatchesGolden(const BiasedSample& sample) {
  EXPECT_EQ(sample.size(), kGoldenSize);
  EXPECT_EQ(sample.clamped_count, kGoldenClamped);
  EXPECT_EQ(Bits(sample.normalizer), kGoldenNormalizerBits);
  EXPECT_EQ(Fnv1a(sample.points.flat().data(), sample.points.flat().size()),
            kGoldenPointsHash);
  EXPECT_EQ(
      Fnv1a(sample.inclusion_probs.data(), sample.inclusion_probs.size()),
      kGoldenProbsHash);
  for (int i = 0; i < 8 && i < static_cast<int>(sample.size()); ++i) {
    EXPECT_EQ(Bits(sample.inclusion_probs[static_cast<size_t>(i)]),
              kGoldenWarmupProbBits)
        << "prob[" << i << "]";
  }
}

TEST(StreamingGoldenTest, DefaultCadenceReproducesPreBatchingBytes) {
  PointSet ps = GoldenStream();
  auto sample = StreamingBiasedSample(ps, GoldenStreamOptions());
  ASSERT_TRUE(sample.ok());
  ExpectMatchesGolden(*sample);
}

TEST(StreamingGoldenTest, ExecutorShardingIsByteIdentical) {
  // The batched window evaluation shards across the executor, but each
  // point's density is computed independently with the same operands, and
  // the RNG sweep stays sequential — so the sample is byte-identical to the
  // executor-less run (and hence to the pre-batching goldens) under any
  // worker count.
  PointSet ps = GoldenStream();
  for (int workers : {1, 4}) {
    SCOPED_TRACE(::testing::Message() << "workers=" << workers);
    parallel::BatchExecutorOptions pool;
    pool.num_workers = workers;
    parallel::BatchExecutor executor(pool);
    StreamingSamplerOptions opts = GoldenStreamOptions();
    opts.executor = &executor;
    auto sample = StreamingBiasedSample(ps, opts);
    ASSERT_TRUE(sample.ok());
    ExpectMatchesGolden(*sample);
    executor.Shutdown();
  }
}

TEST(StreamingGoldenTest, CadenceOneMatchesLargerWindowSizesOnDrawStream) {
  // The reservoir's RNG draw stream is cadence-independent (one draw per
  // Observe regardless of windowing), so per-seed determinism holds at
  // every cadence even though the samples themselves legitimately differ:
  // larger windows score points against a slightly staler estimator.
  PointSet ps = GoldenStream();
  for (int64_t cadence : {int64_t{7}, int64_t{64}}) {
    SCOPED_TRACE(::testing::Message() << "cadence=" << cadence);
    StreamingSamplerOptions opts = GoldenStreamOptions();
    opts.rebuild_cadence = cadence;
    auto a = StreamingBiasedSample(ps, opts);
    auto b = StreamingBiasedSample(ps, opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    EXPECT_EQ(a->inclusion_probs, b->inclusion_probs);
    EXPECT_EQ(Fnv1a(a->points.flat().data(), a->points.flat().size()),
              Fnv1a(b->points.flat().data(), b->points.flat().size()));
  }
}

TEST(StreamingSamplerTest, SampleQualityInsensitiveToRebuildCadence) {
  // The cadence knob trades estimator freshness for batch width; it must
  // not change what KIND of sample comes out. Kish's effective sample
  // size, the weighted density-decile mass shares, and the HT cluster-mass
  // estimate all have to land within a modest band of the cadence-1
  // baseline across a wide cadence sweep.
  PointSet ps = DenseSparseNoise(12000, 5000, 3000, 17);
  StreamingSamplerOptions base;
  base.a = 1.0;
  base.target_size = 1000;
  base.num_kernels = 300;
  base.bandwidth_scale = 0.4;
  base.seed = 23;

  auto quality = [&](int64_t cadence) {
    StreamingSamplerOptions opts = base;
    opts.rebuild_cadence = cadence;
    auto sample = StreamingBiasedSample(ps, opts);
    DBS_CHECK(sample.ok());
    struct Metrics {
      double ess;
      double cluster_mass;
      double top_half_weighted_share;
      int64_t size;
    } m;
    m.ess = eval::EffectiveSampleSize(*sample);
    // The stream lives on the unit square, so average density ~1; 2x that
    // is the "denser than average" threshold the header suggests.
    m.cluster_mass = eval::EstimatedClusterMassFraction(*sample, 2.0);
    eval::DecileShares shares = eval::DensityDecileShares(*sample);
    m.top_half_weighted_share = 0.0;
    for (size_t d = 5; d < shares.weighted_share.size(); ++d) {
      m.top_half_weighted_share += shares.weighted_share[d];
    }
    m.size = sample->size();
    return m;
  };

  const auto baseline = quality(1);
  EXPECT_GT(baseline.ess, 0.0);
  for (int64_t cadence : {int64_t{8}, int64_t{64}, int64_t{512}}) {
    SCOPED_TRACE(::testing::Message() << "cadence=" << cadence);
    const auto got = quality(cadence);
    // Sizes track the same target.
    EXPECT_NEAR(static_cast<double>(got.size),
                static_cast<double>(baseline.size),
                0.25 * static_cast<double>(baseline.size));
    // Weight concentration (ESS as a fraction of the sample) is stable.
    EXPECT_NEAR(got.ess / static_cast<double>(got.size),
                baseline.ess / static_cast<double>(baseline.size), 0.15);
    // The HT estimate of above-threshold dataset mass is stable.
    EXPECT_NEAR(got.cluster_mass, baseline.cluster_mass, 0.12);
    // Where the weighted mass lands across density deciles is stable.
    EXPECT_NEAR(got.top_half_weighted_share, baseline.top_half_weighted_share,
                0.12);
  }
}

}  // namespace
}  // namespace dbs::core
