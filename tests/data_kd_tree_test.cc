#include "data/kd_tree.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "data/distance.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::data {
namespace {

PointSet MakeRandomPoints(int64_t n, int dim, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(dim);
  ps.Reserve(n);
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextDouble();
    ps.Append(buf);
  }
  return ps;
}

int64_t BruteNearest(const PointSet& ps, PointView q, int64_t exclude) {
  double best = std::numeric_limits<double>::infinity();
  int64_t best_idx = -1;
  for (int64_t i = 0; i < ps.size(); ++i) {
    if (i == exclude) continue;
    double d2 = SquaredL2(q, ps[i]);
    if (d2 < best) {
      best = d2;
      best_idx = i;
    }
  }
  return best_idx;
}

std::vector<int64_t> BruteWithinRadius(const PointSet& ps, PointView q,
                                       double r) {
  std::vector<int64_t> out;
  for (int64_t i = 0; i < ps.size(); ++i) {
    if (SquaredL2(q, ps[i]) <= r * r) out.push_back(i);
  }
  return out;
}

TEST(KdTreeTest, EmptyTree) {
  PointSet ps(2);
  KdTree tree(&ps);
  EXPECT_EQ(tree.size(), 0);
  PointSet q(2, {0.0, 0.0});
  EXPECT_EQ(tree.Nearest(q[0]), -1);
  EXPECT_TRUE(tree.KNearest(q[0], 3).empty());
  EXPECT_TRUE(tree.WithinRadius(q[0], 1.0).empty());
  EXPECT_EQ(tree.CountWithinRadius(q[0], 1.0), 0);
}

TEST(KdTreeTest, SinglePoint) {
  PointSet ps(2, {0.5, 0.5});
  KdTree tree(&ps);
  PointSet q(2, {0.0, 0.0});
  EXPECT_EQ(tree.Nearest(q[0]), 0);
  EXPECT_EQ(tree.Nearest(ps[0], /*exclude=*/0), -1);
}

class KdTreeRandomTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(KdTreeRandomTest, NearestMatchesBruteForce) {
  auto [n, dim] = GetParam();
  PointSet ps = MakeRandomPoints(n, dim, 100 + n + dim);
  KdTree tree(&ps);
  PointSet queries = MakeRandomPoints(50, dim, 999 + dim);
  for (int64_t qi = 0; qi < queries.size(); ++qi) {
    int64_t got = tree.Nearest(queries[qi]);
    int64_t want = BruteNearest(ps, queries[qi], -1);
    // Ties are possible in principle; compare distances, not indices.
    EXPECT_DOUBLE_EQ(SquaredL2(queries[qi], ps[got]),
                     SquaredL2(queries[qi], ps[want]));
  }
}

TEST_P(KdTreeRandomTest, KNearestMatchesBruteForce) {
  auto [n, dim] = GetParam();
  PointSet ps = MakeRandomPoints(n, dim, 200 + n + dim);
  KdTree tree(&ps);
  PointSet queries = MakeRandomPoints(20, dim, 555 + dim);
  const int k = std::min<int>(7, n);
  for (int64_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<int64_t> got = tree.KNearest(queries[qi], k);
    ASSERT_EQ(static_cast<int>(got.size()), k);
    // Sorted ascending by distance.
    std::vector<double> dists;
    for (int64_t idx : got) {
      dists.push_back(SquaredL2(queries[qi], ps[idx]));
    }
    EXPECT_TRUE(std::is_sorted(dists.begin(), dists.end()));
    // Compare against brute-force distances (handles ties by distance).
    std::vector<double> all;
    for (int64_t i = 0; i < ps.size(); ++i) {
      all.push_back(SquaredL2(queries[qi], ps[i]));
    }
    std::sort(all.begin(), all.end());
    for (int i = 0; i < k; ++i) EXPECT_DOUBLE_EQ(dists[i], all[i]);
  }
}

TEST_P(KdTreeRandomTest, RadiusSearchMatchesBruteForce) {
  auto [n, dim] = GetParam();
  PointSet ps = MakeRandomPoints(n, dim, 300 + n + dim);
  KdTree tree(&ps);
  PointSet queries = MakeRandomPoints(20, dim, 777 + dim);
  for (int64_t qi = 0; qi < queries.size(); ++qi) {
    for (double r : {0.05, 0.2, 0.5}) {
      std::vector<int64_t> got = tree.WithinRadius(queries[qi], r);
      std::vector<int64_t> want = BruteWithinRadius(ps, queries[qi], r);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, want) << "r=" << r;
      EXPECT_EQ(tree.CountWithinRadius(queries[qi], r),
                static_cast<int64_t>(want.size()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeRandomTest,
                         ::testing::Values(std::make_tuple(1, 2),
                                           std::make_tuple(15, 2),
                                           std::make_tuple(16, 2),
                                           std::make_tuple(17, 3),
                                           std::make_tuple(200, 2),
                                           std::make_tuple(500, 3),
                                           std::make_tuple(500, 5),
                                           std::make_tuple(1000, 4)));

TEST(KdTreeTest, CountWithinRadiusEarlyAbort) {
  PointSet ps = MakeRandomPoints(1000, 2, 42);
  KdTree tree(&ps);
  PointSet q(2, {0.5, 0.5});
  int64_t full = tree.CountWithinRadius(q[0], 0.4);
  ASSERT_GT(full, 10);
  // With cap=5 the count stops at 6 (cap+1).
  EXPECT_EQ(tree.CountWithinRadius(q[0], 0.4, /*cap=*/5), 6);
  // A cap above the true count returns the true count.
  EXPECT_EQ(tree.CountWithinRadius(q[0], 0.4, /*cap=*/full + 10), full);
}

TEST(KdTreeTest, ExcludeSkipsSelf) {
  PointSet ps = MakeRandomPoints(100, 3, 17);
  KdTree tree(&ps);
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(tree.Nearest(ps[i]), i);  // self is its own NN at distance 0
    int64_t nn = tree.Nearest(ps[i], /*exclude=*/i);
    EXPECT_NE(nn, i);
    EXPECT_EQ(nn, BruteNearest(ps, ps[i], i));
  }
}

TEST(KdTreeTest, SubsetConstructor) {
  PointSet ps(1, {0.0, 10.0, 20.0, 30.0, 40.0});
  KdTree tree(&ps, {1, 3});
  EXPECT_EQ(tree.size(), 2);
  PointSet q(1, {12.0});
  EXPECT_EQ(tree.Nearest(q[0]), 1);  // index into the original set
  PointSet q2(1, {29.0});
  EXPECT_EQ(tree.Nearest(q2[0]), 3);
  std::vector<int64_t> in_radius = tree.WithinRadius(q[0], 100.0);
  std::sort(in_radius.begin(), in_radius.end());
  EXPECT_EQ(in_radius, (std::vector<int64_t>{1, 3}));
}

TEST(KdTreeTest, DuplicatePointsAllReturned) {
  PointSet ps(2);
  for (int i = 0; i < 30; ++i) ps.Append(std::vector<double>{1.0, 1.0});
  KdTree tree(&ps);
  PointSet q(2, {1.0, 1.0});
  EXPECT_EQ(tree.CountWithinRadius(q[0], 0.0), 30);
  EXPECT_EQ(tree.WithinRadius(q[0], 0.1).size(), 30u);
}

TEST(KdTreeTest, KNearestWithKLargerThanTree) {
  PointSet ps = MakeRandomPoints(5, 2, 3);
  KdTree tree(&ps);
  PointSet q(2, {0.5, 0.5});
  std::vector<int64_t> got = tree.KNearest(q[0], 50);
  EXPECT_EQ(got.size(), 5u);
}

}  // namespace
}  // namespace dbs::data
