#include "data/kd_tree.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "data/distance.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::data {
namespace {

PointSet MakeRandomPoints(int64_t n, int dim, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(dim);
  ps.Reserve(n);
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextDouble();
    ps.Append(buf);
  }
  return ps;
}

int64_t BruteNearest(const PointSet& ps, PointView q, int64_t exclude) {
  double best = std::numeric_limits<double>::infinity();
  int64_t best_idx = -1;
  for (int64_t i = 0; i < ps.size(); ++i) {
    if (i == exclude) continue;
    double d2 = SquaredL2(q, ps[i]);
    if (d2 < best) {
      best = d2;
      best_idx = i;
    }
  }
  return best_idx;
}

std::vector<int64_t> BruteWithinRadius(const PointSet& ps, PointView q,
                                       double r) {
  std::vector<int64_t> out;
  for (int64_t i = 0; i < ps.size(); ++i) {
    if (SquaredL2(q, ps[i]) <= r * r) out.push_back(i);
  }
  return out;
}

TEST(KdTreeTest, EmptyTree) {
  PointSet ps(2);
  KdTree tree(&ps);
  EXPECT_EQ(tree.size(), 0);
  PointSet q(2, {0.0, 0.0});
  EXPECT_EQ(tree.Nearest(q[0]), -1);
  EXPECT_TRUE(tree.KNearest(q[0], 3).empty());
  EXPECT_TRUE(tree.WithinRadius(q[0], 1.0).empty());
  EXPECT_EQ(tree.CountWithinRadius(q[0], 1.0), 0);
}

TEST(KdTreeTest, SinglePoint) {
  PointSet ps(2, {0.5, 0.5});
  KdTree tree(&ps);
  PointSet q(2, {0.0, 0.0});
  EXPECT_EQ(tree.Nearest(q[0]), 0);
  EXPECT_EQ(tree.Nearest(ps[0], /*exclude=*/0), -1);
}

class KdTreeRandomTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(KdTreeRandomTest, NearestMatchesBruteForce) {
  auto [n, dim] = GetParam();
  PointSet ps = MakeRandomPoints(n, dim, 100 + n + dim);
  KdTree tree(&ps);
  PointSet queries = MakeRandomPoints(50, dim, 999 + dim);
  for (int64_t qi = 0; qi < queries.size(); ++qi) {
    int64_t got = tree.Nearest(queries[qi]);
    int64_t want = BruteNearest(ps, queries[qi], -1);
    // Ties are possible in principle; compare distances, not indices.
    EXPECT_DOUBLE_EQ(SquaredL2(queries[qi], ps[got]),
                     SquaredL2(queries[qi], ps[want]));
  }
}

TEST_P(KdTreeRandomTest, KNearestMatchesBruteForce) {
  auto [n, dim] = GetParam();
  PointSet ps = MakeRandomPoints(n, dim, 200 + n + dim);
  KdTree tree(&ps);
  PointSet queries = MakeRandomPoints(20, dim, 555 + dim);
  const int k = std::min<int>(7, n);
  for (int64_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<int64_t> got = tree.KNearest(queries[qi], k);
    ASSERT_EQ(static_cast<int>(got.size()), k);
    // Sorted ascending by distance.
    std::vector<double> dists;
    for (int64_t idx : got) {
      dists.push_back(SquaredL2(queries[qi], ps[idx]));
    }
    EXPECT_TRUE(std::is_sorted(dists.begin(), dists.end()));
    // Compare against brute-force distances (handles ties by distance).
    std::vector<double> all;
    for (int64_t i = 0; i < ps.size(); ++i) {
      all.push_back(SquaredL2(queries[qi], ps[i]));
    }
    std::sort(all.begin(), all.end());
    for (int i = 0; i < k; ++i) EXPECT_DOUBLE_EQ(dists[i], all[i]);
  }
}

TEST_P(KdTreeRandomTest, RadiusSearchMatchesBruteForce) {
  auto [n, dim] = GetParam();
  PointSet ps = MakeRandomPoints(n, dim, 300 + n + dim);
  KdTree tree(&ps);
  PointSet queries = MakeRandomPoints(20, dim, 777 + dim);
  for (int64_t qi = 0; qi < queries.size(); ++qi) {
    for (double r : {0.05, 0.2, 0.5}) {
      std::vector<int64_t> got = tree.WithinRadius(queries[qi], r);
      std::vector<int64_t> want = BruteWithinRadius(ps, queries[qi], r);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, want) << "r=" << r;
      EXPECT_EQ(tree.CountWithinRadius(queries[qi], r),
                static_cast<int64_t>(want.size()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeRandomTest,
                         ::testing::Values(std::make_tuple(1, 2),
                                           std::make_tuple(15, 2),
                                           std::make_tuple(16, 2),
                                           std::make_tuple(17, 3),
                                           std::make_tuple(200, 2),
                                           std::make_tuple(500, 3),
                                           std::make_tuple(500, 5),
                                           std::make_tuple(1000, 4)));

TEST(KdTreeTest, CountWithinRadiusEarlyAbort) {
  PointSet ps = MakeRandomPoints(1000, 2, 42);
  KdTree tree(&ps);
  PointSet q(2, {0.5, 0.5});
  int64_t full = tree.CountWithinRadius(q[0], 0.4);
  ASSERT_GT(full, 10);
  // With cap=5 the count stops at 6 (cap+1).
  EXPECT_EQ(tree.CountWithinRadius(q[0], 0.4, /*cap=*/5), 6);
  // A cap above the true count returns the true count.
  EXPECT_EQ(tree.CountWithinRadius(q[0], 0.4, /*cap=*/full + 10), full);
}

TEST(KdTreeTest, ExcludeSkipsSelf) {
  PointSet ps = MakeRandomPoints(100, 3, 17);
  KdTree tree(&ps);
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(tree.Nearest(ps[i]), i);  // self is its own NN at distance 0
    int64_t nn = tree.Nearest(ps[i], /*exclude=*/i);
    EXPECT_NE(nn, i);
    EXPECT_EQ(nn, BruteNearest(ps, ps[i], i));
  }
}

TEST(KdTreeTest, SubsetConstructor) {
  PointSet ps(1, {0.0, 10.0, 20.0, 30.0, 40.0});
  KdTree tree(&ps, {1, 3});
  EXPECT_EQ(tree.size(), 2);
  PointSet q(1, {12.0});
  EXPECT_EQ(tree.Nearest(q[0]), 1);  // index into the original set
  PointSet q2(1, {29.0});
  EXPECT_EQ(tree.Nearest(q2[0]), 3);
  std::vector<int64_t> in_radius = tree.WithinRadius(q[0], 100.0);
  std::sort(in_radius.begin(), in_radius.end());
  EXPECT_EQ(in_radius, (std::vector<int64_t>{1, 3}));
}

TEST(KdTreeTest, DuplicatePointsAllReturned) {
  PointSet ps(2);
  for (int i = 0; i < 30; ++i) ps.Append(std::vector<double>{1.0, 1.0});
  KdTree tree(&ps);
  PointSet q(2, {1.0, 1.0});
  EXPECT_EQ(tree.CountWithinRadius(q[0], 0.0), 30);
  EXPECT_EQ(tree.WithinRadius(q[0], 0.1).size(), 30u);
}

TEST(KdTreeTest, KNearestWithKLargerThanTree) {
  PointSet ps = MakeRandomPoints(5, 2, 3);
  KdTree tree(&ps);
  PointSet q(2, {0.5, 0.5});
  std::vector<int64_t> got = tree.KNearest(q[0], 50);
  EXPECT_EQ(got.size(), 5u);
}

// Brute-force oracle for NearestExcludingGroup with the same lexicographic
// (d2, group) winner rule.
KdTree::GroupNearest BruteGroupNearest(const PointSet& ps, PointView q,
                                       const std::vector<int32_t>& group_of,
                                       int32_t exclude_group,
                                       const std::vector<uint8_t>& active) {
  KdTree::GroupNearest best;
  for (int64_t i = 0; i < ps.size(); ++i) {
    int32_t g = group_of[static_cast<size_t>(i)];
    if (g == exclude_group || active[static_cast<size_t>(g)] == 0) continue;
    double d2 = SquaredL2(q, ps[i]);
    if (d2 < best.d2 || (d2 == best.d2 && g < best.group)) {
      best.d2 = d2;
      best.group = g;
      best.index = i;
    }
  }
  return best;
}

TEST(KdTreeGroupTest, MatchesBruteForceWithExclusionAndFilter) {
  const int32_t kGroups = 13;
  PointSet ps = MakeRandomPoints(400, 3, 91);
  std::vector<int32_t> group_of(400);
  for (int64_t i = 0; i < 400; ++i) {
    group_of[static_cast<size_t>(i)] = static_cast<int32_t>(i % kGroups);
  }
  std::vector<uint8_t> active(kGroups, 1);
  active[4] = 0;  // a dead group must never win
  active[9] = 0;
  KdTree tree(&ps);
  for (int64_t i = 0; i < 60; ++i) {
    int32_t self = group_of[static_cast<size_t>(i)];
    KdTree::GroupNearest got =
        tree.NearestExcludingGroup(ps[i], group_of, self, active);
    KdTree::GroupNearest want =
        BruteGroupNearest(ps, ps[i], group_of, self, active);
    EXPECT_EQ(got.group, want.group);
    EXPECT_EQ(got.d2, want.d2);
    EXPECT_NE(got.group, self);
    EXPECT_NE(got.group, 4);
    EXPECT_NE(got.group, 9);
  }
}

TEST(KdTreeGroupTest, DistanceTiesResolveToSmallestGroup) {
  // Two points equidistant from the query on opposite sides of the split;
  // the far-subtree `<=` descend must still find the smaller group id.
  PointSet ps(1);
  for (int i = 0; i < 40; ++i) {
    ps.Append(std::vector<double>{i < 20 ? 0.0 : 2.0});
  }
  std::vector<int32_t> group_of(40);
  for (int64_t i = 0; i < 40; ++i) {
    // Left pile gets odd high groups, right pile even low ones, so the
    // winner must come from the far side of whatever subtree is searched
    // first.
    group_of[static_cast<size_t>(i)] =
        i < 20 ? static_cast<int32_t>(20 + i) : static_cast<int32_t>(i - 20);
  }
  std::vector<uint8_t> active(40, 1);
  KdTree tree(&ps);
  PointSet q(1, {1.0});  // exactly 1.0 from both piles
  KdTree::GroupNearest got =
      tree.NearestExcludingGroup(q[0], group_of, /*exclude_group=*/-1,
                                 active);
  EXPECT_EQ(got.d2, 1.0);
  EXPECT_EQ(got.group, 0);
}

TEST(KdTreeGroupTest, AllFilteredReturnsEmpty) {
  PointSet ps = MakeRandomPoints(30, 2, 7);
  std::vector<int32_t> group_of(30, 0);
  std::vector<uint8_t> active(1, 1);
  KdTree tree(&ps);
  KdTree::GroupNearest got =
      tree.NearestExcludingGroup(ps[0], group_of, /*exclude_group=*/0,
                                 active);
  EXPECT_EQ(got.index, -1);
  EXPECT_EQ(got.group, -1);
  active[0] = 0;
  got = tree.NearestExcludingGroup(ps[0], group_of, /*exclude_group=*/-1,
                                   active);
  EXPECT_EQ(got.index, -1);
}

}  // namespace
}  // namespace dbs::data
