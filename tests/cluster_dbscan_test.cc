#include "cluster/dbscan.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/distance.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::cluster {
namespace {

using data::PointSet;
using data::PointView;

PointSet Blobs(const std::vector<std::pair<double, double>>& centers,
               int64_t per_blob, double sigma, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(2);
  for (auto [cx, cy] : centers) {
    for (int64_t i = 0; i < per_blob; ++i) {
      ps.Append(std::vector<double>{rng.NextGaussian(cx, sigma),
                                    rng.NextGaussian(cy, sigma)});
    }
  }
  return ps;
}

TEST(DbscanTest, RejectsBadArguments) {
  PointSet ps(2, {0.0, 0.0});
  DbscanOptions bad;
  bad.epsilon = 0;
  EXPECT_FALSE(DbscanCluster(ps, bad).ok());
  DbscanOptions bad_min;
  bad_min.min_points = 0;
  EXPECT_FALSE(DbscanCluster(ps, bad_min).ok());
  EXPECT_FALSE(DbscanCluster(PointSet(2), DbscanOptions{}).ok());
  EXPECT_FALSE(DbscanCluster(ps, DbscanOptions{}, 0).ok());
}

TEST(DbscanTest, SeparatedBlobsWithScatteredNoise) {
  PointSet ps = Blobs({{0.2, 0.2}, {0.8, 0.8}}, 250, 0.03, 1);
  Rng rng(2);
  const int64_t blob_points = ps.size();
  for (int i = 0; i < 40; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  DbscanOptions opts;
  opts.epsilon = 0.04;
  opts.min_points = 5;
  auto result = DbscanCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 2);
  // Blob points labeled, most noise unlabeled.
  int64_t labeled_noise = 0;
  for (int64_t i = blob_points; i < ps.size(); ++i) {
    if (result->labels[i] >= 0) ++labeled_noise;
  }
  EXPECT_LT(labeled_noise, 10);
  // Each cluster holds essentially one blob.
  for (const Cluster& c : result->clusters) {
    EXPECT_GE(c.members.size(), 240u);
    EXPECT_LE(c.members.size(), 265u);
  }
}

TEST(DbscanTest, FindsNonConvexShapes) {
  // Two interleaved half-moons: k-means cannot separate them; DBSCAN can.
  // The standard two-moons construction (scaled into the unit square):
  // an upper semicircle and a lower semicircle shifted right and up so the
  // arcs interleave without touching.
  Rng rng(3);
  PointSet ps(2);
  for (int i = 0; i < 400; ++i) {
    double t = M_PI * rng.NextDouble();
    ps.Append(std::vector<double>{0.30 + 0.25 * std::cos(t) +
                                      rng.NextGaussian(0, 0.008),
                                  0.45 + 0.25 * std::sin(t) +
                                      rng.NextGaussian(0, 0.008)});
  }
  for (int i = 0; i < 400; ++i) {
    double t = M_PI * rng.NextDouble();
    ps.Append(std::vector<double>{0.55 - 0.25 * std::cos(t) +
                                      rng.NextGaussian(0, 0.008),
                                  0.575 - 0.25 * std::sin(t) +
                                      rng.NextGaussian(0, 0.008)});
  }
  DbscanOptions opts;
  opts.epsilon = 0.04;
  opts.min_points = 5;
  auto result = DbscanCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 2);
  // Moon membership by construction order.
  int32_t first = result->labels[0];
  int64_t misassigned = 0;
  for (int i = 0; i < 400; ++i) {
    if (result->labels[i] != first) ++misassigned;
  }
  for (int i = 400; i < 800; ++i) {
    if (result->labels[i] == first) ++misassigned;
  }
  EXPECT_LT(misassigned, 20);
}

TEST(DbscanTest, EverythingIsolatedMeansAllNoise) {
  // Far-apart points, min_points 3: no cores, no clusters.
  PointSet ps(2);
  for (int i = 0; i < 20; ++i) {
    ps.Append(std::vector<double>{static_cast<double>(i), 0.0});
  }
  DbscanOptions opts;
  opts.epsilon = 0.2;
  opts.min_points = 3;
  auto result = DbscanCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters(), 0);
  for (int32_t label : result->labels) EXPECT_EQ(label, -1);
}

TEST(DbscanTest, EpsilonBridgesOrSeparates) {
  // Two 30-point groups 0.2 apart: small epsilon -> 2 clusters, large
  // epsilon -> 1 cluster.
  PointSet ps = Blobs({{0.3, 0.5}, {0.5, 0.5}}, 30, 0.01, 4);
  DbscanOptions split;
  split.epsilon = 0.05;
  split.min_points = 4;
  auto a = DbscanCluster(ps, split);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_clusters(), 2);

  DbscanOptions merged;
  merged.epsilon = 0.25;
  merged.min_points = 4;
  auto b = DbscanCluster(ps, merged);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_clusters(), 1);
}

TEST(DbscanTest, MembersAndLabelsConsistent) {
  PointSet ps = Blobs({{0.25, 0.5}, {0.75, 0.5}}, 120, 0.04, 5);
  DbscanOptions opts;
  opts.epsilon = 0.05;
  opts.min_points = 4;
  auto result = DbscanCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  std::set<int64_t> seen;
  for (size_t c = 0; c < result->clusters.size(); ++c) {
    for (int64_t m : result->clusters[c].members) {
      EXPECT_EQ(result->labels[m], static_cast<int32_t>(c));
      EXPECT_TRUE(seen.insert(m).second) << "member assigned twice";
    }
  }
  for (int64_t i = 0; i < ps.size(); ++i) {
    if (result->labels[i] >= 0) {
      EXPECT_TRUE(seen.count(i));
    }
  }
}

TEST(DbscanTest, RepresentativesAreCoreAndCapped) {
  PointSet ps = Blobs({{0.5, 0.5}}, 500, 0.05, 6);
  DbscanOptions opts;
  opts.epsilon = 0.04;
  opts.min_points = 5;
  auto result = DbscanCluster(ps, opts, /*max_representatives=*/7);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_clusters(), 1);
  const Cluster& c = result->clusters[0];
  EXPECT_LE(c.representatives.size(), 7);
  EXPECT_GE(c.representatives.size(), 1);
  // Each representative equals some member point.
  for (int64_t r = 0; r < c.representatives.size(); ++r) {
    bool found = false;
    for (int64_t m : c.members) {
      if (data::SquaredL2(c.representatives[r], ps[m]) == 0.0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(DbscanTest, BorderPointsDoNotExpandClusters) {
  // A chain: dense group, then a string of single points. Border points
  // attach but do not propagate, so the string stays mostly noise.
  Rng rng(7);
  PointSet ps(2);
  for (int i = 0; i < 60; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.2, 0.01),
                                  rng.NextGaussian(0.5, 0.01)});
  }
  for (int i = 0; i < 10; ++i) {
    ps.Append(std::vector<double>{0.26 + 0.045 * i, 0.5});
  }
  DbscanOptions opts;
  opts.epsilon = 0.05;
  opts.min_points = 5;
  auto result = DbscanCluster(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->num_clusters(), 1);
  // The far end of the string must remain noise.
  EXPECT_EQ(result->labels[69], -1);
}

}  // namespace
}  // namespace dbs::cluster
