// Tests for the generator options added during reproduction: stream
// shuffling, the CURE dataset1 gap parameters, and their interactions.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "synth/cure_dataset.h"
#include "synth/generator.h"

namespace dbs::synth {
namespace {

TEST(ShuffleOptionTest, PermutesPointsAndLabelsConsistently) {
  ClusteredDatasetOptions opts;
  opts.num_clusters = 4;
  opts.num_cluster_points = 2000;
  opts.noise_multiplier = 0.25;
  opts.seed = 5;
  auto ordered = MakeClusteredDataset(opts);
  ASSERT_TRUE(ordered.ok());
  opts.shuffle = true;
  auto shuffled = MakeClusteredDataset(opts);
  ASSERT_TRUE(shuffled.ok());

  ASSERT_EQ(ordered->points.size(), shuffled->points.size());
  // Same multiset of (x, label) pairs.
  auto signature = [](const ClusteredDataset& ds) {
    std::vector<std::pair<double, int32_t>> sig;
    for (int64_t i = 0; i < ds.points.size(); ++i) {
      sig.emplace_back(ds.points[i][0], ds.truth.labels[i]);
    }
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  EXPECT_EQ(signature(*ordered), signature(*shuffled));

  // Shuffled labels must still place every point inside its region.
  for (int64_t i = 0; i < shuffled->points.size(); ++i) {
    int32_t label = shuffled->truth.labels[i];
    if (label < 0) continue;
    EXPECT_TRUE(
        shuffled->truth.regions[label].ContainsInterior(shuffled->points[i]));
  }

  // And the order actually changed: the ordered output is label-sorted by
  // construction, the shuffled one must not be.
  bool label_sorted = true;
  for (size_t i = 1; i < shuffled->truth.labels.size() && label_sorted; ++i) {
    int32_t prev = shuffled->truth.labels[i - 1];
    int32_t curr = shuffled->truth.labels[i];
    // Treat -1 (noise) as the largest label, matching emit order.
    auto rank = [](int32_t l) { return l < 0 ? 1 << 20 : l; };
    if (rank(curr) < rank(prev)) label_sorted = false;
  }
  EXPECT_FALSE(label_sorted);
}

TEST(ShuffleOptionTest, PrefixIsRepresentative) {
  // The point of shuffling: every prefix mixes all clusters.
  ClusteredDatasetOptions opts;
  opts.num_clusters = 5;
  opts.num_cluster_points = 10000;
  opts.shuffle = true;
  opts.seed = 7;
  auto ds = MakeClusteredDataset(opts);
  ASSERT_TRUE(ds.ok());
  std::set<int32_t> prefix_labels;
  for (int64_t i = 0; i < 200; ++i) {
    prefix_labels.insert(ds->truth.labels[i]);
  }
  EXPECT_EQ(prefix_labels.size(), 5u);
}

TEST(CureGapOptionsTest, GapsControlSeparation) {
  for (double gap : {0.02, 0.08}) {
    CureDatasetOptions opts;
    opts.num_points = 5000;
    opts.ellipse_gap = gap;
    opts.circle_gap = gap;
    opts.seed = 3;
    auto ds = MakeCureDataset1(opts);
    ASSERT_TRUE(ds.ok());
    // Measure the actual minimum distance between the two small circles'
    // points (labels 3 and 4).
    double min_d = 1e9;
    for (int64_t i = 0; i < ds->points.size(); ++i) {
      if (ds->truth.labels[i] != 3) continue;
      for (int64_t j = 0; j < ds->points.size(); ++j) {
        if (ds->truth.labels[j] != 4) continue;
        double dx = ds->points[i][0] - ds->points[j][0];
        double dy = ds->points[i][1] - ds->points[j][1];
        min_d = std::min(min_d, std::sqrt(dx * dx + dy * dy));
      }
    }
    // The observed gap approaches the configured one from above.
    EXPECT_GE(min_d, gap * 0.6) << "gap=" << gap;
    EXPECT_LE(min_d, gap * 1.8) << "gap=" << gap;
  }
}

TEST(CureGapOptionsTest, RegionsStayDisjoint) {
  CureDatasetOptions opts;
  opts.num_points = 2000;
  opts.ellipse_gap = 0.02;
  opts.circle_gap = 0.02;
  auto ds = MakeCureDataset1(opts);
  ASSERT_TRUE(ds.ok());
  // No point belongs to two regions.
  for (int64_t i = 0; i < ds->points.size(); ++i) {
    int inside = 0;
    for (const Region& r : ds->truth.regions) {
      if (r.ContainsInterior(ds->points[i])) ++inside;
    }
    EXPECT_EQ(inside, 1) << "point " << i;
  }
}

TEST(CureGapOptionsTest, PointsStayInUnitSquare) {
  CureDatasetOptions opts;
  opts.num_points = 5000;
  opts.ellipse_gap = 0.1;
  opts.circle_gap = 0.1;
  auto ds = MakeCureDataset1(opts);
  ASSERT_TRUE(ds.ok());
  for (int64_t i = 0; i < ds->points.size(); ++i) {
    EXPECT_GE(ds->points[i][0], 0.0);
    EXPECT_LE(ds->points[i][0], 1.0);
    EXPECT_GE(ds->points[i][1], 0.0);
    EXPECT_LE(ds->points[i][1], 1.0);
  }
}

TEST(GeneratorSeparationTest, MinSeparationIsHonored) {
  ClusteredDatasetOptions opts;
  opts.num_clusters = 8;
  opts.num_cluster_points = 800;
  opts.min_separation = 0.08;
  opts.seed = 11;
  auto ds = MakeClusteredDataset(opts);
  ASSERT_TRUE(ds.ok());
  // Box-to-box gaps are at least min_separation on some dimension.
  for (size_t a = 0; a < ds->truth.regions.size(); ++a) {
    for (size_t b = a + 1; b < ds->truth.regions.size(); ++b) {
      // Sample the realized minimum distance between the two clusters'
      // points as a proxy (boxes are axis-aligned and filled uniformly).
      double min_d = 1e9;
      for (int64_t i = 0; i < ds->points.size(); ++i) {
        if (ds->truth.labels[i] != static_cast<int32_t>(a)) continue;
        for (int64_t j = 0; j < ds->points.size(); ++j) {
          if (ds->truth.labels[j] != static_cast<int32_t>(b)) continue;
          double dx = ds->points[i][0] - ds->points[j][0];
          double dy = ds->points[i][1] - ds->points[j][1];
          min_d = std::min(min_d, std::max(std::abs(dx), std::abs(dy)));
        }
      }
      EXPECT_GE(min_d, 0.08 * 0.95) << "clusters " << a << "," << b;
    }
  }
}

}  // namespace
}  // namespace dbs::synth
