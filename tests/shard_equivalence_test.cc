// ShardCoordinator vs the unsharded entry points (DESIGN.md §12).
//
// The pins under test:
//   * shards=1 is BITWISE identical to Kde::Fit, BiasedSampler::Run,
//     BiasedSampler::RunOnePass and DetectOutliersApproximate;
//   * outlier detection is bitwise identical at ANY shard count given the
//     same estimator (both passes are RNG-free);
//   * for a fixed shard count, the worker count never changes a byte.

#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/biased_sampler.h"
#include "data/dataset.h"
#include "density/kde.h"
#include "outlier/kde_detector.h"
#include "parallel/batch_executor.h"
#include "shard/coordinator.h"
#include "synth/generator.h"

namespace dbs {
namespace {

data::PointSet MakeData(int64_t points, int dim, uint64_t seed) {
  synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 5;
  opts.num_cluster_points = points;
  opts.noise_multiplier = 0.15;  // noise points make real outliers
  opts.seed = seed;
  auto ds = synth::MakeClusteredDataset(opts);
  EXPECT_TRUE(ds.ok());
  return std::move(ds)->points;
}

bool SameDoubles(const std::vector<double>& a,
                 const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void ExpectSameModel(const density::Kde& got, const density::Kde& want) {
  const density::Kde::State g = got.ExportState();
  const density::Kde::State w = want.ExportState();
  EXPECT_EQ(g.n, w.n);
  EXPECT_EQ(g.kernel, w.kernel);
  EXPECT_EQ(g.centers.dim(), w.centers.dim());
  EXPECT_TRUE(SameDoubles(g.centers.flat(), w.centers.flat()));
  EXPECT_TRUE(SameDoubles(g.bandwidths, w.bandwidths));
  EXPECT_TRUE(SameDoubles(g.bounds.lo(), w.bounds.lo()));
  EXPECT_TRUE(SameDoubles(g.bounds.hi(), w.bounds.hi()));
}

void ExpectSameSample(const core::BiasedSample& got,
                      const core::BiasedSample& want) {
  EXPECT_TRUE(SameDoubles(got.points.flat(), want.points.flat()));
  EXPECT_TRUE(SameDoubles(got.inclusion_probs, want.inclusion_probs));
  EXPECT_TRUE(SameDoubles(got.densities, want.densities));
  EXPECT_EQ(std::memcmp(&got.normalizer, &want.normalizer, sizeof(double)),
            0);
  EXPECT_EQ(got.dataset_size, want.dataset_size);
  EXPECT_EQ(got.clamped_count, want.clamped_count);
}

class ShardEquivalenceTest : public ::testing::Test {
 protected:
  ShardEquivalenceTest() : data_(MakeData(4000, 3, 29)) {}

  shard::ShardCoordinator MakeCoordinator(
      int64_t shards, parallel::BatchExecutor* executor = nullptr) const {
    shard::ShardCoordinatorOptions opts;
    opts.shards = shards;
    opts.executor = executor;
    return shard::ShardCoordinator(
        [this]() -> Result<std::unique_ptr<data::DataScan>> {
          return std::unique_ptr<data::DataScan>(
              std::make_unique<data::InMemoryScan>(&data_));
        },
        opts);
  }

  density::KdeOptions KdeOpts() const {
    density::KdeOptions opts;
    opts.num_kernels = 256;
    opts.seed = 11;
    return opts;
  }

  core::BiasedSamplerOptions SampleOpts() const {
    core::BiasedSamplerOptions opts;
    opts.a = -0.5;
    opts.target_size = 400;
    opts.seed = 23;
    return opts;
  }

  data::PointSet data_;
};

TEST_F(ShardEquivalenceTest, SingleShardBuildMatchesFitBitwise) {
  data::InMemoryScan scan(&data_);
  auto direct = density::Kde::Fit(scan, KdeOpts());
  ASSERT_TRUE(direct.ok());
  auto sharded = MakeCoordinator(1).BuildKde(KdeOpts());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectSameModel(*sharded, *direct);
}

TEST_F(ShardEquivalenceTest, SingleShardTwoPassSampleMatchesRunBitwise) {
  data::InMemoryScan scan(&data_);
  auto kde = density::Kde::Fit(scan, KdeOpts());
  ASSERT_TRUE(kde.ok());
  auto direct = core::BiasedSampler(SampleOpts()).Run(scan, *kde);
  ASSERT_TRUE(direct.ok());
  auto sharded = MakeCoordinator(1).SampleTwoPass(*kde, SampleOpts());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectSameSample(*sharded, *direct);
}

TEST_F(ShardEquivalenceTest, SingleShardOnePassSampleMatchesRunOnePass) {
  data::InMemoryScan scan(&data_);
  auto kde = density::Kde::Fit(scan, KdeOpts());
  ASSERT_TRUE(kde.ok());
  auto direct = core::BiasedSampler(SampleOpts()).RunOnePass(scan, *kde);
  ASSERT_TRUE(direct.ok());
  auto sharded = MakeCoordinator(1).SampleOnePass(*kde, SampleOpts());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectSameSample(*sharded, *direct);
}

TEST_F(ShardEquivalenceTest, OutlierDetectionMatchesAtAnyShardCount) {
  data::InMemoryScan scan(&data_);
  auto kde = density::Kde::Fit(scan, KdeOpts());
  ASSERT_TRUE(kde.ok());
  outlier::DbOutlierParams params;
  params.radius = 0.05;
  params.max_neighbors = 10;
  outlier::KdeDetectorOptions options;
  auto direct =
      outlier::DetectOutliersApproximate(scan, *kde, params, options);
  ASSERT_TRUE(direct.ok());
  EXPECT_FALSE(direct->outlier_indices.empty());

  for (int64_t shards : {1, 3}) {
    auto sharded =
        MakeCoordinator(shards).DetectOutliers(*kde, params, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    EXPECT_EQ(sharded->outlier_indices, direct->outlier_indices)
        << "shards=" << shards;
    EXPECT_EQ(sharded->neighbor_counts, direct->neighbor_counts);
    EXPECT_EQ(sharded->candidates_checked, direct->candidates_checked);
  }
}

TEST_F(ShardEquivalenceTest, WorkerCountNeverChangesBytes) {
  const int64_t shards = 3;
  auto reference_kde = MakeCoordinator(shards).BuildKde(KdeOpts());
  ASSERT_TRUE(reference_kde.ok());
  auto reference_sample =
      MakeCoordinator(shards).SampleTwoPass(*reference_kde, SampleOpts());
  ASSERT_TRUE(reference_sample.ok());

  for (int workers : {1, 4}) {
    parallel::BatchExecutorOptions pool;
    pool.num_workers = workers;
    parallel::BatchExecutor executor(pool);
    shard::ShardCoordinator coordinator = MakeCoordinator(shards, &executor);
    auto kde = coordinator.BuildKde(KdeOpts());
    ASSERT_TRUE(kde.ok()) << kde.status().ToString();
    ExpectSameModel(*kde, *reference_kde);
    auto sample = coordinator.SampleTwoPass(*kde, SampleOpts());
    ASSERT_TRUE(sample.ok()) << sample.status().ToString();
    ExpectSameSample(*sample, *reference_sample);
    executor.Shutdown();
  }
}

TEST_F(ShardEquivalenceTest, ShardCountClampsToDatasetSize) {
  // More shards than rows must still build (empty shards are valid).
  data::PointSet tiny(2);
  tiny.Append(std::vector<double>{0.0, 0.0});
  tiny.Append(std::vector<double>{1.0, 1.0});
  tiny.Append(std::vector<double>{2.0, 2.0});
  shard::ShardCoordinatorOptions opts;
  opts.shards = 16;
  shard::ShardCoordinator coordinator(
      [&tiny]() -> Result<std::unique_ptr<data::DataScan>> {
        return std::unique_ptr<data::DataScan>(
            std::make_unique<data::InMemoryScan>(&tiny));
      },
      opts);
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 2;
  auto kde = coordinator.BuildKde(kde_opts);
  ASSERT_TRUE(kde.ok()) << kde.status().ToString();
  EXPECT_EQ(kde->total_mass(), 3);
}

}  // namespace
}  // namespace dbs
