// Tests for distance-metric-general outlier detection (L1 / Linf), the
// §3.2 remark that non-Euclidean metrics "can be used equally well".

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/kd_tree.h"
#include "data/point_set.h"
#include "density/kde.h"
#include "outlier/ball_integration.h"
#include "outlier/exact_detector.h"
#include "outlier/kde_detector.h"
#include "util/math.h"
#include "util/rng.h"

namespace dbs::outlier {
namespace {

using data::Metric;
using data::PointSet;
using data::PointView;

PointSet RandomPoints(int64_t n, int dim, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextDouble();
    ps.Append(buf);
  }
  return ps;
}

TEST(KdTreeMetricTest, MatchesBruteForceForAllMetrics) {
  PointSet ps = RandomPoints(800, 3, 3);
  data::KdTree tree(&ps);
  Rng rng(5);
  for (Metric metric : {Metric::kL2, Metric::kL1, Metric::kLinf}) {
    for (int q = 0; q < 20; ++q) {
      double query[3] = {rng.NextDouble(), rng.NextDouble(),
                         rng.NextDouble()};
      PointView p(query, 3);
      for (double radius : {0.05, 0.2}) {
        std::vector<int64_t> got =
            tree.WithinRadiusMetric(p, radius, metric);
        std::sort(got.begin(), got.end());
        std::vector<int64_t> want;
        for (int64_t i = 0; i < ps.size(); ++i) {
          if (data::Distance(p, ps[i], metric) <= radius) {
            want.push_back(i);
          }
        }
        EXPECT_EQ(got, want) << "metric=" << static_cast<int>(metric)
                             << " r=" << radius;
        EXPECT_EQ(tree.CountWithinRadiusMetric(p, radius, metric),
                  static_cast<int64_t>(want.size()));
      }
    }
  }
}

TEST(KdTreeMetricTest, CapAbortsEarly) {
  PointSet ps = RandomPoints(2000, 2, 7);
  data::KdTree tree(&ps);
  double q[2] = {0.5, 0.5};
  PointView p(q, 2);
  int64_t full = tree.CountWithinRadiusMetric(p, 0.3, Metric::kL1);
  ASSERT_GT(full, 20);
  EXPECT_EQ(tree.CountWithinRadiusMetric(p, 0.3, Metric::kL1, 10), 11);
}

TEST(ExactDetectorMetricTest, MetricChangesTheNeighborhood) {
  // Points on the axes at distance 0.09: inside an L1 ball of radius 0.1,
  // inside the L2 ball too, and inside the Linf cube. A diagonal point at
  // (0.07, 0.07): L1 distance 0.14 (outside), L2 ~0.099 (inside),
  // Linf 0.07 (inside). So the center's neighbor count depends on metric.
  PointSet ps(2, {0.0,  0.0,    // center
                  0.09, 0.0,    // axis neighbor
                  0.07, 0.07,   // diagonal point
                  5.0,  5.0});  // far away
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 1;

  params.metric = Metric::kL1;
  auto l1 = DetectOutliersNestedLoop(ps, params);
  ASSERT_TRUE(l1.ok());
  // L1 neighborhoods of radius 0.1: center <-> axis at 0.09 (neighbors),
  // axis <-> diagonal at |0.09-0.07|+0.07 = 0.09 (neighbors), but center
  // <-> diagonal at 0.14 (not). So the axis point has 2 neighbors (> p=1,
  // not an outlier) while center and diagonal have 1 each.
  EXPECT_EQ(l1->outlier_indices, (std::vector<int64_t>{0, 2, 3}));

  params.metric = Metric::kL2;
  auto l2 = DetectOutliersNestedLoop(ps, params);
  ASSERT_TRUE(l2.ok());
  // Under L2 the center sees BOTH near points (2 > 1): not an outlier.
  std::set<int64_t> l2_set(l2->outlier_indices.begin(),
                           l2->outlier_indices.end());
  EXPECT_FALSE(l2_set.count(0));

  params.metric = Metric::kLinf;
  auto linf = DetectOutliersNestedLoop(ps, params);
  ASSERT_TRUE(linf.ok());
  std::set<int64_t> linf_set(linf->outlier_indices.begin(),
                             linf->outlier_indices.end());
  EXPECT_FALSE(linf_set.count(0));
}

TEST(ExactDetectorMetricTest, KdTreeMatchesNestedLoopAllMetrics) {
  PointSet ps = RandomPoints(500, 2, 11);
  for (Metric metric : {Metric::kL1, Metric::kLinf}) {
    DbOutlierParams params;
    params.radius = 0.03;
    params.max_neighbors = 2;
    params.metric = metric;
    auto a = DetectOutliersExact(ps, params);
    auto b = DetectOutliersNestedLoop(ps, params);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->outlier_indices, b->outlier_indices);
    EXPECT_EQ(a->neighbor_counts, b->neighbor_counts);
  }
}

TEST(BallVolumeMetricTest, KnownVolumes) {
  // L1 ball (cross-polytope): 2D diamond of "radius" r has area 2 r^2.
  EXPECT_NEAR(CrossPolytopeVolume(2, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(CrossPolytopeVolume(3, 1.0), 8.0 / 6.0, 1e-12);
  // Relative ordering for a fixed radius: cube > L2 ball > cross-polytope.
  for (int d = 2; d <= 5; ++d) {
    EXPECT_GT(CubeVolume(d, 1.0), BallVolume(d, 1.0));
    EXPECT_GT(BallVolume(d, 1.0), CrossPolytopeVolume(d, 1.0));
  }
}

TEST(BallIntegratorMetricTest, QmcEstimatesUniformMassInEachBallShape) {
  // Uniform data: the integral over a ball of any shape ~ n * volume.
  PointSet ps = RandomPoints(30000, 2, 13);
  density::KdeOptions opts;
  opts.num_kernels = 400;
  auto kde = density::Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  double q[2] = {0.5, 0.5};
  PointView p(q, 2);
  const double r = 0.1;
  struct Case {
    Metric metric;
    double volume;
  };
  for (const Case& c : {Case{Metric::kL2, M_PI * r * r},
                        Case{Metric::kL1, 2 * r * r},
                        Case{Metric::kLinf, 4 * r * r}}) {
    BallIntegrator qmc(BallIntegration::kQuasiMonteCarlo, 2, 256, c.metric);
    double integral = qmc.Integrate(*kde, p, r);
    double truth = 30000.0 * c.volume;
    EXPECT_NEAR(integral, truth, 0.25 * truth)
        << "metric=" << static_cast<int>(c.metric);
  }
}

TEST(KdeDetectorMetricTest, FindsPlantedOutliersUnderL1AndLinf) {
  Rng rng(17);
  PointSet ps(2);
  for (int i = 0; i < 6000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.4, 0.6),
                                  rng.NextDouble(0.4, 0.6)});
  }
  std::vector<int64_t> planted;
  for (int i = 0; i < 6; ++i) {
    double angle = 2.0 * M_PI * i / 6;
    planted.push_back(ps.size());
    ps.Append(std::vector<double>{0.5 + 2.0 * std::cos(angle),
                                  0.5 + 2.0 * std::sin(angle)});
  }
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 300;
  kde_opts.bandwidth_scale = 0.3;
  auto kde = density::Kde::Fit(ps, kde_opts);
  ASSERT_TRUE(kde.ok());

  for (Metric metric : {Metric::kL1, Metric::kLinf}) {
    DbOutlierParams params;
    params.radius = 0.08;
    params.max_neighbors = 4;
    params.metric = metric;
    KdeDetectorOptions options;
    options.candidate_slack = 5.0;
    auto approx = DetectOutliersApproximate(ps, *kde, params, options);
    auto exact = DetectOutliersExact(ps, params);
    ASSERT_TRUE(approx.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_EQ(approx->outlier_indices, exact->outlier_indices)
        << "metric=" << static_cast<int>(metric);
    std::set<int64_t> found(approx->outlier_indices.begin(),
                            approx->outlier_indices.end());
    for (int64_t idx : planted) EXPECT_TRUE(found.count(idx));
  }
}

}  // namespace
}  // namespace dbs::outlier
