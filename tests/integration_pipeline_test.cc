// End-to-end integration tests: small-scale versions of the paper's
// experiments, exercising the full module stack (synth -> density -> core
// -> cluster/outlier -> eval) the way the bench harness does, but sized to
// run in milliseconds so regressions in any cross-module contract surface
// in the unit suite.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "cluster/birch.h"
#include "cluster/dbscan.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "core/biased_sampler.h"
#include "core/grid_biased_sampler.h"
#include "core/tuning.h"
#include "data/dataset_io.h"
#include "density/grid_density.h"
#include "density/kde.h"
#include "eval/cluster_match.h"
#include "outlier/exact_detector.h"
#include "outlier/kde_detector.h"
#include "sampling/uniform_sampler.h"
#include "synth/cure_dataset.h"
#include "synth/generator.h"
#include "synth/geo.h"
#include "synth/outlier_planting.h"
#include "util/rng.h"

namespace dbs {
namespace {

synth::ClusteredDataset MakeNoisy(double noise, double size_ratio,
                                  uint64_t seed, int dim = 2) {
  synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 5;
  opts.num_cluster_points = 20000;
  opts.size_ratio = size_ratio;
  opts.noise_multiplier = noise;
  opts.seed = seed;
  auto ds = synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds).value();
}

int BiasedPipelineFound(const synth::ClusteredDataset& ds, double a,
                        int64_t sample_size, double bandwidth_scale,
                        uint64_t seed) {
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 400;
  kde_opts.bandwidth_scale = bandwidth_scale;
  kde_opts.seed = seed;
  auto kde = density::Kde::Fit(ds.points, kde_opts);
  DBS_CHECK(kde.ok());
  core::BiasedSamplerOptions sampler_opts;
  sampler_opts.a = a;
  sampler_opts.target_size = sample_size;
  sampler_opts.seed = seed + 1;
  auto sample = core::BiasedSampler(sampler_opts).Run(ds.points, *kde);
  DBS_CHECK(sample.ok());
  cluster::HierarchicalOptions cluster_opts;
  cluster_opts.num_clusters = ds.truth.num_true_clusters();
  auto clustering = cluster::HierarchicalCluster(sample->points,
                                                 cluster_opts);
  DBS_CHECK(clustering.ok());
  return eval::MatchClusters(*clustering, ds.truth).num_found();
}

TEST(IntegrationTest, NoisePipelineBiasedBeatsUniform) {
  // Miniature Fig 4: at 60% noise and a 2.5% sample, a=1 biased sampling
  // keeps the clusters; uniform sampling loses most of them.
  synth::ClusteredDataset ds = MakeNoisy(0.6, 1.0, 11);
  int64_t sample_size = ds.points.size() / 40;

  int biased = BiasedPipelineFound(ds, 1.0, sample_size, 0.3, 21);
  EXPECT_GE(biased, 4);

  sampling::BernoulliSampleOptions uni_opts;
  uni_opts.target_size = sample_size;
  uni_opts.seed = 22;
  auto uniform = sampling::BernoulliSample(ds.points, uni_opts);
  ASSERT_TRUE(uniform.ok());
  cluster::HierarchicalOptions cluster_opts;
  cluster_opts.num_clusters = 5;
  auto clustering = cluster::HierarchicalCluster(*uniform, cluster_opts);
  ASSERT_TRUE(clustering.ok());
  int uniform_found =
      eval::MatchClusters(*clustering, ds.truth).num_found();
  EXPECT_GT(biased, uniform_found);
}

TEST(IntegrationTest, VariableDensityPipelineNegativeExponent) {
  // Miniature Fig 5: 10x density spread, small sample, a=-0.5 with the
  // smooth bandwidth regime recovers the clusters.
  synth::ClusteredDataset ds = MakeNoisy(0.1, 10.0, 13);
  int found = BiasedPipelineFound(ds, -0.5, 400, 1.0, 23);
  EXPECT_GE(found, 4);
}

TEST(IntegrationTest, CureDataset1Pipeline) {
  synth::CureDatasetOptions opts;
  opts.num_points = 30000;
  // The bench uses the hard default gaps to place the uniform/biased
  // crossover; the miniature integration check relaxes them so it stays
  // robust at 30% of the bench's scale.
  opts.ellipse_gap = 0.08;
  opts.circle_gap = 0.08;
  opts.seed = 3;
  auto ds = synth::MakeCureDataset1(opts);
  ASSERT_TRUE(ds.ok());
  int found = BiasedPipelineFound(*ds, 0.5, 800, 0.3, 25);
  EXPECT_EQ(found, 5);
}

TEST(IntegrationTest, GeoPipelineFindsMetros) {
  synth::GeoDatasetOptions opts;
  opts.num_points = 40000;
  opts.seed = 5;
  auto ds = synth::MakeNorthEastLike(opts);
  ASSERT_TRUE(ds.ok());
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 500;
  kde_opts.bandwidth_scale = 0.3;
  auto kde = density::Kde::Fit(ds->points, kde_opts);
  ASSERT_TRUE(kde.ok());
  core::BiasedSamplerOptions sampler_opts;
  sampler_opts.a = 1.0;
  sampler_opts.target_size = 500;
  auto sample = core::BiasedSampler(sampler_opts).Run(ds->points, *kde);
  ASSERT_TRUE(sample.ok());
  cluster::HierarchicalOptions cluster_opts;
  cluster_opts.num_clusters = 5;
  auto clustering = cluster::HierarchicalCluster(sample->points,
                                                 cluster_opts);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(eval::MatchClusters(*clustering, ds->truth).num_found(), 3);
}

TEST(IntegrationTest, BirchOnFullDataMatchesBudget) {
  synth::ClusteredDataset ds = MakeNoisy(0.1, 1.0, 17);
  cluster::BirchOptions opts;
  opts.num_clusters = 5;
  opts.tree.memory_budget_bytes = 16 * 1024;
  auto result = cluster::RunBirch(ds.points, opts);
  ASSERT_TRUE(result.ok());
  int found = eval::MatchBirchClusters(*result, ds.truth).num_found();
  EXPECT_GE(found, 3);
}

TEST(IntegrationTest, OutlierPipelineEndToEnd) {
  synth::ClusteredDataset ds = MakeNoisy(0.0, 1.0, 19);
  synth::OutlierPlantingOptions plant;
  plant.count = 8;
  plant.min_distance = 0.15;
  plant.domain_lo = {-0.5, -0.5};
  plant.domain_hi = {1.5, 1.5};
  plant.seed = 7;
  auto planted = synth::PlantOutliers(ds.points, plant);
  ASSERT_TRUE(planted.ok());

  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 400;
  kde_opts.bandwidth_scale = 0.25;
  auto kde = density::Kde::Fit(ds.points, kde_opts);
  ASSERT_TRUE(kde.ok());

  outlier::DbOutlierParams params;
  params.radius = 0.05;
  params.max_neighbors = 3;
  outlier::KdeDetectorOptions detector_opts;
  detector_opts.candidate_slack = 5.0;

  data::InMemoryScan scan(&ds.points);
  auto approx = outlier::DetectOutliersApproximate(scan, *kde, params,
                                                   detector_opts);
  ASSERT_TRUE(approx.ok());
  auto exact = outlier::DetectOutliersExact(ds.points, params);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(approx->outlier_indices, exact->outlier_indices);
  EXPECT_LE(scan.passes(), 2);
  std::set<int64_t> found(approx->outlier_indices.begin(),
                          approx->outlier_indices.end());
  for (int64_t idx : *planted) EXPECT_TRUE(found.count(idx));
}

TEST(IntegrationTest, OutOfCorePipelineViaDatasetFile) {
  // The same biased-sampling pipeline, but streaming from disk: fit on a
  // FileScan, normalize and sample on the same FileScan, never holding the
  // dataset in memory. Exactly 3 passes total (fit + normalize + sample).
  synth::ClusteredDataset ds = MakeNoisy(0.2, 1.0, 23);
  std::string path = std::string(::testing::TempDir()) + "/pipeline.dbsf";
  ASSERT_TRUE(data::WriteDatasetFile(path, ds.points).ok());

  auto scan_result = data::FileScan::Open(path, 1000);
  ASSERT_TRUE(scan_result.ok());
  data::FileScan& scan = **scan_result;

  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 300;
  kde_opts.bandwidth_scale = 0.3;
  auto kde = density::Kde::Fit(scan, kde_opts);
  ASSERT_TRUE(kde.ok());
  EXPECT_EQ(scan.passes(), 1);

  core::BiasedSamplerOptions sampler_opts;
  sampler_opts.a = 1.0;
  sampler_opts.target_size = 600;
  auto sample = core::BiasedSampler(sampler_opts).Run(scan, *kde);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(scan.passes(), 3);
  EXPECT_NEAR(static_cast<double>(sample->size()), 600.0, 120.0);

  cluster::HierarchicalOptions cluster_opts;
  cluster_opts.num_clusters = 5;
  auto clustering = cluster::HierarchicalCluster(sample->points,
                                                 cluster_opts);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GE(eval::MatchClusters(*clustering, ds.truth).num_found(), 4);
  std::remove(path.c_str());
}

TEST(IntegrationTest, GridSamplerPipeline) {
  // The [22]-style comparator end to end. Run WITHOUT noise: in low
  // dimensions a fine grid gives singleton noise cells an n_c^(e-1) = 1
  // boost that dwarfs every cluster cell, so noisy 2-D data drowns the
  // sample in noise — exactly the weakness the paper reports for the
  // grid-based method ("works well in lower dimensions and no noise").
  synth::ClusteredDataset ds = MakeNoisy(0.0, 10.0, 29);
  density::GridDensityOptions grid_opts;
  grid_opts.cells_per_dim = 48;
  auto grid = density::GridDensity::Fit(ds.points, grid_opts);
  ASSERT_TRUE(grid.ok());
  core::GridBiasedSamplerOptions sampler_opts;
  sampler_opts.e = -0.5;
  sampler_opts.target_size = 600;
  auto sample = core::GridBiasedSampler(sampler_opts).Run(ds.points, *grid);
  ASSERT_TRUE(sample.ok());
  cluster::HierarchicalOptions cluster_opts;
  cluster_opts.num_clusters = 5;
  auto clustering = cluster::HierarchicalCluster(sample->points,
                                                 cluster_opts);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GE(eval::MatchClusters(*clustering, ds.truth).num_found(), 4);
}

TEST(IntegrationTest, DbscanOnBiasedSampleUnderNoise) {
  // a = 1 suppresses noise in the sample, so DBSCAN's absolute density
  // threshold separates the clusters cleanly even though the RAW data has
  // 60% noise. The epsilon is set from the sample geometry: ~2.5x the
  // expected in-cluster sample spacing.
  synth::ClusteredDatasetOptions data_opts;
  data_opts.num_clusters = 5;
  data_opts.num_cluster_points = 20000;
  // Similar extents keep the a=1 sample from concentrating in one
  // (denser) box, which would starve the others below DBSCAN's density
  // threshold.
  data_opts.min_extent = 0.10;
  data_opts.max_extent = 0.16;
  data_opts.noise_multiplier = 0.6;
  data_opts.seed = 43;
  auto ds_result = synth::MakeClusteredDataset(data_opts);
  ASSERT_TRUE(ds_result.ok());
  synth::ClusteredDataset& ds = *ds_result;
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 400;
  kde_opts.bandwidth_scale = 0.3;
  auto kde = density::Kde::Fit(ds.points, kde_opts);
  ASSERT_TRUE(kde.ok());
  core::BiasedSamplerOptions sampler_opts;
  sampler_opts.a = 1.0;
  sampler_opts.target_size = 1000;
  auto sample = core::BiasedSampler(sampler_opts).Run(ds.points, *kde);
  ASSERT_TRUE(sample.ok());

  cluster::DbscanOptions dbscan_opts;
  dbscan_opts.epsilon = 0.035;
  dbscan_opts.min_points = 4;
  auto clustering = cluster::DbscanCluster(sample->points, dbscan_opts);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GE(eval::MatchClusters(*clustering, ds.truth).num_found(), 4);
}

TEST(IntegrationTest, WeightedKMeansOnBiasedSampleIsUnbiased) {
  // §3.1: weighting sample points by inverse inclusion probability makes
  // k-means on the sample estimate the full-data centroids. One elongated
  // density gradient cluster: an UNWEIGHTED biased sample (a=1) drags the
  // 1-means center toward the dense end; weights correct it.
  Rng rng(31);
  data::PointSet points(1);
  // Density rises linearly across [0, 1]: P(x) ~ x.
  for (int i = 0; i < 40000; ++i) {
    double x = std::sqrt(rng.NextDouble());
    points.Append(&x);
  }
  double true_mean = 0;
  for (int64_t i = 0; i < points.size(); ++i) true_mean += points[i][0];
  true_mean /= static_cast<double>(points.size());

  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 400;
  auto kde = density::Kde::Fit(points, kde_opts);
  ASSERT_TRUE(kde.ok());
  core::BiasedSamplerOptions sampler_opts;
  sampler_opts.a = 1.0;
  sampler_opts.target_size = 4000;
  auto sample = core::BiasedSampler(sampler_opts).Run(points, *kde);
  ASSERT_TRUE(sample.ok());

  cluster::KMeansOptions km;
  km.num_clusters = 1;
  auto unweighted = cluster::KMeansCluster(sample->points, {}, km);
  auto weighted =
      cluster::KMeansCluster(sample->points, sample->Weights(), km);
  ASSERT_TRUE(unweighted.ok());
  ASSERT_TRUE(weighted.ok());
  double unweighted_err =
      std::abs(unweighted->clustering.clusters[0].centroid[0] - true_mean);
  double weighted_err =
      std::abs(weighted->clustering.clusters[0].centroid[0] - true_mean);
  // The biased sample noticeably shifts the unweighted mean; the weighted
  // mean lands close to the truth.
  EXPECT_GT(unweighted_err, 2 * weighted_err);
  EXPECT_LT(weighted_err, 0.02);
}

TEST(IntegrationTest, OnePassPipelineMatchesTwoPassQuality) {
  synth::ClusteredDataset ds = MakeNoisy(0.3, 1.0, 37);
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 400;
  kde_opts.bandwidth_scale = 0.3;
  auto kde = density::Kde::Fit(ds.points, kde_opts);
  ASSERT_TRUE(kde.ok());
  core::BiasedSamplerOptions sampler_opts;
  sampler_opts.a = 1.0;
  sampler_opts.target_size = 600;
  core::BiasedSampler sampler(sampler_opts);
  auto one_pass = sampler.RunOnePass(ds.points, *kde);
  ASSERT_TRUE(one_pass.ok());
  cluster::HierarchicalOptions cluster_opts;
  cluster_opts.num_clusters = 5;
  auto clustering = cluster::HierarchicalCluster(one_pass->points,
                                                 cluster_opts);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GE(eval::MatchClusters(*clustering, ds.truth).num_found(), 4);
}

TEST(IntegrationTest, TuningPresetsDriveTheRightPipelines) {
  // The practitioner-guide presets produce working configurations.
  synth::ClusteredDataset noisy = MakeNoisy(0.5, 1.0, 41);
  auto opts = core::RecommendedOptions(
      core::SamplingGoal::kDenseClustersUnderNoise, noisy.points.size(), 1);
  EXPECT_EQ(opts.a, 1.0);
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = core::RecommendedNumKernels();
  kde_opts.bandwidth_scale = 0.3;
  auto kde = density::Kde::Fit(noisy.points, kde_opts);
  ASSERT_TRUE(kde.ok());
  auto sample = core::BiasedSampler(opts).Run(noisy.points, *kde);
  ASSERT_TRUE(sample.ok());
  cluster::HierarchicalOptions cluster_opts;
  cluster_opts.num_clusters = 5;
  auto clustering = cluster::HierarchicalCluster(sample->points,
                                                 cluster_opts);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GE(eval::MatchClusters(*clustering, noisy.truth).num_found(), 4);
}

}  // namespace
}  // namespace dbs
