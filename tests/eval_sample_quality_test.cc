#include "eval/sample_quality.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/biased_sampler.h"
#include "data/point_set.h"
#include "density/kde.h"
#include "util/rng.h"

namespace dbs::eval {
namespace {

using core::BiasedSample;
using data::PointSet;

BiasedSample MakeSample(const std::vector<double>& probs,
                        const std::vector<double>& densities) {
  BiasedSample sample;
  sample.points = PointSet(1);
  for (size_t i = 0; i < probs.size(); ++i) {
    double x = static_cast<double>(i);
    sample.points.Append(&x);
  }
  sample.inclusion_probs = probs;
  sample.densities = densities;
  return sample;
}

TEST(EffectiveSampleSizeTest, EqualWeightsGiveFullSize) {
  BiasedSample sample =
      MakeSample({0.1, 0.1, 0.1, 0.1}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(EffectiveSampleSize(sample), 4.0, 1e-12);
}

TEST(EffectiveSampleSizeTest, SkewedWeightsShrinkIt) {
  // One point with weight 100, three with weight 1:
  // n_eff = 103^2 / (10000 + 3) ~ 1.06.
  BiasedSample sample =
      MakeSample({0.01, 1.0, 1.0, 1.0}, {1.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(EffectiveSampleSize(sample), 103.0 * 103.0 / 10003.0, 1e-9);
  EXPECT_LT(EffectiveSampleSize(sample), 2.0);
}

TEST(EffectiveSampleSizeTest, EmptySampleIsZero) {
  BiasedSample sample;
  EXPECT_EQ(EffectiveSampleSize(sample), 0.0);
}

TEST(DecileSharesTest, UniformProbabilitiesGiveUniformWeightedShares) {
  std::vector<double> probs(100, 0.05);
  std::vector<double> densities(100);
  for (int i = 0; i < 100; ++i) densities[i] = i;
  BiasedSample sample = MakeSample(probs, densities);
  DecileShares shares = DensityDecileShares(sample);
  ASSERT_EQ(shares.weighted_share.size(), 10u);
  for (int d = 0; d < 10; ++d) {
    EXPECT_NEAR(shares.unweighted_share[d], 0.1, 1e-12);
    EXPECT_NEAR(shares.weighted_share[d], 0.1, 1e-12);
  }
  // Boundaries are the decile maxima of the densities.
  EXPECT_EQ(shares.density_boundaries[0], 9.0);
  EXPECT_EQ(shares.density_boundaries[9], 99.0);
}

TEST(DecileSharesTest, WeightsUndoDensityBias) {
  // Densities 1..100; inclusion probability proportional to density (a=1).
  // Unweighted: the top decile holds 10% of POINTS but the weighted shares
  // must be ~uniform in... no: weights 1/p reweight toward LOW densities.
  // The weighted share of decile d is (count * 1/p_d) which is largest for
  // the lowest decile; verify monotone decrease.
  std::vector<double> probs(100);
  std::vector<double> densities(100);
  for (int i = 0; i < 100; ++i) {
    densities[i] = 1.0 + i;
    probs[i] = densities[i] / 200.0;
  }
  BiasedSample sample = MakeSample(probs, densities);
  DecileShares shares = DensityDecileShares(sample);
  for (int d = 1; d < 10; ++d) {
    EXPECT_LT(shares.weighted_share[d], shares.weighted_share[d - 1]);
  }
}

TEST(ClusterMassFractionTest, ThresholdSplitsTheMass) {
  // Two densities: 90 points at density 1 (prob .1 -> weight 10 each) and
  // 10 at density 10 (prob 1 -> weight 1 each). Estimated dataset mass:
  // 900 light + 10 dense = 910; dense fraction 10/910.
  std::vector<double> probs;
  std::vector<double> densities;
  for (int i = 0; i < 90; ++i) {
    probs.push_back(0.1);
    densities.push_back(1.0);
  }
  for (int i = 0; i < 10; ++i) {
    probs.push_back(1.0);
    densities.push_back(10.0);
  }
  BiasedSample sample = MakeSample(probs, densities);
  EXPECT_NEAR(EstimatedClusterMassFraction(sample, 5.0), 10.0 / 910.0,
              1e-12);
  EXPECT_EQ(EstimatedClusterMassFraction(sample, 100.0), 0.0);
  EXPECT_EQ(EstimatedClusterMassFraction(sample, 0.5), 1.0);
}

TEST(SampleQualityIntegrationTest, RealPipelineDiagnostics) {
  // Clustered data: ~2/3 of the mass sits in dense boxes. The diagnostics
  // from an a=1 sample must (a) estimate that mass fraction, (b) report a
  // reasonable effective sample size.
  Rng rng(3);
  PointSet ps(2);
  for (int i = 0; i < 20000; ++i) {  // dense block, density 500k/unit^2
    ps.Append(std::vector<double>{rng.NextDouble(0.1, 0.3),
                                  rng.NextDouble(0.1, 0.3)});
  }
  for (int i = 0; i < 10000; ++i) {  // background, density ~10k
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 400;
  kde_opts.bandwidth_scale = 0.3;
  auto kde = density::Kde::Fit(ps, kde_opts);
  ASSERT_TRUE(kde.ok());
  core::BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 1500;
  auto sample = core::BiasedSampler(opts).Run(ps, *kde);
  ASSERT_TRUE(sample.ok());

  // (a) mass denser than 2x average: the dense block holds ~2/3 + the
  // noise that overlaps it.
  double fraction =
      EstimatedClusterMassFraction(*sample, 2.0 * kde->AverageDensity());
  EXPECT_GT(fraction, 0.5);
  EXPECT_LT(fraction, 0.85);

  // (b) effective size: positive, at most the actual size, and not
  // degenerate (the two-tier density keeps weights within ~50x).
  double n_eff = EffectiveSampleSize(*sample);
  EXPECT_GT(n_eff, static_cast<double>(sample->size()) / 20.0);
  EXPECT_LE(n_eff, static_cast<double>(sample->size()) * 1.0001);

  // (c) decile shares: unweighted shares sum to 1, weighted shares sum to
  // 1 and put more mass on the low-density deciles than the unweighted.
  DecileShares shares = DensityDecileShares(*sample);
  double unweighted_sum = 0;
  double weighted_sum = 0;
  for (int d = 0; d < 10; ++d) {
    unweighted_sum += shares.unweighted_share[d];
    weighted_sum += shares.weighted_share[d];
  }
  EXPECT_NEAR(unweighted_sum, 1.0, 1e-9);
  EXPECT_NEAR(weighted_sum, 1.0, 1e-9);
  EXPECT_GT(shares.weighted_share[0], shares.unweighted_share[0]);
}

}  // namespace
}  // namespace dbs::eval
