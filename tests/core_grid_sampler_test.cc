#include "core/grid_biased_sampler.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dbs::core {
namespace {

using data::PointSet;
using data::PointView;

PointSet DenseSparsePair(int64_t n_dense, int64_t n_sparse, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(2);
  for (int64_t i = 0; i < n_dense; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.1, 0.2),
                                  rng.NextDouble(0.1, 0.2)});
  }
  for (int64_t i = 0; i < n_sparse; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.6, 0.95),
                                  rng.NextDouble(0.6, 0.95)});
  }
  return ps;
}

density::GridDensity FitGrid(const PointSet& ps) {
  density::GridDensityOptions opts;
  opts.cells_per_dim = 32;
  opts.bounds = data::BoundingBox({0.0, 0.0}, {1.0, 1.0});
  auto grid = density::GridDensity::Fit(ps, opts);
  DBS_CHECK(grid.ok());
  return std::move(grid).value();
}

TEST(GridBiasedSamplerTest, RejectsBadArguments) {
  PointSet ps = DenseSparsePair(1000, 100, 1);
  density::GridDensity grid = FitGrid(ps);
  GridBiasedSamplerOptions bad;
  bad.target_size = 0;
  EXPECT_FALSE(GridBiasedSampler(bad).Run(ps, grid).ok());

  PointSet empty(2);
  GridBiasedSamplerOptions opts;
  EXPECT_FALSE(GridBiasedSampler(opts).Run(empty, grid).ok());
}

TEST(GridBiasedSamplerTest, UnitExponentIsUniform) {
  // e = 1: per-point probability b * n_g^0 / sum n_g = b / n for every
  // point, i.e. uniform sampling.
  PointSet ps = DenseSparsePair(5000, 5000, 2);
  density::GridDensity grid = FitGrid(ps);
  GridBiasedSamplerOptions opts;
  opts.e = 1.0;
  opts.target_size = 500;
  auto s = GridBiasedSampler(opts).Run(ps, grid);
  ASSERT_TRUE(s.ok());
  for (double p : s->inclusion_probs) {
    EXPECT_NEAR(p, 500.0 / 10000.0, 1e-12);
  }
}

TEST(GridBiasedSamplerTest, ExpectedSizeIsTarget) {
  PointSet ps = DenseSparsePair(8000, 2000, 3);
  density::GridDensity grid = FitGrid(ps);
  for (double e : {-0.5, 0.0, 0.5, 1.0}) {
    dbs::OnlineMoments sizes;
    for (uint64_t seed = 0; seed < 6; ++seed) {
      GridBiasedSamplerOptions opts;
      opts.e = e;
      opts.target_size = 600;
      opts.seed = seed;
      auto s = GridBiasedSampler(opts).Run(ps, grid);
      ASSERT_TRUE(s.ok());
      sizes.Add(static_cast<double>(s->size()));
    }
    EXPECT_NEAR(sizes.mean(), 600.0, 75.0) << "e=" << e;
  }
}

TEST(GridBiasedSamplerTest, NegativeExponentBoostsSparseCells) {
  PointSet ps = DenseSparsePair(9000, 1000, 4);
  density::GridDensity grid = FitGrid(ps);
  GridBiasedSamplerOptions opts;
  opts.e = -0.5;
  opts.target_size = 1000;
  auto s = GridBiasedSampler(opts).Run(ps, grid);
  ASSERT_TRUE(s.ok());
  int64_t sparse = 0;
  for (int64_t i = 0; i < s->size(); ++i) {
    if (s->points[i][0] > 0.5) ++sparse;
  }
  double sparse_frac =
      static_cast<double>(sparse) / static_cast<double>(s->size());
  // Sparse region holds 10% of the data but must dominate the sample.
  EXPECT_GT(sparse_frac, 0.5);
}

TEST(GridBiasedSamplerTest, CollisionsDegradeTheBias) {
  // With a starved hash budget, dense and sparse cells merge, so the
  // sparse-region boost weakens relative to an exact grid. This is the
  // degradation the paper reports for [22].
  PointSet ps = DenseSparsePair(9000, 1000, 5);

  density::GridDensityOptions exact_opts;
  exact_opts.cells_per_dim = 32;
  exact_opts.bounds = data::BoundingBox({0.0, 0.0}, {1.0, 1.0});
  auto exact = density::GridDensity::Fit(ps, exact_opts);
  ASSERT_TRUE(exact.ok());
  ASSERT_FALSE(exact->hashed());

  density::GridDensityOptions tight_opts = exact_opts;
  tight_opts.memory_budget_bytes = 64 * 8;  // 64 buckets for 1024 cells
  auto tight = density::GridDensity::Fit(ps, tight_opts);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(tight->hashed());

  auto sparse_fraction = [&](const density::GridDensity& grid,
                             uint64_t seed) {
    GridBiasedSamplerOptions opts;
    opts.e = -0.5;
    opts.target_size = 800;
    opts.seed = seed;
    auto s = GridBiasedSampler(opts).Run(ps, grid);
    DBS_CHECK(s.ok());
    int64_t sparse = 0;
    for (int64_t i = 0; i < s->size(); ++i) {
      if (s->points[i][0] > 0.5) ++sparse;
    }
    return static_cast<double>(sparse) / static_cast<double>(s->size());
  };

  dbs::OnlineMoments exact_frac;
  dbs::OnlineMoments tight_frac;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    exact_frac.Add(sparse_fraction(*exact, seed));
    tight_frac.Add(sparse_fraction(*tight, seed));
  }
  EXPECT_GT(exact_frac.mean(), tight_frac.mean());
}

TEST(GridBiasedSamplerTest, WeightsEstimateDatasetSize) {
  PointSet ps = DenseSparsePair(7000, 3000, 6);
  density::GridDensity grid = FitGrid(ps);
  GridBiasedSamplerOptions opts;
  opts.e = -0.5;
  opts.target_size = 800;
  dbs::OnlineMoments est;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    opts.seed = seed;
    auto s = GridBiasedSampler(opts).Run(ps, grid);
    ASSERT_TRUE(s.ok());
    est.Add(s->EstimatedDatasetSize());
  }
  EXPECT_NEAR(est.mean(), 10000.0, 1200.0);
}

TEST(GridBiasedSamplerTest, SamplingIsOnePass) {
  PointSet ps = DenseSparsePair(2000, 500, 7);
  density::GridDensity grid = FitGrid(ps);
  data::InMemoryScan scan(&ps);
  GridBiasedSamplerOptions opts;
  opts.target_size = 200;
  auto s = GridBiasedSampler(opts).Run(scan, grid);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(scan.passes(), 1);
}

}  // namespace
}  // namespace dbs::core
