#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dbs {
namespace {

TEST(OnlineMomentsTest, EmptyAccumulator) {
  OnlineMoments m;
  EXPECT_EQ(m.count(), 0);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.sample_variance(), 0.0);
}

TEST(OnlineMomentsTest, SingleValue) {
  OnlineMoments m;
  m.Add(5.0);
  EXPECT_EQ(m.count(), 1);
  EXPECT_EQ(m.mean(), 5.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.sample_variance(), 0.0);
  EXPECT_EQ(m.min(), 5.0);
  EXPECT_EQ(m.max(), 5.0);
}

TEST(OnlineMomentsTest, KnownValues) {
  OnlineMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);
  EXPECT_NEAR(m.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(m.min(), 2.0);
  EXPECT_EQ(m.max(), 9.0);
}

TEST(OnlineMomentsTest, MergeMatchesSinglePass) {
  Rng rng(5);
  OnlineMoments whole;
  OnlineMoments a;
  OnlineMoments b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextGaussian(3.0, 2.0);
    whole.Add(x);
    (i < 400 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(OnlineMomentsTest, MergeWithEmpty) {
  OnlineMoments a;
  a.Add(1.0);
  a.Add(3.0);
  OnlineMoments empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  OnlineMoments c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(OnlineMomentsTest, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose all precision here.
  OnlineMoments m;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) m.Add(x);
  EXPECT_NEAR(m.sample_variance(), 1.0, 1e-6);
}

TEST(StatsFreeFunctionsTest, MeanAndStddev) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(SampleStddev({1.0}), 0.0);
  EXPECT_NEAR(SampleStddev({1.0, 2.0, 3.0}), 1.0, 1e-12);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0 / 3.0), 20.0);
}

TEST(PercentileTest, UnsortedInput) {
  std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
}

TEST(ChiSquareTest, ZeroForPerfectFit) {
  std::vector<double> obs{10, 20, 30};
  EXPECT_EQ(ChiSquareStatistic(obs, obs), 0.0);
}

TEST(ChiSquareTest, KnownStatistic) {
  std::vector<double> obs{12, 8};
  std::vector<double> exp{10, 10};
  EXPECT_DOUBLE_EQ(ChiSquareStatistic(obs, exp), 0.8);
}

TEST(ChiSquareTest, SkipsZeroExpectedBuckets) {
  std::vector<double> obs{12, 5};
  std::vector<double> exp{10, 0};
  EXPECT_DOUBLE_EQ(ChiSquareStatistic(obs, exp), 0.4);
}

TEST(ChiSquareTest, CriticalValuesAreSane) {
  // Reference chi-square 0.999 quantiles: dof=1 -> 10.83, dof=5 -> 20.52,
  // dof=10 -> 29.59. The Wilson-Hilferty approximation is good to ~2%.
  EXPECT_NEAR(ChiSquareCritical999(1), 10.83, 0.6);
  EXPECT_NEAR(ChiSquareCritical999(5), 20.52, 0.5);
  EXPECT_NEAR(ChiSquareCritical999(10), 29.59, 0.5);
  // Monotone in dof.
  for (int dof = 2; dof < 50; ++dof) {
    EXPECT_GT(ChiSquareCritical999(dof), ChiSquareCritical999(dof - 1));
  }
}

}  // namespace
}  // namespace dbs
