#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/distance.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::cluster {
namespace {

using data::PointSet;
using data::PointView;

PointSet Blobs(const std::vector<std::pair<double, double>>& centers,
               int64_t per_blob, double sigma, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(2);
  for (auto [cx, cy] : centers) {
    for (int64_t i = 0; i < per_blob; ++i) {
      ps.Append(std::vector<double>{rng.NextGaussian(cx, sigma),
                                    rng.NextGaussian(cy, sigma)});
    }
  }
  return ps;
}

TEST(KMeansTest, RejectsBadArguments) {
  PointSet ps(2, {0.0, 0.0, 1.0, 1.0});
  KMeansOptions bad;
  bad.num_clusters = 0;
  EXPECT_FALSE(KMeansCluster(ps, {}, bad).ok());

  KMeansOptions opts;
  EXPECT_FALSE(KMeansCluster(PointSet(2), {}, opts).ok());
  EXPECT_FALSE(KMeansCluster(ps, {1.0}, opts).ok());          // size mismatch
  EXPECT_FALSE(KMeansCluster(ps, {1.0, -1.0}, opts).ok());    // negative
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  PointSet ps = Blobs({{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}}, 200, 0.03, 1);
  KMeansOptions opts;
  opts.num_clusters = 3;
  auto result = KMeansCluster(ps, {}, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clustering.num_clusters(), 3);
  for (const Cluster& c : result->clustering.clusters) {
    EXPECT_EQ(c.members.size(), 200u);
  }
  // Centers land on the blob centers.
  std::vector<std::pair<double, double>> expected{{0.2, 0.2},
                                                  {0.8, 0.2},
                                                  {0.5, 0.8}};
  for (auto [ex, ey] : expected) {
    double best = 1e9;
    for (const Cluster& c : result->clustering.clusters) {
      double dx = c.centroid[0] - ex;
      double dy = c.centroid[1] - ey;
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
    EXPECT_LT(best, 0.02);
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  PointSet ps = Blobs({{0.2, 0.2}, {0.8, 0.8}}, 300, 0.1, 2);
  double prev = 1e18;
  for (int k : {1, 2, 4, 8}) {
    KMeansOptions opts;
    opts.num_clusters = k;
    opts.seed = 5;
    auto result = KMeansCluster(ps, {}, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->inertia, prev * 1.001);
    prev = result->inertia;
  }
}

TEST(KMeansTest, KLargerThanNClampsToN) {
  PointSet ps(2, {0.0, 0.0, 1.0, 1.0, 2.0, 2.0});
  KMeansOptions opts;
  opts.num_clusters = 10;
  auto result = KMeansCluster(ps, {}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters(), 3);
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, WeightsShiftCenters) {
  // Two points; weight one of them 9x: the 1-cluster center must sit at
  // the weighted mean.
  PointSet ps(1, {0.0, 1.0});
  KMeansOptions opts;
  opts.num_clusters = 1;
  auto result = KMeansCluster(ps, {9.0, 1.0}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->clustering.clusters[0].centroid[0], 0.1, 1e-9);
  EXPECT_NEAR(result->clustering.clusters[0].weight, 10.0, 1e-9);
}

TEST(KMeansTest, WeightedEqualsDuplicated) {
  // k-means on weighted points must produce the same centers as k-means on
  // a dataset with points physically duplicated by their weights.
  dbs::Rng rng(3);
  PointSet weighted(1);
  std::vector<double> weights;
  PointSet duplicated(1);
  for (int i = 0; i < 60; ++i) {
    double v = rng.NextDouble(0, 1) + (i % 2 == 0 ? 0.0 : 5.0);
    int w = 1 + static_cast<int>(rng.NextBounded(4));
    weighted.Append(&v);
    weights.push_back(static_cast<double>(w));
    for (int r = 0; r < w; ++r) duplicated.Append(&v);
  }
  KMeansOptions opts;
  opts.num_clusters = 2;
  opts.seed = 9;
  auto a = KMeansCluster(weighted, weights, opts);
  auto b = KMeansCluster(duplicated, {}, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The two well-separated groups give identical converged centers.
  std::vector<double> ca{a->clustering.clusters[0].centroid[0],
                         a->clustering.clusters[1].centroid[0]};
  std::vector<double> cb{b->clustering.clusters[0].centroid[0],
                         b->clustering.clusters[1].centroid[0]};
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  EXPECT_NEAR(ca[0], cb[0], 1e-6);
  EXPECT_NEAR(ca[1], cb[1], 1e-6);
}

TEST(KMeansTest, DeterministicPerSeed) {
  PointSet ps = Blobs({{0.3, 0.3}, {0.7, 0.7}}, 100, 0.05, 4);
  KMeansOptions opts;
  opts.num_clusters = 2;
  opts.seed = 42;
  auto a = KMeansCluster(ps, {}, opts);
  auto b = KMeansCluster(ps, {}, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->clustering.labels, b->clustering.labels);
  EXPECT_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, AllPointsIdentical) {
  PointSet ps(2);
  for (int i = 0; i < 50; ++i) ps.Append(std::vector<double>{0.5, 0.5});
  KMeansOptions opts;
  opts.num_clusters = 3;
  auto result = KMeansCluster(ps, {}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, ConvergesWithinIterationCap) {
  PointSet ps = Blobs({{0.2, 0.5}, {0.8, 0.5}}, 500, 0.08, 5);
  KMeansOptions opts;
  opts.num_clusters = 2;
  opts.max_iterations = 100;
  auto result = KMeansCluster(ps, {}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->iterations, 100);
}

}  // namespace
}  // namespace dbs::cluster
