#include "density/kde_io.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/biased_sampler.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::density {
namespace {

using data::PointSet;
using data::PointView;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

PointSet ClusteredData(uint64_t seed) {
  Rng rng(seed);
  PointSet ps(2);
  for (int i = 0; i < 4000; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.3, 0.05),
                                  rng.NextGaussian(0.3, 0.05)});
  }
  for (int i = 0; i < 2000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  return ps;
}

Kde FitExample(const PointSet& ps, KernelType kernel) {
  KdeOptions opts;
  opts.num_kernels = 250;
  opts.kernel = kernel;
  auto kde = Kde::Fit(ps, opts);
  DBS_CHECK(kde.ok());
  return std::move(kde).value();
}

TEST(KdeIoTest, RoundTripEvaluatesIdentically) {
  PointSet ps = ClusteredData(1);
  for (KernelType kernel :
       {KernelType::kEpanechnikov, KernelType::kGaussian}) {
    Kde original = FitExample(ps, kernel);
    std::string path = TempPath("model.dbsk");
    ASSERT_TRUE(SaveKde(original, path).ok());
    auto loaded = LoadKde(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->total_mass(), original.total_mass());
    EXPECT_EQ(loaded->num_kernels(), original.num_kernels());
    EXPECT_EQ(loaded->bandwidths(), original.bandwidths());
    Rng rng(9);
    for (int i = 0; i < 300; ++i) {
      double q[2] = {rng.NextDouble(-0.2, 1.2), rng.NextDouble(-0.2, 1.2)};
      PointView p(q, 2);
      EXPECT_DOUBLE_EQ(loaded->Evaluate(p), original.Evaluate(p));
      EXPECT_DOUBLE_EQ(loaded->EvaluateExcluding(p, p),
                       original.EvaluateExcluding(p, p));
    }
    std::remove(path.c_str());
  }
}

TEST(KdeIoTest, LoadedModelDrivesTheSampler) {
  PointSet ps = ClusteredData(2);
  Kde original = FitExample(ps, KernelType::kEpanechnikov);
  std::string path = TempPath("sampler_model.dbsk");
  ASSERT_TRUE(SaveKde(original, path).ok());
  auto loaded = LoadKde(path);
  ASSERT_TRUE(loaded.ok());
  core::BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 400;
  opts.seed = 3;
  auto from_original = core::BiasedSampler(opts).Run(ps, original);
  auto from_loaded = core::BiasedSampler(opts).Run(ps, *loaded);
  ASSERT_TRUE(from_original.ok());
  ASSERT_TRUE(from_loaded.ok());
  // Identical estimator + identical seed => identical sample.
  ASSERT_EQ(from_original->size(), from_loaded->size());
  EXPECT_EQ(from_original->inclusion_probs, from_loaded->inclusion_probs);
  std::remove(path.c_str());
}

TEST(KdeIoTest, IndexRebuildIsOptionalAndEquivalent) {
  PointSet ps = ClusteredData(3);
  Kde original = FitExample(ps, KernelType::kEpanechnikov);
  std::string path = TempPath("noindex.dbsk");
  ASSERT_TRUE(SaveKde(original, path).ok());
  auto no_index = LoadKde(path, /*rebuild_index=*/false);
  ASSERT_TRUE(no_index.ok());
  double q[2] = {0.31, 0.29};
  PointView p(q, 2);
  EXPECT_DOUBLE_EQ(no_index->Evaluate(p), original.Evaluate(p));
  std::remove(path.c_str());
}

TEST(KdeIoTest, MissingFileIsIoError) {
  auto result = LoadKde(TempPath("no_such_model.dbsk"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbs::StatusCode::kIoError);
}

TEST(KdeIoTest, GarbageFileIsRejected) {
  std::string path = TempPath("garbage.dbsk");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "model? what model? there is no model here at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto result = LoadKde(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(KdeIoTest, TruncatedFileIsIoError) {
  PointSet ps = ClusteredData(4);
  Kde original = FitExample(ps, KernelType::kEpanechnikov);
  std::string path = TempPath("truncated.dbsk");
  ASSERT_TRUE(SaveKde(original, path).ok());
  // Chop the file in half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  auto result = LoadKde(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbs::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(KdeStateTest, FromStateValidatesInputs) {
  PointSet ps = ClusteredData(5);
  Kde original = FitExample(ps, KernelType::kEpanechnikov);
  {
    Kde::State bad = original.ExportState();
    bad.n = 0;
    EXPECT_FALSE(Kde::FromState(std::move(bad)).ok());
  }
  {
    Kde::State bad = original.ExportState();
    bad.bandwidths.pop_back();
    EXPECT_FALSE(Kde::FromState(std::move(bad)).ok());
  }
  {
    Kde::State bad = original.ExportState();
    bad.bandwidths[0] = 0.0;
    EXPECT_FALSE(Kde::FromState(std::move(bad)).ok());
  }
  {
    Kde::State good = original.ExportState();
    auto kde = Kde::FromState(std::move(good));
    ASSERT_TRUE(kde.ok());
    double q[2] = {0.3, 0.3};
    EXPECT_DOUBLE_EQ(kde->Evaluate(PointView(q, 2)),
                     original.Evaluate(PointView(q, 2)));
  }
}

}  // namespace
}  // namespace dbs::density
