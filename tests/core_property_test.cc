// Property-style sweeps for the biased sampler: the paper's Property 1
// (inclusion probability is a function of local density only) and Property
// 2 (expected sample size b) must hold for EVERY combination of exponent
// and density-estimator backend, and the Horvitz-Thompson weighting must
// stay unbiased throughout.

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/biased_sampler.h"
#include "data/point_set.h"
#include "density/grid_density.h"
#include "density/histogram_density.h"
#include "density/kde.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dbs::core {
namespace {

using data::PointSet;

enum class Backend { kKde, kHistogram, kGrid };

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kKde:
      return "kde";
    case Backend::kHistogram:
      return "histogram";
    case Backend::kGrid:
      return "grid";
  }
  return "?";
}

PointSet MixedDensityData(uint64_t seed) {
  Rng rng(seed);
  PointSet ps(2);
  // Three density tiers plus background.
  for (int i = 0; i < 6000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.05, 0.25),
                                  rng.NextDouble(0.05, 0.25)});
  }
  for (int i = 0; i < 3000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.6, 0.9),
                                  rng.NextDouble(0.6, 0.9)});
  }
  for (int i = 0; i < 1000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  return ps;
}

std::unique_ptr<density::DensityEstimator> FitBackend(Backend backend,
                                                      const PointSet& ps) {
  switch (backend) {
    case Backend::kKde: {
      density::KdeOptions opts;
      opts.num_kernels = 400;
      auto kde = density::Kde::Fit(ps, opts);
      DBS_CHECK(kde.ok());
      return std::make_unique<density::Kde>(std::move(kde).value());
    }
    case Backend::kHistogram: {
      density::HistogramDensityOptions opts;
      opts.cells_per_dim = 24;
      auto hd = density::HistogramDensity::Fit(ps, opts);
      DBS_CHECK(hd.ok());
      return std::make_unique<density::HistogramDensity>(
          std::move(hd).value());
    }
    case Backend::kGrid: {
      density::GridDensityOptions opts;
      opts.cells_per_dim = 24;
      auto gd = density::GridDensity::Fit(ps, opts);
      DBS_CHECK(gd.ok());
      return std::make_unique<density::GridDensity>(std::move(gd).value());
    }
  }
  return nullptr;
}

class SamplerPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, Backend>> {};

TEST_P(SamplerPropertyTest, ExpectedSizeMatchesTarget) {
  auto [a, backend] = GetParam();
  PointSet ps = MixedDensityData(77);
  auto estimator = FitBackend(backend, ps);
  OnlineMoments sizes;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    BiasedSamplerOptions opts;
    opts.a = a;
    opts.target_size = 600;
    opts.seed = seed;
    auto sample = BiasedSampler(opts).Run(ps, *estimator);
    ASSERT_TRUE(sample.ok());
    sizes.Add(static_cast<double>(sample->size()));
  }
  EXPECT_NEAR(sizes.mean(), 600.0, 75.0)
      << "a=" << std::get<0>(GetParam()) << " backend="
      << BackendName(backend);
}

TEST_P(SamplerPropertyTest, HorvitzThompsonUnbiased) {
  auto [a, backend] = GetParam();
  PointSet ps = MixedDensityData(79);
  auto estimator = FitBackend(backend, ps);
  OnlineMoments estimates;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    BiasedSamplerOptions opts;
    opts.a = a;
    opts.target_size = 800;
    opts.seed = seed;
    auto sample = BiasedSampler(opts).Run(ps, *estimator);
    ASSERT_TRUE(sample.ok());
    estimates.Add(sample->EstimatedDatasetSize());
  }
  EXPECT_NEAR(estimates.mean(), 10000.0, 1500.0)
      << "backend=" << BackendName(backend);
}

TEST_P(SamplerPropertyTest, InclusionProbabilityDependsOnDensityOnly) {
  // Property 1: two points with (numerically) equal density estimates must
  // get identical inclusion probabilities.
  auto [a, backend] = GetParam();
  PointSet ps = MixedDensityData(81);
  auto estimator = FitBackend(backend, ps);
  BiasedSamplerOptions opts;
  opts.a = a;
  opts.target_size = 500;
  BiasedSampler sampler(opts);
  // Evaluate the helper directly across a density grid.
  for (double f : {10.0, 100.0, 1000.0, 10000.0}) {
    double p1 = sampler.InclusionProbability(f, 1e6);
    double p2 = sampler.InclusionProbability(f, 1e6);
    EXPECT_EQ(p1, p2);
  }
  // And monotonicity in density follows the sign of a.
  double lo = sampler.InclusionProbability(100.0, 1e6);
  double hi = sampler.InclusionProbability(10000.0, 1e6);
  if (a > 0) {
    EXPECT_LT(lo, hi);
  } else if (a < 0) {
    EXPECT_GT(lo, hi);
  } else {
    EXPECT_EQ(lo, hi);
  }
}

TEST_P(SamplerPropertyTest, DeterministicPerSeed) {
  auto [a, backend] = GetParam();
  PointSet ps = MixedDensityData(83);
  auto estimator = FitBackend(backend, ps);
  BiasedSamplerOptions opts;
  opts.a = a;
  opts.target_size = 300;
  opts.seed = 99;
  auto s1 = BiasedSampler(opts).Run(ps, *estimator);
  auto s2 = BiasedSampler(opts).Run(ps, *estimator);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s1->size(), s2->size());
  EXPECT_EQ(s1->inclusion_probs, s2->inclusion_probs);
}

INSTANTIATE_TEST_SUITE_P(
    ExponentsAndBackends, SamplerPropertyTest,
    ::testing::Combine(::testing::Values(-1.0, -0.5, -0.25, 0.0, 0.5, 1.0),
                       ::testing::Values(Backend::kKde, Backend::kHistogram,
                                         Backend::kGrid)),
    [](const auto& param_info) {
      double a = std::get<0>(param_info.param);
      std::string name = a < 0 ? "neg" : (a == 0 ? "zero" : "pos");
      name += std::to_string(static_cast<int>(std::abs(a) * 100));
      name += "_";
      name += BackendName(std::get<1>(param_info.param));
      return name;
    });

TEST(SamplerRegionMassTest, RelativeDensitiesPreservedForAGreaterMinusOne) {
  // Lemma 1 across backends: for a > -1, if region A is denser than region
  // B in the data, A remains denser IN THE SAMPLE (denser per unit volume
  // — counts may still favor the bigger region).
  PointSet ps = MixedDensityData(85);
  const double dense_area = 0.2 * 0.2;   // [0.05,0.25]^2
  const double sparse_area = 0.3 * 0.3;  // [0.6,0.9]^2
  for (Backend backend :
       {Backend::kKde, Backend::kHistogram, Backend::kGrid}) {
    auto estimator = FitBackend(backend, ps);
    for (double a : {-0.5, 0.5}) {
      int64_t dense = 0;
      int64_t sparse = 0;
      for (uint64_t seed = 0; seed < 4; ++seed) {
        BiasedSamplerOptions opts;
        opts.a = a;
        opts.target_size = 800;
        opts.seed = seed;
        auto sample = BiasedSampler(opts).Run(ps, *estimator);
        ASSERT_TRUE(sample.ok());
        for (int64_t i = 0; i < sample->size(); ++i) {
          data::PointView p = sample->points[i];
          if (p[0] >= 0.05 && p[0] <= 0.25 && p[1] >= 0.05 && p[1] <= 0.25) {
            ++dense;
          }
          if (p[0] >= 0.6 && p[0] <= 0.9 && p[1] >= 0.6 && p[1] <= 0.9) {
            ++sparse;
          }
        }
      }
      // Data densities: 6000/0.04 = 150k vs 3000/0.09 = 33k.
      double dense_density = static_cast<double>(dense) / dense_area;
      double sparse_density = static_cast<double>(sparse) / sparse_area;
      EXPECT_GT(dense_density, sparse_density)
          << "a=" << a << " backend=" << BackendName(backend);
    }
  }
}

}  // namespace
}  // namespace dbs::core
