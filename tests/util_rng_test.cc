#include "util/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace dbs {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextBoundedIsUnbiased) {
  Rng rng(11);
  const uint64_t bound = 7;
  const int trials = 70000;
  std::vector<double> observed(bound, 0.0);
  for (int i = 0; i < trials; ++i) {
    uint64_t v = rng.NextBounded(bound);
    ASSERT_LT(v, bound);
    observed[v] += 1.0;
  }
  std::vector<double> expected(bound, trials / static_cast<double>(bound));
  double stat = ChiSquareStatistic(observed, expected);
  EXPECT_LT(stat, ChiSquareCritical999(static_cast<int>(bound) - 1));
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.Add(rng.NextGaussian());
  EXPECT_NEAR(m.mean(), 0.0, 0.02);
  EXPECT_NEAR(m.stddev(), 1.0, 0.02);
}

TEST(RngTest, GaussianMeanStddevParameters) {
  Rng rng(17);
  OnlineMoments m;
  for (int i = 0; i < 100000; ++i) m.Add(rng.NextGaussian(5.0, 2.0));
  EXPECT_NEAR(m.mean(), 5.0, 0.05);
  EXPECT_NEAR(m.stddev(), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(21);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  OnlineMoments m;
  for (int i = 0; i < 100000; ++i) m.Add(rng.NextExponential(2.0));
  EXPECT_NEAR(m.mean(), 0.5, 0.01);
}

TEST(RngTest, UnitBallPointsInside) {
  Rng rng(29);
  for (int dim : {1, 2, 3, 5, 12}) {
    std::vector<double> p(dim);
    for (int i = 0; i < 1000; ++i) {
      rng.NextInUnitBall(dim, p.data());
      double norm2 = 0.0;
      for (double c : p) norm2 += c * c;
      EXPECT_LE(norm2, 1.0 + 1e-12) << "dim=" << dim;
    }
  }
}

TEST(RngTest, UnitBallIsCentered) {
  Rng rng(31);
  const int dim = 3;
  std::vector<OnlineMoments> m(dim);
  std::vector<double> p(dim);
  for (int i = 0; i < 50000; ++i) {
    rng.NextInUnitBall(dim, p.data());
    for (int j = 0; j < dim; ++j) m[j].Add(p[j]);
  }
  for (int j = 0; j < dim; ++j) EXPECT_NEAR(m[j].mean(), 0.0, 0.01);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(42);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng p1(42);
  Rng p2(42);
  Rng a = p1.Fork(5);
  Rng b = p2.Fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng a(42);
  Rng b(42);
  (void)a.Fork(0);
  (void)a.Fork(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> sa(v.begin(), v.end());
  std::multiset<int> sb(orig.begin(), orig.end());
  EXPECT_EQ(sa, sb);
}

TEST(RngTest, ShuffleIsUniformOverSmallPermutations) {
  // 3! = 6 permutations; chi-square over many shuffles.
  Rng rng(41);
  std::map<std::vector<int>, int> counts;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    std::vector<int> v{0, 1, 2};
    rng.Shuffle(v);
    counts[v]++;
  }
  ASSERT_EQ(counts.size(), 6u);
  std::vector<double> observed;
  std::vector<double> expected;
  for (const auto& [perm, c] : counts) {
    observed.push_back(c);
    expected.push_back(trials / 6.0);
  }
  EXPECT_LT(ChiSquareStatistic(observed, expected), ChiSquareCritical999(5));
}

}  // namespace
}  // namespace dbs
