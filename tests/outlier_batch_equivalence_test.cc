// Equivalence harness for BallIntegrator::IntegrateExcludingSelfBatch: the
// batched form (center-value through the estimator's leave-one-out batch,
// quasi-Monte-Carlo through the probe-tile expansion) must be BITWISE
// identical to the per-point IntegrateExcludingSelf across every estimator
// backend {Kde, GridDensity, HistogramDensity}, dims {1, 2, 5}, worker
// counts {0, 1, 4}, and qmc_samples {1, 64}. A frozen pre-batching golden
// vector pins the arithmetic itself, so a regression that moves the scalar
// and batch paths TOGETHER is still caught.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "data/bounds.h"
#include "data/distance.h"
#include "data/point_set.h"
#include "density/grid_density.h"
#include "density/histogram_density.h"
#include "density/kde.h"
#include "outlier/ball_integration.h"
#include "parallel/batch_executor.h"
#include "synth/generator.h"
#include "util/check.h"

namespace dbs::outlier {
namespace {

data::PointSet MakeData(int dim, int64_t points, uint64_t seed) {
  synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 4;
  opts.num_cluster_points = points;  // total across clusters, before noise
  opts.noise_multiplier = 0.2;
  opts.shuffle = true;
  opts.seed = seed;
  auto ds = synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds)->points;
}

void ExpectBitwiseEqual(const std::vector<double>& got,
                        const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << "index " << i << ": batch " << got[i] << " vs scalar " << want[i];
  }
}

// Scores every point of `points` (self-exclusion against itself — the
// outlier detector's shape) scalar vs batched under 0/1/4 workers.
void CheckIntegrator(const density::DensityEstimator& estimator,
                     const data::PointSet& points, BallIntegration method,
                     int qmc_samples, double radius) {
  SCOPED_TRACE(::testing::Message()
               << "method=" << static_cast<int>(method)
               << " qmc_samples=" << qmc_samples << " dim=" << points.dim());
  BallIntegrator integrator(method, points.dim(), qmc_samples);
  const int64_t n = points.size();
  const double* rows = points.flat().data();

  std::vector<double> scalar(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    scalar[static_cast<size_t>(i)] =
        integrator.IntegrateExcludingSelf(estimator, points[i], radius);
  }

  std::vector<double> batch(static_cast<size_t>(n));
  ASSERT_TRUE(integrator
                  .IntegrateExcludingSelfBatch(estimator, rows, n, radius,
                                               batch.data(), nullptr)
                  .ok());
  ExpectBitwiseEqual(batch, scalar);

  for (int workers : {1, 4}) {
    SCOPED_TRACE(::testing::Message() << "workers=" << workers);
    parallel::BatchExecutorOptions pool;
    pool.num_workers = workers;
    parallel::BatchExecutor executor(pool);
    std::vector<double> sharded(static_cast<size_t>(n));
    ASSERT_TRUE(integrator
                    .IntegrateExcludingSelfBatch(estimator, rows, n, radius,
                                                 sharded.data(), &executor)
                    .ok());
    ExpectBitwiseEqual(sharded, scalar);
    executor.Shutdown();
  }
}

class OutlierBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(OutlierBatchTest, KdeQmcMatchesScalarBitwise) {
  const int dim = GetParam();
  data::PointSet data = MakeData(dim, 600, 41);
  density::KdeOptions opts;
  opts.num_kernels = 200;
  opts.seed = 7;
  auto kde = density::Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());
  data::PointSet scored = data.Gather([&] {
    std::vector<int64_t> idx;
    for (int64_t i = 0; i < 150; ++i) idx.push_back(i * 4);
    return idx;
  }());
  for (int qmc : {1, 64}) {
    CheckIntegrator(*kde, scored, BallIntegration::kQuasiMonteCarlo, qmc,
                    0.1);
  }
  CheckIntegrator(*kde, scored, BallIntegration::kCenterValue, 1, 0.1);
}

TEST_P(OutlierBatchTest, GridDensityQmcMatchesScalarBitwise) {
  const int dim = GetParam();
  data::PointSet data = MakeData(dim, 600, 42);
  density::GridDensityOptions opts;
  opts.cells_per_dim = 16;
  auto grid = density::GridDensity::Fit(data, opts);
  ASSERT_TRUE(grid.ok());
  data::PointSet scored = data.Gather([&] {
    std::vector<int64_t> idx;
    for (int64_t i = 0; i < 150; ++i) idx.push_back(i * 4);
    return idx;
  }());
  for (int qmc : {1, 64}) {
    CheckIntegrator(*grid, scored, BallIntegration::kQuasiMonteCarlo, qmc,
                    0.1);
  }
  CheckIntegrator(*grid, scored, BallIntegration::kCenterValue, 1, 0.1);
}

TEST_P(OutlierBatchTest, HistogramDensityQmcMatchesScalarBitwise) {
  const int dim = GetParam();
  data::PointSet data = MakeData(dim, 600, 43);
  density::HistogramDensityOptions opts;
  opts.cells_per_dim = 8;
  auto hist = density::HistogramDensity::Fit(data, opts);
  ASSERT_TRUE(hist.ok());
  data::PointSet scored = data.Gather([&] {
    std::vector<int64_t> idx;
    for (int64_t i = 0; i < 150; ++i) idx.push_back(i * 4);
    return idx;
  }());
  for (int qmc : {1, 64}) {
    CheckIntegrator(*hist, scored, BallIntegration::kQuasiMonteCarlo, qmc,
                    0.1);
  }
  CheckIntegrator(*hist, scored, BallIntegration::kCenterValue, 1, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Dims, OutlierBatchTest, ::testing::Values(1, 2, 5));

// ---------------------------------------------------------------------------
// Frozen golden vector, captured from the PRE-BATCHING scalar integrator.
//
// Everything here is exact binary fractions and pure-IEEE arithmetic: the
// KDE is handcrafted (no libm-dependent fitting), the metric is Linf with
// radius 0.5 so the ball volume is pow(1.0, d) == 1.0 exactly, and the
// Halton probe offsets are plain divisions/multiplications. The resulting
// scores are therefore platform-stable bit patterns, and both the scalar
// AND batch paths must keep reproducing them — a refactor that drifts both
// paths in lockstep cannot slip past this test.

density::Kde GoldenKde() {
  density::Kde::State state;
  state.n = 8;
  state.kernel = density::KernelType::kEpanechnikov;
  state.centers = data::PointSet(2);
  const double c[8][2] = {{0.25, 0.25},   {0.75, 0.25},  {0.25, 0.75},
                          {0.75, 0.75},   {0.5, 0.5},    {0.125, 0.625},
                          {0.625, 0.125}, {0.875, 0.5}};
  for (const auto& row : c) state.centers.Append(data::PointView(row, 2));
  state.bandwidths = {0.5, 0.25};
  state.bounds = data::BoundingBox(2);
  for (int64_t i = 0; i < state.centers.size(); ++i) {
    state.bounds.Extend(state.centers[i]);
  }
  auto kde = density::Kde::FromState(std::move(state));
  DBS_CHECK(kde.ok());
  return std::move(kde).value();
}

data::PointSet GoldenQueries() {
  data::PointSet queries(2);
  const double q[10][2] = {{0.25, 0.25},   {0.75, 0.25},    {0.25, 0.75},
                           {0.75, 0.75},   {0.5, 0.5},      {0.125, 0.625},
                           {0.625, 0.125}, {0.875, 0.5},    {0.3125, 0.40625},
                           {0.9375, 0.84375}};
  for (const auto& row : q) queries.Append(data::PointView(row, 2));
  return queries;
}

uint64_t Bits(double x) {
  uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

TEST(OutlierBatchGoldenTest, QmcScoresMatchFrozenPreBatchingBits) {
  const uint64_t kGoldenBits[10] = {
      0x400846b8e38e38e2ULL, 0x4014e7b1c71c71c6ULL, 0x400e3871c71c71c9ULL,
      0x401006c71c71c71cULL, 0x4019a9aaaaaaaaacULL, 0x400d0071c71c71c8ULL,
      0x400c9a8e38e38e38ULL, 0x40137271c71c71c7ULL, 0x401908cb1c71c71cULL,
      0x40090849c71c71c7ULL};
  density::Kde kde = GoldenKde();
  data::PointSet queries = GoldenQueries();
  BallIntegrator integrator(BallIntegration::kQuasiMonteCarlo, 2,
                            /*num_samples=*/8, data::Metric::kLinf);
  const double radius = 0.5;

  for (int64_t i = 0; i < queries.size(); ++i) {
    const double s =
        integrator.IntegrateExcludingSelf(kde, queries[i], radius);
    EXPECT_EQ(Bits(s), kGoldenBits[i]) << "scalar score " << i << " = " << s;
  }

  std::vector<double> batch(static_cast<size_t>(queries.size()));
  ASSERT_TRUE(integrator
                  .IntegrateExcludingSelfBatch(kde, queries.flat().data(),
                                               queries.size(), radius,
                                               batch.data(), nullptr)
                  .ok());
  for (int64_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(Bits(batch[static_cast<size_t>(i)]), kGoldenBits[i])
        << "batch score " << i << " = " << batch[static_cast<size_t>(i)];
  }

  for (int workers : {1, 4}) {
    parallel::BatchExecutorOptions pool;
    pool.num_workers = workers;
    parallel::BatchExecutor executor(pool);
    std::vector<double> sharded(static_cast<size_t>(queries.size()));
    ASSERT_TRUE(integrator
                    .IntegrateExcludingSelfBatch(kde, queries.flat().data(),
                                                 queries.size(), radius,
                                                 sharded.data(), &executor)
                    .ok());
    executor.Shutdown();
    for (int64_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(Bits(sharded[static_cast<size_t>(i)]), kGoldenBits[i])
          << "workers=" << workers << " score " << i;
    }
  }
}

}  // namespace
}  // namespace dbs::outlier
