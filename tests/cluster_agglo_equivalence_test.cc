// Bitwise equivalence of the accelerated agglomeration core against the
// frozen reference implementation (DESIGN.md §11).
//
// The frozen goldens in cluster_hierarchical_test.cc pin eight specific
// hashes forever; this suite sweeps a randomized grid of sizes, dims,
// elimination settings and executor worker counts and requires the two
// implementations to agree on every byte that HierarchicalCluster
// publishes: labels, member order, centroid bits, and representative bits.
// Comparison is on the raw double bit patterns, so even a signed-zero or
// last-ulp divergence fails.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/hierarchical.h"
#include "data/point_set.h"
#include "parallel/batch_executor.h"
#include "util/rng.h"

namespace dbs::cluster {
namespace {

using data::PointSet;

// `k` Gaussian blobs in d dimensions plus a sprinkle of uniform noise
// (noise exercises the elimination phases and chain merges).
PointSet Blobs(int dim, int k, int64_t per_blob, int64_t noise,
               double sigma, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> p(static_cast<size_t>(dim));
  for (int b = 0; b < k; ++b) {
    std::vector<double> center(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) center[j] = rng.NextDouble(0.1, 0.9);
    for (int64_t i = 0; i < per_blob; ++i) {
      for (int j = 0; j < dim; ++j) {
        p[static_cast<size_t>(j)] =
            rng.NextGaussian(center[static_cast<size_t>(j)], sigma);
      }
      ps.Append(p);
    }
  }
  for (int64_t i = 0; i < noise; ++i) {
    for (int j = 0; j < dim; ++j) {
      p[static_cast<size_t>(j)] = rng.NextDouble();
    }
    ps.Append(p);
  }
  return ps;
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Full bitwise comparison of two clustering results.
void ExpectBitwiseEqual(const ClusteringResult& got,
                        const ClusteringResult& want) {
  ASSERT_EQ(got.labels, want.labels);
  ASSERT_EQ(got.clusters.size(), want.clusters.size());
  for (size_t c = 0; c < want.clusters.size(); ++c) {
    SCOPED_TRACE(c);
    const Cluster& g = got.clusters[c];
    const Cluster& w = want.clusters[c];
    EXPECT_EQ(g.members, w.members);
    EXPECT_TRUE(SameBits(g.centroid, w.centroid));
    ASSERT_EQ(g.representatives.size(), w.representatives.size());
    ASSERT_EQ(g.representatives.dim(), w.representatives.dim());
    EXPECT_TRUE(SameBits(g.representatives.flat(), w.representatives.flat()));
  }
}

struct Case {
  int64_t n_per_blob;
  int64_t noise;
  int dim;
  int k_blobs;
  int num_clusters;
  bool eliminate;
};

class AggloEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(AggloEquivalenceTest, MatchesFrozenReferenceBitwise) {
  const Case& c = GetParam();
  PointSet ps = Blobs(c.dim, c.k_blobs, c.n_per_blob, c.noise,
                      /*sigma=*/0.03,
                      /*seed=*/0x5eedULL + static_cast<uint64_t>(
                          c.dim * 1000 + c.n_per_blob + c.noise));
  HierarchicalOptions opts;
  opts.num_clusters = c.num_clusters;
  opts.eliminate_outliers = c.eliminate;

  auto ref = HierarchicalClusterReference(ps, opts);
  ASSERT_TRUE(ref.ok()) << ref.status().message();

  // Single-threaded accelerated path.
  auto fast = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(fast.ok()) << fast.status().message();
  ExpectBitwiseEqual(*fast, *ref);

  // Executor-sharded path must not change a single bit either.
  for (int workers : {1, 4}) {
    SCOPED_TRACE(workers);
    parallel::BatchExecutorOptions eopts;
    eopts.num_workers = workers;
    eopts.min_shard = 16;  // force real sharding at these sizes
    parallel::BatchExecutor executor(eopts);
    HierarchicalOptions popts = opts;
    popts.executor = &executor;
    auto par = HierarchicalCluster(ps, popts);
    ASSERT_TRUE(par.ok()) << par.status().message();
    ExpectBitwiseEqual(*par, *ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AggloEquivalenceTest,
    ::testing::Values(Case{12, 4, 1, 3, 3, false},
                      Case{12, 4, 1, 3, 3, true},
                      Case{25, 10, 2, 4, 4, false},
                      Case{25, 10, 2, 4, 4, true},
                      Case{40, 15, 3, 5, 5, true},
                      Case{30, 12, 5, 4, 4, false},
                      Case{30, 12, 5, 4, 4, true},
                      Case{80, 20, 2, 6, 6, true}));

// Duplicate points force distance ties everywhere; the tie-breaking rule
// (lowest cluster index wins) must agree between the implementations.
TEST(AggloEquivalenceTest, ExactDuplicatesTieBreakIdentically) {
  PointSet ps(2);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      std::vector<double> p{0.1 * c, 0.1 * r};
      ps.Append(p);
      ps.Append(p);  // exact duplicate
    }
  }
  for (bool eliminate : {false, true}) {
    SCOPED_TRACE(eliminate);
    HierarchicalOptions opts;
    opts.num_clusters = 5;
    opts.eliminate_outliers = eliminate;
    auto ref = HierarchicalClusterReference(ps, opts);
    ASSERT_TRUE(ref.ok());
    auto fast = HierarchicalCluster(ps, opts);
    ASSERT_TRUE(fast.ok());
    ExpectBitwiseEqual(*fast, *ref);
  }
}

// n <= num_clusters short-circuits before any merge; both paths must agree
// on the trivial result too.
TEST(AggloEquivalenceTest, FewerPointsThanClustersBitwise) {
  PointSet ps = Blobs(2, 1, 5, 0, 0.05, 99);
  HierarchicalOptions opts;
  opts.num_clusters = 8;
  auto ref = HierarchicalClusterReference(ps, opts);
  auto fast = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(fast.ok());
  ExpectBitwiseEqual(*fast, *ref);
}

}  // namespace
}  // namespace dbs::cluster
