// Unit tests for the dbs_lint rule engine: each rule gets a positive case
// (violation found), a negative case (idiomatic code passes), plus the two
// suppression channels — `dbs-lint: allow(...)` markers and the baseline.
//
// Banned tokens appear here only inside test-input string literals; the
// scanner strips literals before matching, so this file itself lints clean.

#include "tools/lint/lint.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dbs::lint {
namespace {

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

// --- comment/literal stripping ---------------------------------------------

TEST(StripComments, RemovesLineAndBlockComments) {
  const std::vector<CodeLine> lines =
      StripComments("int a;  // trailing new int\n"
                    "/* new delete */ int b;\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].code.find("new"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int a;"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("delete"), std::string::npos);
  EXPECT_NE(lines[1].code.find("int b;"), std::string::npos);
}

TEST(StripComments, BlanksStringAndCharLiterals) {
  const std::vector<CodeLine> lines =
      StripComments("auto s = \"new delete rand()\"; char c = 'x';\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].code.find("auto s ="), std::string::npos);
}

TEST(StripComments, MultiLineBlockCommentPreservesLineNumbers) {
  const std::vector<CodeLine> lines =
      StripComments("int a;\n/* spans\nseveral\nlines */\nint b;\n");
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[4].code.find("int b;"), std::string::npos);
  EXPECT_TRUE(lines[2].code.find("several") == std::string::npos);
}

TEST(StripComments, RawStringLiteralBodyIsBlanked) {
  const std::vector<CodeLine> lines =
      StripComments("auto s = R\"(new delete)\"; int a;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("delete"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int a;"), std::string::npos);
}

TEST(StripComments, AllowMarkerSurvivesInRawText) {
  const std::vector<CodeLine> lines =
      StripComments("int* p = q;  // dbs-lint: allow(raw-alloc)\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].raw.find("dbs-lint: allow(raw-alloc)"),
            std::string::npos);
  EXPECT_EQ(lines[0].code.find("dbs-lint"), std::string::npos);
}

// --- nondet-seed ------------------------------------------------------------

TEST(NondetSeed, FlagsRandomDeviceAndRandAndTime) {
  const std::string bad =
      "std::random_device rd;\n"
      "int a = rand();\n"
      "srand(42);\n"
      "auto t = time(nullptr);\n";
  const std::vector<Finding> findings = LintSource("src/core/sample.cc", bad);
  ASSERT_EQ(findings.size(), 4u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "nondet-seed");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[3].line, 4);
}

TEST(NondetSeed, IgnoresTokenLookalikes) {
  const std::string good =
      "double operand = 1.0;\n"          // `rand` inside an identifier
      "int64_t runtime_ms = Elapsed();\n"
      "double latency = wall_time(0);\n"  // `time` inside an identifier
      "rng.NextBounded(7);\n";
  EXPECT_TRUE(LintSource("src/core/sample.cc", good).empty());
}

// --- library-print ----------------------------------------------------------

TEST(LibraryPrint, FlagsStdioInLibraryCode) {
  const std::string bad =
      "std::cout << x;\n"
      "std::fprintf(stderr, \"x\");\n";
  const std::vector<Finding> findings =
      LintSource("src/density/kde.cc", bad);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "library-print");
}

TEST(LibraryPrint, ExemptsReportCheckAndNonLibraryCode) {
  // The leading #pragma once keeps the .h cases clear of header-guard.
  const std::string printing = "#pragma once\nstd::printf(\"table\\n\");\n";
  EXPECT_TRUE(LintSource("src/eval/report.cc", printing).empty());
  EXPECT_TRUE(LintSource("src/eval/report.h", printing).empty());
  EXPECT_TRUE(LintSource("src/util/check.h", printing).empty());
  EXPECT_TRUE(LintSource("tools/dbs_gen.cc", printing).empty());
  EXPECT_TRUE(LintSource("bench/micro_kde.cc", printing).empty());
}

// --- raw-alloc --------------------------------------------------------------

TEST(RawAlloc, FlagsNewDeleteAndMallocFamily) {
  const std::string bad =
      "int* p = new int[3];\n"
      "delete[] p;\n"
      "void* q = malloc(8);\n"
      "free(q);\n";
  const std::vector<Finding> findings = LintSource("bench/foo.cc", bad);
  ASSERT_EQ(findings.size(), 4u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "raw-alloc");
}

TEST(RawAlloc, IgnoresDeletedFunctionsAndMakeUnique) {
  const std::string good =
      "Executor(const Executor&) = delete;\n"
      "Executor& operator=(const Executor&) = delete;\n"
      "auto p = std::make_unique<int>(3);\n"
      "bool renewed = freestanding;\n";
  EXPECT_TRUE(LintSource("src/parallel/batch_executor.cc", good).empty());
}

// --- unordered-container ----------------------------------------------------

TEST(UnorderedContainer, FlagsOnlyInDensityCoreAndShard) {
  const std::string bad = "std::unordered_map<uint64_t, int> cells;\n";
  EXPECT_EQ(Rules(LintSource("src/density/kde.cc", bad)),
            std::vector<std::string>{"unordered-container"});
  EXPECT_EQ(Rules(LintSource("src/core/sample.cc", bad)),
            std::vector<std::string>{"unordered-container"});
  // The shard merge paths are order-sensitive by contract: the tree-reduce
  // must produce identical bytes for every merge order.
  EXPECT_EQ(Rules(LintSource("src/shard/coordinator.cc", bad)),
            std::vector<std::string>{"unordered-container"});
  // The exact detectors promise byte-identical reports across algorithms
  // and worker counts; the cell-list grid must keep deterministic order.
  EXPECT_EQ(Rules(LintSource("src/outlier/cell_list.cc", bad)),
            std::vector<std::string>{"unordered-container"});
  // The shm transport files carry the bitwise transport-equivalence
  // contract, so they are in scope too. (The header snippet needs a guard
  // so only the rule under test fires.)
  EXPECT_EQ(Rules(LintSource("src/serve/shm_ring.h", "#pragma once\n" + bad)),
            std::vector<std::string>{"unordered-container"});
  EXPECT_EQ(Rules(LintSource("src/serve/shm_transport.cc", bad)),
            std::vector<std::string>{"unordered-container"});
  // The registry keyed by model name is outside the numeric core.
  EXPECT_TRUE(LintSource("src/serve/model_registry.cc", bad).empty());
  EXPECT_TRUE(LintSource("tests/foo_test.cc", bad).empty());
}

// --- serve-throw ------------------------------------------------------------

TEST(ServeThrow, FlagsThrowOnlyInServe) {
  const std::string bad = "if (x) throw std::runtime_error(\"boom\");\n";
  EXPECT_EQ(Rules(LintSource("src/serve/service.cc", bad)),
            std::vector<std::string>{"serve-throw"});
  EXPECT_TRUE(LintSource("src/cluster/kmeans.cc", bad).empty());
}

// --- header rules -----------------------------------------------------------

TEST(HeaderGuard, AcceptsIfndefAndPragmaOnceAfterComments) {
  const std::string guarded =
      "// A long preamble comment\n"
      "// spanning several lines.\n"
      "\n"
      "#ifndef DBS_FOO_H_\n"
      "#define DBS_FOO_H_\n"
      "#endif\n";
  EXPECT_TRUE(LintSource("src/data/foo.h", guarded).empty());
  EXPECT_TRUE(LintSource("src/data/foo.h",
                         "// comment\n#pragma once\nint x;\n")
                  .empty());
}

TEST(HeaderGuard, FlagsUnguardedHeaderAtFirstCodeLine) {
  const std::vector<Finding> findings =
      LintSource("src/data/foo.h", "// comment\n\nint x;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-guard");
  EXPECT_EQ(findings[0].line, 3);
  // Guards are a header concern only.
  EXPECT_TRUE(LintSource("src/data/foo.cc", "int x;\n").empty());
}

TEST(UsingNamespaceHeader, FlagsHeadersOnly) {
  const std::string source =
      "#pragma once\nusing namespace std;\n";
  EXPECT_EQ(Rules(LintSource("src/data/foo.h", source)),
            std::vector<std::string>{"using-namespace-header"});
  EXPECT_TRUE(
      LintSource("tests/foo_test.cc", "using namespace std;\n").empty());
}

// --- suppression: allow(...) markers ----------------------------------------

TEST(AllowMarker, SameLineSuppressesNamedRuleOnly) {
  const std::string same_line =
      "int* p = new int;  // dbs-lint: allow(raw-alloc)\n";
  EXPECT_TRUE(LintSource("src/data/foo.cc", same_line).empty());
  // A marker for a different rule does not suppress.
  const std::string wrong_rule =
      "int* p = new int;  // dbs-lint: allow(serve-throw)\n";
  EXPECT_EQ(Rules(LintSource("src/data/foo.cc", wrong_rule)),
            std::vector<std::string>{"raw-alloc"});
}

TEST(AllowMarker, CommentOnlyLineAppliesToNextLine) {
  const std::string above =
      "// dbs-lint: allow(raw-alloc)\n"
      "int* p = new int;\n";
  EXPECT_TRUE(LintSource("src/data/foo.cc", above).empty());
  // ...but only to the immediately following line.
  const std::string gap =
      "// dbs-lint: allow(raw-alloc)\n"
      "int a;\n"
      "int* p = new int;\n";
  EXPECT_EQ(LintSource("src/data/foo.cc", gap).size(), 1u);
}

TEST(AllowMarker, CommaListSuppressesMultipleRules) {
  const std::string source =
      "std::cout << rand();  // dbs-lint: allow(library-print, nondet-seed)\n";
  EXPECT_TRUE(LintSource("src/data/foo.cc", source).empty());
}

// --- suppression: baseline --------------------------------------------------

TEST(Baseline, RoundTripsThroughFormatAndFiltersExactFindings) {
  const std::string source = "int* p = new int;\nint* q = new int;\n";
  const std::vector<Finding> findings =
      LintSource("src/data/foo.cc", source);
  ASSERT_EQ(findings.size(), 2u);

  const std::string text = FormatBaseline(findings);
  const std::vector<std::string> baseline = ParseBaseline(text);
  EXPECT_EQ(baseline.size(), 2u);  // comment lines dropped
  EXPECT_TRUE(ApplyBaseline(findings, baseline).empty());
}

TEST(Baseline, EntryMultiplicityIsRespected) {
  const std::string source = "int* p = new int;\nint* p = new int;\n";
  const std::vector<Finding> findings =
      LintSource("src/data/foo.cc", source);
  ASSERT_EQ(findings.size(), 2u);
  // One baseline entry suppresses one of the two identical findings.
  const std::vector<std::string> baseline = {
      "raw-alloc|src/data/foo.cc|int* p = new int;"};
  EXPECT_EQ(ApplyBaseline(findings, baseline).size(), 1u);
}

TEST(Baseline, DoesNotSuppressNewlyIntroducedFindings) {
  const std::vector<Finding> old_findings =
      LintSource("src/data/foo.cc", "int* p = new int;\n");
  const std::vector<std::string> baseline =
      ParseBaseline(FormatBaseline(old_findings));
  // A different violation in the same file is still reported.
  const std::vector<Finding> now =
      LintSource("src/data/foo.cc", "int* p = new int;\ndelete p;\n");
  const std::vector<Finding> fresh = ApplyBaseline(now, baseline);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].line, 2);
}

// --- output formats ---------------------------------------------------------

TEST(Output, JsonEscapesAndGithubAnnotates) {
  Finding f;
  f.rule = "raw-alloc";
  f.file = "src/a.cc";
  f.line = 7;
  f.code = "say \"hi\"";
  f.message = "msg";
  const std::string json = FormatJson({f});
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
  const std::string gh = FormatGithub({f});
  EXPECT_NE(gh.find("::error file=src/a.cc,line=7"), std::string::npos);
  EXPECT_TRUE(FormatGithub({}).empty());
}

}  // namespace
}  // namespace dbs::lint
