// Shared-memory transport: byte-for-byte equivalence with TCP.
//
// The transport's contract (DESIGN.md §13) is that it changes HOW frames
// travel, never WHAT they say: the same request stream over TCP and over
// the shm rings must yield byte-identical response frames — success,
// error and negative frames included. These tests drive both transports
// through the raw frame stream and compare encoded bytes, plus the TCP
// fallback when the daemon declines the upgrade, pipelined-vs-sequential
// identity, and concurrent shm clients.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "density/kde.h"
#include "density/kde_io.h"
#include "serve/batch_executor.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/rng.h"

namespace dbs {
namespace {

constexpr int kDim = 3;

data::PointSet MakePoints(uint64_t seed, int64_t n, int dim = kDim) {
  Rng rng(seed);
  data::PointSet points(dim);
  std::vector<double> row(static_cast<size_t>(dim));
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      row[static_cast<size_t>(j)] =
          rng.NextGaussian(i % 2 == 0 ? -1.0 : 1.0, 0.4);
    }
    points.Append(row);
  }
  return points;
}

class ServeShmTransportTest : public ::testing::Test {
 protected:
  void SetUp() override { StartServer(/*enable_shm=*/true); }

  void StartServer(bool enable_shm) {
    model_path_ = std::string(::testing::TempDir()) + "/serve_shm.dbsk";
    density::KdeOptions options;
    options.num_kernels = 32;
    options.seed = 7;
    auto fitted = density::Kde::Fit(MakePoints(42, 1000), options);
    ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
    ASSERT_TRUE(density::SaveKde(*fitted, model_path_).ok());

    serve::BatchExecutorOptions pool;
    pool.num_workers = 2;
    pool.queue_capacity = 1024;
    executor_ = std::make_unique<serve::BatchExecutor>(pool);
    service_ =
        std::make_unique<serve::ModelService>(&registry_, executor_.get());
    serve::ServerOptions server_options;
    server_options.enable_shm = enable_shm;
    auto server = serve::Server::Start(service_.get(), server_options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (executor_ != nullptr) executor_->Shutdown();
    std::remove(model_path_.c_str());
  }

  serve::Client ConnectOrDie(serve::TransportKind transport,
                             bool fallback = true) {
    serve::ClientOptions options;
    options.transport = transport;
    options.shm_fallback_to_tcp = fallback;
    auto client = serve::Client::Connect(server_->port(), options);
    DBS_CHECK(client.ok());
    return std::move(client).value();
  }

  // The probe stream: every request kind the service answers, including
  // ones that must produce error frames — an unknown model, a dimension
  // mismatch, and a just-evicted model. (Stats is excluded: its latency
  // histograms legitimately differ run to run.)
  std::vector<serve::Frame> ProbeStream() const {
    std::vector<serve::Frame> stream;
    stream.push_back({serve::MessageType::kRegisterRequest,
                      serve::EncodeRegisterRequest({"est", model_path_})});

    serve::DensityBatchRequest density;
    density.model = "est";
    density.points = MakePoints(99, 500);
    stream.push_back({serve::MessageType::kDensityRequest,
                      serve::EncodeDensityRequest(density)});

    serve::DensityBatchRequest unknown = density;
    unknown.model = "nonesuch";
    stream.push_back({serve::MessageType::kDensityRequest,
                      serve::EncodeDensityRequest(unknown)});

    serve::SampleRequest sample;
    sample.model = "est";
    sample.a = 0.5;
    sample.target_size = 100;
    sample.seed = 17;
    sample.points = MakePoints(7, 400);
    stream.push_back({serve::MessageType::kSampleRequest,
                      serve::EncodeSampleRequest(sample)});

    serve::OutlierScoreBatchRequest outliers;
    outliers.model = "est";
    outliers.radius = 0.8;
    outliers.max_neighbors = 10;
    outliers.points = MakePoints(13, 300);
    stream.push_back({serve::MessageType::kOutlierRequest,
                      serve::EncodeOutlierRequest(outliers)});

    serve::DensityBatchRequest mismatched;
    mismatched.model = "est";
    mismatched.points = MakePoints(5, 20, kDim + 2);
    stream.push_back({serve::MessageType::kDensityRequest,
                      serve::EncodeDensityRequest(mismatched)});

    stream.push_back({serve::MessageType::kEvictRequest,
                      serve::EncodeEvictRequest({"est"})});

    // Post-evict density: a kNotFound error frame.
    stream.push_back({serve::MessageType::kDensityRequest,
                      serve::EncodeDensityRequest(density)});
    return stream;
  }

  // Runs the probe stream over one connection, returning each response
  // frame re-encoded to its wire bytes.
  std::vector<std::vector<uint8_t>> Run(serve::Client* client,
                                        const std::vector<serve::Frame>& s) {
    std::vector<std::vector<uint8_t>> responses;
    responses.reserve(s.size());
    for (const serve::Frame& frame : s) {
      DBS_CHECK(client->Submit(frame.type, frame.payload).ok());
      auto response = client->ReadResponseFrame();
      DBS_CHECK(response.ok());
      responses.push_back(
          serve::EncodeFrame(response->type, response->payload));
    }
    return responses;
  }

  std::string model_path_;
  serve::ModelRegistry registry_;
  std::unique_ptr<serve::BatchExecutor> executor_;
  std::unique_ptr<serve::ModelService> service_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeShmTransportTest, ShmResponsesAreByteIdenticalToTcp) {
  const std::vector<serve::Frame> stream = ProbeStream();

  serve::Client tcp = ConnectOrDie(serve::TransportKind::kTcp);
  std::vector<std::vector<uint8_t>> tcp_bytes = Run(&tcp, stream);

  serve::Client shm = ConnectOrDie(serve::TransportKind::kShm,
                                   /*fallback=*/false);
  ASSERT_EQ(shm.transport(), serve::TransportKind::kShm);
  std::vector<std::vector<uint8_t>> shm_bytes = Run(&shm, stream);

  ASSERT_EQ(tcp_bytes.size(), shm_bytes.size());
  for (size_t i = 0; i < tcp_bytes.size(); ++i) {
    EXPECT_EQ(tcp_bytes[i], shm_bytes[i])
        << "response " << i << " differs between transports";
  }
  // The stream includes real error frames, so the equivalence above also
  // covered the negative paths; make that explicit.
  size_t header = 0;
  auto unknown_model = serve::DecodeFrame(tcp_bytes[2].data(),
                                          tcp_bytes[2].size(), &header);
  ASSERT_TRUE(unknown_model.ok());
  EXPECT_EQ(unknown_model->type, serve::MessageType::kErrorResponse);
}

TEST_F(ServeShmTransportTest, PipelinedDensityEqualsSequential) {
  serve::Client setup = ConnectOrDie(serve::TransportKind::kTcp);
  ASSERT_TRUE(setup.RegisterModel("est", model_path_).ok());

  std::vector<serve::DensityBatchRequest> requests;
  for (int b = 0; b < 8; ++b) {
    serve::DensityBatchRequest request;
    request.model = "est";
    request.points = MakePoints(static_cast<uint64_t>(100 + b), 150);
    requests.push_back(std::move(request));
  }

  for (serve::TransportKind transport :
       {serve::TransportKind::kTcp, serve::TransportKind::kShm}) {
    serve::Client sequential = ConnectOrDie(transport, /*fallback=*/false);
    serve::Client pipelined = ConnectOrDie(transport, /*fallback=*/false);
    std::vector<serve::DensityBatchResponse> expected;
    for (const auto& request : requests) {
      auto response = sequential.Density(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      expected.push_back(std::move(response).value());
    }
    auto actual = pipelined.DensityPipelined(requests, /*window=*/4);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_EQ(actual->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*actual)[i].densities, expected[i].densities)
          << "batch " << i << " diverges under pipelining";
    }
  }
}

TEST_F(ServeShmTransportTest, PipelinedErrorSurfacesInRequestOrder) {
  serve::Client setup = ConnectOrDie(serve::TransportKind::kTcp);
  ASSERT_TRUE(setup.RegisterModel("est", model_path_).ok());

  std::vector<serve::DensityBatchRequest> requests;
  for (int b = 0; b < 4; ++b) {
    serve::DensityBatchRequest request;
    request.model = b == 1 ? "nonesuch" : "est";
    request.points = MakePoints(static_cast<uint64_t>(b), 50);
    requests.push_back(std::move(request));
  }
  serve::Client client = ConnectOrDie(serve::TransportKind::kShm,
                                      /*fallback=*/false);
  auto responses = client.DensityPipelined(requests, /*window=*/4);
  ASSERT_FALSE(responses.ok());
  EXPECT_EQ(responses.status().code(), StatusCode::kNotFound);
  // The session survives a mid-stream error: later requests still work.
  serve::DensityBatchRequest request;
  request.model = "est";
  request.points = MakePoints(77, 50);
  auto after = client.Density(request);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(ServeShmTransportTest, ConcurrentShmClientsAllGetTheirOwnAnswers) {
  serve::Client setup = ConnectOrDie(serve::TransportKind::kTcp);
  ASSERT_TRUE(setup.RegisterModel("est", model_path_).ok());

  constexpr int kClients = 4;
  constexpr int kBatches = 8;
  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client = ConnectOrDie(serve::TransportKind::kShm,
                                          /*fallback=*/false);
      // Distinct queries per client, so crossed responses cannot pass.
      serve::DensityBatchRequest request;
      request.model = "est";
      request.points = MakePoints(static_cast<uint64_t>(1000 + c), 200);
      auto expected = client.Density(request);
      DBS_CHECK(expected.ok());
      for (int b = 0; b < kBatches; ++b) {
        auto again = client.Density(request);
        if (!again.ok() || again->densities != expected->densities) {
          ++mismatches[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[static_cast<size_t>(c)], 0) << "client " << c;
  }
}

TEST_F(ServeShmTransportTest, StrictShmConnectFailsWithoutFallback) {
  serve::ClientOptions options;
  options.transport = serve::TransportKind::kShm;
  options.shm_fallback_to_tcp = false;
  options.shm_ring_bytes = 12345;  // not a power of two
  auto client = serve::Client::Connect(server_->port(), options);
  EXPECT_FALSE(client.ok());
}

class ServeShmDisabledTest : public ServeShmTransportTest {
 protected:
  void SetUp() override { StartServer(/*enable_shm=*/false); }
};

TEST_F(ServeShmDisabledTest, ClientFallsBackToTcpWithAClearStatus) {
  serve::Client client = ConnectOrDie(serve::TransportKind::kShm);
  EXPECT_EQ(client.transport(), serve::TransportKind::kTcp);
  EXPECT_FALSE(client.shm_status().ok());
  EXPECT_EQ(client.shm_status().code(), StatusCode::kFailedPrecondition);
  // The fallback connection is a fully functional TCP session.
  ASSERT_TRUE(client.RegisterModel("est", model_path_).ok());
  serve::DensityBatchRequest request;
  request.model = "est";
  request.points = MakePoints(3, 100);
  auto response = client.Density(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->densities.size(), 100u);
}

TEST_F(ServeShmDisabledTest, StrictShmConnectFailsWhenDaemonDeclines) {
  serve::ClientOptions options;
  options.transport = serve::TransportKind::kShm;
  options.shm_fallback_to_tcp = false;
  auto client = serve::Client::Connect(server_->port(), options);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dbs
