#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "sampling/reservoir_sampler.h"
#include "sampling/uniform_sampler.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dbs::sampling {
namespace {

using data::PointSet;

PointSet Sequential1d(int64_t n) {
  PointSet ps(1);
  for (int64_t i = 0; i < n; ++i) {
    double v = static_cast<double>(i);
    ps.Append(&v);
  }
  return ps;
}

TEST(BernoulliSampleTest, RejectsBadTarget) {
  PointSet ps = Sequential1d(10);
  BernoulliSampleOptions opts;
  opts.target_size = 0;
  EXPECT_FALSE(BernoulliSample(ps, opts).ok());
}

TEST(BernoulliSampleTest, EmptyDatasetGivesEmptySample) {
  PointSet ps(2);
  BernoulliSampleOptions opts;
  auto s = BernoulliSample(ps, opts);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 0);
}

TEST(BernoulliSampleTest, ExpectedSizeIsTarget) {
  PointSet ps = Sequential1d(100000);
  OnlineMoments sizes;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    BernoulliSampleOptions opts;
    opts.target_size = 2000;
    opts.seed = seed;
    auto s = BernoulliSample(ps, opts);
    ASSERT_TRUE(s.ok());
    sizes.Add(static_cast<double>(s->size()));
  }
  // Std of one draw ~ sqrt(2000*0.98) ~ 44; mean of 20 draws within 3 sigma.
  EXPECT_NEAR(sizes.mean(), 2000.0, 3 * 44.0 / std::sqrt(20.0) * 2);
}

TEST(BernoulliSampleTest, TargetAboveNKeepsEverything) {
  PointSet ps = Sequential1d(100);
  BernoulliSampleOptions opts;
  opts.target_size = 1000;
  auto s = BernoulliSample(ps, opts);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 100);
}

TEST(BernoulliSampleTest, SampleIsUniformOverHalves) {
  // Count how often points from the first vs second half land in samples.
  PointSet ps = Sequential1d(10000);
  int64_t first_half = 0;
  int64_t total = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    BernoulliSampleOptions opts;
    opts.target_size = 1000;
    opts.seed = seed;
    auto s = BernoulliSample(ps, opts);
    ASSERT_TRUE(s.ok());
    for (int64_t i = 0; i < s->size(); ++i) {
      if ((*s)[i][0] < 5000) ++first_half;
      ++total;
    }
  }
  double frac = static_cast<double>(first_half) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(BernoulliSampleTest, DeterministicPerSeed) {
  PointSet ps = Sequential1d(5000);
  BernoulliSampleOptions opts;
  opts.target_size = 500;
  opts.seed = 7;
  auto a = BernoulliSample(ps, opts);
  auto b = BernoulliSample(ps, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (int64_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i][0], (*b)[i][0]);
  }
}

TEST(ReservoirTest, ExactSize) {
  PointSet ps = Sequential1d(10000);
  auto s = ReservoirSample(ps, 321, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 321);
}

TEST(ReservoirTest, SmallDatasetKeepsAll) {
  PointSet ps = Sequential1d(50);
  auto s = ReservoirSample(ps, 100, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 50);
  // All original values present.
  std::vector<double> vals;
  for (int64_t i = 0; i < s->size(); ++i) vals.push_back((*s)[i][0]);
  std::sort(vals.begin(), vals.end());
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(vals[i], i);
}

TEST(ReservoirTest, RejectsBadCapacity) {
  PointSet ps = Sequential1d(10);
  EXPECT_FALSE(ReservoirSample(ps, 0, 1).ok());
}

TEST(ReservoirTest, EveryItemEquallyLikely) {
  // n=20, k=5, many trials: each item appears with frequency k/n = 0.25.
  const int64_t n = 20;
  const int64_t k = 5;
  const int trials = 40000;
  PointSet ps = Sequential1d(n);
  std::vector<double> counts(n, 0.0);
  for (int t = 0; t < trials; ++t) {
    auto s = ReservoirSample(ps, k, 1000 + t);
    ASSERT_TRUE(s.ok());
    for (int64_t i = 0; i < s->size(); ++i) {
      counts[static_cast<int64_t>((*s)[i][0])] += 1.0;
    }
  }
  std::vector<double> expected(n, trials * static_cast<double>(k) / n);
  EXPECT_LT(dbs::ChiSquareStatistic(counts, expected),
            dbs::ChiSquareCritical999(static_cast<int>(n) - 1));
}

TEST(ReservoirTest, StreamingOfferMatchesBatch) {
  PointSet ps = Sequential1d(1000);
  Reservoir reservoir(10, 1, 99);
  for (int64_t i = 0; i < ps.size(); ++i) reservoir.Offer(ps[i]);
  EXPECT_EQ(reservoir.seen(), 1000);
  EXPECT_EQ(reservoir.sample().size(), 10);
}

}  // namespace
}  // namespace dbs::sampling
