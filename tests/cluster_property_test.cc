// Randomized invariant tests for the clustering substrates: CF-tree
// structural invariants under arbitrary insertion streams, and the
// hierarchical algorithm validated against a brute-force reference
// implementation of the same merge rule.

#include <algorithm>
#include <limits>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cf_tree.h"
#include "cluster/hierarchical.h"
#include "data/distance.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::cluster {
namespace {

using data::PointSet;
using data::PointView;

PointSet RandomStream(int64_t n, int dim, int blobs, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> centers(static_cast<size_t>(blobs) * dim);
  for (double& c : centers) c = rng.NextDouble();
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.2)) {
      for (int j = 0; j < dim; ++j) buf[j] = rng.NextDouble();
    } else {
      int b = static_cast<int>(rng.NextBounded(blobs));
      for (int j = 0; j < dim; ++j) {
        buf[j] = rng.NextGaussian(centers[b * dim + j], 0.03);
      }
    }
    ps.Append(buf);
  }
  return ps;
}

class CfTreeInvariantTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int, int64_t>> {};

TEST_P(CfTreeInvariantTest, MassIsConservedAndBudgetRespected) {
  auto [n, dim, budget_kb] = GetParam();
  PointSet ps = RandomStream(n, dim, 4, 100 + n + dim);
  CfTreeOptions opts;
  opts.memory_budget_bytes = budget_kb * 1024;
  auto tree = CfTree::Create(dim, opts);
  ASSERT_TRUE(tree.ok());
  for (int64_t i = 0; i < ps.size(); ++i) tree->Insert(ps[i]);

  // Invariant 1: every inserted point is accounted for.
  EXPECT_EQ(tree->num_points(), n);
  double mass = 0;
  std::vector<double> ls_sum(dim, 0.0);
  for (const ClusteringFeature& cf : tree->LeafEntries()) {
    EXPECT_GT(cf.n, 0);
    mass += cf.n;
    for (int j = 0; j < dim; ++j) ls_sum[j] += cf.ls[j];
  }
  EXPECT_DOUBLE_EQ(mass, static_cast<double>(n));

  // Invariant 2: the linear sums add up to the data's column sums (the
  // additivity that makes CF maintenance correct).
  for (int j = 0; j < dim; ++j) {
    double truth = 0;
    for (int64_t i = 0; i < ps.size(); ++i) truth += ps[i][j];
    EXPECT_NEAR(ls_sum[j], truth, 1e-6 * std::abs(truth) + 1e-9);
  }

  // Invariant 3: the memory budget holds after every insert (checked at
  // the end here; Insert enforces it internally).
  EXPECT_LE(tree->memory_bytes(), opts.memory_budget_bytes);

  // Invariant 4: all leaf radii respect the final threshold... not exactly
  // (entries are built incrementally under smaller thresholds), but no
  // leaf entry can have radius beyond the final threshold plus the largest
  // merge step; sanity-check they are finite and bounded by the domain.
  for (const ClusteringFeature& cf : tree->LeafEntries()) {
    EXPECT_LT(cf.Radius(), 2.0 * dim);
  }
}

INSTANTIATE_TEST_SUITE_P(Streams, CfTreeInvariantTest,
                         ::testing::Values(std::make_tuple(500, 2, 1024),
                                           std::make_tuple(5000, 2, 16),
                                           std::make_tuple(5000, 3, 8),
                                           std::make_tuple(20000, 2, 4),
                                           std::make_tuple(3000, 5, 32)));

TEST(CfTreeInvariantTest, ThresholdGrowsMonotonicallyAcrossRebuilds) {
  CfTreeOptions opts;
  opts.memory_budget_bytes = 4 * 1024;
  auto tree = CfTree::Create(2, opts);
  ASSERT_TRUE(tree.ok());
  PointSet ps = RandomStream(20000, 2, 4, 55);
  double last_threshold = 0.0;
  for (int64_t i = 0; i < ps.size(); ++i) {
    tree->Insert(ps[i]);
    EXPECT_GE(tree->threshold(), last_threshold);
    last_threshold = tree->threshold();
  }
  EXPECT_GT(tree->rebuilds(), 0);
}

// Brute-force reference: repeatedly merge the closest pair by minimum
// representative distance, with the same scatter/shrink policy, in
// O(n^3)-ish time. Small inputs only.
ClusteringResult ReferenceHierarchical(const PointSet& points, int k,
                                       const HierarchicalOptions& options) {
  struct RefCluster {
    std::vector<int64_t> members;
    std::vector<double> centroid;
    PointSet scattered{2};
    PointSet reps{2};
  };
  auto shrink = [&](const PointSet& scattered,
                    const std::vector<double>& centroid) {
    PointSet out(points.dim());
    std::vector<double> buf(points.dim());
    for (int64_t i = 0; i < scattered.size(); ++i) {
      for (int j = 0; j < points.dim(); ++j) {
        buf[j] = scattered[i][j] +
                 options.shrink_factor * (centroid[j] - scattered[i][j]);
      }
      out.Append(buf);
    }
    return out;
  };
  auto select_scattered = [&](const PointSet& pool,
                              const std::vector<double>& centroid) {
    if (pool.size() <= options.num_representatives) return pool;
    PointSet out(points.dim());
    std::vector<bool> taken(pool.size(), false);
    PointView mean(centroid.data(), points.dim());
    int64_t first = 0;
    double far = -1;
    for (int64_t i = 0; i < pool.size(); ++i) {
      double d2 = data::SquaredL2(pool[i], mean);
      if (d2 > far) {
        far = d2;
        first = i;
      }
    }
    out.Append(pool[first]);
    taken[first] = true;
    while (out.size() < options.num_representatives) {
      int64_t pick = -1;
      double best = -1;
      for (int64_t i = 0; i < pool.size(); ++i) {
        if (taken[i]) continue;
        double mind = std::numeric_limits<double>::infinity();
        for (int64_t s = 0; s < out.size(); ++s) {
          mind = std::min(mind, data::SquaredL2(pool[i], out[s]));
        }
        if (mind > best) {
          best = mind;
          pick = i;
        }
      }
      taken[pick] = true;
      out.Append(pool[pick]);
    }
    return out;
  };

  std::vector<RefCluster> clusters;
  for (int64_t i = 0; i < points.size(); ++i) {
    RefCluster c;
    c.members = {i};
    c.centroid = points[i].ToVector();
    c.scattered = PointSet(points.dim());
    c.scattered.Append(points[i]);
    c.reps = c.scattered;
    clusters.push_back(std::move(c));
  }
  while (static_cast<int>(clusters.size()) > k) {
    double best = std::numeric_limits<double>::infinity();
    size_t bu = 0;
    size_t bv = 1;
    for (size_t u = 0; u < clusters.size(); ++u) {
      for (size_t v = u + 1; v < clusters.size(); ++v) {
        double d = std::numeric_limits<double>::infinity();
        for (int64_t i = 0; i < clusters[u].reps.size(); ++i) {
          for (int64_t j = 0; j < clusters[v].reps.size(); ++j) {
            d = std::min(d, data::SquaredL2(clusters[u].reps[i],
                                            clusters[v].reps[j]));
          }
        }
        if (d < best) {
          best = d;
          bu = u;
          bv = v;
        }
      }
    }
    RefCluster& a = clusters[bu];
    RefCluster& b = clusters[bv];
    double wa = static_cast<double>(a.members.size());
    double wb = static_cast<double>(b.members.size());
    for (int j = 0; j < points.dim(); ++j) {
      a.centroid[j] = (a.centroid[j] * wa + b.centroid[j] * wb) / (wa + wb);
    }
    a.members.insert(a.members.end(), b.members.begin(), b.members.end());
    PointSet pool = a.scattered;
    pool.AppendAll(b.scattered);
    a.scattered = select_scattered(pool, a.centroid);
    a.reps = shrink(a.scattered, a.centroid);
    clusters.erase(clusters.begin() + static_cast<int64_t>(bv));
  }

  ClusteringResult result;
  result.labels.assign(static_cast<size_t>(points.size()), -1);
  for (RefCluster& c : clusters) {
    Cluster out;
    out.members = std::move(c.members);
    out.centroid = std::move(c.centroid);
    out.representatives = std::move(c.reps);
    int32_t label = static_cast<int32_t>(result.clusters.size());
    for (int64_t m : out.members) result.labels[m] = label;
    result.clusters.push_back(std::move(out));
  }
  return result;
}

// Canonical partition signature: sorted list of sorted member lists.
std::vector<std::vector<int64_t>> Partition(const ClusteringResult& r) {
  std::vector<std::vector<int64_t>> out;
  for (const Cluster& c : r.clusters) {
    std::vector<int64_t> m = c.members;
    std::sort(m.begin(), m.end());
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class HierarchicalVsReferenceTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int>> {};

TEST_P(HierarchicalVsReferenceTest, MatchesBruteForceReference) {
  auto [n, k] = GetParam();
  PointSet ps = RandomStream(n, 2, 3, 500 + n + k);
  HierarchicalOptions opts;
  opts.num_clusters = k;
  opts.eliminate_outliers = false;
  auto fast = HierarchicalCluster(ps, opts);
  ASSERT_TRUE(fast.ok());
  ClusteringResult ref = ReferenceHierarchical(ps, k, opts);
  EXPECT_EQ(Partition(*fast), Partition(ref));
}

INSTANTIATE_TEST_SUITE_P(SmallInputs, HierarchicalVsReferenceTest,
                         ::testing::Values(std::make_tuple(20, 3),
                                           std::make_tuple(40, 2),
                                           std::make_tuple(60, 5),
                                           std::make_tuple(80, 4),
                                           std::make_tuple(120, 6)));

}  // namespace
}  // namespace dbs::cluster
