#include "cluster/birch.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cf_tree.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::cluster {
namespace {

using data::PointSet;
using data::PointView;

PointSet Blobs(const std::vector<std::pair<double, double>>& centers,
               int64_t per_blob, double sigma, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(2);
  for (auto [cx, cy] : centers) {
    for (int64_t i = 0; i < per_blob; ++i) {
      ps.Append(std::vector<double>{rng.NextGaussian(cx, sigma),
                                    rng.NextGaussian(cy, sigma)});
    }
  }
  return ps;
}

TEST(ClusteringFeatureTest, Additivity) {
  PointSet ps(2, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  ClusteringFeature all(2);
  ClusteringFeature a(2);
  ClusteringFeature b(2);
  for (int64_t i = 0; i < 3; ++i) all.AddPoint(ps[i]);
  a.AddPoint(ps[0]);
  b.AddPoint(ps[1]);
  b.AddPoint(ps[2]);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.n, all.n);
  EXPECT_DOUBLE_EQ(a.ls[0], all.ls[0]);
  EXPECT_DOUBLE_EQ(a.ls[1], all.ls[1]);
  EXPECT_DOUBLE_EQ(a.ss, all.ss);
}

TEST(ClusteringFeatureTest, CentroidAndRadius) {
  PointSet ps(1, {0.0, 2.0});
  ClusteringFeature cf(1);
  cf.AddPoint(ps[0]);
  cf.AddPoint(ps[1]);
  EXPECT_DOUBLE_EQ(cf.centroid(0), 1.0);
  // Points at distance 1 from the centroid: radius 1.
  EXPECT_NEAR(cf.Radius(), 1.0, 1e-12);
}

TEST(ClusteringFeatureTest, SinglePointHasZeroRadius) {
  PointSet ps(3, {0.3, 0.4, 0.5});
  ClusteringFeature cf(3);
  cf.AddPoint(ps[0]);
  EXPECT_NEAR(cf.Radius(), 0.0, 1e-12);
}

TEST(ClusteringFeatureTest, CentroidDistance) {
  PointSet ps(2, {0.0, 0.0, 3.0, 4.0});
  ClusteringFeature a(2);
  ClusteringFeature b(2);
  a.AddPoint(ps[0]);
  b.AddPoint(ps[1]);
  EXPECT_DOUBLE_EQ(ClusteringFeature::CentroidDistance2(a, b), 25.0);
}

TEST(ClusteringFeatureTest, MergedRadiusGrowsWithSeparation) {
  PointSet near(1, {0.0, 0.1});
  PointSet far(1, {0.0, 5.0});
  ClusteringFeature a(1);
  a.AddPoint(near[0]);
  ClusteringFeature b(1);
  b.AddPoint(near[1]);
  ClusteringFeature c(1);
  c.AddPoint(far[1]);
  EXPECT_LT(a.MergedRadius(b), a.MergedRadius(c));
}

TEST(CfTreeTest, RejectsBadOptions) {
  CfTreeOptions bad;
  bad.page_size_bytes = 8;
  EXPECT_FALSE(CfTree::Create(2, bad).ok());
  CfTreeOptions tiny;
  tiny.memory_budget_bytes = 10;
  EXPECT_FALSE(CfTree::Create(2, tiny).ok());
  EXPECT_FALSE(CfTree::Create(0, CfTreeOptions{}).ok());
}

TEST(CfTreeTest, CountsInsertedPoints) {
  auto tree = CfTree::Create(2, CfTreeOptions{});
  ASSERT_TRUE(tree.ok());
  PointSet ps = Blobs({{0.5, 0.5}}, 500, 0.1, 1);
  for (int64_t i = 0; i < ps.size(); ++i) tree->Insert(ps[i]);
  EXPECT_EQ(tree->num_points(), 500);
  // Leaf CFs partition the data: their counts sum to n.
  double total = 0;
  for (const ClusteringFeature& cf : tree->LeafEntries()) total += cf.n;
  EXPECT_DOUBLE_EQ(total, 500.0);
}

TEST(CfTreeTest, ZeroThresholdKeepsDistinctPointsApart) {
  CfTreeOptions opts;
  opts.memory_budget_bytes = 1 << 20;
  auto tree = CfTree::Create(1, opts);
  ASSERT_TRUE(tree.ok());
  PointSet ps(1, {0.1, 0.2, 0.3, 0.2});  // one duplicate value
  for (int64_t i = 0; i < ps.size(); ++i) tree->Insert(ps[i]);
  // With T = 0, merging happens only at zero merged radius (duplicates).
  EXPECT_EQ(tree->num_leaf_entries(), 3);
}

TEST(CfTreeTest, MemoryBudgetForcesRebuilds) {
  CfTreeOptions opts;
  opts.page_size_bytes = 1024;
  opts.memory_budget_bytes = 8 * 1024;  // 8 pages only
  auto tree = CfTree::Create(2, opts);
  ASSERT_TRUE(tree.ok());
  PointSet ps = Blobs({{0.2, 0.2}, {0.8, 0.8}}, 5000, 0.1, 2);
  for (int64_t i = 0; i < ps.size(); ++i) tree->Insert(ps[i]);
  EXPECT_GT(tree->rebuilds(), 0);
  EXPECT_GT(tree->threshold(), 0.0);
  EXPECT_LE(tree->memory_bytes(), opts.memory_budget_bytes);
  EXPECT_EQ(tree->num_points(), 10000);
  double total = 0;
  for (const ClusteringFeature& cf : tree->LeafEntries()) total += cf.n;
  EXPECT_DOUBLE_EQ(total, 10000.0);
}

TEST(CfTreeTest, CapacitiesDerivedFromPageSize) {
  CfTreeOptions opts;
  opts.page_size_bytes = 1024;
  auto tree = CfTree::Create(2, opts);
  ASSERT_TRUE(tree.ok());
  // Leaf entry = (2 + dim) * 8 = 32 bytes -> 32 entries per 1K page.
  EXPECT_EQ(tree->leaf_capacity(), 32);
  EXPECT_GE(tree->internal_capacity(), 4);
  EXPECT_LE(tree->internal_capacity(), tree->leaf_capacity());
}

TEST(BirchTest, RejectsBadArguments) {
  BirchOptions bad;
  bad.num_clusters = 0;
  PointSet ps = Blobs({{0.5, 0.5}}, 10, 0.01, 3);
  EXPECT_FALSE(RunBirch(ps, bad).ok());
  BirchOptions opts;
  EXPECT_FALSE(RunBirch(PointSet(2), opts).ok());
}

TEST(BirchTest, RecoversSeparatedBlobs) {
  PointSet ps = Blobs({{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}}, 2000, 0.04, 4);
  BirchOptions opts;
  opts.num_clusters = 3;
  opts.tree.memory_budget_bytes = 64 * 1024;
  auto result = RunBirch(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clusters.size(), 3u);
  // One reported center near each true center; weights near 2000.
  for (auto [ex, ey] : {std::pair{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}}) {
    double best = 1e9;
    double weight = 0;
    for (const BirchCluster& c : result->clusters) {
      double dx = c.center[0] - ex;
      double dy = c.center[1] - ey;
      double d = std::sqrt(dx * dx + dy * dy);
      if (d < best) {
        best = d;
        weight = c.weight;
      }
    }
    EXPECT_LT(best, 0.05);
    EXPECT_NEAR(weight, 2000.0, 300.0);
  }
}

TEST(BirchTest, RadiiReflectBlobSpread) {
  PointSet ps = Blobs({{0.25, 0.5}, {0.75, 0.5}}, 3000, 0.05, 5);
  BirchOptions opts;
  opts.num_clusters = 2;
  opts.tree.memory_budget_bytes = 64 * 1024;
  auto result = RunBirch(ps, opts);
  ASSERT_TRUE(result.ok());
  for (const BirchCluster& c : result->clusters) {
    // RMS radius of an isotropic 2-D Gaussian is sigma*sqrt(2) ~ 0.071.
    EXPECT_NEAR(c.radius, 0.05 * std::sqrt(2.0), 0.025);
  }
}

TEST(BirchTest, SinglePassOverTheScan) {
  PointSet ps = Blobs({{0.5, 0.5}}, 1000, 0.1, 6);
  data::InMemoryScan scan(&ps);
  BirchOptions opts;
  opts.num_clusters = 1;
  auto result = RunBirch(scan, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(scan.passes(), 1);
}

TEST(BirchTest, TightMemoryStillClustersCoarsely) {
  // Equal-size, well-separated blobs survive even a starved tree.
  PointSet ps = Blobs({{0.1, 0.1}, {0.9, 0.9}}, 5000, 0.05, 7);
  BirchOptions opts;
  opts.num_clusters = 2;
  opts.tree.memory_budget_bytes = 4 * 1024;
  auto result = RunBirch(ps, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clusters.size(), 2u);
  std::vector<double> xs{result->clusters[0].center[0],
                         result->clusters[1].center[0]};
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[0], 0.1, 0.1);
  EXPECT_NEAR(xs[1], 0.9, 0.1);
}

TEST(BirchTest, FewerLeafEntriesThanClustersWanted) {
  PointSet ps = Blobs({{0.5, 0.5}}, 20, 0.001, 8);
  BirchOptions opts;
  opts.num_clusters = 50;  // more than distinct leaf entries
  auto result = RunBirch(ps, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(static_cast<int64_t>(result->clusters.size()), 20);
}

}  // namespace
}  // namespace dbs::cluster
