// Double-buffered FileScan contract: the prefetching mode must return
// byte-identical batches to the synchronous scan — same chunk boundaries,
// same bytes, same pass-counting Reset semantics — on sizes that straddle
// every chunk boundary (0, 1, chunk-1, chunk, chunk+1 rows), and malformed
// .dbsf inputs (the io_negative_test fixtures) must surface the SAME Status
// from Open in both modes, never a crash or a hang from the prefetch
// thread.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/dataset_io.h"
#include "util/check.h"
#include "util/rng.h"

namespace dbs::data {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteBytes(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DBS_CHECK(f != nullptr);
  if (!bytes.empty()) {
    DBS_CHECK(std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size());
  }
  std::fclose(f);
}

// A syntactically valid 32-byte .dbsf header with the given fields.
std::vector<unsigned char> DbsfHeader(uint32_t magic, uint32_t version,
                                      uint32_t dim, int64_t rows) {
  std::vector<unsigned char> bytes(32, 0);
  std::memcpy(bytes.data() + 0, &magic, 4);
  std::memcpy(bytes.data() + 4, &version, 4);
  std::memcpy(bytes.data() + 8, &dim, 4);
  std::memcpy(bytes.data() + 16, &rows, 8);
  return bytes;
}

PointSet MakePoints(int dim, int64_t rows, uint64_t seed) {
  PointSet points(dim);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<double> p(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) p[j] = rng.NextDouble();
    points.Append(PointView(p.data(), dim));
  }
  return points;
}

// Drains `scan` and appends every batch verbatim; also records the chunk
// boundaries so the two modes can be compared batch-for-batch.
void Drain(DataScan& scan, PointSet* out, std::vector<int64_t>* chunks) {
  scan.Reset();
  ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    chunks->push_back(batch.count);
    for (int64_t i = 0; i < batch.count; ++i) {
      out->Append(batch.point(i, scan.dim()));
    }
  }
}

TEST(DoubleBufferScanTest, ByteIdenticalToSyncScanAcrossChunkBoundaries) {
  const int dim = 3;
  const int64_t chunk = 8;
  for (int64_t rows : {int64_t{0}, int64_t{1}, chunk - 1, chunk, chunk + 1,
                       3 * chunk, 3 * chunk + 5}) {
    SCOPED_TRACE(::testing::Message() << "rows=" << rows);
    const std::string path = TempPath("double_buffer.dbsf");
    PointSet points = MakePoints(dim, rows, 77 + static_cast<uint64_t>(rows));
    ASSERT_TRUE(WriteDatasetFile(path, points).ok());

    auto sync_scan = FileScan::Open(path, chunk, /*double_buffered=*/false);
    ASSERT_TRUE(sync_scan.ok());
    ASSERT_FALSE((*sync_scan)->double_buffered());
    auto buffered = FileScan::Open(path, chunk, /*double_buffered=*/true);
    ASSERT_TRUE(buffered.ok());
    ASSERT_TRUE((*buffered)->double_buffered());
    EXPECT_EQ((*buffered)->size(), rows);
    EXPECT_EQ((*buffered)->dim(), dim);

    PointSet sync_points(dim), buffered_points(dim);
    std::vector<int64_t> sync_chunks, buffered_chunks;
    Drain(**sync_scan, &sync_points, &sync_chunks);
    Drain(**buffered, &buffered_points, &buffered_chunks);

    EXPECT_EQ(buffered_chunks, sync_chunks);
    ASSERT_EQ(buffered_points.size(), sync_points.size());
    ASSERT_EQ(buffered_points.size(), rows);
    if (rows > 0) {
      EXPECT_EQ(std::memcmp(buffered_points.flat().data(),
                            sync_points.flat().data(),
                            static_cast<size_t>(rows) * dim * sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(buffered_points.flat().data(),
                            points.flat().data(),
                            static_cast<size_t>(rows) * dim * sizeof(double)),
                0);
    }
    std::remove(path.c_str());
  }
}

TEST(DoubleBufferScanTest, MultiPassResetRereadsIdenticalBytes) {
  const std::string path = TempPath("double_buffer_multipass.dbsf");
  PointSet points = MakePoints(2, 41, 9);
  ASSERT_TRUE(WriteDatasetFile(path, points).ok());
  auto scan = FileScan::Open(path, 7, /*double_buffered=*/true);
  ASSERT_TRUE(scan.ok());
  for (int pass = 0; pass < 3; ++pass) {
    SCOPED_TRACE(::testing::Message() << "pass=" << pass);
    PointSet got(2);
    std::vector<int64_t> chunks;
    Drain(**scan, &got, &chunks);
    ASSERT_EQ(got.size(), points.size());
    EXPECT_EQ(std::memcmp(got.flat().data(), points.flat().data(),
                          got.flat().size() * sizeof(double)),
              0);
  }
  EXPECT_EQ((*scan)->passes(), 3);
  std::remove(path.c_str());
}

TEST(DoubleBufferScanTest, ResetMidScanDiscardsInFlightPrefetch) {
  // Reset while a prefetched chunk is pending must drain the in-flight
  // fill, rewind, and restart cleanly — the classic hang/race shape for a
  // producer-consumer scan.
  const std::string path = TempPath("double_buffer_reset.dbsf");
  PointSet points = MakePoints(2, 30, 13);
  ASSERT_TRUE(WriteDatasetFile(path, points).ok());
  auto scan = FileScan::Open(path, 4, /*double_buffered=*/true);
  ASSERT_TRUE(scan.ok());
  for (int64_t consumed_before_reset : {int64_t{0}, int64_t{1}, int64_t{3}}) {
    SCOPED_TRACE(::testing::Message()
                 << "consumed=" << consumed_before_reset);
    (*scan)->Reset();
    ScanBatch batch;
    for (int64_t i = 0; i < consumed_before_reset; ++i) {
      ASSERT_TRUE((*scan)->NextBatch(&batch));
    }
    PointSet got(2);
    std::vector<int64_t> chunks;
    Drain(**scan, &got, &chunks);
    ASSERT_EQ(got.size(), points.size());
    EXPECT_EQ(std::memcmp(got.flat().data(), points.flat().data(),
                          got.flat().size() * sizeof(double)),
              0);
  }
  std::remove(path.c_str());
}

// The io_negative_test fixture sweep, replayed against the double-buffered
// mode: Open validates before the prefetch thread exists, so every
// malformed input must yield the same Status as the synchronous mode — and
// the scan object must destruct promptly (no hung thread) whether or not
// batches were consumed.
TEST(DoubleBufferScanTest, MalformedFilesSurfaceSameStatusAsSyncMode) {
  const std::string path = TempPath("double_buffer_negative.dbsf");

  // Empty and tiny files.
  for (size_t size : {0u, 1u, 8u, 31u}) {
    SCOPED_TRACE(::testing::Message() << "tiny size=" << size);
    WriteBytes(path, std::vector<unsigned char>(size, 0x5a));
    auto sync_scan = FileScan::Open(path, 4, /*double_buffered=*/false);
    auto buffered = FileScan::Open(path, 4, /*double_buffered=*/true);
    ASSERT_FALSE(sync_scan.ok());
    ASSERT_FALSE(buffered.ok());
    EXPECT_EQ(buffered.status().code(), sync_scan.status().code());
  }

  // Garbage headers: wrong magic, wrong version, zero/huge dim, negative
  // and lying row counts.
  const struct {
    const char* what;
    uint32_t magic;
    uint32_t version;
    uint32_t dim;
    int64_t rows;
  } header_cases[] = {
      {"wrong magic", kDatasetMagic ^ 1, kDatasetVersion, 2, 1},
      {"wrong version", kDatasetMagic, kDatasetVersion + 9, 2, 1},
      {"zero dim", kDatasetMagic, kDatasetVersion, 0, 1},
      {"huge dim", kDatasetMagic, kDatasetVersion, 1u << 20, 1},
      {"negative rows", kDatasetMagic, kDatasetVersion, 2, -5},
      {"lying rows", kDatasetMagic, kDatasetVersion, 2, int64_t{1} << 60},
  };
  for (const auto& c : header_cases) {
    SCOPED_TRACE(c.what);
    WriteBytes(path, DbsfHeader(c.magic, c.version, c.dim, c.rows));
    auto sync_scan = FileScan::Open(path, 4, /*double_buffered=*/false);
    auto buffered = FileScan::Open(path, 4, /*double_buffered=*/true);
    ASSERT_FALSE(sync_scan.ok());
    ASSERT_FALSE(buffered.ok());
    EXPECT_EQ(buffered.status().code(), sync_scan.status().code());
  }

  // Truncated payloads: header promises 4 rows x 2 dims, file carries less.
  for (size_t payload : {0u, 1u, 15u, 16u, 63u}) {
    SCOPED_TRACE(::testing::Message() << "payload=" << payload);
    auto bytes = DbsfHeader(kDatasetMagic, kDatasetVersion, 2, 4);
    for (size_t i = 0; i < payload; ++i) {
      bytes.push_back(static_cast<unsigned char>(i));
    }
    WriteBytes(path, bytes);
    auto sync_scan = FileScan::Open(path, 4, /*double_buffered=*/false);
    auto buffered = FileScan::Open(path, 4, /*double_buffered=*/true);
    ASSERT_FALSE(sync_scan.ok());
    ASSERT_FALSE(buffered.ok());
    EXPECT_EQ(buffered.status().code(), sync_scan.status().code());
  }

  std::remove(path.c_str());
}

// A valid header and payload at Open time, with a batch size that makes the
// first prefetch succeed: the scan must still be destructible without
// consuming everything (the in-flight fill drains on shutdown).
TEST(DoubleBufferScanTest, DestructionWithUnconsumedPrefetchDoesNotHang) {
  const std::string path = TempPath("double_buffer_abandon.dbsf");
  PointSet points = MakePoints(2, 64, 3);
  ASSERT_TRUE(WriteDatasetFile(path, points).ok());
  for (int consume : {0, 1, 3}) {
    SCOPED_TRACE(::testing::Message() << "consume=" << consume);
    auto scan = FileScan::Open(path, 8, /*double_buffered=*/true);
    ASSERT_TRUE(scan.ok());
    (*scan)->Reset();
    ScanBatch batch;
    for (int i = 0; i < consume; ++i) {
      ASSERT_TRUE((*scan)->NextBatch(&batch));
    }
    // Destructor runs here with a prefetch pending.
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbs::data
