// Contract tests: every sampler must produce IDENTICAL output whether the
// dataset is scanned from memory or streamed from a .dbsf file — the
// out-of-core path is the same algorithm, not an approximation of it.
// The same contract covers HOW densities are computed: batched (optionally
// sharded across a worker pool) evaluation must leave the sample
// byte-identical to the pre-batching per-point pipeline.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/biased_sampler.h"
#include "core/streaming_sampler.h"
#include "data/dataset_io.h"
#include "density/kde.h"
#include "parallel/batch_executor.h"
#include "sampling/uniform_sampler.h"
#include "synth/generator.h"

namespace dbs::core {
namespace {

synth::ClusteredDataset MakeData(uint64_t seed) {
  synth::ClusteredDatasetOptions opts;
  opts.num_clusters = 6;
  opts.num_cluster_points = 15000;
  opts.noise_multiplier = 0.2;
  opts.shuffle = true;
  opts.seed = seed;
  auto ds = synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds).value();
}

std::string StageFile(const data::PointSet& points, const char* name) {
  std::string path = std::string(::testing::TempDir()) + "/" + name;
  DBS_CHECK(data::WriteDatasetFile(path, points).ok());
  return path;
}

void ExpectIdentical(const BiasedSample& a, const BiasedSample& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.inclusion_probs, b.inclusion_probs);
  EXPECT_EQ(a.densities, b.densities);
  EXPECT_EQ(a.points.flat(), b.points.flat());
  EXPECT_DOUBLE_EQ(a.normalizer, b.normalizer);
  EXPECT_EQ(a.clamped_count, b.clamped_count);
}

// Forwards the scalar virtuals to a wrapped estimator but inherits the
// DEFAULT batch implementations — the per-point execution the sampler used
// before density evaluation was batched. Samples drawn through this wrapper
// ARE the pre-batching output.
class ScalarPathOnly final : public density::DensityEstimator {
 public:
  explicit ScalarPathOnly(const density::DensityEstimator* inner)
      : inner_(inner) {}
  int dim() const override { return inner_->dim(); }
  double Evaluate(data::PointView p) const override {
    return inner_->Evaluate(p);
  }
  double EvaluateExcluding(data::PointView x,
                           data::PointView self) const override {
    return inner_->EvaluateExcluding(x, self);
  }
  int64_t total_mass() const override { return inner_->total_mass(); }
  double AverageDensity() const override { return inner_->AverageDensity(); }

 private:
  const density::DensityEstimator* inner_;
};

TEST(ScanEquivalenceTest, KdeFitMatchesAcrossScanKinds) {
  synth::ClusteredDataset ds = MakeData(1);
  std::string path = StageFile(ds.points, "kde_eq.dbsf");
  density::KdeOptions opts;
  opts.num_kernels = 200;
  opts.seed = 5;
  auto mem = density::Kde::Fit(ds.points, opts);
  ASSERT_TRUE(mem.ok());
  auto file_scan = data::FileScan::Open(path, /*batch_rows=*/777);
  ASSERT_TRUE(file_scan.ok());
  auto file = density::Kde::Fit(**file_scan, opts);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(mem->bandwidths(), file->bandwidths());
  EXPECT_EQ(mem->centers().flat(), file->centers().flat());
  std::remove(path.c_str());
}

TEST(ScanEquivalenceTest, TwoPassSamplerMatchesAcrossScanKinds) {
  synth::ClusteredDataset ds = MakeData(2);
  std::string path = StageFile(ds.points, "twopass_eq.dbsf");
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 200;
  auto kde = density::Kde::Fit(ds.points, kde_opts);
  ASSERT_TRUE(kde.ok());
  BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 500;
  opts.seed = 7;
  BiasedSampler sampler(opts);
  auto mem = sampler.Run(ds.points, *kde);
  ASSERT_TRUE(mem.ok());
  auto file_scan = data::FileScan::Open(path, /*batch_rows=*/333);
  ASSERT_TRUE(file_scan.ok());
  auto file = sampler.Run(**file_scan, *kde);
  ASSERT_TRUE(file.ok());
  ExpectIdentical(*mem, *file);
  std::remove(path.c_str());
}

TEST(ScanEquivalenceTest, StreamingSamplerMatchesAcrossScanKinds) {
  synth::ClusteredDataset ds = MakeData(3);
  std::string path = StageFile(ds.points, "stream_eq.dbsf");
  StreamingSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 400;
  opts.num_kernels = 200;
  opts.seed = 9;
  auto mem = StreamingBiasedSample(ds.points, opts);
  ASSERT_TRUE(mem.ok());
  auto file_scan = data::FileScan::Open(path, /*batch_rows=*/1000);
  ASSERT_TRUE(file_scan.ok());
  auto file = StreamingBiasedSample(**file_scan, opts);
  ASSERT_TRUE(file.ok());
  ExpectIdentical(*mem, *file);
  std::remove(path.c_str());
}

TEST(ScanEquivalenceTest, UniformSamplerMatchesAcrossScanKinds) {
  synth::ClusteredDataset ds = MakeData(4);
  std::string path = StageFile(ds.points, "uniform_eq.dbsf");
  sampling::BernoulliSampleOptions opts;
  opts.target_size = 600;
  opts.seed = 11;
  auto mem = sampling::BernoulliSample(ds.points, opts);
  ASSERT_TRUE(mem.ok());
  auto file_scan = data::FileScan::Open(path, /*batch_rows=*/123);
  ASSERT_TRUE(file_scan.ok());
  auto file = sampling::BernoulliSample(**file_scan, opts);
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(mem->size(), file->size());
  EXPECT_EQ(mem->flat(), file->flat());
  std::remove(path.c_str());
}

TEST(ScanEquivalenceTest, TwoPassSamplerMatchesPreBatchingPipeline) {
  // Byte-identical samples whether densities come from the KDE's tuned
  // batch path, the frozen pre-batching per-point path, or a batch path
  // sharded across a worker pool — for a fixed seed they are all the same
  // sample.
  synth::ClusteredDataset ds = MakeData(6);
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 200;
  auto kde = density::Kde::Fit(ds.points, kde_opts);
  ASSERT_TRUE(kde.ok());
  ScalarPathOnly frozen(&*kde);
  BiasedSamplerOptions opts;
  opts.a = 0.5;
  opts.target_size = 500;
  opts.seed = 17;
  auto batched = BiasedSampler(opts).Run(ds.points, *kde);
  ASSERT_TRUE(batched.ok());
  auto reference = BiasedSampler(opts).Run(ds.points, frozen);
  ASSERT_TRUE(reference.ok());
  ExpectIdentical(*reference, *batched);

  parallel::BatchExecutorOptions pool;
  pool.num_workers = 4;
  parallel::BatchExecutor executor(pool);
  opts.executor = &executor;
  auto sharded = BiasedSampler(opts).Run(ds.points, *kde);
  ASSERT_TRUE(sharded.ok());
  ExpectIdentical(*reference, *sharded);
  executor.Shutdown();
}

TEST(ScanEquivalenceTest, OnePassSamplerMatchesAcrossExecutors) {
  synth::ClusteredDataset ds = MakeData(7);
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 200;
  auto kde = density::Kde::Fit(ds.points, kde_opts);
  ASSERT_TRUE(kde.ok());
  BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 400;
  opts.seed = 19;
  auto sequential = BiasedSampler(opts).RunOnePass(ds.points, *kde);
  ASSERT_TRUE(sequential.ok());

  parallel::BatchExecutorOptions pool;
  pool.num_workers = 4;
  parallel::BatchExecutor executor(pool);
  opts.executor = &executor;
  auto sharded = BiasedSampler(opts).RunOnePass(ds.points, *kde);
  ASSERT_TRUE(sharded.ok());
  ExpectIdentical(*sequential, *sharded);
  executor.Shutdown();
}

TEST(ScanEquivalenceTest, BatchSizeNeverChangesResults) {
  // The same file scanned with different batch sizes gives bit-identical
  // samples (batching is an I/O detail, not a semantic one).
  synth::ClusteredDataset ds = MakeData(5);
  std::string path = StageFile(ds.points, "batch_eq.dbsf");
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = 150;
  auto kde = density::Kde::Fit(ds.points, kde_opts);
  ASSERT_TRUE(kde.ok());
  BiasedSamplerOptions opts;
  opts.a = -0.25;
  opts.target_size = 300;
  opts.seed = 13;
  BiasedSampler sampler(opts);
  Result<BiasedSample> reference = Status::Internal("unset");
  for (int64_t batch_rows : {1LL, 64LL, 4096LL, 100000LL}) {
    auto scan = data::FileScan::Open(path, batch_rows);
    ASSERT_TRUE(scan.ok());
    auto sample = sampler.Run(**scan, *kde);
    ASSERT_TRUE(sample.ok());
    if (!reference.ok()) {
      reference = std::move(sample);
    } else {
      ExpectIdentical(*reference, *sample);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbs::core
