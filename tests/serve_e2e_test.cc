// End-to-end: the served path vs the in-process library, bitwise.
//
// The acceptance property of the serving subsystem (ISSUE): a client that
// fits nothing registers a saved .dbsk, then a 10k-point density batch, a
// biased-sample request (a=0.5) and an outlier-score batch over loopback
// TCP return results bitwise identical — same seed — to direct library
// calls on the same loaded model, under >= 4 concurrent clients, with a
// clean shutdown. This test IS that acceptance check.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/biased_sampler.h"
#include "density/kde.h"
#include "density/kde_io.h"
#include "outlier/ball_integration.h"
#include "serve/batch_executor.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/rng.h"

namespace dbs {
namespace {

constexpr int kDim = 3;

data::PointSet MakePoints(uint64_t seed, int64_t n) {
  Rng rng(seed);
  data::PointSet points(kDim);
  std::vector<double> row(kDim);
  for (int64_t i = 0; i < n; ++i) {
    // Two blobs plus a sprinkle of far-out points so outlier flags differ.
    bool sparse = (i % 97) == 0;
    for (int j = 0; j < kDim; ++j) {
      row[j] = sparse ? rng.NextDouble(-8.0, 8.0)
                      : rng.NextGaussian(i % 2 == 0 ? -1.0 : 1.0, 0.4);
    }
    points.Append(row);
  }
  return points;
}

// Everything a test needs: a daemon serving one .dbsk model, plus the same
// model loaded in-process for computing expectations.
class ServeE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_path_ = std::string(::testing::TempDir()) + "/serve_e2e.dbsk";
    density::KdeOptions options;
    options.num_kernels = 64;
    options.seed = 7;
    auto fitted = density::Kde::Fit(MakePoints(42, 2000), options);
    ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
    ASSERT_TRUE(density::SaveKde(*fitted, model_path_).ok());

    // The reference model is loaded from the same file the daemon loads.
    auto loaded = density::LoadKde(model_path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    reference_ = std::make_unique<density::Kde>(std::move(loaded).value());

    serve::BatchExecutorOptions pool;
    pool.num_workers = 4;
    pool.queue_capacity = 1024;
    executor_ = std::make_unique<serve::BatchExecutor>(pool);
    service_ =
        std::make_unique<serve::ModelService>(&registry_, executor_.get());
    auto server = serve::Server::Start(service_.get(), serve::ServerOptions{});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (executor_ != nullptr) executor_->Shutdown();
    std::remove(model_path_.c_str());
  }

  serve::Client ConnectOrDie() {
    auto client = serve::Client::Connect(server_->port());
    DBS_CHECK(client.ok());
    return std::move(client).value();
  }

  std::string model_path_;
  std::unique_ptr<density::Kde> reference_;
  serve::ModelRegistry registry_;
  std::unique_ptr<serve::BatchExecutor> executor_;
  std::unique_ptr<serve::ModelService> service_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeE2eTest, ServedAnswersAreBitwiseIdenticalToLibraryCalls) {
  serve::Client client = ConnectOrDie();
  ASSERT_TRUE(client.RegisterModel("est", model_path_).ok());

  const data::PointSet queries = MakePoints(99, 10000);

  // --- Density batch -------------------------------------------------------
  serve::DensityBatchRequest density_request;
  density_request.model = "est";
  density_request.points = queries;
  auto density = client.Density(density_request);
  ASSERT_TRUE(density.ok()) << density.status().ToString();
  ASSERT_EQ(density->densities.size(), 10000u);
  for (int64_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(density->densities[static_cast<size_t>(i)],
              reference_->Evaluate(queries[i]))
        << "density diverges from the library at point " << i;
  }

  // --- Biased sample, a = 0.5, fixed seed ----------------------------------
  serve::SampleRequest sample_request;
  sample_request.model = "est";
  sample_request.a = 0.5;
  sample_request.target_size = 500;
  sample_request.seed = 1234;
  sample_request.points = queries;
  auto sample = client.Sample(sample_request);
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();

  core::BiasedSamplerOptions sampler_options;
  sampler_options.a = sample_request.a;
  sampler_options.target_size = sample_request.target_size;
  sampler_options.density_floor_fraction =
      sample_request.density_floor_fraction;
  sampler_options.seed = sample_request.seed;
  auto expected_sample =
      core::BiasedSampler(sampler_options).Run(queries, *reference_);
  ASSERT_TRUE(expected_sample.ok());
  EXPECT_GT(sample->points.size(), 0);
  EXPECT_EQ(sample->points.flat(), expected_sample->points.flat());
  EXPECT_EQ(sample->inclusion_probs, expected_sample->inclusion_probs);
  EXPECT_EQ(sample->densities, expected_sample->densities);
  EXPECT_EQ(sample->normalizer, expected_sample->normalizer);
  EXPECT_EQ(sample->clamped_count, expected_sample->clamped_count);

  // Same request again: the daemon is deterministic per (request, seed).
  auto replay = client.Sample(sample_request);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->points.flat(), sample->points.flat());

  // --- Outlier-score batch -------------------------------------------------
  serve::OutlierScoreBatchRequest outlier_request;
  outlier_request.model = "est";
  outlier_request.radius = 0.5;
  outlier_request.max_neighbors = 20;
  outlier_request.metric = data::Metric::kL2;
  outlier_request.integration = outlier::BallIntegration::kQuasiMonteCarlo;
  outlier_request.qmc_samples = 32;
  outlier_request.points = MakePoints(7, 2000);
  auto outliers = client.OutlierScores(outlier_request);
  ASSERT_TRUE(outliers.ok()) << outliers.status().ToString();
  ASSERT_EQ(outliers->expected_neighbors.size(), 2000u);

  const outlier::BallIntegrator integrator(
      outlier_request.integration, kDim, outlier_request.qmc_samples,
      outlier_request.metric);
  const double threshold =
      static_cast<double>(outlier_request.max_neighbors + 1);
  int64_t flagged = 0;
  for (int64_t i = 0; i < outlier_request.points.size(); ++i) {
    double expected = integrator.IntegrateExcludingSelf(
        *reference_, outlier_request.points[i], outlier_request.radius);
    ASSERT_EQ(outliers->expected_neighbors[static_cast<size_t>(i)], expected)
        << "outlier score diverges from the library at point " << i;
    EXPECT_EQ(outliers->likely_outlier[static_cast<size_t>(i)],
              expected <= threshold ? 1 : 0);
    flagged += outliers->likely_outlier[static_cast<size_t>(i)];
  }
  // The sprinkle of far-out points must actually trip the flag.
  EXPECT_GT(flagged, 0);
  EXPECT_LT(flagged, outlier_request.points.size());

  // --- Stats reflect the traffic ------------------------------------------
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->models.size(), 1u);
  EXPECT_EQ(stats->models[0], "est");
  bool saw_density = false;
  for (const auto& row : stats->per_type) {
    if (row.type == serve::RequestType::kDensityBatch) {
      saw_density = true;
      EXPECT_EQ(row.count, 1u);
      EXPECT_EQ(row.errors, 0u);
      EXPECT_EQ(row.points, 10000u);
      EXPECT_GT(row.latency_max_us, 0.0);
      EXPECT_GE(row.latency_p99_us, row.latency_p50_us);
    }
  }
  EXPECT_TRUE(saw_density);
}

TEST_F(ServeE2eTest, FourConcurrentClientsGetBitwiseIdenticalAnswers) {
  {
    serve::Client admin = ConnectOrDie();
    ASSERT_TRUE(admin.RegisterModel("est", model_path_).ok());
  }

  constexpr int kClients = 4;
  constexpr int kRoundsPerClient = 5;
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      serve::Client client = ConnectOrDie();
      // Distinct per-client workload, deterministic expectations.
      const data::PointSet queries =
          MakePoints(1000 + static_cast<uint64_t>(t), 2500);
      std::vector<double> expected(static_cast<size_t>(queries.size()));
      for (int64_t i = 0; i < queries.size(); ++i) {
        expected[static_cast<size_t>(i)] = reference_->Evaluate(queries[i]);
      }
      for (int round = 0; round < kRoundsPerClient; ++round) {
        serve::DensityBatchRequest request;
        request.model = "est";
        request.points = queries;
        auto response = client.Density(request);
        if (!response.ok() || response->densities != expected) {
          mismatches.fetch_add(1);
          continue;
        }

        serve::SampleRequest sample_request;
        sample_request.model = "est";
        sample_request.a = 0.5;
        sample_request.target_size = 200;
        sample_request.seed = 55u + static_cast<uint64_t>(t);
        sample_request.points = queries;
        auto served = client.Sample(sample_request);
        core::BiasedSamplerOptions options;
        options.a = sample_request.a;
        options.target_size = sample_request.target_size;
        options.density_floor_fraction =
            sample_request.density_floor_fraction;
        options.seed = sample_request.seed;
        auto direct =
            core::BiasedSampler(options).Run(queries, *reference_);
        if (!served.ok() || !direct.ok() ||
            served->points.flat() != direct->points.flat() ||
            served->inclusion_probs != direct->inclusion_probs ||
            served->normalizer != direct->normalizer) {
          mismatches.fetch_add(1);
          continue;
        }
        completed.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(completed.load(), kClients * kRoundsPerClient);

  serve::Client probe = ConnectOrDie();
  auto stats = probe.Stats();
  ASSERT_TRUE(stats.ok());
  for (const auto& row : stats->per_type) {
    if (row.type == serve::RequestType::kDensityBatch) {
      EXPECT_EQ(row.count,
                static_cast<uint64_t>(kClients * kRoundsPerClient));
      EXPECT_EQ(row.errors, 0u);
    }
  }
}

TEST_F(ServeE2eTest, ErrorsComeBackAsStatusesAndConnectionSurvives) {
  serve::Client client = ConnectOrDie();

  // Unknown model.
  serve::DensityBatchRequest request;
  request.model = "nope";
  request.points = MakePoints(1, 10);
  auto response = client.Density(request);
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);

  // Registering a bogus path fails but keeps the connection usable.
  EXPECT_EQ(client.RegisterModel("bad", "/no/such/file.dbsk").code(),
            StatusCode::kIoError);

  ASSERT_TRUE(client.RegisterModel("est", model_path_).ok());

  // Dimension mismatch.
  serve::DensityBatchRequest mismatched;
  mismatched.model = "est";
  data::PointSet wrong_dim(kDim + 1);
  std::vector<double> row(kDim + 1, 0.0);
  wrong_dim.Append(row);
  mismatched.points = wrong_dim;
  EXPECT_EQ(client.Density(mismatched).status().code(),
            StatusCode::kInvalidArgument);

  // Eviction: served requests now fail, and re-registering heals them.
  ASSERT_TRUE(client.EvictModel("est").ok());
  request.model = "est";
  EXPECT_EQ(client.Density(request).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(client.RegisterModel("est", model_path_).ok());
  EXPECT_TRUE(client.Density(request).ok());
}

TEST_F(ServeE2eTest, RemoteShutdownUnblocksWaitForShutdown) {
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    server_->WaitForShutdown();
    returned.store(true);
  });

  serve::Client client = ConnectOrDie();
  EXPECT_FALSE(returned.load());
  ASSERT_TRUE(client.RequestShutdown().ok());
  waiter.join();
  EXPECT_TRUE(returned.load());
  server_->Stop();

  // After Stop, new connections are refused.
  EXPECT_FALSE(serve::Client::Connect(server_->port()).ok());
}

}  // namespace
}  // namespace dbs
