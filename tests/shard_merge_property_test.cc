// The merge contract, property-tested (DESIGN.md §12): MergePartialKde is
// a sorted disjoint union with no arithmetic, so every merge order and
// every tree shape must finalize to the SAME model, bitwise. Also pins the
// merged-model round trip: FinalizeKde -> ExportState/FromState and
// SaveKde/LoadKde both reproduce Evaluate byte-for-byte.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/range_scan.h"
#include "density/kde.h"
#include "density/kde_io.h"
#include "density/kde_partial.h"
#include "synth/generator.h"
#include "util/shard.h"

namespace dbs {
namespace {

constexpr int kDim = 3;

data::PointSet MakeData(int64_t points, uint64_t seed) {
  synth::ClusteredDatasetOptions opts;
  opts.dim = kDim;
  opts.num_clusters = 4;
  opts.num_cluster_points = points;
  opts.noise_multiplier = 0.1;
  opts.seed = seed;
  auto ds = synth::MakeClusteredDataset(opts);
  EXPECT_TRUE(ds.ok());
  return std::move(ds)->points;
}

density::KdeOptions KdeOpts() {
  density::KdeOptions opts;
  opts.num_kernels = 128;
  opts.seed = 13;
  return opts;
}

// One partial per shard, each from its own RangeScan slice.
std::vector<density::PartialKde> FitAllShards(const data::PointSet& data,
                                              int64_t num_shards) {
  std::vector<density::PartialKde> partials;
  for (int64_t s = 0; s < num_shards; ++s) {
    ShardInfo info;
    info.shard = s;
    info.num_shards = num_shards;
    info.total_rows = data.size();
    const RowRange range = ShardRowRange(info.total_rows, num_shards, s);
    data::InMemoryScan base(&data);
    data::RangeScan slice(&base, range.begin, range.end);
    auto partial = density::Kde::FitPartial(slice, KdeOpts(), info);
    EXPECT_TRUE(partial.ok()) << partial.status().ToString();
    partials.push_back(std::move(*partial));
  }
  return partials;
}

bool SameDoubles(const std::vector<double>& a,
                 const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void ExpectSameModel(const density::Kde& got, const density::Kde& want) {
  const density::Kde::State g = got.ExportState();
  const density::Kde::State w = want.ExportState();
  EXPECT_EQ(g.n, w.n);
  EXPECT_EQ(g.kernel, w.kernel);
  EXPECT_TRUE(SameDoubles(g.centers.flat(), w.centers.flat()));
  EXPECT_TRUE(SameDoubles(g.bandwidths, w.bandwidths));
  EXPECT_TRUE(SameDoubles(g.bounds.lo(), w.bounds.lo()));
  EXPECT_TRUE(SameDoubles(g.bounds.hi(), w.bounds.hi()));
}

// Left fold in the given order of shard indices.
[[nodiscard]] Result<density::Kde> FoldAndFinalize(
    const std::vector<density::PartialKde>& partials,
    const std::vector<size_t>& order) {
  density::PartialKde acc = partials[order[0]];
  for (size_t i = 1; i < order.size(); ++i) {
    auto merged = density::MergePartialKde(std::move(acc),
                                           partials[order[i]]);
    if (!merged.ok()) return merged.status();
    acc = std::move(*merged);
  }
  return density::FinalizeKde(std::move(acc), KdeOpts());
}

TEST(ShardMergePropertyTest, EveryMergeOrderFinalizesIdentically) {
  const data::PointSet data = MakeData(1500, 31);
  const std::vector<density::PartialKde> partials = FitAllShards(data, 4);
  std::vector<size_t> order(partials.size());
  std::iota(order.begin(), order.end(), size_t{0});
  auto reference = FoldAndFinalize(partials, order);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  // All 24 permutations of the 4 shards.
  while (std::next_permutation(order.begin(), order.end())) {
    auto kde = FoldAndFinalize(partials, order);
    ASSERT_TRUE(kde.ok()) << kde.status().ToString();
    ExpectSameModel(*kde, *reference);
  }
}

TEST(ShardMergePropertyTest, TreeShapeCannotAffectTheModel) {
  const data::PointSet data = MakeData(1500, 37);
  std::vector<density::PartialKde> p = FitAllShards(data, 4);

  // Balanced: (0+1) + (2+3).
  auto left = density::MergePartialKde(p[0], p[1]);
  auto right = density::MergePartialKde(p[2], p[3]);
  ASSERT_TRUE(left.ok() && right.ok());
  auto balanced = density::MergePartialKde(std::move(*left),
                                           std::move(*right));
  ASSERT_TRUE(balanced.ok());
  auto balanced_kde = density::FinalizeKde(std::move(*balanced), KdeOpts());
  ASSERT_TRUE(balanced_kde.ok());

  // Skewed: ((3+1) + 0) + 2.
  auto skew = density::MergePartialKde(p[3], p[1]);
  ASSERT_TRUE(skew.ok());
  skew = density::MergePartialKde(std::move(*skew), p[0]);
  ASSERT_TRUE(skew.ok());
  skew = density::MergePartialKde(std::move(*skew), p[2]);
  ASSERT_TRUE(skew.ok());
  auto skewed_kde = density::FinalizeKde(std::move(*skew), KdeOpts());
  ASSERT_TRUE(skewed_kde.ok());

  ExpectSameModel(*skewed_kde, *balanced_kde);
}

TEST(ShardMergePropertyTest, MergeIsCommutative) {
  const data::PointSet data = MakeData(800, 41);
  std::vector<density::PartialKde> p = FitAllShards(data, 2);
  auto ab = density::MergePartialKde(p[0], p[1]);
  auto ba = density::MergePartialKde(p[1], p[0]);
  ASSERT_TRUE(ab.ok() && ba.ok());
  ASSERT_EQ(ab->parts.size(), 2u);
  EXPECT_EQ(ab->parts[0].shard, 0);
  EXPECT_EQ(ba->parts[0].shard, 0);
  auto kde_ab = density::FinalizeKde(std::move(*ab), KdeOpts());
  auto kde_ba = density::FinalizeKde(std::move(*ba), KdeOpts());
  ASSERT_TRUE(kde_ab.ok() && kde_ba.ok());
  ExpectSameModel(*kde_ba, *kde_ab);
}

TEST(ShardMergePropertyTest, DuplicateShardIsRejected) {
  const data::PointSet data = MakeData(800, 43);
  std::vector<density::PartialKde> p = FitAllShards(data, 2);
  auto dup = density::MergePartialKde(p[0], p[0]);
  EXPECT_FALSE(dup.ok());
  // Partials from builds with different shard counts cannot merge either.
  std::vector<density::PartialKde> other = FitAllShards(data, 3);
  auto cross = density::MergePartialKde(p[0], other[1]);
  EXPECT_FALSE(cross.ok());
}

TEST(ShardMergePropertyTest, IncompletePartialCannotFinalize) {
  const data::PointSet data = MakeData(800, 47);
  std::vector<density::PartialKde> p = FitAllShards(data, 3);
  auto partial = density::MergePartialKde(p[0], p[2]);  // shard 1 missing
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(density::FinalizeKde(std::move(*partial), KdeOpts()).ok());
}

TEST(ShardMergePropertyTest, MergedModelRoundTripsThroughStateAndDisk) {
  const data::PointSet data = MakeData(2000, 53);
  std::vector<density::PartialKde> p = FitAllShards(data, 3);
  auto merged = density::MergePartialKde(p[0], p[1]);
  ASSERT_TRUE(merged.ok());
  merged = density::MergePartialKde(std::move(*merged), p[2]);
  ASSERT_TRUE(merged.ok());
  auto kde = density::FinalizeKde(std::move(*merged), KdeOpts());
  ASSERT_TRUE(kde.ok());

  const data::PointSet queries = MakeData(200, 59);
  std::vector<double> want(static_cast<size_t>(queries.size()));
  for (int64_t i = 0; i < queries.size(); ++i) {
    want[static_cast<size_t>(i)] = kde->Evaluate(queries[i]);
  }

  // ExportState -> FromState.
  auto rebuilt = density::Kde::FromState(kde->ExportState());
  ASSERT_TRUE(rebuilt.ok());
  // SaveKde -> LoadKde.
  const std::string path =
      ::testing::TempDir() + "shard_merge_roundtrip.dbsk";
  ASSERT_TRUE(density::SaveKde(*kde, path).ok());
  auto loaded = density::LoadKde(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  for (int64_t i = 0; i < queries.size(); ++i) {
    const double w = want[static_cast<size_t>(i)];
    const double from_state = rebuilt->Evaluate(queries[i]);
    const double from_disk = loaded->Evaluate(queries[i]);
    EXPECT_EQ(std::memcmp(&from_state, &w, sizeof(double)), 0) << i;
    EXPECT_EQ(std::memcmp(&from_disk, &w, sizeof(double)), 0) << i;
  }
}

}  // namespace
}  // namespace dbs
