#include "density/kde.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "util/rng.h"

namespace dbs::density {
namespace {

using data::PointSet;
using data::PointView;

// Uniform points in [0,1]^dim.
PointSet UniformCube(int64_t n, int dim, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(dim);
  ps.Reserve(n);
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextDouble();
    ps.Append(buf);
  }
  return ps;
}

// Two Gaussian blobs: dense at (0.25, ...), sparse at (0.75, ...).
PointSet TwoBlobs(int64_t n_dense, int64_t n_sparse, int dim, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n_dense; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextGaussian(0.25, 0.02);
    ps.Append(buf);
  }
  for (int64_t i = 0; i < n_sparse; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextGaussian(0.75, 0.05);
    ps.Append(buf);
  }
  return ps;
}

TEST(KdeTest, RejectsEmptyDataset) {
  PointSet ps(2);
  auto result = Kde::Fit(ps, KdeOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), dbs::StatusCode::kInvalidArgument);
}

TEST(KdeTest, RejectsBadOptions) {
  PointSet ps = UniformCube(100, 2, 1);
  KdeOptions opts;
  opts.num_kernels = 0;
  EXPECT_FALSE(Kde::Fit(ps, opts).ok());

  KdeOptions fixed;
  fixed.bandwidth_rule = BandwidthRule::kFixed;
  fixed.fixed_bandwidth = 0.0;
  EXPECT_FALSE(Kde::Fit(ps, fixed).ok());
}

TEST(KdeTest, UsesAtMostNumKernelsCenters) {
  PointSet ps = UniformCube(5000, 2, 2);
  KdeOptions opts;
  opts.num_kernels = 100;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  EXPECT_EQ(kde->num_kernels(), 100);
  EXPECT_EQ(kde->total_mass(), 5000);
}

TEST(KdeTest, SmallDatasetUsesAllPointsAsCenters) {
  PointSet ps = UniformCube(50, 2, 3);
  KdeOptions opts;
  opts.num_kernels = 1000;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  EXPECT_EQ(kde->num_kernels(), 50);
}

TEST(KdeTest, IntegralApproximatesN) {
  // For uniform data on [0,1]^2 the density should be ~n everywhere away
  // from the boundary; Monte-Carlo integrate over the middle of the cube.
  const int64_t n = 20000;
  PointSet ps = UniformCube(n, 2, 4);
  KdeOptions opts;
  opts.num_kernels = 500;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());

  dbs::Rng rng(99);
  double sum = 0.0;
  const int probes = 2000;
  for (int i = 0; i < probes; ++i) {
    double q[2] = {rng.NextDouble(0.2, 0.8), rng.NextDouble(0.2, 0.8)};
    sum += kde->Evaluate(PointView(q, 2));
  }
  double mean_density = sum / probes;
  EXPECT_NEAR(mean_density, static_cast<double>(n), 0.15 * n);
}

TEST(KdeTest, DenseRegionScoresHigherThanSparse) {
  PointSet ps = TwoBlobs(9000, 1000, 2, 5);
  KdeOptions opts;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  double dense_center[2] = {0.25, 0.25};
  double sparse_center[2] = {0.75, 0.75};
  double empty[2] = {0.25, 0.75};
  double f_dense = kde->Evaluate(PointView(dense_center, 2));
  double f_sparse = kde->Evaluate(PointView(sparse_center, 2));
  double f_empty = kde->Evaluate(PointView(empty, 2));
  EXPECT_GT(f_dense, 5 * f_sparse);
  EXPECT_GT(f_sparse, f_empty);
}

TEST(KdeTest, GridIndexMatchesBruteForceExactly) {
  for (int dim : {1, 2, 3, 5}) {
    PointSet ps = TwoBlobs(2000, 500, dim, 10 + dim);
    KdeOptions opts;
    opts.num_kernels = 300;
    auto kde = Kde::Fit(ps, opts);
    ASSERT_TRUE(kde.ok());
    dbs::Rng rng(1234);
    std::vector<double> q(dim);
    for (int i = 0; i < 300; ++i) {
      for (int j = 0; j < dim; ++j) q[j] = rng.NextDouble(-0.2, 1.2);
      PointView p(q.data(), dim);
      // Identical set of contributing kernels; only summation order may
      // differ, so agreement must hold to floating-point roundoff.
      double a = kde->Evaluate(p);
      double b = kde->EvaluateBrute(p);
      EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(b))) << "dim=" << dim;
    }
  }
}

TEST(KdeTest, GridIndexMatchesBruteForGaussianKernel) {
  PointSet ps = TwoBlobs(1500, 500, 2, 21);
  KdeOptions opts;
  opts.kernel = KernelType::kGaussian;
  opts.num_kernels = 200;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  dbs::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    double q[2] = {rng.NextDouble(), rng.NextDouble()};
    PointView p(q, 2);
    double a = kde->Evaluate(p);
    double b = kde->EvaluateBrute(p);
    EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(b)));
  }
}

TEST(KdeTest, DeterministicForSeed) {
  PointSet ps = UniformCube(3000, 3, 6);
  KdeOptions opts;
  opts.seed = 42;
  opts.num_kernels = 100;
  auto a = Kde::Fit(ps, opts);
  auto b = Kde::Fit(ps, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  double q[3] = {0.4, 0.5, 0.6};
  EXPECT_DOUBLE_EQ(a->Evaluate(PointView(q, 3)),
                   b->Evaluate(PointView(q, 3)));

  KdeOptions other = opts;
  other.seed = 43;
  auto c = Kde::Fit(ps, other);
  ASSERT_TRUE(c.ok());
  // Different centers: almost surely a different value.
  EXPECT_NE(a->Evaluate(PointView(q, 3)), c->Evaluate(PointView(q, 3)));
}

TEST(KdeTest, ZeroFarFromAllData) {
  PointSet ps = UniformCube(1000, 2, 7);
  auto kde = Kde::Fit(ps, KdeOptions{});
  ASSERT_TRUE(kde.ok());
  double far[2] = {50.0, 50.0};
  EXPECT_EQ(kde->Evaluate(PointView(far, 2)), 0.0);
}

TEST(KdeTest, MoreKernelsImproveAccuracy) {
  // Error of the density estimate at the center of a uniform cube should
  // shrink (weakly) as kernels increase; check the coarse trend the paper's
  // Fig 7 reports.
  const int64_t n = 30000;
  PointSet ps = UniformCube(n, 2, 8);
  double err_small;
  double err_large;
  {
    KdeOptions opts;
    opts.num_kernels = 20;
    auto kde = Kde::Fit(ps, opts);
    ASSERT_TRUE(kde.ok());
    double q[2] = {0.5, 0.5};
    err_small = std::abs(kde->Evaluate(PointView(q, 2)) - n);
  }
  {
    KdeOptions opts;
    opts.num_kernels = 1000;
    auto kde = Kde::Fit(ps, opts);
    ASSERT_TRUE(kde.ok());
    double q[2] = {0.5, 0.5};
    err_large = std::abs(kde->Evaluate(PointView(q, 2)) - n);
  }
  EXPECT_LT(err_large, err_small + 0.05 * n);
}

TEST(KdeTest, MeanDensityPowIsConsistent) {
  PointSet ps = TwoBlobs(5000, 1000, 2, 9);
  KdeOptions opts;
  opts.num_kernels = 400;
  auto kde = Kde::Fit(ps, opts);
  ASSERT_TRUE(kde.ok());
  // a=0: mean of f^0 over centers with positive density is 1.
  EXPECT_NEAR(kde->MeanDensityPow(0.0), 1.0, 1e-9);
  // a=1 mean should be positive and bounded by the max density.
  double m1 = kde->MeanDensityPow(1.0);
  EXPECT_GT(m1, 0.0);
  // Jensen: E[f]^2 <= E[f^2].
  EXPECT_LE(m1 * m1, kde->MeanDensityPow(2.0) * (1 + 1e-9));
}

TEST(KdeTest, AverageDensityMatchesUniformData) {
  const int64_t n = 10000;
  PointSet ps = UniformCube(n, 2, 11);
  auto kde = Kde::Fit(ps, KdeOptions{});
  ASSERT_TRUE(kde.ok());
  // Bounding box of uniform data is ~[0,1]^2, so average density ~ n.
  EXPECT_NEAR(kde->AverageDensity(), static_cast<double>(n), 0.05 * n);
}

TEST(KdeTest, BandwidthsReflectAnisotropy) {
  // Data stretched 10x along dim 1 gets ~10x the bandwidth there.
  dbs::Rng rng(12);
  PointSet ps(2);
  for (int i = 0; i < 5000; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0, 1),
                                  rng.NextGaussian(0, 10)});
  }
  auto kde = Kde::Fit(ps, KdeOptions{});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->bandwidths()[1] / kde->bandwidths()[0], 10.0, 1.0);
}

TEST(KdeTest, WorksOnFileScan) {
  PointSet ps = UniformCube(2000, 2, 13);
  data::InMemoryScan scan(&ps, 100);
  KdeOptions opts;
  opts.num_kernels = 50;
  auto kde = Kde::Fit(scan, opts);
  ASSERT_TRUE(kde.ok());
  // KDE construction is exactly one pass.
  EXPECT_EQ(scan.passes(), 1);
}

}  // namespace
}  // namespace dbs::density
