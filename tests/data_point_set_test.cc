#include "data/point_set.h"

#include <vector>

#include <gtest/gtest.h>

namespace dbs::data {
namespace {

TEST(PointSetTest, EmptySet) {
  PointSet ps(3);
  EXPECT_EQ(ps.dim(), 3);
  EXPECT_EQ(ps.size(), 0);
  EXPECT_TRUE(ps.empty());
}

TEST(PointSetTest, AppendAndIndex) {
  PointSet ps(2);
  ps.Append(std::vector<double>{1.0, 2.0});
  ps.Append(std::vector<double>{3.0, 4.0});
  ASSERT_EQ(ps.size(), 2);
  EXPECT_EQ(ps[0][0], 1.0);
  EXPECT_EQ(ps[0][1], 2.0);
  EXPECT_EQ(ps[1][0], 3.0);
  EXPECT_EQ(ps[1][1], 4.0);
}

TEST(PointSetTest, InitializerListConstructor) {
  PointSet ps(2, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  ASSERT_EQ(ps.size(), 3);
  EXPECT_EQ(ps[2][1], 6.0);
}

TEST(PointSetTest, AppendPointView) {
  PointSet a(2, {7.0, 8.0});
  PointSet b(2);
  b.Append(a[0]);
  ASSERT_EQ(b.size(), 1);
  EXPECT_EQ(b[0][0], 7.0);
}

TEST(PointSetTest, AppendAll) {
  PointSet a(2, {1.0, 2.0});
  PointSet b(2, {3.0, 4.0, 5.0, 6.0});
  a.AppendAll(b);
  ASSERT_EQ(a.size(), 3);
  EXPECT_EQ(a[2][0], 5.0);

  PointSet c;  // dimensionless adopts dim on first AppendAll
  c.AppendAll(b);
  EXPECT_EQ(c.dim(), 2);
  EXPECT_EQ(c.size(), 2);
}

TEST(PointSetTest, MutableRow) {
  PointSet ps(2, {1.0, 2.0});
  ps.MutableRow(0)[1] = 9.0;
  EXPECT_EQ(ps[0][1], 9.0);
}

TEST(PointSetTest, Gather) {
  PointSet ps(1, {10.0, 20.0, 30.0, 40.0});
  PointSet g = ps.Gather({3, 1, 1});
  ASSERT_EQ(g.size(), 3);
  EXPECT_EQ(g[0][0], 40.0);
  EXPECT_EQ(g[1][0], 20.0);
  EXPECT_EQ(g[2][0], 20.0);
}

TEST(PointSetTest, ClearKeepsDim) {
  PointSet ps(4, {1, 2, 3, 4});
  ps.Clear();
  EXPECT_EQ(ps.size(), 0);
  EXPECT_EQ(ps.dim(), 4);
}

TEST(PointViewTest, IterationAndToVector) {
  PointSet ps(3, {1.0, 2.0, 3.0});
  PointView v = ps[0];
  double sum = 0.0;
  for (double c : v) sum += c;
  EXPECT_EQ(sum, 6.0);
  EXPECT_EQ(v.ToVector(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(PointViewTest, DefaultIsEmpty) {
  PointView v;
  EXPECT_EQ(v.dim(), 0);
  EXPECT_EQ(v.data(), nullptr);
}

}  // namespace
}  // namespace dbs::data
