// RangeScan slicing + the util/shard.h arithmetic every partial build
// shares (DESIGN.md §12).

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/range_scan.h"
#include "util/shard.h"

namespace dbs {
namespace {

data::PointSet MakePoints(int64_t n, int dim) {
  data::PointSet points(dim);
  std::vector<double> row(static_cast<size_t>(dim));
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      row[static_cast<size_t>(j)] = static_cast<double>(i * dim + j);
    }
    points.Append(row);
  }
  return points;
}

// Drains a scan; returns the flattened rows and records batch sizes.
std::vector<double> Drain(data::DataScan& scan,
                          std::vector<int64_t>* batch_sizes = nullptr) {
  scan.Reset();
  std::vector<double> flat;
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    if (batch_sizes != nullptr) batch_sizes->push_back(batch.count);
    flat.insert(flat.end(), batch.rows,
                batch.rows + batch.count * scan.dim());
  }
  return flat;
}

TEST(RangeScanTest, SliceYieldsExactlyItsRows) {
  const data::PointSet points = MakePoints(100, 3);
  data::InMemoryScan base(&points, /*batch_rows=*/7);
  data::RangeScan slice(&base, 13, 57);
  EXPECT_EQ(slice.size(), 44);
  EXPECT_EQ(slice.dim(), 3);
  const std::vector<double> got = Drain(slice);
  ASSERT_EQ(got.size(), 44u * 3u);
  for (int64_t r = 0; r < 44; ++r) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(got[static_cast<size_t>(r * 3 + j)],
                static_cast<double>((13 + r) * 3 + j));
    }
  }
}

TEST(RangeScanTest, FullRangePreservesBaseBatchBoundaries) {
  // The shards=1 bitwise pin depends on a full-range RangeScan delivering
  // the base scan's batches untouched.
  const data::PointSet points = MakePoints(50, 2);
  data::InMemoryScan direct(&points, /*batch_rows=*/8);
  std::vector<int64_t> direct_sizes;
  const std::vector<double> want = Drain(direct, &direct_sizes);

  data::InMemoryScan base(&points, /*batch_rows=*/8);
  data::RangeScan full(&base, 0, 50);
  std::vector<int64_t> full_sizes;
  const std::vector<double> got = Drain(full, &full_sizes);
  EXPECT_EQ(got, want);
  EXPECT_EQ(full_sizes, direct_sizes);
}

TEST(RangeScanTest, BoundaryCrossingBatchesAreClipped) {
  const data::PointSet points = MakePoints(30, 1);
  data::InMemoryScan base(&points, /*batch_rows=*/10);
  // [5, 25) crosses both ends of the middle base batch [10, 20).
  data::RangeScan slice(&base, 5, 25);
  std::vector<int64_t> sizes;
  const std::vector<double> got = Drain(slice, &sizes);
  EXPECT_EQ(sizes, (std::vector<int64_t>{5, 10, 5}));
  ASSERT_EQ(got.size(), 20u);
  EXPECT_EQ(got.front(), 5.0);
  EXPECT_EQ(got.back(), 24.0);
}

TEST(RangeScanTest, EmptyRange) {
  const data::PointSet points = MakePoints(10, 2);
  data::InMemoryScan base(&points);
  data::RangeScan slice(&base, 4, 4);
  EXPECT_EQ(slice.size(), 0);
  EXPECT_TRUE(Drain(slice).empty());
}

TEST(RangeScanTest, ResetSupportsMultiplePasses) {
  const data::PointSet points = MakePoints(40, 2);
  data::InMemoryScan base(&points, /*batch_rows=*/6);
  data::RangeScan slice(&base, 11, 31);
  const std::vector<double> first = Drain(slice);
  const std::vector<double> second = Drain(slice);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 20u * 2u);
}

TEST(ShardRowRangeTest, DisjointCoverWithBalancedSizes) {
  for (int64_t total : {0, 1, 7, 100, 101}) {
    for (int64_t shards : {1, 2, 3, 8}) {
      int64_t covered = 0;
      int64_t min_size = total + 1;
      int64_t max_size = -1;
      for (int64_t s = 0; s < shards; ++s) {
        const RowRange r = ShardRowRange(total, shards, s);
        EXPECT_EQ(r.begin, covered) << total << "/" << shards << "#" << s;
        covered = r.end;
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
      }
      EXPECT_EQ(covered, total);
      EXPECT_LE(max_size - min_size, 1);
    }
  }
}

TEST(ShardKernelAllocationTest, QuotasSumToBudgetAndFitShards) {
  for (int64_t total : {10, 97, 1000}) {
    for (int64_t shards : {1, 3, 7}) {
      for (int64_t m : {1, 8, 10, 99}) {
        if (m > total) continue;
        const std::vector<int64_t> quota =
            ShardKernelAllocation(total, shards, m);
        EXPECT_EQ(std::accumulate(quota.begin(), quota.end(), int64_t{0}),
                  m);
        for (int64_t s = 0; s < shards; ++s) {
          EXPECT_LE(quota[static_cast<size_t>(s)],
                    ShardRowRange(total, shards, s).size());
        }
      }
    }
  }
}

TEST(ShardSeedTest, ShardZeroIsTheLegacyStream) {
  // The shards=1 bitwise pin: shard 0 must consume the user's seed as-is.
  EXPECT_EQ(ShardSeed(42, 0), 42u);
  EXPECT_EQ(ShardSeed(0, 0), 0u);
  // Other shards draw from decorrelated streams.
  EXPECT_NE(ShardSeed(42, 1), 42u);
  EXPECT_NE(ShardSeed(42, 1), ShardSeed(42, 2));
  EXPECT_NE(ShardSeed(42, 1), ShardSeed(43, 1));
}

struct TestPart {
  int64_t shard = 0;
  int64_t num_shards = 1;
  int64_t total_rows = 0;
  int payload = 0;
};

TEST(MergeShardPartsTest, InterleavesIntoAscendingShardOrder) {
  std::vector<TestPart> into = {{0, 4, 100, 10}, {2, 4, 100, 12}};
  std::vector<TestPart> from = {{1, 4, 100, 11}, {3, 4, 100, 13}};
  ASSERT_TRUE(MergeShardParts(&into, std::move(from)).ok());
  ASSERT_EQ(into.size(), 4u);
  for (int64_t s = 0; s < 4; ++s) {
    EXPECT_EQ(into[static_cast<size_t>(s)].shard, s);
    EXPECT_EQ(into[static_cast<size_t>(s)].payload, 10 + s);
  }
}

TEST(MergeShardPartsTest, RejectsDuplicateShard) {
  std::vector<TestPart> into = {{1, 3, 50, 0}};
  std::vector<TestPart> from = {{1, 3, 50, 0}};
  EXPECT_FALSE(MergeShardParts(&into, std::move(from)).ok());
}

TEST(MergeShardPartsTest, RejectsMismatchedBuilds) {
  std::vector<TestPart> into = {{0, 3, 50, 0}};
  std::vector<TestPart> other_count = {{1, 4, 50, 0}};
  EXPECT_FALSE(MergeShardParts(&into, std::move(other_count)).ok());
  std::vector<TestPart> other_rows = {{1, 3, 60, 0}};
  EXPECT_FALSE(MergeShardParts(&into, std::move(other_rows)).ok());
}

}  // namespace
}  // namespace dbs
