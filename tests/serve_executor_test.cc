// BatchExecutor: correct sharded execution, non-blocking backpressure
// (queue-full is kUnavailable, observed in bounded time), all-or-nothing
// admission and graceful drain on shutdown. Runs under TSan via the `serve`
// ctest label — the pool must be race-free.

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "serve/batch_executor.h"

namespace dbs {
namespace {

using serve::BatchExecutor;
using serve::BatchExecutorOptions;

BatchExecutorOptions SmallPool(int workers, int64_t capacity) {
  BatchExecutorOptions options;
  options.num_workers = workers;
  options.queue_capacity = capacity;
  options.min_shard = 1;
  return options;
}

TEST(BatchExecutorTest, ParallelForCoversEveryIndexExactlyOnce) {
  BatchExecutor executor(SmallPool(4, 64));
  constexpr int64_t kTotal = 10000;
  std::vector<std::atomic<int>> hits(kTotal);
  Status status = executor.ParallelFor(kTotal, [&](int64_t begin,
                                                   int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  ASSERT_TRUE(status.ok());
  for (int64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(BatchExecutorTest, ParallelForMatchesSequentialBitwise) {
  BatchExecutor executor(SmallPool(4, 64));
  constexpr int64_t kTotal = 4096;
  std::vector<double> parallel(kTotal), sequential(kTotal);
  auto work = [](int64_t i) {
    double x = static_cast<double>(i) * 0.001 + 0.1;
    return x * x * 3.0 + 1.0 / x;
  };
  for (int64_t i = 0; i < kTotal; ++i) sequential[i] = work(i);
  ASSERT_TRUE(executor
                  .ParallelFor(kTotal,
                               [&](int64_t begin, int64_t end) {
                                 for (int64_t i = begin; i < end; ++i) {
                                   parallel[i] = work(i);
                                 }
                               })
                  .ok());
  EXPECT_EQ(parallel, sequential);  // bitwise: disjoint shards, same math
}

TEST(BatchExecutorTest, ParallelForZeroOrNegativeTotalIsOk) {
  BatchExecutor executor(SmallPool(2, 8));
  EXPECT_TRUE(executor.ParallelFor(0, [](int64_t, int64_t) {}).ok());
  EXPECT_TRUE(executor.ParallelFor(-5, [](int64_t, int64_t) {}).ok());
}

TEST(BatchExecutorTest, QueueFullReturnsUnavailableWithoutBlocking) {
  BatchExecutor executor(SmallPool(1, 1));

  // Park the single worker on a promise so nothing drains.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  ASSERT_TRUE(executor.TrySubmit([released] { released.wait(); }).ok());
  // Wait until the worker has dequeued the blocker.
  while (executor.queue_depth() > 0) {
    std::this_thread::yield();
  }
  // Fill the queue (capacity 1), then overflow it.
  ASSERT_TRUE(executor.TrySubmit([] {}).ok());
  auto start = std::chrono::steady_clock::now();
  Status overflow = executor.TrySubmit([] {});
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(overflow.code(), StatusCode::kUnavailable);
  // "Never blocks forever": rejection is immediate, not a timeout.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);

  Status parallel_for =
      executor.ParallelFor(100, [](int64_t, int64_t) {});
  EXPECT_EQ(parallel_for.code(), StatusCode::kUnavailable);

  release.set_value();
  executor.Shutdown();
}

TEST(BatchExecutorTest, TrySubmitAllIsAllOrNothing) {
  BatchExecutor executor(SmallPool(1, 4));
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  ASSERT_TRUE(executor.TrySubmit([released] { released.wait(); }).ok());
  while (executor.queue_depth() > 0) {
    std::this_thread::yield();
  }

  std::atomic<int> ran{0};
  std::vector<std::function<void()>> too_many;
  for (int i = 0; i < 5; ++i) {
    too_many.push_back([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(executor.TrySubmitAll(std::move(too_many)).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(executor.queue_depth(), 0);  // nothing partially admitted

  std::vector<std::function<void()>> fits;
  for (int i = 0; i < 4; ++i) {
    fits.push_back([&ran] { ran.fetch_add(1); });
  }
  EXPECT_TRUE(executor.TrySubmitAll(std::move(fits)).ok());

  release.set_value();
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 4);
}

TEST(BatchExecutorTest, ShutdownDrainsAdmittedWork) {
  std::atomic<int> ran{0};
  {
    BatchExecutor executor(SmallPool(2, 128));
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(executor.TrySubmit([&ran] { ran.fetch_add(1); }).ok());
    }
    executor.Shutdown();
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(BatchExecutorTest, SubmitAfterShutdownFails) {
  BatchExecutor executor(SmallPool(1, 8));
  executor.Shutdown();
  EXPECT_EQ(executor.TrySubmit([] {}).code(),
            StatusCode::kFailedPrecondition);
  std::vector<std::function<void()>> batch;
  batch.push_back([] {});
  EXPECT_EQ(executor.TrySubmitAll(std::move(batch)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(BatchExecutorTest, ManyConcurrentParallelFors) {
  BatchExecutor executor(SmallPool(4, 1024));
  std::atomic<int64_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        Status status =
            executor.ParallelFor(1000, [&](int64_t begin, int64_t end) {
              // dbs-lint: allow(relaxed-atomic): pure counter, read after join
              total.fetch_add(end - begin, std::memory_order_relaxed);
            });
        // Backpressure is a legal outcome; silent loss is not.
        ASSERT_TRUE(status.ok() ||
                    status.code() == StatusCode::kUnavailable);
        if (!status.ok()) {
          // dbs-lint: allow(relaxed-atomic): pure counter, read after join
          total.fetch_add(1000, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 4 * 20 * 1000);
}

}  // namespace
}  // namespace dbs
