// Equivalence harness for the dual-tree KDE evaluator's EXACT mode
// (density/dual_tree_kde.h, DESIGN.md §15).
//
// The contract under test: with rel_error == 0, every DualTreeKde
// evaluation path is BITWISE identical to the ascending-center Kde paths —
// the scalar EvaluateBrute and the batch paths of a model fitted with the
// grid index off (which sum centers in ascending index order; the
// grid-INDEXED path sums in hash-bucket order and agrees only to
// rounding, so it is deliberately not the reference). The matrix covers
// dims {1,2,3} x kernel counts {1, 1000, 50000} x workers {0,1,4}, plus
// the degenerate shapes that break tree builds: all centers identical
// (zero-extent boxes), one center per leaf, and queries far outside the
// kernel support (all-pruned descents).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "density/dual_tree_kde.h"
#include "density/kde.h"
#include "parallel/batch_executor.h"
#include "synth/generator.h"
#include "util/check.h"
#include "util/rng.h"

namespace dbs::density {
namespace {

data::PointSet MakeData(int dim, int64_t points, uint64_t seed) {
  synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 5;
  opts.num_cluster_points = points;  // total across clusters, noise on top
  opts.noise_multiplier = 0.15;
  opts.shuffle = true;
  opts.seed = seed;
  auto ds = synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds)->points;
}

// Queries exercising every traversal branch: verbatim centers (exclusion
// hits), near-miss jitter, uniform box points, and far-outside points
// (fully pruned trees).
data::PointSet MakeQueries(const data::PointSet& data, int64_t count) {
  data::PointSet queries(data.dim());
  Rng rng(93);
  for (int64_t i = 0; i < count; ++i) {
    std::vector<double> q(static_cast<size_t>(data.dim()));
    data::PointView base = data[i % data.size()];
    switch (i % 4) {
      case 0:
        for (int j = 0; j < data.dim(); ++j) q[j] = base[j];
        break;
      case 1:
        for (int j = 0; j < data.dim(); ++j) {
          q[j] = base[j] + 0.01 * (rng.NextDouble() - 0.5);
        }
        break;
      case 2:
        for (int j = 0; j < data.dim(); ++j) q[j] = rng.NextDouble();
        break;
      default:
        for (int j = 0; j < data.dim(); ++j) q[j] = 10.0 + rng.NextDouble();
        break;
    }
    queries.Append(data::PointView(q.data(), data.dim()));
  }
  return queries;
}

void ExpectBitwiseEqual(const std::vector<double>& got,
                       const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << "index " << i << ": dual-tree " << got[i] << " vs reference "
        << want[i];
  }
}

// Full bitwise matrix for one (kde, tree) pair: all three batch variants,
// the scalar brute path, and 0/1/4-worker sharding; plus the exact-mode
// WithBound contract (same densities, certificates exactly zero).
void CheckExactEquivalence(const Kde& kde, const DualTreeKde& tree,
                           const data::PointSet& queries) {
  const int64_t n = queries.size();
  const double* rows = queries.flat().data();

  data::PointSet selves(queries.dim());
  for (int64_t i = 0; i < n; ++i) selves.Append(queries[(i + 1) % n]);
  const double* selves_rows = selves.flat().data();

  // References: the ascending-center Kde batch paths (index off)...
  std::vector<double> ref(static_cast<size_t>(n));
  std::vector<double> ref_excl(static_cast<size_t>(n));
  std::vector<double> ref_selves(static_cast<size_t>(n));
  ASSERT_TRUE(kde.EvaluateBatch(rows, n, ref.data()).ok());
  ASSERT_TRUE(kde.EvaluateExcludingBatch(rows, n, ref_excl.data()).ok());
  ASSERT_TRUE(kde.EvaluateExcludingSelvesBatch(rows, selves_rows, n,
                                               ref_selves.data())
                  .ok());
  // ... which must themselves match the scalar brute path (sanity that the
  // reference really is the ascending-order contract).
  for (int64_t i = 0; i < n; ++i) {
    const double scalar = kde.EvaluateBrute(queries[i]);
    ASSERT_EQ(std::memcmp(&scalar, &ref[i], sizeof(double)), 0) << i;
  }

  // Scalar dual-tree entry points.
  std::vector<double> got(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) got[i] = tree.Evaluate(queries[i]);
  ExpectBitwiseEqual(got, ref);
  for (int64_t i = 0; i < n; ++i) {
    got[i] = tree.EvaluateExcluding(queries[i], selves[i]);
  }
  ExpectBitwiseEqual(got, ref_selves);

  // Batch paths across worker counts (0 = no executor).
  for (int workers : {0, 1, 4}) {
    parallel::BatchExecutorOptions pool;
    pool.num_workers = workers;
    parallel::BatchExecutor* executor = nullptr;
    std::unique_ptr<parallel::BatchExecutor> owned;
    if (workers > 0) {
      owned = std::make_unique<parallel::BatchExecutor>(pool);
      executor = owned.get();
    }
    ASSERT_TRUE(tree.EvaluateBatch(rows, n, got.data(), executor).ok());
    ExpectBitwiseEqual(got, ref);
    ASSERT_TRUE(
        tree.EvaluateExcludingBatch(rows, n, got.data(), executor).ok());
    ExpectBitwiseEqual(got, ref_excl);
    ASSERT_TRUE(tree.EvaluateExcludingSelvesBatch(rows, selves_rows, n,
                                                  got.data(), executor)
                    .ok());
    ExpectBitwiseEqual(got, ref_selves);

    // Exact mode's certificates: identical densities, bound == +0.0.
    std::vector<double> bound(static_cast<size_t>(n), 1.0);
    ASSERT_TRUE(
        tree.EvaluateBatchWithBound(rows, n, got.data(), bound.data(),
                                    executor)
            .ok());
    ExpectBitwiseEqual(got, ref);
    for (int64_t i = 0; i < n; ++i) ASSERT_EQ(bound[i], 0.0) << i;

    if (owned != nullptr) owned->Shutdown();
  }
}

struct MatrixCase {
  int dim;
  int64_t kernels;
};

class DualTreeExactTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(DualTreeExactTest, BitwiseIdenticalToAscendingCenterKde) {
  const MatrixCase c = GetParam();
  // Enough data to fill the kernel reservoir, modest query counts at the
  // 50k-kernel end (the brute reference is O(queries * kernels)).
  const int64_t points = std::max<int64_t>(c.kernels, 600);
  const int64_t num_queries = c.kernels >= 50000 ? 48 : 120;
  data::PointSet data = MakeData(c.dim, points, 11 + c.dim);
  data::PointSet queries = MakeQueries(data, num_queries);

  KdeOptions opts;
  opts.num_kernels = c.kernels;
  opts.use_grid_index = false;  // the ascending-center reference order
  opts.seed = 7;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());
  ASSERT_EQ(kde->num_kernels(), c.kernels);

  auto tree = DualTreeKde::Build(*kde);
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->rel_error(), 0.0);
  ASSERT_EQ(tree->num_kernels(), c.kernels);
  CheckExactEquivalence(*kde, *tree, queries);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DualTreeExactTest,
    ::testing::Values(MatrixCase{1, 1}, MatrixCase{1, 1000},
                      MatrixCase{1, 50000}, MatrixCase{2, 1},
                      MatrixCase{2, 1000}, MatrixCase{2, 50000},
                      MatrixCase{3, 1}, MatrixCase{3, 1000},
                      MatrixCase{3, 50000}));

// All centers identical: every node box has zero extent, so the build must
// bottom out in one oversized leaf instead of recursing forever, and the
// bandwidth floor keeps evaluation finite.
TEST(DualTreeDegenerateTest, AllPointsIdentical) {
  const int dim = 2;
  data::PointSet data(dim);
  const double coords[2] = {0.25, -1.5};
  for (int i = 0; i < 500; ++i) data.Append(data::PointView(coords, dim));

  KdeOptions opts;
  opts.num_kernels = 64;
  opts.use_grid_index = false;
  opts.seed = 5;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());
  auto tree = DualTreeKde::Build(*kde);
  ASSERT_TRUE(tree.ok());

  data::PointSet queries(dim);
  queries.Append(data::PointView(coords, dim));
  const double near[2] = {0.25 + 1e-7, -1.5};
  queries.Append(data::PointView(near, dim));
  const double far[2] = {40.0, 40.0};
  queries.Append(data::PointView(far, dim));
  CheckExactEquivalence(*kde, *tree, queries);
}

// leaf_size = 1: one center per leaf, the deepest possible tree.
TEST(DualTreeDegenerateTest, OnePointPerLeaf) {
  data::PointSet data = MakeData(2, 1200, 21);
  data::PointSet queries = MakeQueries(data, 80);
  KdeOptions opts;
  opts.num_kernels = 400;
  opts.use_grid_index = false;
  opts.seed = 9;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());

  DualTreeKdeOptions tree_opts;
  tree_opts.leaf_size = 1;
  auto tree = DualTreeKde::Build(*kde, tree_opts);
  ASSERT_TRUE(tree.ok());
  // With leaf_size 1 every leaf holds exactly one center.
  for (int32_t id = 0; id < tree->num_nodes(); ++id) {
    DualTreeKde::NodeView node = tree->node(id);
    if (node.is_leaf) {
      ASSERT_EQ(node.end - node.begin, 1) << id;
    }
  }
  CheckExactEquivalence(*kde, *tree, queries);
}

// Queries entirely outside the kernel support: the whole tree prunes and
// the result must be exactly +0.0, matching the brute sum of all-zero
// terms bit for bit.
TEST(DualTreeDegenerateTest, QueriesFarOutsideSupport) {
  data::PointSet data = MakeData(3, 900, 31);
  KdeOptions opts;
  opts.num_kernels = 300;
  opts.use_grid_index = false;
  opts.seed = 13;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());
  auto tree = DualTreeKde::Build(*kde);
  ASSERT_TRUE(tree.ok());

  data::PointSet queries(3);
  Rng rng(77);
  for (int i = 0; i < 64; ++i) {
    double q[3];
    for (int j = 0; j < 3; ++j) q[j] = 100.0 + rng.NextDouble();
    queries.Append(data::PointView(q, 3));
  }
  const int64_t n = queries.size();
  std::vector<double> got(static_cast<size_t>(n), -1.0);
  ASSERT_TRUE(tree->EvaluateBatch(queries.flat().data(), n, got.data()).ok());
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i], 0.0) << i;
    ASSERT_FALSE(std::signbit(got[i])) << i;  // +0.0, not -0.0
  }
  CheckExactEquivalence(*kde, *tree, queries);
}

// Build-time validation: rejected options and the fit-options gate.
TEST(DualTreeBuildTest, OptionValidationAndFitOptionsGate) {
  data::PointSet data = MakeData(2, 400, 41);
  KdeOptions opts;
  opts.num_kernels = 64;
  opts.use_grid_index = false;
  opts.dual_tree_rel_error = 0.05;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());

  DualTreeKdeOptions bad;
  bad.leaf_size = 0;
  ASSERT_FALSE(DualTreeKde::Build(*kde, bad).ok());
  bad = DualTreeKdeOptions{};
  bad.query_tile = 0;
  ASSERT_FALSE(DualTreeKde::Build(*kde, bad).ok());
  bad = DualTreeKdeOptions{};
  bad.rel_error = -0.1;
  ASSERT_FALSE(DualTreeKde::Build(*kde, bad).ok());

  // The KdeOptions overload picks up the approximate-mode gate.
  auto gated = DualTreeKde::Build(*kde, opts);
  ASSERT_TRUE(gated.ok());
  ASSERT_EQ(gated->rel_error(), 0.05);
}

}  // namespace
}  // namespace dbs::density
