// Contract tests for the batched density paths: EvaluateBatch /
// EvaluateExcludingBatch must be BITWISE identical to the per-point calls —
// batching, cell-sorted SoA tiles, and executor sharding are execution
// details, never semantic ones. Checked across all three estimator
// backends, the KDE with the grid index on and off, 0/1/4 workers, and
// against a frozen reference that forces every evaluation through the
// pre-batching scalar virtuals.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "data/bounds.h"
#include "data/point_set.h"
#include "density/grid_density.h"
#include "density/histogram_density.h"
#include "density/kde.h"
#include "parallel/batch_executor.h"
#include "synth/generator.h"
#include "util/check.h"
#include "util/rng.h"

namespace dbs::density {
namespace {

// Forwards the scalar virtuals to a wrapped estimator but inherits the
// DEFAULT batch implementations — i.e. exactly the per-point execution
// every consumer used before the batch paths existed. Comparing a tuned
// override against this wrapper pins the bitwise contract to the
// pre-batching behavior, not to whatever both paths happen to share.
class ScalarPathOnly final : public DensityEstimator {
 public:
  explicit ScalarPathOnly(const DensityEstimator* inner) : inner_(inner) {}
  int dim() const override { return inner_->dim(); }
  double Evaluate(data::PointView p) const override {
    return inner_->Evaluate(p);
  }
  double EvaluateExcluding(data::PointView x,
                           data::PointView self) const override {
    return inner_->EvaluateExcluding(x, self);
  }
  int64_t total_mass() const override { return inner_->total_mass(); }
  double AverageDensity() const override { return inner_->AverageDensity(); }

 private:
  const DensityEstimator* inner_;
};

data::PointSet MakeData(int dim, int64_t points, uint64_t seed) {
  synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 5;
  opts.num_cluster_points = points / 5;
  opts.noise_multiplier = 0.15;
  opts.shuffle = true;
  opts.seed = seed;
  auto ds = synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds)->points;
}

// Queries that exercise every branch: data points themselves (exact
// center/cell hits, the exclusion case), jittered near-misses, and points
// far outside the data bounds (empty neighborhoods).
data::PointSet MakeQueries(const data::PointSet& data, int64_t count) {
  data::PointSet queries(data.dim());
  Rng rng(93);
  for (int64_t i = 0; i < count; ++i) {
    std::vector<double> q(static_cast<size_t>(data.dim()));
    data::PointView base = data[i % data.size()];
    switch (i % 4) {
      case 0:  // verbatim data point
        for (int j = 0; j < data.dim(); ++j) q[j] = base[j];
        break;
      case 1:  // near-miss jitter
        for (int j = 0; j < data.dim(); ++j) {
          q[j] = base[j] + 0.01 * (rng.NextDouble() - 0.5);
        }
        break;
      case 2:  // anywhere in the unit box
        for (int j = 0; j < data.dim(); ++j) q[j] = rng.NextDouble();
        break;
      default:  // far outside the data bounds
        for (int j = 0; j < data.dim(); ++j) q[j] = 10.0 + rng.NextDouble();
        break;
    }
    queries.Append(data::PointView(q.data(), data.dim()));
  }
  return queries;
}

void ExpectBitwiseEqual(const std::vector<double>& got,
                        const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << "index " << i << ": batch " << got[i] << " vs scalar " << want[i];
  }
}

// Runs the full bitwise contract for one estimator: batch-vs-scalar, the
// excluding variants (self and explicit selves), the pre-batching frozen
// reference, and 1/4-worker executor sharding.
void CheckEstimator(const DensityEstimator& estimator,
                    const data::PointSet& queries) {
  const int64_t n = queries.size();
  const double* rows = queries.flat().data();

  // Explicit exclusion rows for the selves variant: each query excludes a
  // DIFFERENT point (the next query) — the shape the QMC ball integrator
  // uses, where probes exclude the ball center they fanned out from.
  data::PointSet selves(queries.dim());
  for (int64_t i = 0; i < n; ++i) selves.Append(queries[(i + 1) % n]);
  const double* selves_rows = selves.flat().data();

  std::vector<double> scalar(static_cast<size_t>(n));
  std::vector<double> scalar_excl(static_cast<size_t>(n));
  std::vector<double> scalar_selves(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    scalar[i] = estimator.Evaluate(queries[i]);
    scalar_excl[i] = estimator.EvaluateExcluding(queries[i], queries[i]);
    scalar_selves[i] = estimator.EvaluateExcluding(queries[i], selves[i]);
  }

  std::vector<double> batch(static_cast<size_t>(n));
  ASSERT_TRUE(estimator.EvaluateBatch(rows, n, batch.data()).ok());
  ExpectBitwiseEqual(batch, scalar);

  std::vector<double> batch_excl(static_cast<size_t>(n));
  ASSERT_TRUE(
      estimator.EvaluateExcludingBatch(rows, n, batch_excl.data()).ok());
  ExpectBitwiseEqual(batch_excl, scalar_excl);

  std::vector<double> batch_selves(static_cast<size_t>(n));
  ASSERT_TRUE(estimator
                  .EvaluateExcludingSelvesBatch(rows, selves_rows, n,
                                                batch_selves.data())
                  .ok());
  ExpectBitwiseEqual(batch_selves, scalar_selves);

  // The frozen reference: the default batch implementation over the scalar
  // virtuals is the pre-batching execution.
  ScalarPathOnly frozen(&estimator);
  std::vector<double> reference(static_cast<size_t>(n));
  ASSERT_TRUE(frozen.EvaluateBatch(rows, n, reference.data()).ok());
  ExpectBitwiseEqual(batch, reference);
  std::vector<double> reference_selves(static_cast<size_t>(n));
  ASSERT_TRUE(frozen
                  .EvaluateExcludingSelvesBatch(rows, selves_rows, n,
                                                reference_selves.data())
                  .ok());
  ExpectBitwiseEqual(batch_selves, reference_selves);

  for (int workers : {1, 4}) {
    parallel::BatchExecutorOptions pool;
    pool.num_workers = workers;
    parallel::BatchExecutor executor(pool);
    std::vector<double> sharded(static_cast<size_t>(n));
    ASSERT_TRUE(
        estimator.EvaluateBatch(rows, n, sharded.data(), &executor).ok());
    ExpectBitwiseEqual(sharded, scalar);
    std::vector<double> sharded_excl(static_cast<size_t>(n));
    ASSERT_TRUE(estimator
                    .EvaluateExcludingBatch(rows, n, sharded_excl.data(),
                                            &executor)
                    .ok());
    ExpectBitwiseEqual(sharded_excl, scalar_excl);
    std::vector<double> sharded_selves(static_cast<size_t>(n));
    ASSERT_TRUE(estimator
                    .EvaluateExcludingSelvesBatch(rows, selves_rows, n,
                                                  sharded_selves.data(),
                                                  &executor)
                    .ok());
    ExpectBitwiseEqual(sharded_selves, scalar_selves);
    executor.Shutdown();
  }
}

class DensityBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(DensityBatchTest, KdeIndexedMatchesScalarBitwise) {
  const int dim = GetParam();
  data::PointSet data = MakeData(dim, 4000, 11);
  data::PointSet queries = MakeQueries(data, 3000);
  KdeOptions opts;
  opts.num_kernels = 300;
  opts.seed = 3;
  opts.use_grid_index = true;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());
  CheckEstimator(*kde, queries);
}

TEST_P(DensityBatchTest, KdeBruteMatchesScalarBitwise) {
  const int dim = GetParam();
  data::PointSet data = MakeData(dim, 4000, 12);
  data::PointSet queries = MakeQueries(data, 2000);
  KdeOptions opts;
  opts.num_kernels = 300;
  opts.seed = 3;
  opts.use_grid_index = false;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());
  CheckEstimator(*kde, queries);
}

TEST_P(DensityBatchTest, GridDensityMatchesScalarBitwise) {
  const int dim = GetParam();
  data::PointSet data = MakeData(dim, 4000, 13);
  data::PointSet queries = MakeQueries(data, 2000);
  GridDensityOptions opts;
  opts.cells_per_dim = 32;
  auto grid = GridDensity::Fit(data, opts);
  ASSERT_TRUE(grid.ok());
  CheckEstimator(*grid, queries);
}

TEST_P(DensityBatchTest, HistogramDensityMatchesScalarBitwise) {
  const int dim = GetParam();
  data::PointSet data = MakeData(dim, 4000, 14);
  data::PointSet queries = MakeQueries(data, 2000);
  HistogramDensityOptions opts;
  opts.cells_per_dim = 16;
  auto hist = HistogramDensity::Fit(data, opts);
  ASSERT_TRUE(hist.ok());
  CheckEstimator(*hist, queries);
}

INSTANTIATE_TEST_SUITE_P(Dims, DensityBatchTest, ::testing::Values(2, 3, 5));

TEST(DensityBatchEdgeTest, EmptyBatchSucceeds) {
  data::PointSet data = MakeData(2, 1000, 15);
  KdeOptions opts;
  opts.num_kernels = 100;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());
  double unused = 0.0;
  EXPECT_TRUE(kde->EvaluateBatch(data.flat().data(), 0, &unused).ok());
  EXPECT_TRUE(
      kde->EvaluateExcludingBatch(data.flat().data(), 0, &unused).ok());
}

TEST(DensityBatchEdgeTest, RoundTrippedKdeKeepsTheContract) {
  // FromState rebuilds the index and SoA layout from a serialized snapshot;
  // the batch contract must survive the round trip.
  data::PointSet data = MakeData(3, 3000, 16);
  data::PointSet queries = MakeQueries(data, 1500);
  KdeOptions opts;
  opts.num_kernels = 250;
  opts.seed = 8;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());
  auto restored = Kde::FromState(kde->ExportState());
  ASSERT_TRUE(restored.ok());

  const int64_t n = queries.size();
  std::vector<double> original(static_cast<size_t>(n));
  std::vector<double> roundtrip(static_cast<size_t>(n));
  ASSERT_TRUE(
      kde->EvaluateBatch(queries.flat().data(), n, original.data()).ok());
  ASSERT_TRUE(restored
                  ->EvaluateBatch(queries.flat().data(), n, roundtrip.data())
                  .ok());
  ExpectBitwiseEqual(roundtrip, original);
  CheckEstimator(*restored, queries);
}

// Grid/Histogram cell-sorted overrides on the awkward inputs: queries far
// outside the fitted bounds (both paths clamp to edge cells) and cells that
// never saw a point (zero mass). Data is confined to [0, 0.25]^2 while the
// grids are fitted over explicit [0, 1]^2 bounds, so most cells are empty.
TEST(GridHistogramEdgeTest, OutOfBoundsAndZeroMassCellsMatchScalar) {
  data::BoundingBox bounds({0.0, 0.0}, {1.0, 1.0});
  data::PointSet data(2);
  Rng rng(55);
  for (int i = 0; i < 2000; ++i) {
    data.Append(std::vector<double>{0.25 * rng.NextDouble(),
                                    0.25 * rng.NextDouble()});
  }
  data::PointSet queries(2);
  // Out-of-bounds on every side, zero-mass interior cells, occupied cells.
  const double fixed[][2] = {{-3.0, 0.5}, {0.5, -3.0},  {7.0, 7.0},
                             {-1.0, 2.0}, {0.9, 0.9},   {0.6, 0.6},
                             {0.1, 0.1},  {0.2, 0.05},  {1.0, 1.0},
                             {0.0, 0.0},  {-0.0, -0.0}, {0.25, 0.25}};
  for (const auto& q : fixed) queries.Append(data::PointView(q, 2));
  for (int i = 0; i < 500; ++i) {
    queries.Append(std::vector<double>{3.0 * rng.NextDouble() - 1.0,
                                       3.0 * rng.NextDouble() - 1.0});
  }

  GridDensityOptions gopts;
  gopts.cells_per_dim = 8;
  gopts.bounds = bounds;
  auto grid = GridDensity::Fit(data, gopts);
  ASSERT_TRUE(grid.ok());
  ASSERT_FALSE(grid->hashed());
  CheckEstimator(*grid, queries);

  // Same grid squeezed into a tiny bucket budget: cells hash and collide —
  // the contract must hold for merged buckets too.
  GridDensityOptions hashed_opts = gopts;
  hashed_opts.memory_budget_bytes = 64;
  auto hashed = GridDensity::Fit(data, hashed_opts);
  ASSERT_TRUE(hashed.ok());
  ASSERT_TRUE(hashed->hashed());
  CheckEstimator(*hashed, queries);

  HistogramDensityOptions hopts;
  hopts.cells_per_dim = 8;
  hopts.bounds = bounds;
  auto hist = HistogramDensity::Fit(data, hopts);
  ASSERT_TRUE(hist.ok());
  CheckEstimator(*hist, queries);

  // Semantic spot checks on the exact (collision-free) backends: a
  // zero-mass cell evaluates to exactly +0.0, and out-of-bounds queries
  // clamp onto edge cells — the top-right corner cell is empty while the
  // bottom-left one holds data.
  const double empty_cell[2] = {0.9, 0.9};
  const double far_out[2] = {7.0, 7.0};
  const double far_neg[2] = {-3.0, -3.0};
  const double occupied[2] = {0.1, 0.1};
  EXPECT_EQ(hist->Evaluate(data::PointView(empty_cell, 2)), 0.0);
  EXPECT_EQ(hist->Evaluate(data::PointView(far_out, 2)), 0.0);
  EXPECT_EQ(hist->Evaluate(data::PointView(far_neg, 2)),
            hist->Evaluate(data::PointView(occupied, 2)));
  EXPECT_GT(hist->Evaluate(data::PointView(occupied, 2)), 0.0);
  EXPECT_EQ(grid->Evaluate(data::PointView(empty_cell, 2)), 0.0);
  EXPECT_EQ(grid->Evaluate(data::PointView(far_neg, 2)),
            grid->Evaluate(data::PointView(occupied, 2)));
}

TEST(DensityBatchEdgeTest, MeanDensityPowMatchesAcrossExecutors) {
  data::PointSet data = MakeData(2, 5000, 17);
  KdeOptions opts;
  opts.num_kernels = 400;
  opts.seed = 21;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());
  for (double a : {1.0, 0.5, -0.5}) {
    const double sequential = kde->MeanDensityPow(a);
    parallel::BatchExecutorOptions pool;
    pool.num_workers = 4;
    parallel::BatchExecutor executor(pool);
    const double sharded = kde->MeanDensityPow(a, &executor);
    executor.Shutdown();
    EXPECT_EQ(std::memcmp(&sequential, &sharded, sizeof(double)), 0)
        << "a=" << a << ": " << sequential << " vs " << sharded;
  }
}

}  // namespace
}  // namespace dbs::density
