// Property harness for the dual-tree evaluator's CERTIFIED-APPROXIMATE
// mode (density/dual_tree_kde.h, DESIGN.md §15).
//
// The contract: for every query, with exact_i the ascending-center exact
// density (the Kde brute batch path),
//
//   |approx_i - exact_i| <= bound_i <= rel_error * exact_i
//
// and bound_i == 0 with approx_i == 0 whenever exact_i == 0. This is
// checked property-style across 200 seeded random configurations (dim,
// kernel count, leaf size, rel_error spanning 1e-3..0.25, mixed query
// shapes), for both the plain and the excluding-selves entry points — the
// exclusion forces descent through containing nodes, so certificates must
// survive it. Sharding must be bitwise invisible as usual, and one pinned
// configuration is frozen as an FNV-1a golden so the approximate
// traversal's every byte (densities AND certificates) is pinned against
// accidental drift.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "density/dual_tree_kde.h"
#include "density/kde.h"
#include "parallel/batch_executor.h"
#include "synth/generator.h"
#include "util/check.h"
#include "util/rng.h"

namespace dbs::density {
namespace {

uint64_t Fnv1a(const double* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n * sizeof(double); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

data::PointSet MakeData(int dim, int64_t points, uint64_t seed) {
  synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 4;
  opts.num_cluster_points = points;  // total across clusters, noise on top
  opts.noise_multiplier = 0.2;
  opts.shuffle = true;
  opts.seed = seed;
  auto ds = synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds)->points;
}

// Mixed query shapes: centers themselves, near-misses, box points, and a
// far-outside point per batch (the exact-zero case).
data::PointSet MakeQueries(const data::PointSet& data, int64_t count,
                           uint64_t seed) {
  data::PointSet queries(data.dim());
  Rng rng(seed);
  for (int64_t i = 0; i < count; ++i) {
    std::vector<double> q(static_cast<size_t>(data.dim()));
    data::PointView base = data[i % data.size()];
    switch (i % 4) {
      case 0:
        for (int j = 0; j < data.dim(); ++j) q[j] = base[j];
        break;
      case 1:
        for (int j = 0; j < data.dim(); ++j) {
          q[j] = base[j] + 0.05 * (rng.NextDouble() - 0.5);
        }
        break;
      case 2:
        for (int j = 0; j < data.dim(); ++j) q[j] = rng.NextDouble();
        break;
      default:
        for (int j = 0; j < data.dim(); ++j) q[j] = 25.0 + rng.NextDouble();
        break;
    }
    queries.Append(data::PointView(q.data(), data.dim()));
  }
  return queries;
}

// Asserts the certificate chain for one batch: measured error within the
// reported bound, bound within the relative budget, exact zeros certified
// as exact zeros.
void CheckCertificates(const std::vector<double>& approx,
                       const std::vector<double>& bound,
                       const std::vector<double>& exact, double rel_error) {
  ASSERT_EQ(approx.size(), exact.size());
  ASSERT_EQ(bound.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    const double observed = std::fabs(approx[i] - exact[i]);
    ASSERT_LE(observed, bound[i]) << "query " << i << ": approx " << approx[i]
                                  << " exact " << exact[i];
    ASSERT_LE(bound[i], rel_error * exact[i])
        << "query " << i << ": exact " << exact[i];
    if (exact[i] == 0.0) {
      ASSERT_EQ(approx[i], 0.0) << i;
      ASSERT_EQ(bound[i], 0.0) << i;
    }
  }
}

TEST(DualTreeBudgetTest, CertifiedBoundHoldsAcross200RandomConfigs) {
  Rng rng(4242);
  for (int config = 0; config < 200; ++config) {
    const int dim = 1 + static_cast<int>(rng.NextDouble() * 4.0);
    const int64_t kernels = 32 + static_cast<int64_t>(rng.NextDouble() * 224);
    const int leaf_size = 1 + static_cast<int>(rng.NextDouble() * 48.0);
    // Log-uniform budget over 1e-3 .. 0.25.
    const double rel_error = 1e-3 * std::pow(250.0, rng.NextDouble());
    const int64_t points = 800 + static_cast<int64_t>(rng.NextDouble() * 700);

    data::PointSet data = MakeData(dim, points, 1000 + config);
    data::PointSet queries = MakeQueries(data, 60, 5000 + config);
    const int64_t n = queries.size();
    const double* rows = queries.flat().data();

    KdeOptions opts;
    opts.num_kernels = kernels;
    opts.use_grid_index = false;
    opts.seed = 77 + config;
    auto kde = Kde::Fit(data, opts);
    ASSERT_TRUE(kde.ok());

    DualTreeKdeOptions tree_opts;
    tree_opts.leaf_size = leaf_size;
    tree_opts.rel_error = rel_error;
    auto tree = DualTreeKde::Build(*kde, tree_opts);
    ASSERT_TRUE(tree.ok());

    // Plain evaluation.
    std::vector<double> exact(static_cast<size_t>(n));
    ASSERT_TRUE(kde->EvaluateBatch(rows, n, exact.data()).ok());
    std::vector<double> approx(static_cast<size_t>(n));
    std::vector<double> bound(static_cast<size_t>(n));
    ASSERT_TRUE(
        tree->EvaluateBatchWithBound(rows, n, approx.data(), bound.data())
            .ok());
    CheckCertificates(approx, bound, exact, rel_error);

    // Excluding-selves evaluation: each query excludes the next one (so
    // some selves are real centers, some are not).
    data::PointSet selves(queries.dim());
    for (int64_t i = 0; i < n; ++i) selves.Append(queries[(i + 1) % n]);
    const double* selves_rows = selves.flat().data();
    std::vector<double> exact_excl(static_cast<size_t>(n));
    ASSERT_TRUE(kde->EvaluateExcludingSelvesBatch(rows, selves_rows, n,
                                                  exact_excl.data())
                    .ok());
    std::vector<double> approx_excl(static_cast<size_t>(n));
    std::vector<double> bound_excl(static_cast<size_t>(n));
    ASSERT_TRUE(tree->EvaluateExcludingSelvesBatchWithBound(
                        rows, selves_rows, n, approx_excl.data(),
                        bound_excl.data())
                    .ok());
    CheckCertificates(approx_excl, bound_excl, exact_excl, rel_error);

    // Sharding is bitwise invisible in approximate mode too: every 20th
    // config re-runs under 1- and 4-worker executors.
    if (config % 20 == 0) {
      for (int workers : {1, 4}) {
        parallel::BatchExecutorOptions pool;
        pool.num_workers = workers;
        parallel::BatchExecutor executor(pool);
        std::vector<double> sharded(static_cast<size_t>(n));
        std::vector<double> sharded_bound(static_cast<size_t>(n));
        ASSERT_TRUE(tree->EvaluateBatchWithBound(rows, n, sharded.data(),
                                                 sharded_bound.data(),
                                                 &executor)
                        .ok());
        executor.Shutdown();
        ASSERT_EQ(std::memcmp(sharded.data(), approx.data(),
                              static_cast<size_t>(n) * sizeof(double)),
                  0)
            << "config " << config << " workers " << workers;
        ASSERT_EQ(std::memcmp(sharded_bound.data(), bound.data(),
                              static_cast<size_t>(n) * sizeof(double)),
                  0)
            << "config " << config << " workers " << workers;
      }
    }
  }
}

// Frozen golden for one pinned configuration: the FNV-1a hash of the
// density array and of the certificate array. The approximate traversal is
// deterministic by construction (deterministic tree build, nearer-child-
// first descent with left tie-breaks, -ffp-contract=off), so these bytes
// must never drift; a change here means the approximate mode's semantics
// changed and must be re-reviewed, not re-pinned casually.
TEST(DualTreeBudgetTest, FrozenGoldenPinnedConfig) {
  data::PointSet data = MakeData(2, 1200, 321);
  data::PointSet queries = MakeQueries(data, 64, 654);
  const int64_t n = queries.size();

  KdeOptions opts;
  opts.num_kernels = 128;
  opts.use_grid_index = false;
  opts.seed = 19;
  auto kde = Kde::Fit(data, opts);
  ASSERT_TRUE(kde.ok());

  DualTreeKdeOptions tree_opts;
  tree_opts.leaf_size = 16;
  tree_opts.rel_error = 0.05;
  auto tree = DualTreeKde::Build(*kde, tree_opts);
  ASSERT_TRUE(tree.ok());

  std::vector<double> approx(static_cast<size_t>(n));
  std::vector<double> bound(static_cast<size_t>(n));
  ASSERT_TRUE(tree->EvaluateBatchWithBound(queries.flat().data(), n,
                                           approx.data(), bound.data())
                  .ok());
  EXPECT_EQ(Fnv1a(approx.data(), approx.size()), 0xDEB0C0AFCB3F7993ULL);
  EXPECT_EQ(Fnv1a(bound.data(), bound.size()), 0x5D45348C301EA0A5ULL);
}

}  // namespace
}  // namespace dbs::density
