#include "util/math.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dbs {
namespace {

TEST(BallVolumeTest, KnownLowDimensions) {
  // V_1(r) = 2r, V_2(r) = pi r^2, V_3(r) = 4/3 pi r^3.
  EXPECT_NEAR(BallVolume(1, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(BallVolume(2, 1.0), M_PI, 1e-12);
  EXPECT_NEAR(BallVolume(3, 1.0), 4.0 / 3.0 * M_PI, 1e-12);
  EXPECT_NEAR(BallVolume(2, 2.0), 4.0 * M_PI, 1e-12);
}

TEST(BallVolumeTest, ScalesAsRadiusToTheD) {
  for (int d = 1; d <= 6; ++d) {
    double v1 = BallVolume(d, 1.0);
    double v3 = BallVolume(d, 3.0);
    EXPECT_NEAR(v3 / v1, std::pow(3.0, d), 1e-9 * std::pow(3.0, d));
  }
}

TEST(BallVolumeTest, ZeroRadius) {
  EXPECT_EQ(BallVolume(3, 0.0), 0.0);
}

TEST(CubeVolumeTest, Known) {
  EXPECT_DOUBLE_EQ(CubeVolume(1, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(CubeVolume(2, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(CubeVolume(3, 1.0), 8.0);
}

TEST(SafePowTest, Conventions) {
  EXPECT_EQ(SafePow(0.0, 2.0), 0.0);
  EXPECT_EQ(SafePow(0.0, -1.0), 0.0);  // zero density contributes nothing
  EXPECT_EQ(SafePow(-1.0, 2.0), 0.0);  // densities are never negative
  EXPECT_DOUBLE_EQ(SafePow(2.0, 3.0), 8.0);
  EXPECT_DOUBLE_EQ(SafePow(4.0, -0.5), 0.5);
  EXPECT_DOUBLE_EQ(SafePow(3.7, 0.0), 1.0);
}

TEST(HaltonTest, Base2PrefixMatchesVanDerCorput) {
  // First values of the base-2 van der Corput sequence (excluding 0):
  // 1/2, 1/4, 3/4, 1/8, 5/8, 3/8, 7/8.
  const std::vector<double> expected{0.5,   0.25,  0.75, 0.125,
                                     0.625, 0.375, 0.875};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(HaltonValue(i, 2), expected[i]) << "i=" << i;
  }
}

TEST(HaltonTest, ValuesInUnitInterval) {
  for (uint32_t base : {2u, 3u, 5u, 7u}) {
    for (uint64_t i = 0; i < 1000; ++i) {
      double v = HaltonValue(i, base);
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(HaltonTest, LowDiscrepancyCoversUniformly) {
  // Bucket 4096 base-3 Halton values into 8 bins: all bins near 512.
  std::vector<int> bins(8, 0);
  for (uint64_t i = 0; i < 4096; ++i) {
    int b = static_cast<int>(HaltonValue(i, 3) * 8);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 8);
    bins[b]++;
  }
  for (int c : bins) EXPECT_NEAR(c, 512, 32);
}

TEST(SmallPrimeTest, FirstPrimes) {
  EXPECT_EQ(SmallPrime(0), 2u);
  EXPECT_EQ(SmallPrime(1), 3u);
  EXPECT_EQ(SmallPrime(5), 13u);
  EXPECT_EQ(SmallPrime(15), 53u);
}

TEST(GcdTest, Basics) {
  EXPECT_EQ(Gcd(12, 18), 6u);
  EXPECT_EQ(Gcd(17, 5), 1u);
  EXPECT_EQ(Gcd(0, 7), 7u);
  EXPECT_EQ(Gcd(7, 0), 7u);
}

}  // namespace
}  // namespace dbs
