// End-to-end smoke test for tools/dbs_sample's double-buffered scan flag.
//
// Runs the real binary (path injected by CMake as DBS_SAMPLE_BIN) against
// the same input with double_buffer=1 (the default) and double_buffer=0
// (the synchronous scan) and asserts the sample files are byte-identical:
// prefetching may only change timing, never a single output byte.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset_io.h"
#include "data/point_set.h"
#include "util/rng.h"

namespace dbs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "dbs_sample_smoke_" + name;
}

void WriteInput(const std::string& path, int64_t n, int dim,
                uint64_t seed) {
  dbs::Rng rng(seed);
  data::PointSet ps(dim);
  ps.Reserve(n);
  std::vector<double> p(static_cast<size_t>(dim));
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) p[static_cast<size_t>(j)] = rng.NextDouble();
    ps.Append(p);
  }
  ASSERT_TRUE(data::WriteDatasetFile(path, ps).ok());
}

int RunSample(const std::string& args) {
  std::string cmd = std::string(DBS_SAMPLE_BIN) + " " + args +
                    " >/dev/null 2>&1";
  return std::system(cmd.c_str());
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class SampleSmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SampleSmokeTest, DoubleBufferedOutputIsByteIdentical) {
  const std::string mode = GetParam();
  const std::string in = TempPath("in_" + mode + ".dbsf");
  const std::string out_sync = TempPath("sync_" + mode + ".dbsf");
  const std::string out_buf = TempPath("buf_" + mode + ".dbsf");
  const std::string out_default = TempPath("default_" + mode + ".dbsf");
  WriteInput(in, /*n=*/20000, /*dim=*/3, /*seed=*/0xfeedULL);

  const std::string common = "in=" + in + " mode=" + mode +
                             " size=500 kernels=64 seed=9";
  ASSERT_EQ(RunSample(common + " out=" + out_sync + " double_buffer=0"), 0);
  ASSERT_EQ(RunSample(common + " out=" + out_buf + " double_buffer=1"), 0);
  ASSERT_EQ(RunSample(common + " out=" + out_default), 0);  // default on

  std::string sync_bytes = ReadBytes(out_sync);
  ASSERT_FALSE(sync_bytes.empty());
  EXPECT_EQ(ReadBytes(out_buf), sync_bytes);
  EXPECT_EQ(ReadBytes(out_default), sync_bytes);
}

INSTANTIATE_TEST_SUITE_P(Modes, SampleSmokeTest,
                         ::testing::Values("twopass", "stream", "uniform"));

TEST(SampleSmokeTest, MissingOutputStillFailsWithUsage) {
  const std::string in = TempPath("in_noout.dbsf");
  WriteInput(in, /*n=*/100, /*dim=*/2, /*seed=*/1);
  EXPECT_NE(RunSample("in=" + in + " double_buffer=1"), 0);
}

}  // namespace
}  // namespace dbs
