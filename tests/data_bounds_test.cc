#include "data/bounds.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"

namespace dbs::data {
namespace {

TEST(BoundingBoxTest, ExtendFromEmpty) {
  BoundingBox box(2);
  EXPECT_TRUE(box.empty());
  PointSet ps(2, {1.0, 5.0, -2.0, 3.0});
  box.Extend(ps[0]);
  box.Extend(ps[1]);
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.lo(0), -2.0);
  EXPECT_EQ(box.hi(0), 1.0);
  EXPECT_EQ(box.lo(1), 3.0);
  EXPECT_EQ(box.hi(1), 5.0);
}

TEST(BoundingBoxTest, ExplicitBounds) {
  BoundingBox box({0.0, 0.0}, {2.0, 4.0});
  EXPECT_EQ(box.extent(0), 2.0);
  EXPECT_EQ(box.extent(1), 4.0);
  EXPECT_DOUBLE_EQ(box.Volume(), 8.0);
}

TEST(BoundingBoxTest, Contains) {
  BoundingBox box({0.0, 0.0}, {1.0, 1.0});
  PointSet ps(2, {0.5, 0.5, 1.0, 1.0, 1.1, 0.5});
  EXPECT_TRUE(box.Contains(ps[0]));
  EXPECT_TRUE(box.Contains(ps[1]));  // boundary is inside
  EXPECT_FALSE(box.Contains(ps[2]));
}

TEST(BoundingBoxTest, ContainsInterior) {
  BoundingBox box({0.0, 0.0}, {10.0, 10.0});
  PointSet ps(2, {0.5, 5.0, 2.0, 5.0});
  // 10% margin excludes points within 1.0 of a face.
  EXPECT_FALSE(box.ContainsInterior(ps[0], 0.1));
  EXPECT_TRUE(box.ContainsInterior(ps[1], 0.1));
  // Zero margin reduces to Contains.
  EXPECT_TRUE(box.ContainsInterior(ps[0], 0.0));
}

TEST(BoundingBoxTest, ExtendWithBox) {
  BoundingBox a({0.0}, {1.0});
  BoundingBox b({3.0}, {5.0});
  a.Extend(b);
  EXPECT_EQ(a.lo(0), 0.0);
  EXPECT_EQ(a.hi(0), 5.0);
}

TEST(UnitScalerTest, MapsBoxToUnitCube) {
  PointSet ps(2, {2.0, 10.0, 4.0, 30.0});
  UnitScaler scaler = UnitScaler::Fit(ps);
  double out[2];
  scaler.Transform(ps[0], out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  scaler.Transform(ps[1], out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
}

TEST(UnitScalerTest, RoundTrip) {
  PointSet ps(3, {-5.0, 0.0, 2.0, 7.0, 3.0, 9.0, 1.0, 1.5, 4.0});
  UnitScaler scaler = UnitScaler::Fit(ps);
  for (int64_t i = 0; i < ps.size(); ++i) {
    double unit[3];
    double back[3];
    scaler.Transform(ps[i], unit);
    for (double u : unit) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
    scaler.Inverse(PointView(unit, 3), back);
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(back[j], ps[i][j], 1e-12);
  }
}

TEST(UnitScalerTest, DegenerateDimensionMapsToHalf) {
  PointSet ps(2, {1.0, 5.0, 1.0, 9.0});  // dim 0 has zero extent
  UnitScaler scaler = UnitScaler::Fit(ps);
  double out[2];
  scaler.Transform(ps[0], out);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(UnitScalerTest, TransformAll) {
  PointSet ps(1, {0.0, 5.0, 10.0});
  UnitScaler scaler = UnitScaler::Fit(ps);
  PointSet unit = scaler.TransformAll(ps);
  ASSERT_EQ(unit.size(), 3);
  EXPECT_DOUBLE_EQ(unit[1][0], 0.5);
}

TEST(UnitScalerTest, ScaleLength) {
  PointSet ps(2, {0.0, 0.0, 4.0, 8.0});
  UnitScaler scaler = UnitScaler::Fit(ps);
  EXPECT_DOUBLE_EQ(scaler.ScaleLength(0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(scaler.ScaleLength(1, 2.0), 0.25);
}

}  // namespace
}  // namespace dbs::data
