// The distributed half of the sharded build (DESIGN.md §12): dbsd daemons
// fit disjoint shards via the partial_fit RPC, and the collected partial
// states merge into a model bitwise identical to the in-process build.
// Also pins the PartialKde / PartialFitRequest wire codecs, including
// truncation and corruption negatives.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/dataset_io.h"
#include "data/range_scan.h"
#include "density/kde.h"
#include "density/kde_partial.h"
#include "serve/batch_executor.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "shard/coordinator.h"
#include "synth/generator.h"
#include "util/shard.h"

namespace dbs {
namespace {

constexpr int kDim = 3;

data::PointSet MakeData(int64_t points, uint64_t seed) {
  synth::ClusteredDatasetOptions opts;
  opts.dim = kDim;
  opts.num_clusters = 4;
  opts.num_cluster_points = points;
  opts.noise_multiplier = 0.1;
  opts.seed = seed;
  auto ds = synth::MakeClusteredDataset(opts);
  EXPECT_TRUE(ds.ok());
  return std::move(ds)->points;
}

density::KdeOptions KdeOpts() {
  density::KdeOptions opts;
  opts.num_kernels = 96;
  opts.seed = 19;
  return opts;
}

serve::PartialFitRequest MakeRequest(const std::string& path, int64_t shard,
                                     int64_t num_shards) {
  serve::PartialFitRequest request;
  request.path = path;
  request.shard = shard;
  request.num_shards = num_shards;
  request.num_kernels = KdeOpts().num_kernels;
  request.seed = KdeOpts().seed;
  return request;
}

void ExpectSameModel(const density::Kde& got, const density::Kde& want) {
  const density::Kde::State g = got.ExportState();
  const density::Kde::State w = want.ExportState();
  EXPECT_EQ(g.n, w.n);
  EXPECT_EQ(g.centers.flat(), w.centers.flat());
  EXPECT_EQ(g.bandwidths, w.bandwidths);
  EXPECT_EQ(g.bounds.lo(), w.bounds.lo());
  EXPECT_EQ(g.bounds.hi(), w.bounds.hi());
}

// One in-process daemon (registry + executor + service + server).
struct Daemon {
  serve::ModelRegistry registry;
  std::unique_ptr<serve::BatchExecutor> executor;
  std::unique_ptr<serve::ModelService> service;
  std::unique_ptr<serve::Server> server;

  static std::unique_ptr<Daemon> Start() {
    auto d = std::make_unique<Daemon>();
    serve::BatchExecutorOptions pool;
    pool.num_workers = 2;
    d->executor = std::make_unique<serve::BatchExecutor>(pool);
    d->service = std::make_unique<serve::ModelService>(&d->registry,
                                                       d->executor.get());
    auto server =
        serve::Server::Start(d->service.get(), serve::ServerOptions{});
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    d->server = std::move(server).value();
    return d;
  }

  ~Daemon() {
    if (server != nullptr) server->Stop();
    if (executor != nullptr) executor->Shutdown();
  }
};

class ShardServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeData(2500, 61);
    path_ = ::testing::TempDir() + "shard_serve_data.dbsf";
    ASSERT_TRUE(data::WriteDatasetFile(path_, data_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  density::Kde BuildLocal(int64_t shards) {
    shard::ShardCoordinatorOptions opts;
    opts.shards = shards;
    shard::ShardCoordinator coordinator(
        [this]() -> Result<std::unique_ptr<data::DataScan>> {
          auto opened = data::FileScan::Open(path_, /*batch_rows=*/8192);
          EXPECT_TRUE(opened.ok());
          return std::unique_ptr<data::DataScan>(std::move(*opened));
        },
        opts);
    auto kde = coordinator.BuildKde(KdeOpts());
    EXPECT_TRUE(kde.ok()) << kde.status().ToString();
    return std::move(kde).value();
  }

  data::PointSet data_{kDim};
  std::string path_;
};

TEST_F(ShardServeTest, TwoDaemonsMergeToTheInProcessShardedBuild) {
  auto daemon_a = Daemon::Start();
  auto daemon_b = Daemon::Start();

  std::vector<density::PartialKde> parts;
  const uint16_t ports[] = {daemon_a->server->port(),
                            daemon_b->server->port()};
  for (int64_t shard = 0; shard < 2; ++shard) {
    auto client = serve::Client::Connect(ports[shard]);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto partial = client->PartialFit(MakeRequest(path_, shard, 2));
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    parts.push_back(std::move(*partial));
  }

  auto merged = density::MergePartialKde(std::move(parts[0]),
                                         std::move(parts[1]));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto kde = density::FinalizeKde(std::move(*merged), KdeOpts());
  ASSERT_TRUE(kde.ok()) << kde.status().ToString();

  ExpectSameModel(*kde, BuildLocal(2));
}

TEST_F(ShardServeTest, SingleDaemonShardMatchesFitBitwise) {
  auto daemon = Daemon::Start();
  auto client = serve::Client::Connect(daemon->server->port());
  ASSERT_TRUE(client.ok());
  auto partial = client->PartialFit(MakeRequest(path_, 0, 1));
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  auto kde = density::FinalizeKde(std::move(*partial), KdeOpts());
  ASSERT_TRUE(kde.ok());

  data::InMemoryScan scan(&data_);
  auto direct = density::Kde::Fit(scan, KdeOpts());
  ASSERT_TRUE(direct.ok());
  ExpectSameModel(*kde, *direct);
}

TEST_F(ShardServeTest, BadRequestsAreRejectedNotFatal) {
  auto daemon = Daemon::Start();
  // Shard index out of range never reaches the service: decode rejects it
  // and, as with every protocol violation, the connection is dropped.
  auto violating = serve::Client::Connect(daemon->server->port());
  ASSERT_TRUE(violating.ok());
  EXPECT_FALSE(violating->PartialFit(MakeRequest(path_, 2, 2)).ok());

  // A missing dataset file fails with an error RESPONSE — the connection
  // stays up and the daemon keeps serving on it.
  auto client = serve::Client::Connect(daemon->server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(
      client->PartialFit(MakeRequest(path_ + ".missing", 0, 1)).ok());
  auto ok_after = client->PartialFit(MakeRequest(path_, 0, 1));
  EXPECT_TRUE(ok_after.ok()) << ok_after.status().ToString();
}

TEST(ShardWireTest, PartialFitRequestRoundTrips) {
  serve::PartialFitRequest request;
  request.path = "data/foo.dbsf";
  request.shard = 3;
  request.num_shards = 8;
  request.num_kernels = 512;
  request.kernel = density::KernelType::kGaussian;
  request.bandwidth_rule = density::BandwidthRule::kSilverman;
  request.fixed_bandwidth = 0.25;
  request.bandwidth_scale = 0.5;
  request.seed = 0xabcdef01ULL;
  auto decoded =
      serve::DecodePartialFitRequest(serve::EncodePartialFitRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->path, request.path);
  EXPECT_EQ(decoded->shard, request.shard);
  EXPECT_EQ(decoded->num_shards, request.num_shards);
  EXPECT_EQ(decoded->num_kernels, request.num_kernels);
  EXPECT_EQ(decoded->kernel, request.kernel);
  EXPECT_EQ(decoded->bandwidth_rule, request.bandwidth_rule);
  EXPECT_EQ(decoded->fixed_bandwidth, request.fixed_bandwidth);
  EXPECT_EQ(decoded->bandwidth_scale, request.bandwidth_scale);
  EXPECT_EQ(decoded->seed, request.seed);
}

TEST(ShardWireTest, PartialFitRequestRejectsBadShardIdentity) {
  serve::PartialFitRequest request;
  request.path = "x.dbsf";
  request.shard = 5;
  request.num_shards = 5;  // shard must be < num_shards
  EXPECT_FALSE(
      serve::DecodePartialFitRequest(serve::EncodePartialFitRequest(request))
          .ok());
}

// Fits a real 2-shard partial state for codec tests.
density::PartialKde MakeWirePartial(const data::PointSet& data) {
  std::vector<density::PartialKde> parts;
  for (int64_t s = 0; s < 2; ++s) {
    ShardInfo info;
    info.shard = s;
    info.num_shards = 2;
    info.total_rows = data.size();
    const RowRange range = ShardRowRange(info.total_rows, 2, s);
    data::InMemoryScan base(&data);
    data::RangeScan slice(&base, range.begin, range.end);
    auto partial = density::Kde::FitPartial(slice, KdeOpts(), info);
    EXPECT_TRUE(partial.ok());
    parts.push_back(std::move(*partial));
  }
  auto merged = density::MergePartialKde(std::move(parts[0]),
                                         std::move(parts[1]));
  EXPECT_TRUE(merged.ok());
  return std::move(*merged);
}

TEST(ShardWireTest, PartialKdeRoundTripFinalizesIdentically) {
  const data::PointSet data = MakeData(1200, 67);
  density::PartialKde partial = MakeWirePartial(data);
  auto decoded = serve::DecodePartialKde(serve::EncodePartialKde(partial));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->parts.size(), partial.parts.size());
  auto want = density::FinalizeKde(std::move(partial), KdeOpts());
  auto got = density::FinalizeKde(std::move(*decoded), KdeOpts());
  ASSERT_TRUE(want.ok() && got.ok());
  ExpectSameModel(*got, *want);
}

TEST(ShardWireTest, PartialKdeDecodeRejectsTruncationAnywhere) {
  const data::PointSet data = MakeData(600, 71);
  const std::vector<uint8_t> bytes =
      serve::EncodePartialKde(MakeWirePartial(data));
  // Every strict prefix must fail cleanly (sampled for speed).
  for (size_t len = 0; len < bytes.size();
       len += std::max<size_t>(1, bytes.size() / 97)) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<int64_t>(len));
    EXPECT_FALSE(serve::DecodePartialKde(cut).ok()) << "len=" << len;
  }
  // Trailing garbage is rejected too.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(serve::DecodePartialKde(padded).ok());
}

TEST(ShardWireTest, PartialKdeDecodeRejectsCorruptPartCount) {
  const data::PointSet data = MakeData(600, 73);
  std::vector<uint8_t> bytes =
      serve::EncodePartialKde(MakeWirePartial(data));
  // The leading u32 is the part count; zero and absurd counts must fail.
  bytes[0] = 0;
  bytes[1] = 0;
  bytes[2] = 0;
  bytes[3] = 0;
  EXPECT_FALSE(serve::DecodePartialKde(bytes).ok());
  bytes[0] = 0xff;
  bytes[1] = 0xff;
  bytes[2] = 0xff;
  bytes[3] = 0xff;
  EXPECT_FALSE(serve::DecodePartialKde(bytes).ok());
}

}  // namespace
}  // namespace dbs
