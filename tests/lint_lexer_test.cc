// Unit tests for the dbs_lint lexer: phase-2 splices, raw strings with
// adversarial delimiters, encoding prefixes, comment tokens, directive
// mode, and the never-fail contract (malformed input → token + LexNote).

#include "tools/lint/lexer.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dbs::lint {
namespace {

std::vector<Token> CodeTokens(const std::vector<Token>& tokens) {
  std::vector<Token> code;
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kComment) code.push_back(t);
  }
  return code;
}

TEST(LexerTest, BasicTokenKinds) {
  const auto toks = Lex("int x = 42 + y;");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_TRUE(toks[0].starts_line);
  EXPECT_EQ(toks[2].kind, TokKind::kPunct);
  EXPECT_EQ(toks[2].text, "=");
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_EQ(toks[3].text, "42");
  EXPECT_FALSE(toks[3].starts_line);
}

TEST(LexerTest, MaximalMunchPunctuators) {
  const auto toks = Lex("a<<=b;c->*d;e<=>f;g::h;");
  std::vector<std::string> puncts;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kPunct) puncts.push_back(t.text);
  }
  const std::vector<std::string> want = {"<<=", ";", "->*", ";",
                                         "<=>", ";", "::",  ";"};
  EXPECT_EQ(puncts, want);
}

TEST(LexerTest, RawStringIsOneToken) {
  const auto toks = Lex("auto s = R\"(hello \"world\")\";");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks[3].text, "R\"(hello \"world\")\"");
}

// The delimiter exists exactly so the body may contain `)"`; the lexer
// must scan for `)delim"` and not stop at the embedded `)"`.
TEST(LexerTest, RawStringBodyContainingQuoteParen) {
  const std::string src = "auto s = R\"xx(body with )\" inside)xx\"; int z;";
  const auto toks = Lex(src);
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks[3].text, "R\"xx(body with )\" inside)xx\"");
  // Lexing resumed correctly after the literal.
  EXPECT_EQ(toks[5].text, "int");
}

TEST(LexerTest, RawStringEncodingPrefixes) {
  const auto toks = Lex("auto a = u8R\"(x)\"; auto b = LR\"(y)\";");
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks[3].text, "u8R\"(x)\"");
  EXPECT_EQ(toks[8].kind, TokKind::kString);
  EXPECT_EQ(toks[8].text, "LR\"(y)\"");
}

TEST(LexerTest, MultiLineRawStringKeepsPhysicalLines) {
  const auto toks = Lex("auto s = R\"(line one\nline two)\";\nint after;");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks[3].line, 1);
  EXPECT_EQ(toks[3].end_line, 2);
  EXPECT_EQ(toks[5].text, "int");
  EXPECT_EQ(toks[5].line, 3);
}

TEST(LexerTest, CharLiteralsAndEscapes) {
  const auto toks = Lex("char a = '\\''; char b = L'x';");
  EXPECT_EQ(toks[3].kind, TokKind::kChar);
  EXPECT_EQ(toks[3].text, "'\\''");
  EXPECT_EQ(toks[8].kind, TokKind::kChar);
  EXPECT_EQ(toks[8].text, "L'x'");
}

TEST(LexerTest, StringEscapesDoNotTerminateEarly) {
  const auto toks = Lex("auto s = \"a\\\"b\"; int z;");
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks[3].text, "\"a\\\"b\"");
  EXPECT_EQ(toks[5].text, "int");
}

TEST(LexerTest, CommentsAreTokens) {
  const auto toks = Lex("int a; // trailing\n/* block */ int b;");
  ASSERT_EQ(toks.size(), 8u);
  EXPECT_EQ(toks[3].kind, TokKind::kComment);
  EXPECT_EQ(toks[3].text, "// trailing");
  EXPECT_EQ(toks[4].kind, TokKind::kComment);
  EXPECT_EQ(toks[4].text, "/* block */");
  EXPECT_EQ(toks[4].line, 2);
}

TEST(LexerTest, MultiLineBlockCommentSpansLines) {
  const auto toks = Lex("/* one\ntwo\nthree */ int x;");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::kComment);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].end_line, 3);
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 3);
}

// A backslash-newline splice inside a // comment extends the comment onto
// the next physical line, exactly as the compiler's phase-2 translation
// does. `int hidden;` must NOT appear as code tokens.
TEST(LexerTest, LineContinuationExtendsLineComment) {
  const auto toks = Lex("// comment \\\nint hidden;\nint visible;");
  const auto code = CodeTokens(toks);
  ASSERT_EQ(code.size(), 3u);
  EXPECT_EQ(code[0].text, "int");
  EXPECT_EQ(code[1].text, "visible");
  EXPECT_EQ(code[0].line, 3);
}

// A splice through the middle of an identifier joins the halves into one
// token, which keeps the physical line it started on.
TEST(LexerTest, SpliceJoinsIdentifier) {
  const auto toks = Lex("in\\\nt x;");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[1].line, 2);
}

TEST(LexerTest, DirectiveTokensAreMarked) {
  const auto toks = Lex("#define FOO { 1 }\nint x;");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].text, "#");
  EXPECT_TRUE(toks[0].in_directive);
  EXPECT_EQ(toks[1].text, "define");
  EXPECT_TRUE(toks[1].in_directive);
  // The macro body's braces are directive tokens too.
  EXPECT_EQ(toks[3].text, "{");
  EXPECT_TRUE(toks[3].in_directive);
  // The next line is ordinary code again.
  EXPECT_EQ(toks[6].text, "int");
  EXPECT_FALSE(toks[6].in_directive);
}

TEST(LexerTest, SplicedDirectiveStaysOneDirective) {
  const auto toks = Lex("#define BAR \\\n  { 2 }\nint x;");
  bool brace_in_directive = false;
  for (const Token& t : toks) {
    if (t.text == "{") brace_in_directive = t.in_directive;
  }
  EXPECT_TRUE(brace_in_directive);
}

TEST(LexerTest, IncludeAngleOperandIsHeaderName) {
  const auto toks = Lex("#include <vector>\n#include \"data/scan.h\"\n");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[2].kind, TokKind::kHeaderName);
  EXPECT_EQ(toks[2].text, "<vector>");
  EXPECT_TRUE(toks[2].in_directive);
  EXPECT_EQ(toks[5].kind, TokKind::kString);
  EXPECT_EQ(toks[5].text, "\"data/scan.h\"");
}

// `a < b` in ordinary code must never lex as a header name.
TEST(LexerTest, AngleOutsideIncludeIsPunct) {
  const auto toks = Lex("bool c = a < b;");
  for (const Token& t : toks) EXPECT_NE(t.kind, TokKind::kHeaderName);
}

TEST(LexerTest, HashMidLineIsNotADirective) {
  const auto toks = Lex("int a = x # y;");  // not valid C++, but not a directive
  for (const Token& t : toks) EXPECT_FALSE(t.in_directive);
}

TEST(LexerTest, PpNumbersWithExponentsAndSeparators) {
  const auto toks = Lex("double d = 1.5e-3; int n = 1'000'000; auto h = 0x1fp2;");
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_EQ(toks[3].text, "1.5e-3");
  EXPECT_EQ(toks[8].kind, TokKind::kNumber);
  EXPECT_EQ(toks[8].text, "1'000'000");
  EXPECT_EQ(toks[13].kind, TokKind::kNumber);
  EXPECT_EQ(toks[13].text, "0x1fp2");
}

TEST(LexerTest, UnterminatedStringProducesNote) {
  std::vector<LexNote> notes;
  const auto toks = Lex("auto s = \"never closed\nint x;", &notes);
  EXPECT_FALSE(notes.empty());
  EXPECT_FALSE(toks.empty());
}

TEST(LexerTest, UnterminatedBlockCommentProducesNote) {
  std::vector<LexNote> notes;
  const auto toks = Lex("int a; /* runs off the end", &notes);
  EXPECT_FALSE(notes.empty());
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks.back().kind, TokKind::kComment);
}

TEST(LexerTest, InvalidRawDelimiterProducesNote) {
  std::vector<LexNote> notes;
  // A space in the delimiter is ill-formed; the lexer must note it and
  // keep going rather than swallow the rest of the file.
  const auto toks = Lex("auto s = R\"a b(x)a b\"; int z;", &notes);
  EXPECT_FALSE(notes.empty());
  EXPECT_FALSE(toks.empty());
}

}  // namespace
}  // namespace dbs::lint
