#include "density/kernel.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "density/bandwidth.h"

namespace dbs::density {
namespace {

constexpr KernelType kAllKernels[] = {
    KernelType::kEpanechnikov, KernelType::kQuartic, KernelType::kTriangular,
    KernelType::kUniform, KernelType::kGaussian};

class KernelPropertyTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(KernelPropertyTest, IntegratesToOne) {
  KernelType type = GetParam();
  double r = KernelSupportRadius(type);
  const int steps = 200000;
  double dx = 2 * r / steps;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    double u = -r + (i + 0.5) * dx;
    integral += KernelValue(type, u) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3) << KernelTypeName(type);
}

TEST_P(KernelPropertyTest, IsSymmetric) {
  KernelType type = GetParam();
  for (double u : {0.1, 0.3, 0.77, 0.99, 1.5, 3.0}) {
    EXPECT_DOUBLE_EQ(KernelValue(type, u), KernelValue(type, -u));
  }
}

TEST_P(KernelPropertyTest, NonNegativeEverywhere) {
  KernelType type = GetParam();
  for (double u = -5.0; u <= 5.0; u += 0.01) {
    EXPECT_GE(KernelValue(type, u), 0.0);
  }
}

TEST_P(KernelPropertyTest, ZeroOutsideSupport) {
  KernelType type = GetParam();
  double r = KernelSupportRadius(type);
  EXPECT_EQ(KernelValue(type, r + 1e-9), 0.0);
  EXPECT_EQ(KernelValue(type, -(r + 1e-9)), 0.0);
  EXPECT_EQ(KernelValue(type, 100.0), 0.0);
}

TEST_P(KernelPropertyTest, MonotoneDecreasingFromCenter) {
  KernelType type = GetParam();
  double prev = KernelValue(type, 0.0);
  for (double u = 0.05; u <= KernelSupportRadius(type); u += 0.05) {
    double v = KernelValue(type, u);
    EXPECT_LE(v, prev + 1e-12) << KernelTypeName(type) << " at u=" << u;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelPropertyTest,
                         ::testing::ValuesIn(kAllKernels),
                         [](const auto& param_info) {
                           return std::string(
                               KernelTypeName(param_info.param));
                         });

TEST(KernelValueTest, KnownValues) {
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kEpanechnikov, 0.0), 0.75);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kEpanechnikov, 0.5), 0.75 * 0.75);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kUniform, 0.9), 0.5);
  EXPECT_DOUBLE_EQ(KernelValue(KernelType::kTriangular, 0.25), 0.75);
  EXPECT_NEAR(KernelValue(KernelType::kGaussian, 0.0), 0.39894228, 1e-8);
}

TEST(KernelCanonicalBandwidthTest, KnownFactors) {
  EXPECT_NEAR(KernelCanonicalBandwidth(KernelType::kEpanechnikov),
              std::sqrt(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(KernelCanonicalBandwidth(KernelType::kGaussian), 1.0);
}

TEST(BandwidthTest, ScottRuleScalesWithSigmaAndM) {
  std::vector<double> sigma{1.0, 2.0};
  auto h1 = ComputeBandwidths(BandwidthRule::kScott,
                              KernelType::kEpanechnikov, sigma, 1000, 0.0);
  ASSERT_EQ(h1.size(), 2u);
  // Per-dimension proportionality to sigma.
  EXPECT_NEAR(h1[1] / h1[0], 2.0, 1e-12);
  // Exact Scott value for d=2: sqrt(5) * sigma * m^(-1/6).
  EXPECT_NEAR(h1[0], std::sqrt(5.0) * std::pow(1000.0, -1.0 / 6.0), 1e-12);
  // More kernels -> narrower bandwidth.
  auto h2 = ComputeBandwidths(BandwidthRule::kScott,
                              KernelType::kEpanechnikov, sigma, 8000, 0.0);
  EXPECT_LT(h2[0], h1[0]);
}

TEST(BandwidthTest, SilvermanIsScaledScott) {
  std::vector<double> sigma{1.0};
  auto scott = ComputeBandwidths(BandwidthRule::kScott,
                                 KernelType::kGaussian, sigma, 500, 0.0);
  auto silverman = ComputeBandwidths(BandwidthRule::kSilverman,
                                     KernelType::kGaussian, sigma, 500, 0.0);
  double expected = std::pow(4.0 / 3.0, 0.2);
  EXPECT_NEAR(silverman[0] / scott[0], expected, 1e-12);
}

TEST(BandwidthTest, FixedRuleIgnoresSigma) {
  std::vector<double> sigma{1.0, 100.0, 0.0};
  auto h = ComputeBandwidths(BandwidthRule::kFixed,
                             KernelType::kEpanechnikov, sigma, 10, 0.25);
  EXPECT_EQ(h, (std::vector<double>{0.25, 0.25, 0.25}));
}

TEST(BandwidthTest, DegenerateSigmaGetsFloor) {
  std::vector<double> sigma{0.0};
  auto h = ComputeBandwidths(BandwidthRule::kScott,
                             KernelType::kEpanechnikov, sigma, 100, 0.0);
  EXPECT_GT(h[0], 0.0);
}

TEST(KernelTypeNameTest, Names) {
  EXPECT_STREQ(KernelTypeName(KernelType::kEpanechnikov), "epanechnikov");
  EXPECT_STREQ(KernelTypeName(KernelType::kGaussian), "gaussian");
}

}  // namespace
}  // namespace dbs::density
