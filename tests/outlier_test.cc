#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/point_set.h"
#include "density/kde.h"
#include "outlier/ball_integration.h"
#include "outlier/exact_detector.h"
#include "outlier/kde_detector.h"
#include "parallel/batch_executor.h"
#include "util/math.h"
#include "util/rng.h"

namespace dbs::outlier {
namespace {

using data::PointSet;
using data::PointView;

// A dense cloud in [0.4, 0.6]^2 plus isolated planted outliers far away.
struct PlantedWorkload {
  PointSet points{2};
  std::vector<int64_t> outlier_indices;  // planted positions
};

PlantedWorkload MakePlanted(int64_t n_cloud, int n_outliers, uint64_t seed) {
  dbs::Rng rng(seed);
  PlantedWorkload w;
  for (int64_t i = 0; i < n_cloud; ++i) {
    w.points.Append(std::vector<double>{rng.NextDouble(0.4, 0.6),
                                        rng.NextDouble(0.4, 0.6)});
  }
  // Outliers on a far ring: pairwise distant and far from the cloud.
  for (int i = 0; i < n_outliers; ++i) {
    double angle = 2.0 * M_PI * i / n_outliers;
    w.outlier_indices.push_back(w.points.size());
    w.points.Append(std::vector<double>{0.5 + 2.0 * std::cos(angle),
                                        0.5 + 2.0 * std::sin(angle)});
  }
  return w;
}

density::Kde FitKde(const PointSet& ps) {
  density::KdeOptions opts;
  opts.num_kernels = 400;
  auto kde = density::Kde::Fit(ps, opts);
  DBS_CHECK(kde.ok());
  return std::move(kde).value();
}

TEST(ExactDetectorTest, RejectsBadParams) {
  PointSet ps(2, {0.0, 0.0});
  DbOutlierParams bad;
  bad.radius = -1;
  EXPECT_FALSE(DetectOutliersExact(ps, bad).ok());
  DbOutlierParams frac;
  frac.max_neighbor_fraction = 1.5;
  EXPECT_FALSE(DetectOutliersExact(ps, frac).ok());
  EXPECT_FALSE(DetectOutliersExact(PointSet(2), DbOutlierParams{}).ok());
}

TEST(ExactDetectorTest, DefinitionOnTinyExample) {
  // 1-D points: cluster {0, 0.1, 0.2}, singleton at 10.
  PointSet ps(1, {0.0, 0.1, 0.2, 10.0});
  DbOutlierParams params;
  params.radius = 0.15;
  params.max_neighbors = 0;  // no neighbors allowed
  auto report = DetectOutliersExact(ps, params);
  ASSERT_TRUE(report.ok());
  // 0 has neighbor 0.1; 0.1 has two; 0.2 has one; 10 has none.
  EXPECT_EQ(report->outlier_indices, (std::vector<int64_t>{3}));
  EXPECT_EQ(report->neighbor_counts, (std::vector<int64_t>{0}));

  params.max_neighbors = 1;
  report = DetectOutliersExact(ps, params);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outlier_indices, (std::vector<int64_t>{0, 2, 3}));
}

TEST(ExactDetectorTest, KdTreeMatchesNestedLoop) {
  dbs::Rng rng(1);
  PointSet ps(3);
  for (int i = 0; i < 600; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble(),
                                  rng.NextDouble()});
  }
  for (double radius : {0.05, 0.15, 0.3}) {
    for (int64_t p : {0, 3, 10}) {
      DbOutlierParams params;
      params.radius = radius;
      params.max_neighbors = p;
      auto a = DetectOutliersExact(ps, params);
      auto b = DetectOutliersNestedLoop(ps, params);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->outlier_indices, b->outlier_indices)
          << "radius=" << radius << " p=" << p;
      EXPECT_EQ(a->neighbor_counts, b->neighbor_counts);
    }
  }
}

TEST(ExactDetectorTest, FractionalNeighborBound) {
  PointSet ps(1, {0.0, 0.01, 0.02, 0.03, 5.0});
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbor_fraction = 0.2;  // 20% of 5 points = 1 neighbor
  EXPECT_EQ(params.NeighborBound(5), 1);
  auto report = DetectOutliersExact(ps, params);
  ASSERT_TRUE(report.ok());
  // Cluster points have 3 neighbors each (> 1); 5.0 has none.
  EXPECT_EQ(report->outlier_indices, (std::vector<int64_t>{4}));
}

TEST(ExactDetectorTest, FindsPlantedOutliers) {
  PlantedWorkload w = MakePlanted(5000, 8, 2);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  auto report = DetectOutliersExact(w.points, params);
  ASSERT_TRUE(report.ok());
  std::set<int64_t> found(report->outlier_indices.begin(),
                          report->outlier_indices.end());
  for (int64_t idx : w.outlier_indices) {
    EXPECT_TRUE(found.count(idx)) << "missed planted outlier " << idx;
  }
  // The dense cloud (5000 points in a 0.2 square) contributes none.
  EXPECT_EQ(report->outlier_indices.size(), w.outlier_indices.size());
}

TEST(ExactDetectorTest, ShardedCountingMatchesSequentialExactly) {
  PlantedWorkload w = MakePlanted(3000, 6, 11);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  auto sequential = DetectOutliersExact(w.points, params);
  ASSERT_TRUE(sequential.ok());
  // 0 workers (no executor) already covered by `sequential`; 1 and 4
  // workers must produce the identical report.
  for (int workers : {1, 4}) {
    SCOPED_TRACE(workers);
    parallel::BatchExecutorOptions pool;
    pool.num_workers = workers;
    pool.min_shard = 64;  // force real sharding at this size
    parallel::BatchExecutor executor(pool);
    ExactDetectorOptions options;
    options.executor = &executor;
    auto sharded = DetectOutliersExact(w.points, params, options);
    ASSERT_TRUE(sharded.ok());
    EXPECT_EQ(sharded->outlier_indices, sequential->outlier_indices);
    EXPECT_EQ(sharded->neighbor_counts, sequential->neighbor_counts);
    EXPECT_EQ(sharded->candidates_checked, sequential->candidates_checked);
    EXPECT_EQ(sharded->passes, sequential->passes);
  }
}

TEST(NestedLoopTest, ShardedScanMatchesSequentialExactly) {
  PlantedWorkload w = MakePlanted(1500, 6, 12);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  auto sequential = DetectOutliersNestedLoop(w.points, params);
  ASSERT_TRUE(sequential.ok());
  for (int workers : {1, 4}) {
    SCOPED_TRACE(workers);
    parallel::BatchExecutorOptions pool;
    pool.num_workers = workers;
    pool.min_shard = 64;  // force real sharding at this size
    parallel::BatchExecutor executor(pool);
    ExactDetectorOptions options;
    options.executor = &executor;
    auto sharded = DetectOutliersNestedLoop(w.points, params, options);
    ASSERT_TRUE(sharded.ok());
    EXPECT_EQ(sharded->outlier_indices, sequential->outlier_indices);
    EXPECT_EQ(sharded->neighbor_counts, sequential->neighbor_counts);
    EXPECT_EQ(sharded->candidates_checked, sequential->candidates_checked);
    EXPECT_EQ(sharded->passes, sequential->passes);
  }
}

TEST(NestedLoopTest, ShardedScanPropagatesBackpressure) {
  PlantedWorkload w = MakePlanted(1000, 2, 15);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  parallel::BatchExecutorOptions pool;
  pool.num_workers = 1;
  pool.min_shard = 1;
  parallel::BatchExecutor executor(pool);
  executor.Shutdown();  // every submit now fails
  ExactDetectorOptions options;
  options.executor = &executor;
  auto report = DetectOutliersNestedLoop(w.points, params, options);
  EXPECT_FALSE(report.ok());
}

TEST(ExactDetectorTest, ShardedCountingPropagatesBackpressure) {
  PlantedWorkload w = MakePlanted(2000, 2, 13);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  parallel::BatchExecutorOptions pool;
  pool.num_workers = 1;
  pool.min_shard = 1;
  parallel::BatchExecutor executor(pool);
  executor.Shutdown();  // every submit now fails
  ExactDetectorOptions options;
  options.executor = &executor;
  auto report = DetectOutliersExact(w.points, params, options);
  EXPECT_FALSE(report.ok());
}

TEST(BallIntegratorTest, CenterValueUsesBallVolume) {
  PlantedWorkload w = MakePlanted(3000, 0, 3);
  density::Kde kde = FitKde(w.points);
  BallIntegrator integrator(BallIntegration::kCenterValue, 2);
  double q[2] = {0.5, 0.5};
  PointView p(q, 2);
  double expected = kde.Evaluate(p) * dbs::BallVolume(2, 0.05);
  EXPECT_DOUBLE_EQ(integrator.Integrate(kde, p, 0.05), expected);
}

TEST(BallIntegratorTest, QmcAgreesWithCenterValueOnFlatDensity) {
  // Uniform density: both methods estimate the same integral.
  dbs::Rng rng(4);
  PointSet ps(2);
  for (int i = 0; i < 20000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  density::Kde kde = FitKde(ps);
  BallIntegrator center(BallIntegration::kCenterValue, 2);
  BallIntegrator qmc(BallIntegration::kQuasiMonteCarlo, 2, 128);
  double q[2] = {0.5, 0.5};
  PointView p(q, 2);
  double a = center.Integrate(kde, p, 0.1);
  double b = qmc.Integrate(kde, p, 0.1);
  EXPECT_NEAR(a / b, 1.0, 0.1);
  // And both approximate the true expected count: n * pi r^2.
  double truth = 20000 * M_PI * 0.01;
  EXPECT_NEAR(b, truth, 0.25 * truth);
}

TEST(BallIntegratorTest, QmcSeesGradientTheCenterValueMisses) {
  // Density step: points only on the left half. For a ball centered on the
  // edge, center-value over/under-shoots while QMC averages the halves.
  dbs::Rng rng(5);
  PointSet ps(2);
  for (int i = 0; i < 20000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(0.0, 0.5),
                                  rng.NextDouble()});
  }
  density::Kde kde = FitKde(ps);
  BallIntegrator qmc(BallIntegration::kQuasiMonteCarlo, 2, 256);
  // Ball far inside the occupied half: full density.
  double inside[2] = {0.25, 0.5};
  double deep = qmc.Integrate(kde, PointView(inside, 2), 0.05);
  // Ball centered outside, overlapping the boundary only partially.
  double edge[2] = {0.55, 0.5};
  double part = qmc.Integrate(kde, PointView(edge, 2), 0.05);
  EXPECT_LT(part, deep * 0.7);
}

TEST(KdeDetectorTest, RejectsBadOptions) {
  PlantedWorkload w = MakePlanted(500, 2, 6);
  density::Kde kde = FitKde(w.points);
  DbOutlierParams params;
  KdeDetectorOptions bad;
  bad.candidate_slack = 0.0;
  EXPECT_FALSE(
      DetectOutliersApproximate(w.points, kde, params, bad).ok());
  KdeDetectorOptions bad_qmc;
  bad_qmc.qmc_samples = 0;
  EXPECT_FALSE(
      DetectOutliersApproximate(w.points, kde, params, bad_qmc).ok());
}

TEST(KdeDetectorTest, FindsAllPlantedOutliersInTwoPasses) {
  PlantedWorkload w = MakePlanted(8000, 10, 7);
  density::Kde kde = FitKde(w.points);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  KdeDetectorOptions options;

  data::InMemoryScan scan(&w.points);
  auto report = DetectOutliersApproximate(scan, kde, params, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->passes, 2);
  EXPECT_EQ(scan.passes(), 2);

  std::set<int64_t> found(report->outlier_indices.begin(),
                          report->outlier_indices.end());
  for (int64_t idx : w.outlier_indices) {
    EXPECT_TRUE(found.count(idx)) << "missed planted outlier " << idx;
  }
}

TEST(KdeDetectorTest, MatchesExactDetectorOnPlantedData) {
  PlantedWorkload w = MakePlanted(6000, 12, 8);
  density::Kde kde = FitKde(w.points);
  DbOutlierParams params;
  params.radius = 0.08;
  params.max_neighbors = 3;
  KdeDetectorOptions options;
  options.candidate_slack = 3.0;

  auto exact = DetectOutliersExact(w.points, params);
  auto approx = DetectOutliersApproximate(w.points, kde, params, options);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  // Verification makes every reported outlier a true outlier (perfect
  // precision); candidate pruning may only lose recall — and with generous
  // slack on this workload it loses none.
  EXPECT_EQ(approx->outlier_indices, exact->outlier_indices);
  EXPECT_EQ(approx->neighbor_counts, exact->neighbor_counts);
}

TEST(KdeDetectorTest, ReportedNeighborCountsAreExact) {
  PlantedWorkload w = MakePlanted(4000, 5, 9);
  density::Kde kde = FitKde(w.points);
  DbOutlierParams params;
  params.radius = 3.0;  // outliers see a few fellow ring points
  params.max_neighbors = 4;
  KdeDetectorOptions options;
  options.candidate_slack = 5.0;
  auto approx = DetectOutliersApproximate(w.points, kde, params, options);
  auto exact = DetectOutliersExact(w.points, params);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(approx->neighbor_counts, exact->neighbor_counts);
}

TEST(KdeDetectorTest, CandidatePruningBoundsVerificationWork) {
  PlantedWorkload w = MakePlanted(10000, 10, 10);
  density::Kde kde = FitKde(w.points);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  KdeDetectorOptions options;
  auto report = DetectOutliersApproximate(w.points, kde, params, options);
  ASSERT_TRUE(report.ok());
  // Candidates are a tiny fraction of the dataset: that is the speedup.
  EXPECT_LT(report->candidates_checked, w.points.size() / 10);
  EXPECT_GE(report->candidates_checked,
            static_cast<int64_t>(report->outlier_indices.size()));
}

TEST(KdeDetectorTest, MaxCandidatesGuard) {
  PlantedWorkload w = MakePlanted(2000, 5, 11);
  density::Kde kde = FitKde(w.points);
  DbOutlierParams params;
  params.radius = 0.001;  // everything looks like an outlier
  params.max_neighbors = 0;
  KdeDetectorOptions options;
  options.max_candidates = 100;
  auto report = DetectOutliersApproximate(w.points, kde, params, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), dbs::StatusCode::kFailedPrecondition);
}

TEST(KdeDetectorTest, QmcIntegrationAlsoWorks) {
  PlantedWorkload w = MakePlanted(5000, 6, 12);
  density::Kde kde = FitKde(w.points);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  KdeDetectorOptions options;
  options.integration = BallIntegration::kQuasiMonteCarlo;
  options.qmc_samples = 32;
  auto report = DetectOutliersApproximate(w.points, kde, params, options);
  ASSERT_TRUE(report.ok());
  std::set<int64_t> found(report->outlier_indices.begin(),
                          report->outlier_indices.end());
  for (int64_t idx : w.outlier_indices) {
    EXPECT_TRUE(found.count(idx));
  }
}

TEST(EstimateOutlierCountTest, TracksTrueCount) {
  PlantedWorkload w = MakePlanted(8000, 15, 13);
  density::Kde kde = FitKde(w.points);
  DbOutlierParams params;
  params.radius = 0.1;
  params.max_neighbors = 5;
  auto estimate =
      EstimateOutlierCount(w.points, kde, params, KdeDetectorOptions{});
  ASSERT_TRUE(estimate.ok());
  // One pass, no verification: the estimate lands near the planted count.
  EXPECT_GE(*estimate, 15);
  EXPECT_LE(*estimate, 15 + 40);
}

TEST(EstimateOutlierCountTest, GrowsAsRadiusShrinks) {
  PlantedWorkload w = MakePlanted(5000, 5, 14);
  density::Kde kde = FitKde(w.points);
  KdeDetectorOptions options;
  DbOutlierParams tight;
  tight.radius = 0.01;
  tight.max_neighbors = 3;
  DbOutlierParams loose;
  loose.radius = 0.3;
  loose.max_neighbors = 3;
  auto many = EstimateOutlierCount(w.points, kde, tight, options);
  auto few = EstimateOutlierCount(w.points, kde, loose, options);
  ASSERT_TRUE(many.ok());
  ASSERT_TRUE(few.ok());
  EXPECT_GE(*many, *few);
}

}  // namespace
}  // namespace dbs::outlier
