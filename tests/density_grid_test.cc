#include "density/grid_density.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "density/histogram_density.h"
#include "util/rng.h"

namespace dbs::density {
namespace {

using data::PointSet;
using data::PointView;

PointSet UniformCube(int64_t n, int dim, uint64_t seed) {
  dbs::Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> buf(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) buf[j] = rng.NextDouble();
    ps.Append(buf);
  }
  return ps;
}

TEST(GridDensityTest, RejectsBadOptions) {
  PointSet ps = UniformCube(100, 2, 1);
  GridDensityOptions bad;
  bad.cells_per_dim = 0;
  EXPECT_FALSE(GridDensity::Fit(ps, bad).ok());
  GridDensityOptions tiny;
  tiny.memory_budget_bytes = 8;
  EXPECT_FALSE(GridDensity::Fit(ps, tiny).ok());
}

TEST(GridDensityTest, RejectsEmptyDataset) {
  PointSet ps(2);
  EXPECT_FALSE(GridDensity::Fit(ps, GridDensityOptions{}).ok());
}

TEST(GridDensityTest, CountsSumToN) {
  PointSet ps = UniformCube(5000, 2, 2);
  auto gd = GridDensity::Fit(ps, GridDensityOptions{});
  ASSERT_TRUE(gd.ok());
  EXPECT_EQ(gd->total_mass(), 5000);
  // Each point's cell must count at least that point.
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_GE(gd->CellCount(ps[i]), 1);
  }
}

TEST(GridDensityTest, DenseRegionScoresHigher) {
  dbs::Rng rng(3);
  PointSet ps(2);
  // 9000 points in a tight blob, 1000 spread out.
  for (int i = 0; i < 9000; ++i) {
    ps.Append(std::vector<double>{rng.NextGaussian(0.25, 0.02),
                                  rng.NextGaussian(0.25, 0.02)});
  }
  for (int i = 0; i < 1000; ++i) {
    ps.Append(std::vector<double>{rng.NextDouble(), rng.NextDouble()});
  }
  auto gd = GridDensity::Fit(ps, GridDensityOptions{});
  ASSERT_TRUE(gd.ok());
  double dense[2] = {0.25, 0.25};
  double sparse[2] = {0.8, 0.8};
  EXPECT_GT(gd->Evaluate(PointView(dense, 2)),
            10 * gd->Evaluate(PointView(sparse, 2)));
}

TEST(GridDensityTest, MatchesExactHistogramWhenBudgetIsAmple) {
  // When the logical grid fits the memory budget, cells are addressed
  // directly (no hashing) and counts match the exact histogram everywhere.
  PointSet ps = UniformCube(20000, 2, 4);
  data::BoundingBox bounds({0.0, 0.0}, {1.0, 1.0});

  GridDensityOptions gopts;
  gopts.cells_per_dim = 16;
  gopts.bounds = bounds;
  gopts.memory_budget_bytes = 1 << 20;  // 131072 buckets for 256 cells
  auto gd = GridDensity::Fit(ps, gopts);
  ASSERT_TRUE(gd.ok());

  HistogramDensityOptions hopts;
  hopts.cells_per_dim = 16;
  hopts.bounds = bounds;
  auto hd = HistogramDensity::Fit(ps, hopts);
  ASSERT_TRUE(hd.ok());

  EXPECT_FALSE(gd->hashed());
  dbs::Rng rng(5);
  const int probes = 500;
  for (int i = 0; i < probes; ++i) {
    double q[2] = {rng.NextDouble(), rng.NextDouble()};
    PointView p(q, 2);
    EXPECT_EQ(gd->CellCount(p), hd->CellCount(p));
  }
}

TEST(GridDensityTest, TightBudgetMergesCells) {
  // 64x64 = 4096 logical cells but only 128 buckets: collisions must fold
  // distinct cells together, inflating counts. This is the degradation the
  // paper attributes to the hash-based approach.
  PointSet ps = UniformCube(50000, 2, 6);
  GridDensityOptions opts;
  opts.cells_per_dim = 64;
  opts.memory_budget_bytes = 128 * 8;
  auto gd = GridDensity::Fit(ps, opts);
  ASSERT_TRUE(gd.ok());
  EXPECT_EQ(gd->num_buckets(), 128);
  // Uniform data, ~12 points per logical cell, ~32 cells per bucket:
  // bucket counts must be far above any single-cell count.
  double mean_count = 0;
  for (int64_t i = 0; i < 200; ++i) {
    mean_count += static_cast<double>(gd->CellCount(ps[i]));
  }
  mean_count /= 200;
  EXPECT_GT(mean_count, 100.0);
}

TEST(GridDensityTest, BucketCapIsRespected) {
  PointSet ps = UniformCube(1000, 3, 7);
  GridDensityOptions opts;
  opts.cells_per_dim = 100;  // 1e6 logical cells
  opts.memory_budget_bytes = 1000 * 8;
  auto gd = GridDensity::Fit(ps, opts);
  ASSERT_TRUE(gd.ok());
  EXPECT_EQ(gd->num_buckets(), 1000);
  EXPECT_LE(gd->num_occupied_buckets(), 1000);
}

TEST(GridDensityTest, SumCountPowIdentities) {
  PointSet ps = UniformCube(3000, 2, 8);
  auto gd = GridDensity::Fit(ps, GridDensityOptions{});
  ASSERT_TRUE(gd.ok());
  // e=1: sum of counts = n.
  EXPECT_NEAR(gd->SumCountPow(1.0), 3000.0, 1e-9);
  // e=0: number of occupied buckets.
  EXPECT_NEAR(gd->SumCountPow(0.0),
              static_cast<double>(gd->num_occupied_buckets()), 1e-9);
}

TEST(GridDensityTest, ProvidedBoundsSkipDiscoveryPass) {
  PointSet ps = UniformCube(500, 2, 9);
  data::InMemoryScan scan(&ps);
  GridDensityOptions opts;
  opts.bounds = data::BoundingBox({0.0, 0.0}, {1.0, 1.0});
  auto gd = GridDensity::Fit(scan, opts);
  ASSERT_TRUE(gd.ok());
  EXPECT_EQ(scan.passes(), 1);

  data::InMemoryScan scan2(&ps);
  GridDensityOptions no_bounds;
  auto gd2 = GridDensity::Fit(scan2, no_bounds);
  ASSERT_TRUE(gd2.ok());
  EXPECT_EQ(scan2.passes(), 2);
}

TEST(HistogramDensityTest, ExactCounts) {
  // Values chosen away from bin boundaries (0.6/0.1 is not exactly 6 in
  // binary floating point, so boundary values would bin unpredictably).
  PointSet ps(1, {0.15, 0.25, 0.63, 0.61, 0.62, 0.99});
  HistogramDensityOptions opts;
  opts.cells_per_dim = 10;
  opts.bounds = data::BoundingBox({0.0}, {1.0});
  auto hd = HistogramDensity::Fit(ps, opts);
  ASSERT_TRUE(hd.ok());
  double q1 = 0.15;
  double q6 = 0.65;
  double q9 = 0.95;
  double q3 = 0.35;
  EXPECT_EQ(hd->CellCount(PointView(&q1, 1)), 1);
  EXPECT_EQ(hd->CellCount(PointView(&q6, 1)), 3);
  EXPECT_EQ(hd->CellCount(PointView(&q9, 1)), 1);
  EXPECT_EQ(hd->CellCount(PointView(&q3, 1)), 0);
  // Density = count / cell width.
  EXPECT_DOUBLE_EQ(hd->Evaluate(PointView(&q6, 1)), 30.0);
}

TEST(HistogramDensityTest, RejectsExcessiveCells) {
  PointSet ps = UniformCube(100, 5, 10);
  HistogramDensityOptions opts;
  opts.cells_per_dim = 1000;  // 10^15 cells
  EXPECT_FALSE(HistogramDensity::Fit(ps, opts).ok());
}

TEST(HistogramDensityTest, IntegralIsN) {
  PointSet ps = UniformCube(4000, 2, 11);
  HistogramDensityOptions opts;
  opts.cells_per_dim = 8;
  opts.bounds = data::BoundingBox({0.0, 0.0}, {1.0, 1.0});
  auto hd = HistogramDensity::Fit(ps, opts);
  ASSERT_TRUE(hd.ok());
  // Sum over a regular probe of cell centers: count/vol * vol per cell = n.
  double integral = 0.0;
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      double q[2] = {(a + 0.5) / 8.0, (b + 0.5) / 8.0};
      integral += hd->Evaluate(PointView(q, 2)) * hd->cell_volume();
    }
  }
  EXPECT_NEAR(integral, 4000.0, 1e-6);
}

TEST(HistogramDensityTest, OutOfDomainPointsClampToEdgeCells) {
  PointSet ps(1, {0.5});
  HistogramDensityOptions opts;
  opts.cells_per_dim = 4;
  opts.bounds = data::BoundingBox({0.0}, {1.0});
  auto hd = HistogramDensity::Fit(ps, opts);
  ASSERT_TRUE(hd.ok());
  double below = -5.0;
  double above = 5.0;
  // Clamped lookups do not crash and return edge-cell counts.
  EXPECT_EQ(hd->CellCount(PointView(&below, 1)), 0);
  EXPECT_EQ(hd->CellCount(PointView(&above, 1)), 0);
}

}  // namespace
}  // namespace dbs::density
