// Figure 2 — "Running time of the clustering algorithm".
//
// Paper setup: 1M points, 1000 kernels; total running time of the
// BS-CURE pipeline (density estimator + normalization/sampling passes +
// quadratic hierarchical clustering of the sample) vs RS-CURE (uniform
// sample + clustering), across sample sizes. The hierarchical algorithm is
// quadratic, so the curves grow quadratically in the sample size, and the
// fixed cost of the estimator + extra passes is visible as the biased
// curve's offset at small samples.
//
// Paper result to reproduce (shape): both curves quadratic; BS-CURE pays a
// near-constant overhead over RS-CURE at equal sample size — which is why
// a 0.5% biased sample beats a 0.8% uniform sample end to end once the
// biased sample achieves the same accuracy at smaller size.

#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace {

constexpr int kClusters = 10;
constexpr int64_t kPoints = 1000000;
constexpr int64_t kKernels = 1000;

}  // namespace

int main() {
  std::printf("Figure 2: total clustering pipeline time, 1M points, 1000 "
              "kernels\n");
  dbs::synth::ClusteredDatasetOptions data_opts;
  data_opts.num_clusters = kClusters;
  data_opts.num_cluster_points = kPoints;
  data_opts.noise_multiplier = 0.1;
  data_opts.seed = 17;
  auto ds = dbs::synth::MakeClusteredDataset(data_opts);
  DBS_CHECK(ds.ok());

  dbs::eval::Table table({"samples", "BS-CURE (s)", "RS-CURE (s)",
                          "BS found", "RS found"});
  for (int64_t samples : {1000LL, 3000LL, 5000LL, 7000LL, 9000LL, 13000LL,
                          17000LL, 19000LL}) {
    // BS-CURE: estimator pass + normalizer pass + sampling pass + cluster.
    dbs::eval::Timer bs_timer;
    dbs::density::KdeOptions kde_opts;
    kde_opts.num_kernels = kKernels;
    kde_opts.bandwidth_scale = 0.3;
    kde_opts.seed = 5;
    auto kde = dbs::density::Kde::Fit(ds->points, kde_opts);
    DBS_CHECK(kde.ok());
    dbs::core::BiasedSamplerOptions sampler_opts;
    sampler_opts.a = 1.0;
    sampler_opts.target_size = samples;
    sampler_opts.seed = 6;
    auto sample = dbs::core::BiasedSampler(sampler_opts).Run(ds->points,
                                                             *kde);
    DBS_CHECK(sample.ok());
    dbs::cluster::HierarchicalOptions cluster_opts;
    cluster_opts.num_clusters = kClusters;
    auto bs_clusters =
        dbs::cluster::HierarchicalCluster(sample->points, cluster_opts);
    DBS_CHECK(bs_clusters.ok());
    double bs_seconds = bs_timer.ElapsedSeconds();
    int bs_found =
        dbs::eval::MatchClusters(*bs_clusters, ds->truth).num_found();

    // RS-CURE: one sampling pass + cluster.
    dbs::eval::Timer rs_timer;
    dbs::sampling::BernoulliSampleOptions uni_opts;
    uni_opts.target_size = samples;
    uni_opts.seed = 6;
    auto uniform = dbs::sampling::BernoulliSample(ds->points, uni_opts);
    DBS_CHECK(uniform.ok());
    auto rs_clusters =
        dbs::cluster::HierarchicalCluster(*uniform, cluster_opts);
    DBS_CHECK(rs_clusters.ok());
    double rs_seconds = rs_timer.ElapsedSeconds();
    int rs_found =
        dbs::eval::MatchClusters(*rs_clusters, ds->truth).num_found();

    table.AddRow({dbs::eval::Table::Int(samples),
                  dbs::eval::Table::Num(bs_seconds, 2),
                  dbs::eval::Table::Num(rs_seconds, 2),
                  dbs::eval::Table::Int(bs_found),
                  dbs::eval::Table::Int(rs_found)});
  }
  table.Print("Fig 2: running time vs number of samples (BS vs RS)");
  std::printf(
      "\nNote: absolute times reflect this machine, not the paper's 2001\n"
      "hardware; the paper-relevant shape is the quadratic growth in the\n"
      "sample size and the bounded estimator/sampling overhead of BS.\n");
  return 0;
}
