// Sharded-build scaling bench: shard count × worker count (DESIGN.md §12).
//
// Times the full sharded sample pipeline — ShardCoordinator::BuildKde
// followed by SampleTwoPass — over an in-memory dataset for every requested
// (shards, workers) pair, against the direct unsharded pipeline
// (Kde::Fit + BiasedSampler::Run) as the baseline.
//
// Determinism is checked, not assumed, on every configuration:
//
//   * shards=1 results must be BITWISE identical to the direct pipeline
//     (model state, sample points, inclusion probabilities, densities,
//     normalizer, clamp count) at every worker count;
//   * for each shard count, every worker count must reproduce the workers=0
//     result bitwise (worker-count invariance).
//
// Any mismatch is counted, reported as FAIL on stderr and exits nonzero —
// this is the perf-smoke tripwire for the shards=1 pinning.
//
// Output: a table on stdout plus machine-readable JSON in the shape of
// BENCH_micro_kde.json (BENCH_shard_scaling.json, override with out=).
//
//   shard_scaling [data_points=200000] [dim=2] [kernels=1000] [size=2000]
//                 [reps=3] [shards=1,2,4,8] [workers=0,1,2,4]
//                 [out=BENCH_shard_scaling.json]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/biased_sampler.h"
#include "core/sample.h"
#include "density/kde.h"
#include "parallel/batch_executor.h"
#include "shard/coordinator.h"
#include "synth/generator.h"
#include "tools/flags.h"
#include "util/check.h"

namespace {

using Clock = std::chrono::steady_clock;

struct SeriesResult {
  int64_t shards = 0;
  int workers = 0;  // 0 = sequential fan-out (no executor)
  double seconds = 0.0;
  double speedup_vs_direct = 0.0;
  int64_t mismatches = 0;
};

dbs::data::PointSet MakeData(int dim, int64_t points, uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 10;
  opts.num_cluster_points = points / 10;
  opts.noise_multiplier = 0.1;
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds)->points;
}

// Everything the pipeline produces, flattened for bitwise comparison.
struct PipelineOutput {
  dbs::density::Kde::State model;
  dbs::core::BiasedSample sample;
};

bool BitwiseEqual(const std::vector<double>& a,
                  const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Counts differing fields between two pipeline outputs (0 = bitwise equal).
int64_t CountMismatches(const PipelineOutput& got,
                        const PipelineOutput& want) {
  int64_t bad = 0;
  if (got.model.n != want.model.n) ++bad;
  if (!BitwiseEqual(got.model.centers.flat(), want.model.centers.flat())) {
    ++bad;
  }
  if (!BitwiseEqual(got.model.bandwidths, want.model.bandwidths)) ++bad;
  if (!BitwiseEqual(got.model.bounds.lo(), want.model.bounds.lo()) ||
      !BitwiseEqual(got.model.bounds.hi(), want.model.bounds.hi())) {
    ++bad;
  }
  if (!BitwiseEqual(got.sample.points.flat(), want.sample.points.flat())) {
    ++bad;
  }
  if (!BitwiseEqual(got.sample.inclusion_probs,
                    want.sample.inclusion_probs)) {
    ++bad;
  }
  if (!BitwiseEqual(got.sample.densities, want.sample.densities)) ++bad;
  if (std::memcmp(&got.sample.normalizer, &want.sample.normalizer,
                  sizeof(double)) != 0) {
    ++bad;
  }
  if (got.sample.clamped_count != want.sample.clamped_count) ++bad;
  return bad;
}

template <typename Body>
double TimeBest(int reps, Body&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Clock::time_point start = Clock::now();
    body();
    double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

bool ParseIntList(const std::string& spec, std::vector<int>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (token.empty()) return false;
    for (char c : token) {
      if (c < '0' || c > '9') return false;
    }
    out->push_back(std::atoi(token.c_str()));
    pos = comma + 1;
  }
  return !out->empty();
}

void WriteJson(const std::string& path, int64_t data_points, int reps,
               const std::vector<SeriesResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"shard_scaling\",\n"
               "  \"data_points\": %lld,\n  \"reps\": %d,\n"
               "  \"results\": [\n",
               static_cast<long long>(data_points), reps);
  for (size_t i = 0; i < results.size(); ++i) {
    const SeriesResult& r = results[i];
    std::fprintf(f,
                 "    {\"shards\": %lld, \"workers\": %d, "
                 "\"seconds\": %.6f, \"speedup_vs_direct\": %.3f, "
                 "\"mismatches\": %lld}%s\n",
                 static_cast<long long>(r.shards), r.workers, r.seconds,
                 r.speedup_vs_direct, static_cast<long long>(r.mismatches),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  int64_t data_points = flags.GetInt("data_points", 200000);
  int dim = static_cast<int>(flags.GetInt("dim", 2));
  int64_t kernels = flags.GetInt("kernels", 1000);
  int64_t size = flags.GetInt("size", 2000);
  int reps = static_cast<int>(flags.GetInt("reps", 3));
  std::string shards_spec = flags.GetString("shards", "1,2,4,8");
  std::string workers_spec = flags.GetString("workers", "0,1,2,4");
  std::string out = flags.GetString("out", "BENCH_shard_scaling.json");
  if (!flags.AllKnown()) return 2;
  DBS_CHECK(data_points > 0 && dim > 0 && kernels > 0 && size > 0 &&
            reps > 0);
  std::vector<int> shard_counts;
  std::vector<int> worker_counts;
  if (!ParseIntList(shards_spec, &shard_counts) ||
      !ParseIntList(workers_spec, &worker_counts)) {
    std::fprintf(stderr, "bad shards=/workers= list\n");
    return 2;
  }
  for (int s : shard_counts) DBS_CHECK(s >= 1);

  const dbs::data::PointSet data = MakeData(dim, data_points, 71);

  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = kernels;
  kde_opts.seed = 17;
  dbs::core::BiasedSamplerOptions sample_opts;
  sample_opts.target_size = size;
  sample_opts.seed = 17;

  // Direct unsharded baseline: the bytes every shards=1 run must hit.
  PipelineOutput direct;
  double direct_seconds = TimeBest(reps, [&] {
    dbs::data::InMemoryScan scan(&data);
    auto kde = dbs::density::Kde::Fit(scan, kde_opts);
    DBS_CHECK(kde.ok());
    auto sample = dbs::core::BiasedSampler(sample_opts).Run(scan, *kde);
    DBS_CHECK(sample.ok());
    direct.model = kde->ExportState();
    direct.sample = std::move(*sample);
  });
  std::printf(
      "shard_scaling: %lld points, dim %d, %lld kernels, sample %lld, "
      "best of %d reps\n\ndirect pipeline: %.4f s\n\n",
      static_cast<long long>(data.size()), dim,
      static_cast<long long>(kernels), static_cast<long long>(size), reps,
      direct_seconds);
  std::printf("%8s %8s %10s %10s %10s\n", "shards", "workers", "seconds",
              "speedup", "mismatch");

  auto run_sharded = [&](int num_shards,
                         dbs::parallel::BatchExecutor* executor) {
    dbs::shard::ShardCoordinatorOptions coord_opts;
    coord_opts.shards = num_shards;
    coord_opts.executor = executor;
    dbs::shard::ShardCoordinator coordinator(
        [&data]() -> dbs::Result<std::unique_ptr<dbs::data::DataScan>> {
          return std::unique_ptr<dbs::data::DataScan>(
              std::make_unique<dbs::data::InMemoryScan>(&data));
        },
        coord_opts);
    PipelineOutput result;
    auto kde = coordinator.BuildKde(kde_opts);
    DBS_CHECK(kde.ok());
    auto sample = coordinator.SampleTwoPass(*kde, sample_opts);
    DBS_CHECK(sample.ok());
    result.model = kde->ExportState();
    result.sample = std::move(*sample);
    return result;
  };

  std::vector<SeriesResult> results;
  int64_t total_mismatches = 0;
  for (int num_shards : shard_counts) {
    // The worker-invariance reference for this shard count: the sequential
    // fan-out (a worker pool must not change a single byte).
    const PipelineOutput reference = run_sharded(num_shards, nullptr);
    for (int workers : worker_counts) {
      std::unique_ptr<dbs::parallel::BatchExecutor> executor;
      if (workers > 0) {
        dbs::parallel::BatchExecutorOptions pool;
        pool.num_workers = workers;
        executor = std::make_unique<dbs::parallel::BatchExecutor>(pool);
      }
      PipelineOutput got;
      double seconds = TimeBest(
          reps, [&] { got = run_sharded(num_shards, executor.get()); });
      if (executor != nullptr) executor->Shutdown();

      SeriesResult r;
      r.shards = num_shards;
      r.workers = workers;
      r.seconds = seconds;
      r.speedup_vs_direct = seconds > 0 ? direct_seconds / seconds : 0.0;
      r.mismatches = CountMismatches(got, reference);
      if (num_shards == 1) r.mismatches += CountMismatches(got, direct);
      total_mismatches += r.mismatches;
      std::printf("%8lld %8d %10.4f %9.2fx %10lld\n",
                  static_cast<long long>(r.shards), r.workers, r.seconds,
                  r.speedup_vs_direct, static_cast<long long>(r.mismatches));
      results.push_back(r);
    }
  }

  if (total_mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld sharded results differ from their reference "
                 "(shards=1 must match the direct pipeline bitwise; every "
                 "worker count must match the sequential fan-out)\n",
                 static_cast<long long>(total_mismatches));
  }
  if (!out.empty()) WriteJson(out, data_points, reps, results);
  return total_mismatches > 0 ? 1 : 0;
}
