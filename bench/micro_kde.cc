// KDE evaluation micro-benchmark: batch vs scalar, index ablation, and
// thread scaling (DESIGN.md §5 and §9).
//
// For each (dim, kernels) configuration the bench times four single-thread
// series over the same query set —
//
//   scalar_indexed   per-point Evaluate through the grid index
//   scalar_brute     per-point EvaluateBrute (all kernels)
//   batch_indexed    EvaluateBatch, cell-sorted SoA tiles, no executor
//   batch_brute      EvaluateBatch against the full SoA, index disabled
//
// — and then re-runs batch_indexed on the headline configuration sharded
// across a BatchExecutor at each requested worker count. Every batch result
// is checked bitwise against the scalar series (the paths promise identical
// output); mismatches are counted and reported.
//
// Output: a table on stdout plus machine-readable JSON in the shape of
// BENCH_serve_throughput.json (BENCH_micro_kde.json, override with out=).
//
// index= selects the evaluator family: `all` (default) runs the four series
// above, `grid` / `brute` just that pair, and `dualtree` benches the
// dual-tree evaluator (DESIGN.md §15): a `dual_exact` series checked
// BITWISE against scalar_brute (the ascending-center contract), plus — when
// rel_error= is nonzero — a `dual_approx` series whose per-query certified
// bound is audited against the exact reference: a row's mismatch count is
// the number of queries where |approx - exact| exceeded the certificate or
// the certificate exceeded rel_error * exact, and the JSON row carries
// max_observed_err / certified_err. Any violation fails the run.
//
//   micro_kde [queries=20000] [data_points=50000] [reps=3]
//             [threads=1,2,4,8] [index=all|grid|brute|dualtree]
//             [rel_error=0] [out=BENCH_micro_kde.json]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "density/dual_tree_kde.h"
#include "density/kde.h"
#include "parallel/batch_executor.h"
#include "synth/generator.h"
#include "tools/flags.h"
#include "util/check.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  int dim = 2;
  int64_t kernels = 1000;
};

struct SeriesResult {
  std::string series;
  int dim = 0;
  int64_t kernels = 0;
  int threads = 0;  // 0 = no executor (plain sequential call)
  double seconds = 0.0;
  double points_per_sec = 0.0;
  double speedup_vs_scalar = 0.0;
  int64_t mismatches = 0;
  // dual_approx only: worst |approx - exact| observed and worst certified
  // bound reported across the query set (0 for exact series).
  double max_observed_err = 0.0;
  double certified_err = 0.0;
};

dbs::data::PointSet MakeData(int dim, int64_t points, uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 10;
  opts.num_cluster_points = points / 10;
  opts.noise_multiplier = 0.1;
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds)->points;
}

dbs::density::Kde FitKde(const dbs::data::PointSet& points, int64_t kernels,
                         bool grid_index) {
  dbs::density::KdeOptions opts;
  opts.num_kernels = kernels;
  opts.use_grid_index = grid_index;
  opts.seed = 17;
  auto kde = dbs::density::Kde::Fit(points, opts);
  DBS_CHECK(kde.ok());
  return std::move(kde).value();
}

// Runs `body` `reps` times and returns the fastest wall-clock seconds.
template <typename Body>
double TimeBest(int reps, Body&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Clock::time_point start = Clock::now();
    body();
    double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

int64_t CountMismatches(const std::vector<double>& got,
                        const std::vector<double>& want) {
  DBS_CHECK(got.size() == want.size());
  int64_t bad = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(double)) != 0) ++bad;
  }
  return bad;
}

bool ParseThreadList(const std::string& spec, std::vector<int>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int value = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (value <= 0) return false;
    out->push_back(value);
    pos = comma + 1;
  }
  return !out->empty();
}

void PrintRow(const SeriesResult& r) {
  std::printf("%16s %4d %8lld %8d %10.4f %14.0f %9.2fx %10lld\n",
              r.series.c_str(), r.dim, static_cast<long long>(r.kernels),
              r.threads, r.seconds, r.points_per_sec, r.speedup_vs_scalar,
              static_cast<long long>(r.mismatches));
}

void WriteJson(const std::string& path, int64_t queries, int reps,
               const std::vector<SeriesResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"micro_kde\",\n"
               "  \"queries\": %lld,\n  \"reps\": %d,\n  \"results\": [\n",
               static_cast<long long>(queries), reps);
  for (size_t i = 0; i < results.size(); ++i) {
    const SeriesResult& r = results[i];
    std::fprintf(f,
                 "    {\"series\": \"%s\", \"dim\": %d, \"kernels\": %lld, "
                 "\"threads\": %d, \"seconds\": %.6f, "
                 "\"points_per_sec\": %.1f, \"speedup_vs_scalar\": %.3f, "
                 "\"mismatches\": %lld, \"max_observed_err\": %.9e, "
                 "\"certified_err\": %.9e}%s\n",
                 r.series.c_str(), r.dim, static_cast<long long>(r.kernels),
                 r.threads, r.seconds, r.points_per_sec, r.speedup_vs_scalar,
                 static_cast<long long>(r.mismatches), r.max_observed_err,
                 r.certified_err, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  int64_t queries = flags.GetInt("queries", 20000);
  int64_t data_points = flags.GetInt("data_points", 50000);
  int reps = static_cast<int>(flags.GetInt("reps", 3));
  std::string threads_spec = flags.GetString("threads", "1,2,4,8");
  std::string index = flags.GetString("index", "all");
  double rel_error = flags.GetDouble("rel_error", 0.0);
  std::string out = flags.GetString("out", "BENCH_micro_kde.json");
  if (!flags.AllKnown()) return 2;
  DBS_CHECK(queries > 0 && data_points > 0 && reps > 0);
  if (index != "all" && index != "grid" && index != "brute" &&
      index != "dualtree") {
    std::fprintf(stderr, "index must be all, grid, brute or dualtree\n");
    return 2;
  }
  if (rel_error != 0.0 && index != "dualtree") {
    std::fprintf(stderr, "rel_error requires index=dualtree\n");
    return 2;
  }
  DBS_CHECK(rel_error >= 0.0);
  std::vector<int> thread_counts;
  if (!ParseThreadList(threads_spec, &thread_counts)) {
    std::fprintf(stderr, "bad threads= list '%s'\n", threads_spec.c_str());
    return 2;
  }

  // (2, 1000) is the headline Fig-2-scale configuration; it also carries
  // the thread-scaling series.
  const Config kConfigs[] = {{2, 100}, {2, 1000}, {2, 4000}, {5, 1000}};
  const Config kHeadline = {2, 1000};

  std::printf("micro_kde: %lld queries, best of %d reps\n\n",
              static_cast<long long>(queries), reps);
  std::printf("%16s %4s %8s %8s %10s %14s %10s %10s\n", "series", "dim",
              "kernels", "threads", "seconds", "points_per_sec", "speedup",
              "mismatch");

  std::vector<SeriesResult> results;
  for (const Config& config : kConfigs) {
    dbs::data::PointSet train = MakeData(config.dim, data_points, 71);
    dbs::data::PointSet query = MakeData(config.dim, queries, 99);
    const int64_t nq = query.size();
    const double* rows = query.flat().data();
    dbs::density::Kde indexed = FitKde(train, config.kernels, true);
    dbs::density::Kde brute = FitKde(train, config.kernels, false);

    // Two references: the indexed and brute scalar paths sum centers in
    // different orders, so they agree only to rounding — each batch series
    // is checked bitwise against the scalar series with the SAME order.
    std::vector<double> ref(static_cast<size_t>(nq));
    std::vector<double> ref_brute(static_cast<size_t>(nq));
    std::vector<double> got(static_cast<size_t>(nq));

    auto add = [&](const std::string& series, int threads, double seconds,
                   double scalar_seconds,
                   int64_t mismatches) -> SeriesResult& {
      SeriesResult r;
      r.series = series;
      r.dim = config.dim;
      r.kernels = config.kernels;
      r.threads = threads;
      r.seconds = seconds;
      r.points_per_sec =
          seconds > 0 ? static_cast<double>(nq) / seconds : 0.0;
      r.speedup_vs_scalar =
          seconds > 0 ? scalar_seconds / seconds : 0.0;
      r.mismatches = mismatches;
      PrintRow(r);
      results.push_back(r);
      return results.back();
    };

    const bool headline =
        config.dim == kHeadline.dim && config.kernels == kHeadline.kernels;
    const bool run_grid = index == "all" || index == "grid";
    const bool run_brute = index == "all" || index == "brute";
    const bool run_dualtree = index == "dualtree";

    // Scalar baselines (the pre-batching hot path).
    double scalar_indexed = 0.0;
    if (run_grid) {
      scalar_indexed = TimeBest(reps, [&] {
        for (int64_t i = 0; i < nq; ++i) ref[i] = indexed.Evaluate(query[i]);
      });
      add("scalar_indexed", 0, scalar_indexed, scalar_indexed, 0);
    }

    // The brute scalar series doubles as the dual-tree reference: the
    // dual tree's exact mode promises bitwise identity to the
    // ascending-center summation, which is exactly EvaluateBrute's order.
    double scalar_brute = 0.0;
    if (run_brute || run_dualtree) {
      scalar_brute = TimeBest(reps, [&] {
        for (int64_t i = 0; i < nq; ++i) {
          ref_brute[i] = brute.EvaluateBrute(query[i]);
        }
      });
      add("scalar_brute", 0, scalar_brute, scalar_brute, 0);
    }

    // Single-thread batch paths, checked bitwise against the scalar runs.
    if (run_grid) {
      double batch_indexed = TimeBest(reps, [&] {
        DBS_CHECK(indexed.EvaluateBatch(rows, nq, got.data()).ok());
      });
      add("batch_indexed", 0, batch_indexed, scalar_indexed,
          CountMismatches(got, ref));
    }

    if (run_brute) {
      double batch_brute = TimeBest(reps, [&] {
        DBS_CHECK(brute.EvaluateBatch(rows, nq, got.data()).ok());
      });
      add("batch_brute", 0, batch_brute, scalar_brute,
          CountMismatches(got, ref_brute));
    }

    if (run_dualtree) {
      auto tree = dbs::density::DualTreeKde::Build(brute);
      DBS_CHECK(tree.ok());
      double dual_exact = TimeBest(reps, [&] {
        DBS_CHECK(tree->EvaluateBatch(rows, nq, got.data()).ok());
      });
      add("dual_exact", 0, dual_exact, scalar_brute,
          CountMismatches(got, ref_brute));

      if (rel_error > 0.0) {
        dbs::density::DualTreeKdeOptions approx_opts;
        approx_opts.rel_error = rel_error;
        auto approx = dbs::density::DualTreeKde::Build(brute, approx_opts);
        DBS_CHECK(approx.ok());
        std::vector<double> bound(static_cast<size_t>(nq));
        double dual_approx = TimeBest(reps, [&] {
          DBS_CHECK(approx
                        ->EvaluateBatchWithBound(rows, nq, got.data(),
                                                 bound.data())
                        .ok());
        });
        // Audit the certificate: every query must satisfy
        // |approx - exact| <= bound <= rel_error * exact.
        int64_t violations = 0;
        double max_observed = 0.0;
        double max_certified = 0.0;
        for (int64_t i = 0; i < nq; ++i) {
          const double observed = std::fabs(got[i] - ref_brute[i]);
          if (observed > max_observed) max_observed = observed;
          if (bound[i] > max_certified) max_certified = bound[i];
          if (observed > bound[i] || bound[i] > rel_error * ref_brute[i]) {
            ++violations;
          }
        }
        SeriesResult& r = add("dual_approx", 0, dual_approx, scalar_brute,
                              violations);
        r.max_observed_err = max_observed;
        r.certified_err = max_certified;
      }
    }

    // Thread-scaling series on the headline configuration.
    if (headline) {
      for (int threads : thread_counts) {
        dbs::parallel::BatchExecutorOptions pool;
        pool.num_workers = threads;
        pool.queue_capacity = 4096;
        dbs::parallel::BatchExecutor executor(pool);
        if (run_grid) {
          double seconds = TimeBest(reps, [&] {
            DBS_CHECK(
                indexed.EvaluateBatch(rows, nq, got.data(), &executor).ok());
          });
          add("batch_indexed", threads, seconds, scalar_indexed,
              CountMismatches(got, ref));
        }
        if (run_dualtree) {
          auto tree = dbs::density::DualTreeKde::Build(brute);
          DBS_CHECK(tree.ok());
          double seconds = TimeBest(reps, [&] {
            DBS_CHECK(
                tree->EvaluateBatch(rows, nq, got.data(), &executor).ok());
          });
          add("dual_exact", threads, seconds, scalar_brute,
              CountMismatches(got, ref_brute));
        }
        executor.Shutdown();
      }
    }
  }

  int64_t total_mismatches = 0;
  for (const SeriesResult& r : results) total_mismatches += r.mismatches;
  if (total_mismatches > 0) {
    std::fprintf(stderr, "FAIL: %lld batch results differ from scalar\n",
                 static_cast<long long>(total_mismatches));
  }
  if (!out.empty()) WriteJson(out, queries, reps, results);
  return total_mismatches > 0 ? 1 : 0;
}
