// Micro-benchmarks (google-benchmark): the cost of the primitives behind
// every experiment, and the grid-index ablation called out in DESIGN.md §5.
//
//   * Kde evaluation with the compact-support grid index vs brute force,
//     across kernel counts and dimensionalities (identical results; the
//     index should win by a widening margin as kernels grow).
//   * Biased-sampler pass throughput.
//   * kd-tree neighbor counting (the outlier verification primitive).

#include <benchmark/benchmark.h>

#include "core/biased_sampler.h"
#include "data/kd_tree.h"
#include "density/kde.h"
#include "synth/generator.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

dbs::synth::ClusteredDataset MakeData(int dim, int64_t points) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 10;
  opts.num_cluster_points = points;
  opts.noise_multiplier = 0.1;
  opts.seed = 71;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds).value();
}

dbs::density::Kde FitKde(const dbs::data::PointSet& points, int64_t kernels,
                         bool grid_index) {
  dbs::density::KdeOptions opts;
  opts.num_kernels = kernels;
  opts.use_grid_index = grid_index;
  auto kde = dbs::density::Kde::Fit(points, opts);
  DBS_CHECK(kde.ok());
  return std::move(kde).value();
}

void BM_KdeEvaluateIndexed(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int64_t kernels = state.range(1);
  auto ds = MakeData(dim, 50000);
  dbs::density::Kde kde = FitKde(ds.points, kernels, /*grid_index=*/true);
  dbs::Rng rng(5);
  std::vector<double> q(dim);
  for (auto _ : state) {
    for (int j = 0; j < dim; ++j) q[j] = rng.NextDouble();
    benchmark::DoNotOptimize(
        kde.Evaluate(dbs::data::PointView(q.data(), dim)));
  }
}
BENCHMARK(BM_KdeEvaluateIndexed)
    ->Args({2, 100})
    ->Args({2, 1000})
    ->Args({2, 4000})
    ->Args({5, 1000});

void BM_KdeEvaluateBrute(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int64_t kernels = state.range(1);
  auto ds = MakeData(dim, 50000);
  dbs::density::Kde kde = FitKde(ds.points, kernels, /*grid_index=*/false);
  dbs::Rng rng(5);
  std::vector<double> q(dim);
  for (auto _ : state) {
    for (int j = 0; j < dim; ++j) q[j] = rng.NextDouble();
    benchmark::DoNotOptimize(
        kde.EvaluateBrute(dbs::data::PointView(q.data(), dim)));
  }
}
BENCHMARK(BM_KdeEvaluateBrute)
    ->Args({2, 100})
    ->Args({2, 1000})
    ->Args({2, 4000})
    ->Args({5, 1000});

void BM_KdeFit(benchmark::State& state) {
  const int64_t kernels = state.range(0);
  auto ds = MakeData(2, 100000);
  for (auto _ : state) {
    dbs::density::Kde kde = FitKde(ds.points, kernels, true);
    benchmark::DoNotOptimize(kde.num_kernels());
  }
  state.SetItemsProcessed(state.iterations() * ds.points.size());
}
BENCHMARK(BM_KdeFit)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_BiasedSamplerTwoPass(benchmark::State& state) {
  auto ds = MakeData(2, 100000);
  dbs::density::Kde kde = FitKde(ds.points, 1000, true);
  dbs::core::BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 1000;
  dbs::core::BiasedSampler sampler(opts);
  for (auto _ : state) {
    auto sample = sampler.Run(ds.points, kde);
    DBS_CHECK(sample.ok());
    benchmark::DoNotOptimize(sample->size());
  }
  state.SetItemsProcessed(state.iterations() * ds.points.size() * 2);
}
BENCHMARK(BM_BiasedSamplerTwoPass)->Unit(benchmark::kMillisecond);

void BM_BiasedSamplerOnePass(benchmark::State& state) {
  auto ds = MakeData(2, 100000);
  dbs::density::Kde kde = FitKde(ds.points, 1000, true);
  dbs::core::BiasedSamplerOptions opts;
  opts.a = 1.0;
  opts.target_size = 1000;
  dbs::core::BiasedSampler sampler(opts);
  for (auto _ : state) {
    auto sample = sampler.RunOnePass(ds.points, kde);
    DBS_CHECK(sample.ok());
    benchmark::DoNotOptimize(sample->size());
  }
  state.SetItemsProcessed(state.iterations() * ds.points.size());
}
BENCHMARK(BM_BiasedSamplerOnePass)->Unit(benchmark::kMillisecond);

void BM_KdTreeCountWithinRadius(benchmark::State& state) {
  auto ds = MakeData(2, 100000);
  dbs::data::KdTree tree(&ds.points);
  dbs::Rng rng(7);
  double q[2];
  for (auto _ : state) {
    q[0] = rng.NextDouble();
    q[1] = rng.NextDouble();
    benchmark::DoNotOptimize(tree.CountWithinRadius(
        dbs::data::PointView(q, 2), 0.05, /*cap=*/10));
  }
}
BENCHMARK(BM_KdTreeCountWithinRadius);

}  // namespace

BENCHMARK_MAIN();
