// §4.3 "Running time experiments" — the sampler scales linearly in both
// the dataset size and the number of kernels.
//
// Paper result to reproduce (shape): KDE construction and the two sampling
// passes grow linearly with n at fixed kernels, and linearly with the
// kernel count at fixed n. Also contrasts the exact two-pass sampler with
// the one-pass integrated variant (which trades the normalization pass for
// an estimated normalizer).

#include <cstdio>

#include "core/biased_sampler.h"
#include "density/kde.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "synth/generator.h"
#include "util/check.h"

namespace {

dbs::synth::ClusteredDataset MakeData(int64_t points) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.num_clusters = 10;
  opts.num_cluster_points = points;
  opts.noise_multiplier = 0.1;
  opts.seed = 23;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds).value();
}

struct PipelineTimes {
  double fit_seconds;
  double two_pass_seconds;
  double one_pass_seconds;
};

PipelineTimes TimePipeline(const dbs::data::PointSet& points,
                           int64_t kernels) {
  PipelineTimes times{};
  dbs::eval::Timer timer;
  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = kernels;
  kde_opts.bandwidth_scale = 0.3;
  auto kde = dbs::density::Kde::Fit(points, kde_opts);
  DBS_CHECK(kde.ok());
  times.fit_seconds = timer.ElapsedSeconds();

  dbs::core::BiasedSamplerOptions sampler_opts;
  sampler_opts.a = 1.0;
  sampler_opts.target_size = 1000;
  dbs::core::BiasedSampler sampler(sampler_opts);

  timer.Reset();
  auto two_pass = sampler.Run(points, *kde);
  DBS_CHECK(two_pass.ok());
  times.two_pass_seconds = timer.ElapsedSeconds();

  timer.Reset();
  auto one_pass = sampler.RunOnePass(points, *kde);
  DBS_CHECK(one_pass.ok());
  times.one_pass_seconds = timer.ElapsedSeconds();
  return times;
}

}  // namespace

int main() {
  std::printf("Scaling of the density estimator and sampling passes "
              "(paper section 4.3)\n");

  dbs::eval::Table by_n({"points", "fit KDE (s)", "2-pass sample (s)",
                         "1-pass sample (s)"});
  for (int64_t points : {100000LL, 200000LL, 400000LL, 800000LL}) {
    auto ds = MakeData(points);
    PipelineTimes t = TimePipeline(ds.points, 1000);
    by_n.AddRow({dbs::eval::Table::Int(points),
                 dbs::eval::Table::Num(t.fit_seconds, 3),
                 dbs::eval::Table::Num(t.two_pass_seconds, 3),
                 dbs::eval::Table::Num(t.one_pass_seconds, 3)});
  }
  by_n.Print("runtime vs dataset size (1000 kernels) — expect linear");

  auto ds = MakeData(200000);
  dbs::eval::Table by_kernels({"kernels", "fit KDE (s)",
                               "2-pass sample (s)", "1-pass sample (s)"});
  for (int64_t kernels : {250LL, 500LL, 1000LL, 2000LL, 4000LL}) {
    PipelineTimes t = TimePipeline(ds.points, kernels);
    by_kernels.AddRow({dbs::eval::Table::Int(kernels),
                       dbs::eval::Table::Num(t.fit_seconds, 3),
                       dbs::eval::Table::Num(t.two_pass_seconds, 3),
                       dbs::eval::Table::Num(t.one_pass_seconds, 3)});
  }
  by_kernels.Print("runtime vs kernel count (200k points) — expect ~linear "
                   "(grid index damps the growth)");
  return 0;
}
