// §4.3 "Real Datasets" — NorthEast and California (simulated substitutes;
// see DESIGN.md for the substitution rationale).
//
// Paper result to reproduce: on NorthEast, density-biased sampling
// identifies the three metro clusters (New York, Philadelphia, Boston)
// while "random sampling fails to identify these high density areas
// because there is also a lot of noise, in the form of widely distributed
// rural areas and smaller population centers"; similarly for California.

#include <cstdio>

#include "bench_util.h"
#include "eval/report.h"
#include "synth/geo.h"

namespace {

constexpr int kTrials = 3;

void RunDataset(const char* name, const dbs::synth::ClusteredDataset& ds) {
  const int metros = ds.truth.num_true_clusters();
  const int cluster_target = metros + 2;  // room for background blobs
  dbs::eval::Table table({"sample %", "Biased a=1", "Uniform/CURE",
                          "BIRCH"});
  for (double fraction : {0.005, 0.01, 0.02}) {
    int64_t sample_size = static_cast<int64_t>(
        fraction * static_cast<double>(ds.points.size()));
    double sums[3] = {0, 0, 0};
    for (int trial = 0; trial < kTrials; ++trial) {
      uint64_t seed = 7000 * trial + 3;
      sums[0] += dbs::bench::RunBiasedCure(ds.points, ds.truth, 1.0,
                                           sample_size, cluster_target,
                                           1000, seed);
      sums[1] += dbs::bench::RunUniformCure(ds.points, ds.truth, sample_size,
                                            cluster_target, seed);
      sums[2] += dbs::bench::RunBirchAndMatch(
          ds.points, ds.truth, dbs::bench::SampleBytes(sample_size, 2),
          cluster_target);
    }
    table.AddRow({dbs::eval::Table::Num(fraction * 100, 1),
                  dbs::eval::Table::Num(sums[0] / kTrials, 1),
                  dbs::eval::Table::Num(sums[1] / kTrials, 1),
                  dbs::eval::Table::Num(sums[2] / kTrials, 1)});
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "%s: metro areas found (of %d), %lld points", name, metros,
                static_cast<long long>(ds.points.size()));
  table.Print(title);
}

}  // namespace

int main() {
  std::printf("Geospatial datasets (simulated substitutes for the paper's "
              "postal-address data), %d trials/cell\n", kTrials);
  {
    dbs::synth::GeoDatasetOptions opts;
    opts.num_points = 130000;
    opts.seed = 61;
    auto ds = dbs::synth::MakeNorthEastLike(opts);
    DBS_CHECK(ds.ok());
    RunDataset("NorthEast-like (NY / Philadelphia / Boston)", *ds);
  }
  {
    dbs::synth::GeoDatasetOptions opts;
    opts.seed = 67;
    auto ds = dbs::synth::MakeCaliforniaLike(opts);
    DBS_CHECK(ds.ok());
    RunDataset("California-like (Bay Area / Los Angeles)", *ds);
  }
  return 0;
}
