// Figure 3 — "Clustering using the hierarchical algorithm, samples of size
// 1000 points" on the CURE paper's dataset1 (5 clusters of different shapes
// and densities, one dominant).
//
// Paper result to reproduce: the biased sample (a = 0.5) lets the
// hierarchical algorithm discover all 5 clusters; the uniform sample of
// equal size splits the big cluster and merges neighboring ones. Raising
// the uniform sample size recovers the clusters only well above 2000
// points — "a much larger sample (twice the size of the biased sample) is
// required", consistent with Theorem 1.

#include <cstdio>

#include "bench_util.h"
#include "eval/report.h"
#include "synth/cure_dataset.h"

namespace {

constexpr int kClusters = 5;
constexpr int kTrials = 5;

const char* const kRegionNames[5] = {"big circle", "upper ellipse",
                                     "lower ellipse", "small circle A",
                                     "small circle B"};

double MeanFoundBiased(const dbs::synth::ClusteredDataset& ds,
                       int64_t sample_size, bool* all_found) {
  double sum = 0;
  *all_found = true;
  for (int trial = 0; trial < kTrials; ++trial) {
    int found = dbs::bench::RunBiasedCure(ds.points, ds.truth, /*a=*/0.5,
                                          sample_size, kClusters,
                                          /*num_kernels=*/1000,
                                          9000 + 17 * trial);
    sum += found;
    if (found < kClusters) *all_found = false;
  }
  return sum / kTrials;
}

double MeanFoundUniform(const dbs::synth::ClusteredDataset& ds,
                        int64_t sample_size) {
  double sum = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    sum += dbs::bench::RunUniformCure(ds.points, ds.truth, sample_size,
                                      kClusters, 9100 + 17 * trial);
  }
  return sum / kTrials;
}

}  // namespace

int main() {
  std::printf("Figure 3: CURE dataset1 (5 clusters, big one dominant), "
              "%d trials/cell\n", kTrials);
  dbs::synth::CureDatasetOptions data_opts;
  data_opts.num_points = 100000;
  data_opts.seed = 8;
  auto ds = dbs::synth::MakeCureDataset1(data_opts);
  DBS_CHECK(ds.ok());

  // Headline comparison at 1000 samples.
  bool all_found = false;
  double biased_1000 = MeanFoundBiased(*ds, 1000, &all_found);
  double uniform_1000 = MeanFoundUniform(*ds, 1000);
  dbs::eval::Table headline({"pipeline", "sample", "clusters found (of 5)"});
  headline.AddRow({"Biased a=0.5 + hierarchical", "1000",
                   dbs::eval::Table::Num(biased_1000, 1)});
  headline.AddRow({"Uniform + hierarchical", "1000",
                   dbs::eval::Table::Num(uniform_1000, 1)});
  headline.Print("Fig 3(b) vs 3(c): biased vs uniform sample of 1000");

  // Per-region detail for one representative biased run.
  {
    int found = dbs::bench::RunBiasedCure(ds->points, ds->truth, 0.5, 1000,
                                          kClusters, 1000, 9000);
    std::printf("\nbiased run detail: %d/5 regions found — per region:\n",
                found);
    dbs::density::KdeOptions kde_opts;
    kde_opts.num_kernels = 1000;
    kde_opts.bandwidth_scale = 0.3;
    kde_opts.seed = 9000;
    auto kde = dbs::density::Kde::Fit(ds->points, kde_opts);
    DBS_CHECK(kde.ok());
    dbs::core::BiasedSamplerOptions sampler_opts;
    sampler_opts.a = 0.5;
    sampler_opts.target_size = 1000;
    sampler_opts.seed = 9001;
    auto sample = dbs::core::BiasedSampler(sampler_opts).Run(ds->points,
                                                             *kde);
    DBS_CHECK(sample.ok());
    dbs::cluster::HierarchicalOptions cluster_opts;
    cluster_opts.num_clusters = kClusters;
    auto clustering =
        dbs::cluster::HierarchicalCluster(sample->points, cluster_opts);
    DBS_CHECK(clustering.ok());
    auto match = dbs::eval::MatchClusters(*clustering, ds->truth);
    for (int r = 0; r < kClusters; ++r) {
      std::printf("  %-15s %s\n", kRegionNames[r],
                  match.found[r] ? "found" : "MISSED");
    }
  }

  // The uniform-sample-size sweep behind the "twice the size" remark.
  dbs::eval::Table sweep({"uniform sample", "clusters found (of 5)"});
  for (int64_t size : {1000LL, 1500LL, 2000LL, 3000LL, 4000LL}) {
    sweep.AddRow({dbs::eval::Table::Int(size),
                  dbs::eval::Table::Num(MeanFoundUniform(*ds, size), 1)});
  }
  sweep.Print("uniform sample size needed to match the 1000-point biased "
              "sample");
  return 0;
}
