// §4.5 "Outlier detection experiments".
//
// Paper result to reproduce: "in almost all cases the algorithm finds all
// the outliers with at most two dataset passes plus the dataset pass that
// is required to compute the density estimator". This bench measures, on
// synthetic clustered data and on the geo-like substitute datasets:
//   * recall/precision of the KDE detector against the exact detector,
//   * passes consumed and the candidate-set size (the verification work),
//   * the candidate-slack tradeoff,
//   * end-to-end runtime vs the exact kd-tree detector and the O(n^2)
//     nested loop.
//
// mode=batch switches to the perf-smoke harness for the batched scorer:
// it times the per-point IntegrateExcludingSelf loop against the
// probe-tiled IntegrateExcludingSelfBatch (sequential and sharded across a
// BatchExecutor) on the same queries, checks every batched score bitwise
// against the scalar ones, and exits nonzero on any mismatch — CI runs
// this as the regression gate for the batch rollout.
//
// mode=exact sweeps the three exact detectors (kd-tree, cell-list, nested
// loop) over dims= x workers= on a clustered workload, checks every report
// field against the sequential kd-tree reference, emits JSON rows with the
// cell-list prune statistics and exits nonzero on any mismatch — CI runs
// this as the regression gate for the cell-list rollout.
//
//   outlier_detection [mode=paper] [points=40000] [queries=4000]
//                     [qmc_samples=64] [reps=3] [threads=4]
//   outlier_detection mode=exact [points=20000] [dims=2,3,5]
//                     [workers=0,1,4] [algos=kd,cell,nested] [reps=3]
//                     [out=BENCH_outlier_exact.json]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "density/kde.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "outlier/ball_integration.h"
#include "outlier/cell_list.h"
#include "outlier/exact_detector.h"
#include "outlier/kde_detector.h"
#include "parallel/batch_executor.h"
#include "synth/generator.h"
#include "synth/geo.h"
#include "synth/outlier_planting.h"
#include "tools/flags.h"
#include "util/check.h"

namespace {

struct Workload {
  const char* name;
  dbs::data::PointSet points;
  std::vector<int64_t> planted;
};

Workload MakeClusteredWorkload(int64_t n, uint64_t seed, int dim = 2) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = 8;
  opts.num_cluster_points = n;
  opts.noise_multiplier = 0.0;
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  Workload w{"clustered", std::move(ds->points), {}};
  dbs::synth::OutlierPlantingOptions plant;
  plant.count = 30;
  plant.min_distance = 0.1;
  plant.domain_lo.assign(static_cast<size_t>(dim), -0.5);
  plant.domain_hi.assign(static_cast<size_t>(dim), 1.5);
  plant.seed = seed + 1;
  auto planted = dbs::synth::PlantOutliers(w.points, plant);
  DBS_CHECK(planted.ok());
  w.planted = *planted;
  return w;
}

Workload MakeGeoWorkload(uint64_t seed) {
  dbs::synth::GeoDatasetOptions opts;
  opts.num_points = 130000;
  opts.seed = seed;
  auto ds = dbs::synth::MakeNorthEastLike(opts);
  DBS_CHECK(ds.ok());
  Workload w{"northeast-like", std::move(ds->points), {}};
  dbs::synth::OutlierPlantingOptions plant;
  plant.count = 30;
  plant.min_distance = 0.1;
  plant.domain_lo = {-0.5, -0.5};
  plant.domain_hi = {1.5, 1.5};
  plant.seed = seed + 1;
  auto planted = dbs::synth::PlantOutliers(w.points, plant);
  DBS_CHECK(planted.ok());
  w.planted = *planted;
  return w;
}

dbs::density::Kde FitSharpKde(const dbs::data::PointSet& points) {
  dbs::density::KdeOptions opts;
  opts.num_kernels = 1000;
  // Outlier scoring integrates over small balls; resolve that scale.
  opts.bandwidth_scale = 0.25;
  auto kde = dbs::density::Kde::Fit(points, opts);
  DBS_CHECK(kde.ok());
  return std::move(kde).value();
}

// Runs `body` `reps` times and returns the fastest wall-clock seconds.
template <typename Body>
double TimeBest(int reps, Body&& body) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Clock::time_point start = Clock::now();
    body();
    double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

int64_t CountMismatches(const std::vector<double>& got,
                        const std::vector<double>& want) {
  DBS_CHECK(got.size() == want.size());
  int64_t bad = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(double)) != 0) ++bad;
  }
  return bad;
}

// mode=batch: scalar vs batched QMC ball scoring, bitwise-checked. Returns
// the process exit code (nonzero on any batch/scalar mismatch).
int RunBatchMode(int64_t points, int64_t queries, int qmc_samples, int reps,
                 int threads, double radius) {
  std::printf("outlier_detection mode=batch: %lld points, %lld queries, "
              "qmc_samples=%d, radius=%.3f, best of %d reps\n\n",
              static_cast<long long>(points),
              static_cast<long long>(queries), qmc_samples, radius, reps);

  Workload w = MakeClusteredWorkload(points, 41);
  dbs::density::Kde kde = FitSharpKde(w.points);
  dbs::data::PointSet scored = w.points.Gather([&] {
    std::vector<int64_t> idx;
    const int64_t stride = w.points.size() / queries > 0
                               ? w.points.size() / queries
                               : 1;
    for (int64_t i = 0; i < w.points.size() &&
         static_cast<int64_t>(idx.size()) < queries; i += stride) {
      idx.push_back(i);
    }
    return idx;
  }());
  const int64_t nq = scored.size();
  const double* rows = scored.flat().data();
  dbs::outlier::BallIntegrator integrator(
      dbs::outlier::BallIntegration::kQuasiMonteCarlo, scored.dim(),
      qmc_samples);

  std::vector<double> ref(static_cast<size_t>(nq));
  std::vector<double> got(static_cast<size_t>(nq));

  const double scalar_s = TimeBest(reps, [&] {
    for (int64_t i = 0; i < nq; ++i) {
      ref[static_cast<size_t>(i)] =
          integrator.IntegrateExcludingSelf(kde, scored[i], radius);
    }
  });

  const double batch_s = TimeBest(reps, [&] {
    DBS_CHECK(integrator
                  .IntegrateExcludingSelfBatch(kde, rows, nq, radius,
                                               got.data(), nullptr)
                  .ok());
  });
  const int64_t batch_bad = CountMismatches(got, ref);

  dbs::parallel::BatchExecutorOptions pool;
  pool.num_workers = threads;
  pool.queue_capacity = 4096;
  dbs::parallel::BatchExecutor executor(pool);
  const double sharded_s = TimeBest(reps, [&] {
    DBS_CHECK(integrator
                  .IntegrateExcludingSelfBatch(kde, rows, nq, radius,
                                               got.data(), &executor)
                  .ok());
  });
  executor.Shutdown();
  const int64_t sharded_bad = CountMismatches(got, ref);

  std::printf("%18s %10s %14s %9s %10s\n", "series", "seconds",
              "points_per_sec", "speedup", "mismatch");
  auto row = [&](const char* series, double seconds, int64_t bad) {
    std::printf("%18s %10.4f %14.0f %8.2fx %10lld\n", series, seconds,
                seconds > 0 ? static_cast<double>(nq) / seconds : 0.0,
                seconds > 0 ? scalar_s / seconds : 0.0,
                static_cast<long long>(bad));
  };
  row("scalar_qmc", scalar_s, 0);
  row("batch_qmc", batch_s, batch_bad);
  row("batch_qmc_sharded", sharded_s, sharded_bad);

  const int64_t total_bad = batch_bad + sharded_bad;
  if (total_bad > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld batched scores differ bitwise from scalar\n",
                 static_cast<long long>(total_bad));
    return 1;
  }
  return 0;
}

bool ParseIntList(const std::string& spec, std::vector<int>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (token.empty()) return false;
    for (char c : token) {
      if (c < '0' || c > '9') return false;
    }
    out->push_back(std::atoi(token.c_str()));
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseAlgoList(const std::string& spec, std::vector<std::string>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (token != "kd" && token != "cell" && token != "nested") return false;
    out->push_back(token);
    pos = comma + 1;
  }
  return !out->empty();
}

// Field-by-field report comparison; any difference in the outlier set, the
// per-outlier counts, candidates_checked or passes counts as one mismatch
// per differing field (sizes differing count the whole field once).
int64_t CountReportMismatches(const dbs::outlier::OutlierReport& got,
                              const dbs::outlier::OutlierReport& want) {
  int64_t bad = 0;
  if (got.outlier_indices != want.outlier_indices) ++bad;
  if (got.neighbor_counts != want.neighbor_counts) ++bad;
  if (got.candidates_checked != want.candidates_checked) ++bad;
  if (got.passes != want.passes) ++bad;
  return bad;
}

struct ExactSeries {
  int dim = 0;
  std::string algo;
  int workers = 0;  // 0 = sequential (no executor)
  double seconds = 0.0;
  double speedup_vs_kd_seq = 0.0;
  int64_t mismatches = 0;
  dbs::outlier::CellListStats stats;  // zero for kd/nested rows
};

void WriteExactJson(const std::string& path, int64_t points, int reps,
                    const std::vector<ExactSeries>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"outlier_exact\",\n"
               "  \"points\": %lld,\n  \"reps\": %d,\n"
               "  \"results\": [\n",
               static_cast<long long>(points), reps);
  for (size_t i = 0; i < results.size(); ++i) {
    const ExactSeries& r = results[i];
    std::fprintf(
        f,
        "    {\"dim\": %d, \"algo\": \"%s\", \"workers\": %d, "
        "\"seconds\": %.6f, \"speedup_vs_kd_seq\": %.3f, "
        "\"mismatches\": %lld, \"grid_cells\": %lld, "
        "\"occupied_cells\": %lld, \"cells_dense_pruned\": %lld, "
        "\"cells_sparse_pruned\": %lld, \"pairwise_evaluated\": %lld, "
        "\"used_fallback\": %s}%s\n",
        r.dim, r.algo.c_str(), r.workers, r.seconds, r.speedup_vs_kd_seq,
        static_cast<long long>(r.mismatches),
        static_cast<long long>(r.stats.grid_cells),
        static_cast<long long>(r.stats.occupied_cells),
        static_cast<long long>(r.stats.cells_dense_pruned),
        static_cast<long long>(r.stats.cells_sparse_pruned),
        static_cast<long long>(r.stats.pairwise_evaluated),
        r.stats.used_fallback ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// mode=exact: kd-tree vs cell-list vs nested-loop over dims x workers,
// every report checked field-by-field against the sequential kd-tree
// reference. Returns the process exit code (nonzero on any mismatch).
int RunExactMode(int64_t points, const std::vector<int>& dims,
                 const std::vector<int>& worker_counts,
                 const std::vector<std::string>& algos, int reps,
                 const std::string& out) {
  dbs::outlier::DbOutlierParams params;
  params.radius = 0.05;
  params.max_neighbors = 5;
  std::printf("outlier_detection mode=exact: %lld points, DB(p=%lld, "
              "k=%.2f)-outliers, clustered workload, best of %d reps\n\n",
              static_cast<long long>(points),
              static_cast<long long>(params.max_neighbors), params.radius,
              reps);
  std::printf("%4s %7s %8s %10s %9s %9s %7s %7s %11s %9s\n", "dim", "algo",
              "workers", "seconds", "speedup", "mismatch", "dense",
              "sparse", "pairwise", "fallback");

  std::vector<ExactSeries> results;
  int64_t total_bad = 0;
  for (int dim : dims) {
    Workload w = MakeClusteredWorkload(points, 61, dim);
    auto reference = dbs::outlier::DetectOutliersExact(w.points, params);
    DBS_CHECK(reference.ok());
    double kd_seq_seconds = 0.0;
    for (const std::string& algo : algos) {
      for (int workers : worker_counts) {
        std::unique_ptr<dbs::parallel::BatchExecutor> pool;
        if (workers > 0) {
          dbs::parallel::BatchExecutorOptions pool_opts;
          pool_opts.num_workers = workers;
          pool_opts.queue_capacity = 4096;
          pool = std::make_unique<dbs::parallel::BatchExecutor>(pool_opts);
        }
        ExactSeries series;
        series.dim = dim;
        series.algo = algo;
        series.workers = workers;
        dbs::outlier::OutlierReport report;
        if (algo == "cell") {
          dbs::outlier::CellListDetectorOptions options;
          options.executor = pool.get();
          options.stats = &series.stats;
          series.seconds = TimeBest(reps, [&] {
            auto r = dbs::outlier::DetectOutliersCellList(w.points, params,
                                                          options);
            DBS_CHECK(r.ok());
            report = std::move(r).value();
          });
        } else {
          dbs::outlier::ExactDetectorOptions options;
          options.executor = pool.get();
          series.seconds = TimeBest(reps, [&] {
            auto r = algo == "kd"
                         ? dbs::outlier::DetectOutliersExact(w.points,
                                                             params, options)
                         : dbs::outlier::DetectOutliersNestedLoop(
                               w.points, params, options);
            DBS_CHECK(r.ok());
            report = std::move(r).value();
          });
        }
        if (pool != nullptr) pool->Shutdown();
        if (algo == "kd" && workers == 0) kd_seq_seconds = series.seconds;
        series.speedup_vs_kd_seq =
            kd_seq_seconds > 0 && series.seconds > 0
                ? kd_seq_seconds / series.seconds
                : 0.0;
        series.mismatches = CountReportMismatches(report, *reference);
        total_bad += series.mismatches;
        std::printf("%4d %7s %8d %10.4f %8.2fx %9lld %7lld %7lld %11lld "
                    "%9s\n",
                    dim, algo.c_str(), workers, series.seconds,
                    series.speedup_vs_kd_seq,
                    static_cast<long long>(series.mismatches),
                    static_cast<long long>(series.stats.cells_dense_pruned),
                    static_cast<long long>(series.stats.cells_sparse_pruned),
                    static_cast<long long>(series.stats.pairwise_evaluated),
                    series.stats.used_fallback ? "yes" : "no");
        results.push_back(std::move(series));
      }
    }
  }
  if (!out.empty()) WriteExactJson(out, points, reps, results);
  if (total_bad > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld report fields differ from the sequential "
                 "kd-tree reference\n",
                 static_cast<long long>(total_bad));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  const std::string mode = flags.GetString("mode", "paper");
  const int64_t batch_points = flags.GetInt("points", 40000);
  const int64_t batch_queries = flags.GetInt("queries", 4000);
  const int qmc_samples = static_cast<int>(flags.GetInt("qmc_samples", 64));
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const std::string dims_spec = flags.GetString("dims", "2,3,5");
  const std::string workers_spec = flags.GetString("workers", "0,1,4");
  const std::string algos_spec = flags.GetString("algos", "kd,cell,nested");
  const std::string out =
      flags.GetString("out", "BENCH_outlier_exact.json");
  if (!flags.AllKnown()) return 2;
  DBS_CHECK(batch_points > 0 && batch_queries > 0 && qmc_samples > 0 &&
            reps > 0 && threads > 0);
  if (mode == "batch") {
    return RunBatchMode(batch_points, batch_queries, qmc_samples, reps,
                        threads, /*radius=*/0.05);
  }
  if (mode == "exact") {
    std::vector<int> dims;
    std::vector<int> worker_counts;
    std::vector<std::string> algos;
    if (!ParseIntList(dims_spec, &dims) ||
        !ParseIntList(workers_spec, &worker_counts) ||
        !ParseAlgoList(algos_spec, &algos)) {
      std::fprintf(stderr,
                   "bad dims=/workers=/algos= (algos from kd,cell,nested)\n");
      return 2;
    }
    // The default points=40000 is sized for mode=paper; mode=exact runs the
    // quadratic nested loop too, so its acceptance sweep uses points=20000.
    return RunExactMode(batch_points, dims, worker_counts, algos, reps, out);
  }
  if (mode != "paper") {
    std::fprintf(stderr, "unknown mode '%s' (expected paper|batch|exact)\n",
                 mode.c_str());
    return 2;
  }

  dbs::outlier::DbOutlierParams params;
  params.radius = 0.05;
  params.max_neighbors = 5;

  std::printf("Outlier detection (paper section 4.5): DB(p=%lld, "
              "k=%.2f)-outliers\n",
              static_cast<long long>(params.max_neighbors), params.radius);

  // Part 1: recall/precision/passes on both workloads.
  dbs::eval::Table quality({"dataset", "n", "true outliers",
                            "KDE found", "recall", "precision",
                            "candidates", "passes"});
  std::vector<Workload> workloads;
  workloads.push_back(MakeClusteredWorkload(80000, 41));
  workloads.push_back(MakeGeoWorkload(43));
  for (const Workload& w : workloads) {
    auto exact = dbs::outlier::DetectOutliersExact(w.points, params);
    DBS_CHECK(exact.ok());
    dbs::density::Kde kde = FitSharpKde(w.points);
    dbs::data::InMemoryScan scan(&w.points);
    dbs::outlier::KdeDetectorOptions detector_opts;
    detector_opts.candidate_slack = 5.0;
    auto approx = dbs::outlier::DetectOutliersApproximate(scan, kde, params,
                                                          detector_opts);
    DBS_CHECK(approx.ok());

    // Precision is 1 by construction (candidates are verified); recall is
    // found / true.
    int64_t hits = 0;
    size_t cursor = 0;
    for (int64_t idx : exact->outlier_indices) {
      while (cursor < approx->outlier_indices.size() &&
             approx->outlier_indices[cursor] < idx) {
        ++cursor;
      }
      if (cursor < approx->outlier_indices.size() &&
          approx->outlier_indices[cursor] == idx) {
        ++hits;
      }
    }
    double recall = exact->outlier_indices.empty()
                        ? 1.0
                        : static_cast<double>(hits) /
                              static_cast<double>(
                                  exact->outlier_indices.size());
    quality.AddRow(
        {w.name, dbs::eval::Table::Int(w.points.size()),
         dbs::eval::Table::Int(
             static_cast<int64_t>(exact->outlier_indices.size())),
         dbs::eval::Table::Int(
             static_cast<int64_t>(approx->outlier_indices.size())),
         dbs::eval::Table::Num(recall, 3),
         dbs::eval::Table::Num(1.0, 3),
         dbs::eval::Table::Int(approx->candidates_checked),
         dbs::eval::Table::Int(approx->passes)});
  }
  quality.Print("detection quality (passes exclude the estimator pass)");

  // Part 2: candidate slack sweep — recall vs verification work.
  {
    Workload w = MakeClusteredWorkload(80000, 47);
    auto exact = dbs::outlier::DetectOutliersExact(w.points, params);
    DBS_CHECK(exact.ok());
    dbs::density::Kde kde = FitSharpKde(w.points);
    dbs::eval::Table sweep({"slack", "recall", "candidates"});
    for (double slack : {1.0, 2.0, 5.0, 10.0, 25.0}) {
      dbs::outlier::KdeDetectorOptions opts;
      opts.candidate_slack = slack;
      auto approx =
          dbs::outlier::DetectOutliersApproximate(w.points, kde, params,
                                                  opts);
      DBS_CHECK(approx.ok());
      int64_t hits = 0;
      for (int64_t idx : exact->outlier_indices) {
        for (int64_t got : approx->outlier_indices) {
          if (got == idx) {
            ++hits;
            break;
          }
        }
      }
      double recall = exact->outlier_indices.empty()
                          ? 1.0
                          : static_cast<double>(hits) /
                                static_cast<double>(
                                    exact->outlier_indices.size());
      sweep.AddRow({dbs::eval::Table::Num(slack, 1),
                    dbs::eval::Table::Num(recall, 3),
                    dbs::eval::Table::Int(approx->candidates_checked)});
    }
    sweep.Print("candidate-slack tradeoff (recall vs verification work)");
  }

  // Part 3: runtime scaling vs the exact baselines.
  {
    dbs::eval::Table timing({"n", "estimator (s)", "KDE detect (s)",
                             "exact kd-tree (s)", "nested loop (s)"});
    for (int64_t n : {20000LL, 40000LL, 80000LL}) {
      Workload w = MakeClusteredWorkload(n, 53);
      dbs::eval::Timer fit_timer;
      dbs::density::Kde kde = FitSharpKde(w.points);
      double fit_s = fit_timer.ElapsedSeconds();

      dbs::eval::Timer kde_timer;
      dbs::outlier::KdeDetectorOptions opts;
      opts.candidate_slack = 5.0;
      auto approx =
          dbs::outlier::DetectOutliersApproximate(w.points, kde, params,
                                                  opts);
      DBS_CHECK(approx.ok());
      double kde_s = kde_timer.ElapsedSeconds();

      dbs::eval::Timer exact_timer;
      auto exact = dbs::outlier::DetectOutliersExact(w.points, params);
      DBS_CHECK(exact.ok());
      double exact_s = exact_timer.ElapsedSeconds();

      dbs::eval::Timer loop_timer;
      auto loop = dbs::outlier::DetectOutliersNestedLoop(w.points, params);
      DBS_CHECK(loop.ok());
      double loop_s = loop_timer.ElapsedSeconds();

      timing.AddRow({dbs::eval::Table::Int(w.points.size()),
                     dbs::eval::Table::Num(fit_s, 3),
                     dbs::eval::Table::Num(kde_s, 3),
                     dbs::eval::Table::Num(exact_s, 3),
                     dbs::eval::Table::Num(loop_s, 3)});
    }
    timing.Print("runtime scaling (KDE detection is pass-bounded; the "
                 "nested loop is quadratic)");
  }
  return 0;
}
