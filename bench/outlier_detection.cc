// §4.5 "Outlier detection experiments".
//
// Paper result to reproduce: "in almost all cases the algorithm finds all
// the outliers with at most two dataset passes plus the dataset pass that
// is required to compute the density estimator". This bench measures, on
// synthetic clustered data and on the geo-like substitute datasets:
//   * recall/precision of the KDE detector against the exact detector,
//   * passes consumed and the candidate-set size (the verification work),
//   * the candidate-slack tradeoff,
//   * end-to-end runtime vs the exact kd-tree detector and the O(n^2)
//     nested loop.

#include <cstdio>

#include "density/kde.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "outlier/exact_detector.h"
#include "outlier/kde_detector.h"
#include "synth/generator.h"
#include "synth/geo.h"
#include "synth/outlier_planting.h"
#include "util/check.h"

namespace {

struct Workload {
  const char* name;
  dbs::data::PointSet points;
  std::vector<int64_t> planted;
};

Workload MakeClusteredWorkload(int64_t n, uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.num_clusters = 8;
  opts.num_cluster_points = n;
  opts.noise_multiplier = 0.0;
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  Workload w{"clustered", std::move(ds->points), {}};
  dbs::synth::OutlierPlantingOptions plant;
  plant.count = 30;
  plant.min_distance = 0.1;
  plant.domain_lo = {-0.5, -0.5};
  plant.domain_hi = {1.5, 1.5};
  plant.seed = seed + 1;
  auto planted = dbs::synth::PlantOutliers(w.points, plant);
  DBS_CHECK(planted.ok());
  w.planted = *planted;
  return w;
}

Workload MakeGeoWorkload(uint64_t seed) {
  dbs::synth::GeoDatasetOptions opts;
  opts.num_points = 130000;
  opts.seed = seed;
  auto ds = dbs::synth::MakeNorthEastLike(opts);
  DBS_CHECK(ds.ok());
  Workload w{"northeast-like", std::move(ds->points), {}};
  dbs::synth::OutlierPlantingOptions plant;
  plant.count = 30;
  plant.min_distance = 0.1;
  plant.domain_lo = {-0.5, -0.5};
  plant.domain_hi = {1.5, 1.5};
  plant.seed = seed + 1;
  auto planted = dbs::synth::PlantOutliers(w.points, plant);
  DBS_CHECK(planted.ok());
  w.planted = *planted;
  return w;
}

dbs::density::Kde FitSharpKde(const dbs::data::PointSet& points) {
  dbs::density::KdeOptions opts;
  opts.num_kernels = 1000;
  // Outlier scoring integrates over small balls; resolve that scale.
  opts.bandwidth_scale = 0.25;
  auto kde = dbs::density::Kde::Fit(points, opts);
  DBS_CHECK(kde.ok());
  return std::move(kde).value();
}

}  // namespace

int main() {
  dbs::outlier::DbOutlierParams params;
  params.radius = 0.05;
  params.max_neighbors = 5;

  std::printf("Outlier detection (paper section 4.5): DB(p=%lld, "
              "k=%.2f)-outliers\n",
              static_cast<long long>(params.max_neighbors), params.radius);

  // Part 1: recall/precision/passes on both workloads.
  dbs::eval::Table quality({"dataset", "n", "true outliers",
                            "KDE found", "recall", "precision",
                            "candidates", "passes"});
  std::vector<Workload> workloads;
  workloads.push_back(MakeClusteredWorkload(80000, 41));
  workloads.push_back(MakeGeoWorkload(43));
  for (const Workload& w : workloads) {
    auto exact = dbs::outlier::DetectOutliersExact(w.points, params);
    DBS_CHECK(exact.ok());
    dbs::density::Kde kde = FitSharpKde(w.points);
    dbs::data::InMemoryScan scan(&w.points);
    dbs::outlier::KdeDetectorOptions detector_opts;
    detector_opts.candidate_slack = 5.0;
    auto approx = dbs::outlier::DetectOutliersApproximate(scan, kde, params,
                                                          detector_opts);
    DBS_CHECK(approx.ok());

    // Precision is 1 by construction (candidates are verified); recall is
    // found / true.
    int64_t hits = 0;
    size_t cursor = 0;
    for (int64_t idx : exact->outlier_indices) {
      while (cursor < approx->outlier_indices.size() &&
             approx->outlier_indices[cursor] < idx) {
        ++cursor;
      }
      if (cursor < approx->outlier_indices.size() &&
          approx->outlier_indices[cursor] == idx) {
        ++hits;
      }
    }
    double recall = exact->outlier_indices.empty()
                        ? 1.0
                        : static_cast<double>(hits) /
                              static_cast<double>(
                                  exact->outlier_indices.size());
    quality.AddRow(
        {w.name, dbs::eval::Table::Int(w.points.size()),
         dbs::eval::Table::Int(
             static_cast<int64_t>(exact->outlier_indices.size())),
         dbs::eval::Table::Int(
             static_cast<int64_t>(approx->outlier_indices.size())),
         dbs::eval::Table::Num(recall, 3),
         dbs::eval::Table::Num(1.0, 3),
         dbs::eval::Table::Int(approx->candidates_checked),
         dbs::eval::Table::Int(approx->passes)});
  }
  quality.Print("detection quality (passes exclude the estimator pass)");

  // Part 2: candidate slack sweep — recall vs verification work.
  {
    Workload w = MakeClusteredWorkload(80000, 47);
    auto exact = dbs::outlier::DetectOutliersExact(w.points, params);
    DBS_CHECK(exact.ok());
    dbs::density::Kde kde = FitSharpKde(w.points);
    dbs::eval::Table sweep({"slack", "recall", "candidates"});
    for (double slack : {1.0, 2.0, 5.0, 10.0, 25.0}) {
      dbs::outlier::KdeDetectorOptions opts;
      opts.candidate_slack = slack;
      auto approx =
          dbs::outlier::DetectOutliersApproximate(w.points, kde, params,
                                                  opts);
      DBS_CHECK(approx.ok());
      int64_t hits = 0;
      for (int64_t idx : exact->outlier_indices) {
        for (int64_t got : approx->outlier_indices) {
          if (got == idx) {
            ++hits;
            break;
          }
        }
      }
      double recall = exact->outlier_indices.empty()
                          ? 1.0
                          : static_cast<double>(hits) /
                                static_cast<double>(
                                    exact->outlier_indices.size());
      sweep.AddRow({dbs::eval::Table::Num(slack, 1),
                    dbs::eval::Table::Num(recall, 3),
                    dbs::eval::Table::Int(approx->candidates_checked)});
    }
    sweep.Print("candidate-slack tradeoff (recall vs verification work)");
  }

  // Part 3: runtime scaling vs the exact baselines.
  {
    dbs::eval::Table timing({"n", "estimator (s)", "KDE detect (s)",
                             "exact kd-tree (s)", "nested loop (s)"});
    for (int64_t n : {20000LL, 40000LL, 80000LL}) {
      Workload w = MakeClusteredWorkload(n, 53);
      dbs::eval::Timer fit_timer;
      dbs::density::Kde kde = FitSharpKde(w.points);
      double fit_s = fit_timer.ElapsedSeconds();

      dbs::eval::Timer kde_timer;
      dbs::outlier::KdeDetectorOptions opts;
      opts.candidate_slack = 5.0;
      auto approx =
          dbs::outlier::DetectOutliersApproximate(w.points, kde, params,
                                                  opts);
      DBS_CHECK(approx.ok());
      double kde_s = kde_timer.ElapsedSeconds();

      dbs::eval::Timer exact_timer;
      auto exact = dbs::outlier::DetectOutliersExact(w.points, params);
      DBS_CHECK(exact.ok());
      double exact_s = exact_timer.ElapsedSeconds();

      dbs::eval::Timer loop_timer;
      auto loop = dbs::outlier::DetectOutliersNestedLoop(w.points, params);
      DBS_CHECK(loop.ok());
      double loop_s = loop_timer.ElapsedSeconds();

      timing.AddRow({dbs::eval::Table::Int(w.points.size()),
                     dbs::eval::Table::Num(fit_s, 3),
                     dbs::eval::Table::Num(kde_s, 3),
                     dbs::eval::Table::Num(exact_s, 3),
                     dbs::eval::Table::Num(loop_s, 3)});
    }
    timing.Print("runtime scaling (KDE detection is pass-bounded; the "
                 "nested loop is quadratic)");
  }
  return 0;
}
