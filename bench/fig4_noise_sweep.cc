// Figure 4 — "Varying Noise in 2 and 3 dimensions".
//
// Paper setup: 100k points in 10 clusters of different densities, noise
// fraction fn swept from 5% to 80%; samples of 2% (a) and 4% (b) in 2-D and
// 2% in 3-D (c); series: Biased sampling a = 1, Uniform sampling / CURE,
// and BIRCH with memory equal to the sample size (which reads the whole
// dataset). y-axis: clusters found out of 10.
//
// Paper result to reproduce (shape): biased sampling keeps finding all (or
// nearly all) clusters up to fn = 70-80%; uniform degrades quickly as noise
// grows; BIRCH sits in between, capped by the clusters' relative sizes.

#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace {

using dbs::bench::RunBiasedCure;
using dbs::bench::RunBirchAndMatch;
using dbs::bench::RunUniformCure;
using dbs::bench::SampleBytes;

constexpr int kClusters = 10;
constexpr int64_t kClusterPoints = 100000;
constexpr int kTrials = 2;
constexpr int64_t kKernels = 1000;

void RunPanel(const char* title, int dim, double sample_fraction) {
  dbs::eval::Table table({"noise fn%", "Biased a=1", "Uniform/CURE",
                          "BIRCH"});
  for (double fn : {0.05, 0.2, 0.4, 0.6, 0.7, 0.8}) {
    double biased_sum = 0;
    double uniform_sum = 0;
    double birch_sum = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      dbs::synth::ClusteredDatasetOptions opts;
      opts.dim = dim;
      opts.num_clusters = kClusters;
      opts.num_cluster_points = kClusterPoints;
      opts.size_ratio = 3.0;  // clusters of different densities
      opts.noise_multiplier = fn;
      opts.seed = 100 + trial;
      auto ds = dbs::synth::MakeClusteredDataset(opts);
      DBS_CHECK(ds.ok());
      const int64_t sample_size = static_cast<int64_t>(
          sample_fraction * static_cast<double>(ds->points.size()));
      uint64_t seed = 1000 * trial + 17;
      biased_sum += RunBiasedCure(ds->points, ds->truth, /*a=*/1.0,
                                  sample_size, kClusters, kKernels, seed);
      uniform_sum += RunUniformCure(ds->points, ds->truth, sample_size,
                                    kClusters, seed);
      birch_sum += RunBirchAndMatch(ds->points, ds->truth,
                                    SampleBytes(sample_size, dim), kClusters);
    }
    table.AddRow({dbs::eval::Table::Num(fn * 100, 0),
                  dbs::eval::Table::Num(biased_sum / kTrials, 1),
                  dbs::eval::Table::Num(uniform_sum / kTrials, 1),
                  dbs::eval::Table::Num(birch_sum / kTrials, 1)});
  }
  table.Print(title);
}

}  // namespace

int main() {
  std::printf("Figure 4: clusters found (of %d) vs noise; %lldk cluster "
              "points, %d trials/cell\n",
              kClusters, static_cast<long long>(kClusterPoints / 1000),
              kTrials);
  RunPanel("Fig 4(a): 2 dims, sample 2%", 2, 0.02);
  RunPanel("Fig 4(b): 2 dims, sample 4%", 2, 0.04);
  RunPanel("Fig 4(c): 3 dims, sample 2%", 3, 0.02);
  return 0;
}
