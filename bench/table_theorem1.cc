// Theorem 1 and the §1.1 worked example — the analytic case for biased
// sampling, with exact binomial machinery and Monte-Carlo validation.
//
// Paper content to reproduce:
//   * Guha et al.'s bound: capturing xi = 0.2 of a 1000-point cluster with
//     90% confidence needs a uniform sample of ~25% of the dataset.
//   * Theorem 1's message: a sampling rule that keeps cluster points with
//     probability p meets the same guarantee with a smaller expected
//     sample, with the savings determined by how low the out-of-cluster
//     rate can be pushed (density-biased sampling pushes it far below the
//     uniform rate).

#include <cstdio>

#include "core/guarantees.h"
#include "eval/report.h"
#include "util/rng.h"

namespace {

using dbs::core::BiasedCaptureProbability;
using dbs::core::BiasedRuleExpectedSampleSize;
using dbs::core::GuhaUniformSampleSize;
using dbs::core::MinBiasedInclusionProbability;
using dbs::core::MinUniformSampleSize;
using dbs::core::RuleRCrossoverP;
using dbs::core::UniformCaptureProbability;

// Monte-Carlo capture frequency of Bernoulli(rate) sampling of a cluster.
double SimulateCapture(int64_t cluster, double xi, double rate, int sims,
                       dbs::Rng& rng) {
  int64_t need = static_cast<int64_t>(xi * static_cast<double>(cluster));
  int captured = 0;
  for (int s = 0; s < sims; ++s) {
    int64_t kept = 0;
    for (int64_t i = 0; i < cluster; ++i) {
      if (rng.NextBernoulli(rate)) ++kept;
    }
    if (kept >= need) ++captured;
  }
  return static_cast<double>(captured) / sims;
}

}  // namespace

int main() {
  const int64_t n = 1000000;
  const double delta = 0.1;
  dbs::Rng rng(123);

  std::printf("Theorem 1 / Guha bound: sample sizes to capture a fraction "
              "xi of a cluster w.p. 90%%; n = %lld\n",
              static_cast<long long>(n));

  // Part 1: the worked example and its neighbors. Columns: Guha closed
  // form, exact minimal size, and the per-point uniform rate.
  dbs::eval::Table bounds({"|u|", "xi", "Guha bound (%n)",
                           "exact min (%n)", "uniform rate"});
  for (int64_t u : {500LL, 1000LL, 5000LL}) {
    for (double xi : {0.1, 0.2, 0.4}) {
      double guha = GuhaUniformSampleSize(n, u, xi, delta);
      double exact = MinUniformSampleSize(n, u, xi, delta);
      bounds.AddRow({dbs::eval::Table::Int(u),
                     dbs::eval::Table::Num(xi, 1),
                     dbs::eval::Table::Num(100.0 * guha / n, 1),
                     dbs::eval::Table::Num(100.0 * exact / n, 1),
                     dbs::eval::Table::Num(exact / n, 4)});
    }
  }
  bounds.Print("uniform sampling requirements (paper's example: |u|=1000, "
               "xi=0.2 -> ~25% of the dataset)");

  // Part 2: biased rule — same guarantee, smaller samples as the
  // out-of-cluster rate drops.
  const int64_t u = 1000;
  const double xi = 0.2;
  double uniform_exact = MinUniformSampleSize(n, u, xi, delta);
  double p_min = MinBiasedInclusionProbability(u, xi, delta);
  dbs::eval::Table biased({"out-rate (x uniform)", "E[sample] (%n)",
                           "vs uniform", "capture prob"});
  for (double factor : {1.0, 0.5, 0.1, 0.01}) {
    double out_rate = factor * uniform_exact / static_cast<double>(n);
    double size = BiasedRuleExpectedSampleSize(n, u, p_min, out_rate);
    biased.AddRow({dbs::eval::Table::Num(factor, 2),
                   dbs::eval::Table::Num(100.0 * size / n, 2),
                   dbs::eval::Table::Num(size / uniform_exact, 3),
                   dbs::eval::Table::Num(
                       BiasedCaptureProbability(u, xi, p_min * 1.0001), 3)});
  }
  biased.Print("biased rule: keep cluster points at the minimal guaranteed "
               "rate, vary the out-of-cluster rate");

  // Part 3: the literal theorem-1 rule (out-rate = 1 - p) crossover.
  double p_star = RuleRCrossoverP(n, u, uniform_exact);
  std::printf("\nliteral rule R (out-rate = 1-p): expected size undercuts "
              "the uniform requirement only for p >= %.4f\n", p_star);

  // Part 4: Monte-Carlo validation of the capture probabilities.
  dbs::eval::Table mc({"scheme", "rate", "analytic", "monte carlo"});
  double uniform_rate = uniform_exact / static_cast<double>(n);
  mc.AddRow({"uniform @ exact min", dbs::eval::Table::Num(uniform_rate, 4),
             dbs::eval::Table::Num(
                 UniformCaptureProbability(n, u, xi, uniform_exact), 3),
             dbs::eval::Table::Num(
                 SimulateCapture(u, xi, uniform_rate, 20000, rng), 3)});
  mc.AddRow({"biased @ p_min", dbs::eval::Table::Num(p_min, 4),
             dbs::eval::Table::Num(
                 BiasedCaptureProbability(u, xi, p_min * 1.0001), 3),
             dbs::eval::Table::Num(
                 SimulateCapture(u, xi, p_min * 1.0001, 20000, rng), 3)});
  mc.AddRow({"uniform @ half the size",
             dbs::eval::Table::Num(uniform_rate / 2, 4),
             dbs::eval::Table::Num(
                 UniformCaptureProbability(n, u, xi, uniform_exact / 2), 3),
             dbs::eval::Table::Num(
                 SimulateCapture(u, xi, uniform_rate / 2, 20000, rng), 3)});
  mc.Print("Monte-Carlo validation (20000 simulations per row)");
  return 0;
}
