// Agglomeration micro-benchmark: accelerated core vs frozen reference
// (DESIGN.md §11).
//
// For each (n, dim) configuration the bench clusters the same synthetic
// dataset with HierarchicalClusterReference (the pre-acceleration oracle)
// and HierarchicalCluster (heap + rep kd-tree + batched kernel), then
// re-runs the accelerated path sharded over a BatchExecutor at each
// requested worker count on the headline configuration. Every accelerated
// run is checked against the reference: labels must match exactly and the
// FNV-1a hash of the representative bytes (and centroid bytes) must be
// identical — the two implementations promise bitwise-equal output, so any
// mismatch is a correctness bug and the bench exits nonzero.
//
// Output: a table on stdout plus machine-readable JSON in the shape of
// BENCH_micro_kde.json (BENCH_micro_cluster.json, override with out=).
//
//   micro_cluster [sizes=500,2000,8000] [dims=2,5] [reps=2]
//                 [threads=2,4] [out=BENCH_micro_cluster.json]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/hierarchical.h"
#include "data/point_set.h"
#include "parallel/batch_executor.h"
#include "tools/flags.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

struct SeriesResult {
  std::string series;
  int64_t n = 0;
  int dim = 0;
  int threads = 0;  // 0 = no executor (plain sequential call)
  double seconds = 0.0;
  double merges_per_sec = 0.0;
  double speedup_vs_reference = 0.0;
  int64_t mismatches = 0;
};

// Gaussian blobs plus uniform noise, matching the frozen-golden generator's
// shape (noise exercises the elimination phases).
dbs::data::PointSet MakeData(int64_t n, int dim, uint64_t seed) {
  dbs::Rng rng(seed);
  dbs::data::PointSet ps(dim);
  ps.Reserve(n);
  const int kBlobs = 10;
  const int64_t noise = n / 10;
  const int64_t per_blob = (n - noise) / kBlobs;
  std::vector<double> p(static_cast<size_t>(dim));
  for (int b = 0; b < kBlobs; ++b) {
    std::vector<double> center(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) center[j] = rng.NextDouble(0.1, 0.9);
    for (int64_t i = 0; i < per_blob; ++i) {
      for (int j = 0; j < dim; ++j) {
        p[static_cast<size_t>(j)] =
            rng.NextGaussian(center[static_cast<size_t>(j)], 0.02);
      }
      ps.Append(p);
    }
  }
  while (ps.size() < n) {
    for (int j = 0; j < dim; ++j) p[static_cast<size_t>(j)] = rng.NextDouble();
    ps.Append(p);
  }
  return ps;
}

uint64_t Fnv1a(const void* data, size_t len, uint64_t h) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Hash of everything the caller can observe: labels, member order, centroid
// bits and representative bits.
uint64_t HashClustering(const dbs::cluster::ClusteringResult& r) {
  uint64_t h = 1469598103934665603ull;
  h = Fnv1a(r.labels.data(), r.labels.size() * sizeof(int32_t), h);
  for (const dbs::cluster::Cluster& c : r.clusters) {
    int64_t count = static_cast<int64_t>(c.members.size());
    h = Fnv1a(&count, sizeof(count), h);
    h = Fnv1a(c.members.data(), c.members.size() * sizeof(int64_t), h);
    h = Fnv1a(c.centroid.data(), c.centroid.size() * sizeof(double), h);
    const std::vector<double>& flat = c.representatives.flat();
    h = Fnv1a(flat.data(), flat.size() * sizeof(double), h);
  }
  return h;
}

// Label mismatches plus one for a representative/centroid hash divergence.
int64_t CountMismatches(const dbs::cluster::ClusteringResult& got,
                        const dbs::cluster::ClusteringResult& want) {
  int64_t bad = 0;
  if (got.labels.size() != want.labels.size()) {
    bad += static_cast<int64_t>(got.labels.size() + want.labels.size());
  } else {
    for (size_t i = 0; i < got.labels.size(); ++i) {
      if (got.labels[i] != want.labels[i]) ++bad;
    }
  }
  if (HashClustering(got) != HashClustering(want)) ++bad;
  return bad;
}

template <typename Body>
double TimeBest(int reps, Body&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Clock::time_point start = Clock::now();
    body();
    double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

bool ParseIntList(const std::string& spec, std::vector<int64_t>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int64_t value = std::atoll(spec.substr(pos, comma - pos).c_str());
    if (value <= 0) return false;
    out->push_back(value);
    pos = comma + 1;
  }
  return !out->empty();
}

void PrintRow(const SeriesResult& r) {
  std::printf("%12s %7lld %4d %8d %10.4f %14.0f %9.2fx %10lld\n",
              r.series.c_str(), static_cast<long long>(r.n), r.dim,
              r.threads, r.seconds, r.merges_per_sec,
              r.speedup_vs_reference, static_cast<long long>(r.mismatches));
}

void WriteJson(const std::string& path, int reps,
               const std::vector<SeriesResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"micro_cluster\",\n"
               "  \"reps\": %d,\n  \"results\": [\n",
               reps);
  for (size_t i = 0; i < results.size(); ++i) {
    const SeriesResult& r = results[i];
    std::fprintf(f,
                 "    {\"series\": \"%s\", \"n\": %lld, \"dim\": %d, "
                 "\"threads\": %d, \"seconds\": %.6f, "
                 "\"merges_per_sec\": %.1f, "
                 "\"speedup_vs_reference\": %.3f, \"mismatches\": %lld}%s\n",
                 r.series.c_str(), static_cast<long long>(r.n), r.dim,
                 r.threads, r.seconds, r.merges_per_sec,
                 r.speedup_vs_reference,
                 static_cast<long long>(r.mismatches),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  std::string sizes_spec = flags.GetString("sizes", "500,2000,8000");
  std::string dims_spec = flags.GetString("dims", "2,5");
  int reps = static_cast<int>(flags.GetInt("reps", 2));
  std::string threads_spec = flags.GetString("threads", "2,4");
  std::string out = flags.GetString("out", "BENCH_micro_cluster.json");
  if (!flags.AllKnown()) return 2;
  DBS_CHECK(reps > 0);
  std::vector<int64_t> sizes;
  std::vector<int64_t> dims;
  std::vector<int64_t> thread_counts;
  if (!ParseIntList(sizes_spec, &sizes) || !ParseIntList(dims_spec, &dims) ||
      !ParseIntList(threads_spec, &thread_counts)) {
    std::fprintf(stderr, "bad sizes=/dims=/threads= list\n");
    return 2;
  }
  const int64_t headline_n = sizes.back();

  std::printf("micro_cluster: best of %d reps, default options (k=10)\n\n",
              reps);
  std::printf("%12s %7s %4s %8s %10s %14s %10s %10s\n", "series", "n",
              "dim", "threads", "seconds", "merges_per_sec", "speedup",
              "mismatch");

  std::vector<SeriesResult> results;
  for (int64_t dim64 : dims) {
    int dim = static_cast<int>(dim64);
    for (int64_t n : sizes) {
      dbs::data::PointSet ps =
          MakeData(n, dim, 0xc10c5ull + static_cast<uint64_t>(n + dim));
      dbs::cluster::HierarchicalOptions opts;  // paper defaults, k=10

      auto add = [&](const std::string& series, int threads, double seconds,
                     double ref_seconds, int64_t mismatches) {
        SeriesResult r;
        r.series = series;
        r.n = n;
        r.dim = dim;
        r.threads = threads;
        r.seconds = seconds;
        r.merges_per_sec = seconds > 0
                               ? static_cast<double>(n - opts.num_clusters) /
                                     seconds
                               : 0.0;
        r.speedup_vs_reference = seconds > 0 ? ref_seconds / seconds : 0.0;
        r.mismatches = mismatches;
        PrintRow(r);
        results.push_back(r);
      };

      dbs::cluster::ClusteringResult ref;
      double ref_seconds = TimeBest(reps, [&] {
        auto r = dbs::cluster::HierarchicalClusterReference(ps, opts);
        DBS_CHECK(r.ok());
        ref = std::move(r).value();
      });
      add("reference", 0, ref_seconds, ref_seconds, 0);

      dbs::cluster::ClusteringResult got;
      double fast_seconds = TimeBest(reps, [&] {
        auto r = dbs::cluster::HierarchicalCluster(ps, opts);
        DBS_CHECK(r.ok());
        got = std::move(r).value();
      });
      add("accelerated", 0, fast_seconds, ref_seconds,
          CountMismatches(got, ref));

      // Thread-scaling series on the headline configuration.
      if (n == headline_n) {
        for (int64_t threads : thread_counts) {
          dbs::parallel::BatchExecutorOptions pool;
          pool.num_workers = static_cast<int>(threads);
          pool.queue_capacity = 4096;
          dbs::parallel::BatchExecutor executor(pool);
          dbs::cluster::HierarchicalOptions popts = opts;
          popts.executor = &executor;
          double seconds = TimeBest(reps, [&] {
            auto r = dbs::cluster::HierarchicalCluster(ps, popts);
            DBS_CHECK(r.ok());
            got = std::move(r).value();
          });
          executor.Shutdown();
          add("accelerated", static_cast<int>(threads), seconds,
              ref_seconds, CountMismatches(got, ref));
        }
      }
    }
  }

  int64_t total_mismatches = 0;
  for (const SeriesResult& r : results) total_mismatches += r.mismatches;
  if (total_mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld accelerated results differ from reference\n",
                 static_cast<long long>(total_mismatches));
  }
  if (!out.empty()) WriteJson(out, reps, results);
  return total_mismatches > 0 ? 1 : 0;
}
