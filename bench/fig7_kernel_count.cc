// Figure 7 — "Varying the number of Kernels".
//
// Paper setup: two 100k datasets — DS1 with 10 equal-size clusters plus 50%
// noise (clustered with a = 1.0) and DS2 with 10 clusters of very different
// sizes plus 20% noise (a = -0.25); sample size 500; number of kernels
// swept from 100 to 1200.
//
// Paper result to reproduce (shape): quality improves steeply as kernels
// grow from ~100, then flattens; DS2 (variable densities) depends on the
// estimate's accuracy more than DS1.

#include <cstdio>

#include "bench_util.h"
#include "eval/report.h"

namespace {

using dbs::bench::RunBiasedCure;

constexpr int kClusters = 10;
constexpr int64_t kClusterPoints = 100000;
constexpr int64_t kSampleSize = 500;
constexpr int kTrials = 3;

dbs::synth::ClusteredDataset MakeDs1(uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.num_clusters = kClusters;
  opts.num_cluster_points = kClusterPoints;
  opts.size_ratio = 1.0;        // equal sizes
  opts.noise_multiplier = 0.5;  // 50% noise
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds).value();
}

dbs::synth::ClusteredDataset MakeDs2(uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.num_clusters = kClusters;
  opts.num_cluster_points = kClusterPoints;
  opts.size_ratio = 10.0;       // very different sizes
  opts.noise_multiplier = 0.2;  // 20% noise
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds).value();
}

}  // namespace

int main() {
  std::printf("Figure 7: clusters found (of %d) vs number of kernels; "
              "500-point samples, %d trials/cell\n", kClusters, kTrials);
  dbs::eval::Table table({"kernels", "DS1-50% noise (a=1.0)",
                          "DS2-20% noise (a=-0.25)"});
  // The paper sweeps 100..1200; this implementation's estimate is already
  // accurate at 100 kernels, so the sweep extends below to expose the
  // rising edge of the quality curve.
  for (int64_t kernels : {10LL, 25LL, 50LL, 100LL, 200LL, 400LL, 800LL,
                          1200LL}) {
    double ds1_sum = 0;
    double ds2_sum = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      uint64_t seed = 4000 * trial + 13;
      auto ds1 = MakeDs1(400 + trial);
      ds1_sum += RunBiasedCure(ds1.points, ds1.truth, /*a=*/1.0, kSampleSize,
                               kClusters, kernels, seed);
      auto ds2 = MakeDs2(500 + trial);
      ds2_sum += RunBiasedCure(ds2.points, ds2.truth, /*a=*/-0.25,
                               kSampleSize, kClusters, kernels, seed);
    }
    table.AddRow({dbs::eval::Table::Int(kernels),
                  dbs::eval::Table::Num(ds1_sum / kTrials, 1),
                  dbs::eval::Table::Num(ds2_sum / kTrials, 1)});
  }
  table.Print("Fig 7: varying the number of kernels");
  return 0;
}
