// Figure 6 — "Varying Noise in 3-dimensions, sample size 2%", the a = 0.5
// companion to Fig 4(c): a milder dense-region bias that still shields the
// sample from noise.
//
// Paper result to reproduce (shape): results similar to the a = 1 case —
// biased sampling stays near 10 found clusters across the noise sweep
// while uniform sampling collapses.

#include <cstdio>

#include "bench_util.h"
#include "eval/report.h"

namespace {

using dbs::bench::RunBiasedCure;
using dbs::bench::RunBirchAndMatch;
using dbs::bench::RunUniformCure;
using dbs::bench::SampleBytes;

constexpr int kClusters = 10;
constexpr int64_t kClusterPoints = 100000;
constexpr int kTrials = 2;

}  // namespace

int main() {
  std::printf("Figure 6: 3 dims, sample 2%%, biased exponent a = 0.5; "
              "%d trials/cell\n", kTrials);
  dbs::eval::Table table({"noise fn%", "Biased a=0.5", "Uniform/CURE",
                          "BIRCH"});
  for (double fn : {0.05, 0.2, 0.4, 0.6, 0.7, 0.8}) {
    double sums[3] = {0, 0, 0};
    for (int trial = 0; trial < kTrials; ++trial) {
      dbs::synth::ClusteredDatasetOptions opts;
      opts.dim = 3;
      opts.num_clusters = kClusters;
      opts.num_cluster_points = kClusterPoints;
      opts.size_ratio = 3.0;
      opts.noise_multiplier = fn;
      opts.seed = 300 + trial;
      auto ds = dbs::synth::MakeClusteredDataset(opts);
      DBS_CHECK(ds.ok());
      int64_t sample_size = ds->points.size() / 50;  // 2%
      uint64_t seed = 3000 * trial + 7;
      sums[0] += RunBiasedCure(ds->points, ds->truth, /*a=*/0.5, sample_size,
                               kClusters, /*num_kernels=*/1000, seed);
      sums[1] += RunUniformCure(ds->points, ds->truth, sample_size,
                                kClusters, seed);
      sums[2] += RunBirchAndMatch(ds->points, ds->truth,
                                  SampleBytes(sample_size, 3), kClusters);
    }
    table.AddRow({dbs::eval::Table::Num(fn * 100, 0),
                  dbs::eval::Table::Num(sums[0] / kTrials, 1),
                  dbs::eval::Table::Num(sums[1] / kTrials, 1),
                  dbs::eval::Table::Num(sums[2] / kTrials, 1)});
  }
  table.Print("Fig 6: 3 dims, sample 2%, a = 0.5");
  return 0;
}
