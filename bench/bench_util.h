// Shared pipeline helpers for the figure/table benches.
//
// Every clustering bench compares the same four pipelines the paper does:
//   BS-CURE   density-biased sample (KDE + exponent a) + hierarchical
//   RS-CURE   uniform Bernoulli sample + hierarchical
//   BIRCH     CF-tree over the FULL dataset under a memory budget equal to
//             the sample's size, then global clustering (paper §4.2)
//   GRID      Palmer-Faloutsos grid-biased sample + hierarchical (Fig 5c)
// Each helper returns the number of true clusters found under the paper's
// 90%-of-representatives rule (center-in-cluster for BIRCH).

#ifndef DBS_BENCH_BENCH_UTIL_H_
#define DBS_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "cluster/birch.h"
#include "cluster/hierarchical.h"
#include "core/biased_sampler.h"
#include "core/grid_biased_sampler.h"
#include "density/grid_density.h"
#include "density/kde.h"
#include "eval/cluster_match.h"
#include "sampling/uniform_sampler.h"
#include "synth/generator.h"
#include "util/check.h"

namespace dbs::bench {

// Bytes a sample of `sample_size` points in `dim` dimensions occupies;
// used as BIRCH's memory budget so the comparison is space-fair.
inline int64_t SampleBytes(int64_t sample_size, int dim) {
  return sample_size * static_cast<int64_t>(dim) *
         static_cast<int64_t>(sizeof(double));
}

inline int ClusterSampleAndMatch(const data::PointSet& sample,
                                 const synth::GroundTruth& truth,
                                 int num_clusters) {
  if (sample.size() < 2 * num_clusters) return 0;
  cluster::HierarchicalOptions opts;
  opts.num_clusters = num_clusters;
  auto clustering = cluster::HierarchicalCluster(sample, opts);
  if (!clustering.ok()) return 0;
  return eval::MatchClusters(*clustering, truth).num_found();
}

// BS-CURE: fit KDE (num_kernels), draw a biased sample with exponent `a`,
// cluster, match.
// `density_floor_fraction` <= 0 keeps the sampler default (1e-3 of the
// average density). High-dimensional panels with strongly negative `a`
// raise it to 1.0: compact-support kernels leave coverage holes in 5-D, so
// points in holes would otherwise hit the tiny floor and soak up the whole
// sample; flooring at the average density caps the sparse-region boost at
// the average-vs-dense contrast, which is the contrast the experiment is
// about.
inline int RunBiasedCure(const data::PointSet& points,
                         const synth::GroundTruth& truth, double a,
                         int64_t sample_size, int num_clusters,
                         int64_t num_kernels, uint64_t seed,
                         double bandwidth_scale = 0.0,
                         double density_floor_fraction = 0.0) {
  density::KdeOptions kde_opts;
  kde_opts.num_kernels = num_kernels;
  kde_opts.seed = seed;
  // Bandwidth regime (see DESIGN.md §5): positive exponents need a SHARP
  // estimate (the unimodal normal-reference rule oversmooths clustered
  // data until noise next to clusters reads as dense), while negative
  // exponents need the SMOOTH rule-as-is estimate (oversmoothing
  // compresses the density's dynamic range, which keeps f^a from blowing
  // up on the sparse noise the exponent would otherwise chase).
  // bandwidth_scale = 0 selects that per-regime default.
  kde_opts.bandwidth_scale =
      bandwidth_scale > 0 ? bandwidth_scale : (a >= 0 ? 0.3 : 1.0);
  auto kde = density::Kde::Fit(points, kde_opts);
  DBS_CHECK(kde.ok());
  core::BiasedSamplerOptions sampler_opts;
  sampler_opts.a = a;
  sampler_opts.target_size = sample_size;
  sampler_opts.seed = seed + 1;
  if (density_floor_fraction > 0) {
    sampler_opts.density_floor_fraction = density_floor_fraction;
  }
  auto sample = core::BiasedSampler(sampler_opts).Run(points, *kde);
  DBS_CHECK(sample.ok());
  return ClusterSampleAndMatch(sample->points, truth, num_clusters);
}

// RS-CURE: uniform sample, cluster, match.
inline int RunUniformCure(const data::PointSet& points,
                          const synth::GroundTruth& truth,
                          int64_t sample_size, int num_clusters,
                          uint64_t seed) {
  sampling::BernoulliSampleOptions opts;
  opts.target_size = sample_size;
  opts.seed = seed;
  auto sample = sampling::BernoulliSample(points, opts);
  DBS_CHECK(sample.ok());
  return ClusterSampleAndMatch(*sample, truth, num_clusters);
}

// BIRCH on the entire dataset with memory equal to the sample size.
inline int RunBirchAndMatch(const data::PointSet& points,
                            const synth::GroundTruth& truth,
                            int64_t memory_budget_bytes, int num_clusters) {
  cluster::BirchOptions opts;
  opts.num_clusters = num_clusters;
  opts.tree.page_size_bytes = 1024;
  opts.tree.memory_budget_bytes =
      std::max<int64_t>(memory_budget_bytes, 4 * 1024);
  auto result = cluster::RunBirch(points, opts);
  DBS_CHECK(result.ok());
  return eval::MatchBirchClusters(*result, truth).num_found();
}

// Palmer-Faloutsos grid-biased sampling with exponent e and a 5 MB hash
// budget (the allowance the paper grants it in §4.3).
inline int RunGridCure(const data::PointSet& points,
                       const synth::GroundTruth& truth, double e,
                       int64_t sample_size, int num_clusters,
                       uint64_t seed) {
  density::GridDensityOptions grid_opts;
  grid_opts.cells_per_dim = 64;
  grid_opts.memory_budget_bytes = 5 * 1024 * 1024;
  auto grid = density::GridDensity::Fit(points, grid_opts);
  DBS_CHECK(grid.ok());
  core::GridBiasedSamplerOptions sampler_opts;
  sampler_opts.e = e;
  sampler_opts.target_size = sample_size;
  sampler_opts.seed = seed;
  auto sample = core::GridBiasedSampler(sampler_opts).Run(points, *grid);
  DBS_CHECK(sample.ok());
  return ClusterSampleAndMatch(sample->points, truth, num_clusters);
}

}  // namespace dbs::bench

#endif  // DBS_BENCH_BENCH_UTIL_H_
