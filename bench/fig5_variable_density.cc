// Figure 5 — "Finding clusters of variable density, in the presence of
// noise".
//
// Paper setup: 100k points in 10 clusters whose density varies by a factor
// of 10, plus 10% or 20% noise; the sample size sweeps up to 5% (2.5% in
// 5-D). Negative exponents (a = -0.5, -0.25) oversample the small/sparse
// clusters so they survive into small samples. Series: Biased a=-0.5,
// Biased a=-0.25, Uniform/CURE, BIRCH; panel (c) adds the grid-based
// sampler of [22] with e = -0.5 (5 MB hash table).
//
// Paper result to reproduce (shape): biased sampling with a in (-1, 0)
// finds (nearly) all clusters from much smaller samples than uniform;
// BIRCH misses most small clusters regardless; the grid-based method works
// in low dimensions but falls behind the KDE-based sampler in 5-D.

#include <cstdio>

#include "bench_util.h"
#include "eval/report.h"

namespace {

using dbs::bench::RunBiasedCure;
using dbs::bench::RunBirchAndMatch;
using dbs::bench::RunGridCure;
using dbs::bench::RunUniformCure;
using dbs::bench::SampleBytes;

constexpr int kClusters = 10;
constexpr int64_t kClusterPoints = 100000;
constexpr int kTrials = 2;
constexpr int64_t kKernels = 1000;

dbs::synth::ClusteredDataset MakeData(int dim, double noise, uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.dim = dim;
  opts.num_clusters = kClusters;
  opts.num_cluster_points = kClusterPoints;
  opts.size_ratio = 10.0;  // density varies by a factor of 10
  opts.noise_multiplier = noise;
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds).value();
}

void RunPanel(const char* title, int dim, double noise,
              const std::vector<double>& sample_fractions, bool with_grid) {
  std::vector<std::string> columns{"sample %", "Biased a=-0.5",
                                   "Biased a=-0.25", "Uniform/CURE",
                                   "BIRCH"};
  if (with_grid) columns.push_back("Grid e=-0.5");
  dbs::eval::Table table(columns);

  for (double fraction : sample_fractions) {
    double sums[5] = {0, 0, 0, 0, 0};
    for (int trial = 0; trial < kTrials; ++trial) {
      auto ds = MakeData(dim, noise, 200 + trial);
      int64_t sample_size = static_cast<int64_t>(
          fraction / 100.0 * static_cast<double>(ds.points.size()));
      uint64_t seed = 2000 * trial + 31;
      // In 5-D the negative-exponent runs floor the density at the data-
      // space average (see bench_util.h on coverage holes of compact-
      // support kernels).
      double floor_5d = dim >= 5 ? 1.0 : 0.0;
      sums[0] += RunBiasedCure(ds.points, ds.truth, -0.5, sample_size,
                               kClusters, kKernels, seed,
                               /*bandwidth_scale=*/0.0, floor_5d);
      sums[1] += RunBiasedCure(ds.points, ds.truth, -0.25, sample_size,
                               kClusters, kKernels, seed,
                               /*bandwidth_scale=*/0.0, floor_5d);
      sums[2] += RunUniformCure(ds.points, ds.truth, sample_size, kClusters,
                                seed);
      sums[3] += RunBirchAndMatch(ds.points, ds.truth,
                                  SampleBytes(sample_size, dim), kClusters);
      if (with_grid) {
        sums[4] += RunGridCure(ds.points, ds.truth, -0.5, sample_size,
                               kClusters, seed);
      }
    }
    std::vector<std::string> row{dbs::eval::Table::Num(fraction, 2)};
    for (int s = 0; s < (with_grid ? 5 : 4); ++s) {
      row.push_back(dbs::eval::Table::Num(sums[s] / kTrials, 1));
    }
    table.AddRow(row);
  }
  table.Print(title);
}

}  // namespace

int main() {
  std::printf("Figure 5: clusters found (of %d) vs sample size; cluster "
              "density varies 10x; %d trials/cell\n",
              kClusters, kTrials);
  RunPanel("Fig 5(a): 2 dims, noise 10%", 2, 0.1,
           {0.25, 0.5, 1.0, 2.0, 5.0}, /*with_grid=*/false);
  RunPanel("Fig 5(b): 2 dims, noise 20%", 2, 0.2,
           {0.25, 0.5, 1.0, 2.0, 5.0}, /*with_grid=*/false);
  RunPanel("Fig 5(c): 5 dims, noise 10% (with grid-based [22])", 5, 0.1,
           {0.25, 0.5, 1.0, 2.5}, /*with_grid=*/true);
  return 0;
}
