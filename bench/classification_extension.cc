// Future-work extension (paper §5): density-biased sampling for
// classification / decision-tree construction.
//
// Setup: points belong to heavily imbalanced classes (cluster id = class,
// largest/smallest count ratio 20). A CART tree trained on a small sample
// should recover the full-data decision surface. Uniform samples starve
// the minority classes; sparse-region-biased samples (a = -0.5) keep them
// represented, and Horvitz-Thompson weights keep the induced tree an
// unbiased estimate of the full-data tree.
//
// Series: tree trained on the FULL data (reference), on a uniform sample,
// on a biased a=-0.5 sample with HT weights, and on the same biased sample
// unweighted (ablation: the weights matter, not just the point set).
// Metrics on the full data: overall accuracy and worst-class recall.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "classify/decision_tree.h"
#include "core/biased_sampler.h"
#include "density/kde.h"
#include "eval/report.h"
#include "sampling/uniform_sampler.h"
#include "synth/generator.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

constexpr int kClasses = 8;
constexpr int64_t kPoints = 60000;
constexpr int kTrials = 3;

struct Labeled {
  dbs::data::PointSet points{2};
  std::vector<int32_t> labels;
};

Labeled MakeLabeled(uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.num_clusters = kClasses;
  opts.num_cluster_points = kPoints;
  opts.size_ratio = 50.0;  // heavy class imbalance
  opts.noise_multiplier = 0.0;
  opts.shuffle = true;
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  Labeled out;
  out.points = std::move(ds->points);
  out.labels = std::move(ds->truth.labels);
  return out;
}

struct Metrics {
  double accuracy = 0;
  double worst_recall = 0;
};

Metrics Evaluate(const dbs::classify::DecisionTree& tree,
                 const Labeled& data) {
  Metrics m;
  m.accuracy = tree.Accuracy(data.points, data.labels);
  std::vector<double> recall =
      tree.PerClassRecall(data.points, data.labels, kClasses);
  m.worst_recall = *std::min_element(recall.begin(), recall.end());
  return m;
}

// Gathers the labels of sampled points by matching them back to rows.
// Samples carry coordinates only, so the bench re-labels by lookup in a
// hash of the (unique, double-exact) coordinates.
std::vector<int32_t> LabelsFor(const dbs::data::PointSet& sample,
                               const Labeled& data) {
  // Exact-coordinate map from the (shuffled, but unique w.h.p.) points.
  struct Key {
    double x;
    double y;
    bool operator<(const Key& o) const {
      return x < o.x || (x == o.x && y < o.y);
    }
  };
  std::map<Key, int32_t> lookup;
  for (int64_t i = 0; i < data.points.size(); ++i) {
    lookup[{data.points[i][0], data.points[i][1]}] = data.labels[i];
  }
  std::vector<int32_t> labels;
  labels.reserve(static_cast<size_t>(sample.size()));
  for (int64_t i = 0; i < sample.size(); ++i) {
    auto it = lookup.find({sample[i][0], sample[i][1]});
    DBS_CHECK(it != lookup.end());
    labels.push_back(it->second);
  }
  return labels;
}

}  // namespace

int main() {
  std::printf("Classification extension: CART trees from samples of %lldk "
              "points, %d classes with 50x imbalance, %d trials\n",
              static_cast<long long>(kPoints / 1000), kClasses, kTrials);

  dbs::eval::Table table({"sample", "full-data acc/minrec",
                          "uniform acc/minrec", "biased+wts acc/minrec",
                          "biased unwtd acc/minrec"});
  for (int64_t sample_size : {100LL, 200LL, 400LL, 800LL}) {
    Metrics full{};
    Metrics uniform{};
    Metrics biased_weighted{};
    Metrics biased_plain{};
    for (int trial = 0; trial < kTrials; ++trial) {
      Labeled data = MakeLabeled(900 + trial);
      dbs::classify::DecisionTreeOptions tree_opts;

      auto full_tree = dbs::classify::DecisionTree::Train(
          data.points, data.labels, {}, tree_opts);
      DBS_CHECK(full_tree.ok());
      Metrics m = Evaluate(*full_tree, data);
      full.accuracy += m.accuracy;
      full.worst_recall += m.worst_recall;

      uint64_t seed = 9500 + 31 * trial;
      // Uniform sample.
      dbs::sampling::BernoulliSampleOptions uni_opts;
      uni_opts.target_size = sample_size;
      uni_opts.seed = seed;
      auto uni = dbs::sampling::BernoulliSample(data.points, uni_opts);
      DBS_CHECK(uni.ok());
      auto uni_tree = dbs::classify::DecisionTree::Train(
          *uni, LabelsFor(*uni, data), {}, tree_opts);
      DBS_CHECK(uni_tree.ok());
      m = Evaluate(*uni_tree, data);
      uniform.accuracy += m.accuracy;
      uniform.worst_recall += m.worst_recall;

      // Biased a=-0.5 sample (smooth-bandwidth regime).
      dbs::density::KdeOptions kde_opts;
      kde_opts.num_kernels = 1000;
      kde_opts.seed = seed;
      auto kde = dbs::density::Kde::Fit(data.points, kde_opts);
      DBS_CHECK(kde.ok());
      dbs::core::BiasedSamplerOptions biased_opts;
      biased_opts.a = -0.5;
      biased_opts.target_size = sample_size;
      biased_opts.seed = seed + 1;
      auto biased =
          dbs::core::BiasedSampler(biased_opts).Run(data.points, *kde);
      DBS_CHECK(biased.ok());
      std::vector<int32_t> biased_labels = LabelsFor(biased->points, data);

      auto weighted_tree = dbs::classify::DecisionTree::Train(
          biased->points, biased_labels, biased->Weights(), tree_opts);
      DBS_CHECK(weighted_tree.ok());
      m = Evaluate(*weighted_tree, data);
      biased_weighted.accuracy += m.accuracy;
      biased_weighted.worst_recall += m.worst_recall;

      auto plain_tree = dbs::classify::DecisionTree::Train(
          biased->points, biased_labels, {}, tree_opts);
      DBS_CHECK(plain_tree.ok());
      m = Evaluate(*plain_tree, data);
      biased_plain.accuracy += m.accuracy;
      biased_plain.worst_recall += m.worst_recall;
    }
    auto cell = [&](const Metrics& m) {
      return dbs::eval::Table::Num(m.accuracy / kTrials, 3) + " / " +
             dbs::eval::Table::Num(m.worst_recall / kTrials, 2);
    };
    table.AddRow({dbs::eval::Table::Int(sample_size), cell(full),
                  cell(uniform), cell(biased_weighted),
                  cell(biased_plain)});
  }
  table.Print("accuracy / worst-class recall on the full data");
  std::printf(
      "\nExpected shape: at small samples the uniform tree loses the\n"
      "minority classes (worst-class recall near 0) while the biased\n"
      "sample keeps them learnable; the HT weights keep overall accuracy\n"
      "close to the full-data tree.\n");
  return 0;
}
