// Serving throughput — requests/sec and latency percentiles of the dbsd
// request path as the worker pool grows.
//
// For each worker count (default 1/2/4/8) the bench stands up the full
// served stack — registry, batch executor, loopback TCP server — and
// hammers it with concurrent clients issuing density batches, the
// subsystem's bread-and-butter request. Reported per worker count:
// requests/sec and client-observed p50/p99 latency. Output is a
// human-readable table on stdout plus machine-readable JSON
// (BENCH_serve_throughput.json, override with out=).
//
//   serve_throughput [clients=4] [batches=40] [points=2000] [kernels=64]
//                    [workers=1,2,4,8] [out=BENCH_serve_throughput.json]

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "density/kde.h"
#include "serve/batch_executor.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "synth/generator.h"
#include "tools/flags.h"
#include "util/check.h"
#include "util/stats.h"

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerResult {
  int workers = 0;
  int64_t requests = 0;
  int64_t failed = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double points_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

dbs::data::PointSet MakeData(int64_t n, uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.num_clusters = 5;
  opts.num_cluster_points = n;
  opts.noise_multiplier = 0.1;
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds)->points;
}

WorkerResult RunOne(int workers, int clients, int batches_per_client,
                    const std::shared_ptr<const dbs::density::Kde>& model,
                    const dbs::data::PointSet& queries) {
  dbs::serve::ModelRegistry registry;
  DBS_CHECK(registry.Put("est", model, "kde").ok());

  dbs::serve::BatchExecutorOptions pool;
  pool.num_workers = workers;
  pool.queue_capacity = 4096;
  dbs::serve::BatchExecutor executor(pool);
  dbs::serve::ModelService service(&registry, &executor);
  auto server = dbs::serve::Server::Start(&service, dbs::serve::ServerOptions{});
  DBS_CHECK(server.ok());

  std::vector<std::vector<double>> latencies(clients);
  std::vector<int64_t> failures(clients, 0);
  std::vector<std::thread> threads;
  Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = dbs::serve::Client::Connect((*server)->port());
      DBS_CHECK(client.ok());
      latencies[c].reserve(batches_per_client);
      for (int b = 0; b < batches_per_client; ++b) {
        dbs::serve::DensityBatchRequest request;
        request.model = "est";
        request.points = queries;
        Clock::time_point sent = Clock::now();
        auto response = client->Density(request);
        double us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                              sent)
                        .count();
        if (response.ok()) {
          latencies[c].push_back(us);
        } else {
          ++failures[c];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  (*server)->Stop();
  executor.Shutdown();

  WorkerResult result;
  result.workers = workers;
  result.seconds = seconds;
  std::vector<double> all;
  for (int c = 0; c < clients; ++c) {
    result.requests += static_cast<int64_t>(latencies[c].size());
    result.failed += failures[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  if (seconds > 0) {
    result.requests_per_sec = static_cast<double>(result.requests) / seconds;
    result.points_per_sec =
        result.requests_per_sec * static_cast<double>(queries.size());
  }
  if (!all.empty()) {
    result.p50_us = dbs::Percentile(all, 0.5);
    result.p99_us = dbs::Percentile(all, 0.99);
  }
  return result;
}

bool ParseWorkerList(const std::string& spec, std::vector<int>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int value = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (value <= 0) return false;
    out->push_back(value);
    pos = comma + 1;
  }
  return !out->empty();
}

void WriteJson(const std::string& path, int clients, int batches,
               int64_t points, const std::vector<WorkerResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serve_throughput\",\n"
               "  \"clients\": %d,\n  \"batches_per_client\": %d,\n"
               "  \"points_per_batch\": %lld,\n  \"results\": [\n",
               clients, batches, static_cast<long long>(points));
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkerResult& r = results[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"requests\": %lld, "
                 "\"failed\": %lld, \"seconds\": %.6f, "
                 "\"requests_per_sec\": %.2f, \"points_per_sec\": %.1f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                 r.workers, static_cast<long long>(r.requests),
                 static_cast<long long>(r.failed), r.seconds,
                 r.requests_per_sec, r.points_per_sec, r.p50_us, r.p99_us,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  int clients = static_cast<int>(flags.GetInt("clients", 4));
  int batches = static_cast<int>(flags.GetInt("batches", 40));
  int64_t points = flags.GetInt("points", 2000);
  int64_t kernels = flags.GetInt("kernels", 64);
  std::string workers_spec = flags.GetString("workers", "1,2,4,8");
  std::string out = flags.GetString("out", "BENCH_serve_throughput.json");
  if (!flags.AllKnown()) return 2;
  std::vector<int> worker_counts;
  if (!ParseWorkerList(workers_spec, &worker_counts)) {
    std::fprintf(stderr, "bad workers= list '%s'\n", workers_spec.c_str());
    return 2;
  }

  dbs::data::PointSet train = MakeData(20000, 23);
  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = kernels;
  kde_opts.seed = 7;
  auto kde = dbs::density::Kde::Fit(train, kde_opts);
  DBS_CHECK(kde.ok());
  auto model = std::make_shared<const dbs::density::Kde>(
      std::move(kde).value());
  dbs::data::PointSet queries = MakeData(points, 99);

  std::printf("serve_throughput: %d clients x %d density batches of %lld "
              "points (%lld kernels)\n\n",
              clients, batches, static_cast<long long>(queries.size()),
              static_cast<long long>(kernels));
  std::printf("%8s %10s %8s %12s %14s %10s %10s\n", "workers", "requests",
              "failed", "req/s", "points/s", "p50_us", "p99_us");
  std::vector<WorkerResult> results;
  for (int workers : worker_counts) {
    WorkerResult result = RunOne(workers, clients, batches, model, queries);
    std::printf("%8d %10lld %8lld %12.1f %14.0f %10.1f %10.1f\n",
                result.workers, static_cast<long long>(result.requests),
                static_cast<long long>(result.failed),
                result.requests_per_sec, result.points_per_sec, result.p50_us,
                result.p99_us);
    results.push_back(result);
  }
  if (!out.empty()) WriteJson(out, clients, batches, queries.size(), results);
  return 0;
}
