// Serving throughput — requests/sec and latency percentiles of the dbsd
// request path per transport as the worker pool grows.
//
// For each (transport, worker count) pair the bench stands up the full
// served stack — registry, batch executor, loopback TCP server with the
// shared-memory transport enabled — and hammers it with concurrent clients
// issuing density batches, the subsystem's bread-and-butter request.
// Clients drive the raw frame stream (Submit/ReadResponseFrame) with up to
// pipeline=N requests in flight, and check EVERY response against the
// expected frame bytes (computed once through the same dispatch path the
// server uses): the transports must be bitwise identical, and the bench
// exits nonzero on any mismatch. Reported per row: requests/sec and
// client-observed p50/p99 latency. Output is a human-readable table on
// stdout plus machine-readable JSON (BENCH_serve_throughput.json, override
// with out=).
//
//   serve_throughput [clients=4] [batches=40] [points=2000] [kernels=64]
//                    [workers=1,2,4,8] [transports=tcp,shm] [pipeline=1]
//                    [out=BENCH_serve_throughput.json]

#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "density/kde.h"
#include "serve/batch_executor.h"
#include "serve/client.h"
#include "serve/dispatch.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "synth/generator.h"
#include "tools/flags.h"
#include "util/check.h"
#include "util/stats.h"

namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
  std::string transport;
  int workers = 0;
  int pipeline = 1;
  int64_t requests = 0;
  int64_t failed = 0;
  int64_t mismatched = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double points_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

dbs::data::PointSet MakeData(int64_t n, uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.num_clusters = 5;
  opts.num_cluster_points = n;
  opts.noise_multiplier = 0.1;
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds)->points;
}

RunResult RunOne(const std::string& transport, int workers, int clients,
                 int batches_per_client, int pipeline,
                 const std::shared_ptr<const dbs::density::Kde>& model,
                 const std::vector<uint8_t>& request_bytes,
                 const std::vector<uint8_t>& expected_response_bytes,
                 int64_t points_per_batch) {
  dbs::serve::ModelRegistry registry;
  DBS_CHECK(registry.Put("est", model, "kde").ok());

  dbs::serve::BatchExecutorOptions pool;
  pool.num_workers = workers;
  pool.queue_capacity = 4096;
  dbs::serve::BatchExecutor executor(pool);
  dbs::serve::ModelService service(&registry, &executor);
  auto server =
      dbs::serve::Server::Start(&service, dbs::serve::ServerOptions{});
  DBS_CHECK(server.ok());

  // The already-encoded request frame is replayed verbatim, so the per
  // request client cost is pure transport.
  size_t header = 0;
  auto request_frame = dbs::serve::DecodeFrame(
      request_bytes.data(), request_bytes.size(), &header);
  DBS_CHECK(request_frame.ok());

  std::vector<std::vector<double>> latencies(clients);
  std::vector<int64_t> failures(clients, 0);
  std::vector<int64_t> mismatches(clients, 0);
  std::vector<std::thread> threads;
  Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      dbs::serve::ClientOptions opts;
      if (transport == "shm") {
        opts.transport = dbs::serve::TransportKind::kShm;
        // Measuring TCP while labeled shm would be worse than failing.
        opts.shm_fallback_to_tcp = false;
      }
      auto client = dbs::serve::Client::Connect((*server)->port(), opts);
      DBS_CHECK(client.ok());
      latencies[c].reserve(batches_per_client);
      std::deque<Clock::time_point> sent;
      int submitted = 0;
      int received = 0;
      while (received < batches_per_client) {
        while (submitted < batches_per_client &&
               submitted - received < pipeline) {
          sent.push_back(Clock::now());
          dbs::Status pushed = client->Submit(request_frame->type,
                                              request_frame->payload);
          if (!pushed.ok()) {
            failures[c] += batches_per_client - received;
            return;
          }
          ++submitted;
        }
        auto response = client->ReadResponseFrame();
        if (!response.ok()) {
          failures[c] += batches_per_client - received;
          return;
        }
        double us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                              sent.front())
                        .count();
        sent.pop_front();
        latencies[c].push_back(us);
        if (dbs::serve::EncodeFrame(response->type, response->payload) !=
            expected_response_bytes) {
          ++mismatches[c];
        }
        ++received;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  (*server)->Stop();
  executor.Shutdown();

  RunResult result;
  result.transport = transport;
  result.workers = workers;
  result.pipeline = pipeline;
  result.seconds = seconds;
  std::vector<double> all;
  for (int c = 0; c < clients; ++c) {
    result.requests += static_cast<int64_t>(latencies[c].size());
    result.failed += failures[c];
    result.mismatched += mismatches[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  if (seconds > 0) {
    result.requests_per_sec = static_cast<double>(result.requests) / seconds;
    result.points_per_sec =
        result.requests_per_sec * static_cast<double>(points_per_batch);
  }
  if (!all.empty()) {
    result.p50_us = dbs::Percentile(all, 0.5);
    result.p99_us = dbs::Percentile(all, 0.99);
  }
  return result;
}

bool ParseWorkerList(const std::string& spec, std::vector<int>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int value = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (value <= 0) return false;
    out->push_back(value);
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseTransportList(const std::string& spec,
                        std::vector<std::string>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string token = spec.substr(pos, comma - pos);
    if (token != "tcp" && token != "shm") return false;
    out->push_back(std::move(token));
    pos = comma + 1;
  }
  return !out->empty();
}

void WriteJson(const std::string& path, int clients, int batches,
               int64_t points, const std::vector<RunResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serve_throughput\",\n"
               "  \"clients\": %d,\n  \"batches_per_client\": %d,\n"
               "  \"points_per_batch\": %lld,\n  \"results\": [\n",
               clients, batches, static_cast<long long>(points));
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(f,
                 "    {\"transport\": \"%s\", \"workers\": %d, "
                 "\"pipeline\": %d, \"requests\": %lld, "
                 "\"failed\": %lld, \"mismatched\": %lld, "
                 "\"seconds\": %.6f, "
                 "\"requests_per_sec\": %.2f, \"points_per_sec\": %.1f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                 r.transport.c_str(), r.workers, r.pipeline,
                 static_cast<long long>(r.requests),
                 static_cast<long long>(r.failed),
                 static_cast<long long>(r.mismatched), r.seconds,
                 r.requests_per_sec, r.points_per_sec, r.p50_us, r.p99_us,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  dbs::tools::Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  int clients = static_cast<int>(flags.GetInt("clients", 4));
  int batches = static_cast<int>(flags.GetInt("batches", 40));
  int64_t points = flags.GetInt("points", 2000);
  int64_t kernels = flags.GetInt("kernels", 64);
  std::string workers_spec = flags.GetString("workers", "1,2,4,8");
  std::string transports_spec = flags.GetString("transports", "tcp,shm");
  int pipeline = static_cast<int>(flags.GetInt("pipeline", 1));
  std::string out = flags.GetString("out", "BENCH_serve_throughput.json");
  if (!flags.AllKnown()) return 2;
  std::vector<int> worker_counts;
  if (!ParseWorkerList(workers_spec, &worker_counts)) {
    std::fprintf(stderr, "bad workers= list '%s'\n", workers_spec.c_str());
    return 2;
  }
  std::vector<std::string> transports;
  if (!ParseTransportList(transports_spec, &transports)) {
    std::fprintf(stderr, "bad transports= list '%s'\n",
                 transports_spec.c_str());
    return 2;
  }
  if (pipeline < 1) {
    std::fprintf(stderr, "pipeline must be at least 1\n");
    return 2;
  }

  dbs::data::PointSet train = MakeData(20000, 23);
  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = kernels;
  kde_opts.seed = 7;
  auto kde = dbs::density::Kde::Fit(train, kde_opts);
  DBS_CHECK(kde.ok());
  auto model = std::make_shared<const dbs::density::Kde>(
      std::move(kde).value());
  dbs::data::PointSet queries = MakeData(points, 99);

  // The ground-truth response frame, computed through the same dispatch
  // path the server runs. Every response from every transport must match
  // these bytes exactly — any drift is a transport bug, not noise.
  dbs::serve::DensityBatchRequest request;
  request.model = "est";
  request.points = queries;
  std::vector<uint8_t> request_bytes = dbs::serve::EncodeFrame(
      dbs::serve::MessageType::kDensityRequest,
      dbs::serve::EncodeDensityRequest(request));
  std::vector<uint8_t> expected_bytes;
  {
    dbs::serve::ModelRegistry registry;
    DBS_CHECK(registry.Put("est", model, "kde").ok());
    dbs::serve::BatchExecutorOptions pool;
    pool.num_workers = 1;
    dbs::serve::BatchExecutor executor(pool);
    dbs::serve::ModelService service(&registry, &executor);
    size_t consumed = 0;
    auto frame = dbs::serve::DecodeFrame(request_bytes.data(),
                                         request_bytes.size(), &consumed);
    DBS_CHECK(frame.ok());
    dbs::serve::DispatchResult reference =
        dbs::serve::DispatchFrame(&service, *frame);
    DBS_CHECK(reference.response.type ==
              dbs::serve::MessageType::kDensityResponse);
    expected_bytes = dbs::serve::EncodeFrame(reference.response.type,
                                             reference.response.payload);
    executor.Shutdown();
  }

  std::printf("serve_throughput: %d clients x %d density batches of %lld "
              "points (%lld kernels, pipeline %d)\n\n",
              clients, batches, static_cast<long long>(queries.size()),
              static_cast<long long>(kernels), pipeline);
  std::printf("%6s %8s %10s %8s %9s %12s %14s %10s %10s\n", "trans",
              "workers", "requests", "failed", "mismatch", "req/s",
              "points/s", "p50_us", "p99_us");
  std::vector<RunResult> results;
  int64_t total_mismatched = 0;
  int64_t total_failed = 0;
  for (const std::string& transport : transports) {
    for (int workers : worker_counts) {
      RunResult result =
          RunOne(transport, workers, clients, batches, pipeline, model,
                 request_bytes, expected_bytes, queries.size());
      std::printf("%6s %8d %10lld %8lld %9lld %12.1f %14.0f %10.1f %10.1f\n",
                  result.transport.c_str(), result.workers,
                  static_cast<long long>(result.requests),
                  static_cast<long long>(result.failed),
                  static_cast<long long>(result.mismatched),
                  result.requests_per_sec, result.points_per_sec,
                  result.p50_us, result.p99_us);
      total_mismatched += result.mismatched;
      total_failed += result.failed;
      results.push_back(result);
    }
  }
  if (!out.empty()) WriteJson(out, clients, batches, queries.size(), results);
  if (total_mismatched > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld response frame(s) differed from the expected "
                 "bytes\n",
                 static_cast<long long>(total_mismatched));
    return 1;
  }
  if (total_failed > 0) {
    std::fprintf(stderr, "FAIL: %lld request(s) failed\n",
                 static_cast<long long>(total_failed));
    return 1;
  }
  return 0;
}
