// Ablations for the design choices DESIGN.md §5 calls out.
//
//   A. One-pass vs two-pass normalizer: how far does the integrated
//      variant's sample size drift from the target, across exponents?
//   B. Bandwidth regime: the per-exponent bandwidth choice (sharp for
//      a > 0, rule-as-is for a < 0) vs using the other regime's setting.
//   C. Density floor: sensitivity of negative-exponent sampling to the
//      floor under noise.
//   D. CURE outlier elimination: clusters found with and without the
//      two-phase elimination, with noise in the sample.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "cluster/hierarchical.h"
#include "eval/report.h"
#include "util/stats.h"

namespace {

using dbs::bench::ClusterSampleAndMatch;

dbs::synth::ClusteredDataset MakeData(double noise, double size_ratio,
                                      uint64_t seed) {
  dbs::synth::ClusteredDatasetOptions opts;
  opts.num_clusters = 10;
  opts.num_cluster_points = 100000;
  opts.size_ratio = size_ratio;
  opts.noise_multiplier = noise;
  opts.seed = seed;
  auto ds = dbs::synth::MakeClusteredDataset(opts);
  DBS_CHECK(ds.ok());
  return std::move(ds).value();
}

void AblateNormalizer() {
  auto ds = MakeData(0.2, 3.0, 81);
  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = 1000;
  auto kde = dbs::density::Kde::Fit(ds.points, kde_opts);
  DBS_CHECK(kde.ok());

  dbs::eval::Table table({"a", "target", "two-pass mean size",
                          "one-pass mean size", "normalizer ratio"});
  for (double a : {-0.5, 0.0, 0.5, 1.0}) {
    dbs::OnlineMoments two_pass_sizes;
    dbs::OnlineMoments one_pass_sizes;
    double ratio = 0;
    for (uint64_t seed = 0; seed < 5; ++seed) {
      dbs::core::BiasedSamplerOptions opts;
      opts.a = a;
      opts.target_size = 1000;
      opts.seed = seed;
      dbs::core::BiasedSampler sampler(opts);
      auto two = sampler.Run(ds.points, *kde);
      auto one = sampler.RunOnePass(ds.points, *kde);
      DBS_CHECK(two.ok());
      DBS_CHECK(one.ok());
      two_pass_sizes.Add(static_cast<double>(two->size()));
      one_pass_sizes.Add(static_cast<double>(one->size()));
      ratio += one->normalizer / two->normalizer;
    }
    table.AddRow({dbs::eval::Table::Num(a, 2), "1000",
                  dbs::eval::Table::Num(two_pass_sizes.mean(), 0),
                  dbs::eval::Table::Num(one_pass_sizes.mean(), 0),
                  dbs::eval::Table::Num(ratio / 5, 3)});
  }
  table.Print("A. one-pass vs two-pass normalizer (estimated k_a vs exact)");
}

void AblateBandwidth() {
  dbs::eval::Table table({"config", "clusters found"});
  // a = 1 under heavy noise: sharp vs rule-as-is bandwidth.
  {
    auto ds = MakeData(0.8, 3.0, 83);
    int64_t sample = ds.points.size() / 50;
    double sharp = 0;
    double smooth = 0;
    for (int t = 0; t < 3; ++t) {
      sharp += dbs::bench::RunBiasedCure(ds.points, ds.truth, 1.0, sample,
                                         10, 1000, 90 + t, 0.3);
      smooth += dbs::bench::RunBiasedCure(ds.points, ds.truth, 1.0, sample,
                                          10, 1000, 90 + t, 1.0);
    }
    table.AddRow({"a=1, 80% noise, bandwidth x0.3 (chosen)",
                  dbs::eval::Table::Num(sharp / 3, 1)});
    table.AddRow({"a=1, 80% noise, bandwidth x1.0",
                  dbs::eval::Table::Num(smooth / 3, 1)});
  }
  // a = -0.5, variable densities: rule-as-is vs sharp bandwidth.
  {
    auto ds = MakeData(0.1, 10.0, 85);
    int64_t sample = ds.points.size() / 200;
    double sharp = 0;
    double smooth = 0;
    for (int t = 0; t < 3; ++t) {
      sharp += dbs::bench::RunBiasedCure(ds.points, ds.truth, -0.5, sample,
                                         10, 1000, 95 + t, 0.3);
      smooth += dbs::bench::RunBiasedCure(ds.points, ds.truth, -0.5, sample,
                                          10, 1000, 95 + t, 1.0);
    }
    table.AddRow({"a=-0.5, 10x densities, bandwidth x1.0 (chosen)",
                  dbs::eval::Table::Num(smooth / 3, 1)});
    table.AddRow({"a=-0.5, 10x densities, bandwidth x0.3",
                  dbs::eval::Table::Num(sharp / 3, 1)});
  }
  table.Print("B. bandwidth regime (the per-exponent choice matters both "
              "ways)");
}

void AblateDensityFloor() {
  auto ds = MakeData(0.1, 10.0, 87);
  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = 1000;
  auto kde = dbs::density::Kde::Fit(ds.points, kde_opts);
  DBS_CHECK(kde.ok());
  dbs::eval::Table table({"floor (x avg density)", "clusters found",
                          "mean sample size"});
  for (double floor : {1e-6, 1e-3, 1e-1, 1.0}) {
    double found = 0;
    dbs::OnlineMoments sizes;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      dbs::core::BiasedSamplerOptions opts;
      opts.a = -0.5;
      opts.target_size = 1000;
      opts.density_floor_fraction = floor;
      opts.seed = seed;
      auto sample = dbs::core::BiasedSampler(opts).Run(ds.points, *kde);
      DBS_CHECK(sample.ok());
      sizes.Add(static_cast<double>(sample->size()));
      found += ClusterSampleAndMatch(sample->points, ds.truth, 10);
    }
    table.AddRow({dbs::eval::Table::Num(floor, 6),
                  dbs::eval::Table::Num(found / 3, 1),
                  dbs::eval::Table::Num(sizes.mean(), 0)});
  }
  table.Print("C. density floor under a=-0.5 with 10% noise (2-D)");
}

void AblateElimination() {
  auto ds = MakeData(0.4, 3.0, 89);
  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = 1000;
  kde_opts.bandwidth_scale = 0.3;
  auto kde = dbs::density::Kde::Fit(ds.points, kde_opts);
  DBS_CHECK(kde.ok());
  dbs::eval::Table table({"pipeline", "clusters found"});
  double with_elim = 0;
  double without_elim = 0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    dbs::core::BiasedSamplerOptions opts;
    opts.a = 1.0;
    opts.target_size = 2000;
    opts.seed = seed;
    auto sample = dbs::core::BiasedSampler(opts).Run(ds.points, *kde);
    DBS_CHECK(sample.ok());
    for (bool eliminate : {true, false}) {
      dbs::cluster::HierarchicalOptions cluster_opts;
      cluster_opts.num_clusters = 10;
      cluster_opts.eliminate_outliers = eliminate;
      auto clustering =
          dbs::cluster::HierarchicalCluster(sample->points, cluster_opts);
      DBS_CHECK(clustering.ok());
      double found =
          dbs::eval::MatchClusters(*clustering, ds.truth).num_found();
      (eliminate ? with_elim : without_elim) += found;
    }
  }
  table.AddRow({"CURE with two-phase outlier elimination",
                dbs::eval::Table::Num(with_elim / 3, 1)});
  table.AddRow({"CURE without elimination",
                dbs::eval::Table::Num(without_elim / 3, 1)});
  table.Print("D. CURE outlier elimination (40% noise, a=1 sample of 2%)");
}

}  // namespace

int main() {
  std::printf("Ablations of the design choices in DESIGN.md section 5\n");
  AblateNormalizer();
  AblateBandwidth();
  AblateDensityFloor();
  AblateElimination();
  return 0;
}
