// Served pipeline: fit once, save the model, serve it over TCP.
//
//   1. Generate a clustered dataset and fit a KDE (the expensive pass).
//   2. Save the model to a .dbsk file — a few KB, not the dataset.
//   3. Stand up the serving stack (registry + executor + loopback server)
//      and register the saved model by name.
//   4. As a client that fits nothing: ask for densities, a density-biased
//      sample and outlier scores over the wire.
//   5. Print the daemon's request stats and shut everything down.
//
// The same stack runs standalone as the `dbsd` daemon with the `dbs_query`
// client; this example wires it up in-process so it is runnable (and
// CI-checkable) without background processes.
//
// Build & run:  ./build/examples/served_pipeline

#include <cstdio>
#include <string>

#include "density/kde.h"
#include "density/kde_io.h"
#include "serve/batch_executor.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "synth/generator.h"

namespace {

int Fail(const dbs::Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. Dataset + KDE fit (the only step that ever sees the raw points).
  dbs::synth::ClusteredDatasetOptions data_opts;
  data_opts.num_clusters = 5;
  data_opts.num_cluster_points = 20000;
  data_opts.noise_multiplier = 0.1;
  data_opts.seed = 42;
  auto dataset = dbs::synth::MakeClusteredDataset(data_opts);
  if (!dataset.ok()) return Fail(dataset.status(), "generator");

  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = 200;
  kde_opts.seed = 1;
  auto kde = dbs::density::Kde::Fit(dataset->points, kde_opts);
  if (!kde.ok()) return Fail(kde.status(), "kde fit");

  // 2. Persist the succinct model.
  const std::string model_path = "served_pipeline_model.dbsk";
  dbs::Status saved = dbs::density::SaveKde(*kde, model_path);
  if (!saved.ok()) return Fail(saved, "save model");
  std::printf("saved %lld-kernel model to %s\n",
              static_cast<long long>(kde->num_kernels()),
              model_path.c_str());

  // 3. The serving stack. Port 0 picks an ephemeral loopback port.
  dbs::serve::ModelRegistry registry;
  dbs::serve::BatchExecutorOptions pool;
  pool.num_workers = 4;
  dbs::serve::BatchExecutor executor(pool);
  dbs::serve::ModelService service(&registry, &executor);
  auto server =
      dbs::serve::Server::Start(&service, dbs::serve::ServerOptions{});
  if (!server.ok()) return Fail(server.status(), "server start");
  std::printf("serving on 127.0.0.1:%u\n", (*server)->port());

  // 4. A client that fits nothing: it registers the saved file and asks
  // questions. (With the standalone daemon this is `dbs_query op=...`.)
  auto client = dbs::serve::Client::Connect((*server)->port());
  if (!client.ok()) return Fail(client.status(), "connect");
  dbs::Status registered = client->RegisterModel("est", model_path);
  if (!registered.ok()) return Fail(registered, "register");

  // Density batch over fresh query points.
  dbs::synth::ClusteredDatasetOptions query_opts = data_opts;
  query_opts.num_cluster_points = 2000;
  query_opts.seed = 99;
  auto queries = dbs::synth::MakeClusteredDataset(query_opts);
  if (!queries.ok()) return Fail(queries.status(), "query generator");

  dbs::serve::DensityBatchRequest density_request;
  density_request.model = "est";
  density_request.points = queries->points;
  auto densities = client->Density(density_request);
  if (!densities.ok()) return Fail(densities.status(), "density");
  double mean = 0;
  for (double f : densities->densities) mean += f;
  mean /= static_cast<double>(densities->densities.size());
  std::printf("density batch: %zu points, mean f = %.4f\n",
              densities->densities.size(), mean);

  // Density-biased sample (a = 0.5) drawn server-side.
  dbs::serve::SampleRequest sample_request;
  sample_request.model = "est";
  sample_request.a = 0.5;
  sample_request.target_size = 500;
  sample_request.seed = 7;
  sample_request.points = queries->points;
  auto sample = client->Sample(sample_request);
  if (!sample.ok()) return Fail(sample.status(), "sample");
  std::printf("biased sample: %lld points (normalizer %.4f, clamped %lld)\n",
              static_cast<long long>(sample->points.size()),
              sample->normalizer,
              static_cast<long long>(sample->clamped_count));

  // Outlier scores: expected neighbors within the ball, N'(O, k).
  dbs::serve::OutlierScoreBatchRequest outlier_request;
  outlier_request.model = "est";
  outlier_request.radius = 0.1;
  outlier_request.max_neighbors = 50;
  outlier_request.points = queries->points;
  auto outliers = client->OutlierScores(outlier_request);
  if (!outliers.ok()) return Fail(outliers.status(), "outlier scores");
  long long flagged = 0;
  for (uint8_t flag : outliers->likely_outlier) flagged += flag;
  std::printf("outlier batch: %zu points scored, %lld likely outliers\n",
              outliers->expected_neighbors.size(), flagged);

  // 5. Stats, then a clean teardown.
  auto stats = client->Stats();
  if (!stats.ok()) return Fail(stats.status(), "stats");
  std::printf("daemon stats:\n");
  for (const auto& row : stats->per_type) {
    std::printf("  %-15s count=%llu points=%llu p50=%.0fus p99=%.0fus\n",
                dbs::serve::RequestTypeName(row.type),
                static_cast<unsigned long long>(row.count),
                static_cast<unsigned long long>(row.points),
                row.latency_p50_us, row.latency_p99_us);
  }

  (*server)->Stop();
  executor.Shutdown();
  std::remove(model_path.c_str());
  std::printf("done\n");
  return 0;
}
