// Scenario: telecom-style usage records with heavy background noise.
//
// The motivating workload of the paper's introduction: a large data
// collection where some datasets contain clusters, and the analyst wants a
// fast approximate answer before committing resources. This example sweeps
// the noise level and compares three ways to summarize the data before
// clustering:
//   * uniform random sample,
//   * density-biased sample with a = 1 (oversample dense regions),
//   * density-biased sample with a = -0.5 (oversample sparse regions —
//     deliberately the wrong tool here, to show the tuning matters).
//
// Build & run:  ./build/examples/noisy_clusters

#include <cstdio>

#include "cluster/hierarchical.h"
#include "core/biased_sampler.h"
#include "density/kde.h"
#include "eval/cluster_match.h"
#include "eval/report.h"
#include "sampling/uniform_sampler.h"
#include "synth/generator.h"

namespace {

int FoundClusters(const dbs::data::PointSet& sample,
                  const dbs::synth::GroundTruth& truth) {
  dbs::cluster::HierarchicalOptions opts;
  opts.num_clusters = truth.num_true_clusters();
  auto clustering = dbs::cluster::HierarchicalCluster(sample, opts);
  if (!clustering.ok()) return 0;
  return dbs::eval::MatchClusters(*clustering, truth).num_found();
}

}  // namespace

int main() {
  const int64_t kClusterPoints = 50000;
  const int64_t kSampleSize = 1000;

  dbs::eval::Table table({"noise%", "uniform", "biased a=1",
                          "biased a=-0.5"});

  for (double noise : {0.1, 0.3, 0.5, 0.8}) {
    dbs::synth::ClusteredDatasetOptions data_opts;
    data_opts.num_clusters = 10;
    data_opts.num_cluster_points = kClusterPoints;
    // Keep cluster extents similar so equal-count clusters have similar
    // densities; the variable-density story is fig5_variable_density's.
    data_opts.min_extent = 0.10;
    data_opts.max_extent = 0.16;
    data_opts.noise_multiplier = noise;
    data_opts.seed = 11;
    auto dataset = dbs::synth::MakeClusteredDataset(data_opts);
    if (!dataset.ok()) {
      std::fprintf(stderr, "generator: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }

    dbs::density::KdeOptions kde_opts;
    kde_opts.num_kernels = 1000;
    // Sharpen the normal-reference bandwidth: clustered data is far from
    // the unimodal shape the rule assumes.
    kde_opts.bandwidth_scale = 0.3;
    auto kde = dbs::density::Kde::Fit(dataset->points, kde_opts);
    if (!kde.ok()) return 1;

    // Uniform baseline.
    dbs::sampling::BernoulliSampleOptions uni_opts;
    uni_opts.target_size = kSampleSize;
    auto uniform = dbs::sampling::BernoulliSample(dataset->points, uni_opts);
    if (!uniform.ok()) return 1;

    // Two biased samples with opposite exponents.
    auto biased_sample = [&](double a) {
      dbs::core::BiasedSamplerOptions opts;
      opts.a = a;
      opts.target_size = kSampleSize;
      dbs::core::BiasedSampler sampler(opts);
      auto s = sampler.Run(dataset->points, *kde);
      DBS_CHECK(s.ok());
      return std::move(s).value();
    };
    auto dense_biased = biased_sample(1.0);
    auto sparse_biased = biased_sample(-0.5);

    table.AddRow({dbs::eval::Table::Num(noise * 100, 0),
                  dbs::eval::Table::Int(FoundClusters(*uniform,
                                                      dataset->truth)),
                  dbs::eval::Table::Int(FoundClusters(dense_biased.points,
                                                      dataset->truth)),
                  dbs::eval::Table::Int(FoundClusters(sparse_biased.points,
                                                      dataset->truth))});
  }

  table.Print("clusters found (out of 10) vs noise, 1000-point samples");
  std::printf(
      "\nTakeaway: with noise, oversampling DENSE regions (a = 1) keeps all\n"
      "clusters findable; uniform sampling degrades, and oversampling\n"
      "sparse regions amplifies the noise instead.\n");
  return 0;
}
