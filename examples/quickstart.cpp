// Quickstart: the full density-biased sampling pipeline in ~60 lines.
//
//   1. Generate a clustered dataset (10 clusters + 20% noise).
//   2. Fit a kernel density estimator in one pass.
//   3. Draw a density-biased sample (a = 1: oversample dense regions).
//   4. Cluster the small sample with the CURE-style hierarchical algorithm.
//   5. Check the found clusters against the generator's ground truth.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/biased_sampler.h"
#include "cluster/hierarchical.h"
#include "density/kde.h"
#include "eval/cluster_match.h"
#include "eval/sample_quality.h"
#include "synth/generator.h"

int main() {
  // 1. A synthetic dataset: 100k points in 10 clusters, plus 20% noise.
  dbs::synth::ClusteredDatasetOptions data_opts;
  data_opts.num_clusters = 10;
  data_opts.num_cluster_points = 100000;
  data_opts.noise_multiplier = 0.2;
  data_opts.seed = 42;
  auto dataset = dbs::synth::MakeClusteredDataset(data_opts);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %lld points, %d true clusters, %lld noise points\n",
              static_cast<long long>(dataset->points.size()),
              dataset->truth.num_true_clusters(),
              static_cast<long long>(dataset->truth.num_noise()));

  // 2. Kernel density estimator: 1000 Epanechnikov kernels, one pass.
  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = 1000;
  kde_opts.seed = 1;
  auto kde = dbs::density::Kde::Fit(dataset->points, kde_opts);
  if (!kde.ok()) {
    std::fprintf(stderr, "kde: %s\n", kde.status().ToString().c_str());
    return 1;
  }
  std::printf("kde: %lld kernels, bandwidth h0 = %.4f\n",
              static_cast<long long>(kde->num_kernels()),
              kde->bandwidths()[0]);

  // 3. Density-biased sample, 2% of the data, oversampling dense regions.
  dbs::core::BiasedSamplerOptions sampler_opts;
  sampler_opts.a = 1.0;
  sampler_opts.target_size = 2000;
  sampler_opts.seed = 7;
  dbs::core::BiasedSampler sampler(sampler_opts);
  auto sample = sampler.Run(dataset->points, *kde);
  if (!sample.ok()) {
    std::fprintf(stderr, "sampler: %s\n",
                 sample.status().ToString().c_str());
    return 1;
  }
  std::printf("sample: %lld points (normalizer k_a = %.3g)\n",
              static_cast<long long>(sample->size()), sample->normalizer);

  // Triage diagnostics straight from the sample, no extra data pass: how
  // much statistical power the weighted sample retains, and how much of
  // the dataset sits in denser-than-average regions (i.e. is there
  // anything here worth clustering at all? pure noise would give ~40%,
  // clustered data well above it).
  std::printf("diagnostics: effective sample size %.0f; %.0f%% of the "
              "dataset mass is denser than the data-space average\n",
              dbs::eval::EffectiveSampleSize(*sample),
              100.0 * dbs::eval::EstimatedClusterMassFraction(
                          *sample, kde->AverageDensity()));

  // 4. Hierarchical clustering on the sample (quadratic, but tiny input).
  dbs::cluster::HierarchicalOptions cluster_opts;
  cluster_opts.num_clusters = 10;
  auto clustering =
      dbs::cluster::HierarchicalCluster(sample->points, cluster_opts);
  if (!clustering.ok()) {
    std::fprintf(stderr, "clustering: %s\n",
                 clustering.status().ToString().c_str());
    return 1;
  }

  // 5. How many of the 10 true clusters did the pipeline recover?
  dbs::eval::MatchResult match =
      dbs::eval::MatchClusters(*clustering, dataset->truth);
  std::printf("found %d of %d true clusters from a %.1f%% sample\n",
              match.num_found(), dataset->truth.num_true_clusters(),
              100.0 * static_cast<double>(sample->size()) /
                  static_cast<double>(dataset->points.size()));
  return 0;
}
