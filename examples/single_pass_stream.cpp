// Scenario: one-pass summarization of an on-disk dataset.
//
// The strictest I/O budget the paper contemplates: the data lives in a
// file too large to revisit, so the density estimate, the normalizer and
// the sample must all come out of ONE streaming pass (§2.2's integrated
// variant, implemented as core::StreamingBiasedSample). The weighted
// sample then drives k-medoids, whose inverse-probability weighting (§3.1)
// keeps the full-data objective unbiased.
//
// Build & run:  ./build/examples/single_pass_stream

#include <cstdio>
#include <string>

#include "cluster/kmedoids.h"
#include "core/streaming_sampler.h"
#include "data/dataset_io.h"
#include "eval/cluster_match.h"
#include "synth/generator.h"

int main() {
  // Stage a dataset file (in production this is the file you were given).
  dbs::synth::ClusteredDatasetOptions data_opts;
  data_opts.num_clusters = 8;
  data_opts.num_cluster_points = 200000;
  data_opts.noise_multiplier = 0.15;
  // One-pass sampling assumes an exchangeable stream (see
  // core/streaming_sampler.h); stage the file in arrival order, not
  // sorted by cluster.
  data_opts.shuffle = true;
  data_opts.seed = 21;
  auto dataset = dbs::synth::MakeClusteredDataset(data_opts);
  if (!dataset.ok()) return 1;
  const std::string path = "/tmp/dbs_stream_example.dbsf";
  if (!dbs::data::WriteDatasetFile(path, dataset->points).ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("staged %lld points to %s\n",
              static_cast<long long>(dataset->points.size()), path.c_str());

  // One streaming pass: estimator, normalizer and sample together.
  auto scan_result = dbs::data::FileScan::Open(path, /*batch_rows=*/8192);
  if (!scan_result.ok()) return 1;
  dbs::data::FileScan& scan = **scan_result;

  dbs::core::StreamingSamplerOptions stream_opts;
  stream_opts.a = 1.0;
  stream_opts.target_size = 2000;
  stream_opts.num_kernels = 1000;
  stream_opts.bandwidth_scale = 0.3;
  stream_opts.seed = 7;
  auto sample = dbs::core::StreamingBiasedSample(scan, stream_opts);
  if (!sample.ok()) {
    std::fprintf(stderr, "sampler: %s\n",
                 sample.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "streamed a %lld-point biased sample in %d pass(es); estimated "
      "dataset size from weights: %.0f\n",
      static_cast<long long>(sample->size()), scan.passes(),
      sample->EstimatedDatasetSize());

  // Weighted k-medoids on the sample.
  dbs::cluster::KMedoidsOptions medoid_opts;
  medoid_opts.num_clusters = 8;
  auto medoids = dbs::cluster::KMedoidsCluster(sample->points,
                                               sample->Weights(),
                                               medoid_opts);
  if (!medoids.ok()) return 1;

  // How many true clusters contain a medoid?
  int hits = 0;
  std::printf("\nmedoids (cluster weight = estimated member count):\n");
  for (size_t c = 0; c < medoids->medoid_indices.size(); ++c) {
    const dbs::cluster::Cluster& cluster =
        medoids->clustering.clusters[c];
    dbs::data::PointView medoid =
        sample->points[medoids->medoid_indices[c]];
    bool inside = false;
    for (const dbs::synth::Region& region : dataset->truth.regions) {
      if (region.ContainsInterior(medoid)) {
        inside = true;
        break;
      }
    }
    if (inside) ++hits;
    std::printf("  (%.3f, %.3f)  weight %.0f  %s\n", medoid[0], medoid[1],
                cluster.weight, inside ? "in a true cluster" : "in noise");
  }
  std::printf("\n%d of %d medoids landed inside true clusters, from one "
              "pass over the file.\n",
              hits, dataset->truth.num_true_clusters());
  std::remove(path.c_str());
  return 0;
}
