// Scenario: fraud-style outlier hunting with parameter exploration.
//
// DB(p, k)-outlier detection needs a radius k and a neighbor bound p, and
// picking them blind is guesswork. The paper's estimator makes exploration
// cheap: ONE pass scores every point's expected neighbor count, so the
// analyst can table the estimated outlier count across a (p, k) grid, pick
// a setting, and only then pay for the verified detection (two passes).
//
// Build & run:  ./build/examples/outlier_hunt

#include <cstdio>

#include "density/kde.h"
#include "eval/report.h"
#include "outlier/exact_detector.h"
#include "outlier/kde_detector.h"
#include "synth/generator.h"
#include "synth/outlier_planting.h"

int main() {
  // Transactions cluster around a handful of behavioral profiles; a few
  // records sit far from everything.
  dbs::synth::ClusteredDatasetOptions data_opts;
  data_opts.num_clusters = 6;
  data_opts.num_cluster_points = 60000;
  data_opts.noise_multiplier = 0.0;
  data_opts.seed = 5;
  auto dataset = dbs::synth::MakeClusteredDataset(data_opts);
  if (!dataset.ok()) return 1;

  dbs::synth::OutlierPlantingOptions plant_opts;
  plant_opts.count = 25;
  plant_opts.min_distance = 0.12;
  plant_opts.domain_lo = {-0.5, -0.5};
  plant_opts.domain_hi = {1.5, 1.5};
  plant_opts.seed = 9;
  auto planted = dbs::synth::PlantOutliers(dataset->points, plant_opts);
  if (!planted.ok()) {
    std::fprintf(stderr, "planting: %s\n",
                 planted.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %lld points with %zu planted outliers\n",
              static_cast<long long>(dataset->points.size()),
              planted->size());

  // Estimator pass (shared by everything below). Outlier scoring integrates
  // the density over balls of radius ~0.05, so the kernel bandwidth must
  // resolve that scale: sharpen the normal-reference rule, which would
  // otherwise smear cluster mass well past the cluster edges and make
  // nearby isolated points look populated.
  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = 1000;
  kde_opts.bandwidth_scale = 0.25;
  auto kde = dbs::density::Kde::Fit(dataset->points, kde_opts);
  if (!kde.ok()) return 1;

  // Exploration: estimated outlier count across a (p, k) grid — one pass
  // per cell, no verification.
  dbs::eval::Table grid({"radius k", "p=0", "p=5", "p=20"});
  for (double radius : {0.02, 0.05, 0.1}) {
    std::vector<std::string> row{dbs::eval::Table::Num(radius, 2)};
    for (int64_t p : {0LL, 5LL, 20LL}) {
      dbs::outlier::DbOutlierParams params;
      params.radius = radius;
      params.max_neighbors = p;
      auto estimate = dbs::outlier::EstimateOutlierCount(
          dataset->points, *kde, params, dbs::outlier::KdeDetectorOptions{});
      row.push_back(estimate.ok() ? dbs::eval::Table::Int(*estimate) : "err");
    }
    grid.AddRow(row);
  }
  grid.Print("estimated DB(p,k)-outlier counts (one pass per cell)");

  // Detection at the chosen setting, verified.
  dbs::outlier::DbOutlierParams params;
  params.radius = 0.05;
  params.max_neighbors = 5;
  // A generous candidate slack keeps points that sit just outside a dense
  // cluster (where the smoothed density overstates their true neighbor
  // count) in the candidate set; verification stays cheap regardless.
  dbs::outlier::KdeDetectorOptions detector_opts;
  detector_opts.candidate_slack = 5.0;
  dbs::data::InMemoryScan scan(&dataset->points);
  auto report =
      dbs::outlier::DetectOutliersApproximate(scan, *kde, params,
                                              detector_opts);
  if (!report.ok()) {
    std::fprintf(stderr, "detector: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // Compare against ground truth and the exact detector.
  auto exact = dbs::outlier::DetectOutliersExact(dataset->points, params);
  if (!exact.ok()) return 1;
  int64_t planted_found = 0;
  for (int64_t idx : report->outlier_indices) {
    for (int64_t want : *planted) {
      if (idx == want) {
        ++planted_found;
        break;
      }
    }
  }
  std::printf(
      "\nverified detection at k=%.2f, p=%lld:\n"
      "  outliers reported:     %zu (exact detector agrees on %zu)\n"
      "  planted recovered:     %lld / %zu\n"
      "  candidates verified:   %lld of %lld points\n"
      "  dataset passes:        %d (+1 for the estimator)\n",
      params.radius, static_cast<long long>(params.max_neighbors),
      report->outlier_indices.size(), exact->outlier_indices.size(),
      static_cast<long long>(planted_found), planted->size(),
      static_cast<long long>(report->candidates_checked),
      static_cast<long long>(dataset->points.size()), report->passes);
  return 0;
}
