// Scenario: metropolitan-area discovery in address data (paper §4.3,
// "Real Datasets").
//
// The NorthEast postal-address dataset has three dominant metro areas (New
// York, Philadelphia, Boston) buried in rural background; uniform samples
// drown the metros in that background, density-biased samples keep them.
// This example runs the comparison on the simulated NorthEast-like and
// California-like datasets and prints which metros each pipeline recovers.
//
// Build & run:  ./build/examples/geospatial_survey

#include <cstdio>
#include <string>

#include "cluster/hierarchical.h"
#include "core/biased_sampler.h"
#include "density/kde.h"
#include "eval/cluster_match.h"
#include "sampling/uniform_sampler.h"
#include "synth/geo.h"

namespace {

void Survey(const char* name, const dbs::synth::ClusteredDataset& dataset,
            const char* const* metro_names) {
  std::printf("\n--- %s: %lld points, %d metro areas ---\n", name,
              static_cast<long long>(dataset.points.size()),
              dataset.truth.num_true_clusters());

  dbs::density::KdeOptions kde_opts;
  kde_opts.num_kernels = 1000;
  auto kde = dbs::density::Kde::Fit(dataset.points, kde_opts);
  if (!kde.ok()) return;

  const int64_t sample_size = dataset.points.size() / 100;  // 1%
  const int k = dataset.truth.num_true_clusters() + 2;  // metros + slack

  auto evaluate = [&](const dbs::data::PointSet& sample, const char* label) {
    dbs::cluster::HierarchicalOptions opts;
    opts.num_clusters = k;
    auto clustering = dbs::cluster::HierarchicalCluster(sample, opts);
    if (!clustering.ok()) return;
    auto match = dbs::eval::MatchClusters(*clustering, dataset.truth);
    std::string found;
    for (size_t r = 0; r < match.found.size(); ++r) {
      if (match.found[r]) {
        if (!found.empty()) found += ", ";
        found += metro_names[r];
      }
    }
    std::printf("  %-22s found %d/%d metros%s%s\n", label, match.num_found(),
                dataset.truth.num_true_clusters(),
                found.empty() ? "" : ": ", found.c_str());
  };

  dbs::sampling::BernoulliSampleOptions uni_opts;
  uni_opts.target_size = sample_size;
  auto uniform = dbs::sampling::BernoulliSample(dataset.points, uni_opts);
  if (uniform.ok()) evaluate(*uniform, "uniform 1% sample:");

  dbs::core::BiasedSamplerOptions biased_opts;
  biased_opts.a = 1.0;
  biased_opts.target_size = sample_size;
  dbs::core::BiasedSampler sampler(biased_opts);
  auto biased = sampler.Run(dataset.points, *kde);
  if (biased.ok()) evaluate(biased->points, "biased a=1 1% sample:");
}

}  // namespace

int main() {
  {
    dbs::synth::GeoDatasetOptions opts;
    opts.num_points = 130000;
    opts.seed = 3;
    auto northeast = dbs::synth::MakeNorthEastLike(opts);
    if (!northeast.ok()) return 1;
    const char* metros[] = {"Philadelphia", "New York", "Boston"};
    Survey("NorthEast-like", *northeast, metros);
  }
  {
    dbs::synth::GeoDatasetOptions opts;
    opts.seed = 4;
    auto california = dbs::synth::MakeCaliforniaLike(opts);
    if (!california.ok()) return 1;
    const char* metros[] = {"Bay Area", "Los Angeles"};
    Survey("California-like", *california, metros);
  }
  std::printf(
      "\nThe metros are tiny in area but huge in density: a uniform sample\n"
      "spends most of its budget on rural background, while the biased\n"
      "sample concentrates where the structure is.\n");
  return 0;
}
