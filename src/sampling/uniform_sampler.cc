#include "sampling/uniform_sampler.h"

#include <algorithm>

#include "util/rng.h"

namespace dbs::sampling {

[[nodiscard]] Result<data::PointSet> BernoulliSample(data::DataScan& scan,
                                       const BernoulliSampleOptions& options) {
  if (options.target_size <= 0) {
    return Status::InvalidArgument("target_size must be positive");
  }
  const int64_t n = scan.size();
  if (n == 0) {
    return data::PointSet(scan.dim());
  }
  const double rate = std::min(
      1.0, static_cast<double>(options.target_size) / static_cast<double>(n));
  Rng rng(options.seed);
  data::PointSet out(scan.dim());
  out.Reserve(options.target_size + options.target_size / 4);
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      if (rng.NextBernoulli(rate)) {
        out.Append(batch.point(i, scan.dim()));
      }
    }
  }
  return out;
}

[[nodiscard]] Result<data::PointSet> BernoulliSample(const data::PointSet& points,
                                       const BernoulliSampleOptions& options) {
  data::InMemoryScan scan(&points);
  return BernoulliSample(scan, options);
}

}  // namespace dbs::sampling
