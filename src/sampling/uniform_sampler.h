// Uniform random sampling baselines.
//
// BernoulliSample is the paper's uniform sampler (§4.2): read the dataset
// size N, then scan once keeping each point with probability b/N, so the
// EXPECTED sample size is b. This is the baseline every biased-sampling
// experiment compares against.

#ifndef DBS_SAMPLING_UNIFORM_SAMPLER_H_
#define DBS_SAMPLING_UNIFORM_SAMPLER_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/point_set.h"
#include "util/status.h"

namespace dbs::sampling {

struct BernoulliSampleOptions {
  // Expected sample size b.
  int64_t target_size = 1000;
  uint64_t seed = 1;
};

// One pass; each row kept independently with probability target_size / N
// (clamped to 1). Returns the sampled points.
[[nodiscard]] Result<data::PointSet> BernoulliSample(data::DataScan& scan,
                                       const BernoulliSampleOptions& options);

[[nodiscard]] Result<data::PointSet> BernoulliSample(const data::PointSet& points,
                                       const BernoulliSampleOptions& options);

}  // namespace dbs::sampling

#endif  // DBS_SAMPLING_UNIFORM_SAMPLER_H_
