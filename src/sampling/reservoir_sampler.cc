#include "sampling/reservoir_sampler.h"

namespace dbs::sampling {

Reservoir::Reservoir(int64_t capacity, int dim, uint64_t seed)
    : capacity_(capacity), sample_(dim), rng_(seed) {
  DBS_CHECK(capacity > 0);
  sample_.Reserve(capacity);
}

void Reservoir::Offer(data::PointView p) {
  if (seen_ < capacity_) {
    sample_.Append(p);
  } else {
    int64_t slot = static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(seen_ + 1)));
    if (slot < capacity_) {
      double* dst = sample_.MutableRow(slot);
      for (int j = 0; j < p.dim(); ++j) dst[j] = p[j];
    }
  }
  ++seen_;
}

[[nodiscard]] Result<data::PointSet> ReservoirSample(data::DataScan& scan, int64_t k,
                                       uint64_t seed) {
  if (k <= 0) {
    return Status::InvalidArgument("reservoir capacity must be positive");
  }
  Reservoir reservoir(k, scan.dim(), seed);
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      reservoir.Offer(batch.point(i, scan.dim()));
    }
  }
  return reservoir.sample();
}

[[nodiscard]] Result<data::PointSet> ReservoirSample(const data::PointSet& points,
                                       int64_t k, uint64_t seed) {
  data::InMemoryScan scan(&points);
  return ReservoirSample(scan, k, seed);
}

}  // namespace dbs::sampling
