// Fixed-size reservoir sampling (Vitter 1985, Algorithm R).
//
// Produces a uniform sample of EXACTLY min(k, N) rows in one pass without
// knowing N in advance. The KDE uses the same technique internally to pick
// kernel centers; this standalone version serves pipelines that need an
// exact-size uniform sample (e.g. seeding k-means).

#ifndef DBS_SAMPLING_RESERVOIR_SAMPLER_H_
#define DBS_SAMPLING_RESERVOIR_SAMPLER_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/point_set.h"
#include "util/rng.h"
#include "util/status.h"

namespace dbs::sampling {

// Streaming reservoir of capacity k over points of a fixed dimension.
class Reservoir {
 public:
  Reservoir(int64_t capacity, int dim, uint64_t seed);

  // Offers one point to the reservoir.
  void Offer(data::PointView p);

  int64_t seen() const { return seen_; }
  const data::PointSet& sample() const { return sample_; }

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  data::PointSet sample_;
  Rng rng_;
};

// One-pass exact-size uniform sample of `scan`.
[[nodiscard]] Result<data::PointSet> ReservoirSample(data::DataScan& scan, int64_t k,
                                       uint64_t seed);

[[nodiscard]] Result<data::PointSet> ReservoirSample(const data::PointSet& points,
                                       int64_t k, uint64_t seed);

}  // namespace dbs::sampling

#endif  // DBS_SAMPLING_RESERVOIR_SAMPLER_H_
