// Fixed-width table printing for the bench binaries, so every figure/table
// reproduction emits the same aligned rows (and optional CSV) the
// EXPERIMENTS.md records.

#ifndef DBS_EVAL_REPORT_H_
#define DBS_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace dbs::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  // Adds a row; cell count must match the column count.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);
  static std::string Int(int64_t value);

  // Aligned, ruled table.
  std::string ToString() const;
  // Comma-separated (header + rows).
  std::string ToCsv() const;

  // Prints ToString() to stdout with a title line.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbs::eval

#endif  // DBS_EVAL_REPORT_H_
