// Small experiment-harness utilities shared by the benches: wall-clock
// timing and multi-seed trial aggregation.

#ifndef DBS_EVAL_EXPERIMENT_H_
#define DBS_EVAL_EXPERIMENT_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "util/stats.h"

namespace dbs::eval {

// Steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Runs `trial(seed)` for seeds [0, num_trials) and aggregates the returned
// metric. Benches use this to smooth the randomized pipelines the same way
// the paper averages over runs.
OnlineMoments RunTrials(int num_trials,
                        const std::function<double(uint64_t seed)>& trial);

}  // namespace dbs::eval

#endif  // DBS_EVAL_EXPERIMENT_H_
