#include "eval/experiment.h"

#include "util/check.h"

namespace dbs::eval {

OnlineMoments RunTrials(int num_trials,
                        const std::function<double(uint64_t seed)>& trial) {
  DBS_CHECK(num_trials > 0);
  OnlineMoments moments;
  for (int t = 0; t < num_trials; ++t) {
    moments.Add(trial(static_cast<uint64_t>(t)));
  }
  return moments;
}

}  // namespace dbs::eval
