#include "eval/cluster_match.h"

namespace dbs::eval {

MatchResult MatchClusters(const cluster::ClusteringResult& result,
                          const synth::GroundTruth& truth,
                          const MatchOptions& options) {
  MatchResult match;
  match.found.assign(truth.regions.size(), false);
  for (const cluster::Cluster& c : result.clusters) {
    const data::PointSet& reps = c.representatives;
    if (reps.empty()) continue;
    for (size_t r = 0; r < truth.regions.size(); ++r) {
      int64_t inside = 0;
      for (int64_t i = 0; i < reps.size(); ++i) {
        if (truth.regions[r].ContainsInterior(reps[i],
                                              options.interior_margin)) {
          ++inside;
        }
      }
      double frac = static_cast<double>(inside) /
                    static_cast<double>(reps.size());
      if (frac >= options.representative_fraction) {
        match.found[r] = true;
        break;  // a cluster's reps can dominate only one region
      }
    }
  }
  return match;
}

MatchResult MatchBirchClusters(const cluster::BirchResult& result,
                               const synth::GroundTruth& truth,
                               const MatchOptions& options) {
  MatchResult match;
  match.found.assign(truth.regions.size(), false);
  for (const cluster::BirchCluster& c : result.clusters) {
    data::PointView center(c.center.data(),
                           static_cast<int>(c.center.size()));
    for (size_t r = 0; r < truth.regions.size(); ++r) {
      if (truth.regions[r].ContainsInterior(center,
                                            options.interior_margin)) {
        match.found[r] = true;
        break;
      }
    }
  }
  return match;
}

}  // namespace dbs::eval
