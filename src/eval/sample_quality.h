// Diagnostics for a drawn biased sample.
//
// The paper motivates biased sampling as a fast triage step ("a quick way
// to decide if the dataset is worthy of further exploration", §1). These
// diagnostics answer the triage questions from the sample alone, without
// another data pass:
//
//   * EffectiveSampleSize — Kish's n_eff = (Σw)² / Σw²: how many uniform
//     samples this weighted sample is statistically worth. A biased sample
//     whose n_eff collapsed is being dominated by a few huge weights.
//   * DensityDecileShares — the sample mass per decile of the sampled
//     densities, weighted vs unweighted: shows where the exponent actually
//     concentrated the sample, and the weighted column should be ~uniform
//     if the weights undo the bias correctly.
//   * EstimatedClusterMassFraction — Horvitz-Thompson estimate of the
//     fraction of the DATASET lying in regions denser than a threshold
//     (e.g. 2x the average density): high values suggest clusters exist
//     and further exploration is warranted.

#ifndef DBS_EVAL_SAMPLE_QUALITY_H_
#define DBS_EVAL_SAMPLE_QUALITY_H_

#include <vector>

#include "core/sample.h"

namespace dbs::eval {

// Kish's effective sample size of the Horvitz-Thompson weights.
// Equals size() exactly when all inclusion probabilities are equal.
double EffectiveSampleSize(const core::BiasedSample& sample);

struct DecileShares {
  // Density value at each decile boundary of the SAMPLED points (10
  // entries: 10%, 20%, ..., 100%).
  std::vector<double> density_boundaries;
  // Fraction of sample POINTS per decile (uniform 0.1 by construction).
  std::vector<double> unweighted_share;
  // Fraction of estimated DATASET mass per decile (HT-weighted). Close to
  // the data's own density distribution when the weights are consistent.
  std::vector<double> weighted_share;
};

// Splits the sample into deciles by recorded density and reports the
// weighted and unweighted mass per decile. Requires a non-empty sample
// with recorded densities.
DecileShares DensityDecileShares(const core::BiasedSample& sample);

// Horvitz-Thompson estimate of the fraction of the dataset whose local
// density exceeds `density_threshold` (use e.g. 2x the estimator's
// AverageDensity). In [0, 1].
double EstimatedClusterMassFraction(const core::BiasedSample& sample,
                                    double density_threshold);

}  // namespace dbs::eval

#endif  // DBS_EVAL_SAMPLE_QUALITY_H_
