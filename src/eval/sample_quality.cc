#include "eval/sample_quality.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace dbs::eval {

double EffectiveSampleSize(const core::BiasedSample& sample) {
  if (sample.inclusion_probs.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double p : sample.inclusion_probs) {
    DBS_CHECK(p > 0);
    double w = 1.0 / p;
    sum += w;
    sum_sq += w * w;
  }
  return sum * sum / sum_sq;
}

DecileShares DensityDecileShares(const core::BiasedSample& sample) {
  const size_t n = sample.densities.size();
  DBS_CHECK_MSG(n > 0, "sample has no recorded densities");
  DBS_CHECK(sample.inclusion_probs.size() == n);

  // Order points by density.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sample.densities[a] < sample.densities[b];
  });

  double total_weight = 0.0;
  for (double p : sample.inclusion_probs) total_weight += 1.0 / p;

  DecileShares shares;
  shares.density_boundaries.resize(10);
  shares.unweighted_share.assign(10, 0.0);
  shares.weighted_share.assign(10, 0.0);
  for (int d = 0; d < 10; ++d) {
    size_t begin = n * d / 10;
    size_t end = n * (d + 1) / 10;
    if (end > begin) {
      shares.density_boundaries[d] = sample.densities[order[end - 1]];
    } else if (d > 0) {
      shares.density_boundaries[d] = shares.density_boundaries[d - 1];
    }
    double weight = 0.0;
    for (size_t i = begin; i < end; ++i) {
      weight += 1.0 / sample.inclusion_probs[order[i]];
    }
    shares.unweighted_share[d] =
        static_cast<double>(end - begin) / static_cast<double>(n);
    shares.weighted_share[d] = total_weight > 0 ? weight / total_weight : 0;
  }
  return shares;
}

double EstimatedClusterMassFraction(const core::BiasedSample& sample,
                                    double density_threshold) {
  const size_t n = sample.densities.size();
  if (n == 0) return 0.0;
  DBS_CHECK(sample.inclusion_probs.size() == n);
  double total = 0.0;
  double dense = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double w = 1.0 / sample.inclusion_probs[i];
    total += w;
    if (sample.densities[i] > density_threshold) dense += w;
  }
  return total > 0 ? dense / total : 0.0;
}

}  // namespace dbs::eval
