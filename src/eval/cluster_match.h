// Matching found clusters against ground truth (paper §4.2).
//
// Hierarchical/CURE results: "a cluster is found if at least 90% of its
// representative points are in the interior of the same cluster in the
// synthetic dataset". BIRCH reports centers and radii, so "if it reports a
// cluster center that lies in the interior of a cluster ... this cluster is
// found". Both rules are implemented here; the count of DISTINCT true
// clusters found is the y-axis of Figs 4-7.

#ifndef DBS_EVAL_CLUSTER_MATCH_H_
#define DBS_EVAL_CLUSTER_MATCH_H_

#include <vector>

#include "cluster/birch.h"
#include "cluster/clustering.h"
#include "synth/cluster_spec.h"

namespace dbs::eval {

struct MatchOptions {
  // Fraction of a found cluster's representatives that must land in one
  // true region (the paper's 90%).
  double representative_fraction = 0.9;
  // Interior margin passed to Region::ContainsInterior.
  double interior_margin = 0.0;
};

struct MatchResult {
  // found[r] == true when true region r was matched by some found cluster.
  std::vector<bool> found;

  int num_found() const {
    int count = 0;
    for (bool f : found) {
      if (f) ++count;
    }
    return count;
  }
};

// CURE-style rule over representative points.
MatchResult MatchClusters(const cluster::ClusteringResult& result,
                          const synth::GroundTruth& truth,
                          const MatchOptions& options = {});

// BIRCH rule over reported centers.
MatchResult MatchBirchClusters(const cluster::BirchResult& result,
                               const synth::GroundTruth& truth,
                               const MatchOptions& options = {});

}  // namespace dbs::eval

#endif  // DBS_EVAL_CLUSTER_MATCH_H_
