#include "eval/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/check.h"

namespace dbs::eval {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  DBS_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  DBS_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Int(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto format_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string rule = "+";
  for (size_t w : widths) {
    rule.append(w + 2, '-');
    rule += "+";
  }
  rule += "\n";

  std::string out = rule + format_row(columns_) + rule;
  for (const auto& row : rows_) out += format_row(row);
  out += rule;
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += ",";
    out += columns_[c];
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += row[c];
    }
    out += "\n";
  }
  return out;
}

void Table::Print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToString().c_str());
  std::fflush(stdout);
}

}  // namespace dbs::eval
