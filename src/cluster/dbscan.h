// DBSCAN (Ester et al., KDD 1996) — density-based clustering.
//
// A third "off the shelf" algorithm for the sampled pipelines (§3.1 uses
// the term broadly). DBSCAN is a natural partner for density-biased
// samples: it finds arbitrarily-shaped clusters as connected regions of
// high point density and labels sparse points as noise, so it composes
// well with a = 1 samples (noise already suppressed) and stresses the
// samplers differently than the hierarchical algorithm (its epsilon is an
// absolute density threshold rather than a relative merge order).
//
// Classic definition: a CORE point has at least min_points neighbors
// within epsilon (counting itself); clusters are the connected components
// of core points under epsilon-reachability, plus the border points
// density-reachable from them; everything else is noise (label -1).

#ifndef DBS_CLUSTER_DBSCAN_H_
#define DBS_CLUSTER_DBSCAN_H_

#include <cstdint>

#include "cluster/clustering.h"
#include "data/point_set.h"
#include "util/status.h"

namespace dbs::cluster {

struct DbscanOptions {
  // Neighborhood radius (L2).
  double epsilon = 0.05;
  // Minimum neighbors (including the point itself) to be a core point.
  int min_points = 5;
};

// Clusters `points`; noise points get label -1 and belong to no cluster.
// Cluster representatives are the cluster's core points, capped at
// `max_representatives` chosen by the scattered-point heuristic (so the
// eval::MatchClusters metric applies unchanged).
[[nodiscard]] Result<ClusteringResult> DbscanCluster(const data::PointSet& points,
                                       const DbscanOptions& options,
                                       int max_representatives = 10);

}  // namespace dbs::cluster

#endif  // DBS_CLUSTER_DBSCAN_H_
