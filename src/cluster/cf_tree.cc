#include "cluster/cf_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dbs::cluster {

void ClusteringFeature::AddPoint(data::PointView p) {
  DBS_DCHECK(p.dim() == dim());
  n += 1.0;
  double norm2 = 0.0;
  for (int j = 0; j < dim(); ++j) {
    ls[j] += p[j];
    norm2 += p[j] * p[j];
  }
  ss += norm2;
}

void ClusteringFeature::Merge(const ClusteringFeature& other) {
  DBS_DCHECK(other.dim() == dim());
  n += other.n;
  for (int j = 0; j < dim(); ++j) ls[j] += other.ls[j];
  ss += other.ss;
}

std::vector<double> ClusteringFeature::Centroid() const {
  DBS_DCHECK(n > 0);
  std::vector<double> c(ls.size());
  for (size_t j = 0; j < ls.size(); ++j) c[j] = ls[j] / n;
  return c;
}

double ClusteringFeature::Radius() const {
  if (n <= 0) return 0.0;
  double centroid_norm2 = 0.0;
  for (double v : ls) centroid_norm2 += (v / n) * (v / n);
  double r2 = ss / n - centroid_norm2;
  return r2 > 0 ? std::sqrt(r2) : 0.0;
}

double ClusteringFeature::MergedRadius(const ClusteringFeature& other) const {
  ClusteringFeature merged = *this;
  merged.Merge(other);
  return merged.Radius();
}

double ClusteringFeature::CentroidDistance2(const ClusteringFeature& a,
                                            const ClusteringFeature& b) {
  DBS_DCHECK(a.dim() == b.dim());
  DBS_DCHECK(a.n > 0 && b.n > 0);
  double d2 = 0.0;
  for (int j = 0; j < a.dim(); ++j) {
    double diff = a.ls[j] / a.n - b.ls[j] / b.n;
    d2 += diff * diff;
  }
  return d2;
}

Result<CfTree> CfTree::Create(int dim, const CfTreeOptions& options) {
  if (dim <= 0) {
    return Status::InvalidArgument("dim must be positive");
  }
  if (options.page_size_bytes < 64) {
    return Status::InvalidArgument("page size is unusably small");
  }
  if (options.memory_budget_bytes < options.page_size_bytes) {
    return Status::InvalidArgument(
        "memory budget must hold at least one page");
  }
  if (options.initial_threshold < 0) {
    return Status::InvalidArgument("threshold cannot be negative");
  }
  CfTree tree;
  tree.dim_ = dim;
  tree.options_ = options;
  tree.threshold_ = options.initial_threshold;
  // Leaf entry: CF = (n, ls[dim], ss) doubles. Internal entry additionally
  // carries a child pointer.
  int leaf_entry_bytes = static_cast<int>((2 + dim) * sizeof(double));
  int internal_entry_bytes = leaf_entry_bytes + static_cast<int>(sizeof(void*));
  tree.leaf_capacity_ =
      std::max(4, options.page_size_bytes / leaf_entry_bytes);
  tree.internal_capacity_ =
      std::max(4, options.page_size_bytes / internal_entry_bytes);
  tree.root_ = std::make_unique<Node>();
  tree.node_count_ = 1;
  return tree;
}

void CfTree::Insert(data::PointView p) {
  DBS_CHECK(p.dim() == dim_);
  ClusteringFeature cf(dim_);
  cf.AddPoint(p);
  InsertCf(cf);
  while (memory_bytes() > options_.memory_budget_bytes) {
    RebuildWithLargerThreshold();
  }
}

void CfTree::InsertCf(const ClusteringFeature& cf) {
  total_n_ += cf.n;
  std::unique_ptr<Node> sibling = InsertIntoNode(root_.get(), cf);
  if (sibling != nullptr) {
    // Root split: grow a new root with two children.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    ClusteringFeature left(dim_);
    for (const ClusteringFeature& e : root_->entries) left.Merge(e);
    ClusteringFeature right(dim_);
    for (const ClusteringFeature& e : sibling->entries) right.Merge(e);
    new_root->entries.push_back(std::move(left));
    new_root->children.push_back(std::move(root_));
    new_root->entries.push_back(std::move(right));
    new_root->children.push_back(std::move(sibling));
    root_ = std::move(new_root);
    ++node_count_;
  }
}

std::unique_ptr<CfTree::Node> CfTree::InsertIntoNode(
    Node* node, const ClusteringFeature& cf) {
  if (node->is_leaf) {
    // Closest leaf entry by centroid distance.
    int best = -1;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      double d2 = ClusteringFeature::CentroidDistance2(node->entries[i], cf);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = static_cast<int>(i);
      }
    }
    if (best >= 0 && node->entries[best].MergedRadius(cf) <= threshold_) {
      node->entries[best].Merge(cf);
      return nullptr;
    }
    node->entries.push_back(cf);
    if (static_cast<int>(node->entries.size()) <= leaf_capacity_) {
      return nullptr;
    }
    return SplitNode(node);
  }

  // Internal node: descend into the closest child.
  int best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->entries.size(); ++i) {
    double d2 = ClusteringFeature::CentroidDistance2(node->entries[i], cf);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(i);
    }
  }
  std::unique_ptr<Node> child_sibling =
      InsertIntoNode(node->children[best].get(), cf);
  node->entries[best].Merge(cf);
  if (child_sibling != nullptr) {
    // Recompute the split child's summary and add the sibling's.
    ClusteringFeature left(dim_);
    for (const ClusteringFeature& e : node->children[best]->entries) {
      left.Merge(e);
    }
    node->entries[best] = std::move(left);
    ClusteringFeature right(dim_);
    for (const ClusteringFeature& e : child_sibling->entries) {
      right.Merge(e);
    }
    node->entries.push_back(std::move(right));
    node->children.push_back(std::move(child_sibling));
    if (static_cast<int>(node->entries.size()) > internal_capacity_) {
      return SplitNode(node);
    }
  }
  return nullptr;
}

std::unique_ptr<CfTree::Node> CfTree::SplitNode(Node* node) {
  // Seeds: the farthest pair of entries by centroid distance.
  const size_t m = node->entries.size();
  size_t seed_a = 0;
  size_t seed_b = 1;
  double far_d2 = -1.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      double d2 = ClusteringFeature::CentroidDistance2(node->entries[i],
                                                       node->entries[j]);
      if (d2 > far_d2) {
        far_d2 = d2;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;

  std::vector<ClusteringFeature> old_entries = std::move(node->entries);
  std::vector<std::unique_ptr<Node>> old_children = std::move(node->children);
  node->entries.clear();
  node->children.clear();

  // Copy the seed CFs: entries are moved out of old_entries as they are
  // redistributed, so distances must be taken against stable copies.
  const ClusteringFeature cf_a = old_entries[seed_a];
  const ClusteringFeature cf_b = old_entries[seed_b];
  for (size_t i = 0; i < m; ++i) {
    double da = ClusteringFeature::CentroidDistance2(old_entries[i], cf_a);
    double db = ClusteringFeature::CentroidDistance2(old_entries[i], cf_b);
    Node* target = (i == seed_a || (i != seed_b && da <= db))
                       ? node
                       : sibling.get();
    target->entries.push_back(std::move(old_entries[i]));
    if (!old_children.empty()) {
      target->children.push_back(std::move(old_children[i]));
    }
  }
  ++node_count_;
  return sibling;
}

double CfTree::SmallestLeafEntryGap() const {
  double best = std::numeric_limits<double>::infinity();
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->is_leaf) {
      for (const auto& child : node->children) stack.push_back(child.get());
      continue;
    }
    for (size_t i = 0; i < node->entries.size(); ++i) {
      for (size_t j = i + 1; j < node->entries.size(); ++j) {
        best = std::min(best, ClusteringFeature::CentroidDistance2(
                                  node->entries[i], node->entries[j]));
      }
    }
  }
  return std::isfinite(best) ? std::sqrt(best) : 0.0;
}

void CfTree::RebuildWithLargerThreshold() {
  // New threshold: at least the smallest gap between sibling leaf entries
  // (so at least one pair becomes absorbable), and at least a multiple of
  // the current threshold so the loop always terminates.
  double gap = SmallestLeafEntryGap();
  double base = threshold_ > 0 ? threshold_ * 1.5 : 1e-9;
  threshold_ = std::max({gap, base});
  ++rebuilds_;

  std::vector<ClusteringFeature> leaves = LeafEntries();
  root_ = std::make_unique<Node>();
  node_count_ = 1;
  total_n_ = 0.0;
  // Reinserting coarser CFs under the larger threshold shrinks the tree.
  for (const ClusteringFeature& cf : leaves) {
    InsertCf(cf);
  }
}

void CfTree::CollectLeaves(const Node* node,
                           std::vector<ClusteringFeature>* out) const {
  if (node->is_leaf) {
    out->insert(out->end(), node->entries.begin(), node->entries.end());
    return;
  }
  for (const auto& child : node->children) CollectLeaves(child.get(), out);
}

std::vector<ClusteringFeature> CfTree::LeafEntries() const {
  std::vector<ClusteringFeature> out;
  CollectLeaves(root_.get(), &out);
  return out;
}

int64_t CfTree::num_leaf_entries() const {
  int64_t count = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      count += static_cast<int64_t>(node->entries.size());
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return count;
}

}  // namespace dbs::cluster
