// CURE-style hierarchical agglomerative clustering (paper §3.1, after Guha,
// Rastogi & Shim, SIGMOD 1998).
//
// Each cluster is summarized by up to `num_representatives` well-scattered
// points shrunk toward the cluster mean by `shrink_factor`; the distance
// between two clusters is the minimum distance between their representative
// sets, and the two closest clusters merge until `num_clusters` remain.
// Scattered representatives let the algorithm discover non-spherical
// clusters of very different sizes, which is why the paper picks it over
// K-means/K-medoids for evaluating sample quality; the §4.2 settings
// (shrink 0.3, 10 representatives, one partition) are the defaults here.
//
// The run time is quadratic in the sample size — exactly the cost profile
// that motivates running it on a small biased sample rather than the full
// dataset (paper Fig 2).

#ifndef DBS_CLUSTER_HIERARCHICAL_H_
#define DBS_CLUSTER_HIERARCHICAL_H_

#include <cstdint>

#include "cluster/clustering.h"
#include "data/point_set.h"
#include "util/status.h"

namespace dbs::parallel {
class BatchExecutor;
}  // namespace dbs::parallel

namespace dbs::cluster {

struct HierarchicalOptions {
  // Number of clusters to stop at.
  int num_clusters = 10;
  // Representative points kept per cluster (paper default 10).
  int num_representatives = 10;
  // Fraction of the way each representative moves toward the mean
  // (paper default 0.3). 0 keeps boundary points, 1 collapses to centroid.
  double shrink_factor = 0.3;

  // CURE's two-phase outlier elimination. Noise points merge slowly (their
  // neighbors are far), so clusters that are still tiny midway through the
  // agglomeration are noise; left in, they chain true clusters together.
  // Phase 1 fires once, when the live-cluster count first drops below
  // `phase1_trigger_fraction * n`, and removes clusters with at most
  // `phase1_max_size` members. Phase 2 fires when the count reaches
  // `phase2_trigger_multiple * num_clusters` and removes clusters with at
  // most `phase2_max_size` members. Eliminated points get label -1.
  // Phase 1 fires at 1/3 of the points (CURE's heuristic): early enough to
  // remove noise before it chains clusters together under heavy noise, at
  // the cost of shedding some cluster-fringe singletons — a good trade
  // when clusters are judged by their representative points.
  bool eliminate_outliers = true;
  double phase1_trigger_fraction = 1.0 / 3.0;
  int phase1_max_size = 2;
  double phase2_trigger_multiple = 2.0;
  int phase2_max_size = 5;

  // Optional executor for the per-merge batch distance pass. Shards write
  // disjoint output slots and the reduction runs sequentially in index
  // order, so results are bitwise identical at any worker count. nullptr
  // runs single-threaded. Not owned; must outlive the call.
  parallel::BatchExecutor* executor = nullptr;
};

// Clusters `points` (typically a sample). Representative points in the
// result are the shrunk scattered points of each final cluster.
//
// Accelerated implementation: lazy-deletion min-heap for closest-pair
// selection, snapshot kd-tree over representative points for nearest-
// cluster repair, and a batched SoA distance kernel for the per-merge
// scoring pass (DESIGN.md §11). Output is bitwise identical to
// HierarchicalClusterReference.
[[nodiscard]] Result<ClusteringResult> HierarchicalCluster(const data::PointSet& points,
                                             const HierarchicalOptions& options);

// Frozen pre-acceleration implementation, kept as the equivalence oracle
// for tests and bench/micro_cluster. Quadratic scans; ignores
// `options.executor`. Do not use outside verification.
[[nodiscard]] Result<ClusteringResult> HierarchicalClusterReference(
    const data::PointSet& points, const HierarchicalOptions& options);

}  // namespace dbs::cluster

#endif  // DBS_CLUSTER_HIERARCHICAL_H_
