// Accelerated CURE agglomeration (DESIGN.md §11).
//
// Three structures replace the reference implementation's quadratic scans
// while keeping the merge sequence bitwise identical to
// HierarchicalClusterReference (hierarchical_reference.cc):
//
//  * a lazy-deletion min-heap of (closest_d2, cluster, stamp) entries, so
//    picking the globally closest pair is O(log n) instead of an O(n) scan
//    per merge. Entries are never updated in place: changing a cluster's
//    nearest pointer bumps its stamp and pushes a fresh entry, and stale
//    entries are discarded when popped. The comparator orders by
//    (d2, cluster id), which reproduces the reference scan's "strict <,
//    ascending index" tie-breaking exactly.
//
//  * a rep->cluster kd-tree snapshot (RepIndex), so repairing a cluster's
//    nearest pointer is a handful of pruned NearestExcludingGroup queries
//    instead of a scan over every live cluster. The snapshot is rebuilt on
//    a deterministic cadence; clusters whose representatives changed since
//    the last rebuild are "dirty" and scored directly, so staleness is
//    bounded and never observable in the results.
//
//  * a batched min-rep-distance kernel (MinRepDist2) that scores the merged
//    cluster against every live candidate in one flat pass over contiguous
//    representative rows — dimension-templated so the compiler unrolls and
//    vectorizes the inner loop — optionally sharded over a
//    parallel::BatchExecutor with shard results written to disjoint slots
//    and reduced sequentially in index order.
//
// Bitwise equivalence is enforced by the frozen goldens in
// tests/cluster_hierarchical_test.cc, the randomized oracle comparison in
// tests/cluster_agglo_equivalence_test.cc, and bench/micro_cluster, which
// exits nonzero on any label/representative mismatch.

#include "cluster/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "cluster/hierarchical_internal.h"
#include "data/distance.h"
#include "data/kd_tree.h"
#include "parallel/batch_executor.h"

namespace dbs::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Internal per-cluster state during agglomeration.
struct Node {
  bool alive = true;
  std::vector<int64_t> members;
  std::vector<double> centroid;      // weighted by member count
  data::PointSet scattered;          // unshrunk well-scattered points
  data::PointSet reps;               // scattered points shrunk toward mean
  int32_t closest = -1;              // nearest live cluster
  double closest_d2 = kInf;
  uint32_t stamp = 0;                // invalidates heap entries on change
};

// Minimum squared distance between two representative sets given as flat
// row-major buffers. The per-pair arithmetic matches data::SquaredL2
// exactly (ascending dimension, separate multiply and add, `a - b` operand
// order); the min reduction is order-insensitive over non-NaN values, so
// the result is bitwise identical to the reference's rep-by-rep loop.
template <int kDim>
double MinRepDist2(const double* a, int64_t na, const double* b,
                   int64_t nb) {
  double best = kInf;
  for (int64_t j = 0; j < nb; ++j) {
    const double* q = b + j * kDim;
    for (int64_t i = 0; i < na; ++i) {
      const double* p = a + i * kDim;
      double sum = 0.0;
      for (int d = 0; d < kDim; ++d) {
        double diff = p[d] - q[d];
        sum += diff * diff;
      }
      best = std::min(best, sum);
    }
  }
  return best;
}

double MinRepDist2Generic(const double* a, int64_t na, const double* b,
                          int64_t nb, int dim) {
  double best = kInf;
  for (int64_t j = 0; j < nb; ++j) {
    const double* q = b + j * dim;
    for (int64_t i = 0; i < na; ++i) {
      const double* p = a + i * dim;
      double sum = 0.0;
      for (int d = 0; d < dim; ++d) {
        double diff = p[d] - q[d];
        sum += diff * diff;
      }
      best = std::min(best, sum);
    }
  }
  return best;
}

double MinRepDist2Dyn(const double* a, int64_t na, const double* b,
                      int64_t nb, int dim) {
  switch (dim) {
    case 1:
      return MinRepDist2<1>(a, na, b, nb);
    case 2:
      return MinRepDist2<2>(a, na, b, nb);
    case 3:
      return MinRepDist2<3>(a, na, b, nb);
    case 4:
      return MinRepDist2<4>(a, na, b, nb);
    case 5:
      return MinRepDist2<5>(a, na, b, nb);
    default:
      return MinRepDist2Generic(a, na, b, nb, dim);
  }
}

// Cluster distance through the flat kernel.
double ClusterDistance2(const Node& a, const Node& b, int dim) {
  return MinRepDist2Dyn(a.reps.flat().data(), a.reps.size(),
                        b.reps.flat().data(), b.reps.size(), dim);
}

// Snapshot kd-tree over the representative points of live clusters, with
// bounded staleness. Between rebuilds a cluster is in exactly one state:
//
//   kFresh — alive, reps unchanged since the snapshot; served by the tree.
//   kDirty — alive, reps changed since the snapshot; scored directly.
//   kDead  — merged away or eliminated; filtered out of tree hits.
//
// A nearest-cluster query is therefore exact at all times: tree hits cover
// the fresh clusters, the dirty list covers the rest. Rebuild cadence is a
// pure function of algorithm state (dirty/dead counts vs live), so runs
// are deterministic at any worker count.
class RepIndex {
 public:
  RepIndex(int64_t num_nodes, int dim)
      : dim_(dim),
        state_(static_cast<size_t>(num_nodes), kDead),
        fresh_(static_cast<size_t>(num_nodes), 0) {}

  // Marks `x`'s representatives as changed since the snapshot.
  void MarkDirty(int32_t x) {
    if (state_[static_cast<size_t>(x)] == kFresh) {
      state_[static_cast<size_t>(x)] = kDirty;
      fresh_[static_cast<size_t>(x)] = 0;
      dirty_.push_back(x);
    }
  }

  void MarkDead(int32_t x) {
    if (state_[static_cast<size_t>(x)] == kFresh) ++snapshot_deaths_;
    state_[static_cast<size_t>(x)] = kDead;
    fresh_[static_cast<size_t>(x)] = 0;
  }

  // Rebuilds the snapshot if it is missing, too dirty (every dirty cluster
  // is a direct-scoring candidate on every repair) or too dead (tree
  // traversal wades through filtered leaves).
  void EnsureFresh(const std::vector<Node>& nodes, int64_t live) {
    if (tree_ != nullptr && !TooStale(live)) return;
    snapshot_ = data::PointSet(dim_);
    owner_.clear();
    dirty_.clear();
    snapshot_deaths_ = 0;
    for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
      const Node& node = nodes[static_cast<size_t>(x)];
      if (!node.alive) {
        state_[static_cast<size_t>(x)] = kDead;
        continue;
      }
      state_[static_cast<size_t>(x)] = kFresh;
      fresh_[static_cast<size_t>(x)] = 1;
      for (int64_t r = 0; r < node.reps.size(); ++r) {
        snapshot_.Append(node.reps[r]);
        owner_.push_back(x);
      }
    }
    tree_ = std::make_unique<data::KdTree>(&snapshot_);
  }

  const data::KdTree& tree() const { return *tree_; }
  const std::vector<int32_t>& owner() const { return owner_; }
  const std::vector<uint8_t>& fresh() const { return fresh_; }
  const std::vector<int32_t>& dirty() const { return dirty_; }

  bool IsDirty(int32_t x) const {
    return state_[static_cast<size_t>(x)] == kDirty;
  }

 private:
  enum State : uint8_t { kFresh, kDirty, kDead };

  bool TooStale(int64_t live) const {
    int64_t dirty_live = 0;
    for (int32_t x : dirty_) {
      if (state_[static_cast<size_t>(x)] == kDirty) ++dirty_live;
    }
    return dirty_live >= std::max<int64_t>(8, live / 32) ||
           snapshot_deaths_ >= std::max<int64_t>(8, live / 4);
  }

  const int dim_;
  data::PointSet snapshot_;           // flat copy of fresh clusters' reps
  std::vector<int32_t> owner_;        // snapshot row -> cluster id
  std::unique_ptr<data::KdTree> tree_;
  std::vector<State> state_;
  std::vector<uint8_t> fresh_;        // state_ == kFresh, as the tree filter
  std::vector<int32_t> dirty_;        // clusters scored directly (may hold
                                      // since-dead ids; filtered on use)
  int64_t snapshot_deaths_ = 0;
};

}  // namespace

[[nodiscard]] Result<ClusteringResult> HierarchicalCluster(
    const data::PointSet& points, const HierarchicalOptions& options) {
  DBS_RETURN_IF_ERROR(internal::ValidateHierarchicalArgs(points, options));
  const int64_t n = points.size();
  const int dim = points.dim();

  // Initialize one singleton cluster per point.
  std::vector<Node> nodes(n);
  for (int64_t i = 0; i < n; ++i) {
    Node& node = nodes[i];
    node.members = {i};
    node.centroid = points[i].ToVector();
    node.scattered = data::PointSet(dim);
    node.scattered.Append(points[i]);
    node.reps = node.scattered;
  }

  // Lazy-deletion heap: the entry pushed at a node's latest stamp is its
  // live key; anything older (or belonging to a dead node) is discarded on
  // pop. Ordering by (d2, id) reproduces the reference's ascending-index
  // strict-< scan, so ties still go to the lowest cluster index.
  struct PairEntry {
    double d2;
    int32_t id;
    uint32_t stamp;
  };
  struct FarthestFirst {
    bool operator()(const PairEntry& a, const PairEntry& b) const {
      if (a.d2 != b.d2) return a.d2 > b.d2;
      return a.id > b.id;
    }
  };
  std::priority_queue<PairEntry, std::vector<PairEntry>, FarthestFirst> heap;

  // Flat per-cluster mirrors read by the batch prune pass (SoA layout so
  // the per-candidate test touches no Node struct): current centroid rows,
  // closest_d2, and an inflated sqrt(closest_d2). The 1e-12 inflation makes
  // the stored root a certified upper bound of the real one despite
  // rounding; prune margins lean on it below.
  std::vector<double> cent_flat(points.flat());
  std::vector<double> closest_d2_flat(static_cast<size_t>(n), kInf);
  std::vector<double> thr_sqrt(static_cast<size_t>(n), kInf);

  auto set_closest = [&](int32_t id, int32_t to, double d2) {
    Node& node = nodes[id];
    node.closest = to;
    node.closest_d2 = d2;
    closest_d2_flat[static_cast<size_t>(id)] = to >= 0 ? d2 : kInf;
    thr_sqrt[static_cast<size_t>(id)] =
        to >= 0 ? std::sqrt(d2) * (1.0 + 1e-12) : kInf;
    ++node.stamp;
    if (to >= 0) heap.push({d2, id, node.stamp});
  };

  // Initial nearest neighbors via a kd-tree over the points (singleton
  // clusters have a single representative = the point itself).
  {
    data::KdTree tree(&points);
    for (int64_t i = 0; i < n; ++i) {
      int64_t nn = tree.Nearest(points[i], /*exclude=*/i);
      if (nn >= 0) {
        set_closest(static_cast<int32_t>(i), static_cast<int32_t>(nn),
                    data::SquaredL2(points[i], points[nn]));
      }
    }
  }

  int64_t live = n;
  const int64_t target = std::min<int64_t>(options.num_clusters, n);
  RepIndex index(n, dim);

  // Certified prune bound for the batch pass: by the triangle inequality
  // MinRepDist2(a, x) >= (|c_a - c_x| - r_a - r_x)^2 where r is the
  // cluster's rep radius (max rep-to-centroid distance, inflated 1e-12 to
  // absorb its own rounding). The comparisons below deflate the bound by
  // 1e-9 relative, many orders beyond any accumulated rounding, so a
  // candidate is only skipped when even the under-estimate rules it out —
  // every strict-< comparison, and therefore every byte of output, stays
  // identical to the unpruned scan. Singletons start with radius 0.
  std::vector<double> rep_radius(static_cast<size_t>(n), 0.0);
  auto update_radius = [&](int32_t id) {
    const Node& node = nodes[id];
    data::PointView c(node.centroid.data(), dim);
    double worst = 0.0;
    for (int64_t r = 0; r < node.reps.size(); ++r) {
      worst = std::max(worst, data::SquaredL2(node.reps[r], c));
    }
    rep_radius[static_cast<size_t>(id)] = std::sqrt(worst) * (1.0 + 1e-12);
  };

  // Repairs node `id`'s nearest pointer: pruned kd queries over the fresh
  // snapshot plus direct kernel scores against the dirty clusters. Both
  // halves reduce with the lexicographic (d2, cluster) rule, which equals
  // the reference's full ascending scan.
  auto recompute_closest = [&](int32_t id) {
    index.EnsureFresh(nodes, live);
    Node& node = nodes[id];
    double best_d2 = kInf;
    int32_t best = -1;
    for (int64_t r = 0; r < node.reps.size(); ++r) {
      data::KdTree::GroupNearest hit = index.tree().NearestExcludingGroup(
          node.reps[r], index.owner(), id, index.fresh());
      if (hit.group >= 0 &&
          (hit.d2 < best_d2 || (hit.d2 == best_d2 && hit.group < best))) {
        best_d2 = hit.d2;
        best = hit.group;
      }
    }
    for (int32_t x : index.dirty()) {
      if (x == id || !index.IsDirty(x)) continue;
      double d2 = ClusterDistance2(node, nodes[x], dim);
      if (d2 < best_d2 || (d2 == best_d2 && x < best)) {
        best_d2 = d2;
        best = x;
      }
    }
    set_closest(id, best, best == -1 ? kInf : best_d2);
  };

  // Removes live clusters with at most `max_size` members (but never drops
  // below `target` live clusters: victims die smallest-first, index as the
  // tiebreak, so when the cap truncates elimination the largest small
  // clusters are the ones that survive).
  auto eliminate_small = [&](int max_size) {
    std::vector<int32_t> victims;
    for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
      if (nodes[x].alive &&
          static_cast<int>(nodes[x].members.size()) <= max_size) {
        victims.push_back(x);
      }
    }
    std::sort(victims.begin(), victims.end(), [&](int32_t a, int32_t b) {
      if (nodes[a].members.size() != nodes[b].members.size()) {
        return nodes[a].members.size() < nodes[b].members.size();
      }
      return a < b;
    });
    bool removed = false;
    for (int32_t v : victims) {
      if (live <= target) break;
      nodes[v].alive = false;
      nodes[v].members.clear();
      nodes[v].scattered.Clear();
      nodes[v].reps.Clear();
      --live;
      removed = true;
      index.MarkDead(v);
    }
    if (!removed) return;
    for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
      if (nodes[x].alive && nodes[x].closest >= 0 &&
          !nodes[nodes[x].closest].alive) {
        recompute_closest(x);
      }
    }
  };

  const int64_t phase1_at = static_cast<int64_t>(
      options.phase1_trigger_fraction * static_cast<double>(n));
  const int64_t phase2_at = static_cast<int64_t>(
      options.phase2_trigger_multiple * static_cast<double>(target));
  bool phase1_done = !options.eliminate_outliers;
  bool phase2_done = !options.eliminate_outliers;

  // Per-merge scratch, hoisted out of the loop.
  std::vector<int32_t> cands;
  std::vector<double> cand_d2;
  std::vector<uint8_t> pruned;
  cands.reserve(static_cast<size_t>(n));
  cand_d2.resize(static_cast<size_t>(n));
  pruned.resize(static_cast<size_t>(n));

  while (live > target) {
    if (!phase1_done && live <= phase1_at) {
      phase1_done = true;
      eliminate_small(options.phase1_max_size);
      if (live <= target) break;
    }
    if (!phase2_done && live <= phase2_at) {
      phase2_done = true;
      eliminate_small(options.phase2_max_size);
      if (live <= target) break;
    }
    // Globally closest pair (u, v): pop until the top entry is current.
    int32_t u = -1;
    while (!heap.empty()) {
      PairEntry e = heap.top();
      const Node& cand = nodes[e.id];
      if (!cand.alive || e.stamp != cand.stamp || cand.closest < 0) {
        heap.pop();
        continue;
      }
      u = e.id;
      heap.pop();
      break;
    }
    DBS_CHECK(u >= 0);
    int32_t v = nodes[u].closest;
    DBS_CHECK(v >= 0 && nodes[v].alive);

    // Merge v into u.
    Node& a = nodes[u];
    Node& b = nodes[v];
    double wa = static_cast<double>(a.members.size());
    double wb = static_cast<double>(b.members.size());
    for (int j = 0; j < dim; ++j) {
      a.centroid[j] = (a.centroid[j] * wa + b.centroid[j] * wb) / (wa + wb);
      cent_flat[static_cast<size_t>(u) * dim + j] = a.centroid[j];
    }
    a.members.insert(a.members.end(), b.members.begin(), b.members.end());

    // New scattered set from the union of both clusters' scattered points.
    data::PointSet pool = a.scattered;
    pool.AppendAll(b.scattered);
    a.scattered = internal::SelectScattered(pool, a.centroid,
                                            options.num_representatives);
    a.reps = internal::ShrinkToward(a.scattered, a.centroid,
                                    options.shrink_factor);
    update_radius(u);

    b.alive = false;
    b.members.clear();
    b.scattered.Clear();
    b.reps.Clear();
    --live;
    index.MarkDead(v);
    index.MarkDirty(u);

    // Refresh pointers. First repair every cluster whose closest referenced
    // u or v — their nearest cluster may have changed arbitrarily.
    for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
      if (!nodes[x].alive || x == u) continue;
      if (nodes[x].closest == u || nodes[x].closest == v) {
        recompute_closest(x);
      }
    }

    // Then score the merged cluster against every live candidate in one
    // batched kernel pass (optionally sharded; shards fill disjoint slots
    // of cand_d2, so the result is identical at any worker count), and
    // sweep the scores in ascending index order: the sweep both selects
    // u's new closest (strict <, so lowest index wins ties) and pushes the
    // new u-distances into candidates that u moved closer to.
    cands.clear();
    for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
      if (nodes[x].alive && x != u) cands.push_back(x);
    }
    const double* a_flat = a.reps.flat().data();
    const int64_t a_count = a.reps.size();
    const double* a_cent = a.centroid.data();
    const double a_radius = rep_radius[static_cast<size_t>(u)];
    auto score = [&](int64_t begin, int64_t end) {
      for (int64_t t = begin; t < end; ++t) {
        int32_t xi = cands[static_cast<size_t>(t)];
        // Sqrt-free certified prune: c2 >= (sqrt(thr) + r_a + r_x)^2
        // implies (with the stored inflated roots and the 1e-9 deflation)
        // that the exact kernel value strictly exceeds x's closest_d2, so
        // x provably cannot take a push-update and the kernel is skipped.
        // The stored weak bound (closest_d2 itself, which the exact value
        // strictly exceeds) lets the repair pass below restore u's own
        // nearest exactly.
        double c2 = 0.0;
        for (int d = 0; d < dim; ++d) {
          double diff = a_cent[d] - cent_flat[static_cast<size_t>(xi) * dim
                                              + d];
          c2 += diff * diff;
        }
        double rhs = thr_sqrt[static_cast<size_t>(xi)] + a_radius +
                     rep_radius[static_cast<size_t>(xi)];
        if (c2 * (1.0 - 1e-9) >= rhs * rhs) {
          cand_d2[static_cast<size_t>(t)] =
              closest_d2_flat[static_cast<size_t>(xi)];
          pruned[static_cast<size_t>(t)] = 1;
          continue;
        }
        pruned[static_cast<size_t>(t)] = 0;
        const Node& x = nodes[xi];
        cand_d2[static_cast<size_t>(t)] = MinRepDist2Dyn(
            a_flat, a_count, x.reps.flat().data(), x.reps.size(), dim);
      }
    };
    if (options.executor != nullptr) {
      DBS_RETURN_IF_ERROR(options.executor->ParallelFor(
          static_cast<int64_t>(cands.size()), score));
    } else {
      score(0, static_cast<int64_t>(cands.size()));
    }
    int32_t a_closest = -1;
    double a_closest_d2 = kInf;
    for (size_t t = 0; t < cands.size(); ++t) {
      if (pruned[t]) continue;
      int32_t x = cands[t];
      double d2 = cand_d2[t];
      if (d2 < a_closest_d2) {
        a_closest_d2 = d2;
        a_closest = x;
      }
      if (d2 < nodes[x].closest_d2) {
        set_closest(x, u, d2);
      }
    }
    // Repair pass: pruning only certified that a skipped candidate cannot
    // take a push-update; it may still be (or tie for) u's nearest. A
    // pruned candidate's exact value strictly exceeds its weak bound, so
    // anything bounded above the provisional winner is out; the rest get a
    // sharper sqrt-based bound and, if still unresolved, the exact kernel,
    // with a full lexicographic compare — yielding the same (d2, index)
    // minimum as the unpruned ascending scan.
    for (size_t t = 0; t < cands.size(); ++t) {
      if (pruned[t] == 0 || cand_d2[t] > a_closest_d2) continue;
      int32_t x = cands[t];
      double c2 = 0.0;
      for (int d = 0; d < dim; ++d) {
        double diff =
            a_cent[d] - cent_flat[static_cast<size_t>(x) * dim + d];
        c2 += diff * diff;
      }
      double gap =
          std::sqrt(c2) - a_radius - rep_radius[static_cast<size_t>(x)];
      if (gap > 0.0 && gap * gap * (1.0 - 1e-9) > a_closest_d2) continue;
      double d2 =
          MinRepDist2Dyn(a_flat, a_count, nodes[x].reps.flat().data(),
                         nodes[x].reps.size(), dim);
      if (d2 < a_closest_d2 || (d2 == a_closest_d2 && x < a_closest)) {
        a_closest_d2 = d2;
        a_closest = x;
      }
    }
    set_closest(u, a_closest, a_closest == -1 ? kInf : a_closest_d2);
  }

  ClusteringResult result;
  result.labels.assign(static_cast<size_t>(n), -1);
  for (Node& node : nodes) {
    if (!node.alive) continue;
    Cluster cluster;
    cluster.members = std::move(node.members);
    cluster.centroid = std::move(node.centroid);
    cluster.representatives = std::move(node.reps);
    cluster.weight = static_cast<double>(cluster.members.size());
    int32_t label = static_cast<int32_t>(result.clusters.size());
    for (int64_t m : cluster.members) {
      result.labels[static_cast<size_t>(m)] = label;
    }
    result.clusters.push_back(std::move(cluster));
  }
  return result;
}

}  // namespace dbs::cluster
