// Clustering-Feature tree (BIRCH phase 1; Zhang, Ramakrishnan & Livny,
// SIGMOD 1996).
//
// A CF summarizes a set of points by (N, LS, SS): count, per-dimension
// linear sum, and the scalar sum of squared norms. CFs are additive, which
// is what lets the tree absorb points into subclusters in one pass. A leaf
// entry absorbs a point when the merged subcluster's radius stays within
// the threshold T; otherwise a new entry is created, splitting nodes that
// overflow their page-derived capacity. When the tree outgrows its memory
// budget it is rebuilt with a larger T (fewer, coarser subclusters) — the
// mechanism that lets the paper cap BIRCH's memory at the size of the
// competing sample (§4.2).

#ifndef DBS_CLUSTER_CF_TREE_H_
#define DBS_CLUSTER_CF_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/point_set.h"
#include "util/status.h"

namespace dbs::cluster {

// Additive clustering feature.
struct ClusteringFeature {
  double n = 0.0;
  std::vector<double> ls;  // linear sum per dimension
  double ss = 0.0;         // sum of squared L2 norms

  ClusteringFeature() = default;
  explicit ClusteringFeature(int dim) : ls(dim, 0.0) {}

  int dim() const { return static_cast<int>(ls.size()); }

  void AddPoint(data::PointView p);
  void Merge(const ClusteringFeature& other);

  double centroid(int j) const { return ls[j] / n; }
  std::vector<double> Centroid() const;

  // RMS distance of the member points from the centroid:
  //   R^2 = SS/N - ||LS/N||^2  (clamped at 0 against roundoff).
  double Radius() const;

  // Radius the union of this CF and `other` would have.
  double MergedRadius(const ClusteringFeature& other) const;

  // Squared distance between the two centroids (BIRCH metric D0).
  static double CentroidDistance2(const ClusteringFeature& a,
                                  const ClusteringFeature& b);
};

struct CfTreeOptions {
  // Simulated page size; leaf/internal capacities are derived from it
  // (paper §4.2 uses 1024 bytes).
  int page_size_bytes = 1024;
  // Total memory the tree may occupy (#nodes * page_size). The paper caps
  // this at the size of the competing sample.
  int64_t memory_budget_bytes = 1024 * 1024;
  // Initial absorption threshold T (paper §4.2 starts at 0).
  double initial_threshold = 0.0;
};

class CfTree {
 public:
  // Creates an empty tree for points of dimensionality `dim`.
  [[nodiscard]] static Result<CfTree> Create(int dim, const CfTreeOptions& options);

  CfTree(CfTree&&) = default;
  CfTree& operator=(CfTree&&) = default;

  // Inserts one point, rebuilding with a larger threshold if the memory
  // budget is exceeded.
  void Insert(data::PointView p);

  // All leaf-level subclusters, in tree order.
  std::vector<ClusteringFeature> LeafEntries() const;

  int64_t num_points() const { return static_cast<int64_t>(total_n_); }
  int64_t num_nodes() const { return node_count_; }
  int64_t num_leaf_entries() const;
  double threshold() const { return threshold_; }
  int rebuilds() const { return rebuilds_; }
  int leaf_capacity() const { return leaf_capacity_; }
  int internal_capacity() const { return internal_capacity_; }
  int64_t memory_bytes() const {
    return node_count_ * static_cast<int64_t>(options_.page_size_bytes);
  }

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<ClusteringFeature> entries;
    // Parallel to `entries` when !is_leaf.
    std::vector<std::unique_ptr<Node>> children;
  };

  CfTree() = default;

  void InsertCf(const ClusteringFeature& cf);
  // Returns a new sibling if `node` split, nullptr otherwise.
  std::unique_ptr<Node> InsertIntoNode(Node* node,
                                       const ClusteringFeature& cf);
  std::unique_ptr<Node> SplitNode(Node* node);
  void RebuildWithLargerThreshold();
  double SmallestLeafEntryGap() const;
  void CollectLeaves(const Node* node,
                     std::vector<ClusteringFeature>* out) const;

  int dim_ = 0;
  CfTreeOptions options_;
  int leaf_capacity_ = 0;
  int internal_capacity_ = 0;
  double threshold_ = 0.0;
  double total_n_ = 0.0;
  int64_t node_count_ = 0;
  int rebuilds_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace dbs::cluster

#endif  // DBS_CLUSTER_CF_TREE_H_
