// Shared clustering result types.
//
// Every clusterer in this module reports its output as a ClusteringResult:
// per-cluster membership, centroid, and (for the hierarchical algorithm) the
// shrunk representative points that CURE-style evaluation matches against
// ground truth. BIRCH reports centers and radii through its own summary
// (see birch.h) because it never materializes memberships.

#ifndef DBS_CLUSTER_CLUSTERING_H_
#define DBS_CLUSTER_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "data/point_set.h"

namespace dbs::cluster {

struct Cluster {
  // Indices into the clustered point set.
  std::vector<int64_t> members;
  std::vector<double> centroid;
  // Representative points (possibly empty for algorithms without them).
  data::PointSet representatives;
  // Total weight of the members (== members.size() when unweighted).
  double weight = 0.0;
};

struct ClusteringResult {
  std::vector<Cluster> clusters;
  // Label per input point: index into `clusters`, or -1 if unassigned.
  std::vector<int32_t> labels;

  int num_clusters() const { return static_cast<int>(clusters.size()); }
};

// Index of the cluster whose centroid is nearest to p (L2); -1 if none.
int32_t NearestClusterByCentroid(const ClusteringResult& result,
                                 data::PointView p);

}  // namespace dbs::cluster

#endif  // DBS_CLUSTER_CLUSTERING_H_
