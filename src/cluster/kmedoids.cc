#include "cluster/kmedoids.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.h"

namespace dbs::cluster {
namespace {

// Weighted k-means++-style seeding over medoid candidates.
std::vector<int64_t> SeedMedoids(const data::PointSet& points,
                                 const std::vector<double>& weights, int k,
                                 data::Metric metric, Rng& rng) {
  const int64_t n = points.size();
  auto weight_of = [&](int64_t i) {
    return weights.empty() ? 1.0 : weights[static_cast<size_t>(i)];
  };

  std::vector<int64_t> medoids;
  double total_w = 0.0;
  for (int64_t i = 0; i < n; ++i) total_w += weight_of(i);
  double r = rng.NextDouble() * total_w;
  int64_t first = n - 1;
  for (int64_t i = 0; i < n; ++i) {
    r -= weight_of(i);
    if (r <= 0) {
      first = i;
      break;
    }
  }
  medoids.push_back(first);

  std::vector<double> min_d(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    min_d[i] = data::Distance(points[i], points[first], metric);
  }
  while (static_cast<int>(medoids.size()) < k) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) total += weight_of(i) * min_d[i];
    int64_t pick = -1;
    if (total > 0) {
      double draw = rng.NextDouble() * total;
      for (int64_t i = 0; i < n; ++i) {
        draw -= weight_of(i) * min_d[i];
        if (draw <= 0) {
          pick = i;
          break;
        }
      }
    }
    if (pick < 0) {
      pick = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(n)));
    }
    medoids.push_back(pick);
    for (int64_t i = 0; i < n; ++i) {
      min_d[i] = std::min(
          min_d[i], data::Distance(points[i], points[pick], metric));
    }
  }
  return medoids;
}

}  // namespace

[[nodiscard]] Result<KMedoidsResult> KMedoidsCluster(const data::PointSet& points,
                                       const std::vector<double>& weights,
                                       const KMedoidsOptions& options) {
  const int64_t n = points.size();
  if (options.num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (n == 0) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }
  if (!weights.empty()) {
    if (static_cast<int64_t>(weights.size()) != n) {
      return Status::InvalidArgument("weights size must match points");
    }
    for (double w : weights) {
      if (!(w > 0)) {
        return Status::InvalidArgument("weights must be positive");
      }
    }
  }
  const int k = static_cast<int>(std::min<int64_t>(options.num_clusters, n));
  auto weight_of = [&](int64_t i) {
    return weights.empty() ? 1.0 : weights[static_cast<size_t>(i)];
  };

  Rng rng(options.seed);
  std::vector<int64_t> medoids =
      SeedMedoids(points, weights, k, options.metric, rng);
  std::vector<int32_t> labels(static_cast<size_t>(n), -1);

  double cost = 0.0;
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Assignment.
    bool changed = false;
    cost = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double best_d = std::numeric_limits<double>::infinity();
      int32_t best = -1;
      for (int c = 0; c < k; ++c) {
        double d = data::Distance(points[i], points[medoids[c]],
                                  options.metric);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (labels[i] != best) {
        labels[i] = best;
        changed = true;
      }
      cost += weight_of(i) * best_d;
    }

    // Medoid update: within each cluster, the member minimizing the
    // weighted distance sum becomes the new medoid.
    std::vector<std::vector<int64_t>> members(static_cast<size_t>(k));
    for (int64_t i = 0; i < n; ++i) {
      members[static_cast<size_t>(labels[i])].push_back(i);
    }
    bool moved = false;
    for (int c = 0; c < k; ++c) {
      const std::vector<int64_t>& m = members[static_cast<size_t>(c)];
      if (m.empty()) {
        // Re-seed an empty cluster at the globally worst-served point.
        int64_t far = 0;
        double far_d = -1.0;
        for (int64_t i = 0; i < n; ++i) {
          double d = data::Distance(points[i], points[medoids[labels[i]]],
                                    options.metric);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        medoids[c] = far;
        moved = true;
        continue;
      }
      double best_sum = std::numeric_limits<double>::infinity();
      int64_t best_medoid = medoids[c];
      for (int64_t candidate : m) {
        double sum = 0.0;
        for (int64_t other : m) {
          sum += weight_of(other) *
                 data::Distance(points[candidate], points[other],
                                options.metric);
          if (sum >= best_sum) break;
        }
        if (sum < best_sum) {
          best_sum = sum;
          best_medoid = candidate;
        }
      }
      if (best_medoid != medoids[c]) {
        medoids[c] = best_medoid;
        moved = true;
      }
    }
    if (!changed && !moved) break;
  }

  KMedoidsResult result;
  result.cost = cost;
  result.iterations = iter;
  result.medoid_indices = medoids;
  result.clustering.labels = labels;
  result.clustering.clusters.resize(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    Cluster& cluster = result.clustering.clusters[static_cast<size_t>(c)];
    cluster.centroid = points[medoids[c]].ToVector();
    cluster.representatives = data::PointSet(points.dim());
    cluster.representatives.Append(points[medoids[c]]);
  }
  for (int64_t i = 0; i < n; ++i) {
    Cluster& cluster =
        result.clustering.clusters[static_cast<size_t>(labels[i])];
    cluster.members.push_back(i);
    cluster.weight += weight_of(i);
  }
  return result;
}

}  // namespace dbs::cluster
