#include "cluster/birch.h"

#include <algorithm>
#include <limits>

namespace dbs::cluster {
namespace {

// Weighted centroid-distance agglomeration of CF subclusters down to k.
// Uses closest-pointer maintenance, O(m^2) overall.
std::vector<ClusteringFeature> Agglomerate(std::vector<ClusteringFeature> cfs,
                                           int k) {
  const int m = static_cast<int>(cfs.size());
  if (m <= k) return cfs;
  std::vector<bool> alive(m, true);
  std::vector<int> closest(m, -1);
  std::vector<double> closest_d2(m,
                                 std::numeric_limits<double>::infinity());

  auto recompute = [&](int i) {
    closest[i] = -1;
    closest_d2[i] = std::numeric_limits<double>::infinity();
    for (int x = 0; x < m; ++x) {
      if (x == i || !alive[x]) continue;
      double d2 = ClusteringFeature::CentroidDistance2(cfs[i], cfs[x]);
      if (d2 < closest_d2[i]) {
        closest_d2[i] = d2;
        closest[i] = x;
      }
    }
  };
  for (int i = 0; i < m; ++i) recompute(i);

  int live = m;
  while (live > k) {
    int u = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      if (alive[i] && closest[i] >= 0 && closest_d2[i] < best) {
        best = closest_d2[i];
        u = i;
      }
    }
    DBS_CHECK(u >= 0);
    int v = closest[u];
    cfs[u].Merge(cfs[v]);
    alive[v] = false;
    --live;
    for (int x = 0; x < m; ++x) {
      if (!alive[x] || x == u) continue;
      if (closest[x] == u || closest[x] == v) recompute(x);
    }
    // Refresh u and push its (moved) centroid into the others.
    closest[u] = -1;
    closest_d2[u] = std::numeric_limits<double>::infinity();
    for (int x = 0; x < m; ++x) {
      if (!alive[x] || x == u) continue;
      double d2 = ClusteringFeature::CentroidDistance2(cfs[u], cfs[x]);
      if (d2 < closest_d2[u]) {
        closest_d2[u] = d2;
        closest[u] = x;
      }
      if (d2 < closest_d2[x]) {
        closest_d2[x] = d2;
        closest[x] = u;
      }
    }
  }

  std::vector<ClusteringFeature> out;
  out.reserve(k);
  for (int i = 0; i < m; ++i) {
    if (alive[i]) out.push_back(std::move(cfs[i]));
  }
  return out;
}

}  // namespace

[[nodiscard]] Result<BirchResult> RunBirch(data::DataScan& scan,
                                     const BirchOptions& options) {
  if (options.num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (scan.size() == 0) {
    return Status::InvalidArgument("cannot cluster an empty dataset");
  }
  DBS_ASSIGN_OR_RETURN(CfTree tree, CfTree::Create(scan.dim(), options.tree));

  // Phase 1: one streaming pass.
  scan.Reset();
  data::ScanBatch batch;
  while (scan.NextBatch(&batch)) {
    for (int64_t i = 0; i < batch.count; ++i) {
      tree.Insert(batch.point(i, scan.dim()));
    }
  }

  BirchResult result;
  result.leaf_entries = tree.num_leaf_entries();
  result.final_threshold = tree.threshold();
  result.rebuilds = tree.rebuilds();

  // Phase 3: global clustering of the leaf subclusters.
  std::vector<ClusteringFeature> merged =
      Agglomerate(tree.LeafEntries(), options.num_clusters);
  result.clusters.reserve(merged.size());
  for (const ClusteringFeature& cf : merged) {
    BirchCluster cluster;
    cluster.center = cf.Centroid();
    cluster.radius = cf.Radius();
    cluster.weight = cf.n;
    result.clusters.push_back(std::move(cluster));
  }
  return result;
}

[[nodiscard]] Result<BirchResult> RunBirch(const data::PointSet& points,
                                     const BirchOptions& options) {
  data::InMemoryScan scan(&points);
  return RunBirch(scan, options);
}

}  // namespace dbs::cluster
