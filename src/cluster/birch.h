// BIRCH driver (phases 1 and 3 of the SIGMOD 1996 algorithm).
//
// Phase 1 streams the dataset once into a CF-tree under a memory budget;
// phase 3 agglomerates the leaf subclusters (weighted, centroid distance)
// into the requested number of clusters. The result reports centers, radii
// and weights — BIRCH never materializes point memberships, which is why
// the paper's evaluation matches it by "reported center lies inside a true
// cluster" (§4.2). Following §4.2, the memory budget should be set to the
// size of the sample the competing methods use, while BIRCH itself reads
// the ENTIRE dataset.

#ifndef DBS_CLUSTER_BIRCH_H_
#define DBS_CLUSTER_BIRCH_H_

#include <cstdint>
#include <vector>

#include "cluster/cf_tree.h"
#include "data/dataset.h"
#include "util/status.h"

namespace dbs::cluster {

struct BirchOptions {
  int num_clusters = 10;
  CfTreeOptions tree;
};

struct BirchCluster {
  std::vector<double> center;
  double radius = 0.0;
  // Number of data points summarized by this cluster.
  double weight = 0.0;
};

struct BirchResult {
  std::vector<BirchCluster> clusters;
  // Diagnostics from phase 1.
  int64_t leaf_entries = 0;
  double final_threshold = 0.0;
  int rebuilds = 0;
};

// Runs phase 1 over `scan` (exactly one pass) and phase 3 in memory.
[[nodiscard]] Result<BirchResult> RunBirch(data::DataScan& scan,
                                     const BirchOptions& options);

[[nodiscard]] Result<BirchResult> RunBirch(const data::PointSet& points,
                                     const BirchOptions& options);

}  // namespace dbs::cluster

#endif  // DBS_CLUSTER_BIRCH_H_
