#include "cluster/hierarchical_internal.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "data/distance.h"

namespace dbs::cluster::internal {

[[nodiscard]] Status ValidateHierarchicalArgs(const data::PointSet& points,
                                const HierarchicalOptions& options) {
  if (options.num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (options.num_representatives <= 0) {
    return Status::InvalidArgument("num_representatives must be positive");
  }
  if (options.shrink_factor < 0 || options.shrink_factor > 1) {
    return Status::InvalidArgument("shrink_factor must be in [0, 1]");
  }
  if (options.phase1_trigger_fraction < 0 ||
      options.phase1_trigger_fraction > 1) {
    return Status::InvalidArgument("phase1_trigger_fraction out of [0, 1]");
  }
  if (options.phase2_trigger_multiple < 1) {
    return Status::InvalidArgument("phase2_trigger_multiple must be >= 1");
  }
  if (options.phase1_max_size < 0 || options.phase2_max_size < 0) {
    return Status::InvalidArgument("elimination sizes cannot be negative");
  }
  if (points.size() == 0) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }
  return Status::Ok();
}

data::PointSet SelectScattered(const data::PointSet& candidates,
                               const std::vector<double>& centroid, int c) {
  const int64_t n = candidates.size();
  const int dim = candidates.dim();
  if (n <= c) return candidates;

  data::PointView mean(centroid.data(), dim);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  std::vector<bool> taken(n, false);

  // Farthest from the centroid first.
  int64_t first = 0;
  double best = -1.0;
  for (int64_t i = 0; i < n; ++i) {
    double d2 = data::SquaredL2(candidates[i], mean);
    if (d2 > best) {
      best = d2;
      first = i;
    }
  }
  data::PointSet out(dim);
  out.Append(candidates[first]);
  taken[first] = true;
  for (int64_t i = 0; i < n; ++i) {
    min_d2[i] = data::SquaredL2(candidates[i], candidates[first]);
  }

  for (int k = 1; k < c; ++k) {
    int64_t pick = -1;
    double far = -1.0;
    for (int64_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      if (min_d2[i] > far) {
        far = min_d2[i];
        pick = i;
      }
    }
    if (pick < 0) break;
    taken[pick] = true;
    out.Append(candidates[pick]);
    for (int64_t i = 0; i < n; ++i) {
      if (!taken[i]) {
        min_d2[i] =
            std::min(min_d2[i], data::SquaredL2(candidates[i],
                                                candidates[pick]));
      }
    }
  }
  return out;
}

data::PointSet ShrinkToward(const data::PointSet& scattered,
                            const std::vector<double>& centroid,
                            double shrink) {
  data::PointSet out(scattered.dim());
  out.Reserve(scattered.size());
  std::vector<double> buf(scattered.dim());
  for (int64_t i = 0; i < scattered.size(); ++i) {
    data::PointView p = scattered[i];
    for (int j = 0; j < scattered.dim(); ++j) {
      buf[j] = p[j] + shrink * (centroid[j] - p[j]);
    }
    out.Append(buf);
  }
  return out;
}

}  // namespace dbs::cluster::internal
