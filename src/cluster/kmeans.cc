#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "data/distance.h"
#include "util/rng.h"

namespace dbs::cluster {
namespace {

// k-means++ seeding: first center weight-proportional, then each next
// center with probability proportional to weight * D(x)^2.
data::PointSet SeedCenters(const data::PointSet& points,
                           const std::vector<double>& weights, int k,
                           Rng& rng) {
  const int64_t n = points.size();
  const int dim = points.dim();
  data::PointSet centers(dim);

  auto weight_of = [&](int64_t i) {
    return weights.empty() ? 1.0 : weights[static_cast<size_t>(i)];
  };

  // First center: weighted draw.
  double total_w = 0.0;
  for (int64_t i = 0; i < n; ++i) total_w += weight_of(i);
  double r = rng.NextDouble() * total_w;
  int64_t first = n - 1;
  for (int64_t i = 0; i < n; ++i) {
    r -= weight_of(i);
    if (r <= 0) {
      first = i;
      break;
    }
  }
  centers.Append(points[first]);

  std::vector<double> min_d2(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    min_d2[i] = data::SquaredL2(points[i], points[first]);
  }

  while (centers.size() < k) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) total += weight_of(i) * min_d2[i];
    int64_t pick = -1;
    if (total > 0) {
      double draw = rng.NextDouble() * total;
      for (int64_t i = 0; i < n; ++i) {
        draw -= weight_of(i) * min_d2[i];
        if (draw <= 0) {
          pick = i;
          break;
        }
      }
    }
    if (pick < 0) {
      // All points coincide with centers; duplicate an arbitrary point.
      pick = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(n)));
    }
    centers.Append(points[pick]);
    for (int64_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i], data::SquaredL2(points[i],
                                                      points[pick]));
    }
  }
  return centers;
}

}  // namespace

[[nodiscard]] Result<KMeansResult> KMeansCluster(const data::PointSet& points,
                                   const std::vector<double>& weights,
                                   const KMeansOptions& options) {
  const int64_t n = points.size();
  const int dim = points.dim();
  if (options.num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (n == 0) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }
  if (!weights.empty()) {
    if (static_cast<int64_t>(weights.size()) != n) {
      return Status::InvalidArgument("weights size must match points");
    }
    for (double w : weights) {
      if (!(w > 0)) {
        return Status::InvalidArgument("weights must be positive");
      }
    }
  }
  const int k = static_cast<int>(std::min<int64_t>(options.num_clusters, n));

  auto weight_of = [&](int64_t i) {
    return weights.empty() ? 1.0 : weights[static_cast<size_t>(i)];
  };

  Rng rng(options.seed);
  data::PointSet centers = SeedCenters(points, weights, k, rng);

  std::vector<int32_t> labels(static_cast<size_t>(n), -1);
  double prev_inertia = std::numeric_limits<double>::infinity();
  double inertia = 0.0;
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Assignment step.
    bool changed = false;
    inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double best_d2 = std::numeric_limits<double>::infinity();
      int32_t best = -1;
      for (int c = 0; c < k; ++c) {
        double d2 = data::SquaredL2(points[i], centers[c]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (labels[i] != best) {
        labels[i] = best;
        changed = true;
      }
      inertia += weight_of(i) * best_d2;
    }

    // Update step (weighted means).
    std::vector<double> sums(static_cast<size_t>(k) * dim, 0.0);
    std::vector<double> cluster_w(static_cast<size_t>(k), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      double w = weight_of(i);
      cluster_w[labels[i]] += w;
      double* s = sums.data() + static_cast<size_t>(labels[i]) * dim;
      for (int j = 0; j < dim; ++j) s[j] += w * points[i][j];
    }
    for (int c = 0; c < k; ++c) {
      if (cluster_w[c] > 0) {
        double* dst = centers.MutableRow(c);
        const double* s = sums.data() + static_cast<size_t>(c) * dim;
        for (int j = 0; j < dim; ++j) dst[j] = s[j] / cluster_w[c];
      } else {
        // Empty cluster: reseed at the point farthest from its center.
        int64_t far = 0;
        double far_d2 = -1.0;
        for (int64_t i = 0; i < n; ++i) {
          double d2 = data::SquaredL2(points[i], centers[labels[i]]);
          if (d2 > far_d2) {
            far_d2 = d2;
            far = i;
          }
        }
        double* dst = centers.MutableRow(c);
        for (int j = 0; j < dim; ++j) dst[j] = points[far][j];
        changed = true;
      }
    }

    if (!changed) break;
    if (prev_inertia - inertia <
        options.tolerance * std::max(prev_inertia, 1e-12)) {
      break;
    }
    prev_inertia = inertia;
  }

  KMeansResult result;
  result.inertia = inertia;
  result.iterations = iter;
  result.clustering.labels = labels;
  result.clustering.clusters.resize(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    result.clustering.clusters[c].centroid = centers[c].ToVector();
  }
  for (int64_t i = 0; i < n; ++i) {
    Cluster& cl = result.clustering.clusters[static_cast<size_t>(labels[i])];
    cl.members.push_back(i);
    cl.weight += weight_of(i);
  }
  return result;
}

}  // namespace dbs::cluster
