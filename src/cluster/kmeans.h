// Weighted Lloyd's k-means with k-means++ seeding.
//
// §3.1 of the paper: K-means optimizes a criterion that weights every data
// point equally, so running it directly on a density-biased sample would
// optimize the wrong objective. Weighting each sampled point by the inverse
// of its inclusion probability (BiasedSample::Weights) restores an unbiased
// estimate of the full-data objective. This implementation accepts those
// per-point weights in both the seeding and the center updates; pass an
// empty weight vector for plain unweighted k-means.

#ifndef DBS_CLUSTER_KMEANS_H_
#define DBS_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "data/point_set.h"
#include "util/status.h"

namespace dbs::cluster {

struct KMeansOptions {
  int num_clusters = 10;
  int max_iterations = 100;
  // Stop when no assignment changes or the weighted inertia improves by
  // less than this relative amount.
  double tolerance = 1e-6;
  uint64_t seed = 1;
};

struct KMeansResult {
  ClusteringResult clustering;
  // Weighted sum of squared distances to assigned centers.
  double inertia = 0.0;
  int iterations = 0;
};

// `weights` must be empty (all points weigh 1) or have one positive entry
// per point.
[[nodiscard]] Result<KMeansResult> KMeansCluster(const data::PointSet& points,
                                   const std::vector<double>& weights,
                                   const KMeansOptions& options);

}  // namespace dbs::cluster

#endif  // DBS_CLUSTER_KMEANS_H_
