// Weighted k-medoids (PAM-style) clustering.
//
// §3.1 discusses running K-medoids on a density-biased sample: like
// K-means it optimizes a per-point criterion, so the sample points must be
// weighted by inverse inclusion probability to estimate the full-data
// objective. Medoids are actual data points, which makes the result robust
// to outliers in the sample and directly reportable.
//
// The implementation seeds with weighted k-means++ and then alternates
// assignment with an exact per-cluster medoid update (the O(m^2) variant
// of PAM's swap phase restricted to within-cluster swaps — the standard
// "alternating" k-medoids). Intended for samples of a few thousand points,
// which is exactly the regime biased sampling produces.

#ifndef DBS_CLUSTER_KMEDOIDS_H_
#define DBS_CLUSTER_KMEDOIDS_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "data/distance.h"
#include "data/point_set.h"
#include "util/status.h"

namespace dbs::cluster {

struct KMedoidsOptions {
  int num_clusters = 10;
  int max_iterations = 50;
  data::Metric metric = data::Metric::kL2;
  uint64_t seed = 1;
};

struct KMedoidsResult {
  ClusteringResult clustering;
  // Indices (into the input point set) of the final medoids, parallel to
  // clustering.clusters.
  std::vector<int64_t> medoid_indices;
  // Weighted sum of distances to assigned medoids.
  double cost = 0.0;
  int iterations = 0;
};

// `weights` empty (all 1) or one positive entry per point.
[[nodiscard]] Result<KMedoidsResult> KMedoidsCluster(const data::PointSet& points,
                                       const std::vector<double>& weights,
                                       const KMedoidsOptions& options);

}  // namespace dbs::cluster

#endif  // DBS_CLUSTER_KMEDOIDS_H_
