// Shared internals of the two agglomeration implementations.
//
// HierarchicalCluster (the accelerated core) and
// HierarchicalClusterReference (the frozen pre-acceleration oracle) promise
// bitwise-identical output, so everything that touches representative
// arithmetic lives here exactly once: option validation, the
// farthest-point scatter selection and the shrink step. Not part of the
// public API.

#ifndef DBS_CLUSTER_HIERARCHICAL_INTERNAL_H_
#define DBS_CLUSTER_HIERARCHICAL_INTERNAL_H_

#include <vector>

#include "cluster/hierarchical.h"
#include "data/point_set.h"
#include "util/status.h"

namespace dbs::cluster::internal {

// Argument validation shared by both implementations.
[[nodiscard]] Status ValidateHierarchicalArgs(const data::PointSet& points,
                                const HierarchicalOptions& options);

// Selects up to `c` well-scattered points from `candidates` via the
// farthest-point heuristic: start with the point farthest from the
// centroid, then repeatedly add the candidate maximizing the minimum
// distance to those already chosen.
data::PointSet SelectScattered(const data::PointSet& candidates,
                               const std::vector<double>& centroid, int c);

// Shrinks each scattered point `shrink` of the way toward the centroid.
data::PointSet ShrinkToward(const data::PointSet& scattered,
                            const std::vector<double>& centroid,
                            double shrink);

}  // namespace dbs::cluster::internal

#endif  // DBS_CLUSTER_HIERARCHICAL_INTERNAL_H_
