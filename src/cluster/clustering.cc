#include "cluster/clustering.h"

#include <limits>

#include "data/distance.h"

namespace dbs::cluster {

int32_t NearestClusterByCentroid(const ClusteringResult& result,
                                 data::PointView p) {
  int32_t best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < result.clusters.size(); ++i) {
    const Cluster& c = result.clusters[i];
    if (c.centroid.empty()) continue;
    data::PointView centroid(c.centroid.data(),
                             static_cast<int>(c.centroid.size()));
    double d2 = data::SquaredL2(p, centroid);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

}  // namespace dbs::cluster
