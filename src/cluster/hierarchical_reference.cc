// Frozen pre-acceleration agglomeration: every merge picks the closest
// pair by an O(n) scan over per-cluster nearest pointers, and every
// nearest-pointer repair rescans all live clusters with the scalar
// rep-by-rep distance loop.
//
// This is the implementation the accelerated core in hierarchical.cc is
// proven against: tests and bench/micro_cluster require the two to agree
// bitwise on labels, member order, centroids and representative bytes at
// every n/dim/options combination. Do not "improve" this file — its value
// is that it stays exactly as slow and exactly as simple as the original.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cluster/hierarchical.h"
#include "cluster/hierarchical_internal.h"
#include "data/distance.h"
#include "data/kd_tree.h"

namespace dbs::cluster {
namespace {

// Internal per-cluster state during agglomeration.
struct Node {
  bool alive = true;
  std::vector<int64_t> members;
  std::vector<double> centroid;      // weighted by member count
  data::PointSet scattered;          // unshrunk well-scattered points
  data::PointSet reps;               // scattered points shrunk toward mean
  int32_t closest = -1;              // nearest live cluster
  double closest_d2 = 0.0;
};

// Minimum squared distance between the representative sets of a and b.
double ClusterDistance2(const Node& a, const Node& b) {
  double best = std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < a.reps.size(); ++i) {
    data::PointView pa = a.reps[i];
    for (int64_t j = 0; j < b.reps.size(); ++j) {
      best = std::min(best, data::SquaredL2(pa, b.reps[j]));
    }
  }
  return best;
}

// Recomputes node.closest by scanning all live clusters.
void RecomputeClosest(std::vector<Node>& nodes, int32_t id) {
  Node& node = nodes[id];
  node.closest = -1;
  node.closest_d2 = std::numeric_limits<double>::infinity();
  for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
    if (x == id || !nodes[x].alive) continue;
    double d2 = ClusterDistance2(node, nodes[x]);
    if (d2 < node.closest_d2) {
      node.closest_d2 = d2;
      node.closest = x;
    }
  }
}

}  // namespace

[[nodiscard]] Result<ClusteringResult> HierarchicalClusterReference(
    const data::PointSet& points, const HierarchicalOptions& options) {
  DBS_RETURN_IF_ERROR(internal::ValidateHierarchicalArgs(points, options));
  const int64_t n = points.size();
  const int dim = points.dim();

  // Initialize one singleton cluster per point.
  std::vector<Node> nodes(n);
  for (int64_t i = 0; i < n; ++i) {
    Node& node = nodes[i];
    node.members = {i};
    node.centroid = points[i].ToVector();
    node.scattered = data::PointSet(dim);
    node.scattered.Append(points[i]);
    node.reps = node.scattered;
  }

  // Initial nearest neighbors via a kd-tree over the points (singleton
  // clusters have a single representative = the point itself).
  {
    data::KdTree tree(&points);
    for (int64_t i = 0; i < n; ++i) {
      int64_t nn = tree.Nearest(points[i], /*exclude=*/i);
      if (nn >= 0) {
        nodes[i].closest = static_cast<int32_t>(nn);
        nodes[i].closest_d2 = data::SquaredL2(points[i], points[nn]);
      }
    }
  }

  int64_t live = n;
  const int64_t target = std::min<int64_t>(options.num_clusters, n);

  // Removes live clusters with at most `max_size` members (but never drops
  // below `target` live clusters: victims die smallest-first, index as the
  // tiebreak, so when the cap truncates elimination the largest small
  // clusters are the ones that survive).
  auto eliminate_small = [&](int max_size) {
    std::vector<int32_t> victims;
    for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
      if (nodes[x].alive &&
          static_cast<int>(nodes[x].members.size()) <= max_size) {
        victims.push_back(x);
      }
    }
    std::sort(victims.begin(), victims.end(), [&](int32_t a, int32_t b) {
      if (nodes[a].members.size() != nodes[b].members.size()) {
        return nodes[a].members.size() < nodes[b].members.size();
      }
      return a < b;
    });
    bool removed = false;
    for (int32_t v : victims) {
      if (live <= target) break;
      nodes[v].alive = false;
      nodes[v].members.clear();
      nodes[v].scattered.Clear();
      nodes[v].reps.Clear();
      --live;
      removed = true;
    }
    if (!removed) return;
    for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
      if (nodes[x].alive && nodes[x].closest >= 0 &&
          !nodes[nodes[x].closest].alive) {
        RecomputeClosest(nodes, x);
      }
    }
  };

  const int64_t phase1_at = static_cast<int64_t>(
      options.phase1_trigger_fraction * static_cast<double>(n));
  const int64_t phase2_at = static_cast<int64_t>(
      options.phase2_trigger_multiple * static_cast<double>(target));
  bool phase1_done = !options.eliminate_outliers;
  bool phase2_done = !options.eliminate_outliers;

  while (live > target) {
    if (!phase1_done && live <= phase1_at) {
      phase1_done = true;
      eliminate_small(options.phase1_max_size);
      if (live <= target) break;
    }
    if (!phase2_done && live <= phase2_at) {
      phase2_done = true;
      eliminate_small(options.phase2_max_size);
      if (live <= target) break;
    }
    // Globally closest pair (u, v).
    int32_t u = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int32_t i = 0; i < static_cast<int32_t>(nodes.size()); ++i) {
      if (nodes[i].alive && nodes[i].closest >= 0 &&
          nodes[i].closest_d2 < best) {
        best = nodes[i].closest_d2;
        u = i;
      }
    }
    DBS_CHECK(u >= 0);
    int32_t v = nodes[u].closest;
    DBS_CHECK(v >= 0 && nodes[v].alive);

    // Merge v into u.
    Node& a = nodes[u];
    Node& b = nodes[v];
    double wa = static_cast<double>(a.members.size());
    double wb = static_cast<double>(b.members.size());
    for (int j = 0; j < dim; ++j) {
      a.centroid[j] = (a.centroid[j] * wa + b.centroid[j] * wb) / (wa + wb);
    }
    a.members.insert(a.members.end(), b.members.begin(), b.members.end());

    // New scattered set from the union of both clusters' scattered points.
    data::PointSet pool = a.scattered;
    pool.AppendAll(b.scattered);
    a.scattered = internal::SelectScattered(pool, a.centroid,
                                            options.num_representatives);
    a.reps = internal::ShrinkToward(a.scattered, a.centroid,
                                    options.shrink_factor);

    b.alive = false;
    b.members.clear();
    b.scattered.Clear();
    b.reps.Clear();
    --live;

    // Refresh pointers. First fix every cluster whose closest referenced u
    // or v — their nearest cluster may have changed arbitrarily. Then scan
    // once to recompute u's closest, and push the new u-distances into the
    // other clusters' pointers (the merged cluster's representatives moved,
    // so it can now be closer to some x than x's recorded closest).
    for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
      if (!nodes[x].alive || x == u) continue;
      if (nodes[x].closest == u || nodes[x].closest == v) {
        RecomputeClosest(nodes, x);
      }
    }
    a.closest = -1;
    a.closest_d2 = std::numeric_limits<double>::infinity();
    for (int32_t x = 0; x < static_cast<int32_t>(nodes.size()); ++x) {
      if (!nodes[x].alive || x == u) continue;
      double d2 = ClusterDistance2(a, nodes[x]);
      if (d2 < a.closest_d2) {
        a.closest_d2 = d2;
        a.closest = x;
      }
      if (d2 < nodes[x].closest_d2) {
        nodes[x].closest_d2 = d2;
        nodes[x].closest = u;
      }
    }
  }

  ClusteringResult result;
  result.labels.assign(static_cast<size_t>(n), -1);
  for (Node& node : nodes) {
    if (!node.alive) continue;
    Cluster cluster;
    cluster.members = std::move(node.members);
    cluster.centroid = std::move(node.centroid);
    cluster.representatives = std::move(node.reps);
    cluster.weight = static_cast<double>(cluster.members.size());
    int32_t label = static_cast<int32_t>(result.clusters.size());
    for (int64_t m : cluster.members) {
      result.labels[static_cast<size_t>(m)] = label;
    }
    result.clusters.push_back(std::move(cluster));
  }
  return result;
}

}  // namespace dbs::cluster
