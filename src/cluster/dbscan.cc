#include "cluster/dbscan.h"

#include <limits>
#include <vector>

#include "data/distance.h"
#include "data/kd_tree.h"

namespace dbs::cluster {
namespace {

// Up to `c` well-scattered rows of `members` (farthest-point heuristic).
data::PointSet SelectRepresentatives(const data::PointSet& points,
                                     const std::vector<int64_t>& members,
                                     const std::vector<double>& centroid,
                                     int c) {
  data::PointSet out(points.dim());
  if (members.empty()) return out;
  if (static_cast<int>(members.size()) <= c) {
    for (int64_t m : members) out.Append(points[m]);
    return out;
  }
  data::PointView mean(centroid.data(), points.dim());
  std::vector<double> min_d2(members.size(),
                             std::numeric_limits<double>::infinity());
  std::vector<bool> taken(members.size(), false);
  size_t first = 0;
  double far = -1.0;
  for (size_t i = 0; i < members.size(); ++i) {
    double d2 = data::SquaredL2(points[members[i]], mean);
    if (d2 > far) {
      far = d2;
      first = i;
    }
  }
  taken[first] = true;
  out.Append(points[members[first]]);
  for (size_t i = 0; i < members.size(); ++i) {
    min_d2[i] = data::SquaredL2(points[members[i]], points[members[first]]);
  }
  while (out.size() < c) {
    size_t pick = members.size();
    double best = -1.0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (!taken[i] && min_d2[i] > best) {
        best = min_d2[i];
        pick = i;
      }
    }
    if (pick == members.size()) break;
    taken[pick] = true;
    out.Append(points[members[pick]]);
    for (size_t i = 0; i < members.size(); ++i) {
      if (!taken[i]) {
        min_d2[i] = std::min(
            min_d2[i],
            data::SquaredL2(points[members[i]], points[members[pick]]));
      }
    }
  }
  return out;
}

}  // namespace

[[nodiscard]] Result<ClusteringResult> DbscanCluster(const data::PointSet& points,
                                       const DbscanOptions& options,
                                       int max_representatives) {
  if (options.epsilon <= 0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.min_points < 1) {
    return Status::InvalidArgument("min_points must be at least 1");
  }
  if (max_representatives < 1) {
    return Status::InvalidArgument("max_representatives must be positive");
  }
  const int64_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }

  data::KdTree tree(&points);

  // Core-point test (counts include the point itself).
  std::vector<bool> is_core(static_cast<size_t>(n), false);
  for (int64_t i = 0; i < n; ++i) {
    is_core[i] = tree.CountWithinRadius(points[i], options.epsilon,
                                        options.min_points) >=
                 options.min_points;
  }

  ClusteringResult result;
  result.labels.assign(static_cast<size_t>(n), -1);
  std::vector<int64_t> frontier;
  for (int64_t seed = 0; seed < n; ++seed) {
    if (!is_core[seed] || result.labels[seed] >= 0) continue;
    // Grow a new cluster by BFS over epsilon-reachability from core points.
    int32_t label = static_cast<int32_t>(result.clusters.size());
    result.clusters.emplace_back();
    Cluster& cluster = result.clusters.back();
    result.labels[seed] = label;
    frontier.assign(1, seed);
    while (!frontier.empty()) {
      int64_t current = frontier.back();
      frontier.pop_back();
      cluster.members.push_back(current);
      if (!is_core[current]) continue;  // border points do not expand
      for (int64_t nb : tree.WithinRadius(points[current],
                                          options.epsilon)) {
        if (result.labels[nb] >= 0) continue;
        result.labels[nb] = label;
        frontier.push_back(nb);
      }
    }
    // Centroid, weight, representatives.
    cluster.weight = static_cast<double>(cluster.members.size());
    cluster.centroid.assign(points.dim(), 0.0);
    for (int64_t m : cluster.members) {
      for (int j = 0; j < points.dim(); ++j) {
        cluster.centroid[j] += points[m][j];
      }
    }
    for (double& v : cluster.centroid) v /= cluster.weight;
    // Representatives drawn from the cluster's CORE points, so borders
    // shared with noise do not dilute the match metric.
    std::vector<int64_t> cores;
    for (int64_t m : cluster.members) {
      if (is_core[m]) cores.push_back(m);
    }
    cluster.representatives = SelectRepresentatives(
        points, cores.empty() ? cluster.members : cores, cluster.centroid,
        max_representatives);
  }
  return result;
}

}  // namespace dbs::cluster
