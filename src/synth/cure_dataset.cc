#include "synth/cure_dataset.h"

#include <cmath>

#include "util/rng.h"

namespace dbs::synth {
namespace {

// Uniform point in a disc.
void UniformInDisc(Rng& rng, double cx, double cy, double r, double* out) {
  double angle = rng.NextDouble(0.0, 2.0 * M_PI);
  double radius = r * std::sqrt(rng.NextDouble());
  out[0] = cx + radius * std::cos(angle);
  out[1] = cy + radius * std::sin(angle);
}

// Uniform point in an axis-aligned ellipse.
void UniformInEllipse(Rng& rng, double cx, double cy, double ax, double ay,
                      double* out) {
  double angle = rng.NextDouble(0.0, 2.0 * M_PI);
  double radius = std::sqrt(rng.NextDouble());
  out[0] = cx + ax * radius * std::cos(angle);
  out[1] = cy + ay * radius * std::sin(angle);
}

}  // namespace

[[nodiscard]] Result<ClusteredDataset> MakeCureDataset1(const CureDatasetOptions& options) {
  if (options.num_points < 100) {
    return Status::InvalidArgument("dataset1 needs at least 100 points");
  }
  if (options.noise_multiplier < 0) {
    return Status::InvalidArgument("noise_multiplier cannot be negative");
  }
  Rng rng(options.seed);

  // Layout (unit square): a big circle on the left; two elongated ellipses
  // stacked closely on the upper right; two small circles side by side on
  // the lower right. Mimics the CURE figure the paper reuses: the paired
  // clusters sit close together (gaps of 0.02-0.03), which is what defeats
  // a small uniform sample — its sparse rendering of the big cluster has
  // internal gaps comparable to the pair separations, so the pairs merge
  // and the big cluster splits when the algorithm is forced to 5 clusters.
  const double big_cx = 0.28, big_cy = 0.45, big_r = 0.21;
  const double ell_ax = 0.17, ell_ay = 0.045;
  const double ell1_cx = 0.72;
  const double ell1_cy = 0.72 + ell_ay + options.ellipse_gap / 2;
  const double ell2_cx = 0.72;
  const double ell2_cy = 0.72 - ell_ay - options.ellipse_gap / 2;
  const double small_r = 0.06;
  const double s1_cy = 0.22, s2_cy = 0.22;
  const double s1_cx = 0.715 - small_r - options.circle_gap / 2;
  const double s2_cx = 0.715 + small_r + options.circle_gap / 2;

  // Share of points per cluster: the big circle dominates (that is what
  // makes uniform sampling split it while starving the others).
  const double shares[5] = {0.52, 0.16, 0.16, 0.08, 0.08};

  ClusteredDataset out;
  out.points = data::PointSet(2);
  out.truth.regions.push_back(Region::Ball({big_cx, big_cy}, big_r));
  out.truth.regions.push_back(
      Region::Ellipsoid({ell1_cx, ell1_cy}, {ell_ax, ell_ay}));
  out.truth.regions.push_back(
      Region::Ellipsoid({ell2_cx, ell2_cy}, {ell_ax, ell_ay}));
  out.truth.regions.push_back(Region::Ball({s1_cx, s1_cy}, small_r));
  out.truth.regions.push_back(Region::Ball({s2_cx, s2_cy}, small_r));

  int64_t noise_count = static_cast<int64_t>(
      options.noise_multiplier * static_cast<double>(options.num_points));
  out.points.Reserve(options.num_points + noise_count);

  double buf[2];
  for (int c = 0; c < 5; ++c) {
    int64_t count = static_cast<int64_t>(
        shares[c] * static_cast<double>(options.num_points));
    for (int64_t i = 0; i < count; ++i) {
      switch (c) {
        case 0:
          UniformInDisc(rng, big_cx, big_cy, big_r, buf);
          break;
        case 1:
          UniformInEllipse(rng, ell1_cx, ell1_cy, ell_ax, ell_ay, buf);
          break;
        case 2:
          UniformInEllipse(rng, ell2_cx, ell2_cy, ell_ax, ell_ay, buf);
          break;
        case 3:
          UniformInDisc(rng, s1_cx, s1_cy, small_r, buf);
          break;
        default:
          UniformInDisc(rng, s2_cx, s2_cy, small_r, buf);
          break;
      }
      out.points.Append(buf);
      out.truth.labels.push_back(c);
    }
  }
  for (int64_t i = 0; i < noise_count; ++i) {
    buf[0] = rng.NextDouble();
    buf[1] = rng.NextDouble();
    out.points.Append(buf);
    out.truth.labels.push_back(-1);
  }
  return out;
}

}  // namespace dbs::synth
