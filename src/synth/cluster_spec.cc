#include "synth/cluster_spec.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace dbs::synth {

Region Region::Box(std::vector<double> lo, std::vector<double> hi) {
  DBS_CHECK(!lo.empty());
  DBS_CHECK(lo.size() == hi.size());
  for (size_t j = 0; j < lo.size(); ++j) DBS_CHECK(lo[j] <= hi[j]);
  Region r;
  r.kind_ = RegionKind::kBox;
  r.center_or_lo_ = std::move(lo);
  r.hi_or_axes_ = std::move(hi);
  return r;
}

Region Region::Ball(std::vector<double> center, double radius) {
  DBS_CHECK(!center.empty());
  DBS_CHECK(radius >= 0);
  Region r;
  r.kind_ = RegionKind::kBall;
  r.center_or_lo_ = std::move(center);
  r.radius_ = radius;
  return r;
}

Region Region::Ellipsoid(std::vector<double> center,
                         std::vector<double> semi_axes) {
  DBS_CHECK(!center.empty());
  DBS_CHECK(center.size() == semi_axes.size());
  for (double a : semi_axes) DBS_CHECK(a >= 0);
  Region r;
  r.kind_ = RegionKind::kEllipsoid;
  r.center_or_lo_ = std::move(center);
  r.hi_or_axes_ = std::move(semi_axes);
  return r;
}

bool Region::ContainsInterior(data::PointView p, double margin) const {
  DBS_CHECK(p.dim() == dim());
  DBS_CHECK(margin >= 0 && margin < 1);
  switch (kind_) {
    case RegionKind::kBox: {
      for (int j = 0; j < dim(); ++j) {
        double m = margin * (hi_or_axes_[j] - center_or_lo_[j]);
        if (p[j] < center_or_lo_[j] + m || p[j] > hi_or_axes_[j] - m) {
          return false;
        }
      }
      return true;
    }
    case RegionKind::kBall: {
      double r = (1.0 - margin) * radius_;
      double d2 = 0.0;
      for (int j = 0; j < dim(); ++j) {
        double diff = p[j] - center_or_lo_[j];
        d2 += diff * diff;
      }
      return d2 <= r * r;
    }
    case RegionKind::kEllipsoid: {
      double q = 0.0;
      for (int j = 0; j < dim(); ++j) {
        if (hi_or_axes_[j] <= 0) {
          if (p[j] != center_or_lo_[j]) return false;
          continue;
        }
        double u = (p[j] - center_or_lo_[j]) / hi_or_axes_[j];
        q += u * u;
      }
      double r = 1.0 - margin;
      return q <= r * r;
    }
  }
  return false;
}

std::vector<double> Region::Center() const {
  if (kind_ == RegionKind::kBox) {
    std::vector<double> c(center_or_lo_.size());
    for (size_t j = 0; j < c.size(); ++j) {
      c[j] = 0.5 * (center_or_lo_[j] + hi_or_axes_[j]);
    }
    return c;
  }
  return center_or_lo_;
}

double Region::Volume() const {
  switch (kind_) {
    case RegionKind::kBox: {
      double v = 1.0;
      for (int j = 0; j < dim(); ++j) v *= hi_or_axes_[j] - center_or_lo_[j];
      return v;
    }
    case RegionKind::kBall:
      return BallVolume(dim(), radius_);
    case RegionKind::kEllipsoid: {
      double v = BallVolume(dim(), 1.0);
      for (int j = 0; j < dim(); ++j) v *= hi_or_axes_[j];
      return v;
    }
  }
  return 0.0;
}

}  // namespace dbs::synth
