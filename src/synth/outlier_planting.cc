#include "synth/outlier_planting.h"

#include "data/distance.h"
#include "data/kd_tree.h"
#include "util/rng.h"

namespace dbs::synth {

[[nodiscard]] Result<std::vector<int64_t>> PlantOutliers(
    data::PointSet& points, const OutlierPlantingOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("plant outliers into a non-empty set");
  }
  if (options.count <= 0) {
    return Status::InvalidArgument("count must be positive");
  }
  if (options.min_distance <= 0) {
    return Status::InvalidArgument("min_distance must be positive");
  }
  const int d = points.dim();
  std::vector<double> lo = options.domain_lo;
  std::vector<double> hi = options.domain_hi;
  if (lo.empty()) lo.assign(d, 0.0);
  if (hi.empty()) hi.assign(d, 1.0);
  if (static_cast<int>(lo.size()) != d || static_cast<int>(hi.size()) != d) {
    return Status::InvalidArgument("domain dimensionality mismatch");
  }

  // Tree over the existing points; planted points are checked against both
  // the tree and the previously planted ones (linear scan, count is small).
  data::KdTree tree(&points);
  Rng rng(options.seed);
  std::vector<int64_t> planted;
  data::PointSet planted_points(d);
  std::vector<double> buf(d);
  int attempts = 0;
  while (static_cast<int>(planted.size()) < options.count) {
    if (++attempts > options.max_attempts) {
      return Status::FailedPrecondition(
          "could not place outliers at the requested separation; enlarge "
          "the domain or lower min_distance");
    }
    for (int j = 0; j < d; ++j) buf[j] = rng.NextDouble(lo[j], hi[j]);
    data::PointView candidate(buf.data(), d);
    if (tree.CountWithinRadius(candidate, options.min_distance, 0) > 0) {
      continue;
    }
    bool near_planted = false;
    for (int64_t i = 0; i < planted_points.size() && !near_planted; ++i) {
      near_planted = data::SquaredL2(candidate, planted_points[i]) <
                     options.min_distance * options.min_distance;
    }
    if (near_planted) continue;
    planted.push_back(points.size());
    points.Append(candidate);
    planted_points.Append(candidate);
  }
  return planted;
}

}  // namespace dbs::synth
