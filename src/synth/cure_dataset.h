// "Dataset1" of the CURE paper (Guha et al., SIGMOD 1998), used by the
// paper's Fig 3 demonstration: five clusters with different shapes and
// densities — one big circle, two small circles, and two stacked ellipses
// that sit close to each other. Uniform sampling splits the big cluster and
// merges the neighboring ones; a density-biased sample with a = 0.5 keeps
// all five (paper §4.3, Fig 3).

#ifndef DBS_SYNTH_CURE_DATASET_H_
#define DBS_SYNTH_CURE_DATASET_H_

#include <cstdint>

#include "synth/generator.h"
#include "util/status.h"

namespace dbs::synth {

struct CureDatasetOptions {
  // Total points across the five clusters (no noise in dataset1).
  int64_t num_points = 100000;
  // Optional uniform background noise, as a multiple of num_points.
  double noise_multiplier = 0.0;
  // Separation between the two stacked ellipses and between the two small
  // circles. These gaps control how hard the dataset is: small uniform
  // samples cannot resolve them (the pairs merge and the big cluster
  // splits), which is the Fig 3 phenomenon.
  double ellipse_gap = 0.04;
  double circle_gap = 0.04;
  uint64_t seed = 1;
};

// Generates the five-cluster layout in [0,1]^2. Region order: big circle,
// upper ellipse, lower ellipse, small circle A, small circle B.
[[nodiscard]] Result<ClusteredDataset> MakeCureDataset1(const CureDatasetOptions& options);

}  // namespace dbs::synth

#endif  // DBS_SYNTH_CURE_DATASET_H_
