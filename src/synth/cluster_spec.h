// Ground-truth geometry for synthetic datasets.
//
// A Region is the support of one true cluster — hyper-rectangle, ball, or
// axis-aligned ellipsoid — with an interior test parameterized by a margin,
// matching the paper's evaluation rule ("a cluster is found if at least 90%
// of its representative points are in the interior of the same cluster",
// §4.2). GroundTruth carries the regions plus the per-point labels the
// generators emit.

#ifndef DBS_SYNTH_CLUSTER_SPEC_H_
#define DBS_SYNTH_CLUSTER_SPEC_H_

#include <cstdint>
#include <vector>

#include "data/bounds.h"
#include "data/point_set.h"

namespace dbs::synth {

enum class RegionKind {
  kBox = 0,
  kBall,
  kEllipsoid,
};

class Region {
 public:
  // Hyper-rectangle [lo, hi].
  static Region Box(std::vector<double> lo, std::vector<double> hi);
  // L2 ball.
  static Region Ball(std::vector<double> center, double radius);
  // Axis-aligned ellipsoid with the given semi-axes.
  static Region Ellipsoid(std::vector<double> center,
                          std::vector<double> semi_axes);

  RegionKind kind() const { return kind_; }
  int dim() const { return static_cast<int>(center_or_lo_.size()); }

  // True when p lies in the region shrunk by `margin` (relative, in [0,1)):
  // boxes shrink every side by margin * extent, balls/ellipsoids shrink
  // their radii to (1 - margin) of the original. margin = 0 tests plain
  // containment.
  bool ContainsInterior(data::PointView p, double margin = 0.0) const;

  // Centroid of the region.
  std::vector<double> Center() const;

  // Volume of the region.
  double Volume() const;

 private:
  Region() = default;

  RegionKind kind_ = RegionKind::kBox;
  std::vector<double> center_or_lo_;  // box: lo; ball/ellipsoid: center
  std::vector<double> hi_or_axes_;    // box: hi; ellipsoid: semi-axes
  double radius_ = 0.0;               // ball only
};

struct GroundTruth {
  std::vector<Region> regions;
  // Per generated point: region index, or -1 for noise.
  std::vector<int32_t> labels;

  int num_true_clusters() const { return static_cast<int>(regions.size()); }
  int64_t num_noise() const {
    int64_t count = 0;
    for (int32_t label : labels) {
      if (label < 0) ++count;
    }
    return count;
  }
};

}  // namespace dbs::synth

#endif  // DBS_SYNTH_CLUSTER_SPEC_H_
