#include "synth/geo.h"

#include <cmath>

#include "util/rng.h"

namespace dbs::synth {
namespace {

struct Metro {
  double cx;
  double cy;
  double sigma;   // spread of the dense core
  double share;   // fraction of all points
};

// Clipped Gaussian sample around a metro center.
void MetroPoint(Rng& rng, const Metro& m, double* out) {
  do {
    out[0] = rng.NextGaussian(m.cx, m.sigma);
    out[1] = rng.NextGaussian(m.cy, m.sigma);
  } while (out[0] < 0 || out[0] > 1 || out[1] < 0 || out[1] > 1);
}

// Point scattered around the polyline through the metro centers — the
// low-density corridor of towns between the big cities.
void CorridorPoint(Rng& rng, const std::vector<Metro>& metros, double spread,
                   double* out) {
  size_t seg = rng.NextBounded(metros.size() - 1);
  double t = rng.NextDouble();
  double x = metros[seg].cx + t * (metros[seg + 1].cx - metros[seg].cx);
  double y = metros[seg].cy + t * (metros[seg + 1].cy - metros[seg].cy);
  do {
    out[0] = rng.NextGaussian(x, spread);
    out[1] = rng.NextGaussian(y, spread);
  } while (out[0] < 0 || out[0] > 1 || out[1] < 0 || out[1] > 1);
}

[[nodiscard]] Result<ClusteredDataset> MakeGeo(const std::vector<Metro>& metros,
                                 double corridor_share,
                                 double background_share,
                                 double corridor_spread,
                                 const GeoDatasetOptions& options) {
  if (options.num_points < 1000) {
    return Status::InvalidArgument("geo datasets need at least 1000 points");
  }
  Rng rng(options.seed);
  ClusteredDataset out;
  out.points = data::PointSet(2);
  out.points.Reserve(options.num_points);

  // Metro discs of radius 3 sigma define the ground-truth clusters.
  for (const Metro& m : metros) {
    out.truth.regions.push_back(Region::Ball({m.cx, m.cy}, 3.0 * m.sigma));
  }

  double buf[2];
  for (size_t c = 0; c < metros.size(); ++c) {
    int64_t count = static_cast<int64_t>(
        metros[c].share * static_cast<double>(options.num_points));
    for (int64_t i = 0; i < count; ++i) {
      MetroPoint(rng, metros[c], buf);
      out.points.Append(buf);
      out.truth.labels.push_back(static_cast<int32_t>(c));
    }
  }
  int64_t corridor = static_cast<int64_t>(
      corridor_share * static_cast<double>(options.num_points));
  for (int64_t i = 0; i < corridor; ++i) {
    CorridorPoint(rng, metros, corridor_spread, buf);
    out.points.Append(buf);
    out.truth.labels.push_back(-1);
  }
  int64_t background = static_cast<int64_t>(
      background_share * static_cast<double>(options.num_points));
  for (int64_t i = 0; i < background; ++i) {
    buf[0] = rng.NextDouble();
    buf[1] = rng.NextDouble();
    out.points.Append(buf);
    out.truth.labels.push_back(-1);
  }
  return out;
}

}  // namespace

[[nodiscard]] Result<ClusteredDataset> MakeNorthEastLike(const GeoDatasetOptions& options) {
  // Philadelphia -> New York -> Boston, southwest to northeast.
  const std::vector<Metro> metros{
      {0.25, 0.20, 0.016, 0.13},  // Philadelphia
      {0.45, 0.40, 0.020, 0.22},  // New York (largest)
      {0.75, 0.72, 0.015, 0.11},  // Boston
  };
  // 46% of points in metros; 34% corridor towns; 20% scattered rural.
  return MakeGeo(metros, /*corridor_share=*/0.34, /*background_share=*/0.20,
                 /*corridor_spread=*/0.07, options);
}

[[nodiscard]] Result<ClusteredDataset> MakeCaliforniaLike(const GeoDatasetOptions& options) {
  GeoDatasetOptions opts = options;
  if (opts.num_points == 130000) opts.num_points = 62553;
  // Bay Area and Los Angeles along a long coastal line.
  const std::vector<Metro> metros{
      {0.30, 0.75, 0.020, 0.20},  // Bay Area
      {0.62, 0.25, 0.024, 0.28},  // Los Angeles (largest)
  };
  return MakeGeo(metros, /*corridor_share=*/0.30, /*background_share=*/0.22,
                 /*corridor_spread=*/0.09, opts);
}

}  // namespace dbs::synth
