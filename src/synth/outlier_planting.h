// Planting distance-based outliers into an existing dataset.
//
// Appends `count` points that are guaranteed DB(p, k)-outliers by
// construction: each planted point keeps at least `min_distance` from every
// existing point and from every other planted point, so with
// k < min_distance it has zero neighbors. The outlier benches use this to
// measure recall against a known ground truth.

#ifndef DBS_SYNTH_OUTLIER_PLANTING_H_
#define DBS_SYNTH_OUTLIER_PLANTING_H_

#include <cstdint>
#include <vector>

#include "data/point_set.h"
#include "util/status.h"

namespace dbs::synth {

struct OutlierPlantingOptions {
  int count = 10;
  // Minimum L2 distance from all other points.
  double min_distance = 0.2;
  // Planting domain per dimension (defaults to [0,1] when empty).
  std::vector<double> domain_lo;
  std::vector<double> domain_hi;
  // Rejection attempts before giving up.
  int max_attempts = 100000;
  uint64_t seed = 1;
};

// Appends planted outliers to `points` (modified in place) and returns
// their indices. Fails if the domain cannot host `count` points at the
// requested separation within the attempt budget.
[[nodiscard]] Result<std::vector<int64_t>> PlantOutliers(
    data::PointSet& points, const OutlierPlantingOptions& options);

}  // namespace dbs::synth

#endif  // DBS_SYNTH_OUTLIER_PLANTING_H_
