// Synthetic clustered datasets (paper §4.1).
//
// Clusters are hyper-rectangles with uniformly distributed interiors; the
// generator controls their count, size variation (number of points) and
// density variation, then adds `noise_multiplier * |clusters|` uniform
// noise points over the whole domain — the paper's "fn = l noise" knob,
// swept from 5% to 80% in Figs 4-6. The generated GroundTruth feeds the
// eval::FoundClusters metric.

#ifndef DBS_SYNTH_GENERATOR_H_
#define DBS_SYNTH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "data/point_set.h"
#include "synth/cluster_spec.h"
#include "util/status.h"

namespace dbs::synth {

struct ClusteredDatasetOptions {
  int dim = 2;
  int num_clusters = 10;
  // Points across all clusters (before noise).
  int64_t num_cluster_points = 100000;
  // Largest-to-smallest cluster point-count ratio. 1 = equal sizes; the
  // paper's variable-density experiments use 10.
  double size_ratio = 1.0;
  // Per-dimension cluster extent range, as a fraction of the unit domain.
  double min_extent = 0.08;
  double max_extent = 0.25;
  // Minimum gap kept between any two cluster boxes on every dimension they
  // would otherwise touch on, so distinct clusters stay separable.
  double min_separation = 0.05;
  // Noise points = noise_multiplier * num_cluster_points, uniform over the
  // domain (the paper's fn).
  double noise_multiplier = 0.0;
  // Emit points in random order instead of cluster-by-cluster (labels are
  // permuted consistently). Streaming consumers need this; batch consumers
  // are order-insensitive.
  bool shuffle = false;
  uint64_t seed = 1;
};

struct ClusteredDataset {
  data::PointSet points;
  GroundTruth truth;
};

// Generates non-overlapping hyper-rectangle clusters plus uniform noise in
// [0,1]^dim. Points are emitted cluster by cluster, noise last; labels in
// `truth` follow the same order.
[[nodiscard]] Result<ClusteredDataset> MakeClusteredDataset(
    const ClusteredDatasetOptions& options);

// Point counts per cluster implied by the options: geometric interpolation
// between the largest and smallest so densities vary smoothly (exposed for
// tests and benches).
std::vector<int64_t> ClusterPointCounts(int num_clusters, int64_t total,
                                        double size_ratio);

}  // namespace dbs::synth

#endif  // DBS_SYNTH_GENERATOR_H_
